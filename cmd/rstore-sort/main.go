// Command rstore-sort runs the distributed KV sorter (the paper's
// TeraSort-class application) on an in-process cluster and prints the
// per-phase breakdown against the MapReduce baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rstore/internal/baseline/mrsort"
	"rstore/internal/core"
	"rstore/internal/kvsort"
	"rstore/internal/telemetry"
	"rstore/internal/workload"
)

func run() error {
	machines := flag.Int("machines", 12, "cluster size (excluding the master)")
	records := flag.Int("records", 500_000, "records to sort (100 bytes each)")
	seed := flag.Int64("seed", 42, "input seed")
	flag.Parse()

	ctx := context.Background()
	capacity := uint64(*records) * workload.RecordSize * 4 / uint64(*machines)
	if capacity < 64<<20 {
		capacity = 64 << 20
	}
	cluster, err := core.Start(ctx, core.Config{Machines: *machines + 1, ServerCapacity: capacity})
	if err != nil {
		return err
	}
	defer cluster.Close()

	s, err := kvsort.New(ctx, cluster, kvsort.Config{})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.GenerateInput(ctx, "input", *records, *seed); err != nil {
		return err
	}
	res, err := s.Run(ctx, "input", *records)
	if err != nil {
		return err
	}
	if err := s.Validate(ctx, res.OutputRegion, *records); err != nil {
		return err
	}

	mr, err := mrsort.Run(*records, *seed, mrsort.Config{Nodes: *machines})
	if err != nil {
		return err
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("KV sort: %d records (%d MB) on %d machines, output verified sorted",
			*records, *records*workload.RecordSize>>20, *machines),
		"system", "sample/map", "shuffle", "sort/reduce", "total")
	tbl.AddRow("rstore", res.Sample.Modeled, res.Shuffle.Modeled, res.Sort.Modeled, res.Modeled)
	tbl.AddRow("mapreduce", mr.Map.Modeled, mr.Shuffle.Modeled, mr.Reduce.Modeled, mr.Modeled)
	fmt.Println(tbl.String())
	fmt.Printf("speedup: %.1fx\n", float64(mr.Modeled)/float64(res.Modeled))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rstore-sort:", err)
		os.Exit(1)
	}
}
