// Command rstore-demo boots an in-process RStore cluster and walks the
// memory-like API end to end: allocate a striped region, map it from two
// client machines, exchange data through one-sided reads and writes, bump
// a shared counter with RDMA atomics, and hand off with a notification.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rstore/internal/core"
)

func run() error {
	machines := flag.Int("machines", 4, "cluster size (1 master + N-1 memory servers)")
	capacity := flag.Uint64("capacity", 64<<20, "DRAM donated per memory server (bytes)")
	flag.Parse()

	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: *machines, ServerCapacity: *capacity})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %d machines, %d memory servers donating %d MiB each\n",
		*machines, len(cluster.Servers()), *capacity>>20)

	writer, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return err
	}
	reader, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[len(cluster.MemoryServerNodes())-1])
	if err != nil {
		return err
	}

	// Control path: allocate once, map everywhere.
	if _, err := writer.Alloc(ctx, "demo/shared", 8<<20, core.AllocOptions{StripeUnit: 1 << 20}); err != nil {
		return err
	}
	wreg, err := writer.Map(ctx, "demo/shared")
	if err != nil {
		return err
	}
	rreg, err := reader.Map(ctx, "demo/shared")
	if err != nil {
		return err
	}
	info := wreg.Info()
	fmt.Printf("region %q: %d MiB striped over servers %v\n",
		info.Name, info.Size>>20, info.Servers())

	// Consumer subscribes before the producer writes.
	notifications, unsub, err := rreg.Subscribe(ctx)
	if err != nil {
		return err
	}
	defer unsub()

	// Data path: one-sided write, then a notification token.
	msg := []byte("hello from the producer, via one-sided RDMA")
	if err := wreg.Write(ctx, 4096, msg); err != nil {
		return err
	}
	if err := wreg.Notify(ctx, 7); err != nil {
		return err
	}
	select {
	case n := <-notifications:
		fmt.Printf("consumer notified (token %d)\n", n.Token)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("notification lost")
	}
	got := make([]byte, len(msg))
	if err := rreg.Read(ctx, 4096, got); err != nil {
		return err
	}
	fmt.Printf("consumer read: %q\n", got)

	// Shared atomics: both clients bump one counter.
	for i := 0; i < 3; i++ {
		if _, _, err := wreg.FetchAdd(ctx, 0, 1); err != nil {
			return err
		}
		if _, _, err := rreg.FetchAdd(ctx, 0, 1); err != nil {
			return err
		}
	}
	old, _, err := wreg.FetchAdd(ctx, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("shared counter after 6 increments: %d\n", old)

	infos, err := writer.ClusterInfo(ctx)
	if err != nil {
		return err
	}
	fmt.Println("cluster usage:")
	for _, si := range infos {
		fmt.Printf("  server %v: %d/%d MiB used, alive=%v\n",
			si.Node, si.Used>>20, si.Capacity>>20, si.Alive)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rstore-demo:", err)
		os.Exit(1)
	}
}
