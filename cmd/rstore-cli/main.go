// Command rstore-cli boots a demo cluster, populates it, and walks the
// store's introspection surface: cluster membership, the region table,
// and raw region contents. It doubles as a smoke test of the admin API
// (ClusterInfo / ListRegions) a real deployment's tooling would use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/metrics"
)

func run() error {
	machines := flag.Int("machines", 4, "cluster size")
	flag.Parse()

	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: *machines})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}

	// Populate: a few raw regions plus a KV table.
	for i, size := range []uint64{1 << 20, 4 << 20, 512 << 10} {
		name := fmt.Sprintf("app/region-%d", i)
		reg, err := cli.AllocMap(ctx, name, size, core.AllocOptions{})
		if err != nil {
			return err
		}
		if err := reg.Write(ctx, 0, []byte(strings.Repeat(name+";", 4))); err != nil {
			return err
		}
	}
	kv, err := kvstore.Create(ctx, cli, "app/kv", kvstore.Options{Slots: 1024})
	if err != nil {
		return err
	}
	for _, pair := range [][2]string{{"region", "distributed DRAM"}, {"api", "memory-like"}, {"path", "one-sided"}} {
		if err := kv.Put(ctx, []byte(pair[0]), []byte(pair[1])); err != nil {
			return err
		}
	}

	// Inspect: servers.
	servers, err := cli.ClusterInfo(ctx)
	if err != nil {
		return err
	}
	st := metrics.NewTable("memory servers", "node", "capacity-mib", "used-kib", "alive")
	for _, s := range servers {
		st.AddRow(s.Node, s.Capacity>>20, s.Used>>10, s.Alive)
	}
	fmt.Println(st.String())

	// Inspect: regions.
	regions, err := cli.ListRegions(ctx)
	if err != nil {
		return err
	}
	rt := metrics.NewTable("regions", "name", "id", "bytes", "mapped")
	for _, r := range regions {
		rt.AddRow(r.Name, uint64(r.ID), r.Size, r.MapCount)
	}
	fmt.Println(rt.String())

	// Inspect: raw bytes of one region.
	reg, err := cli.Map(ctx, "app/region-0")
	if err != nil {
		return err
	}
	head := make([]byte, 48)
	if err := reg.Read(ctx, 0, head); err != nil {
		return err
	}
	fmt.Printf("app/region-0[0:48] = %q\n", head)

	// Inspect: KV lookups.
	for _, key := range []string{"region", "api", "path"} {
		v, err := kv.Get(ctx, []byte(key))
		if err != nil {
			return err
		}
		fmt.Printf("kv[%s] = %q\n", key, v)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rstore-cli:", err)
		os.Exit(1)
	}
}
