// Command rstore-cli boots a demo cluster and walks the store's
// introspection surface. It has two subcommands:
//
//	demo   populate a cluster and dump membership, regions, and contents
//	       (the default, preserving the original behavior)
//	stats  drive a short mixed workload and render the cluster-wide
//	       telemetry the master aggregates from heartbeat snapshots
//	trace  trace a workload, assemble one op's distributed trace via the
//	       master's MtTraceFetch fan-out, and render the waterfall plus
//	       its critical-path layer breakdown
//	index  load an ordered B+tree index and print its shape (depth,
//	       fanout, splits) plus the reading client's cache and bloom
//	       telemetry
//	health kill a memory server and follow the master's health engine
//	       through the incident: the server-silent alert fires, repair
//	       re-homes the data, and the alert resolves
//
// It doubles as a smoke test of the admin API (ClusterInfo / ListRegions /
// ClusterStats) a real deployment's tooling would use.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rstore/internal/core"
	"rstore/internal/health"
	"rstore/internal/index"
	"rstore/internal/kvstore"
	"rstore/internal/telemetry"
	"rstore/internal/workload"
)

// cmdTimeout bounds every subcommand end to end: an unreachable master
// group must surface as an error and a non-zero exit, never a hang.
const cmdTimeout = 2 * time.Minute

func runDemo(machines, masters int) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}

	// Populate: a few raw regions plus a KV table.
	for i, size := range []uint64{1 << 20, 4 << 20, 512 << 10} {
		name := fmt.Sprintf("app/region-%d", i)
		reg, err := cli.AllocMap(ctx, name, size, core.AllocOptions{})
		if err != nil {
			return err
		}
		if err := reg.Write(ctx, 0, []byte(strings.Repeat(name+";", 4))); err != nil {
			return err
		}
	}
	kv, err := kvstore.Create(ctx, cli, "app/kv", kvstore.Options{Slots: 1024})
	if err != nil {
		return err
	}
	for _, pair := range [][2]string{{"region", "distributed DRAM"}, {"api", "memory-like"}, {"path", "one-sided"}} {
		if err := kv.Put(ctx, []byte(pair[0]), []byte(pair[1])); err != nil {
			return err
		}
	}

	// Inspect: servers.
	servers, err := cli.ClusterInfo(ctx)
	if err != nil {
		return err
	}
	st := telemetry.NewTable("memory servers", "node", "capacity-mib", "used-kib", "alive")
	for _, s := range servers {
		st.AddRow(s.Node, s.Capacity>>20, s.Used>>10, s.Alive)
	}
	fmt.Println(st.String())

	// Inspect: regions.
	regions, err := cli.ListRegions(ctx)
	if err != nil {
		return err
	}
	rt := telemetry.NewTable("regions", "name", "id", "bytes", "mapped")
	for _, r := range regions {
		rt.AddRow(r.Name, uint64(r.ID), r.Size, r.MapCount)
	}
	fmt.Println(rt.String())

	// Inspect: raw bytes of one region.
	reg, err := cli.Map(ctx, "app/region-0")
	if err != nil {
		return err
	}
	head := make([]byte, 48)
	if err := reg.Read(ctx, 0, head); err != nil {
		return err
	}
	fmt.Printf("app/region-0[0:48] = %q\n", head)

	// Inspect: KV lookups.
	for _, key := range []string{"region", "api", "path"} {
		v, err := kv.Get(ctx, []byte(key))
		if err != nil {
			return err
		}
		fmt.Printf("kv[%s] = %q\n", key, v)
	}
	return nil
}

// runRegions boots a cluster, allocates a replicated and a plain region,
// then renders the master's repair-plane view of every region — placement,
// per-copy health, dirty/under-repair flags, and the generation counter.
// It kills one replica holder mid-run so the output shows the store
// degrading and then self-healing.
func runRegions(machines, masters int) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	const beat = 20 * time.Millisecond
	if machines < masters+4 {
		// Two width-2 copies need 4 memory servers for a disjoint
		// placement (machines counts the master replicas too).
		machines = masters + 4
	}
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters, HeartbeatInterval: beat})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}
	// Server registration races the boot; allocate only once every server
	// is in, or the replica falls back to an overlapping placement.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if len(cluster.Master().AliveServers()) >= machines-masters {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("servers still registering after 5s")
		}
		time.Sleep(beat)
	}
	// Stripe each copy across half the servers so the two copies land on
	// disjoint nodes — a full-width stripe would put every copy on every
	// server and no single failure would be survivable.
	reg, err := cli.AllocMap(ctx, "app/replicated", 2<<20, core.AllocOptions{Replicas: 1, StripeWidth: 2})
	if err != nil {
		return err
	}
	if _, err := cli.AllocMap(ctx, "app/plain", 1<<20, core.AllocOptions{}); err != nil {
		return err
	}
	if err := reg.Write(ctx, 0, []byte(strings.Repeat("rstore;", 64))); err != nil {
		return err
	}

	statuses, err := cli.RegionStatuses(ctx)
	if err != nil {
		return err
	}
	fmt.Println("before failure:")
	printRegionStatuses(statuses)

	// Kill the server holding the replica's first extent and watch the
	// repair plane restore full replication on the survivors.
	victim := reg.Info().Copies()[1][0].Server
	fmt.Printf("killing memory server on node %d...\n\n", victim)
	if err := cluster.KillServer(victim); err != nil {
		return err
	}
	gen := reg.Info().Generation
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		statuses, err = cli.RegionStatuses(ctx)
		if err != nil {
			return err
		}
		if healed(statuses, "app/replicated", gen) {
			break
		}
		time.Sleep(beat)
	}
	fmt.Println("after self-healing repair:")
	printRegionStatuses(statuses)
	return nil
}

// healed reports whether the named region's generation advanced past gen
// and every copy is healthy and clean again.
func healed(statuses []core.RegionStatus, name string, gen uint64) bool {
	for _, st := range statuses {
		if st.Info.Name != name {
			continue
		}
		if st.Info.Generation <= gen || st.Lost {
			return false
		}
		for _, cs := range st.Copies {
			if !cs.Healthy || cs.Dirty || cs.UnderRepair {
				return false
			}
		}
		return true
	}
	return false
}

// printRegionStatuses renders the repair-plane introspection tables: one
// region-level row each, then one row per copy with its placement and
// health flags.
func printRegionStatuses(statuses []core.RegionStatus) {
	rt := telemetry.NewTable("regions", "name", "id", "bytes", "gen", "mapped", "copies", "lost")
	for _, st := range statuses {
		rt.AddRow(st.Info.Name, uint64(st.Info.ID), st.Info.Size, st.Info.Generation,
			st.MapCount, len(st.Copies), st.Lost)
	}
	fmt.Println(rt.String())

	ct := telemetry.NewTable("copies", "region", "copy", "servers", "healthy", "dirty", "repairing", "degraded")
	for _, st := range statuses {
		for i, cs := range st.Copies {
			copies := st.Info.Copies()
			var nodes []string
			if i < len(copies) {
				for _, x := range copies[i] {
					nodes = append(nodes, fmt.Sprintf("%d", x.Server))
				}
			}
			role := "primary"
			if i > 0 {
				role = fmt.Sprintf("replica-%d", i-1)
			}
			ct.AddRow(st.Info.Name, role, strings.Join(nodes, ","),
				cs.Healthy, cs.Dirty, cs.UnderRepair, cs.PlacementDegraded)
		}
	}
	fmt.Println(ct.String())
}

// runHealth boots a cluster, shows it healthy, then kills a memory server
// and follows the health engine through the incident: the server-silent
// alert firing (detection), repair re-homing the data, and the alert
// resolving (recovery) — plus the per-window rates the verdicts were
// judged on. This is the monitoring loop an operator runs before the
// stats/trace deep dives.
func runHealth(machines, masters int) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	const beat = 20 * time.Millisecond
	if machines < masters+4 {
		// Two width-2 copies need 4 memory servers for disjoint placement.
		machines = masters + 4
	}
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters, HeartbeatInterval: beat})
	if err != nil {
		return err
	}
	defer cluster.Close()
	// Windows bucket on *virtual* time, and this demo's whole incident
	// spans only a millisecond or two of it; narrow the buckets so the
	// closing rates table always has several sealed windows to show.
	cluster.SetWindowWidth(50 * time.Microsecond)

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		if len(cluster.Master().AliveServers()) >= machines-masters {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("servers still registering after 5s")
		}
		time.Sleep(beat)
	}
	reg, err := cli.AllocMap(ctx, "app/health-demo", 2<<20, core.AllocOptions{Replicas: 1, StripeWidth: 2})
	if err != nil {
		return err
	}
	buf, err := cli.AllocBuf(64 << 10)
	if err != nil {
		return err
	}
	for i := 0; i < 32; i++ {
		off := uint64(i) * (64 << 10) % ((2 << 20) - (64 << 10))
		if _, err := reg.WriteAt(ctx, off, buf, 0, 64<<10); err != nil {
			return err
		}
		if _, err := reg.ReadAt(ctx, off, buf, 0, 64<<10); err != nil {
			return err
		}
	}

	report, err := waitHealth(ctx, cli, beat, func(r core.HealthReport) bool {
		return len(firingAlerts(r)) == 0
	})
	if err != nil {
		return err
	}
	fmt.Println("healthy cluster:")
	printHealthReport(report, false)

	victim := reg.Info().Copies()[1][0].Server
	fmt.Printf("killing memory server on node %d...\n\n", victim)
	if err := cluster.KillServer(victim); err != nil {
		return err
	}
	report, err = waitHealth(ctx, cli, beat, func(r core.HealthReport) bool {
		return len(firingAlerts(r)) > 0
	})
	if err != nil {
		return err
	}
	fmt.Println("after failure (alert fired):")
	printHealthReport(report, false)

	// Repair re-homes the victim's extents onto survivors; once no copy
	// references the dead server the alert resolves on its own.
	report, err = waitHealth(ctx, cli, beat, func(r core.HealthReport) bool {
		return len(firingAlerts(r)) == 0
	})
	if err != nil {
		return err
	}
	fmt.Println("after self-healing repair (alert resolved):")
	printHealthReport(report, true)
	return nil
}

// waitHealth polls ClusterHealth until ok(report) or a 15s deadline.
func waitHealth(ctx context.Context, cli *core.Client, beat time.Duration, ok func(core.HealthReport) bool) (core.HealthReport, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		report, err := cli.ClusterHealth(ctx)
		if err != nil {
			return core.HealthReport{}, err
		}
		if ok(report) || time.Now().After(deadline) {
			return report, nil
		}
		time.Sleep(beat)
	}
}

// firingAlerts filters the report's alert table to the firing ones.
func firingAlerts(r core.HealthReport) []health.Alert {
	var out []health.Alert
	for _, a := range r.Alerts {
		if a.State == health.StateFiring {
			out = append(out, a)
		}
	}
	return out
}

// printHealthReport renders the alert table and, when full is set, the
// event history and the per-window rates the rules judged.
func printHealthReport(r core.HealthReport, full bool) {
	at := telemetry.NewTable("alerts", "severity", "state", "rule", "target", "message")
	for _, a := range r.Alerts {
		target := a.Target
		if target == "" {
			target = "cluster"
		}
		at.AddRow(a.Severity, a.State, a.Rule, target, a.Msg)
	}
	if len(r.Alerts) == 0 {
		at.AddRow("-", "-", "-", "-", "no alerts")
	}
	fmt.Println(at.String())
	if !full {
		return
	}

	et := telemetry.NewTable("health events", "vtime", "severity", "rule", "target", "transition")
	for _, ev := range r.Events {
		verb := "fired"
		if !ev.Firing {
			verb = "resolved"
		}
		target := ev.Target
		if target == "" {
			target = "cluster"
		}
		et.AddRow(time.Duration(ev.V), ev.Severity, ev.Rule, target, verb)
	}
	fmt.Println(et.String())
	printWindowRates(r.Windows)
}

// printWindowRates renders per-window counter rates and windowed latency
// quantiles from a merged window snapshot.
func printWindowRates(w telemetry.WindowSnapshot) {
	names := make([]string, 0, len(w.Counters))
	for name := range w.Counters {
		if w.Counters[name].Sum() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rt := telemetry.NewTable("windowed rates", "metric", "windows", "delta", "per-sec (virtual)")
	for _, name := range names {
		ser := w.Counters[name]
		rt.AddRow(name, len(ser.Vals), ser.Sum(), fmt.Sprintf("%.0f", w.CounterRate(name)))
	}
	fmt.Println(rt.String())

	hnames := make([]string, 0, len(w.Histograms))
	for name := range w.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	ht := telemetry.NewTable("windowed latencies", "metric", "n", "p50", "p99")
	for _, name := range hnames {
		h := w.HistogramWindow(name, 0)
		if h.Count == 0 {
			continue
		}
		ht.AddRow(name, h.Count, time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)))
	}
	fmt.Println(ht.String())
}

// runStats boots a cluster, drives a short mixed workload so every layer's
// counters move, then fetches the master's aggregated per-node telemetry —
// the view an operator polls against a running deployment.
func runStats(machines, masters int) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	const beat = 50 * time.Millisecond
	if machines < masters+2 {
		machines = masters + 2
	}
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters, HeartbeatInterval: beat})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}

	// Workload: writes, reads, and atomics against a striped region. The
	// client shares node 1's registry with that node's memory server, so
	// its client.* counters ride the same heartbeat snapshot (the paper
	// co-locates compute with memory servers).
	reg, err := cli.AllocMap(ctx, "app/stats-demo", 8<<20, core.AllocOptions{})
	if err != nil {
		return err
	}
	const chunk = 64 << 10
	buf, err := cli.AllocBuf(chunk)
	if err != nil {
		return err
	}
	for i := 0; i < 64; i++ {
		off := uint64(i) * chunk % ((8 << 20) - chunk)
		if _, err := reg.WriteAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
		if _, err := reg.ReadAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
	}
	for i := 0; i < 16; i++ {
		if _, _, err := reg.FetchAdd(ctx, 0, 1); err != nil {
			return err
		}
	}

	// Server snapshots reach the master on heartbeats; poll until every
	// reporting node (the primary plus each memory server — standby
	// masters do not heartbeat to the primary) has reported once.
	var stats []core.NodeStats
	reporting := machines - masters + 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err = cli.ClusterStats(ctx)
		if err != nil {
			return err
		}
		if len(stats) >= reporting || time.Now().After(deadline) {
			break
		}
		time.Sleep(beat)
	}
	printStats(stats)
	printMasterStatuses(cli.MasterStatuses(ctx))
	return nil
}

// printMasterStatuses renders the control plane's replication view: each
// configured master replica's role, epoch, and who it believes leads.
func printMasterStatuses(statuses []core.MasterStatus) {
	mt := telemetry.NewTable("master replicas", "node", "role", "epoch", "primary")
	for _, ms := range statuses {
		if ms.Err != nil {
			mt.AddRow(ms.Node, "unreachable", "-", "-")
			continue
		}
		mt.AddRow(ms.Node, ms.Role, ms.Epoch, ms.Primary)
	}
	fmt.Println(mt.String())
}

// printStats renders one column per node for counters and gauges, plus the
// cluster-wide merged latency histograms.
func printStats(stats []core.NodeStats) {
	cols := []string{"metric"}
	names := make(map[string]bool)
	for _, ns := range stats {
		cols = append(cols, fmt.Sprintf("%s@%d", ns.Role, ns.Node))
		for n := range ns.Stats.Counters {
			names[n] = true
		}
		for n := range ns.Stats.Gauges {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	ct := telemetry.NewTable("cluster counters", cols...)
	for _, name := range sorted {
		row := []interface{}{name}
		for _, ns := range stats {
			if v, ok := ns.Stats.Counters[name]; ok {
				row = append(row, v)
			} else if v, ok := ns.Stats.Gauges[name]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		ct.AddRow(row...)
	}
	fmt.Println(ct.String())

	var merged telemetry.Snapshot
	for _, ns := range stats {
		merged.Merge(ns.Stats)
	}
	if len(merged.Histograms) == 0 {
		return
	}
	hnames := make([]string, 0, len(merged.Histograms))
	for n := range merged.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	ht := telemetry.NewTable("cluster latencies", "metric", "n", "mean", "p50", "p99", "max")
	for _, name := range hnames {
		h := merged.Histograms[name]
		ht.AddRow(name, h.Count,
			time.Duration(h.Mean()),
			time.Duration(h.Quantile(0.5)),
			time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max))
	}
	fmt.Println(ht.String())
}

// runTrace boots a cluster, traces a short striped workload with the
// flight recorder armed, then assembles one operation's distributed trace
// into a causal tree and renders it as a waterfall with a per-layer
// critical-path breakdown. Without an argument it picks the slowest
// operation the flight recorder pinned; with a hex trace id it assembles
// that trace instead. This is the debugging loop an operator follows when
// chasing a tail-latency report: stats → trace → waterfall.
func runTrace(machines, masters int, idArg string) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	if machines < masters+3 {
		machines = masters + 3 // a width-3 stripe needs 3 memory servers
	}
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Trace every op and pin them all: in a demo run the flight recorder
	// doubles as the index of candidate traces to assemble.
	cluster.SetTraceSampling(1)
	cluster.SetSlowOpThreshold(time.Nanosecond)

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}
	reg, err := cli.AllocMap(ctx, "app/trace-demo", 8<<20,
		core.AllocOptions{StripeWidth: 3, StripeUnit: 64 << 10})
	if err != nil {
		return err
	}
	const chunk = 192 << 10 // three stripe units: every op fans out to all three servers
	buf, err := cli.AllocBuf(chunk)
	if err != nil {
		return err
	}
	for i := 0; i < 32; i++ {
		off := uint64(i) * chunk % ((8 << 20) - chunk)
		if _, err := reg.WriteAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
		if _, err := reg.ReadAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
	}

	var id telemetry.TraceID
	if idArg != "" {
		v, perr := strconv.ParseUint(idArg, 16, 64)
		if perr != nil {
			return fmt.Errorf("bad trace id %q: %v", idArg, perr)
		}
		id = telemetry.TraceID(v)
	} else {
		var worst time.Duration
		for _, sp := range cluster.FlightSpans() {
			if sp.Parent != 0 || !strings.HasPrefix(sp.Name, "client.") {
				continue
			}
			if d := sp.EndV.Sub(sp.StartV); d > worst {
				worst, id = d, sp.Trace
			}
		}
		if id == 0 {
			return fmt.Errorf("flight recorder pinned no client ops")
		}
	}

	spans, complete, err := cli.FetchTrace(ctx, id)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans found for trace %v", id)
	}
	tree := telemetry.Assemble(spans)
	telemetry.Waterfall(os.Stdout, tree)
	fmt.Printf("\ncritical path: %s\n", telemetry.CriticalPath(tree))
	if !complete {
		fmt.Println("note: trace may be incomplete (ring wrapped or a node was unreachable)")
	}
	return nil
}

// runIndex boots a cluster, loads an ordered B+tree index through one
// client and reads it through another, then prints the tree's shape
// (depth, node count, fanout) and the reader's cache/bloom telemetry —
// the quick health check for "is the index actually serving lookups
// from its cache".
func runIndex(machines, masters int) error {
	ctx, cancel := context.WithTimeout(context.Background(), cmdTimeout)
	defer cancel()
	cluster, err := core.Start(ctx, core.Config{Machines: machines, MasterReplicas: masters})
	if err != nil {
		return err
	}
	defer cluster.Close()

	writerCli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}
	const keys = 400
	opts := index.Options{Nodes: 512, NodeSize: 512, MaxKey: 32}
	tree, err := index.Create(ctx, writerCli, "app/index", opts)
	if err != nil {
		return err
	}
	for i := 0; i < keys; i++ {
		if err := tree.Insert(ctx, workload.OrderedKey(i), []byte(fmt.Sprintf("row-%d", i))); err != nil {
			return err
		}
	}

	readerCli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}
	reader, err := index.Open(ctx, readerCli, "app/index", opts)
	if err != nil {
		return err
	}
	// One cold pass warms the route cache and blooms; the second pass and
	// the misses show what steady state costs.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < keys; i += 7 {
			if _, err := reader.Get(ctx, workload.OrderedKey(i)); err != nil {
				return err
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 32; i++ {
			if _, err := reader.Get(ctx, []byte(fmt.Sprintf("absent-%03d", i))); !errors.Is(err, index.ErrNotFound) {
				return fmt.Errorf("absent key: %v", err)
			}
		}
	}
	ents, err := reader.Scan(ctx, workload.OrderedKey(100), workload.OrderedKey(110))
	if err != nil {
		return err
	}

	st, err := reader.Stats(ctx)
	if err != nil {
		return err
	}
	fanout := 0.0
	if st.Nodes > 0 {
		fanout = float64(keys) / float64(st.Nodes)
	}
	tt := telemetry.NewTable("tree shape", "metric", "value")
	tt.AddRow("keys", keys)
	tt.AddRow("depth", st.Height)
	tt.AddRow("nodes", st.Nodes)
	tt.AddRow("avg-fanout", fmt.Sprintf("%.1f", fanout))
	tt.AddRow("cached-nodes", st.CachedNodes)
	tt.AddRow("cached-blooms", st.CachedBlooms)
	tt.AddRow("splits (writer)", writerCli.Telemetry().Counter("index.splits").Value())
	fmt.Println(tt.String())

	snap := readerCli.Telemetry().Snapshot()
	hits := snap.Counters["index.cache_hits"]
	misses := snap.Counters["index.cache_misses"]
	hitRate := "-"
	if hits+misses > 0 {
		hitRate = fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
	}
	rt := telemetry.NewTable("reader telemetry", "metric", "value")
	rt.AddRow("lookups", snap.Counters["index.lookups"])
	rt.AddRow("cache hits", hits)
	rt.AddRow("cache misses", misses)
	rt.AddRow("cache hit-rate", hitRate)
	rt.AddRow("bloom shortcuts", snap.Counters["index.bloom_shortcuts"])
	rt.AddRow("retraversals", snap.Counters["index.retraversals"])
	rt.AddRow("one-sided reads", snap.Counters["client.reads"])
	fmt.Println(rt.String())

	fmt.Printf("scan [%s, %s):\n", workload.OrderedKey(100), workload.OrderedKey(110))
	for _, e := range ents {
		fmt.Printf("  %s = %q\n", e.Key, e.Val)
	}
	return nil
}

func main() {
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: rstore-cli [flags] [command]\n\ncommands:\n")
		fmt.Fprintf(out, "  demo     populate a demo cluster and dump membership, regions, contents (default)\n")
		fmt.Fprintf(out, "  stats    run a workload and print cluster-wide telemetry\n")
		fmt.Fprintf(out, "  regions  show placement, per-copy health, and generations; kill a server\n")
		fmt.Fprintf(out, "           and watch the repair plane self-heal\n")
		fmt.Fprintf(out, "  trace [id]  trace a workload, assemble the slowest op's distributed trace\n")
		fmt.Fprintf(out, "           (or the given hex trace id), and render its waterfall\n")
		fmt.Fprintf(out, "  index    load an ordered B+tree index and print its shape plus the\n")
		fmt.Fprintf(out, "           reader's cache/bloom telemetry\n")
		fmt.Fprintf(out, "  health   kill a server and follow the health engine through the\n")
		fmt.Fprintf(out, "           incident: alert fires, repair re-homes data, alert resolves\n\nflags:\n")
		flag.PrintDefaults()
	}
	machines := flag.Int("machines", 4, "cluster size")
	masters := flag.Int("masters", 1, "master replicas (nodes 0..N-1; node 0 boots as primary)")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "demo"
	}
	if *masters < 1 {
		*masters = 1
	}
	var err error
	switch cmd {
	case "demo":
		err = runDemo(*machines, *masters)
	case "stats":
		err = runStats(*machines, *masters)
	case "regions":
		err = runRegions(*machines, *masters)
	case "trace":
		err = runTrace(*machines, *masters, flag.Arg(1))
	case "index":
		err = runIndex(*machines, *masters)
	case "health":
		err = runHealth(*machines, *masters)
	default:
		err = fmt.Errorf("unknown command %q (want demo, stats, regions, trace, index, or health)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstore-cli:", err)
		if errors.Is(err, core.ErrMasterUnavailable) {
			fmt.Fprintln(os.Stderr, "rstore-cli: no master replica answered as primary;"+
				" check that the master group (-masters) is up and reachable, then retry")
		}
		os.Exit(1)
	}
}
