// Command rstore-cli boots a demo cluster and walks the store's
// introspection surface. It has two subcommands:
//
//	demo   populate a cluster and dump membership, regions, and contents
//	       (the default, preserving the original behavior)
//	stats  drive a short mixed workload and render the cluster-wide
//	       telemetry the master aggregates from heartbeat snapshots
//
// It doubles as a smoke test of the admin API (ClusterInfo / ListRegions /
// ClusterStats) a real deployment's tooling would use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/metrics"
	"rstore/internal/telemetry"
)

func runDemo(machines int) error {
	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: machines})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}

	// Populate: a few raw regions plus a KV table.
	for i, size := range []uint64{1 << 20, 4 << 20, 512 << 10} {
		name := fmt.Sprintf("app/region-%d", i)
		reg, err := cli.AllocMap(ctx, name, size, core.AllocOptions{})
		if err != nil {
			return err
		}
		if err := reg.Write(ctx, 0, []byte(strings.Repeat(name+";", 4))); err != nil {
			return err
		}
	}
	kv, err := kvstore.Create(ctx, cli, "app/kv", kvstore.Options{Slots: 1024})
	if err != nil {
		return err
	}
	for _, pair := range [][2]string{{"region", "distributed DRAM"}, {"api", "memory-like"}, {"path", "one-sided"}} {
		if err := kv.Put(ctx, []byte(pair[0]), []byte(pair[1])); err != nil {
			return err
		}
	}

	// Inspect: servers.
	servers, err := cli.ClusterInfo(ctx)
	if err != nil {
		return err
	}
	st := metrics.NewTable("memory servers", "node", "capacity-mib", "used-kib", "alive")
	for _, s := range servers {
		st.AddRow(s.Node, s.Capacity>>20, s.Used>>10, s.Alive)
	}
	fmt.Println(st.String())

	// Inspect: regions.
	regions, err := cli.ListRegions(ctx)
	if err != nil {
		return err
	}
	rt := metrics.NewTable("regions", "name", "id", "bytes", "mapped")
	for _, r := range regions {
		rt.AddRow(r.Name, uint64(r.ID), r.Size, r.MapCount)
	}
	fmt.Println(rt.String())

	// Inspect: raw bytes of one region.
	reg, err := cli.Map(ctx, "app/region-0")
	if err != nil {
		return err
	}
	head := make([]byte, 48)
	if err := reg.Read(ctx, 0, head); err != nil {
		return err
	}
	fmt.Printf("app/region-0[0:48] = %q\n", head)

	// Inspect: KV lookups.
	for _, key := range []string{"region", "api", "path"} {
		v, err := kv.Get(ctx, []byte(key))
		if err != nil {
			return err
		}
		fmt.Printf("kv[%s] = %q\n", key, v)
	}
	return nil
}

// runStats boots a cluster, drives a short mixed workload so every layer's
// counters move, then fetches the master's aggregated per-node telemetry —
// the view an operator polls against a running deployment.
func runStats(machines int) error {
	ctx := context.Background()
	const beat = 50 * time.Millisecond
	cluster, err := core.Start(ctx, core.Config{Machines: machines, HeartbeatInterval: beat})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		return err
	}

	// Workload: writes, reads, and atomics against a striped region. The
	// client shares node 1's registry with that node's memory server, so
	// its client.* counters ride the same heartbeat snapshot (the paper
	// co-locates compute with memory servers).
	reg, err := cli.AllocMap(ctx, "app/stats-demo", 8<<20, core.AllocOptions{})
	if err != nil {
		return err
	}
	const chunk = 64 << 10
	buf, err := cli.AllocBuf(chunk)
	if err != nil {
		return err
	}
	for i := 0; i < 64; i++ {
		off := uint64(i) * chunk % ((8 << 20) - chunk)
		if _, err := reg.WriteAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
		if _, err := reg.ReadAt(ctx, off, buf, 0, chunk); err != nil {
			return err
		}
	}
	for i := 0; i < 16; i++ {
		if _, _, err := reg.FetchAdd(ctx, 0, 1); err != nil {
			return err
		}
	}

	// Server snapshots reach the master on heartbeats; poll until every
	// node has reported once.
	var stats []core.NodeStats
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err = cli.ClusterStats(ctx)
		if err != nil {
			return err
		}
		if len(stats) >= machines || time.Now().After(deadline) {
			break
		}
		time.Sleep(beat)
	}
	printStats(stats)
	return nil
}

// printStats renders one column per node for counters and gauges, plus the
// cluster-wide merged latency histograms.
func printStats(stats []core.NodeStats) {
	cols := []string{"metric"}
	names := make(map[string]bool)
	for _, ns := range stats {
		cols = append(cols, fmt.Sprintf("%s@%d", ns.Role, ns.Node))
		for n := range ns.Stats.Counters {
			names[n] = true
		}
		for n := range ns.Stats.Gauges {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	ct := metrics.NewTable("cluster counters", cols...)
	for _, name := range sorted {
		row := []interface{}{name}
		for _, ns := range stats {
			if v, ok := ns.Stats.Counters[name]; ok {
				row = append(row, v)
			} else if v, ok := ns.Stats.Gauges[name]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		ct.AddRow(row...)
	}
	fmt.Println(ct.String())

	var merged telemetry.Snapshot
	for _, ns := range stats {
		merged.Merge(ns.Stats)
	}
	if len(merged.Histograms) == 0 {
		return
	}
	hnames := make([]string, 0, len(merged.Histograms))
	for n := range merged.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	ht := metrics.NewTable("cluster latencies", "metric", "n", "mean", "p50", "p99", "max")
	for _, name := range hnames {
		h := merged.Histograms[name]
		ht.AddRow(name, h.Count,
			time.Duration(h.Mean()),
			time.Duration(h.Quantile(0.5)),
			time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max))
	}
	fmt.Println(ht.String())
}

func main() {
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: rstore-cli [flags] [command]\n\ncommands:\n")
		fmt.Fprintf(out, "  demo   populate a demo cluster and dump membership, regions, contents (default)\n")
		fmt.Fprintf(out, "  stats  run a workload and print cluster-wide telemetry\n\nflags:\n")
		flag.PrintDefaults()
	}
	machines := flag.Int("machines", 4, "cluster size")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "demo"
	}
	var err error
	switch cmd {
	case "demo":
		err = runDemo(*machines)
	case "stats":
		err = runStats(*machines)
	default:
		err = fmt.Errorf("unknown command %q (want demo or stats)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstore-cli:", err)
		os.Exit(1)
	}
}
