// Command rstore-pagerank runs the RStore graph framework's PageRank (the
// paper's first application study) against the message-passing baseline
// and prints per-iteration and total modeled runtimes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"rstore/internal/baseline/msggraph"
	"rstore/internal/core"
	"rstore/internal/graph"
	"rstore/internal/telemetry"
	"rstore/internal/workload"
)

func run() error {
	machines := flag.Int("machines", 12, "cluster size (excluding the master)")
	vertices := flag.Int("vertices", 128<<10, "vertex count")
	edges := flag.Int("edges", 1<<20, "edge count")
	kind := flag.String("graph", "rmat", "graph kind: rmat or uniform")
	iters := flag.Int("iters", 10, "PageRank iterations")
	seed := flag.Int64("seed", 42, "graph seed")
	flag.Parse()

	var (
		g   *workload.Graph
		err error
	)
	switch *kind {
	case "uniform":
		g, err = workload.GenUniform(*vertices, *edges, *seed)
	case "rmat":
		g, err = workload.GenRMAT(*vertices, *edges, *seed)
	default:
		return fmt.Errorf("unknown graph kind %q", *kind)
	}
	if err != nil {
		return err
	}

	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: *machines + 1, ServerCapacity: 256 << 20})
	if err != nil {
		return err
	}
	defer cluster.Close()
	nodes := cluster.MemoryServerNodes()

	eng, err := graph.Load(ctx, cluster, "pr", g, graph.Config{Workers: len(nodes)})
	if err != nil {
		return err
	}
	defer eng.Close()
	rs, err := eng.PageRank(ctx, *iters, 0.85)
	if err != nil {
		return err
	}

	mp, err := msggraph.Load(ctx, cluster.Network(), "pr", g, msggraph.Config{Workers: len(nodes), WorkerNodes: nodes})
	if err != nil {
		return err
	}
	defer mp.Close()
	mpRes, err := mp.PageRank(ctx, *iters, 0.85)
	if err != nil {
		return err
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("PageRank: %s graph, %d vertices, %d edges, %d iterations, %d machines",
			*kind, g.NumVertices, g.NumEdges(), *iters, *machines),
		"iteration", "rstore", "msg-passing")
	for i := range rs.Iterations {
		tbl.AddRow(i, rs.Iterations[i].Modeled, mpRes.Iterations[i].Modeled)
	}
	tbl.AddRow("total", rs.TotalModeled(), mpRes.TotalModeled())
	fmt.Println(tbl.String())
	fmt.Printf("speedup: %.2fx\n", float64(mpRes.TotalModeled())/float64(rs.TotalModeled()))

	type vr struct {
		v uint32
		r float64
	}
	top := make([]vr, 0, len(rs.Values))
	for v, r := range rs.Values {
		top = append(top, vr{uint32(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  v%-8d %.6f\n", t.v, t.r)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rstore-pagerank:", err)
		os.Exit(1)
	}
}
