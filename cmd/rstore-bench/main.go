// Command rstore-bench regenerates the paper's evaluation tables and
// figures on the simulated testbed.
//
// Usage:
//
//	rstore-bench -exp e1          # one experiment
//	rstore-bench -exp all         # everything (takes a few minutes)
//	rstore-bench -exp e1 -json    # also emit BENCH_E1.json (see -out)
//
// Experiment IDs follow DESIGN.md's per-experiment index: e1 latency,
// e2 bandwidth, e3 control path, e4 pagerank, e5 sort, e6 notify,
// e7 multi-client, e8 repair MTTR, e9 failover MTTR, e10 txn contention,
// e11 ordered index, a1 stripe width, a2 replication, a3 qp-sharing,
// a4 kv-store.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"rstore/internal/bench"
	"rstore/internal/telemetry"
)

type experiment struct {
	id   string
	desc string
	run  func(context.Context) (*telemetry.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"e1", "read/write latency vs transfer size", bench.E1Latency},
		{"e2", "aggregate bandwidth vs machines", bench.E2Bandwidth},
		{"e3", "control path vs data path", bench.E3ControlPath},
		{"e4", "PageRank vs message passing", func(ctx context.Context) (*telemetry.Table, error) {
			return bench.E4PageRank(ctx, nil)
		}},
		{"e5", "KV sort vs MapReduce", func(ctx context.Context) (*telemetry.Table, error) {
			return bench.E5Sort(ctx, nil)
		}},
		{"e6", "notification latency", bench.E6Notify},
		{"e7", "small-op throughput vs clients", bench.E7MultiClient},
		{"e8", "repair MTTR vs region size", bench.E8RepairMTTR},
		{"e9", "master failover MTTR vs lease term", bench.E9FailoverMTTR},
		{"e10", "optimistic txn abort rate vs contention", bench.E10TxnContention},
		{"e11", "ordered index: point vs range vs skew", bench.E11Index},
		{"a1", "ablation: stripe width", bench.A1Stripe},
		{"a2", "ablation: replication", bench.A2Replication},
		{"a3", "ablation: QP sharing", bench.A3QPSharing},
		{"a4", "KV store on the memory API", bench.A4KVStore},
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment id (e1..e10, a1..a4) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "also write BENCH_<ID>.json per experiment (machine-readable trajectory)")
	outDir := flag.String("out", ".", "directory for -json reports")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return nil
	}

	selected := map[string]bool{}
	if *exp == "all" {
		for _, e := range exps {
			selected[e.id] = true
		}
	} else {
		selected[*exp] = true
	}
	var ids []string
	for id := range selected {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ctx := context.Background()
	ran := false
	for _, e := range exps {
		if !selected[e.id] {
			continue
		}
		ran = true
		fmt.Printf("# %s: %s\n", e.id, e.desc)
		tbl, err := e.run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(tbl.String())
		if *jsonOut {
			path, err := bench.NewReport(e.id, tbl).Write(*outDir)
			if err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rstore-bench:", err)
		os.Exit(1)
	}
}
