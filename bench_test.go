package rstore

import (
	"context"
	"strconv"
	"testing"

	"rstore/internal/bench"
	"rstore/internal/telemetry"
)

// The benchmarks below regenerate the paper's evaluation, one Benchmark
// per table/figure (see DESIGN.md's per-experiment index). Each iteration
// runs the full experiment and prints the resulting table once; the key
// scalar of each experiment is also reported as a custom benchmark metric
// so `go test -bench` output captures the headline numbers.

// runExperiment executes fn b.N times, logging the table from the final
// run.
func runExperiment(b *testing.B, fn func(context.Context) (*telemetry.Table, error)) *telemetry.Table {
	b.Helper()
	ctx := context.Background()
	var tbl *telemetry.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = fn(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
	return tbl
}

func lastCellFloat(b *testing.B, tbl *telemetry.Table, col int) float64 {
	b.Helper()
	rows := tbl.Rows()
	if len(rows) == 0 {
		b.Fatal("empty table")
	}
	v, err := strconv.ParseFloat(rows[len(rows)-1][col], 64)
	if err != nil {
		b.Fatalf("cell %q: %v", rows[len(rows)-1][col], err)
	}
	return v
}

// BenchmarkE1Latency regenerates the latency-vs-size comparison (raw
// verbs / RStore / two-sided store).
func BenchmarkE1Latency(b *testing.B) {
	runExperiment(b, bench.E1Latency)
}

// BenchmarkE2Bandwidth regenerates the aggregate-bandwidth scaling figure
// (the paper's 705 Gb/s at 12 machines).
func BenchmarkE2Bandwidth(b *testing.B) {
	tbl := runExperiment(b, bench.E2Bandwidth)
	b.ReportMetric(lastCellFloat(b, tbl, 2), "agg-Gbps@12")
}

// BenchmarkE3ControlPath regenerates the control-path versus data-path
// separation measurement.
func BenchmarkE3ControlPath(b *testing.B) {
	runExperiment(b, bench.E3ControlPath)
}

// BenchmarkE4PageRank regenerates the graph-processing comparison (paper:
// 2.6-4.2x over message-passing systems).
func BenchmarkE4PageRank(b *testing.B) {
	tbl := runExperiment(b, func(ctx context.Context) (*telemetry.Table, error) {
		return bench.E4PageRank(ctx, nil)
	})
	b.ReportMetric(lastCellFloat(b, tbl, 5), "speedup")
}

// BenchmarkE5Sort regenerates the sort comparison (paper: 256 GB in
// 31.7s, 8x over Hadoop TeraSort); the last row extrapolates to 256 GB.
func BenchmarkE5Sort(b *testing.B) {
	tbl := runExperiment(b, func(ctx context.Context) (*telemetry.Table, error) {
		return bench.E5Sort(ctx, nil)
	})
	b.ReportMetric(lastCellFloat(b, tbl, 4), "speedup@256GB")
}

// BenchmarkE6Notify regenerates the notification-latency measurement.
func BenchmarkE6Notify(b *testing.B) {
	runExperiment(b, bench.E6Notify)
}

// BenchmarkE7MultiClient regenerates small-op throughput scaling with
// client count.
func BenchmarkE7MultiClient(b *testing.B) {
	runExperiment(b, bench.E7MultiClient)
}

// BenchmarkE8RepairMTTR regenerates the repair-plane MTTR sweep (not in
// the paper; measures the reproduction's self-healing plane).
func BenchmarkE8RepairMTTR(b *testing.B) {
	runExperiment(b, bench.E8RepairMTTR)
}

// BenchmarkA1Stripe regenerates the stripe-unit ablation.
func BenchmarkA1Stripe(b *testing.B) {
	runExperiment(b, bench.A1Stripe)
}

// BenchmarkA2Replication regenerates the replication-cost ablation.
func BenchmarkA2Replication(b *testing.B) {
	runExperiment(b, bench.A2Replication)
}

// BenchmarkA3QPSharing regenerates the connection-amortization ablation.
func BenchmarkA3QPSharing(b *testing.B) {
	runExperiment(b, bench.A3QPSharing)
}

// BenchmarkA4KVStore measures the key-value layer built on the memory API
// (read-heavy and mixed workloads).
func BenchmarkA4KVStore(b *testing.B) {
	runExperiment(b, bench.A4KVStore)
}
