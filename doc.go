// Package rstore is the module root of an from-scratch reproduction of
// "RStore: A Direct-Access DRAM-based Data Store" (Trivedi et al., IEEE
// ICDCS 2015).
//
// The system lives under internal/: a software RDMA verbs layer over a
// simulated fabric (internal/rdma, internal/simnet), the RStore master,
// memory servers, and client library (internal/master, internal/memserver,
// internal/client), the assembled cluster plus public API facade
// (internal/core), the paper's two application studies (internal/graph,
// internal/kvsort), their comparators (internal/baseline/...), and the
// evaluation harness (internal/bench).
//
// Start with README.md for a tour, DESIGN.md for the architecture and
// per-experiment index, and EXPERIMENTS.md for the paper-versus-measured
// record. The root bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package rstore
