// Kvsort: the paper's second application study in miniature — generate
// TeraSort-style records into an RStore region, sort them with the
// one-sided shuffle (FETCH_ADD cursors, no receiver CPU), and verify.
//
// Run with: go run ./examples/kvsort
package main

import (
	"context"
	"fmt"
	"log"

	"rstore/internal/core"
	"rstore/internal/kvsort"
	"rstore/internal/workload"
)

func main() {
	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: 5, ServerCapacity: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	sorter, err := kvsort.New(ctx, cluster, kvsort.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sorter.Close()

	const records = 200_000 // 20 MB
	if err := sorter.GenerateInput(ctx, "example", records, 2026); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d records (%d MB) across %d memory servers\n",
		records, records*workload.RecordSize>>20, len(cluster.MemoryServerNodes()))

	res, err := sorter.Run(ctx, "example", records)
	if err != nil {
		log.Fatal(err)
	}
	if err := sorter.Validate(ctx, res.OutputRegion, records); err != nil {
		log.Fatal(err)
	}
	fmt.Println("output verified globally sorted")
	fmt.Printf("modeled time:   %v total\n", res.Modeled)
	fmt.Printf("  sample phase: %v\n", res.Sample.Modeled)
	fmt.Printf("  shuffle:      %v (%d MB moved one-sided)\n", res.Shuffle.Modeled, res.Shuffle.Bytes>>20)
	fmt.Printf("  local sort:   %v\n", res.Sort.Modeled)
}
