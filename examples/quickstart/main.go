// Quickstart: boot an RStore cluster in-process, allocate a region of
// distributed DRAM, and access it like memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rstore/internal/core"
)

func main() {
	ctx := context.Background()

	// A 4-machine cluster: node 0 runs the master, nodes 1-3 donate DRAM.
	cluster, err := core.Start(ctx, core.Config{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A client on machine 1.
	cli, err := cluster.NewClient(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Control path (slow, once): allocate 8 MiB striped across all
	// memory servers and map it.
	reg, err := cli.AllocMap(ctx, "quickstart/data", 8<<20, core.AllocOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %q: %d MiB over servers %v\n",
		reg.Name(), reg.Size()>>20, reg.Info().Servers())

	// Data path (fast, forever after): one-sided writes and reads.
	if err := reg.Write(ctx, 1024, []byte("distributed DRAM, memory-like API")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 33)
	if err := reg.Read(ctx, 1024, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", buf)

	// Atomics work on the same address space.
	old, _, err := reg.FetchAdd(ctx, 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetch-add: counter was %d, now 42\n", old)
}
