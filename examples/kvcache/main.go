// Kvcache: a cluster-wide key-value cache assembled from RStore's
// primitives alone — a striped region, one-sided reads/writes, and RDMA
// compare-and-swap. Three clients on different machines share one table
// with zero server-side code.
//
// Run with: go run ./examples/kvcache
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/simnet"
)

func main() {
	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Machine 1 creates the table.
	creator, err := cluster.NewClient(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := kvstore.Create(ctx, creator, "cache", kvstore.Options{Slots: 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created shared table: %d slots, max entry %d bytes\n",
		table.Capacity(), table.MaxEntry())

	// Machines 1-3 each fill their own namespace concurrently.
	var wg sync.WaitGroup
	for m := 1; m <= 3; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			cli, err := cluster.NewClient(ctx, simnet.NodeID(m))
			if err != nil {
				log.Fatal(err)
			}
			kv, err := kvstore.Open(ctx, cli, "cache", kvstore.Options{Slots: 4096})
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("m%d/item-%02d", m, i)
				val := fmt.Sprintf("payload-%d-%d", m, i*i)
				if err := kv.Put(ctx, []byte(key), []byte(val)); err != nil {
					log.Fatalf("machine %d put: %v", m, err)
				}
			}
		}(m)
	}
	wg.Wait()
	fmt.Println("3 machines wrote 150 entries concurrently")

	// Any machine reads everything back.
	reader, err := cluster.NewClient(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	kv, err := kvstore.Open(ctx, reader, "cache", kvstore.Options{Slots: 4096})
	if err != nil {
		log.Fatal(err)
	}
	checked := 0
	for m := 1; m <= 3; m++ {
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("m%d/item-%02d", m, i)
			want := fmt.Sprintf("payload-%d-%d", m, i*i)
			got, err := kv.Get(ctx, []byte(key))
			if err != nil {
				log.Fatalf("get %s: %v", key, err)
			}
			if string(got) != want {
				log.Fatalf("get %s = %q, want %q", key, got, want)
			}
			checked++
		}
	}
	fmt.Printf("verified all %d entries from machine 2\n", checked)

	// Delete a namespace and confirm.
	for i := 0; i < 50; i++ {
		if err := kv.Delete(ctx, []byte(fmt.Sprintf("m1/item-%02d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := kv.Get(ctx, []byte("m1/item-00")); err == nil {
		log.Fatal("deleted key still present")
	}
	fmt.Println("namespace m1 deleted; other namespaces intact")
	v, err := kv.Get(ctx, []byte("m3/item-49"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m3/item-49 = %q\n", v)
}
