// Notify: a producer/consumer pipeline over shared distributed memory —
// the producer deposits items with one-sided writes and signals consumers
// through RStore's notification mechanism; consumers claim items with
// FETCH_ADD so each item is processed exactly once.
//
// Run with: go run ./examples/notify
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"rstore/internal/core"
	"rstore/internal/simnet"
)

const (
	items    = 12
	itemSize = 4096
	// Layout: [0,8) claim cursor, [64, ...) item slots.
	slotBase = 64
)

func main() {
	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	producer, err := cluster.NewClient(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := producer.Alloc(ctx, "pipeline", slotBase+items*itemSize, core.AllocOptions{StripeWidth: 1}); err != nil {
		log.Fatal(err)
	}
	preg, err := producer.Map(ctx, "pipeline")
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	processed := make([]int, 2)
	for c := 0; c < 2; c++ {
		consumer, err := cluster.NewClient(ctx, simnet.NodeID(2+c)) // nodes 2, 3
		if err != nil {
			log.Fatal(err)
		}
		creg, err := consumer.Map(ctx, "pipeline")
		if err != nil {
			log.Fatal(err)
		}
		ch, unsub, err := creg.Subscribe(ctx)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer unsub()
			for range ch {
				// Claim the next unprocessed item. Notifications wake every
				// subscriber, so claims can momentarily outpace deposits;
				// the ready flag in each slot closes that race.
				idx, _, err := creg.FetchAdd(ctx, 0, 1)
				if err != nil || idx >= items {
					return
				}
				item := make([]byte, itemSize)
				for {
					if err := creg.Read(ctx, uint64(slotBase+idx*itemSize), item); err != nil {
						log.Printf("consumer %d: %v", c, err)
						return
					}
					if item[itemSize-1] == 1 { // ready flag
						break
					}
					time.Sleep(time.Millisecond)
				}
				got := binary.LittleEndian.Uint64(item)
				fmt.Printf("consumer %d processed item %d (payload %d)\n", c, idx, got)
				processed[c]++
				if idx == items-1 {
					return
				}
			}
		}(c)
	}

	// Produce items, notifying after each deposit.
	item := make([]byte, itemSize)
	for i := 0; i < items; i++ {
		binary.LittleEndian.PutUint64(item, uint64(i*i))
		item[itemSize-1] = 1 // ready flag, written with the payload
		if err := preg.Write(ctx, uint64(slotBase+i*itemSize), item); err != nil {
			log.Fatal(err)
		}
		if err := preg.Notify(ctx, uint32(i)); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Wake any consumer still waiting.
	for i := 0; i < 4; i++ {
		_ = preg.Notify(ctx, 999)
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	fmt.Printf("done: consumer 0 handled %d items, consumer 1 handled %d (total %d)\n",
		processed[0], processed[1], processed[0]+processed[1])
}
