// Graphrank: the paper's first application study in miniature — run
// PageRank, BFS, and connected components on a power-law graph stored in
// RStore, with every superstep pulling remote vertex state through
// one-sided reads.
//
// Run with: go run ./examples/graphrank
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"rstore/internal/core"
	"rstore/internal/graph"
	"rstore/internal/workload"
)

func main() {
	ctx := context.Background()
	cluster, err := core.Start(ctx, core.Config{Machines: 5, ServerCapacity: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A 16k-vertex RMAT graph stands in for a small social network.
	g, err := workload.GenRMAT(16<<10, 160<<10, 7)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := graph.Load(ctx, cluster, "social", g, graph.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("loaded %d vertices / %d edges into RStore across %d workers\n",
		eng.Vertices(), eng.Edges(), len(cluster.MemoryServerNodes()))

	// PageRank.
	pr, err := eng.PageRank(ctx, 10, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	type vr struct {
		v uint32
		r float64
	}
	top := make([]vr, 0, len(pr.Values))
	for v, r := range pr.Values {
		top = append(top, vr{uint32(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("PageRank top 5:")
	for _, t := range top[:5] {
		fmt.Printf("  v%-7d rank %.5f\n", t.v, t.r)
	}
	fmt.Printf("  10 iterations, modeled %v, %d MiB of one-sided reads\n",
		pr.TotalModeled(), totalRead(pr)>>20)

	// BFS from the top-ranked vertex.
	bfs, err := eng.BFS(ctx, top[0].v, 64)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	maxHop := 0.0
	for _, d := range bfs.Values {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxHop {
				maxHop = d
			}
		}
	}
	fmt.Printf("BFS from v%d: reached %d vertices, diameter-bound %d, %d supersteps\n",
		top[0].v, reached, int(maxHop), len(bfs.Iterations))

	// Weakly connected components (on the symmetrized graph).
	eng2, err := graph.Load(ctx, cluster, "social-sym", g.Symmetrized(), graph.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	wcc, err := eng2.WCC(ctx, 64)
	if err != nil {
		log.Fatal(err)
	}
	comps := map[float64]int{}
	for _, c := range wcc.Values {
		comps[c]++
	}
	fmt.Printf("WCC: %d components (largest %d vertices)\n", len(comps), largest(comps))
}

func totalRead(r *graph.Result) int64 {
	var b int64
	for _, it := range r.Iterations {
		b += it.ReadBytes
	}
	return b
}

func largest(m map[float64]int) int {
	max := 0
	for _, n := range m {
		if n > max {
			max = n
		}
	}
	return max
}
