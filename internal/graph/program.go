package graph

import "math"

// program is a vertex program in gather-apply form over float64 state:
// each superstep, a vertex aggregates one contribution per in-edge and
// applies the aggregate to produce its next value.
type program struct {
	// init seeds vertex state.
	init func(v uint32) float64
	// edge maps an in-neighbor's (value, out-degree, edge weight) to a
	// contribution. Weight is 0 on unweighted graphs.
	edge func(srcVal float64, srcOutDeg uint32, weight float32) float64
	// agg folds contributions; identity is its unit.
	agg      func(a, b float64) float64
	identity float64
	// apply produces the next value from the aggregate (has reports
	// whether any contribution arrived) and the previous value.
	apply func(v uint32, acc float64, has bool, old float64) float64
}

func sum(a, b float64) float64 { return a + b }

func minAgg(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pageRankProgram is the standard damped power iteration:
// pr'(v) = (1-d)/N + d * sum_{u->v} pr(u)/outdeg(u).
func pageRankProgram(n int, damping float64) program {
	base := (1 - damping) / float64(n)
	return program{
		init: func(uint32) float64 { return 1 / float64(n) },
		edge: func(val float64, outDeg uint32, _ float32) float64 {
			if outDeg == 0 {
				return 0
			}
			return val / float64(outDeg)
		},
		agg:      sum,
		identity: 0,
		apply: func(_ uint32, acc float64, _ bool, _ float64) float64 {
			return base + damping*acc
		},
	}
}

// bfsProgram computes hop counts from source via min-propagation.
func bfsProgram(source uint32) program {
	return program{
		init: func(v uint32) float64 {
			if v == source {
				return 0
			}
			return math.Inf(1)
		},
		edge:     func(val float64, _ uint32, _ float32) float64 { return val + 1 },
		agg:      minAgg,
		identity: math.Inf(1),
		apply: func(_ uint32, acc float64, has bool, old float64) float64 {
			if has && acc < old {
				return acc
			}
			return old
		},
	}
}

// ssspProgram computes single-source shortest paths over edge weights via
// Bellman-Ford-style min-propagation.
func ssspProgram(source uint32) program {
	return program{
		init: func(v uint32) float64 {
			if v == source {
				return 0
			}
			return math.Inf(1)
		},
		edge:     func(val float64, _ uint32, w float32) float64 { return val + float64(w) },
		agg:      minAgg,
		identity: math.Inf(1),
		apply: func(_ uint32, acc float64, has bool, old float64) float64 {
			if has && acc < old {
				return acc
			}
			return old
		},
	}
}

// wccProgram labels every vertex with the smallest vertex id reachable
// from it (on a symmetric graph: its weakly connected component).
func wccProgram() program {
	return program{
		init:     func(v uint32) float64 { return float64(v) },
		edge:     func(val float64, _ uint32, _ float32) float64 { return val },
		agg:      minAgg,
		identity: math.Inf(1),
		apply: func(_ uint32, acc float64, has bool, old float64) float64 {
			if has && acc < old {
				return acc
			}
			return old
		},
	}
}
