// Package graph implements the distributed graph processing framework the
// paper builds on RStore's memory-like API (its first application study).
//
// The design mirrors the paper's: graph topology and vertex state live in
// striped RStore regions; compute workers own contiguous vertex ranges and
// run bulk-synchronous supersteps. The key property the paper evaluates —
// low-latency direct access to remote graph state — shows up here as the
// *pull model*: in each superstep a worker reads exactly the remote vertex
// values its partition needs with one-sided RDMA reads, computes, and
// writes its owned slice back. No messages, no server CPU, no
// serialization.
//
// The message-passing comparator the paper beats lives in
// internal/baseline/msggraph.
package graph

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
	"rstore/internal/workload"
)

// Config tunes an engine.
type Config struct {
	// Workers is the number of compute workers. Default: one per memory
	// server node.
	Workers int
	// WorkerNodes optionally pins workers to fabric nodes; default
	// round-robins over the cluster's memory-server nodes (the paper
	// co-locates compute and memory).
	WorkerNodes []simnet.NodeID
	// StripeUnit for the backing regions. Default 256 KiB.
	StripeUnit uint64
	// GapCoalesce merges needed-value ranges separated by fewer than this
	// many vertices into one read. Default 512.
	GapCoalesce int
	// ComputePerEdge is the modeled CPU cost per edge per superstep.
	// Default 2ns.
	ComputePerEdge time.Duration
	// BarrierCost is the modeled cost of the end-of-superstep barrier.
	// Default 10us.
	BarrierCost time.Duration
}

func (c Config) withDefaults(cluster *core.Cluster) Config {
	if c.Workers <= 0 {
		c.Workers = len(cluster.MemoryServerNodes())
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 256 << 10
	}
	if c.GapCoalesce <= 0 {
		c.GapCoalesce = 512
	}
	if c.ComputePerEdge <= 0 {
		c.ComputePerEdge = 2 * time.Nanosecond
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = 10 * time.Microsecond
	}
	return c
}

// IterStats reports one superstep.
type IterStats struct {
	// Modeled is the superstep's modeled wall time: the slowest worker's
	// read+compute+write plus the barrier.
	Modeled time.Duration
	// ReadBytes and WriteBytes count one-sided data-path traffic.
	ReadBytes  int64
	WriteBytes int64
	// Fragments counts one-sided operations issued.
	Fragments int
	// Changed counts vertices whose value changed (fixpoint programs).
	Changed int64
}

// Result is a completed run.
type Result struct {
	Iterations []IterStats
	// Values is the final vertex state.
	Values []float64
}

// TotalModeled sums the per-iteration modeled times.
func (r *Result) TotalModeled() time.Duration {
	var t time.Duration
	for _, it := range r.Iterations {
		t += it.Modeled
	}
	return t
}

// vrange is a half-open vertex range [Lo, Hi).
type vrange struct {
	lo, hi uint32
}

// worker is one compute participant.
type worker struct {
	id     int
	cli    *client.Client
	owned  vrange
	needed []vrange // coalesced remote value ranges to read each superstep

	// Locally cached immutable topology for the owned range.
	inOffsets []uint64 // len owned+1, rebased to 0
	inTargets []uint32
	inWeights []float32 // parallel to inTargets; nil when unweighted
	outDeg    []uint32  // full array (small, immutable)

	valRegions [2]*client.Region
	readBuf    *client.Buf // holds fetched neighbor values, indexed via blockIndex
	writeBuf   *client.Buf // holds owned new values

	// neededIndex maps a vertex id to its offset in readBuf (values are
	// packed in needed-range order).
	neededBase []uint32 // parallel to needed: cumulative value counts
}

// Engine is a loaded distributed graph ready to run vertex programs.
type Engine struct {
	cfg      Config
	cluster  *core.Cluster
	name     string
	n        int // vertices
	m        int // edges
	bounds   []uint32
	workers  []*worker
	cur      int // index of the current value region (0 or 1)
	weighted bool

	setup core.ControlStats
}

// Load partitions the graph, writes topology and initial state into RStore
// regions, and prepares one worker per partition. The returned engine owns
// its clients; Close releases them.
func Load(ctx context.Context, cluster *core.Cluster, name string, g *workload.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults(cluster)
	e := &Engine{
		cfg:      cfg,
		cluster:  cluster,
		name:     name,
		n:        g.NumVertices,
		m:        g.NumEdges(),
		bounds:   g.PartitionByEdges(cfg.Workers),
		weighted: g.Weighted(),
	}

	nodes := cfg.WorkerNodes
	if len(nodes) == 0 {
		nodes = cluster.MemoryServerNodes()
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("graph: cluster has no nodes for workers")
	}

	// The loader client seeds the regions.
	loader, err := cluster.NewClient(ctx, nodes[0])
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if err := e.seedRegions(ctx, loader, g); err != nil {
		loader.Close()
		return nil, err
	}
	loader.Close()

	for w := 0; w < cfg.Workers; w++ {
		wk, err := e.newWorker(ctx, w, nodes[w%len(nodes)], g)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.workers = append(e.workers, wk)
		e.setup = addStats(e.setup, wk.cli.ControlStats())
	}
	return e, nil
}

func addStats(a, b core.ControlStats) core.ControlStats {
	a.RPCTime += b.RPCTime
	a.ConnectTime += b.ConnectTime
	a.RegisterTime += b.RegisterTime
	a.RPCs += b.RPCs
	a.Connects += b.Connects
	a.Registers += b.Registers
	return a
}

// SetupStats reports the modeled control-path cost of loading (all
// workers' allocations, maps, connects, registrations).
func (e *Engine) SetupStats() core.ControlStats { return e.setup }

// Vertices returns the vertex count.
func (e *Engine) Vertices() int { return e.n }

// Edges returns the edge count.
func (e *Engine) Edges() int { return e.m }

func (e *Engine) regionName(kind string) string { return e.name + "/" + kind }

// seedRegions allocates and populates the distributed graph state.
func (e *Engine) seedRegions(ctx context.Context, cli *client.Client, g *workload.Graph) error {
	opts := client.AllocOptions{StripeUnit: e.cfg.StripeUnit}
	type seed struct {
		kind string
		size uint64
		fill func([]byte)
	}
	seeds := []seed{
		{"inoffsets", uint64(e.n+1) * 8, func(b []byte) {
			for i, v := range g.InOffsets {
				binary.LittleEndian.PutUint64(b[i*8:], v)
			}
		}},
		{"intargets", uint64(e.m) * 4, func(b []byte) {
			for i, v := range g.InTargets {
				binary.LittleEndian.PutUint32(b[i*4:], v)
			}
		}},
		{"outdeg", uint64(e.n) * 4, func(b []byte) {
			for i, v := range g.OutDegree {
				binary.LittleEndian.PutUint32(b[i*4:], v)
			}
		}},
		{"val0", uint64(e.n) * 8, nil},
		{"val1", uint64(e.n) * 8, nil},
	}
	if e.weighted {
		seeds = append(seeds, seed{"inweights", uint64(e.m) * 4, func(b []byte) {
			for i, w := range g.InWeights {
				binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(w))
			}
		}})
	}
	for _, sd := range seeds {
		reg, err := cli.AllocMap(ctx, e.regionName(sd.kind), sd.size, opts)
		if err != nil {
			return fmt.Errorf("graph: seed %s: %w", sd.kind, err)
		}
		if sd.fill != nil && sd.size > 0 {
			buf := make([]byte, sd.size)
			sd.fill(buf)
			if err := reg.Write(ctx, 0, buf); err != nil {
				return fmt.Errorf("graph: seed %s: %w", sd.kind, err)
			}
		}
		if err := reg.Unmap(ctx); err != nil {
			return fmt.Errorf("graph: seed %s: %w", sd.kind, err)
		}
	}
	return nil
}

// newWorker builds worker w: maps regions, caches owned topology, computes
// the coalesced needed-value ranges.
func (e *Engine) newWorker(ctx context.Context, w int, node simnet.NodeID, g *workload.Graph) (*worker, error) {
	cli, err := e.cluster.NewClient(ctx, node)
	if err != nil {
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	wk := &worker{
		id:    w,
		cli:   cli,
		owned: vrange{e.bounds[w], e.bounds[w+1]},
	}
	for i, kind := range []string{"val0", "val1"} {
		reg, err := cli.Map(ctx, e.regionName(kind))
		if err != nil {
			cli.Close()
			return nil, fmt.Errorf("graph: worker %d map %s: %w", w, kind, err)
		}
		wk.valRegions[i] = reg
	}

	// Cache the owned slice of topology locally: read it from RStore once
	// (this is setup, amortized over all supersteps).
	lo, hi := wk.owned.lo, wk.owned.hi
	own := int(hi - lo)
	topo, err := cli.Map(ctx, e.regionName("inoffsets"))
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	offBytes := make([]byte, (own+1)*8)
	if own > 0 {
		if err := topo.Read(ctx, uint64(lo)*8, offBytes); err != nil {
			cli.Close()
			return nil, fmt.Errorf("graph: worker %d read offsets: %w", w, err)
		}
	}
	wk.inOffsets = make([]uint64, own+1)
	for i := range wk.inOffsets {
		wk.inOffsets[i] = binary.LittleEndian.Uint64(offBytes[i*8:])
	}

	targets, err := cli.Map(ctx, e.regionName("intargets"))
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	edgeLo, edgeHi := uint64(0), uint64(0)
	if own > 0 {
		edgeLo, edgeHi = wk.inOffsets[0], wk.inOffsets[own]
	}
	tgtBytes := make([]byte, (edgeHi-edgeLo)*4)
	if len(tgtBytes) > 0 {
		if err := targets.Read(ctx, edgeLo*4, tgtBytes); err != nil {
			cli.Close()
			return nil, fmt.Errorf("graph: worker %d read targets: %w", w, err)
		}
	}
	wk.inTargets = make([]uint32, edgeHi-edgeLo)
	for i := range wk.inTargets {
		wk.inTargets[i] = binary.LittleEndian.Uint32(tgtBytes[i*4:])
	}
	// Rebase offsets to the local target slice.
	for i := range wk.inOffsets {
		wk.inOffsets[i] -= edgeLo
	}

	if e.weighted {
		weights, err := cli.Map(ctx, e.regionName("inweights"))
		if err != nil {
			cli.Close()
			return nil, fmt.Errorf("graph: worker %d: %w", w, err)
		}
		wBytes := make([]byte, (edgeHi-edgeLo)*4)
		if len(wBytes) > 0 {
			if err := weights.Read(ctx, edgeLo*4, wBytes); err != nil {
				cli.Close()
				return nil, fmt.Errorf("graph: worker %d read weights: %w", w, err)
			}
		}
		wk.inWeights = make([]float32, edgeHi-edgeLo)
		for i := range wk.inWeights {
			wk.inWeights[i] = math.Float32frombits(binary.LittleEndian.Uint32(wBytes[i*4:]))
		}
	}

	outReg, err := cli.Map(ctx, e.regionName("outdeg"))
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	outBytes := make([]byte, e.n*4)
	if err := outReg.Read(ctx, 0, outBytes); err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d read outdeg: %w", w, err)
	}
	wk.outDeg = make([]uint32, e.n)
	for i := range wk.outDeg {
		wk.outDeg[i] = binary.LittleEndian.Uint32(outBytes[i*4:])
	}

	wk.computeNeeded(e.n, e.cfg.GapCoalesce)

	// Buffers: fetched neighbor values plus owned output slice.
	var neededVals int
	for _, r := range wk.needed {
		neededVals += int(r.hi - r.lo)
	}
	if neededVals == 0 {
		neededVals = 1
	}
	wk.readBuf, err = cli.AllocBuf(neededVals * 8)
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	if own == 0 {
		own = 1
	}
	wk.writeBuf, err = cli.AllocBuf(own * 8)
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("graph: worker %d: %w", w, err)
	}
	return wk, nil
}

// computeNeeded builds the coalesced list of remote vertex ranges whose
// values this worker reads each superstep: the distinct sources of its
// owned vertices' in-edges.
func (wk *worker) computeNeeded(n, gap int) {
	need := make([]bool, n)
	for _, u := range wk.inTargets {
		need[u] = true
	}
	var ranges []vrange
	i := 0
	for i < n {
		if !need[i] {
			i++
			continue
		}
		j := i + 1
		lastTrue := i
		for j < n {
			if need[j] {
				lastTrue = j
				j++
				continue
			}
			// Look ahead: coalesce across a small gap.
			k := j
			for k < n && !need[k] && k-lastTrue <= gap {
				k++
			}
			if k < n && need[k] && k-lastTrue <= gap {
				j = k
				continue
			}
			break
		}
		ranges = append(ranges, vrange{uint32(i), uint32(lastTrue + 1)})
		i = lastTrue + 1
	}
	wk.needed = ranges
	wk.neededBase = make([]uint32, len(ranges)+1)
	for i, r := range ranges {
		wk.neededBase[i+1] = wk.neededBase[i] + (r.hi - r.lo)
	}
}

// lookup returns the fetched value of vertex u from the read buffer.
func (wk *worker) lookup(u uint32) float64 {
	// Binary search over needed ranges.
	lo, hi := 0, len(wk.needed)
	for lo < hi {
		mid := (lo + hi) / 2
		if wk.needed[mid].hi <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r := wk.needed[lo]
	idx := wk.neededBase[lo] + (u - r.lo)
	return math.Float64frombits(binary.LittleEndian.Uint64(wk.readBuf.Bytes()[idx*8:]))
}

// Close releases all workers' clients.
func (e *Engine) Close() {
	for _, wk := range e.workers {
		wk.cli.Close()
	}
	e.workers = nil
}

// runSuperstep executes one BSP round of the program over all workers in
// parallel and returns the iteration stats.
func (e *Engine) runSuperstep(ctx context.Context, p program) (IterStats, error) {
	type wres struct {
		modeled time.Duration
		readB   int64
		writeB  int64
		frags   int
		changed int64
		err     error
	}
	results := make([]wres, len(e.workers))
	phase0 := e.cluster.Fabric().VNow()
	var wg sync.WaitGroup
	for i, wk := range e.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			res := &results[i]

			// Phase 1: gather needed remote values (pipelined one-sided
			// reads).
			cur := wk.valRegions[e.cur]
			var pendings []*client.Pending
			for ri, r := range wk.needed {
				n := int(r.hi-r.lo) * 8
				pend, err := cur.StartReadAt(ctx, uint64(r.lo)*8, wk.readBuf, int(wk.neededBase[ri])*8, n)
				if err != nil {
					res.err = err
					return
				}
				pendings = append(pendings, pend)
				res.readB += int64(n)
			}
			readFirst, readLast := phase0, phase0
			for _, pend := range pendings {
				st, err := pend.Wait(ctx)
				if err != nil {
					res.err = err
					return
				}
				if st.DoneV > readLast {
					readLast = st.DoneV
				}
				res.frags += st.Fragments
			}

			// Phase 2: compute owned values.
			own := int(wk.owned.hi - wk.owned.lo)
			edges := 0
			changed := int64(0)
			for v := 0; v < own; v++ {
				gv := wk.owned.lo + uint32(v)
				acc, has := p.identity, false
				base := wk.inOffsets[v]
				for k, u := range wk.inTargets[base:wk.inOffsets[v+1]] {
					var weight float32
					if wk.inWeights != nil {
						weight = wk.inWeights[base+uint64(k)]
					}
					c := p.edge(wk.lookup(u), wk.outDeg[u], weight)
					acc = p.agg(acc, c)
					has = true
					edges++
				}
				old := math.Float64frombits(binary.LittleEndian.Uint64(wk.writeBuf.Bytes()[v*8:]))
				nv := p.apply(gv, acc, has, old)
				if nv != old {
					changed++
				}
				binary.LittleEndian.PutUint64(wk.writeBuf.Bytes()[v*8:], math.Float64bits(nv))
			}

			// Phase 3: publish owned slice to the next region.
			next := wk.valRegions[1-e.cur]
			var wlat time.Duration
			if own > 0 {
				st, err := next.WriteAt(ctx, uint64(wk.owned.lo)*8, wk.writeBuf, 0, own*8)
				if err != nil {
					res.err = err
					return
				}
				res.writeB += int64(own * 8)
				res.frags += st.Fragments
				wlat = st.Latency().Duration()
			}

			compute := time.Duration(edges) * e.cfg.ComputePerEdge
			res.modeled = readLast.Sub(readFirst) + compute + wlat
			res.changed = changed
		}(i, wk)
	}
	wg.Wait()

	var st IterStats
	for _, r := range results {
		if r.err != nil {
			return st, fmt.Errorf("graph: superstep: %w", r.err)
		}
		if r.modeled > st.Modeled {
			st.Modeled = r.modeled
		}
		st.ReadBytes += r.readB
		st.WriteBytes += r.writeB
		st.Fragments += r.frags
		st.Changed += r.changed
	}
	st.Modeled += e.cfg.BarrierCost
	e.cur = 1 - e.cur
	return st, nil
}

// initValues seeds both value regions and the workers' write buffers with
// the program's initial state.
func (e *Engine) initValues(ctx context.Context, p program) error {
	var wg sync.WaitGroup
	errs := make([]error, len(e.workers))
	for i, wk := range e.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			own := int(wk.owned.hi - wk.owned.lo)
			for v := 0; v < own; v++ {
				val := p.init(wk.owned.lo + uint32(v))
				binary.LittleEndian.PutUint64(wk.writeBuf.Bytes()[v*8:], math.Float64bits(val))
			}
			if own == 0 {
				return
			}
			for _, reg := range wk.valRegions {
				if _, err := reg.WriteAt(ctx, uint64(wk.owned.lo)*8, wk.writeBuf, 0, own*8); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("graph: init values: %w", err)
		}
	}
	return nil
}

// gather reads the final values through worker 0's client.
func (e *Engine) gather(ctx context.Context) ([]float64, error) {
	reg := e.workers[0].valRegions[e.cur]
	raw := make([]byte, e.n*8)
	if err := reg.Read(ctx, 0, raw); err != nil {
		return nil, fmt.Errorf("graph: gather: %w", err)
	}
	vals := make([]float64, e.n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return vals, nil
}

// run drives supersteps until done(iter, stats) says stop.
func (e *Engine) run(ctx context.Context, p program, done func(int, IterStats) bool) (*Result, error) {
	if err := e.initValues(ctx, p); err != nil {
		return nil, err
	}
	res := &Result{}
	for iter := 0; ; iter++ {
		st, err := e.runSuperstep(ctx, p)
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, st)
		if done(iter, st) {
			break
		}
	}
	vals, err := e.gather(ctx)
	if err != nil {
		return nil, err
	}
	res.Values = vals
	return res, nil
}

// PageRank runs the given number of power iterations with the damping
// factor (0.85 in the paper's evaluation).
func (e *Engine) PageRank(ctx context.Context, iters int, damping float64) (*Result, error) {
	p := pageRankProgram(e.n, damping)
	return e.run(ctx, p, func(i int, _ IterStats) bool { return i+1 >= iters })
}

// BFS computes hop distances from source, running until a fixpoint (at
// most maxIters supersteps).
func (e *Engine) BFS(ctx context.Context, source uint32, maxIters int) (*Result, error) {
	p := bfsProgram(source)
	return e.run(ctx, p, func(i int, st IterStats) bool {
		return st.Changed == 0 || i+1 >= maxIters
	})
}

// SSSP computes single-source shortest path distances over edge weights
// (the graph must be loaded with weights; see
// workload.Graph.WithRandomWeights), running until a fixpoint or maxIters.
func (e *Engine) SSSP(ctx context.Context, source uint32, maxIters int) (*Result, error) {
	if !e.weighted {
		return nil, fmt.Errorf("graph: SSSP requires a weighted graph")
	}
	p := ssspProgram(source)
	return e.run(ctx, p, func(i int, st IterStats) bool {
		return st.Changed == 0 || i+1 >= maxIters
	})
}

// WCC computes connected components via label propagation. The graph must
// be symmetric (workload.Graph.Symmetrized) for weakly-connected
// semantics.
func (e *Engine) WCC(ctx context.Context, maxIters int) (*Result, error) {
	p := wccProgram()
	return e.run(ctx, p, func(i int, st IterStats) bool {
		return st.Changed == 0 || i+1 >= maxIters
	})
}
