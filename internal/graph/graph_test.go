package graph

import (
	"context"
	"math"
	"testing"
	"time"

	"rstore/internal/core"
	"rstore/internal/workload"
)

func startCluster(t *testing.T, machines int) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), core.Config{
		Machines:          machines,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// refPageRank is a single-threaded reference implementation.
func refPageRank(g *workload.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			var acc float64
			for _, u := range g.InNeighbors(uint32(v)) {
				if d := g.OutDegree[u]; d > 0 {
					acc += cur[u] / float64(d)
				}
			}
			next[v] = base + damping*acc
		}
		cur, next = next, cur
	}
	return cur
}

// refBFS is a reference breadth-first search.
func refBFS(g *workload.Graph, source uint32) []float64 {
	// Build out-adjacency from the in-CSR.
	out := make([][]uint32, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		for _, u := range g.InNeighbors(uint32(v)) {
			out[u] = append(out[u], uint32(v))
		}
	}
	dist := make([]float64, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range out[v] {
			if math.IsInf(dist[w], 1) {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func loadEngine(t *testing.T, c *core.Cluster, name string, g *workload.Graph, workers int) *Engine {
	t.Helper()
	e, err := Load(context.Background(), c, name, g, Config{Workers: workers, StripeUnit: 16 << 10})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPageRankMatchesReference(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenRMAT(256, 2048, 17)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	e := loadEngine(t, c, "pr", g, 3)

	const iters = 8
	res, err := e.PageRank(context.Background(), iters, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	want := refPageRank(g, iters, 0.85)
	if len(res.Values) != len(want) {
		t.Fatalf("values = %d, want %d", len(res.Values), len(want))
	}
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
	if len(res.Iterations) != iters {
		t.Errorf("iterations = %d", len(res.Iterations))
	}
	for i, st := range res.Iterations {
		if st.Modeled <= 0 || st.ReadBytes == 0 || st.WriteBytes == 0 {
			t.Errorf("iter %d stats = %+v", i, st)
		}
	}
}

func TestPageRankSingleWorker(t *testing.T) {
	c := startCluster(t, 3)
	g, err := workload.GenUniform(128, 512, 5)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "pr1", g, 1)
	res, err := e.PageRank(context.Background(), 5, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	want := refPageRank(g, 5, 0.85)
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	// Without dangling vertices, total rank stays 1.
	c := startCluster(t, 4)
	g, err := workload.GenUniform(200, 3000, 23)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	// GenUniform may still produce zero-out-degree vertices; tolerate a
	// small mass leak but require near-1 total.
	e := loadEngine(t, c, "mass", g, 3)
	res, err := e.PageRank(context.Background(), 10, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	var total float64
	for _, v := range res.Values {
		total += v
	}
	if total < 0.8 || total > 1.001 {
		t.Errorf("total rank = %v", total)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenUniform(200, 1200, 31)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "bfs", g, 3)
	res, err := e.BFS(context.Background(), 0, 100)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	want := refBFS(g, 0)
	for v := range want {
		gotInf, wantInf := math.IsInf(res.Values[v], 1), math.IsInf(want[v], 1)
		if gotInf != wantInf || (!gotInf && res.Values[v] != want[v]) {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
	// Fixpoint must have been reached before the iteration cap.
	last := res.Iterations[len(res.Iterations)-1]
	if last.Changed != 0 {
		t.Errorf("BFS did not converge: %+v", last)
	}
}

func TestWCCFindsComponents(t *testing.T) {
	c := startCluster(t, 4)
	// Two disjoint cliques: vertices 0..4 and 5..9.
	srcsDsts := [][2]uint32{}
	for i := uint32(0); i < 5; i++ {
		for j := uint32(0); j < 5; j++ {
			if i != j {
				srcsDsts = append(srcsDsts, [2]uint32{i, j})
				srcsDsts = append(srcsDsts, [2]uint32{i + 5, j + 5})
			}
		}
	}
	g := buildTestGraph(10, srcsDsts)
	e := loadEngine(t, c, "wcc", g.Symmetrized(), 2)
	res, err := e.WCC(context.Background(), 50)
	if err != nil {
		t.Fatalf("WCC: %v", err)
	}
	for v := 0; v < 5; v++ {
		if res.Values[v] != 0 {
			t.Errorf("wcc[%d] = %v, want 0", v, res.Values[v])
		}
	}
	for v := 5; v < 10; v++ {
		if res.Values[v] != 5 {
			t.Errorf("wcc[%d] = %v, want 5", v, res.Values[v])
		}
	}
}

// buildTestGraph makes a graph from explicit edges via the public
// generator path (GenUniform-compatible CSR invariants).
func buildTestGraph(n int, edges [][2]uint32) *workload.Graph {
	srcs := make([]uint32, len(edges))
	dsts := make([]uint32, len(edges))
	for i, e := range edges {
		srcs[i], dsts[i] = e[0], e[1]
	}
	return workload.BuildCSR(n, srcs, dsts)
}

func TestEngineSetupStats(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenUniform(64, 256, 2)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "stats", g, 2)
	st := e.SetupStats()
	if st.RPCs == 0 || st.Connects == 0 || st.Registers == 0 {
		t.Errorf("setup stats = %+v", st)
	}
	if e.Vertices() != 64 || e.Edges() != 256 {
		t.Errorf("engine dims = %d/%d", e.Vertices(), e.Edges())
	}
}

func TestMoreWorkersThanUsefulPartitions(t *testing.T) {
	// More workers than vertices still works (some own nothing).
	c := startCluster(t, 4)
	g, err := workload.GenUniform(8, 20, 3)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "tiny", g, 3)
	res, err := e.PageRank(context.Background(), 3, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	want := refPageRank(g, 3, 0.85)
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}
