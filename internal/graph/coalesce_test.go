package graph

import (
	"context"
	"math"
	"testing"

	"rstore/internal/workload"
)

// TestGapCoalesceInvariance: the coalescing knob trades fragment count for
// extra bytes read, but must never change results.
func TestGapCoalesceInvariance(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenRMAT(256, 1536, 11)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	want := refPageRank(g, 4, 0.85)

	var prevFrags int
	for i, gap := range []int{1, 64, 4096} {
		e, err := Load(context.Background(), c, nameFor("coalesce", gap), g, Config{
			Workers:     3,
			GapCoalesce: gap,
			StripeUnit:  16 << 10,
		})
		if err != nil {
			t.Fatalf("Load(gap=%d): %v", gap, err)
		}
		res, err := e.PageRank(context.Background(), 4, 0.85)
		if err != nil {
			t.Fatalf("PageRank(gap=%d): %v", gap, err)
		}
		for v := range want {
			if math.Abs(res.Values[v]-want[v]) > 1e-12 {
				t.Fatalf("gap=%d: pr[%d] = %v, want %v", gap, v, res.Values[v], want[v])
			}
		}
		frags := res.Iterations[0].Fragments
		if i > 0 && frags > prevFrags {
			t.Errorf("gap=%d issued %d fragments, more than smaller gap's %d", gap, frags, prevFrags)
		}
		prevFrags = frags
		e.Close()
	}
}

func nameFor(base string, v int) string {
	return base + "/" + string(rune('a'+v%26))
}

// TestBFSUnreachable: vertices with no path stay at +Inf.
func TestBFSUnreachable(t *testing.T) {
	c := startCluster(t, 3)
	// Two disjoint chains: 0->1->2 and 3->4.
	g := workload.BuildCSR(5, []uint32{0, 1, 3}, []uint32{1, 2, 4})
	e := loadEngine(t, c, "unreach", g, 2)
	res, err := e.BFS(context.Background(), 0, 10)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if res.Values[1] != 1 || res.Values[2] != 2 {
		t.Errorf("chain distances = %v", res.Values[:3])
	}
	for _, v := range []int{3, 4} {
		if !math.IsInf(res.Values[v], 1) {
			t.Errorf("vertex %d reachable: %v", v, res.Values[v])
		}
	}
}

// TestIterStatsBytesAccounting: read bytes per superstep must cover at
// least the values a pull engine needs and at most the whole value array
// per worker.
func TestIterStatsBytesAccounting(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenUniform(256, 2048, 5)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "bytes", g, 3)
	res, err := e.PageRank(context.Background(), 2, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	for i, st := range res.Iterations {
		if st.WriteBytes != int64(g.NumVertices)*8 {
			t.Errorf("iter %d write bytes = %d, want %d", i, st.WriteBytes, g.NumVertices*8)
		}
		maxRead := int64(3 * g.NumVertices * 8) // every worker reads at most all values
		if st.ReadBytes <= 0 || st.ReadBytes > maxRead {
			t.Errorf("iter %d read bytes = %d, want (0, %d]", i, st.ReadBytes, maxRead)
		}
	}
}

// refSSSP is a Bellman-Ford reference for weighted shortest paths.
func refSSSP(g *workload.Graph, source uint32) []float64 {
	dist := make([]float64, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for iter := 0; iter < g.NumVertices; iter++ {
		changed := false
		for v := 0; v < g.NumVertices; v++ {
			base := g.InOffsets[v]
			for k, u := range g.InNeighbors(uint32(v)) {
				w := float64(g.InWeights[base+uint64(k)])
				if d := dist[u] + w; d < dist[v] {
					dist[v] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestSSSPMatchesReference(t *testing.T) {
	c := startCluster(t, 4)
	g, err := workload.GenUniform(128, 768, 19)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	wg := g.WithRandomWeights(10, 23)
	e := loadEngine(t, c, "sssp", wg, 3)
	res, err := e.SSSP(context.Background(), 0, 256)
	if err != nil {
		t.Fatalf("SSSP: %v", err)
	}
	want := refSSSP(wg, 0)
	for v := range want {
		gotInf, wantInf := math.IsInf(res.Values[v], 1), math.IsInf(want[v], 1)
		if gotInf != wantInf || (!gotInf && math.Abs(res.Values[v]-want[v]) > 1e-9) {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	c := startCluster(t, 3)
	g, err := workload.GenUniform(32, 64, 1)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := loadEngine(t, c, "noW", g, 1)
	if _, err := e.SSSP(context.Background(), 0, 8); err == nil {
		t.Error("SSSP on unweighted graph must fail")
	}
}
