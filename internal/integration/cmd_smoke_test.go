package integration

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCmdBinariesBuildAndShowHelp smoke-tests every cmd/ binary: it must
// compile and `-help` must print usage and exit 0 (flag.ExitOnError exits 0
// on ErrHelp). Catches binaries broken by internal API changes without
// running their full workloads.
func TestCmdBinariesBuildAndShowHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("building binaries is slow; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		t.Fatalf("read cmd/: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no binaries under cmd/")
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
			help := exec.Command(bin, "-help")
			out, err := help.CombinedOutput()
			if err != nil {
				t.Fatalf("%s -help exited non-zero: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s -help printed nothing", name)
			}
		})
	}
}
