package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
	"rstore/internal/txn"
	"rstore/internal/txn/txntest"
)

// errClientKilled marks a transfer whose commit was cut dead mid-protocol.
// It may have struck before or after the decision point, so the history
// records the outcome as Unknown and the checker enforces all-or-none.
var errClientKilled = errors.New("client killed mid-commit")

// chaosTxnOptions tunes a transaction space for chaos runs: a short
// virtual-time stale-lock timeout so a dead owner's locks mature within a
// survivor's read-retry budget, and a seeded retry policy so runs are
// reproducible per RSTORE_CHAOS_SEED.
func chaosTxnOptions(owner int) txn.Options {
	return txn.Options{
		Cells:            64,
		CellSize:         64,
		Owner:            owner,
		StaleLockTimeout: 20 * time.Microsecond,
		ReadRetries:      256,
		Retry: client.RetryPolicy{
			MaxAttempts: 64,
			BaseDelay:   2 * time.Microsecond,
			MaxDelay:    64 * time.Microsecond,
			Multiplier:  2,
			Jitter:      0.2,
			Seed:        chaosSeed,
		},
	}
}

// Scenario: a client dies between acquiring its write-set locks and
// installing the new values. Another client must break the stale locks
// and the outcome must be all-or-none: a death before the decision CAS
// leaves no trace of the transaction, a death after it means every cell
// eventually carries the new value (the breaker rolls the commit
// forward). Both arms end with the serializability checker over the full
// history.
func TestChaosClientDeathMidCommit(t *testing.T) {
	t.Run("before-decision", func(t *testing.T) {
		testClientDeathMidCommit(t, txn.StageLocked, false)
	})
	t.Run("after-decision", func(t *testing.T) {
		testClientDeathMidCommit(t, txn.StageDecided, true)
	})
}

func testClientDeathMidCommit(t *testing.T, stage txn.CommitStage, wantVisible bool) {
	c := startCluster(t, 4, 2)
	ctx := context.Background()
	const (
		accounts = 8
		initial  = int64(100)
	)
	victimNode := simnet.NodeID(c.Fabric().Size() - 1)
	survivorNode := simnet.NodeID(c.Fabric().Size() - 2)
	victimCli := newChaosClient(t, c, victimNode)
	survivorCli := newChaosClient(t, c, survivorNode)

	victim, err := txn.Create(ctx, victimCli, "death-bank", chaosTxnOptions(1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	survivor, err := txn.Open(ctx, survivorCli, "death-bank", chaosTxnOptions(2))
	if err != nil {
		t.Fatalf("Open survivor: %v", err)
	}
	if err := txntest.SetupBank(ctx, victim, accounts, initial); err != nil {
		t.Fatalf("SetupBank: %v", err)
	}

	h := txntest.NewHistory(c.Fabric().VNow)
	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()

	// The victim transfers between accounts 0 and 1 and is killed at the
	// target stage: the fail point drops its node off the fabric and stops
	// the commit dead, locks still held, nothing rolled back.
	victim.FailPoint = func(s txn.CommitStage) error {
		if s != stage {
			return nil
		}
		if err := chaos.KillNode(victimNode); err != nil {
			t.Errorf("KillNode: %v", err)
		}
		return errClientKilled
	}
	classify := func(err error) txntest.Outcome {
		if errors.Is(err, errClientKilled) {
			return txntest.Unknown
		}
		if errors.Is(err, txn.ErrContended) {
			return txntest.Aborted
		}
		return txntest.Unknown
	}
	if err := txntest.Transfer(ctx, victim, h, 1, 0, 0, 1, 7, classify); err != nil {
		t.Fatalf("victim transfer: %v", err)
	}

	// The survivor now drives transfers across every account, including
	// the two the victim left locked. It must break the stale locks —
	// roll back if the victim died before its decision CAS, roll forward
	// if after — and keep committing.
	rng := rand.New(rand.NewSource(chaosSeed))
	for i := 0; i < 24; i++ {
		from := i % accounts
		to := (i + 1 + rng.Intn(accounts-1)) % accounts
		if to == from {
			to = (from + 1) % accounts
		}
		if err := txntest.Transfer(ctx, survivor, h, 2, i, from, to, int64(rng.Intn(20)+1), nil); err != nil {
			t.Fatalf("survivor transfer %d: %v", i, err)
		}
		if i%8 == 5 {
			if err := txntest.Snapshot(ctx, survivor, h, 2, 1000+i, accounts); err != nil {
				t.Fatalf("survivor snapshot %d: %v", i, err)
			}
		}
	}

	final, err := txntest.Sweep(ctx, survivor, accounts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, v := range txntest.Check(h, final, accounts, initial) {
		t.Errorf("checker: %s", v)
	}

	// All-or-none, asserted directly: the victim's stamp is visible on an
	// account if any later read observed it (a survivor leg's PrevStamp or
	// the final sweep). Before the decision it must appear nowhere; after
	// it, on both accounts it wrote.
	victimStamp := txntest.Stamp(1, 0)
	visible := map[int]bool{}
	for _, ev := range h.Events() {
		if ev.Worker == 1 {
			continue
		}
		for _, leg := range ev.Legs {
			if leg.PrevStamp == victimStamp {
				visible[leg.Account] = true
			}
		}
		for _, st := range ev.Snapshot {
			if st.Stamp == victimStamp {
				visible[st.Account] = true
			}
		}
	}
	for _, st := range final {
		if st.Stamp == victimStamp {
			visible[st.Account] = true
		}
	}
	if wantVisible {
		if !visible[0] || !visible[1] {
			t.Errorf("death after decision: victim writes visible on %v, want both accounts 0 and 1", visible)
		}
	} else if len(visible) != 0 {
		t.Errorf("death before decision: victim writes visible on %v, want none", visible)
	}

	committed := 0
	for _, ev := range h.Events() {
		if ev.Worker == 2 && ev.Outcome == txntest.Committed && len(ev.Legs) > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("survivor never committed past the stale lock")
	}
}

// Scenario: transactions are in flight when the primary master dies.
// Commits ride on one-sided data-path verbs and cached layouts, so they
// must keep completing through the failover (modulo typed failures the
// history absorbs as Unknown), and the full history must still check out
// serializable once the standby is promoted.
func TestChaosTxnAcrossMasterFailover(t *testing.T) {
	c := startFailoverCluster(t, 6, 2, core.RepairConfig{})
	ctx := context.Background()
	const (
		accounts  = 8
		workers   = 2
		transfers = 30
		initial   = int64(500)
	)
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli := newFailoverClient(t, c, clientNode)
	waitAliveServers(t, c, 4)

	sp, err := txn.Create(ctx, cli, "failover-bank", chaosTxnOptions(0))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := txntest.SetupBank(ctx, sp, accounts, initial); err != nil {
		t.Fatalf("SetupBank: %v", err)
	}

	h := txntest.NewHistory(c.Fabric().VNow)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	// Each worker signals once it is a few transfers in, then holds until
	// the primary is dead — its remaining transfers run during the
	// masterless window and across the promotion, which is the scenario.
	warm := make(chan struct{}, workers)
	resume := make(chan struct{})
	for w := 1; w <= workers; w++ {
		wsp, err := txn.Open(ctx, cli, "failover-bank", chaosTxnOptions(0))
		if err != nil {
			t.Fatalf("Open worker %d: %v", w, err)
		}
		wg.Add(1)
		go func(w int, wsp *txn.Space) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(chaosSeed + int64(w)))
			for i := 0; i < transfers; i++ {
				if i == 5 {
					warm <- struct{}{}
					<-resume
				}
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				for to == from {
					to = rng.Intn(accounts)
				}
				if err := txntest.Transfer(ctx, wsp, h, w, i, from, to, int64(rng.Intn(40)+1), nil); err != nil {
					errs <- fmt.Errorf("worker %d transfer %d: %w", w, i, err)
					return
				}
			}
		}(w, wsp)
	}

	for i := 0; i < workers; i++ {
		<-warm
	}
	killV := c.Fabric().VNow()
	if err := c.KillMaster(0); err != nil {
		t.Fatalf("KillMaster: %v", err)
	}
	close(resume)
	if err := c.WaitMasterRole(1, "primary", 1, 20*time.Second); err != nil {
		t.Fatalf("standby never promoted: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("%v", err)
	}

	final, err := txntest.Sweep(ctx, sp, accounts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, v := range txntest.Check(h, final, accounts, initial) {
		t.Errorf("checker: %s", v)
	}

	// The failover must not have wedged the commit path: at least one
	// transfer invoked after the kill committed.
	after := 0
	for _, ev := range h.Events() {
		if ev.Outcome == txntest.Committed && len(ev.Legs) > 0 && ev.InvokeV.Sub(killV) > 0 {
			after++
		}
	}
	if after == 0 {
		t.Error("no transfer committed after the primary died")
	}
}
