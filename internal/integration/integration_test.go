// Package integration exercises cross-module behaviour of the full
// system: failure injection mid-workload, partitions, concurrent mixed
// clients, and application pipelines sharing one cluster.
package integration

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/graph"
	"rstore/internal/kvsort"
	"rstore/internal/kvstore"
	"rstore/internal/simnet"
	"rstore/internal/workload"
)

func startCluster(t *testing.T, machines, extraClients int) *core.Cluster {
	t.Helper()
	return startClusterCfg(t, core.Config{
		Machines:          machines,
		ExtraClientNodes:  extraClients,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
	})
}

// startClusterCfg boots a cluster from an explicit config (the failover
// tests need master replication knobs) with the same flight-recorder
// arming and dump-on-failure hook as startCluster.
func startClusterCfg(t *testing.T, cfg core.Config) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), cfg)
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	// Keep the flight recorder armed for every integration cluster: failed
	// ops are always pinned, slow ones past the threshold too, so a failing
	// run leaves span-level evidence behind. When the CI chaos matrix sets
	// RSTORE_FLIGHT_DUMP, that evidence is written there on failure and
	// uploaded as a workflow artifact.
	c.SetSlowOpThreshold(500 * time.Microsecond)
	t.Cleanup(func() {
		path := os.Getenv("RSTORE_FLIGHT_DUMP")
		if path == "" || !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "=== flight recorder: %s ===\n", t.Name())
		c.DumpFlight(f)
	})
	// Same idea for the health engine: when RSTORE_HEALTH_DUMP is set, a
	// failing test leaves the masters' alert tables and transition rings
	// beside the flight-recorder spans.
	t.Cleanup(func() {
		path := os.Getenv("RSTORE_HEALTH_DUMP")
		if path == "" || !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("health dump: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "=== health events: %s ===\n", t.Name())
		c.DumpHealth(f)
	})
	return c
}

func TestGraphAndSortShareCluster(t *testing.T) {
	// Both application frameworks coexist on one cluster without
	// interfering: namespaces are distinct, arenas are shared.
	c := startCluster(t, 5, 0)
	ctx := context.Background()

	g, err := workload.GenRMAT(1<<10, 8<<10, 3)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	eng, err := graph.Load(ctx, c, "app1", g, graph.Config{Workers: 2})
	if err != nil {
		t.Fatalf("graph.Load: %v", err)
	}
	defer eng.Close()

	s, err := kvsort.New(ctx, c, kvsort.Config{Workers: 2})
	if err != nil {
		t.Fatalf("kvsort.New: %v", err)
	}
	defer s.Close()
	if err := s.GenerateInput(ctx, "app2", 5000, 9); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}

	var wg sync.WaitGroup
	var prErr, sortErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, prErr = eng.PageRank(ctx, 5, 0.85)
	}()
	go func() {
		defer wg.Done()
		var res *kvsort.Result
		res, sortErr = s.Run(ctx, "app2", 5000)
		if sortErr == nil {
			sortErr = s.Validate(ctx, res.OutputRegion, 5000)
		}
	}()
	wg.Wait()
	if prErr != nil {
		t.Errorf("PageRank: %v", prErr)
	}
	if sortErr != nil {
		t.Errorf("Sort: %v", sortErr)
	}
}

func TestKillServerMidWorkload(t *testing.T) {
	// Writes in flight when a server dies fail with typed IO errors; the
	// cluster keeps serving regions on surviving servers.
	c := startCluster(t, 5, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	victimReg, err := cli.AllocMap(ctx, "victim", 4<<20, client.AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	victim := victimReg.Info().Servers()[0]

	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 256<<10)
		for i := 0; ; i++ {
			select {
			case <-stop:
				errCh <- nil
				return
			default:
			}
			if err := victimReg.Write(ctx, uint64(i%8)*(256<<10), buf); err != nil {
				errCh <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, client.ErrIOFailed) {
			t.Fatalf("writer err = %v, want ErrIOFailed", err)
		}
	case <-time.After(5 * time.Second):
		close(stop)
		t.Fatal("writer never observed the failure")
	}

	// Other regions on other servers keep working.
	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	other, err := cli.AllocMap(ctx, "survivor", 1<<20, client.AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap survivor: %v", err)
	}
	if err := other.Write(ctx, 0, []byte("still alive")); err != nil {
		t.Errorf("survivor write: %v", err)
	}
}

func TestServerRevivalRejoinsCluster(t *testing.T) {
	c := startCluster(t, 4, 1)
	victim := c.MemoryServerNodes()[1]
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveServer(victim); err != nil {
		t.Fatalf("ReviveServer: %v", err)
	}
	// Heartbeats resume and the master marks it alive again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		alive := false
		for _, id := range c.Master().AliveServers() {
			if id == victim {
				alive = true
			}
		}
		if alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revived server never marked alive")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPartitionClientFromOneServer(t *testing.T) {
	// A partition between the client and one server fails only accesses
	// that touch that server.
	c := startCluster(t, 4, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	reg, err := cli.AllocMap(ctx, "parted", 3<<20, client.AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	servers := reg.Info().Servers()
	if len(servers) < 2 {
		t.Skip("need at least two servers")
	}
	c.Fabric().SetPartition(clientNode, servers[0], true)
	defer c.Fabric().SetPartition(clientNode, servers[0], false)

	// Offset 0 lives on servers[0] (stripe order): must fail.
	if err := reg.Write(ctx, 0, []byte("x")); !errors.Is(err, client.ErrIOFailed) {
		t.Errorf("write to partitioned server = %v", err)
	}
	// Offset in the second stripe unit lives on servers[1]: must work.
	if err := reg.Write(ctx, 1<<20, []byte("y")); err != nil {
		t.Errorf("write to reachable server: %v", err)
	}
}

func TestConcurrentMixedClients(t *testing.T) {
	// Many clients doing mixed reads/writes/atomics on shared regions:
	// no lost updates, no data corruption, no deadlocks.
	c := startCluster(t, 5, 0)
	ctx := context.Background()

	admin, err := c.NewClient(ctx, c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := admin.Alloc(ctx, "mixed", 8<<20, client.AllocOptions{StripeUnit: 256 << 10}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if _, err := admin.Alloc(ctx, "counters", 4096, client.AllocOptions{StripeWidth: 1}); err != nil {
		t.Fatalf("Alloc counters: %v", err)
	}

	const (
		workers = 6
		rounds  = 30
		slot    = 64 << 10
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := c.MemoryServerNodes()[w%len(c.MemoryServerNodes())]
			cli, err := c.NewClient(ctx, node)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			data, err := cli.Map(ctx, "mixed")
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			ctr, err := cli.Map(ctx, "counters")
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			mine := make([]byte, slot)
			for r := 0; r < rounds; r++ {
				rng.Read(mine)
				off := uint64(w) * slot // disjoint slots: writes must not interfere
				if err := data.Write(ctx, off, mine); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				got := make([]byte, slot)
				if err := data.Read(ctx, off, got); err != nil {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				if !bytes.Equal(mine, got) {
					t.Errorf("worker %d: slot corrupted at round %d", w, r)
					return
				}
				if _, _, err := ctr.FetchAdd(ctx, 8, 1); err != nil {
					t.Errorf("worker %d fetchadd: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	reg, err := admin.Map(ctx, "counters")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	old, _, err := reg.FetchAdd(ctx, 8, 0)
	if err != nil {
		t.Fatalf("FetchAdd: %v", err)
	}
	if old != workers*rounds {
		t.Errorf("counter = %d, want %d", old, workers*rounds)
	}
}

func TestManyRegionsLifecycle(t *testing.T) {
	// Churn: allocate, map, write, unmap, free many regions; arena usage
	// returns to zero.
	c := startCluster(t, 4, 0)
	ctx := context.Background()
	cli, err := c.NewClient(ctx, c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("churn-%d", i)
		reg, err := cli.AllocMap(ctx, name, uint64(64<<10+(i%7)*4096), client.AllocOptions{})
		if err != nil {
			t.Fatalf("AllocMap %d: %v", i, err)
		}
		if err := reg.Write(ctx, 0, []byte(name)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if err := reg.Unmap(ctx); err != nil {
			t.Fatalf("Unmap %d: %v", i, err)
		}
		if err := cli.Free(ctx, name); err != nil {
			t.Fatalf("Free %d: %v", i, err)
		}
	}
	infos, err := cli.ClusterInfo(ctx)
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	for _, si := range infos {
		if si.Used != 0 {
			t.Errorf("server %v leaked %d bytes", si.Node, si.Used)
		}
	}
}

func TestNotifyFanOutToManySubscribers(t *testing.T) {
	c := startCluster(t, 4, 3)
	ctx := context.Background()
	base := c.Fabric().Size() - 3

	producer, err := c.NewClient(ctx, c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := producer.Alloc(ctx, "fan", 1<<16, client.AllocOptions{}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	preg, err := producer.Map(ctx, "fan")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}

	const subs = 3
	chans := make([]<-chan client.Notification, subs)
	for i := 0; i < subs; i++ {
		cli, err := c.NewClient(ctx, simnet.NodeID(base+i))
		if err != nil {
			t.Fatalf("NewClient %d: %v", i, err)
		}
		reg, err := cli.Map(ctx, "fan")
		if err != nil {
			t.Fatalf("Map %d: %v", i, err)
		}
		ch, unsub, err := reg.Subscribe(ctx)
		if err != nil {
			t.Fatalf("Subscribe %d: %v", i, err)
		}
		t.Cleanup(unsub)
		chans[i] = ch
	}

	if err := preg.Notify(ctx, 77); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	for i, ch := range chans {
		select {
		case n := <-ch:
			if n.Token != 77 {
				t.Errorf("subscriber %d token = %d", i, n.Token)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("subscriber %d missed the notification", i)
		}
	}
}

func TestDataPathSurvivesMasterDeath(t *testing.T) {
	// The paper's defining property: after Rmap, the data path involves no
	// master. Killing the master must not disturb reads, writes, or
	// atomics on already-mapped regions — only new control operations
	// fail.
	c := startCluster(t, 4, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	reg, err := cli.AllocMap(ctx, "orphan", 4<<20, client.AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	if err := reg.Write(ctx, 0, []byte("before")); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Master is node 0.
	if err := c.Fabric().SetNodeUp(0, false); err != nil {
		t.Fatalf("kill master: %v", err)
	}

	// Data path: all fine.
	if err := reg.Write(ctx, 0, []byte("after master death")); err != nil {
		t.Errorf("write without master: %v", err)
	}
	got := make([]byte, 18)
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Errorf("read without master: %v", err)
	}
	if string(got) != "after master death" {
		t.Errorf("read = %q", got)
	}
	if _, _, err := reg.FetchAdd(ctx, 1<<20, 1); err != nil {
		t.Errorf("atomic without master: %v", err)
	}

	// Control path: new allocations fail.
	callCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if _, err := cli.Alloc(callCtx, "needs-master", 1<<20, client.AllocOptions{}); err == nil {
		t.Error("alloc without master should fail")
	}
}

func TestKVStoreSurvivesConcurrentChurn(t *testing.T) {
	// KV store handles on three machines mixing puts, gets, and deletes
	// over overlapping key ranges stay linearizable per key (each observed
	// value must be one that was actually written for that key).
	c := startCluster(t, 5, 0)
	ctx := context.Background()
	creator, err := c.NewClient(ctx, c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := kvstore.Create(ctx, creator, "churn", kvstore.Options{Slots: 1024}); err != nil {
		t.Fatalf("Create: %v", err)
	}

	const rounds = 25
	var wg sync.WaitGroup
	for m := 0; m < 3; m++ {
		cli, err := c.NewClient(ctx, c.MemoryServerNodes()[m%len(c.MemoryServerNodes())])
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		kv, err := kvstore.Open(ctx, cli, "churn", kvstore.Options{Slots: 1024})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		wg.Add(1)
		go func(m int, kv *kvstore.Store) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := []byte(fmt.Sprintf("shared-%d", i%7))
				val := []byte(fmt.Sprintf("m%d-r%d", m, i))
				if err := kv.Put(ctx, key, val); err != nil && !errors.Is(err, kvstore.ErrContention) {
					t.Errorf("machine %d put: %v", m, err)
					return
				}
				got, err := kv.Get(ctx, key)
				if errors.Is(err, kvstore.ErrContention) {
					continue
				}
				if err != nil {
					t.Errorf("machine %d get: %v", m, err)
					return
				}
				// The value must be well-formed (some machine's round), not torn.
				var gm, gr int
				if _, err := fmt.Sscanf(string(got), "m%d-r%d", &gm, &gr); err != nil {
					t.Errorf("machine %d observed torn value %q", m, got)
					return
				}
			}
		}(m, kv)
	}
	wg.Wait()
}
