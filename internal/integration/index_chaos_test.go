package integration

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/index"
	"rstore/internal/simnet"
	"rstore/internal/txn"
)

// chaosIndexOptions shrinks nodes so a few hundred keys force multi-level
// splits, and tunes lock-breaking the way the bank chaos tests do: stale
// locks mature in tens of µs of virtual time, well inside a read-retry
// budget. The stale window is 3× the bank tests' because a split commit
// locks up to six cells and must decide within half the window.
func chaosIndexOptions(owner int) index.Options {
	return index.Options{
		Nodes:            512,
		NodeSize:         512,
		MaxKey:           32,
		Owner:            owner,
		StaleLockTimeout: 60 * time.Microsecond,
		ReadRetries:      256,
		Retry: client.RetryPolicy{
			MaxAttempts: 64,
			BaseDelay:   2 * time.Microsecond,
			MaxDelay:    64 * time.Microsecond,
			Multiplier:  2,
			Jitter:      0.2,
			Seed:        chaosSeed,
		},
	}
}

// Scenario: a client dies in the middle of a B+tree node split — the
// multi-cell transaction rewriting the meta cell, the overflowing node,
// its new sibling and the parent link. A split only reorganizes the
// tree, so whichever side of the decision point the death lands on, the
// key set must be exactly the successfully inserted keys: a survivor
// breaks the stale locks (rolling the split back or forward) and the
// tree must come back consistent, fully scannable, and writable.
func TestChaosClientDeathMidSplit(t *testing.T) {
	t.Run("before-decision", func(t *testing.T) {
		testClientDeathMidSplit(t, txn.StageLocked)
	})
	t.Run("after-decision", func(t *testing.T) {
		testClientDeathMidSplit(t, txn.StageDecided)
	})
}

func testClientDeathMidSplit(t *testing.T, stage txn.CommitStage) {
	c := startCluster(t, 4, 2)
	ctx := context.Background()
	victimNode := simnet.NodeID(c.Fabric().Size() - 1)
	survivorNode := simnet.NodeID(c.Fabric().Size() - 2)
	victimCli := newChaosClient(t, c, victimNode)
	survivorCli := newChaosClient(t, c, survivorNode)

	victim, err := index.Create(ctx, victimCli, "chaos-tree", chaosIndexOptions(1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	survivor, err := index.Open(ctx, survivorCli, "chaos-tree", chaosIndexOptions(2))
	if err != nil {
		t.Fatalf("Open survivor: %v", err)
	}

	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()

	// Let a few splits complete normally, then kill the victim's node at
	// the target stage of a later split — locks on the meta cell, the
	// split node, its sibling and the parent are left standing.
	splitStages := 0
	victim.SplitFailPoint = func(s txn.CommitStage) error {
		if s != stage {
			return nil
		}
		splitStages++
		if splitStages < 3 {
			return nil
		}
		if err := chaos.KillNode(victimNode); err != nil {
			t.Errorf("KillNode: %v", err)
		}
		return errClientKilled
	}

	key := func(i int) []byte { return []byte(fmt.Sprintf("chaos-%06d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v-%d", i)) }

	// The dying insert's split transaction may roll either way, but the
	// insert itself is a separate transaction that never ran, so the
	// oracle is exactly the set of inserts that returned nil.
	inserted := map[int]bool{}
	killed := false
	for i := 0; i < 600 && !killed; i++ {
		err := victim.Insert(ctx, key(i), val(i))
		switch {
		case err == nil:
			inserted[i] = true
		case errors.Is(err, errClientKilled):
			killed = true
		default:
			t.Fatalf("victim Insert %d: %v", i, err)
		}
	}
	if !killed {
		t.Fatal("victim was never killed mid-split; not enough splits?")
	}

	// The survivor writes through the wreckage: its first operations must
	// sight the dead client's locks twice, break them (rolling the
	// orphaned split back or forward), and commit.
	const extra = 50
	for i := 1000; i < 1000+extra; i++ {
		if err := survivor.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("survivor Insert %d: %v", i, err)
		}
		inserted[i] = true
	}

	// The whole tree must be scannable and match the oracle exactly.
	var want []string
	for i := range inserted {
		want = append(want, string(key(i)))
	}
	sort.Strings(want)
	ents, err := survivor.Scan(ctx, nil, nil)
	if err != nil {
		t.Fatalf("survivor Scan: %v", err)
	}
	if len(ents) != len(want) {
		t.Fatalf("scan found %d keys, oracle has %d", len(ents), len(want))
	}
	for i, e := range ents {
		if string(e.Key) != want[i] {
			t.Fatalf("scan[%d] = %q, oracle %q", i, e.Key, want[i])
		}
		if i > 0 && bytes.Compare(ents[i-1].Key, e.Key) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, ents[i-1].Key, e.Key)
		}
	}
	// Point lookups agree with the scan.
	for i := range inserted {
		got, err := survivor.Get(ctx, key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("survivor Get %d = %q, %v", i, got, err)
		}
	}
	st, err := survivor.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Height < 2 {
		t.Fatalf("tree never split: %+v", st)
	}
	if survivorCli.Telemetry().Counter("txn.lock_breaks").Value() == 0 {
		t.Error("survivor never broke the dead client's locks")
	}
}
