package integration

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// chaosSeed fixes every seeded decision in this file; changing it changes
// which transfers drop but not whether the scenarios pass. The CI seed
// matrix (`make chaos SEEDS=n`) overrides it via RSTORE_CHAOS_SEED to
// shake out interleavings a single seed would never hit.
var chaosSeed = func() int64 {
	if s := os.Getenv("RSTORE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 20150701 // ICDCS'15
}()

// typedFailure reports whether err is one of the typed errors the client
// is allowed to surface under chaos. Anything else (or a hang, which the
// test timeouts catch) is a bug.
func typedFailure(err error) bool {
	return errors.Is(err, client.ErrIOFailed) ||
		errors.Is(err, client.ErrRegionLost) ||
		errors.Is(err, rpc.ErrConnClosed) ||
		errors.Is(err, simnet.ErrNodeDown) ||
		errors.Is(err, simnet.ErrPartitioned) ||
		errors.Is(err, context.DeadlineExceeded)
}

// newChaosClient opens a client with a fast, seeded retry policy so chaos
// scenarios converge quickly and reproducibly.
func newChaosClient(t *testing.T, c *core.Cluster, node simnet.NodeID) *client.Client {
	t.Helper()
	dev, err := c.Network().OpenDevice(node)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	cli, err := client.Connect(context.Background(), dev, client.Config{
		Master:  0,
		Masters: c.MasterNodes(),
		Retry: client.RetryPolicy{
			MaxAttempts: 40,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Seed:        chaosSeed,
		},
	})
	if err != nil {
		t.Fatalf("client.Connect: %v", err)
	}
	t.Cleanup(cli.Close)
	return cli
}

// Scenario 1: a memory server dies while a client is allocating and
// mapping regions. Every operation must either succeed or fail with a
// typed error; once the master declares the server dead, allocation
// resumes on the survivors.
func TestChaosKillServerMidAlloc(t *testing.T) {
	c := startCluster(t, 4, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli := newChaosClient(t, c, clientNode)

	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()
	victim := c.MemoryServerNodes()[1]

	for i := 0; i < 10; i++ {
		if i == 3 {
			if err := chaos.KillNode(victim); err != nil {
				t.Fatalf("KillNode: %v", err)
			}
		}
		reg, err := cli.AllocMap(ctx, fmt.Sprintf("chaos-%d", i), 1<<20, client.AllocOptions{})
		if err != nil {
			if !typedFailure(err) {
				t.Fatalf("alloc %d: untyped error %v", i, err)
			}
			continue
		}
		if err := reg.Write(ctx, 0, []byte("payload")); err != nil && !typedFailure(err) {
			t.Fatalf("write %d: untyped error %v", i, err)
		}
	}

	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Dead server is excluded from new allocations and reported in the
	// cluster view.
	reg, err := cli.AllocMap(ctx, "after-death", 1<<20, client.AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap after death: %v", err)
	}
	for _, s := range reg.Info().Servers() {
		if s == victim {
			t.Errorf("dead server %v included in new allocation", victim)
		}
	}
	infos, err := cli.ClusterInfo(ctx)
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	for _, si := range infos {
		if si.Node == victim && si.Alive {
			t.Errorf("master still reports %v alive", victim)
		}
	}
	if err := reg.Write(ctx, 0, []byte("survivors fine")); err != nil {
		t.Errorf("write after death: %v", err)
	}
}

// Scenario 2: the client is partitioned from the master during Map. The
// retry policy re-dials with backoff; once the partition heals, control
// operations succeed again. While partitioned, failures are typed, never
// hangs.
func TestChaosPartitionClientMasterDuringMap(t *testing.T) {
	c := startCluster(t, 4, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli := newChaosClient(t, c, clientNode)

	if _, err := cli.Alloc(ctx, "parted", 1<<20, client.AllocOptions{}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}

	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()
	chaos.Partition(clientNode, 0)

	// Heal from a timer while the Map below is retrying: the client's
	// backoff (40 attempts x up to 20ms) comfortably spans 150ms.
	heal := time.AfterFunc(150*time.Millisecond, func() { chaos.Heal(clientNode, 0) })
	defer heal.Stop()

	reg, err := cli.Map(ctx, "parted")
	if err != nil {
		// Allowed only as a typed failure (e.g. the context budget ran out
		// before the heal); the partition is healed by now or will be.
		if !typedFailure(err) {
			t.Fatalf("Map under partition: untyped error %v", err)
		}
		heal.Stop()
		chaos.Heal(clientNode, 0)
		if reg, err = cli.Map(ctx, "parted"); err != nil {
			t.Fatalf("Map after heal: %v", err)
		}
	}
	if err := reg.Write(ctx, 0, []byte("post-heal")); err != nil {
		t.Errorf("write after heal: %v", err)
	}
}

// Scenario 3: transient drops on the client<->server path. The modeled
// NIC retransmits (RC retry counter), so a 15% drop rate is invisible to
// the application; determinism is asserted by running the identical
// scenario twice and comparing drop counts.
func TestChaosTransientDropsAreRetransmittedDeterministically(t *testing.T) {
	run := func() (drops int64) {
		c, err := core.Start(context.Background(), core.Config{
			Machines:         3,
			ExtraClientNodes: 1,
			ServerCapacity:   16 << 20,
			// Heartbeats ride the wall clock, so any beat that lands mid-run
			// would perturb the virtual timeline the drop hashes key on. An
			// interval far longer than the test keeps the timeline a pure
			// function of the client's deterministic operation sequence.
			HeartbeatInterval: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("core.Start: %v", err)
		}
		defer c.Close()
		ctx := context.Background()
		clientNode := simnet.NodeID(c.Fabric().Size() - 1)
		cli, err := c.NewClient(ctx, clientNode)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		reg, err := cli.AllocMap(ctx, "lossy", 2<<20, client.AllocOptions{StripeWidth: 1})
		if err != nil {
			t.Fatalf("AllocMap: %v", err)
		}
		server := reg.Info().Servers()[0]

		chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
		defer chaos.Detach()
		// Only the client<->server pair is lossy: heartbeats and master
		// traffic stay clean, so the drop schedule depends only on the
		// client's deterministic operation sequence.
		chaos.SetPairDropRate(clientNode, server, 0.15)

		payload := make([]byte, 64<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		got := make([]byte, len(payload))
		for i := 0; i < 20; i++ {
			off := uint64(i%4) * uint64(len(payload))
			if err := reg.Write(ctx, off, payload); err != nil {
				t.Fatalf("write %d under 15%% loss: %v", i, err)
			}
			if err := reg.Read(ctx, off, got); err != nil {
				t.Fatalf("read %d under 15%% loss: %v", i, err)
			}
			for j := range got {
				if got[j] != payload[j] {
					t.Fatalf("round %d: corruption at byte %d", i, j)
				}
			}
		}
		return chaos.Stats().Drops
	}

	first := run()
	second := run()
	if first == 0 {
		t.Error("15% drop rate injected no drops; retransmission untested")
	}
	if first != second {
		t.Errorf("drop schedule not deterministic: run1=%d run2=%d", first, second)
	}
}

// Scenario 4: a memory server bounces (dies, is declared dead, comes
// back). Remap is idempotent: it restores access without inflating the
// region's map count, and the master advertises the new incarnation via
// the server's epoch.
func TestChaosMemserverBounceThenRemap(t *testing.T) {
	c := startCluster(t, 3, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli := newChaosClient(t, c, clientNode)

	reg, err := cli.AllocMap(ctx, "bounce", 1<<20, client.AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	victim := reg.Info().Servers()[0]

	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()
	if err := chaos.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// While the server is down and declared dead, Remap must surface
	// ErrRegionLost — the typed "gone for good" verdict.
	if err := reg.Remap(ctx); !errors.Is(err, client.ErrRegionLost) {
		t.Errorf("Remap with dead server = %v, want ErrRegionLost", err)
	}

	if err := chaos.RestartNode(victim); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	// The memserver's heartbeat loop re-registers with the master once the
	// link returns; wait for the revival.
	deadline := time.Now().Add(5 * time.Second)
	for !c.Master().ServerAlive(victim) {
		if time.Now().After(deadline) {
			t.Fatal("bounced server never re-registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Remap now succeeds (retrying internally as needed) and re-establishes
	// the data path.
	if err := reg.Remap(ctx); err != nil {
		t.Fatalf("Remap after bounce: %v", err)
	}
	if err := reg.Write(ctx, 0, []byte("back")); err != nil {
		t.Errorf("write after remap: %v", err)
	}

	// Remap did not count as an extra mapping.
	regs, err := cli.ListRegions(ctx)
	if err != nil {
		t.Fatalf("ListRegions: %v", err)
	}
	for _, rs := range regs {
		if rs.Name == "bounce" && rs.MapCount != 1 {
			t.Errorf("map count after Remap = %d, want 1", rs.MapCount)
		}
	}

	// The bounce is visible as an epoch bump in the cluster view.
	infos, err := cli.ClusterInfo(ctx)
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	for _, si := range infos {
		if si.Node == victim {
			if !si.Alive {
				t.Errorf("bounced server still reported dead")
			}
			if si.Epoch == 0 {
				t.Errorf("bounced server epoch = 0, want > 0")
			}
		}
	}
}

// Scenario 5: scripted chaos on virtual time. A latency spike storm is
// scheduled a fixed distance ahead on the virtual clock; operations keep
// succeeding, post-storm operations are measurably slower, and the modeled
// latency of the identical final write is bit-for-bit equal across runs
// because the schedule lives on the deterministic virtual clock.
func TestChaosScriptedLatencySpikes(t *testing.T) {
	run := func() (int64, simnet.VTime) {
		c, err := core.Start(context.Background(), core.Config{
			Machines:          3,
			ExtraClientNodes:  1,
			ServerCapacity:    16 << 20,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("core.Start: %v", err)
		}
		defer c.Close()
		ctx := context.Background()
		clientNode := simnet.NodeID(c.Fabric().Size() - 1)
		cli, err := c.NewClient(ctx, clientNode)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		reg, err := cli.AllocMap(ctx, "spiky", 1<<20, client.AllocOptions{StripeWidth: 1})
		if err != nil {
			t.Fatalf("AllocMap: %v", err)
		}

		chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
		defer chaos.Detach()
		// Schedule the storm a little ahead of the current virtual frontier;
		// the write loop below advances modeled time well past it. From then
		// on every transfer takes an extra 100us.
		chaos.At(c.Fabric().VNow()+simnet.VTime(50*time.Microsecond), func(ch *simnet.Chaos) {
			ch.SetLatencySpike(100*time.Microsecond, 1)
		})

		payload := make([]byte, 32<<10)
		buf := mustBuf(t, cli, len(payload))
		before, err := reg.WriteAt(ctx, 0, buf, 0, len(payload))
		if err != nil {
			t.Fatalf("first write: %v", err)
		}
		for i := 0; i < 30; i++ {
			if err := reg.Write(ctx, 0, payload); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		after, err := reg.WriteAt(ctx, 0, buf, 0, len(payload))
		if err != nil {
			t.Fatalf("final write: %v", err)
		}
		lat, pre := after.Latency(), before.Latency()
		if lat < pre+simnet.VTime(100*time.Microsecond) {
			t.Errorf("spiked latency %v not >= pre-spike %v + 100us", lat, pre)
		}
		return chaos.Stats().Spikes, lat
	}
	firstSpikes, firstLat := run()
	if firstSpikes == 0 {
		t.Fatal("scripted spike never fired")
	}
	_, secondLat := run()
	if firstLat != secondLat {
		t.Errorf("spiked latency not deterministic: run1=%v run2=%v", firstLat, secondLat)
	}
}

func mustBuf(t *testing.T, cli *client.Client, n int) *client.Buf {
	t.Helper()
	b, err := cli.AllocBuf(n)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	return b
}
