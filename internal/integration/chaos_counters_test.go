package integration

import (
	"context"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/simnet"
)

// Scenario 6: the observability plane under chaos. Every failure-handling
// mechanism the earlier scenarios exercise must leave a visible trail in
// the telemetry registries: NIC retransmissions under transient drops,
// client control-plane retries under a master partition, and the master's
// dead-server transition after a kill — surfaced both in-process and
// through the MtStats RPC a remote operator would use.
func TestChaosFailureCountersMove(t *testing.T) {
	c := startCluster(t, 3, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli := newChaosClient(t, c, clientNode)

	reg, err := cli.AllocMap(ctx, "counters", 2<<20, client.AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	victim := reg.Info().Servers()[0]

	chaos := simnet.NewChaos(c.Fabric(), chaosSeed)
	defer chaos.Detach()

	// Phase 1 — transient drops on the data path. The modeled NIC
	// retransmits; the application sees nothing, the counter must.
	snap := cli.Telemetry().Snapshot()
	if n := snap.Counter("rdma.retransmits"); n != 0 {
		t.Logf("pre-existing retransmits: %d", n)
	}
	chaos.SetPairDropRate(clientNode, victim, 0.15)
	payload := make([]byte, 64<<10)
	for i := 0; i < 10; i++ {
		if err := reg.Write(ctx, 0, payload); err != nil {
			t.Fatalf("write %d under loss: %v", i, err)
		}
	}
	chaos.SetPairDropRate(clientNode, victim, 0)
	after := cli.Telemetry().Snapshot()
	if got := after.Counter("rdma.retransmits") - snap.Counter("rdma.retransmits"); got <= 0 {
		t.Errorf("rdma.retransmits did not move under 15%% loss (delta %d)", got)
	}

	// Phase 2 — partition the client from the master mid-call. The retry
	// policy backs off and re-dials until the heal; both counters move.
	preRetries := after.Counter("client.retries")
	chaos.Partition(clientNode, 0)
	heal := time.AfterFunc(100*time.Millisecond, func() { chaos.Heal(clientNode, 0) })
	defer heal.Stop()
	if _, err := cli.ListRegions(ctx); err != nil {
		// A typed failure is acceptable (the budget may expire before the
		// heal); the heal below still lands before phase 3.
		if !typedFailure(err) {
			t.Fatalf("ListRegions under partition: untyped error %v", err)
		}
		heal.Stop()
		chaos.Heal(clientNode, 0)
	}
	postPartition := cli.Telemetry().Snapshot()
	if got := postPartition.Counter("client.retries") - preRetries; got <= 0 {
		t.Errorf("client.retries did not move across a partition (delta %d)", got)
	}

	// Phase 3 — kill the server and let the master declare it dead.
	if err := chaos.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Master().Telemetry().Snapshot().Counter("master.dead_transitions"); got < 1 {
		t.Errorf("master.dead_transitions = %d after kill, want >= 1", got)
	}

	// The same trail must be visible remotely through the stats plane.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := cli.ClusterStats(ctx)
		if err == nil {
			var masterDead int64 = -1
			for _, ns := range stats {
				if ns.Role == "master" {
					masterDead = ns.Stats.Counter("master.dead_transitions")
				}
			}
			if masterDead >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("MtStats never reported the dead-server transition")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
