package integration

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/proto"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// startFailoverCluster boots a cluster with a replicated master group and
// a short layout-lease term. The lease is virtual time, so 2ms is plenty:
// the modeled ops of a single test advance well past it, exercising both
// the stale-serve path (renewal fails during the outage) and renewal.
func startFailoverCluster(t *testing.T, machines, replicas int, repair core.RepairConfig) *core.Cluster {
	t.Helper()
	return startClusterCfg(t, core.Config{
		Machines:          machines,
		MasterReplicas:    replicas,
		ExtraClientNodes:  1,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTerm:         2 * time.Millisecond,
		Repair:            repair,
	})
}

// newFailoverClient is newChaosClient with a deeper retry budget: an op
// in flight when the primary dies must ride out the whole failover —
// silence detection, election, and the virtual-time lease wait — which
// under the race detector stretches well past the chaos suite's ~700ms
// budget. ~4s of capped 20ms backoff covers it with margin.
func newFailoverClient(t *testing.T, c *core.Cluster, node simnet.NodeID) *client.Client {
	t.Helper()
	dev, err := c.Network().OpenDevice(node)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	cli, err := client.Connect(context.Background(), dev, client.Config{
		Master:  0,
		Masters: c.MasterNodes(),
		Retry: client.RetryPolicy{
			MaxAttempts: 200,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Seed:        chaosSeed,
		},
	})
	if err != nil {
		t.Fatalf("client.Connect: %v", err)
	}
	t.Cleanup(cli.Close)
	return cli
}

// waitAliveServers blocks until the acting primary sees n registered,
// alive memory servers — the allocation runs below need a settled server
// set so placement is deterministic across runs.
func waitAliveServers(t *testing.T, c *core.Cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.Master().AliveServers()) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("only %d/%d servers alive after 10s", len(c.Master().AliveServers()), n)
}

// encodeInfo flattens region metadata to its canonical wire bytes, the
// unit of the zero-lost-metadata comparison.
func encodeInfo(info *proto.RegionInfo) string {
	var e rpc.Encoder
	proto.EncodeRegionInfo(&e, info)
	return string(e.Bytes())
}

// failoverAllocRun drives one allocation sequence against a two-replica
// master group and returns every committed region's encoded metadata by
// name. With kill=true the primary's node is dropped off the fabric while
// allocation #3 is in flight; the sequence must still complete — each op
// either succeeded on the old primary (and the response doubled as the
// commit ack, so the metadata is on the standby) or is retried with the
// same idempotency token against the promoted standby.
func failoverAllocRun(t *testing.T, kill bool) map[string]string {
	c := startFailoverCluster(t, 6, 2, core.RepairConfig{})
	ctx := context.Background()
	cli := newFailoverClient(t, c, simnet.NodeID(c.Fabric().Size()-1))
	waitAliveServers(t, c, 4)

	// A region mapped before the failure, with live data: its cached
	// layout plus lease is what keeps the data path serving when the
	// master group has no primary.
	reg, err := cli.AllocMap(ctx, "lease-io", 1<<20, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2,
	})
	if err != nil {
		t.Fatalf("AllocMap lease-io: %v", err)
	}
	buf := mustBuf(t, cli, 64<<10)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i * 7)
	}
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 64<<10); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("fo-%d", i)
		opts := client.AllocOptions{StripeUnit: 64 << 10, StripeWidth: 2, Replicas: 1}
		if kill && i == 3 {
			// Launch the alloc, then yank the primary's node while it is
			// (likely) in flight. Whether the kill lands before, during, or
			// after the commit, the final metadata must be identical: the
			// idempotency token dedupes a retried-but-committed alloc, and
			// an uncommitted one replays deterministically on the standby.
			done := make(chan error, 1)
			go func() {
				_, aerr := cli.Alloc(ctx, name, 256<<10, opts)
				done <- aerr
			}()
			if err := c.KillMaster(0); err != nil {
				t.Fatalf("KillMaster: %v", err)
			}
			// The standby needs three missed beats before it even starts
			// the election; in this window the cluster has no reachable
			// primary. The data path must not notice: lease renewal fails
			// over to stale-serve on the cached layout.
			verify := mustBuf(t, cli, 64<<10)
			for k := 0; k < 4; k++ {
				if _, err := reg.WriteAt(ctx, 0, buf, 0, 64<<10); err != nil {
					t.Fatalf("write #%d during master outage: %v", k, err)
				}
				if _, err := reg.ReadAt(ctx, 0, verify, 0, 64<<10); err != nil {
					t.Fatalf("read #%d during master outage: %v", k, err)
				}
			}
			if !bytes.Equal(verify.Bytes(), buf.Bytes()) {
				t.Fatal("outage-window read returned wrong data")
			}
			if err := <-done; err != nil {
				t.Fatalf("alloc %s across failover: %v", name, err)
			}
			continue
		}
		if _, err := cli.Alloc(ctx, name, 256<<10, opts); err != nil {
			t.Fatalf("alloc %s: %v", name, err)
		}
	}

	if kill {
		if err := c.WaitMasterRole(1, "primary", 1, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		// Bring the old primary back: its first replication contact with
		// the higher-epoch group must fence it down to standby, and the
		// client keeps converging on the real primary throughout.
		if err := c.ReviveServer(0); err != nil {
			t.Fatalf("revive master 0: %v", err)
		}
		if err := c.WaitMasterRole(0, "standby", 1, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		roles := map[simnet.NodeID]string{}
		for _, st := range cli.MasterStatuses(ctx) {
			if st.Err != nil {
				t.Errorf("master status %v: %v", st.Node, st.Err)
				continue
			}
			roles[st.Node] = st.Role
		}
		if roles[0] != "standby" || roles[1] != "primary" {
			t.Errorf("post-failover roles = %v, want 0:standby 1:primary", roles)
		}
	}

	statuses, err := cli.RegionStatuses(ctx)
	if err != nil {
		t.Fatalf("RegionStatuses: %v", err)
	}
	got := map[string]string{}
	for _, st := range statuses {
		if st.Info.Name == "lease-io" || strings.HasPrefix(st.Info.Name, "fo-") {
			info := st.Info
			got[info.Name] = encodeInfo(&info)
		}
	}
	return got
}

// TestChaosMasterFailoverMidAlloc is the headline robustness scenario:
// kill the primary master while a client is mid-allocation. The standby
// waits out the lease on virtual time, promotes at a bumped epoch, the
// client re-homes via the retry policy, and — the acceptance bar — the
// surviving metadata is byte-identical to a run with no failure at all.
// Committed means replicated: nothing the client was told succeeded may
// differ, nothing may be lost, and nothing spurious may appear.
func TestChaosMasterFailoverMidAlloc(t *testing.T) {
	want := failoverAllocRun(t, false)
	got := failoverAllocRun(t, true)

	if len(got) != len(want) {
		t.Errorf("region count after failover = %d, want %d", len(got), len(want))
	}
	for name, enc := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("region %q lost across failover", name)
			continue
		}
		if g != enc {
			t.Errorf("region %q metadata diverged across failover", name)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("region %q appeared only in the failover run", name)
		}
	}
}

// TestChaosMasterFailoverMidRepair kills the primary in the middle of a
// repair pull (via the repair-plane fault hook). The dirty-copy verdict
// was replicated as the sweep latched it, so the promoted standby
// reschedules the stalled repair from its own log and completes it: the
// region returns to full replication at an advanced generation, off the
// dead server, with the data intact.
func TestChaosMasterFailoverMidRepair(t *testing.T) {
	var clusterRef atomic.Pointer[core.Cluster]
	var once sync.Once
	repair := core.RepairConfig{
		PullHook: func(proto.Extent) {
			once.Do(func() {
				if c := clusterRef.Load(); c != nil {
					_ = c.KillMaster(0)
				}
			})
		},
	}
	c := startFailoverCluster(t, 7, 2, repair)
	clusterRef.Store(c)
	ctx := context.Background()
	cli := newFailoverClient(t, c, simnet.NodeID(c.Fabric().Size()-1))
	waitAliveServers(t, c, 5)

	reg, err := cli.AllocMap(ctx, "repairme", 512<<10, client.AllocOptions{
		StripeUnit: 128 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf := mustBuf(t, cli, 128<<10)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = byte(i * 13)
	}
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 128<<10); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	gen := reg.Info().Generation

	// Kill a replica holder. The primary's sweep declares it dead, dirties
	// the copy (replicated), and schedules the repair whose first pull
	// triggers the hook above — killing the master itself mid-repair.
	victim := reg.Info().Copies()[1][0].Server
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	if err := c.WaitServerDead(victim, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitMasterRole(1, "primary", 1, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// The promoted standby owns the repair now. Poll through the client —
	// which re-homes onto the new primary — until the region is healed.
	deadline := time.Now().Add(30 * time.Second)
	var last proto.RegionStatus
	for {
		statuses, err := cli.RegionStatuses(ctx)
		if err == nil {
			healed := false
			for _, st := range statuses {
				if st.Info.Name == "repairme" {
					last = st
				}
				if st.Info.Name != "repairme" || st.Lost || st.Info.Generation <= gen {
					continue
				}
				ok := true
				for _, cs := range st.Copies {
					if !cs.Healthy || cs.Dirty || cs.UnderRepair {
						ok = false
					}
				}
				for _, x := range append(st.Info.Extents, st.Info.Replicas[0]...) {
					if x.Server == victim {
						ok = false
					}
				}
				if ok {
					healed = true
				}
			}
			if healed {
				break
			}
		}
		if time.Now().After(deadline) {
			snap := c.TelemetrySnapshot()
			for _, m := range c.Masters() {
				role, epoch, leader := m.Status()
				t.Logf("master %v: %s@%d leader=%v alive=%v", m.Node(), role, epoch, leader, m.AliveServers())
			}
			t.Logf("beats=%d reconnects=%d", snap.Counter("memserver.heartbeats"), snap.Counter("memserver.reconnects"))
			t.Fatalf("repair never completed on the promoted standby (last err: %v)\nlast status: lost=%v gen=%d copies=%+v\nextents=%+v replicas=%+v",
				err, last.Lost, last.Info.Generation, last.Copies, last.Info.Extents, last.Info.Replicas)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Refresh the layout at the new generation and verify the data rode
	// through both failures.
	if err := reg.Remap(ctx); err != nil {
		t.Fatalf("Remap after repair: %v", err)
	}
	verify := mustBuf(t, cli, 128<<10)
	if _, err := reg.ReadAt(ctx, 0, verify, 0, 128<<10); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(verify.Bytes(), buf.Bytes()) {
		t.Fatal("data corrupted across server death + master failover")
	}
}
