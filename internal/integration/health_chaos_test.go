package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/health"
	"rstore/internal/simnet"
)

// detectBeats bounds how many heartbeat intervals may pass between a
// server's death and the server-silent alert firing. The master declares a
// server dead after HeartbeatMisses (3) missed intervals and evaluates the
// health rules on the next monitor tick (one more interval), plus one
// interval of heartbeat phase — 5 beats in the worst case. The budget is
// doubled to absorb race-detector scheduling jitter without giving up the
// latency assertion.
const detectBeats = 10

// findAlert returns the alert for (rule, target), if present.
func findAlert(alerts []health.Alert, rule, target string) (health.Alert, bool) {
	for _, a := range alerts {
		if a.Rule == rule && a.Target == target {
			return a, true
		}
	}
	return health.Alert{}, false
}

// Chaos acceptance for the health subsystem: kill a replica-holding memory
// server and assert the server-silent alert fires within detectBeats
// heartbeats; once repair re-homes the last copy off the dead node, the
// alert must resolve on its own. The whole incident must also be readable
// through the MtHealth RPC surface a remote operator uses.
func TestHealthDetectsServerDeathAndResolution(t *testing.T) {
	const beat = 20 * time.Millisecond
	c := startClusterCfg(t, core.Config{
		Machines:          7,
		ExtraClientNodes:  1,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: beat,
	})
	// Virtual time advances with simulated traffic, not wall time; narrow
	// the buckets so the short incident spans several sealed windows and
	// the report's rate assertions are deterministic.
	c.SetWindowWidth(50 * time.Microsecond)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	reg, err := cli.AllocMap(ctx, "health/chaos", 2<<20, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	if err := reg.Write(ctx, 0, pattern(2<<20, 5)); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Healthy baseline: nothing may be firing before the failure.
	for _, a := range c.Master().HealthAlerts() {
		if a.State == health.StateFiring {
			t.Fatalf("alert %s/%s firing before any fault: %s", a.Rule, a.Target, a.Msg)
		}
	}

	victim := reg.Info().Copies()[1][0].Server
	target := fmt.Sprintf("node-%d", victim)
	killedAt := time.Now()
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}

	// Detection: poll the primary's alert table directly (no RPC jitter in
	// the measurement) until server-silent fires for the victim.
	var fired health.Alert
	for {
		if a, ok := findAlert(c.Master().HealthAlerts(), "server-silent", target); ok && a.State == health.StateFiring {
			fired = a
			break
		}
		if time.Since(killedAt) > detectBeats*beat {
			t.Fatalf("server-silent not firing for %s within %d heartbeats", target, detectBeats)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("server-silent fired %v after kill", time.Since(killedAt))
	if fired.Severity != health.SevCrit {
		t.Errorf("severity = %v, want crit", fired.Severity)
	}

	// The same incident must be visible through the RPC surface, windows
	// included (the report carries the merged cluster snapshot).
	report, err := cli.ClusterHealth(ctx)
	if err != nil {
		t.Fatalf("ClusterHealth: %v", err)
	}
	if a, ok := findAlert(report.Alerts, "server-silent", target); !ok || a.State != health.StateFiring {
		t.Fatalf("MtHealth alert table missing firing server-silent for %s: %+v", target, report.Alerts)
	}
	if report.Windows.Width() <= 0 {
		t.Error("MtHealth report carries no window width")
	}
	if report.Windows.CounterDelta("master.heartbeats", 32) <= 0 {
		t.Error("MtHealth windows show no recent heartbeats")
	}

	// Recovery: repair restores full replication without the dead server;
	// once no copy references it, the alert must resolve even though the
	// node stays down.
	waitRegionHealed(t, cli, "health/chaos", 0, 15*time.Second)
	resolveDeadline := time.Now().Add(detectBeats * beat)
	var resolved health.Alert
	for {
		if a, ok := findAlert(c.Master().HealthAlerts(), "server-silent", target); ok && a.State == health.StateResolved {
			resolved = a
			break
		}
		if time.Now().After(resolveDeadline) {
			t.Fatalf("server-silent for %s never resolved after repair", target)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resolved.ResolvedV <= resolved.FiredV {
		t.Errorf("resolution stamp %v not after fire stamp %v", resolved.ResolvedV, resolved.FiredV)
	}

	// The transition ring holds the full incident for postmortems, and the
	// engine's own activity counters moved.
	report, err = cli.ClusterHealth(ctx)
	if err != nil {
		t.Fatalf("ClusterHealth after resolve: %v", err)
	}
	var sawFire, sawResolve bool
	for _, ev := range report.Events {
		if ev.Rule != "server-silent" || ev.Target != target {
			continue
		}
		if ev.Firing {
			sawFire = true
		} else if sawFire {
			sawResolve = true
		}
	}
	if !sawFire || !sawResolve {
		t.Errorf("event ring missing fire/resolve pair: %+v", report.Events)
	}
	snap := c.TelemetrySnapshot()
	if snap.Counter("master.health_alerts_fired") <= 0 {
		t.Error("master.health_alerts_fired did not move")
	}
	if snap.Counter("master.health_alerts_resolved") <= 0 {
		t.Error("master.health_alerts_resolved did not move")
	}
}

// A standby master must refuse MtHealth (its engine never evaluates), so a
// client polling health always lands on the primary's verdicts.
func TestHealthServedByPrimaryOnly(t *testing.T) {
	const beat = 20 * time.Millisecond
	c := startClusterCfg(t, core.Config{
		Machines:          6,
		MasterReplicas:    2,
		ExtraClientNodes:  1,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: beat,
	})
	ctx := context.Background()
	cli, err := c.NewClient(ctx, simnet.NodeID(c.Fabric().Size()-1))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	report, err := cli.ClusterHealth(ctx)
	if err != nil {
		t.Fatalf("ClusterHealth: %v", err)
	}
	// The client retries onto the primary internally; the report must come
	// from an engine that has actually evaluated (monitor ticks at the
	// heartbeat interval, so by now evals > 0 on the primary).
	if report.Windows.Width() <= 0 {
		t.Error("report carries no windows")
	}
	if got := c.Master().HealthAlerts(); len(got) != len(report.Alerts) {
		t.Errorf("report alerts = %d, primary table = %d", len(report.Alerts), len(got))
	}
}
