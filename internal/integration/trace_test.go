package integration

import (
	"context"
	"strings"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/telemetry"
)

// findEnvelope returns the most recent root span with the given name from
// the client's own ring.
func findEnvelope(t *testing.T, cli *client.Client, name string) telemetry.Span {
	t.Helper()
	var env telemetry.Span
	for _, s := range cli.Telemetry().Tracer().Spans() {
		if s.Name == name && s.Parent == 0 {
			env = s
		}
	}
	if env.Trace == 0 {
		t.Fatalf("no %s envelope span recorded", name)
	}
	return env
}

// Acceptance: a traced striped read touching three memory servers
// assembles — via the master's MtTraceFetch fan-out — into one complete
// causal tree with no orphan spans, and the critical-path breakdown sums
// exactly to the operation's measured latency.
func TestTraceAssemblyStripedRead(t *testing.T) {
	c := startCluster(t, 4, 0)
	ctx := context.Background()
	cli, err := c.NewClient(ctx, 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.SetTraceSampling(1)

	reg, err := cli.AllocMap(ctx, "trace/striped", 8<<20, client.AllocOptions{
		StripeUnit: 64 << 10, StripeWidth: 3,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	const opSize = 192 << 10 // three stripe units: one fragment per server
	buf := mustBuf(t, cli, opSize)
	if _, err := reg.WriteAt(ctx, 0, buf, 0, opSize); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	st, err := reg.ReadAt(ctx, 0, buf, 0, opSize)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}

	env := findEnvelope(t, cli, "client.read")
	spans, complete, err := cli.FetchTrace(ctx, env.Trace)
	if err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	if !complete {
		t.Error("trace reported incomplete")
	}
	tree := telemetry.Assemble(spans)
	if tree.Root == nil || tree.Root.Span.Name != "client.read" {
		t.Fatalf("root = %+v, want the client.read envelope", tree.Root)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("%d orphan spans, want 0", len(tree.Orphans))
	}
	if got := tree.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4 (envelope + 3 fragments)", got)
	}
	if nodes := tree.Nodes(); len(nodes) < 3 {
		t.Errorf("trace spans %v nodes, want >= 3", nodes)
	}

	bd := telemetry.CriticalPath(tree)
	if want := st.Latency().Duration(); bd.Total != want {
		t.Errorf("breakdown total = %v, want measured latency %v", bd.Total, want)
	}
	if bd.Sum() != bd.Total {
		t.Errorf("layer sum %v != total %v", bd.Sum(), bd.Total)
	}
	if bd.Get(telemetry.LayerOneSidedIO) == 0 {
		t.Error("no latency attributed to one-sided IO on a read")
	}
}

// A replicated write fans out to both copies' servers; every fragment span
// joins the same tree under the one envelope.
func TestTraceAssemblyReplicatedWrite(t *testing.T) {
	c := startCluster(t, 6, 0)
	ctx := context.Background()
	cli, err := c.NewClient(ctx, 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.SetTraceSampling(1)

	reg, err := cli.AllocMap(ctx, "trace/replicated", 2<<20, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	const opSize = 512 << 10 // both extents of each copy
	buf := mustBuf(t, cli, opSize)
	if _, err := reg.WriteAt(ctx, 0, buf, 0, opSize); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}

	env := findEnvelope(t, cli, "client.write")
	spans, complete, err := cli.FetchTrace(ctx, env.Trace)
	if err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	if !complete {
		t.Error("trace reported incomplete")
	}
	tree := telemetry.Assemble(spans)
	if tree.Root == nil || len(tree.Orphans) != 0 {
		t.Fatalf("root=%v orphans=%d, want rooted tree with no orphans", tree.Root, len(tree.Orphans))
	}
	// Envelope + 2 fragments per copy x 2 copies.
	if got := tree.SpanCount(); got != 5 {
		t.Errorf("SpanCount = %d, want 5", got)
	}
	// Primary and replica placements are disjoint: four distinct servers.
	if nodes := tree.Nodes(); len(nodes) < 4 {
		t.Errorf("trace spans %v, want >= 4 nodes", nodes)
	}
}

// A traced control-path RPC chains client and master spans: the master's
// rpc.handle span carries the caller's rpc.call span as its parent, so the
// assembled tree crosses the wire with an explicit edge.
func TestTraceControlPathRPC(t *testing.T) {
	c := startCluster(t, 4, 0)
	ctx := context.Background()
	cli, err := c.NewClient(ctx, 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.SetTraceSampling(1)

	if _, err := cli.AllocMap(ctx, "trace/ctrl", 1<<20, client.AllocOptions{}); err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	id, ok := cli.Telemetry().Tracer().NewTrace()
	if !ok {
		t.Fatal("sampling 1 must trace")
	}
	tctx := telemetry.WithTrace(ctx, id)
	if _, err := cli.Map(tctx, "trace/ctrl"); err != nil {
		t.Fatalf("Map: %v", err)
	}

	spans, complete, err := cli.FetchTrace(ctx, id)
	if err != nil {
		t.Fatalf("FetchTrace: %v", err)
	}
	if !complete {
		t.Error("trace reported incomplete")
	}
	calls := make(map[telemetry.SpanID]telemetry.Span)
	var handles []telemetry.Span
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "rpc.call."):
			calls[s.ID] = s
		case strings.HasPrefix(s.Name, "rpc.handle."):
			handles = append(handles, s)
		}
	}
	if len(calls) == 0 || len(handles) == 0 {
		t.Fatalf("calls=%d handles=%d among %d spans, want both sides", len(calls), len(handles), len(spans))
	}
	crossNode := false
	for _, h := range handles {
		call, ok := calls[h.Parent]
		if !ok {
			t.Errorf("handle %s has no matching call span (parent %v)", h.Name, h.Parent)
			continue
		}
		if call.Node != h.Node {
			crossNode = true
		}
	}
	if !crossNode {
		t.Error("no call/handle pair crossed nodes; want client vs master")
	}
	// The op has no envelope span, so each sibling RPC is its own root:
	// any "orphan" must be a root rpc.call, never a torn child.
	tree := telemetry.Assemble(spans)
	for _, o := range tree.Orphans {
		if o.Span.Parent != 0 || !strings.HasPrefix(o.Span.Name, "rpc.call.") {
			t.Errorf("true orphan in control-path trace: %+v", o.Span)
		}
	}
}

// The flight recorder promotes slow ops with head sampling off: untraced
// operations mint provisional traces, and crossing the threshold pins the
// envelope plus fragments where main-ring traffic cannot evict them.
func TestFlightRecorderPinsSlowOps(t *testing.T) {
	c := startCluster(t, 4, 0)
	ctx := context.Background()
	cli, err := c.NewClient(ctx, 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.SetTraceSampling(0)
	c.SetSlowOpThreshold(time.Nanosecond) // everything is slow

	reg, err := cli.AllocMap(ctx, "trace/flight", 1<<20, client.AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf := mustBuf(t, cli, 4096)
	pre := cli.Telemetry().Snapshot().Counter("client.slow_ops")
	if _, err := reg.ReadAt(ctx, 0, buf, 0, 4096); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got := cli.Telemetry().Snapshot().Counter("client.slow_ops") - pre; got != 1 {
		t.Errorf("slow_ops delta = %d, want 1", got)
	}

	flight := cli.Telemetry().Tracer().FlightSpans()
	var env telemetry.Span
	frags := 0
	for _, s := range flight {
		switch {
		case s.Name == "client.read" && s.Parent == 0:
			env = s
		case s.Name == "io.read":
			frags++
		}
	}
	if env.Trace == 0 {
		t.Fatalf("no pinned client.read envelope among %d flight spans", len(flight))
	}
	if frags == 0 {
		t.Error("no pinned io.read fragment spans")
	}

	// Provisional traces never touch the main ring: with sampling off the
	// only evidence of the op lives in the flight recorder.
	for _, s := range cli.Telemetry().Tracer().Spans() {
		if s.Trace == env.Trace {
			t.Fatalf("provisional span leaked into the main ring: %+v", s)
		}
	}

	// Disarmed: no promotion, no counter movement.
	c.SetSlowOpThreshold(0)
	pre = cli.Telemetry().Snapshot().Counter("client.slow_ops")
	before := len(cli.Telemetry().Tracer().FlightSpans())
	if _, err := reg.ReadAt(ctx, 0, buf, 0, 4096); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got := cli.Telemetry().Snapshot().Counter("client.slow_ops") - pre; got != 0 {
		t.Errorf("slow_ops moved while disarmed: %d", got)
	}
	if got := len(cli.Telemetry().Tracer().FlightSpans()); got != before {
		t.Errorf("flight ring grew while disarmed: %d -> %d", before, got)
	}
}
