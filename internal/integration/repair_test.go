package integration

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/memserver"
	"rstore/internal/proto"
	"rstore/internal/simnet"
)

// serverFor returns the running memory server on the given node.
func serverFor(t *testing.T, c *core.Cluster, node simnet.NodeID) *memserver.Server {
	t.Helper()
	for _, s := range c.Servers() {
		if s.Node() == node {
			return s
		}
	}
	t.Fatalf("no memory server on node %v", node)
	return nil
}

// copyImage reassembles one copy's full byte image from the hosting
// servers' arenas, extent by extent. Only valid once the cluster has
// quiesced (no writes or repairs in flight).
func copyImage(t *testing.T, c *core.Cluster, xs []proto.Extent) []byte {
	t.Helper()
	var out []byte
	for _, x := range xs {
		arena := serverFor(t, c, x.Server).Arena().Bytes()
		out = append(out, arena[x.Addr:x.Addr+x.Len]...)
	}
	return out
}

// waitRegionHealed polls the master's region status until the named
// region's generation exceeds minGen and every copy is healthy, clean, and
// not under repair. Returns the final status row.
func waitRegionHealed(t *testing.T, cli *client.Client, name string, minGen uint64, timeout time.Duration) proto.RegionStatus {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	var last proto.RegionStatus
	for time.Now().Before(deadline) {
		statuses, err := cli.RegionStatuses(ctx)
		if err != nil {
			t.Fatalf("RegionStatuses: %v", err)
		}
		for _, st := range statuses {
			if st.Info.Name != name {
				continue
			}
			last = st
			healed := st.Info.Generation > minGen && !st.Lost
			for _, cs := range st.Copies {
				if !cs.Healthy || cs.Dirty || cs.UnderRepair {
					healed = false
				}
			}
			if healed {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("region %q not healed after %v; last status %+v", name, timeout, last)
	return last
}

// pattern fills a deterministic, offset-dependent byte sequence so
// misplaced repair bytes are detected, not just missing ones.
func pattern(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

// Acceptance scenario A: kill a memory server hosting a replica. Reads and
// writes keep succeeding in degraded mode, the repair plane restores full
// replication without client involvement, the generation is bumped, and
// the repaired copy is byte-identical to the survivor.
func TestRepairRestoresReplicationAfterServerDeath(t *testing.T) {
	c := startCluster(t, 6, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	const size = 2 << 20
	reg, err := cli.AllocMap(ctx, "repair/a", size, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	want := pattern(size, 3)
	if err := reg.Write(ctx, 0, want); err != nil {
		t.Fatalf("Write: %v", err)
	}

	victim := reg.Info().Copies()[1][0].Server
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}

	// Degraded window: the replica holder is down but may not yet be
	// declared dead. Writes must succeed on the surviving copy and be
	// flagged degraded; reads are served by the primary throughout.
	pre := cli.Telemetry().Snapshot().Counter("client.degraded_writes")
	overwrite := pattern(128<<10, 9)
	if err := reg.Write(ctx, 64<<10, overwrite); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(want[64<<10:], overwrite)
	if got := cli.Telemetry().Snapshot().Counter("client.degraded_writes") - pre; got <= 0 {
		t.Errorf("degraded_writes delta = %d, want > 0", got)
	}
	check := make([]byte, 4096)
	if err := reg.Read(ctx, 60<<10, check); err != nil {
		t.Fatalf("read during degraded window: %v", err)
	}

	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatalf("WaitServerDead: %v", err)
	}
	st := waitRegionHealed(t, cli, "repair/a", 0, 10*time.Second)

	// The repaired replica must avoid the dead node and the throttled
	// transfer must have moved real bytes through the repair counters.
	for _, x := range st.Info.Copies()[1] {
		if x.Server == victim {
			t.Errorf("repaired replica still placed on dead node %v", victim)
		}
	}
	snap := c.TelemetrySnapshot()
	if snap.Counter("master.repair_bytes") <= 0 {
		t.Error("master.repair_bytes did not move")
	}
	if snap.Counter("master.repairs_done") <= 0 {
		t.Error("master.repairs_done did not move")
	}
	if snap.Counter("memserver.repair_pull_bytes") <= 0 {
		t.Error("memserver.repair_pull_bytes did not move")
	}

	// Both copies byte-identical, and identical to what the client wrote —
	// including the write that landed during the degraded window.
	primary := copyImage(t, c, st.Info.Copies()[0])
	replica := copyImage(t, c, st.Info.Copies()[1])
	if !bytes.Equal(primary, replica) {
		t.Fatal("primary and repaired replica diverge")
	}
	got := make([]byte, size)
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-back after repair diverges from written data")
	}

	// The client keeps operating with no manual intervention; once its
	// handle refreshes, new writes reach both copies again (no new
	// degraded write reports).
	if err := reg.Remap(ctx); err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if reg.Info().Generation == 0 {
		t.Error("generation not bumped after repair")
	}
	pre = cli.Telemetry().Snapshot().Counter("client.degraded_writes")
	if err := reg.Write(ctx, 0, pattern(4096, 5)); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	if got := cli.Telemetry().Snapshot().Counter("client.degraded_writes") - pre; got != 0 {
		t.Errorf("write after repair still degraded (%d reports)", got)
	}
}

// Acceptance scenario B: with three copies, kill one holder, then kill the
// repair *source* at the exact moment the first pull is about to read from
// it. The repair plane must re-pick the third copy and still restore full
// replication.
func TestRepairSurvivesSourceDeathMidRepair(t *testing.T) {
	ctx := context.Background()
	var (
		clusterP   atomic.Pointer[core.Cluster]
		killTarget atomic.Int64
		killOnce   sync.Once
	)
	killTarget.Store(-1)
	hook := func(src proto.Extent) {
		cl := clusterP.Load()
		if cl == nil || int64(src.Server) != killTarget.Load() {
			return
		}
		killOnce.Do(func() {
			// Kill the source and wait until the master has declared it
			// dead, so the retry's source re-pick sees the death.
			_ = cl.KillServer(src.Server)
			_ = cl.WaitServerDead(src.Server, 5*time.Second)
			killTarget.Store(-1)
		})
	}
	c, err := core.Start(ctx, core.Config{
		Machines:          7,
		ExtraClientNodes:  1,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
		Repair:            core.RepairConfig{PullHook: hook},
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	clusterP.Store(c)

	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	const size = 1 << 20
	reg, err := cli.AllocMap(ctx, "repair/b", size, client.AllocOptions{
		StripeUnit: 128 << 10, StripeWidth: 1, Replicas: 2,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	want := pattern(size, 11)
	if err := reg.Write(ctx, 0, want); err != nil {
		t.Fatalf("Write: %v", err)
	}

	copies := reg.Info().Copies()
	first := copies[0][0].Server  // the copy whose holder dies outright
	source := copies[1][0].Server // lowest clean copy = repair source

	// Arm the hook for the source, then kill the first holder. The repair
	// of copy 0 picks copy 1 as source; the hook kills it just before the
	// pull reads from it, forcing a mid-repair source switch to copy 2.
	killTarget.Store(int64(source))
	if err := c.KillServer(first); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	if err := c.WaitServerDead(first, 5*time.Second); err != nil {
		t.Fatalf("WaitServerDead: %v", err)
	}

	st := waitRegionHealed(t, cli, "repair/b", 0, 15*time.Second)
	for i, cs := range st.Info.Copies() {
		for _, x := range cs {
			if x.Server == first || x.Server == source {
				t.Errorf("copy %d still placed on dead node %v", i, x.Server)
			}
		}
	}
	// All three repaired copies hold the original bytes.
	for i, cs := range st.Info.Copies() {
		if img := copyImage(t, c, cs); !bytes.Equal(img, want) {
			t.Errorf("copy %d diverges from written data after repair", i)
		}
	}
	if killTarget.Load() != -1 {
		t.Error("kill hook never fired: the repair did not pull from the expected source")
	}
	snap := c.TelemetrySnapshot()
	if snap.Counter("memserver.repair_pull_errors") <= 0 {
		t.Error("expected at least one failed pull attempt (source died mid-repair)")
	}
	if snap.Counter("master.repairs_done") < 2 {
		t.Errorf("repairs_done = %d, want >= 2 (both dead copies rebuilt)",
			snap.Counter("master.repairs_done"))
	}
}

// Satellite regression: when the primary is unreachable from the client
// but the replica is fine, reads fail over and the failover counter moves.
func TestReadFailoverCounterMoves(t *testing.T) {
	c := startCluster(t, 6, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	reg, err := cli.AllocMap(ctx, "failover", 1<<20, client.AllocOptions{
		StripeUnit: 128 << 10, StripeWidth: 1, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	want := pattern(64<<10, 17)
	if err := reg.Write(ctx, 0, want); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Partition the client from the primary only. The master still sees
	// the primary's heartbeats, so no repair runs — this is purely a
	// client-side failover.
	primary := reg.Info().Copies()[0][0].Server
	c.Fabric().SetPartition(clientNode, primary, true)
	defer c.Fabric().SetPartition(clientNode, primary, false)

	pre := cli.Telemetry().Snapshot().Counter("client.read_failovers")
	got := make([]byte, len(want))
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Fatalf("read with partitioned primary: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover read returned wrong bytes")
	}
	if delta := cli.Telemetry().Snapshot().Counter("client.read_failovers") - pre; delta <= 0 {
		t.Errorf("read_failovers delta = %d, want > 0", delta)
	}
}

// Satellite regression: a replicated allocation that cannot find disjoint
// nodes succeeds degraded (recorded, not silent), and the repair plane
// re-homes the copy onto disjoint nodes once capacity returns.
func TestPlacementFallbackRehomedWhenCapacityReturns(t *testing.T) {
	c := startCluster(t, 6, 1)
	ctx := context.Background()
	clientNode := simnet.NodeID(c.Fabric().Size() - 1)
	cli, err := c.NewClient(ctx, clientNode)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// Take three of the five servers down so a width-2 replicated region
	// cannot be placed on disjoint nodes.
	spares := c.MemoryServerNodes()[2:]
	for _, n := range spares {
		if err := c.KillServer(n); err != nil {
			t.Fatalf("KillServer: %v", err)
		}
		if err := c.WaitServerDead(n, 5*time.Second); err != nil {
			t.Fatalf("WaitServerDead: %v", err)
		}
	}
	reg, err := cli.AllocMap(ctx, "rehome", 1<<20, client.AllocOptions{
		StripeUnit: 128 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatalf("degraded AllocMap should succeed: %v", err)
	}
	want := pattern(1<<20, 23)
	if err := reg.Write(ctx, 0, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := c.TelemetrySnapshot().Counter("master.placement_degraded"); got <= 0 {
		t.Fatalf("placement_degraded = %d, want > 0", got)
	}

	// Capacity returns; the repair plane must relocate the overlapping
	// copy onto disjoint nodes and clear the degraded flag.
	for _, n := range spares {
		if err := c.ReviveServer(n); err != nil {
			t.Fatalf("ReviveServer: %v", err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	var st proto.RegionStatus
	for {
		statuses, err := cli.RegionStatuses(ctx)
		if err != nil {
			t.Fatalf("RegionStatuses: %v", err)
		}
		for _, row := range statuses {
			if row.Info.Name == "rehome" {
				st = row
			}
		}
		degraded := false
		for _, cs := range st.Copies {
			if cs.PlacementDegraded || cs.Dirty || cs.UnderRepair {
				degraded = true
			}
		}
		if !degraded && len(st.Copies) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("copy not re-homed after %v; status %+v", 15*time.Second, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes := make(map[simnet.NodeID]bool)
	for _, x := range st.Info.Copies()[0] {
		nodes[x.Server] = true
	}
	for _, x := range st.Info.Copies()[1] {
		if nodes[x.Server] {
			t.Errorf("copies still overlap on node %v after re-home", x.Server)
		}
	}
	if c.TelemetrySnapshot().Counter("master.rehomes") <= 0 {
		t.Error("master.rehomes did not move")
	}
	got := make([]byte, len(want))
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Fatalf("read after re-home: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data diverged across re-home")
	}
}
