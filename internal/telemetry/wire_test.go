package telemetry

import (
	"testing"
)

// A registry with nothing registered must survive the wire: the empty
// snapshot is what a just-booted node reports on its first heartbeat.
func TestSnapshotWireEmptyRegistry(t *testing.T) {
	s := New(4).Snapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.Counters) != 0 || len(got.Gauges) != 0 || len(got.Histograms) != 0 {
		t.Fatalf("empty registry round trip produced %+v", got)
	}
	// The decoded snapshot must still be a usable merge accumulator.
	other := New(5)
	other.Counter("x").Inc()
	got.Merge(other.Snapshot())
	if got.Counter("x") != 1 {
		t.Fatal("decoded empty snapshot cannot accumulate")
	}
}

// A histogram holding exactly one observation: min == max == the sample,
// and every quantile answers that sample after the round trip.
func TestSnapshotWireSingleBucketHistogram(t *testing.T) {
	r := New(1)
	r.Histogram("lat").RecordValue(42)
	data, err := r.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	h := got.Histograms["lat"]
	if h.Count != 1 || h.Min != 42 || h.Max != 42 || h.Sum != 42 {
		t.Fatalf("single-sample hist: %+v", h)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
}

// A node restart hands the stats plane a fresh registry for the same node
// (the master sees the epoch bump). Merging the pre-restart snapshot with
// the new incarnation's must accumulate across both lives, not reset.
func TestSnapshotMergeAfterRestart(t *testing.T) {
	epoch0 := New(2)
	epoch0.Counter("rdma.ops").Add(10)
	epoch0.Gauge("arena.bytes").Set(100)
	epoch0.Histogram("lat").RecordValue(5)
	before, err := epoch0.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Restart: same node id, brand-new registry, counters from zero.
	epoch1 := New(2)
	epoch1.Counter("rdma.ops").Add(3)
	epoch1.Gauge("arena.bytes").Set(40)
	epoch1.Histogram("lat").RecordValue(7)
	after, err := epoch1.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var merged, s1 Snapshot
	if err := merged.UnmarshalBinary(before); err != nil {
		t.Fatal(err)
	}
	if err := s1.UnmarshalBinary(after); err != nil {
		t.Fatal(err)
	}
	merged.Merge(s1)
	if merged.Counter("rdma.ops") != 13 {
		t.Errorf("ops = %d, want 13 across incarnations", merged.Counter("rdma.ops"))
	}
	if merged.Gauge("arena.bytes") != 140 {
		t.Errorf("gauge = %d, want 140", merged.Gauge("arena.bytes"))
	}
	h := merged.Histograms["lat"]
	if h.Count != 2 || h.Min != 5 || h.Max != 7 {
		t.Errorf("hist across incarnations: %+v", h)
	}
}

func TestSpanWireRoundTrip(t *testing.T) {
	id, spans := testTrace()
	spans[2].Err = "remote access error"
	data, err := MarshalSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("len = %d, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Errorf("span %d: got %+v, want %+v", i, got[i], spans[i])
		}
	}
	if got[0].Trace != id {
		t.Errorf("trace = %v, want %v", got[0].Trace, id)
	}
}

func TestSpanWireEmpty(t *testing.T) {
	data, err := MarshalSpans(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSpans(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestSpanWireRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{99},                        // bad version
		{1, 0xff, 0xff, 0xff, 0xff}, // absurd count
		{1, 1, 0, 0, 0},             // truncated record
	} {
		if _, err := UnmarshalSpans(data); err == nil {
			t.Fatalf("accepted garbage %v", data)
		}
	}
	good, _ := MarshalSpans([]Span{{Trace: 1, Name: "x"}})
	if _, err := UnmarshalSpans(append(good, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}
