package telemetry

// Windowed time series: every registry metric additionally reports
// per-window values over a ring of fixed-width virtual-time buckets, so
// operators (and the master's health engine) can see *current* rates and
// windowed latency quantiles instead of lifetime totals.
//
// Buckets are keyed by the fabric-wide virtual clock — bucket k covers
// [k*width, (k+1)*width) of virtual time — so every node's windows align
// cluster-wide and merged series stay bucket-exact even when snapshots
// were taken at different boundaries. Virtual time advances only as
// modeled work happens, which is exactly the property the windows want:
// an idle cluster produces empty windows, not wall-clock noise.
//
// Collection is split to keep the hot path flat:
//
//   - Counters and gauges stay cumulative; the registry samples them at
//     tick boundaries (TickWindows / WindowSnapshot) and stores the
//     per-window deltas. The mutation path is untouched. Ticks arrive at
//     least once per heartbeat (memservers snapshot on every beat, the
//     master on every monitor tick), so attribution is off by at most one
//     bucket when a tick lands late.
//   - Histograms bucket observations inline under the mutex they already
//     take, keeping a small per-window reservoir so windowed quantiles
//     are answered from samples of that window alone.
//
// A WindowSnapshot freezes the sealed windows into a plain value that
// merges (bucket-aligned) and marshals like the cumulative Snapshot.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"rstore/internal/simnet"
)

const (
	// DefaultWindowWidth is the virtual-time width of one window bucket.
	// Modeled data-path ops take microseconds, so a millisecond of virtual
	// time covers hundreds to thousands of ops — wide enough for stable
	// rates, narrow enough to see an abort spike the moment it happens.
	DefaultWindowWidth = time.Millisecond
	// maxWindows bounds every per-metric window ring.
	maxWindows = 32
	// winReservoir bounds the per-window histogram sample reservoir.
	winReservoir = 128
	// winWireSamples caps marshaled per-window samples so a snapshot with
	// many histograms stays small on the heartbeat path.
	winWireSamples = 64
)

// clockFunc reads the virtual clock windows bucket on.
type clockFunc = func() simnet.VTime

// winShared is a registry's window configuration, shared with each of its
// histograms so observations can bucket themselves inline. A nil clock or
// zero width disables windowing (bucketNow reports !ok and every window
// path becomes a branch).
type winShared struct {
	clock   atomic.Pointer[clockFunc]
	widthNS atomic.Int64
}

func newWinShared() *winShared {
	w := &winShared{}
	w.widthNS.Store(int64(DefaultWindowWidth))
	return w
}

// bucketNow returns the bucket the current virtual instant falls in.
func (w *winShared) bucketNow() (int64, bool) {
	if w == nil {
		return 0, false
	}
	fn := w.clock.Load()
	width := w.widthNS.Load()
	if fn == nil || width <= 0 {
		return 0, false
	}
	return int64((*fn)()) / width, true
}

// SetWindowClock attaches the virtual clock windows bucket on (the rdma
// device wires the fabric frontier here). Windowing stays disabled until
// a clock is set. The counter/gauge sampler baselines immediately:
// deferring the baseline to the first periodic tick would silently fold
// everything the node does before that tick into it, so a workload that
// finishes inside the first heartbeat interval would never show up in
// any window.
func (r *Registry) SetWindowClock(clock func() simnet.VTime) {
	if clock == nil {
		r.win.clock.Store(nil)
		return
	}
	r.win.clock.Store(&clock)
	r.TickWindows()
}

// SetWindowWidth sets the virtual-time width of one window bucket.
// d <= 0 disables windowing entirely. Bucket numbering is width-relative,
// so changing the width discards windows sealed under the old one (they
// would misalign against new-width buckets on merge) and re-baselines the
// sampler at the current cumulative values.
func (r *Registry) SetWindowWidth(d time.Duration) {
	if time.Duration(r.win.widthNS.Swap(int64(d))) == d {
		return
	}
	r.resetWindows()
	r.TickWindows()
}

// resetWindows drops all sealed window state and the sampler baseline.
func (r *Registry) resetWindows() {
	r.winMu.Lock()
	r.winInit = false
	r.winBucket = 0
	r.winBase = nil
	r.winCounters = make(map[string]*winSeries)
	r.winGauges = make(map[string]*winSeries)
	r.winMu.Unlock()

	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, h := range hists {
		h.resetWindow()
	}
}

// WindowWidth returns the configured bucket width (0 = disabled).
func (r *Registry) WindowWidth() time.Duration {
	return time.Duration(r.win.widthNS.Load())
}

// winSeries is one metric's sealed per-window values: a contiguous run of
// buckets ending at bucket end, oldest first, at most maxWindows long.
type winSeries struct {
	end  int64
	vals []int64
}

// record seals bucket with value v, gap-filling skipped buckets with fill
// and dropping windows beyond the ring capacity.
func (s *winSeries) record(bucket, v, fill int64) {
	if s.vals == nil {
		s.end = bucket
		s.vals = append(s.vals, v)
		return
	}
	if bucket <= s.end {
		// Seals are issued under winMu with a monotone bucket cursor, so a
		// non-advancing seal can only be a duplicate; ignore it.
		return
	}
	gap := bucket - s.end - 1
	if gap >= maxWindows {
		s.vals = s.vals[:0]
		for i := 0; i < maxWindows-1; i++ {
			s.vals = append(s.vals, fill)
		}
	} else {
		for i := int64(0); i < gap; i++ {
			s.vals = append(s.vals, fill)
		}
	}
	s.vals = append(s.vals, v)
	if len(s.vals) > maxWindows {
		s.vals = append(s.vals[:0], s.vals[len(s.vals)-maxWindows:]...)
	}
	s.end = bucket
}

// TickWindows advances the counter/gauge window sampler: any bucket
// completed since the last tick is sealed with the cumulative delta
// accumulated in between (attributed to the newest completed bucket;
// skipped buckets seal empty). Safe to call from any goroutine, any
// number of times per bucket. A no-op while windowing is disabled.
func (r *Registry) TickWindows() {
	b, ok := r.win.bucketNow()
	if !ok {
		return
	}
	// Freeze cumulative values first (registry lock), then roll the window
	// state (window lock); the two locks never nest.
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	r.mu.Unlock()

	r.winMu.Lock()
	defer r.winMu.Unlock()
	if !r.winInit {
		r.winInit = true
		r.winBucket = b
		r.winBase = counters
		return
	}
	if b <= r.winBucket {
		return
	}
	sealed := b - 1 // the newest completed bucket
	for name, cur := range counters {
		delta := cur - r.winBase[name]
		s := r.winCounters[name]
		if s == nil {
			if delta == 0 {
				continue // don't materialize rings for idle metrics
			}
			s = &winSeries{}
			r.winCounters[name] = s
		}
		s.record(sealed, delta, 0)
	}
	for name, v := range gauges {
		s := r.winGauges[name]
		if s == nil {
			if v == 0 {
				continue
			}
			s = &winSeries{}
			r.winGauges[name] = s
		}
		// Gauges window as last-observed value; skipped buckets carry it.
		s.record(sealed, v, v)
	}
	r.winBase = counters
	r.winBucket = b
}

// WindowSeries is a frozen per-window series: Vals[len-1] is bucket End,
// Vals[0] is bucket End-len+1. For counters the values are per-window
// deltas; for gauges, the value observed in that window.
type WindowSeries struct {
	End  int64
	Vals []int64
}

// start returns the series' oldest bucket.
func (w WindowSeries) start() int64 { return w.End - int64(len(w.Vals)) + 1 }

// Sum totals the series (the delta over its whole covered span).
func (w WindowSeries) Sum() int64 {
	var t int64
	for _, v := range w.Vals {
		t += v
	}
	return t
}

// Last returns the newest window's value (0 when empty).
func (w WindowSeries) Last() int64 {
	if len(w.Vals) == 0 {
		return 0
	}
	return w.Vals[len(w.Vals)-1]
}

// SumLast totals the newest k windows (the whole series when k <= 0 or
// k exceeds the ring).
func (w WindowSeries) SumLast(k int) int64 {
	if k <= 0 || k >= len(w.Vals) {
		return w.Sum()
	}
	var t int64
	for _, v := range w.Vals[len(w.Vals)-k:] {
		t += v
	}
	return t
}

// WindowHistogram is a histogram's sealed per-window snapshots, aligned
// like WindowSeries: Windows[len-1] is bucket End.
type WindowHistogram struct {
	End     int64
	Windows []HistogramSnapshot
}

func (w WindowHistogram) start() int64 { return w.End - int64(len(w.Windows)) + 1 }

// Merged folds the newest k windows into one snapshot (all windows when
// k <= 0), answering windowed quantiles over exactly that span.
func (w WindowHistogram) Merged(k int) HistogramSnapshot {
	wins := w.Windows
	if k > 0 && k < len(wins) {
		wins = wins[len(wins)-k:]
	}
	var out HistogramSnapshot
	for _, h := range wins {
		out.Merge(h)
	}
	return out
}

// WindowSnapshot is the windowed counterpart of Snapshot: per-metric
// window rings frozen at one instant, mergeable bucket-aligned across
// nodes and marshalable onto the control plane.
type WindowSnapshot struct {
	// WidthNS is the bucket width in nanoseconds of virtual time. Zero
	// means windowing was disabled (every map is empty).
	WidthNS    int64
	Counters   map[string]WindowSeries
	Gauges     map[string]WindowSeries
	Histograms map[string]WindowHistogram
}

// Width returns the bucket width.
func (s WindowSnapshot) Width() time.Duration { return time.Duration(s.WidthNS) }

// CounterDelta sums the named counter's newest k windows (whole ring when
// k <= 0). Absent metrics return 0.
func (s WindowSnapshot) CounterDelta(name string, k int) int64 {
	return s.Counters[name].SumLast(k)
}

// CounterRate returns the named counter's increments per second of
// virtual time over the series' covered span.
func (s WindowSnapshot) CounterRate(name string) float64 {
	ser, ok := s.Counters[name]
	if !ok || len(ser.Vals) == 0 || s.WidthNS <= 0 {
		return 0
	}
	span := time.Duration(int64(len(ser.Vals)) * s.WidthNS).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(ser.Sum()) / span
}

// GaugeLast returns the named gauge's newest windowed value.
func (s WindowSnapshot) GaugeLast(name string) (int64, bool) {
	ser, ok := s.Gauges[name]
	if !ok || len(ser.Vals) == 0 {
		return 0, false
	}
	return ser.Last(), true
}

// HistogramWindow merges the named histogram's newest k windows (whole
// ring when k <= 0) into one snapshot for windowed quantiles.
func (s WindowSnapshot) HistogramWindow(name string, k int) HistogramSnapshot {
	return s.Histograms[name].Merged(k)
}

// WindowSnapshot freezes every metric's sealed windows. It ticks the
// counter/gauge sampler and seals completed histogram buckets first, so
// the newest sealed bucket is the one before the current virtual instant.
func (r *Registry) WindowSnapshot() WindowSnapshot {
	out := WindowSnapshot{
		Counters:   make(map[string]WindowSeries),
		Gauges:     make(map[string]WindowSeries),
		Histograms: make(map[string]WindowHistogram),
	}
	b, ok := r.win.bucketNow()
	if !ok {
		return out
	}
	out.WidthNS = r.win.widthNS.Load()
	r.TickWindows()

	r.winMu.Lock()
	for name, s := range r.winCounters {
		out.Counters[name] = WindowSeries{End: s.end, Vals: append([]int64(nil), s.vals...)}
	}
	for name, s := range r.winGauges {
		out.Gauges[name] = WindowSeries{End: s.end, Vals: append([]int64(nil), s.vals...)}
	}
	r.winMu.Unlock()

	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		if wh, ok := h.windowSnapshot(b); ok {
			out.Histograms[name] = wh
		}
	}
	return out
}

// mergeSeries folds two bucket-aligned series, combining overlapping
// buckets with comb and keeping the union span truncated to maxWindows
// ending at the later End.
func mergeSeries(a, b WindowSeries, comb func(x, y int64) int64) WindowSeries {
	if len(a.Vals) == 0 {
		return WindowSeries{End: b.End, Vals: append([]int64(nil), b.Vals...)}
	}
	if len(b.Vals) == 0 {
		return WindowSeries{End: a.End, Vals: append([]int64(nil), a.Vals...)}
	}
	end := a.End
	if b.End > end {
		end = b.End
	}
	start := a.start()
	if s := b.start(); s < start {
		start = s
	}
	if end-start+1 > maxWindows {
		start = end - maxWindows + 1
	}
	out := WindowSeries{End: end, Vals: make([]int64, end-start+1)}
	for i := range out.Vals {
		bucket := start + int64(i)
		var v int64
		have := false
		if bucket >= a.start() && bucket <= a.End {
			v = a.Vals[bucket-a.start()]
			have = true
		}
		if bucket >= b.start() && bucket <= b.End {
			bv := b.Vals[bucket-b.start()]
			if have {
				v = comb(v, bv)
			} else {
				v = bv
			}
		}
		out.Vals[i] = v
	}
	return out
}

// mergeWindowHistograms is mergeSeries for histogram windows.
func mergeWindowHistograms(a, b WindowHistogram) WindowHistogram {
	if len(a.Windows) == 0 {
		return WindowHistogram{End: b.End, Windows: append([]HistogramSnapshot(nil), b.Windows...)}
	}
	if len(b.Windows) == 0 {
		return WindowHistogram{End: a.End, Windows: append([]HistogramSnapshot(nil), a.Windows...)}
	}
	end := a.End
	if b.End > end {
		end = b.End
	}
	start := a.start()
	if s := b.start(); s < start {
		start = s
	}
	if end-start+1 > maxWindows {
		start = end - maxWindows + 1
	}
	out := WindowHistogram{End: end, Windows: make([]HistogramSnapshot, end-start+1)}
	for i := range out.Windows {
		bucket := start + int64(i)
		var h HistogramSnapshot
		if bucket >= a.start() && bucket <= a.End {
			h.Merge(a.Windows[bucket-a.start()])
		}
		if bucket >= b.start() && bucket <= b.End {
			h.Merge(b.Windows[bucket-b.start()])
		}
		out.Windows[i] = h
	}
	return out
}

// Merge folds o into s bucket-aligned: counter deltas add per bucket,
// gauges add per bucket (matching cumulative Snapshot.Merge semantics),
// histogram windows merge. Buckets one side never sealed contribute
// nothing — a snapshot taken at an earlier boundary simply covers fewer
// buckets. Snapshots with different widths do not align; the one with
// data wins and a mismatch keeps s unchanged.
func (s *WindowSnapshot) Merge(o WindowSnapshot) {
	if o.WidthNS == 0 {
		return
	}
	if s.WidthNS == 0 {
		s.WidthNS = o.WidthNS
	} else if s.WidthNS != o.WidthNS {
		return
	}
	if s.Counters == nil {
		s.Counters = make(map[string]WindowSeries)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]WindowSeries)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]WindowHistogram)
	}
	add := func(x, y int64) int64 { return x + y }
	for name, ser := range o.Counters {
		s.Counters[name] = mergeSeries(s.Counters[name], ser, add)
	}
	for name, ser := range o.Gauges {
		s.Gauges[name] = mergeSeries(s.Gauges[name], ser, add)
	}
	for name, wh := range o.Histograms {
		s.Histograms[name] = mergeWindowHistograms(s.Histograms[name], wh)
	}
}

// Window snapshot wire format (version 1, little-endian):
//
//	u8  version
//	u64 widthNS
//	u32 counter count; per series: u16 name len, name, i64 end,
//	                               u16 n, i64 vals...
//	u32 gauge count;   same layout
//	u32 hist count;    per hist: u16 name len, name, i64 end, u16 n,
//	    per window: i64 count, f64 sum, f64 min, f64 max,
//	                u16 sample count, f64 samples...
const windowWireVersion = 1

// MarshalBinary encodes the window snapshot for the control plane.
// Per-window reservoirs are subsampled to winWireSamples.
func (s WindowSnapshot) MarshalBinary() ([]byte, error) {
	buf := []byte{windowWireVersion}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.WidthNS))
	series := func(buf []byte, m map[string]WindowSeries) ([]byte, error) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
		for name, ser := range m {
			var err error
			if buf, err = appendName(buf, name); err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(ser.End))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ser.Vals)))
			for _, v := range ser.Vals {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		}
		return buf, nil
	}
	var err error
	if buf, err = series(buf, s.Counters); err != nil {
		return nil, err
	}
	if buf, err = series(buf, s.Gauges); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Histograms)))
	for name, wh := range s.Histograms {
		if buf, err = appendName(buf, name); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(wh.End))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(wh.Windows)))
		for _, h := range wh.Windows {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Count))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Sum))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Min))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Max))
			samples := h.Samples
			if len(samples) > winWireSamples {
				samples = strideSample(samples, winWireSamples)
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(samples)))
			for _, v := range samples {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a wire window snapshot, replacing s's contents.
func (s *WindowSnapshot) UnmarshalBinary(data []byte) error {
	d := wireReader{buf: data}
	if v := d.u8(); v != windowWireVersion {
		return fmt.Errorf("%w: window version %d", ErrBadSnapshot, v)
	}
	s.WidthNS = int64(d.u64())
	series := func() map[string]WindowSeries {
		n := d.u32()
		if d.err != nil || n > uint32(len(data)) {
			d.err = ErrBadSnapshot
			return nil
		}
		m := make(map[string]WindowSeries, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			name := d.name()
			ser := WindowSeries{End: int64(d.u64())}
			cnt := d.u16()
			for j := uint16(0); j < cnt && d.err == nil; j++ {
				ser.Vals = append(ser.Vals, int64(d.u64()))
			}
			m[name] = ser
		}
		return m
	}
	s.Counters = series()
	s.Gauges = series()
	nh := d.u32()
	if d.err != nil || nh > uint32(len(data)) {
		return ErrBadSnapshot
	}
	s.Histograms = make(map[string]WindowHistogram, nh)
	for i := uint32(0); i < nh && d.err == nil; i++ {
		name := d.name()
		wh := WindowHistogram{End: int64(d.u64())}
		cnt := d.u16()
		for j := uint16(0); j < cnt && d.err == nil; j++ {
			h := HistogramSnapshot{
				Count: int64(d.u64()),
				Sum:   math.Float64frombits(d.u64()),
				Min:   math.Float64frombits(d.u64()),
				Max:   math.Float64frombits(d.u64()),
			}
			ns := d.u16()
			for k := uint16(0); k < ns && d.err == nil; k++ {
				h.Samples = append(h.Samples, math.Float64frombits(d.u64()))
			}
			wh.Windows = append(wh.Windows, h)
		}
		s.Histograms[name] = wh
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(d.buf))
	}
	return nil
}
