// Package telemetry is RStore's cluster-wide observability substrate: a
// low-overhead, concurrency-safe metrics registry (named counters, gauges,
// and mergeable histograms) plus span-style operation tracing stamped with
// simnet virtual time.
//
// Every node (device) owns one Registry; the layers running on that node —
// rdma, rpc, client, master, memserver — register named metrics in it. The
// Snapshot API freezes a registry into a plain value that can be merged
// with other nodes' snapshots and marshaled onto the control plane (the
// master's MtStats RPC aggregates them cluster-wide).
//
// Hot-path design: counters are sharded across cache-line-padded atomic
// cells so concurrent writers on different cores do not bounce one line;
// gauges are single atomics; histograms take one uncontended mutex per
// observation (they sit on paths whose modeled cost is microseconds).
// Metric handles are resolved once at component construction, never on the
// hot path. A disabled registry turns every mutation into a single atomic
// load and branch.
//
// The package deliberately depends only on the standard library and
// internal/simnet (for virtual time), so every layer of the tree — rdma
// included — can import it without cycles.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"rstore/internal/simnet"
)

// counterShards is the number of padded cells a counter stripes over. Eight
// covers the core counts the simulated cluster realistically runs on.
const counterShards = 8

// paddedCell is an atomic int64 padded to a cache line so neighbouring
// shards never share one.
type paddedCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// usable (always enabled); registry-created counters honour the registry's
// enabled flag.
type Counter struct {
	off    *atomic.Bool
	shards [counterShards]paddedCell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe for concurrent use; negative n is ignored so merged
// totals stay monotone.
func (c *Counter) Add(n int64) {
	if n <= 0 || (c.off != nil && c.off.Load()) {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// shardIndex picks a counter shard correlated with the calling goroutine:
// the address of a stack variable, divided down to cache-line granularity.
// Distinct goroutines live on distinct stacks, so concurrent writers
// spread across shards without the per-increment PRNG draw the previous
// implementation paid. The uintptr conversion keeps the variable on the
// stack (no reference escapes).
func shardIndex() uint32 {
	var probe byte
	return uint32(uintptr(unsafe.Pointer(&probe))/64) % counterShards
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous int64 value (bytes in use, regions alive).
type Gauge struct {
	off *atomic.Bool
	v   atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g.off != nil && g.off.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g.off != nil && g.off.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is one node's named-metric table. All methods are safe for
// concurrent use. Metric lookup takes a lock: resolve handles once at
// component construction, not per operation.
type Registry struct {
	node simnet.NodeID
	off  atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracer *Tracer

	// Window sampler state (see window.go). win configures bucketing and
	// is shared with every histogram; the winMu fields hold the sealed
	// counter/gauge rings and the cumulative baseline of the last tick.
	win         *winShared
	winMu       sync.Mutex
	winInit     bool
	winBucket   int64
	winBase     map[string]int64
	winCounters map[string]*winSeries
	winGauges   map[string]*winSeries
}

// New creates a registry for the given node with an attached tracer
// (tracing starts disabled; see Tracer.SetSampling).
func New(node simnet.NodeID) *Registry {
	r := &Registry{
		node:        node,
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		win:         newWinShared(),
		winCounters: make(map[string]*winSeries),
		winGauges:   make(map[string]*winSeries),
	}
	r.tracer = newTracer(node, defaultTraceRing)
	return r
}

// Node returns the fabric node this registry belongs to.
func (r *Registry) Node() simnet.NodeID { return r.node }

// SetEnabled turns the whole registry on or off. Disabled, every metric
// mutation is one atomic load and a branch (~zero overhead); reads still
// return the values accumulated while enabled.
func (r *Registry) SetEnabled(on bool) { r.off.Store(!on) }

// Enabled reports whether mutations are being recorded.
func (r *Registry) Enabled() bool { return !r.off.Load() }

// Tracer returns the registry's span tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{off: &r.off}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{off: &r.off}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{off: &r.off, win: r.win}
		r.hists[name] = h
	}
	return h
}

// Snapshot freezes the registry into a mergeable value. Zero-valued
// metrics are included, so a snapshot also documents which metrics exist.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a frozen view of one registry (or, after Merge, of several).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the named counter's value (zero when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (zero when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Merge folds o into s: counters and gauges add, histograms merge. Nil
// maps are initialized, so the zero Snapshot is a valid accumulator.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		merged := s.Histograms[name]
		merged.Merge(h)
		s.Histograms[name] = merged
	}
}

// String renders the snapshot sorted by metric name (for logs and tests).
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %s = %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge %s = %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "hist %s n=%d mean=%.0f p99=%.0f\n", n, h.Count, h.Mean(), h.Quantile(0.99))
	}
	return b.String()
}
