package telemetry

import (
	"reflect"
	"testing"
	"time"

	"rstore/internal/simnet"
)

// winClock is a manually advanced virtual clock for window tests.
type winClock struct{ now simnet.VTime }

func (c *winClock) read() simnet.VTime { return c.now }

func (c *winClock) advance(d time.Duration) { c.now += simnet.VTime(d) }

func newWindowedRegistry(t *testing.T) (*Registry, *winClock) {
	t.Helper()
	r := New(1)
	clk := &winClock{}
	r.SetWindowClock(clk.read)
	return r, clk
}

func TestCounterWindowDeltas(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	c := r.Counter("ops")
	r.TickWindows() // baseline at bucket 0

	c.Add(5)
	clk.advance(time.Millisecond)
	r.TickWindows() // seals bucket 0

	c.Add(3)
	clk.advance(2 * time.Millisecond)
	r.TickWindows() // seals bucket 2; bucket 1 is an empty window

	s := r.WindowSnapshot()
	ser, ok := s.Counters["ops"]
	if !ok {
		t.Fatal("counter series missing")
	}
	if ser.End != 2 || !reflect.DeepEqual(ser.Vals, []int64{5, 0, 3}) {
		t.Fatalf("series = end %d vals %v, want end 2 vals [5 0 3]", ser.End, ser.Vals)
	}
	if got := s.CounterDelta("ops", 0); got != 8 {
		t.Fatalf("CounterDelta(all) = %d, want 8", got)
	}
	if got := s.CounterDelta("ops", 2); got != 3 {
		t.Fatalf("CounterDelta(2) = %d, want 3", got)
	}
	wantRate := 8.0 / (3 * time.Millisecond).Seconds()
	if got := s.CounterRate("ops"); got != wantRate {
		t.Fatalf("CounterRate = %v, want %v", got, wantRate)
	}
	if got := s.CounterDelta("absent", 0); got != 0 {
		t.Fatalf("absent counter delta = %d, want 0", got)
	}
}

func TestGaugeWindowsCarryValue(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	g := r.Gauge("depth")
	g.Set(7)
	r.TickWindows()
	clk.advance(time.Millisecond)
	r.TickWindows() // seals bucket 0 = 7

	g.Set(3)
	clk.advance(3 * time.Millisecond)
	r.TickWindows() // seals bucket 3 = 3; skipped buckets carry the value

	s := r.WindowSnapshot()
	ser := s.Gauges["depth"]
	if ser.End != 3 || !reflect.DeepEqual(ser.Vals, []int64{7, 3, 3, 3}) {
		t.Fatalf("gauge series = end %d vals %v, want end 3 vals [7 3 3 3]", ser.End, ser.Vals)
	}
	if v, ok := s.GaugeLast("depth"); !ok || v != 3 {
		t.Fatalf("GaugeLast = %d,%v, want 3,true", v, ok)
	}
	if _, ok := s.GaugeLast("absent"); ok {
		t.Fatal("GaugeLast(absent) reported ok")
	}
}

func TestCounterWindowRingWraparound(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	c := r.Counter("ops")
	r.TickWindows()
	for i := 0; i < 40; i++ {
		c.Add(1)
		clk.advance(time.Millisecond)
		r.TickWindows()
	}
	ser := r.WindowSnapshot().Counters["ops"]
	if ser.End != 39 || len(ser.Vals) != maxWindows {
		t.Fatalf("series end %d len %d, want end 39 len %d", ser.End, len(ser.Vals), maxWindows)
	}
	if ser.Sum() != maxWindows {
		t.Fatalf("wrapped sum = %d, want %d (oldest windows dropped)", ser.Sum(), maxWindows)
	}
}

func TestCounterWindowLongGapResets(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	c := r.Counter("ops")
	r.TickWindows()
	c.Add(1)
	clk.advance(time.Millisecond)
	r.TickWindows() // bucket 0 = 1

	c.Add(2)
	clk.advance(100 * time.Millisecond)
	r.TickWindows() // bucket 100 = 2; the 99-bucket gap exceeds the ring

	ser := r.WindowSnapshot().Counters["ops"]
	if ser.End != 100 || len(ser.Vals) != maxWindows {
		t.Fatalf("series end %d len %d, want end 100 len %d", ser.End, len(ser.Vals), maxWindows)
	}
	if ser.Sum() != 2 || ser.Last() != 2 {
		t.Fatalf("sum %d last %d, want 2 and 2 (old window dropped, gap empty)", ser.Sum(), ser.Last())
	}
}

func TestHistogramWindowedQuantiles(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	h := r.Histogram("lat")
	h.RecordValue(1)
	h.RecordValue(2)
	clk.advance(time.Millisecond)
	h.RecordValue(10) // first observation of bucket 1 seals bucket 0
	clk.advance(time.Millisecond)

	s := r.WindowSnapshot() // at bucket 2: seals bucket 1
	wh, ok := s.Histograms["lat"]
	if !ok {
		t.Fatal("histogram windows missing")
	}
	if wh.End != 1 || len(wh.Windows) != 2 {
		t.Fatalf("windows end %d len %d, want end 1 len 2", wh.End, len(wh.Windows))
	}
	if w0 := wh.Windows[0]; w0.Count != 2 || w0.Min != 1 || w0.Max != 2 {
		t.Fatalf("window 0 = %+v, want count 2 min 1 max 2", w0)
	}
	// The newest window's quantiles come from its samples alone.
	if got := s.HistogramWindow("lat", 1).Quantile(0.99); got != 10 {
		t.Fatalf("newest window p99 = %v, want 10", got)
	}
	if got := s.HistogramWindow("lat", 0).Quantile(0.5); got != 2 {
		t.Fatalf("all-window p50 = %v, want 2", got)
	}
}

func TestHistogramWindowEmptyAndSingleSample(t *testing.T) {
	// Quantile on a window with no samples answers 0; a single sample
	// answers every quantile.
	empty := HistogramSnapshot{}
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	single := HistogramSnapshot{Count: 1, Sum: 42, Min: 42, Max: 42, Samples: []float64{42}}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 42 {
			t.Fatalf("single-sample quantile(%v) = %v, want 42", q, got)
		}
	}

	// Windows skipped entirely appear as empty snapshots in the ring.
	r, clk := newWindowedRegistry(t)
	h := r.Histogram("lat")
	h.RecordValue(5)
	clk.advance(4 * time.Millisecond)
	h.RecordValue(9) // seals bucket 0; buckets 1..3 were silent
	clk.advance(time.Millisecond)
	wh := r.WindowSnapshot().Histograms["lat"]
	if wh.End != 4 || len(wh.Windows) != 5 {
		t.Fatalf("windows end %d len %d, want end 4 len 5", wh.End, len(wh.Windows))
	}
	for i := 1; i <= 3; i++ {
		if w := wh.Windows[i]; w.Count != 0 || w.Quantile(0.5) != 0 {
			t.Fatalf("window %d = %+v, want empty", i, w)
		}
	}
	if wh.Windows[4].Count != 1 || wh.Windows[4].Quantile(0.5) != 9 {
		t.Fatalf("window 4 = %+v, want single sample 9", wh.Windows[4])
	}
}

func TestHistogramWindowRingWraparound(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	h := r.Histogram("lat")
	for i := 0; i < 40; i++ {
		h.RecordValue(float64(i))
		clk.advance(time.Millisecond)
	}
	wh := r.WindowSnapshot().Histograms["lat"]
	if wh.End != 39 || len(wh.Windows) != maxWindows {
		t.Fatalf("windows end %d len %d, want end 39 len %d", wh.End, len(wh.Windows), maxWindows)
	}
	if got := wh.Windows[0].Quantile(1); got != 8 {
		t.Fatalf("oldest resident window sample = %v, want 8", got)
	}
	if m := wh.Merged(0); m.Count != maxWindows {
		t.Fatalf("merged count = %d, want %d", m.Count, maxWindows)
	}
}

func TestWindowSnapshotMergeDifferentBoundaries(t *testing.T) {
	// Node A's snapshot was taken two buckets before node B's: merged
	// series stay bucket-aligned, overlapping buckets add, and buckets
	// only one side sealed keep that side's value.
	a := WindowSnapshot{
		WidthNS:  int64(time.Millisecond),
		Counters: map[string]WindowSeries{"ops": {End: 10, Vals: []int64{1, 2, 3}}},
		Histograms: map[string]WindowHistogram{"lat": {End: 10, Windows: []HistogramSnapshot{
			{Count: 1, Sum: 5, Min: 5, Max: 5, Samples: []float64{5}},
		}}},
	}
	b := WindowSnapshot{
		WidthNS:  int64(time.Millisecond),
		Counters: map[string]WindowSeries{"ops": {End: 12, Vals: []int64{10, 20, 30}}},
		Histograms: map[string]WindowHistogram{"lat": {End: 12, Windows: []HistogramSnapshot{
			{Count: 1, Sum: 7, Min: 7, Max: 7, Samples: []float64{7}},
			{},
			{Count: 1, Sum: 9, Min: 9, Max: 9, Samples: []float64{9}},
		}}},
	}
	a.Merge(b)
	ser := a.Counters["ops"]
	if ser.End != 12 || !reflect.DeepEqual(ser.Vals, []int64{1, 2, 13, 20, 30}) {
		t.Fatalf("merged = end %d vals %v, want end 12 vals [1 2 13 20 30]", ser.End, ser.Vals)
	}
	wh := a.Histograms["lat"]
	// a's single window covers bucket 10 only; union span is 10..12.
	if wh.End != 12 || len(wh.Windows) != 3 {
		t.Fatalf("merged hist end %d len %d, want end 12 len 3", wh.End, len(wh.Windows))
	}
	// Bucket 10 was sealed by both nodes: the windows merge.
	if w := wh.Windows[0]; w.Count != 2 || w.Min != 5 || w.Max != 7 {
		t.Fatalf("overlap window = %+v, want merged count 2 min 5 max 7", w)
	}
	if w := wh.Windows[2]; w.Count != 1 || w.Quantile(1) != 9 {
		t.Fatalf("b-only window = %+v, want count 1 sample 9", w)
	}
}

func TestWindowSnapshotMergeWidthMismatch(t *testing.T) {
	a := WindowSnapshot{
		WidthNS:  int64(time.Millisecond),
		Counters: map[string]WindowSeries{"ops": {End: 1, Vals: []int64{4}}},
	}
	b := WindowSnapshot{
		WidthNS:  int64(2 * time.Millisecond),
		Counters: map[string]WindowSeries{"ops": {End: 1, Vals: []int64{9}}},
	}
	a.Merge(b) // different widths cannot align: a unchanged
	if got := a.CounterDelta("ops", 0); got != 4 {
		t.Fatalf("after mismatched merge delta = %d, want 4", got)
	}
	var zero WindowSnapshot
	zero.Merge(b) // zero accumulator adopts the other side wholesale
	if got := zero.CounterDelta("ops", 0); got != 9 || zero.WidthNS != b.WidthNS {
		t.Fatalf("zero merge = delta %d width %d, want 9 and %d", got, zero.WidthNS, b.WidthNS)
	}
	a.Merge(WindowSnapshot{}) // disabled snapshots contribute nothing
	if got := a.CounterDelta("ops", 0); got != 4 {
		t.Fatalf("after empty merge delta = %d, want 4", got)
	}
}

func TestWindowSnapshotWireRoundTrip(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	c := r.Counter("ops")
	g := r.Gauge("depth")
	h := r.Histogram("lat")
	r.TickWindows()
	for i := 0; i < 3; i++ {
		c.Add(int64(i + 1))
		g.Set(int64(10 * (i + 1)))
		h.RecordValue(float64(i))
		clk.advance(time.Millisecond)
		r.TickWindows()
	}
	s := r.WindowSnapshot()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got WindowSnapshot
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	// Corrupt inputs must error, not panic.
	for _, bad := range [][]byte{nil, {99}, blob[:len(blob)-1], append(append([]byte(nil), blob...), 0)} {
		var ws WindowSnapshot
		if err := ws.UnmarshalBinary(bad); err == nil {
			t.Fatalf("unmarshal(%d bytes) succeeded on corrupt input", len(bad))
		}
	}
}

func TestWindowBaselineEagerAtClockWiring(t *testing.T) {
	r := New(1)
	clk := &winClock{}
	r.SetWindowClock(clk.read) // baselines immediately, no explicit tick
	c := r.Counter("ops")
	c.Add(5) // all activity inside bucket 0, before any periodic tick
	clk.advance(time.Millisecond)
	r.TickWindows() // the node's FIRST periodic tick
	if got := r.WindowSnapshot().CounterDelta("ops", 0); got != 5 {
		t.Fatalf("pre-first-tick activity lost to the baseline: delta = %d, want 5", got)
	}
}

func TestSetWindowWidthResetsSealedState(t *testing.T) {
	r, clk := newWindowedRegistry(t)
	c := r.Counter("ops")
	h := r.Histogram("lat")
	c.Add(3)
	h.RecordValue(7)
	clk.advance(2 * time.Millisecond)
	r.TickWindows()
	if s := r.WindowSnapshot(); len(s.Counters) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("pre-change snapshot = %+v, want one sealed counter and histogram", s)
	}

	// Same width is a no-op: sealed state survives.
	r.SetWindowWidth(DefaultWindowWidth)
	if s := r.WindowSnapshot(); len(s.Counters) != 1 {
		t.Fatal("same-width SetWindowWidth discarded sealed state")
	}

	// A real change discards old-width rings (their bucket numbering would
	// misalign on merge) and re-baselines at the current cumulative values.
	r.SetWindowWidth(50 * time.Microsecond)
	if s := r.WindowSnapshot(); len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("post-change snapshot = %+v, want empty", s)
	}
	c.Add(2)
	clk.advance(100 * time.Microsecond)
	r.TickWindows()
	s := r.WindowSnapshot()
	if got := s.CounterDelta("ops", 0); got != 2 {
		t.Fatalf("post-change delta = %d, want 2 (re-baselined, not counted from zero)", got)
	}
	if s.WidthNS != int64(50*time.Microsecond) {
		t.Fatalf("snapshot width = %d, want %d", s.WidthNS, int64(50*time.Microsecond))
	}
}

func TestWindowsDisabled(t *testing.T) {
	r := New(1) // no clock attached
	r.Counter("ops").Add(5)
	r.Histogram("lat").RecordValue(1)
	r.TickWindows()
	if s := r.WindowSnapshot(); s.WidthNS != 0 || len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("clockless snapshot = %+v, want empty", s)
	}

	r2, clk := newWindowedRegistry(t)
	r2.SetWindowWidth(0) // explicit disable
	r2.Counter("ops").Add(5)
	clk.advance(time.Millisecond)
	r2.TickWindows()
	if s := r2.WindowSnapshot(); s.WidthNS != 0 || len(s.Counters) != 0 {
		t.Fatalf("width-0 snapshot = %+v, want empty", s)
	}
	if r2.WindowWidth() != 0 {
		t.Fatalf("WindowWidth = %v, want 0", r2.WindowWidth())
	}
}
