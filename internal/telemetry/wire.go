package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rstore/internal/simnet"
)

// Snapshot wire format (version 1, little-endian):
//
//	u8  version
//	u32 counter count; per counter: u16 name len, name bytes, i64 value
//	u32 gauge count;   per gauge:   u16 name len, name bytes, i64 value
//	u32 hist count;    per hist:    u16 name len, name bytes,
//	                               i64 count, f64 sum, f64 min, f64 max,
//	                               u32 sample count, f64 samples...
//
// Histogram reservoirs are subsampled to wireMaxSamples on marshal so a
// node snapshot with many histograms stays well under the RPC buffer
// size; quantile answers degrade gracefully.
const (
	snapshotWireVersion = 1
	wireMaxSamples      = 256
)

// ErrBadSnapshot reports a malformed or incompatible wire snapshot.
var ErrBadSnapshot = errors.New("telemetry: malformed snapshot")

// MarshalBinary encodes the snapshot for the control plane.
func (s Snapshot) MarshalBinary() ([]byte, error) {
	buf := []byte{snapshotWireVersion}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Counters)))
	for name, v := range s.Counters {
		var err error
		if buf, err = appendName(buf, name); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Gauges)))
	for name, v := range s.Gauges {
		var err error
		if buf, err = appendName(buf, name); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Histograms)))
	for name, h := range s.Histograms {
		var err error
		if buf, err = appendName(buf, name); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Count))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Sum))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Max))
		samples := h.Samples
		if len(samples) > wireMaxSamples {
			samples = strideSample(samples, wireMaxSamples)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
		for _, v := range samples {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

func appendName(buf []byte, name string) ([]byte, error) {
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("telemetry: metric name too long (%d bytes)", len(name))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	return append(buf, name...), nil
}

// UnmarshalBinary decodes a wire snapshot, replacing s's contents.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	d := wireReader{buf: data}
	if v := d.u8(); v != snapshotWireVersion {
		return fmt.Errorf("%w: version %d", ErrBadSnapshot, v)
	}
	nc := d.u32()
	if d.err != nil || nc > uint32(len(data)) {
		return ErrBadSnapshot
	}
	s.Counters = make(map[string]int64, nc)
	for i := uint32(0); i < nc && d.err == nil; i++ {
		name := d.name()
		s.Counters[name] = int64(d.u64())
	}
	ng := d.u32()
	if d.err != nil || ng > uint32(len(data)) {
		return ErrBadSnapshot
	}
	s.Gauges = make(map[string]int64, ng)
	for i := uint32(0); i < ng && d.err == nil; i++ {
		name := d.name()
		s.Gauges[name] = int64(d.u64())
	}
	nh := d.u32()
	if d.err != nil || nh > uint32(len(data)) {
		return ErrBadSnapshot
	}
	s.Histograms = make(map[string]HistogramSnapshot, nh)
	for i := uint32(0); i < nh && d.err == nil; i++ {
		name := d.name()
		h := HistogramSnapshot{
			Count: int64(d.u64()),
			Sum:   math.Float64frombits(d.u64()),
			Min:   math.Float64frombits(d.u64()),
			Max:   math.Float64frombits(d.u64()),
		}
		ns := d.u32()
		if d.err != nil || ns > uint32(len(data)) {
			return ErrBadSnapshot
		}
		h.Samples = make([]float64, 0, ns)
		for j := uint32(0); j < ns && d.err == nil; j++ {
			h.Samples = append(h.Samples, math.Float64frombits(d.u64()))
		}
		s.Histograms[name] = h
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(d.buf))
	}
	return nil
}

// Span wire format (version 1, little-endian), used by the MtTraceFetch
// trace plane to ship ring contents between nodes:
//
//	u8  version
//	u32 span count; per span:
//	    u64 trace, u64 id, u64 parent,
//	    u16 name len, name bytes,
//	    u32 node, u64 startV, u64 endV,
//	    u16 err len, err bytes
const spanWireVersion = 1

// MarshalSpans encodes spans for the trace-fetch control plane.
func MarshalSpans(spans []Span) ([]byte, error) {
	buf := []byte{spanWireVersion}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spans)))
	for _, s := range spans {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Trace))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Parent))
		var err error
		if buf, err = appendName(buf, s.Name); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Node))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.StartV))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.EndV))
		if buf, err = appendName(buf, s.Err); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalSpans decodes a span blob produced by MarshalSpans.
func UnmarshalSpans(data []byte) ([]Span, error) {
	d := wireReader{buf: data}
	if v := d.u8(); v != spanWireVersion {
		return nil, fmt.Errorf("%w: span version %d", ErrBadSnapshot, v)
	}
	n := d.u32()
	if d.err != nil || n > uint32(len(data)) {
		return nil, ErrBadSnapshot
	}
	spans := make([]Span, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var s Span
		s.Trace = TraceID(d.u64())
		s.ID = SpanID(d.u64())
		s.Parent = SpanID(d.u64())
		s.Name = d.name()
		s.Node = simnet.NodeID(d.u32())
		s.StartV = simnet.VTime(d.u64())
		s.EndV = simnet.VTime(d.u64())
		s.Err = d.name()
		spans = append(spans, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(d.buf))
	}
	return spans, nil
}

// wireReader is a tiny sticky-error cursor over the wire buffer.
type wireReader struct {
	buf []byte
	err error
}

func (d *wireReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrBadSnapshot
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *wireReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireReader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *wireReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireReader) name() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
