package telemetry

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"rstore/internal/simnet"
)

// Micro-benchmarks for the primitives every layer's hot path touches.
// EXPERIMENTS.md records representative numbers alongside the end-to-end
// overhead guard in internal/bench.

func BenchmarkCounterInc(b *testing.B) {
	c := New(1).Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	r := New(1)
	r.SetEnabled(false)
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := New(1).Histogram("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.RecordDuration(3 * time.Microsecond)
		}
	})
}

// BenchmarkHistogramRecordWindowed measures the same path with window
// rings live: the common case where the observation lands in the current
// bucket (no seal), which is what every hot-path record pays.
func BenchmarkHistogramRecordWindowed(b *testing.B) {
	r := New(1)
	var vnow atomic.Int64
	vnow.Store(int64(time.Millisecond))
	r.SetWindowClock(func() simnet.VTime { return simnet.VTime(vnow.Load()) })
	h := r.Histogram("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.RecordDuration(3 * time.Microsecond)
		}
	})
}

func BenchmarkTracerNewTraceOff(b *testing.B) {
	tr := New(1).Tracer()
	for i := 0; i < b.N; i++ {
		tr.NewTrace()
	}
}

func BenchmarkTraceFromUntraced(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		TraceFrom(ctx)
	}
}
