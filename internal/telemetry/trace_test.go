package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"rstore/internal/simnet"
)

func vt(n int) simnet.VTime { return simnet.VTime(n) }

// Wraparound that evicts part of a live trace must be reported: SpansFor
// returns complete=false for the torn trace instead of silently handing
// back an interleaved subset.
func TestSpansForTearDetection(t *testing.T) {
	tr := newTracer(1, 4)
	a := newTraceID(1, 100)
	b := newTraceID(1, 200)
	for i := 0; i < 3; i++ {
		tr.Record(Span{Trace: a, ID: tr.NewSpan(), Name: "a", StartV: vt(i)})
	}
	// Two spans of b wrap the ring and evict a's oldest span.
	for i := 0; i < 2; i++ {
		tr.Record(Span{Trace: b, ID: tr.NewSpan(), Name: "b", StartV: vt(10 + i)})
	}
	spans, complete := tr.SpansFor(a)
	if complete {
		t.Errorf("trace a: complete=true with %d spans, want torn", len(spans))
	}
	if len(spans) != 2 {
		t.Errorf("trace a: %d resident spans, want 2", len(spans))
	}
	if got, complete := tr.SpansFor(b); !complete || len(got) != 2 {
		t.Errorf("trace b: complete=%v len=%d, want true/2 (fully resident)", complete, len(got))
	}
	// Evicting a's remaining spans deletes its accounting entirely: the
	// trace then reads as unknown (no spans, nothing to mark torn).
	for i := 0; i < 2; i++ {
		tr.Record(Span{Trace: b, ID: tr.NewSpan(), Name: "b", StartV: vt(20 + i)})
	}
	if got, _ := tr.SpansFor(a); len(got) != 0 {
		t.Errorf("fully evicted trace still returns %d spans", len(got))
	}

	// A trace fully resident is complete.
	tr2 := newTracer(1, 8)
	for i := 0; i < 3; i++ {
		tr2.Record(Span{Trace: a, ID: tr2.NewSpan(), StartV: vt(i)})
	}
	if spans, complete := tr2.SpansFor(a); !complete || len(spans) != 3 {
		t.Errorf("resident trace: complete=%v len=%d, want true/3", complete, len(spans))
	}
}

// Pinned spans survive arbitrary main-ring traffic and are merged into
// SpansFor without duplicating spans still resident in the main ring.
func TestFlightRingSurvivesWraparound(t *testing.T) {
	tr := newTracer(2, 4)
	slow := newTraceID(2, 7)
	spans := []Span{
		{Trace: slow, ID: tr.NewSpan(), Name: "client.read", StartV: vt(0), EndV: vt(100)},
		{Trace: slow, ID: tr.NewSpan(), Name: "io.read", StartV: vt(10), EndV: vt(90)},
	}
	for _, s := range spans {
		tr.Record(s)
	}
	tr.Pin(spans)
	// Merged while still resident: no duplicates.
	if got, _ := tr.SpansFor(slow); len(got) != 2 {
		t.Fatalf("before wrap: %d spans, want 2 (dedup across rings)", len(got))
	}
	// Flood the main ring.
	for i := 0; i < 64; i++ {
		tr.Record(Span{Trace: newTraceID(2, uint64(1000+i)), ID: tr.NewSpan(), StartV: vt(i)})
	}
	got, _ := tr.SpansFor(slow)
	if len(got) != 2 {
		t.Fatalf("after wrap: %d spans, want 2 pinned survivors", len(got))
	}
	if got[0].Name != "client.read" || got[1].Name != "io.read" {
		t.Errorf("pinned spans = %v, %v", got[0].Name, got[1].Name)
	}
	var buf bytes.Buffer
	if err := tr.DumpFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "client.read") {
		t.Errorf("DumpFlight missing pinned span:\n%s", buf.String())
	}
}

func TestPinSkipsUntraced(t *testing.T) {
	tr := newTracer(1, 4)
	tr.Pin([]Span{{Trace: 0, Name: "dropped"}})
	if got := tr.FlightSpans(); len(got) != 0 {
		t.Errorf("flight ring has %d spans, want 0", len(got))
	}
}

// Provisional trace IDs must never collide with sampled ones, whatever
// order the two minting paths interleave in.
func TestProvisionalTraceDisjoint(t *testing.T) {
	tr := newTracer(3, 4)
	tr.SetSampling(1)
	seen := make(map[TraceID]bool)
	for i := 0; i < 100; i++ {
		id, ok := tr.NewTrace()
		if !ok {
			t.Fatal("sampling 1 must trace every op")
		}
		if seen[id] {
			t.Fatalf("duplicate sampled id %v", id)
		}
		seen[id] = true
		pid := tr.ProvisionalTrace()
		if seen[pid] {
			t.Fatalf("provisional id %v collides", pid)
		}
		seen[pid] = true
		if pid.Node() != 3 {
			t.Fatalf("provisional id node = %v, want 3", pid.Node())
		}
	}
}

func TestSlowOpThreshold(t *testing.T) {
	tr := newTracer(1, 4)
	if tr.Armed() {
		t.Error("armed by default")
	}
	tr.SetSlowOpThreshold(2 * time.Millisecond)
	if !tr.Armed() || tr.SlowOpThreshold() != 2*time.Millisecond {
		t.Errorf("threshold = %v armed=%v", tr.SlowOpThreshold(), tr.Armed())
	}
	tr.SetSlowOpThreshold(-1)
	if tr.Armed() {
		t.Error("negative threshold should disarm")
	}
}

func TestNewSpanIDs(t *testing.T) {
	tr := newTracer(5, 4)
	a, b := tr.NewSpan(), tr.NewSpan()
	if a == b || a == 0 || b == 0 {
		t.Errorf("span ids not unique/non-zero: %v %v", a, b)
	}
	if uint16(a>>48) != 5 {
		t.Errorf("span id node bits = %d, want 5", uint16(a>>48))
	}
}

func TestWithSpanContext(t *testing.T) {
	ctx := context.Background()
	if WithSpan(ctx, 0, 9) != ctx {
		t.Error("zero trace must return ctx unchanged")
	}
	id := newTraceID(1, 3)
	span := newSpanID(1, 8)
	ctx2 := WithSpan(ctx, id, span)
	if TraceFrom(ctx2) != id || SpanFrom(ctx2) != span {
		t.Errorf("round trip: trace=%v span=%v", TraceFrom(ctx2), SpanFrom(ctx2))
	}
	if SpanFrom(ctx) != 0 {
		t.Error("untagged ctx has a span")
	}
	// WithTrace alone leaves the span empty.
	if SpanFrom(WithTrace(ctx, id)) != 0 {
		t.Error("WithTrace must not set a span")
	}
}
