package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rstore/internal/simnet"
)

// Layer names the critical-path analyzer attributes latency to. A span's
// layer is derived from its name prefix; exclusive time of the root
// client span is the client-side queueing/software overhead.
const (
	LayerClientQueue   = "client.queue"
	LayerRPCWire       = "rpc.wire"
	LayerServerHandler = "server.handler"
	LayerOneSidedIO    = "onesided.io"
	LayerOther         = "other"
)

// layerOrder fixes the rendering order of per-layer breakdowns.
var layerOrder = []string{
	LayerClientQueue, LayerRPCWire, LayerServerHandler, LayerOneSidedIO, LayerOther,
}

// spanLayer classifies a span by name. The root of an operation (a
// client.* span) contributes its exclusive time as client queueing.
func spanLayer(name string) string {
	switch {
	case strings.HasPrefix(name, "client."):
		return LayerClientQueue
	case strings.HasPrefix(name, "rpc.call."):
		return LayerRPCWire
	case strings.HasPrefix(name, "rpc.handle."):
		return LayerServerHandler
	case strings.HasPrefix(name, "io."):
		return LayerOneSidedIO
	default:
		return LayerOther
	}
}

// TraceNode is one span in an assembled causal tree.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// TraceTree is the causal tree assembled from one trace's spans. Root is
// the earliest parentless span; any other span whose parent could not be
// located (evicted ring slot, lost node) lands in Orphans rather than
// being silently dropped.
type TraceTree struct {
	Trace   TraceID
	Root    *TraceNode
	Orphans []*TraceNode
}

// Nodes returns the distinct fabric nodes the tree's spans touched.
func (t *TraceTree) Nodes() []simnet.NodeID {
	seen := make(map[simnet.NodeID]bool)
	var walk func(n *TraceNode)
	var out []simnet.NodeID
	walk = func(n *TraceNode) {
		if !seen[n.Span.Node] {
			seen[n.Span.Node] = true
			out = append(out, n.Span.Node)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	for _, o := range t.Orphans {
		walk(o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpanCount returns the number of spans in the tree (root + orphans).
func (t *TraceTree) SpanCount() int {
	var count func(n *TraceNode) int
	count = func(n *TraceNode) int {
		c := 1
		for _, ch := range n.Children {
			c += count(ch)
		}
		return c
	}
	n := 0
	if t.Root != nil {
		n = count(t.Root)
	}
	for _, o := range t.Orphans {
		n += count(o)
	}
	return n
}

// Assemble builds a causal tree from one trace's spans, fetched from any
// number of nodes. Duplicates (the same span fetched from two rings) are
// removed; parent/child edges come from the Parent field, with a
// time-containment fallback for spans recorded before span IDs existed.
// The root is the earliest parentless span; parentless spans that the
// root does not temporally contain become Orphans.
func Assemble(spans []Span) *TraceTree {
	tree := &TraceTree{}
	if len(spans) == 0 {
		return tree
	}
	tree.Trace = spans[0].Trace

	// Dedupe: by span ID when present, else by identity of the tuple.
	type identity struct {
		id   SpanID
		name string
		node simnet.NodeID
		sv   simnet.VTime
		ev   simnet.VTime
	}
	seen := make(map[identity]bool, len(spans))
	uniq := make([]*TraceNode, 0, len(spans))
	for _, s := range spans {
		key := identity{name: s.Name, node: s.Node, sv: s.StartV, ev: s.EndV}
		if s.ID != 0 {
			key = identity{id: s.ID}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, &TraceNode{Span: s})
	}
	// Parents before children at equal start; stable causal order overall.
	sort.SliceStable(uniq, func(i, j int) bool {
		si, sj := uniq[i].Span, uniq[j].Span
		if si.StartV != sj.StartV {
			return si.StartV < sj.StartV
		}
		return si.EndV > sj.EndV
	})

	byID := make(map[SpanID]*TraceNode, len(uniq))
	for _, n := range uniq {
		if n.Span.ID != 0 {
			byID[n.Span.ID] = n
		}
	}
	var roots []*TraceNode
	for _, n := range uniq {
		if p, ok := byID[n.Span.Parent]; ok && n.Span.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		// Fallback: attach to the tightest strictly-enclosing span.
		var best *TraceNode
		for _, cand := range uniq {
			if cand == n || cand.Span.StartV > n.Span.StartV || cand.Span.EndV < n.Span.EndV {
				continue
			}
			if cand.Span.StartV == n.Span.StartV && cand.Span.EndV == n.Span.EndV {
				continue // identical extent: treat as sibling, not parent
			}
			if best == nil || cand.Span.Duration() < best.Span.Duration() {
				best = cand
			}
		}
		if best != nil {
			best.Children = append(best.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	if len(roots) > 0 {
		tree.Root = roots[0]
		tree.Orphans = roots[1:]
	}
	return tree
}

// LayerTime is one layer's share of an operation's latency.
type LayerTime struct {
	Layer string
	Time  time.Duration
}

// Breakdown attributes an operation's end-to-end latency to layers. The
// layer times partition the root span's extent exactly: they sum to
// Total with no residue, because every instant of the root interval is
// charged to exactly one span (the deepest one covering it).
type Breakdown struct {
	Total  time.Duration
	Layers []LayerTime
}

// Get returns one layer's time (zero when absent).
func (b Breakdown) Get(layer string) time.Duration {
	for _, lt := range b.Layers {
		if lt.Layer == layer {
			return lt.Time
		}
	}
	return 0
}

// Sum returns the sum over layers; by construction it equals Total.
func (b Breakdown) Sum() time.Duration {
	var s time.Duration
	for _, lt := range b.Layers {
		s += lt.Time
	}
	return s
}

func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %v", b.Total)
	for _, lt := range b.Layers {
		pct := 0.0
		if b.Total > 0 {
			pct = 100 * float64(lt.Time) / float64(b.Total)
		}
		fmt.Fprintf(&sb, "  %s=%v (%.1f%%)", lt.Layer, lt.Time, pct)
	}
	return sb.String()
}

// CriticalPath walks the assembled tree and attributes every instant of
// the root span's interval to the deepest span covering it, then groups
// the charged time by layer. Orphans are ignored (they are evidence of a
// torn trace, and the caller should surface them separately).
func CriticalPath(tree *TraceTree) Breakdown {
	var b Breakdown
	if tree == nil || tree.Root == nil {
		return b
	}
	root := tree.Root.Span
	b.Total = root.Duration()

	// Flatten the tree with depths, clamped to the root interval.
	type covered struct {
		s     Span
		depth int
	}
	var flat []covered
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		flat = append(flat, covered{n.Span, depth})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(tree.Root, 0)

	// Collect segment boundaries inside the root interval.
	bounds := make([]simnet.VTime, 0, 2*len(flat))
	clamp := func(v simnet.VTime) simnet.VTime {
		if v < root.StartV {
			return root.StartV
		}
		if v > root.EndV {
			return root.EndV
		}
		return v
	}
	for _, c := range flat {
		bounds = append(bounds, clamp(c.s.StartV), clamp(c.s.EndV))
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	layers := make(map[string]time.Duration)
	prev := root.StartV
	for _, b2 := range bounds {
		if b2 <= prev {
			continue
		}
		// Charge [prev, b2) to the deepest covering span; ties go to the
		// latest-starting (most specific) one.
		var best covered
		found := false
		for _, c := range flat {
			if c.s.StartV > prev || c.s.EndV < b2 {
				continue
			}
			if !found || c.depth > best.depth ||
				(c.depth == best.depth && c.s.StartV > best.s.StartV) {
				best, found = c, true
			}
		}
		if found {
			layers[spanLayer(best.s.Name)] += b2.Sub(prev)
		}
		prev = b2
	}

	for _, l := range layerOrder {
		if d, ok := layers[l]; ok && d > 0 {
			b.Layers = append(b.Layers, LayerTime{Layer: l, Time: d})
			delete(layers, l)
		}
	}
	// Any unforeseen layer names, in deterministic order.
	rest := make([]string, 0, len(layers))
	for l := range layers {
		rest = append(rest, l)
	}
	sort.Strings(rest)
	for _, l := range rest {
		b.Layers = append(b.Layers, LayerTime{Layer: l, Time: layers[l]})
	}
	return b
}

// Waterfall renders the assembled tree as a text waterfall: one line per
// span, indented by depth, with a bar showing the span's position and
// extent within the root interval.
func Waterfall(w io.Writer, tree *TraceTree) error {
	if tree == nil || tree.Root == nil {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	root := tree.Root.Span
	total := root.Duration()
	const width = 40
	var render func(n *TraceNode, depth int) error
	render = func(n *TraceNode, depth int) error {
		s := n.Span
		start, length := 0, width
		if total > 0 {
			start = int(float64(s.StartV.Sub(root.StartV)) / float64(total) * width)
			length = int(float64(s.Duration()) / float64(total) * width)
		}
		if start > width {
			start = width
		}
		if length < 1 {
			length = 1
		}
		if start+length > width {
			length = width - start
			if length < 1 {
				start, length = width-1, 1
			}
		}
		bar := strings.Repeat(" ", start) + strings.Repeat("█", length) +
			strings.Repeat(" ", width-start-length)
		status := ""
		if s.Err != "" {
			status = "  err=" + s.Err
		}
		name := strings.Repeat("  ", depth) + s.Name
		if _, err := fmt.Fprintf(w, "%-32s |%s| node=%-3d %8s%s\n",
			name, bar, s.Node, s.Duration(), status); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintf(w, "trace %s  span of %v across nodes %v\n",
		tree.Trace, total, tree.Nodes()); err != nil {
		return err
	}
	if err := render(tree.Root, 0); err != nil {
		return err
	}
	for _, o := range tree.Orphans {
		if _, err := fmt.Fprintln(w, "orphan:"); err != nil {
			return err
		}
		if err := render(o, 1); err != nil {
			return err
		}
	}
	return nil
}
