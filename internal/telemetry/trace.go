package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/simnet"
)

// defaultTraceRing is the per-node span ring-buffer capacity.
const defaultTraceRing = 4096

// TraceID identifies one logical operation as it crosses layers and
// nodes. The originating node lives in the high 16 bits so IDs minted on
// different nodes never collide. Zero means "not traced".
type TraceID uint64

// newTraceID builds an ID from an origin node and a per-node sequence.
func newTraceID(node simnet.NodeID, seq uint64) TraceID {
	return TraceID(uint64(uint16(node))<<48 | (seq & 0xffffffffffff))
}

// Node returns the node that minted the ID.
func (t TraceID) Node() simnet.NodeID { return simnet.NodeID(uint16(t >> 48)) }

func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// Span is one step of a traced operation, stamped with simnet virtual
// time: StartV/EndV are fabric timestamps, so span durations reflect the
// modeled network, not wall-clock scheduling noise.
type Span struct {
	Trace  TraceID
	Name   string // e.g. "client.read", "rpc.handle.alloc"
	Node   simnet.NodeID
	StartV simnet.VTime
	EndV   simnet.VTime
	Err    string // empty on success
}

// Duration returns the span's virtual-time extent.
func (s Span) Duration() time.Duration { return s.EndV.Sub(s.StartV) }

// Tracer collects spans into a fixed-size per-node ring buffer. Sampling
// is 1-in-N on new root traces: SetSampling(0) disables tracing entirely
// (the hot path cost is one atomic load), SetSampling(1) traces every op.
// Spans belonging to an already-sampled trace are always recorded, so a
// sampled operation is captured end to end across layers and nodes.
type Tracer struct {
	node     simnet.NodeID
	sampling atomic.Int64 // 0 = off, N = 1-in-N roots
	seq      atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int  // next write position
	full bool // ring has wrapped
}

func newTracer(node simnet.NodeID, capacity int) *Tracer {
	return &Tracer{node: node, ring: make([]Span, capacity)}
}

// SetSampling sets the root-trace sampling rate: 0 disables tracing, n>0
// samples one in every n new traces.
func (t *Tracer) SetSampling(n int) {
	if n < 0 {
		n = 0
	}
	t.sampling.Store(int64(n))
}

// Sampling returns the current rate (0 = off).
func (t *Tracer) Sampling() int { return int(t.sampling.Load()) }

// NewTrace decides whether the operation starting now should be traced.
// It returns a fresh ID and true when sampled, zero and false otherwise.
func (t *Tracer) NewTrace() (TraceID, bool) {
	n := t.sampling.Load()
	if n == 0 {
		return 0, false
	}
	seq := t.seq.Add(1)
	if seq%uint64(n) != 0 {
		return 0, false
	}
	return newTraceID(t.node, seq), true
}

// Record appends a span to the ring. Spans with a zero TraceID are
// dropped — callers can pass through unconditionally and let untraced
// operations fall out here.
func (t *Tracer) Record(s Span) {
	if s.Trace == 0 {
		return
	}
	if s.Node == 0 {
		s.Node = t.node
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the buffered spans to w, grouped by trace and ordered by
// virtual start time within each trace.
func (t *Tracer) Dump(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		return spans[i].StartV < spans[j].StartV
	})
	var last TraceID
	for _, s := range spans {
		if s.Trace != last {
			if _, err := fmt.Fprintf(w, "trace %s\n", s.Trace); err != nil {
				return err
			}
			last = s.Trace
		}
		status := ""
		if s.Err != "" {
			status = "  err=" + s.Err
		}
		if _, err := fmt.Fprintf(w, "  %-24s node=%d  start=%s  dur=%s%s\n",
			s.Name, s.Node, s.StartV, s.Duration(), status); err != nil {
			return err
		}
	}
	return nil
}

// traceKey is the context key for trace propagation.
type traceKey struct{}

// WithTrace attaches a trace ID to ctx. Attaching zero returns ctx
// unchanged.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx (zero when untraced).
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceKey{}).(TraceID)
	return id
}
