package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/simnet"
)

// defaultTraceRing is the per-node span ring-buffer capacity.
const defaultTraceRing = 4096

// defaultFlightRing is the capacity of the flight-recorder ring that pins
// spans of slow or failed operations so they survive main-ring wraparound.
const defaultFlightRing = 256

// TraceID identifies one logical operation as it crosses layers and
// nodes. The originating node lives in the high 16 bits so IDs minted on
// different nodes never collide. Zero means "not traced".
type TraceID uint64

// newTraceID builds an ID from an origin node and a per-node sequence.
func newTraceID(node simnet.NodeID, seq uint64) TraceID {
	return TraceID(uint64(uint16(node))<<48 | (seq & 0xffffffffffff))
}

// Node returns the node that minted the ID.
func (t TraceID) Node() simnet.NodeID { return simnet.NodeID(uint16(t >> 48)) }

func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one span within a trace so children can reference
// their parent across RPC hops. Like TraceID, the minting node occupies
// the high 16 bits. Zero means "no span" (roots have Parent == 0).
type SpanID uint64

func newSpanID(node simnet.NodeID, seq uint64) SpanID {
	return SpanID(uint64(uint16(node))<<48 | (seq & 0xffffffffffff))
}

func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// Span is one step of a traced operation, stamped with simnet virtual
// time: StartV/EndV are fabric timestamps, so span durations reflect the
// modeled network, not wall-clock scheduling noise. ID and Parent link
// spans into a causal tree: Parent is the span that directly caused this
// one (zero for the root of an operation).
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string // e.g. "client.read", "rpc.handle.alloc"
	Node   simnet.NodeID
	StartV simnet.VTime
	EndV   simnet.VTime
	Err    string // empty on success
}

// Duration returns the span's virtual-time extent.
func (s Span) Duration() time.Duration { return s.EndV.Sub(s.StartV) }

// traceCount tracks, per live trace, how many spans were ever recorded
// versus how many are still resident in the ring. The pair lets SpansFor
// tell a complete trace from one the wraparound has partially evicted.
type traceCount struct {
	total  int // spans ever recorded for this trace
	inRing int // spans currently resident
}

// Tracer collects spans into a fixed-size per-node ring buffer. Sampling
// is 1-in-N on new root traces: SetSampling(0) disables tracing entirely
// (the hot path cost is one atomic load), SetSampling(1) traces every op.
// Spans belonging to an already-sampled trace are always recorded, so a
// sampled operation is captured end to end across layers and nodes.
//
// A second, smaller "flight recorder" ring pins spans of operations that
// exceeded the slow-op threshold (or failed). Pinned spans are never
// overwritten by ordinary Record traffic, so the evidence for tail
// outliers survives main-ring wraparound.
type Tracer struct {
	node     simnet.NodeID
	sampling atomic.Int64 // 0 = off, N = 1-in-N roots
	seq      atomic.Uint64
	spanSeq  atomic.Uint64
	provSeq  atomic.Uint64
	slowNS   atomic.Int64 // flight-recorder threshold; 0 = disarmed

	mu     sync.Mutex
	ring   []Span
	next   int  // next write position
	full   bool // ring has wrapped
	counts map[TraceID]*traceCount

	flight     []Span
	flightNext int
	flightFull bool
}

func newTracer(node simnet.NodeID, capacity int) *Tracer {
	return &Tracer{
		node:   node,
		ring:   make([]Span, capacity),
		counts: make(map[TraceID]*traceCount),
		flight: make([]Span, defaultFlightRing),
	}
}

// SetSampling sets the root-trace sampling rate: 0 disables tracing, n>0
// samples one in every n new traces.
func (t *Tracer) SetSampling(n int) {
	if n < 0 {
		n = 0
	}
	t.sampling.Store(int64(n))
}

// Sampling returns the current rate (0 = off).
func (t *Tracer) Sampling() int { return int(t.sampling.Load()) }

// NewTrace decides whether the operation starting now should be traced.
// It returns a fresh ID and true when sampled, zero and false otherwise.
func (t *Tracer) NewTrace() (TraceID, bool) {
	n := t.sampling.Load()
	if n == 0 {
		return 0, false
	}
	seq := t.seq.Add(1)
	if seq%uint64(n) != 0 {
		return 0, false
	}
	return newTraceID(t.node, seq), true
}

// NewSpan mints a span ID for a span starting on this node.
func (t *Tracer) NewSpan() SpanID {
	return newSpanID(t.node, t.spanSeq.Add(1))
}

// ProvisionalTrace mints a trace ID for an operation that is not sampled
// but may be promoted retroactively by the flight recorder. Provisional
// IDs live in a sequence space disjoint from sampled ones (bit 47 set) so
// the two minting paths never collide.
func (t *Tracer) ProvisionalTrace() TraceID {
	return newTraceID(t.node, 1<<47|t.provSeq.Add(1))
}

// SetSlowOpThreshold arms the flight recorder: operations whose modeled
// latency meets or exceeds d (or that fail) are retroactively promoted to
// traced and pinned. d <= 0 disarms.
func (t *Tracer) SetSlowOpThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.slowNS.Store(int64(d))
}

// SlowOpThreshold returns the armed threshold (0 = disarmed).
func (t *Tracer) SlowOpThreshold() time.Duration {
	return time.Duration(t.slowNS.Load())
}

// Armed reports whether the flight recorder is armed.
func (t *Tracer) Armed() bool { return t.slowNS.Load() > 0 }

// Record appends a span to the ring. Spans with a zero TraceID are
// dropped — callers can pass through unconditionally and let untraced
// operations fall out here.
func (t *Tracer) Record(s Span) {
	if s.Trace == 0 {
		return
	}
	if s.Node == 0 {
		s.Node = t.node
	}
	t.mu.Lock()
	if t.full {
		// The slot being overwritten evicts a span of some older trace;
		// account for it so SpansFor can detect the tear.
		old := t.ring[t.next].Trace
		if c, ok := t.counts[old]; ok {
			c.inRing--
			if c.inRing <= 0 {
				delete(t.counts, old)
			}
		}
	}
	t.ring[t.next] = s
	c := t.counts[s.Trace]
	if c == nil {
		c = &traceCount{}
		t.counts[s.Trace] = c
	}
	c.total++
	c.inRing++
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Pin copies spans into the flight-recorder ring, where ordinary Record
// traffic cannot evict them. Used by the slow-op promotion path; callers
// pass every span they buffered for the promoted operation.
func (t *Tracer) Pin(spans []Span) {
	t.mu.Lock()
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		if s.Node == 0 {
			s.Node = t.node
		}
		t.flight[t.flightNext] = s
		t.flightNext++
		if t.flightNext == len(t.flight) {
			t.flightNext = 0
			t.flightFull = true
		}
	}
	t.mu.Unlock()
}

// FlightSpans returns the pinned flight-recorder spans, oldest first.
func (t *Tracer) FlightSpans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.flight, t.flightNext, t.flightFull)
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.ring, t.next, t.full)
}

func ringCopy(ring []Span, next int, full bool) []Span {
	if !full {
		return append([]Span(nil), ring[:next]...)
	}
	out := make([]Span, 0, len(ring))
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

// SpansFor returns every buffered span of one trace — main ring and
// flight recorder merged, duplicates removed — ordered by virtual start
// time. The second result is false when ring wraparound has evicted some
// of the trace's spans, i.e. the returned set is known to be torn; it is
// never silently partial.
func (t *Tracer) SpansFor(id TraceID) ([]Span, bool) {
	if id == 0 {
		return nil, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	complete := true
	if c, ok := t.counts[id]; ok {
		complete = c.total == c.inRing
		for _, s := range ringCopy(t.ring, t.next, t.full) {
			if s.Trace == id {
				out = append(out, s)
			}
		}
	}
	seen := make(map[SpanID]bool, len(out))
	for _, s := range out {
		if s.ID != 0 {
			seen[s.ID] = true
		}
	}
	for _, s := range ringCopy(t.flight, t.flightNext, t.flightFull) {
		if s.Trace != id || (s.ID != 0 && seen[s.ID]) {
			continue
		}
		if s.ID != 0 {
			seen[s.ID] = true
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartV < out[j].StartV })
	return out, complete
}

// Dump writes the buffered spans to w, grouped by trace and ordered by
// virtual start time within each trace.
func (t *Tracer) Dump(w io.Writer) error {
	return dumpSpans(w, t.Spans())
}

// DumpFlight writes the flight-recorder spans to w in the same format.
func (t *Tracer) DumpFlight(w io.Writer) error {
	return dumpSpans(w, t.FlightSpans())
}

func dumpSpans(w io.Writer, spans []Span) error {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		return spans[i].StartV < spans[j].StartV
	})
	var last TraceID
	for i, s := range spans {
		if i == 0 || s.Trace != last {
			if _, err := fmt.Fprintf(w, "trace %s\n", s.Trace); err != nil {
				return err
			}
			last = s.Trace
		}
		status := ""
		if s.Err != "" {
			status = "  err=" + s.Err
		}
		if _, err := fmt.Fprintf(w, "  %-24s node=%d  start=%s  dur=%s%s\n",
			s.Name, s.Node, s.StartV, s.Duration(), status); err != nil {
			return err
		}
	}
	return nil
}

// traceKey is the context key for trace propagation.
type traceKey struct{}

// spanKey is the context key for the current span (parent of any span the
// callee starts).
type spanKey struct{}

// WithTrace attaches a trace ID to ctx. Attaching zero returns ctx
// unchanged.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx (zero when untraced).
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceKey{}).(TraceID)
	return id
}

// WithSpan attaches a trace ID and the current span to ctx, so spans the
// callee starts can point at their parent. A zero trace returns ctx
// unchanged.
func WithSpan(ctx context.Context, id TraceID, span SpanID) context.Context {
	if id == 0 {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, id)
	if span != 0 {
		ctx = context.WithValue(ctx, spanKey{}, span)
	}
	return ctx
}

// SpanFrom extracts the current span ID from ctx (zero when absent).
func SpanFrom(ctx context.Context) SpanID {
	id, _ := ctx.Value(spanKey{}).(SpanID)
	return id
}
