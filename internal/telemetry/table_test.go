package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("zero value not empty")
	}
	for i := 1; i <= 100; i++ {
		h.RecordValue(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("Mean = %v", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 2 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestHistogramDurations(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Microsecond)
	h.Record(4 * time.Microsecond)
	if got := time.Duration(h.Mean()); got != 3*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if s := h.Summary(); !strings.Contains(s, "n=2") {
		t.Errorf("summary = %q", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.RecordValue(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 1 {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramReservoirBeyondCapacity(t *testing.T) {
	var h Histogram
	for i := 0; i < reservoirSize*4; i++ {
		h.RecordValue(float64(i % 1000))
	}
	q := h.Quantile(0.5)
	if q < 300 || q > 700 {
		t.Errorf("p50 = %v, want near 500", q)
	}
}

// Property: mean always lies within [min, max].
func TestHistogramMeanBoundsProperty(t *testing.T) {
	fn := func(vals []float64) bool {
		var h Histogram
		any := false
		for _, v := range vals {
			// Bound magnitudes so the running sum cannot overflow.
			if math.IsNaN(v) || math.Abs(v) > 1e300 {
				continue
			}
			v = math.Mod(v, 1e12)
			h.RecordValue(v)
			any = true
		}
		if !any {
			return true
		}
		m := h.Mean()
		return m >= h.Min()-1e-9 && m <= h.Max()+1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGbps(t *testing.T) {
	if got := Gbps(1e9/8, time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Gbps = %v, want 1", got)
	}
	if got := Gbps(100, 0); got != 0 {
		t.Errorf("Gbps with zero duration = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1", "size", "latency", "gbps")
	tb.AddRow(8, 2500*time.Nanosecond, 0.5)
	tb.AddRow("1MiB", 150*time.Microsecond, 54.123)
	s := tb.String()
	if !strings.Contains(s, "== E1 ==") {
		t.Errorf("missing title: %q", s)
	}
	if !strings.Contains(s, "2.50us") {
		t.Errorf("missing formatted duration: %q", s)
	}
	if !strings.Contains(s, "54.12") {
		t.Errorf("missing formatted float: %q", s)
	}
	rows := tb.Rows()
	if len(rows) != 2 || rows[0][0] != "8" {
		t.Errorf("rows = %+v", rows)
	}
}

func TestTableFooter(t *testing.T) {
	tb := NewTable("E2", "col")
	tb.AddRow(1)
	tb.Footer = "slowest op: total 10us  onesided.io=8us (80.0%)"
	s := tb.String()
	if !strings.Contains(s, "slowest op") {
		t.Errorf("missing footer: %q", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Errorf("footer not newline-terminated: %q", s)
	}
}

func TestFmtDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{2500 * time.Nanosecond, "2.50us"},
		{1500 * time.Microsecond, "1.50ms"},
		{2 * time.Second, "2.00s"},
	}
	for _, tt := range tests {
		if got := fmtDuration(tt.d); got != tt.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}
