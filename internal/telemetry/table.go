package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Gbps converts bytes moved in a duration to gigabits per second.
func Gbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// Table renders experiment output with aligned columns, matching the
// "rows the paper reports" requirement of the harness. It absorbed the
// old internal/metrics renderer so benches and the running-cluster
// telemetry share one package.
type Table struct {
	Title   string
	Headers []string
	// Footer, when non-empty, is printed verbatim after the rows — used
	// by benches to attach e.g. a slowest-op critical-path breakdown.
	Footer string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.Footer != "" {
		b.WriteString(t.Footer)
		if !strings.HasSuffix(t.Footer, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Rows returns the rendered cells (for assertions in tests).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}
