package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// reservoirSize bounds per-histogram memory; beyond it, samples are kept
// via reservoir sampling (Vitter's algorithm R with a deterministic hash
// so runs are reproducible).
const reservoirSize = 4096

// Histogram records a stream of float64 observations and answers summary
// queries (count, sum, min, max, quantiles) over a uniform sample of the
// stream. The zero value is ready to use. Safe for concurrent use.
type Histogram struct {
	off *atomic.Bool
	win *winShared // registry window config; nil on zero-value histograms

	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	seen    int64 // observations offered to the reservoir
	samples []float64

	// In-progress window (bucket winBucket) and the ring of sealed
	// windows ending at bucket winEnd, all guarded by mu. Observations
	// bucket themselves here inline so windowed quantiles come from
	// samples of that window alone (see window.go).
	winInit    bool
	winBucket  int64
	curCount   int64
	curSum     float64
	curMin     float64
	curMax     float64
	curSeen    int64
	curSamples []float64
	winEnd     int64
	winRing    []HistogramSnapshot
}

// RecordValue adds one observation.
func (h *Histogram) RecordValue(v float64) {
	if h.off != nil && h.off.Load() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observe(v)
}

// RecordDuration adds one observation measured as a duration (stored in
// nanoseconds).
func (h *Histogram) RecordDuration(d time.Duration) {
	h.RecordValue(float64(d.Nanoseconds()))
}

// Record is an alias of RecordDuration, kept for the bench API.
func (h *Histogram) Record(d time.Duration) { h.RecordDuration(d) }

// Summary renders count/mean/p50/p99/max, formatting nanosecond
// observations as durations.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(),
		time.Duration(h.Mean()),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.Max()))
}

// observe updates summary stats and the reservoir. Caller holds h.mu.
func (h *Histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.reservoirAdd(v)
	h.windowObserve(v)
}

// windowObserve buckets one observation into the current window, sealing
// completed windows first. Caller holds h.mu. A nil or disabled window
// config makes this a branch.
func (h *Histogram) windowObserve(v float64) {
	b, ok := h.win.bucketNow()
	if !ok {
		return
	}
	if !h.winInit {
		h.winInit = true
		h.winBucket = b
	} else if b > h.winBucket {
		h.sealWindowLocked(b)
	}
	if h.curCount == 0 || v < h.curMin {
		h.curMin = v
	}
	if h.curCount == 0 || v > h.curMax {
		h.curMax = v
	}
	h.curCount++
	h.curSum += v
	h.curSeen++
	if len(h.curSamples) < winReservoir {
		h.curSamples = append(h.curSamples, v)
		return
	}
	// Same deterministic Vitter-R draw as the cumulative reservoir.
	x := uint64(h.curSeen) * 0x9e3779b97f4a7c15
	x ^= x >> 33
	if idx := x % uint64(h.curSeen); idx < winReservoir {
		h.curSamples[idx] = v
	}
}

// sealWindowLocked closes the in-progress window into the ring (gap-
// filling skipped buckets with empty windows) and starts bucket now.
// Caller holds h.mu and guarantees now > h.winBucket.
func (h *Histogram) sealWindowLocked(now int64) {
	snap := HistogramSnapshot{Count: h.curCount, Sum: h.curSum}
	if h.curCount > 0 {
		snap.Min, snap.Max = h.curMin, h.curMax
		snap.Samples = h.curSamples
	}
	if h.winRing == nil {
		h.winEnd = h.winBucket
		h.winRing = append(h.winRing, snap)
	} else if h.winBucket > h.winEnd {
		gap := h.winBucket - h.winEnd - 1
		if gap >= maxWindows {
			h.winRing = h.winRing[:0]
			for i := 0; i < maxWindows-1; i++ {
				h.winRing = append(h.winRing, HistogramSnapshot{})
			}
		} else {
			for i := int64(0); i < gap; i++ {
				h.winRing = append(h.winRing, HistogramSnapshot{})
			}
		}
		h.winRing = append(h.winRing, snap)
		if len(h.winRing) > maxWindows {
			h.winRing = append(h.winRing[:0], h.winRing[len(h.winRing)-maxWindows:]...)
		}
		h.winEnd = h.winBucket
	}
	h.curCount, h.curSum, h.curMin, h.curMax, h.curSeen = 0, 0, 0, 0, 0
	h.curSamples = nil
	h.winBucket = now
}

// resetWindow drops the in-progress window and the sealed ring; the next
// observation re-initializes bucketing. Used when the bucket width changes
// (old-width windows would misalign against new-width buckets).
func (h *Histogram) resetWindow() {
	h.mu.Lock()
	h.winInit, h.winBucket = false, 0
	h.curCount, h.curSum, h.curMin, h.curMax, h.curSeen = 0, 0, 0, 0, 0
	h.curSamples = nil
	h.winRing, h.winEnd = nil, 0
	h.mu.Unlock()
}

// windowSnapshot seals any window completed before bucket now and freezes
// the ring. ok is false when the histogram has never windowed anything.
func (h *Histogram) windowSnapshot(now int64) (WindowHistogram, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.winInit && now > h.winBucket {
		h.sealWindowLocked(now)
	}
	if len(h.winRing) == 0 {
		return WindowHistogram{}, false
	}
	out := WindowHistogram{End: h.winEnd, Windows: make([]HistogramSnapshot, len(h.winRing))}
	for i, s := range h.winRing {
		s.Samples = append([]float64(nil), s.Samples...)
		out.Windows[i] = s
	}
	return out, true
}

// reservoirAdd offers v to the sample reservoir. Caller holds h.mu.
func (h *Histogram) reservoirAdd(v float64) {
	h.seen++
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, v)
		return
	}
	// Deterministic stand-in for a uniform draw in [0, seen): hash the
	// observation index so repeated runs keep identical reservoirs.
	x := uint64(h.seen) * 0x9e3779b97f4a7c15
	x ^= x >> 33
	if idx := x % uint64(h.seen); idx < reservoirSize {
		h.samples[idx] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest observation, or 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1], clamped) estimated from the
// sample reservoir. Empty histograms return 0; a single sample answers
// every quantile.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileOf(h.samples, q)
}

// quantileOf computes the q-quantile of unsorted samples without mutating
// the input. Returns 0 when samples is empty.
func quantileOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Merge folds the contents of o into h. Both histograms' summary stats
// combine exactly; the reservoirs merge proportionally to how many
// observations each side has seen, so the merged sample stays roughly
// uniform over the union stream.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || h == o {
		return
	}
	o.mu.Lock()
	snap := HistogramSnapshot{
		Count:   o.count,
		Sum:     o.sum,
		Min:     o.min,
		Max:     o.max,
		Samples: append([]float64(nil), o.samples...),
	}
	seen := o.seen
	o.mu.Unlock()
	if snap.Count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mergeLocked(snap, seen)
}

// MergeSnapshot folds a frozen snapshot (e.g. from another node) into h.
func (h *Histogram) MergeSnapshot(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mergeLocked(o, o.Count)
}

// mergeLocked merges snapshot o (whose reservoir saw oSeen observations)
// into h. Caller holds h.mu.
func (h *Histogram) mergeLocked(o HistogramSnapshot, oSeen int64) {
	if h.count == 0 || o.Min < h.min {
		h.min = o.Min
	}
	if h.count == 0 || o.Max > h.max {
		h.max = o.Max
	}
	h.count += o.Count
	h.sum += o.Sum
	h.samples = mergeReservoirs(h.samples, h.seen, o.Samples, oSeen)
	h.seen += oSeen
	if int64(len(h.samples)) > h.seen {
		// Defensive: never claim a bigger reservoir than the stream.
		h.samples = h.samples[:h.seen]
	}
}

// mergeReservoirs combines two uniform reservoirs drawn from streams of
// aSeen and bSeen observations into one reservoir of at most reservoirSize
// samples, weighting each side by its stream length. Deterministic.
func mergeReservoirs(a []float64, aSeen int64, b []float64, bSeen int64) []float64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		out := make([]float64, len(b))
		copy(out, b)
		if len(out) > reservoirSize {
			out = out[:reservoirSize]
		}
		return out
	}
	if len(a)+len(b) <= reservoirSize {
		return append(a, b...)
	}
	total := aSeen + bSeen
	if total <= 0 {
		total = int64(len(a) + len(b))
		aSeen, bSeen = int64(len(a)), int64(len(b))
	}
	// Allocate slots proportionally to stream sizes, then take an evenly
	// spaced subsample from each side (reservoirs are unordered uniform
	// samples, so strided selection keeps uniformity and determinism).
	aSlots := int(int64(reservoirSize) * aSeen / total)
	if aSlots > len(a) {
		aSlots = len(a)
	}
	bSlots := reservoirSize - aSlots
	if bSlots > len(b) {
		bSlots = len(b)
		if extra := reservoirSize - aSlots - bSlots; extra > 0 && aSlots+extra <= len(a) {
			aSlots += extra
		}
	}
	out := make([]float64, 0, aSlots+bSlots)
	out = append(out, strideSample(a, aSlots)...)
	out = append(out, strideSample(b, bSlots)...)
	return out
}

// strideSample picks n evenly spaced elements from s.
func strideSample(s []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n >= len(s) {
		return s
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s[i*len(s)/n])
	}
	return out
}

// Snapshot freezes the histogram into a plain value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
	}
	if h.count > 0 {
		s.Min = h.min
		s.Max = h.max
	}
	s.Samples = append([]float64(nil), h.samples...)
	return s
}

// HistogramSnapshot is a frozen, mergeable view of a histogram. Samples is
// a uniform reservoir over the observation stream.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Samples []float64
}

// Mean returns the mean, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the q-quantile from the sample reservoir (0 when empty).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileOf(s.Samples, q)
}

// Merge folds o into s, treating each side's reservoir as covering Count
// observations.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min, s.Max = o.Min, o.Max
	} else {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Samples = mergeReservoirs(s.Samples, s.Count, o.Samples, o.Count)
	s.Count += o.Count
	s.Sum += o.Sum
}
