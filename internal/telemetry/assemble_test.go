package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testTrace builds the span set of one distributed read: a client envelope
// on node 1, a traced RPC to the master on node 0, and two one-sided
// fragments against nodes 2 and 3. Durations are in virtual nanoseconds.
func testTrace() (TraceID, []Span) {
	id := newTraceID(1, 1)
	root := newSpanID(1, 1)
	call := newSpanID(1, 2)
	handle := newSpanID(0, 1)
	io1 := newSpanID(1, 3)
	io2 := newSpanID(1, 4)
	return id, []Span{
		{Trace: id, ID: root, Name: "client.read", Node: 1, StartV: vt(0), EndV: vt(100)},
		{Trace: id, ID: call, Parent: root, Name: "rpc.call.map", Node: 1, StartV: vt(5), EndV: vt(40)},
		{Trace: id, ID: handle, Parent: call, Name: "rpc.handle.map", Node: 0, StartV: vt(15), EndV: vt(30)},
		{Trace: id, ID: io1, Parent: root, Name: "io.read", Node: 2, StartV: vt(45), EndV: vt(90)},
		{Trace: id, ID: io2, Parent: root, Name: "io.read", Node: 3, StartV: vt(45), EndV: vt(80)},
	}
}

func TestAssembleParentEdges(t *testing.T) {
	id, spans := testTrace()
	tree := Assemble(spans)
	if tree.Trace != id {
		t.Fatalf("trace = %v, want %v", tree.Trace, id)
	}
	if tree.Root == nil || tree.Root.Span.Name != "client.read" {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("%d orphans, want 0", len(tree.Orphans))
	}
	if got := tree.SpanCount(); got != 5 {
		t.Errorf("SpanCount = %d, want 5", got)
	}
	if len(tree.Root.Children) != 3 {
		t.Fatalf("root has %d children, want 3 (rpc.call + 2 io)", len(tree.Root.Children))
	}
	var rpcNode *TraceNode
	for _, c := range tree.Root.Children {
		if c.Span.Name == "rpc.call.map" {
			rpcNode = c
		}
	}
	if rpcNode == nil || len(rpcNode.Children) != 1 || rpcNode.Children[0].Span.Name != "rpc.handle.map" {
		t.Fatalf("rpc.call subtree wrong: %+v", rpcNode)
	}
	nodes := tree.Nodes()
	if len(nodes) != 4 || nodes[0] != 0 || nodes[3] != 3 {
		t.Errorf("Nodes = %v, want [0 1 2 3]", nodes)
	}
}

// Fetching the same trace from several rings produces duplicates; the
// assembler must collapse them by span ID.
func TestAssembleDedupes(t *testing.T) {
	_, spans := testTrace()
	tree := Assemble(append(append([]Span(nil), spans...), spans...))
	if got := tree.SpanCount(); got != 5 {
		t.Errorf("SpanCount after dup feed = %d, want 5", got)
	}
}

// Spans without IDs (or whose parent was evicted) attach by temporal
// containment; parentless spans the root cannot explain become orphans.
func TestAssembleContainmentAndOrphans(t *testing.T) {
	id := newTraceID(2, 9)
	spans := []Span{
		{Trace: id, Name: "client.write", Node: 1, StartV: vt(0), EndV: vt(50)},
		{Trace: id, Name: "io.write", Node: 2, StartV: vt(10), EndV: vt(40)},
		// Parent ID points at a span nobody holds anymore, and its extent
		// escapes the root: must surface as an orphan, not vanish.
		{Trace: id, ID: newSpanID(2, 5), Parent: newSpanID(2, 99), Name: "io.write", Node: 3, StartV: vt(60), EndV: vt(70)},
	}
	tree := Assemble(spans)
	if tree.Root == nil || tree.Root.Span.Name != "client.write" {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Span.Name != "io.write" {
		t.Fatalf("containment fallback failed: %+v", tree.Root.Children)
	}
	if len(tree.Orphans) != 1 || tree.Orphans[0].Span.Node != 3 {
		t.Fatalf("orphans = %+v, want the node-3 span", tree.Orphans)
	}
}

func TestAssembleEmpty(t *testing.T) {
	tree := Assemble(nil)
	if tree.Root != nil || len(tree.Orphans) != 0 || tree.SpanCount() != 0 {
		t.Errorf("empty assemble = %+v", tree)
	}
}

// The per-layer times must partition the root interval exactly: every
// instant is charged to the deepest covering span, so the sum equals the
// measured end-to-end latency with no residue.
func TestCriticalPathSumsToTotal(t *testing.T) {
	_, spans := testTrace()
	bd := CriticalPath(Assemble(spans))
	if bd.Total != 100*time.Nanosecond {
		t.Fatalf("Total = %v, want 100ns", bd.Total)
	}
	if bd.Sum() != bd.Total {
		t.Fatalf("Sum %v != Total %v", bd.Sum(), bd.Total)
	}
	// Hand-computed segments: client.queue = [0,5)+[40,45)+[90,100) = 20;
	// rpc.wire = [5,15)+[30,40) = 20; server.handler = [15,30) = 15;
	// onesided.io = [45,90) = 45.
	want := map[string]time.Duration{
		LayerClientQueue:   20,
		LayerRPCWire:       20,
		LayerServerHandler: 15,
		LayerOneSidedIO:    45,
	}
	for layer, d := range want {
		if got := bd.Get(layer); got != d {
			t.Errorf("%s = %v, want %v", layer, got, d)
		}
	}
	s := bd.String()
	if !strings.Contains(s, "total 100ns") || !strings.Contains(s, LayerOneSidedIO) {
		t.Errorf("String = %q", s)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if bd := CriticalPath(&TraceTree{}); bd.Total != 0 || len(bd.Layers) != 0 {
		t.Errorf("empty breakdown = %+v", bd)
	}
	if bd := CriticalPath(nil); bd.Total != 0 {
		t.Errorf("nil breakdown = %+v", bd)
	}
}

func TestWaterfallRenders(t *testing.T) {
	id, spans := testTrace()
	var buf bytes.Buffer
	if err := Waterfall(&buf, Assemble(spans)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace "+id.String()) {
		t.Errorf("missing header:\n%s", out)
	}
	for _, name := range []string{"client.read", "rpc.call.map", "rpc.handle.map", "io.read"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing span %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "█") {
		t.Errorf("no bars rendered:\n%s", out)
	}
	if strings.Contains(out, "orphan:") {
		t.Errorf("unexpected orphan section:\n%s", out)
	}
}
