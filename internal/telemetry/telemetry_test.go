package telemetry

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"rstore/internal/simnet"
)

func TestCounterConcurrent(t *testing.T) {
	r := New(1)
	c := r.Counter("ops")
	var wg sync.WaitGroup
	const goroutines, per = 16, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryDisable(t *testing.T) {
	r := New(1)
	c := r.Counter("ops")
	g := r.Gauge("depth")
	h := r.Histogram("lat")
	c.Inc()
	g.Set(7)
	h.RecordValue(1)

	r.SetEnabled(false)
	c.Inc()
	g.Set(99)
	g.Add(1)
	h.RecordValue(2)
	if c.Value() != 1 || g.Value() != 7 || h.Count() != 1 {
		t.Fatalf("disabled registry mutated: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}

	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("re-enabled counter = %d, want 2", c.Value())
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := New(1)
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not memoized")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not memoized")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram not memoized")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: min=%v max=%v mean=%v, want zeros", h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	snap := h.Snapshot()
	if snap.Quantile(0.5) != 0 || snap.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean nonzero")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.RecordValue(42)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Fatalf("single-sample stats wrong: min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.RecordValue(float64(i))
	}
	if got := h.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want 1", got)
	}
	if got := h.Quantile(2); got != 100 {
		t.Fatalf("Quantile(2) = %v, want 100", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("Quantile(0.5) = %v, want 50", got)
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	var h Histogram
	h.RecordValue(-5)
	h.RecordValue(3)
	if h.Min() != -5 || h.Max() != 3 {
		t.Fatalf("min=%v max=%v, want -5 / 3", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 50; i++ {
		a.RecordValue(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.RecordValue(float64(i))
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged min/max = %v/%v, want 1/100", a.Min(), a.Max())
	}
	if a.Sum() != 5050 {
		t.Fatalf("merged sum = %v, want 5050", a.Sum())
	}
	med := a.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Fatalf("merged median = %v, want ~50", med)
	}
	// b is untouched.
	if b.Count() != 50 {
		t.Fatalf("merge mutated source: count = %d", b.Count())
	}
}

func TestHistogramMergeEmptyCases(t *testing.T) {
	var a, b Histogram
	a.Merge(&b) // empty into empty
	if a.Count() != 0 {
		t.Fatal("empty merge changed count")
	}
	b.RecordValue(7)
	a.Merge(&b) // non-empty into empty
	if a.Count() != 1 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("merge into empty: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	var c Histogram
	a.Merge(&c) // empty into non-empty
	if a.Count() != 1 || a.Min() != 7 {
		t.Fatal("merging empty histogram changed stats")
	}
	a.Merge(&a) // self-merge is a no-op
	if a.Count() != 1 {
		t.Fatal("self-merge doubled count")
	}
}

func TestHistogramMergeLargeReservoirs(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 3*reservoirSize; i++ {
		a.RecordValue(10)
		b.RecordValue(20)
	}
	a.Merge(&b)
	if a.Count() != int64(6*reservoirSize) {
		t.Fatalf("count = %d", a.Count())
	}
	snap := a.Snapshot()
	if len(snap.Samples) > reservoirSize {
		t.Fatalf("reservoir overflow: %d samples", len(snap.Samples))
	}
	// Streams are equal length, so the merged reservoir should be close
	// to half 10s, half 20s.
	var tens int
	for _, v := range snap.Samples {
		if v == 10 {
			tens++
		}
	}
	frac := float64(tens) / float64(len(snap.Samples))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("merged reservoir skewed: %.0f%% from stream a", frac*100)
	}
}

func TestSnapshotMergeAndString(t *testing.T) {
	r1, r2 := New(1), New(2)
	r1.Counter("ops").Add(3)
	r2.Counter("ops").Add(4)
	r2.Counter("errs").Inc()
	r1.Gauge("depth").Set(5)
	r2.Gauge("depth").Set(7)
	r1.Histogram("lat").RecordValue(100)
	r2.Histogram("lat").RecordValue(200)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	if s.Counter("ops") != 7 || s.Counter("errs") != 1 {
		t.Fatalf("merged counters: ops=%d errs=%d", s.Counter("ops"), s.Counter("errs"))
	}
	if s.Gauge("depth") != 12 {
		t.Fatalf("merged gauge = %d, want 12", s.Gauge("depth"))
	}
	h := s.Histograms["lat"]
	if h.Count != 2 || h.Min != 100 || h.Max != 200 {
		t.Fatalf("merged hist: %+v", h)
	}
	out := s.String()
	if !strings.Contains(out, "counter ops = 7") || !strings.Contains(out, "hist lat n=2") {
		t.Fatalf("String output missing entries:\n%s", out)
	}

	// Zero snapshot is a valid accumulator.
	var acc Snapshot
	acc.Merge(s)
	if acc.Counter("ops") != 7 {
		t.Fatal("zero-snapshot merge failed")
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	r := New(3)
	r.Counter("rdma.ops").Add(1234)
	r.Gauge("arena.bytes").Set(-55)
	h := r.Histogram("lat")
	for i := 0; i < 2*reservoirSize; i++ {
		h.RecordValue(float64(i))
	}
	s := r.Snapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Counter("rdma.ops") != 1234 || got.Gauge("arena.bytes") != -55 {
		t.Fatalf("round trip lost scalars: %+v", got)
	}
	gh := got.Histograms["lat"]
	if gh.Count != int64(2*reservoirSize) || gh.Min != 0 || gh.Max != float64(2*reservoirSize-1) {
		t.Fatalf("round trip hist summary: %+v", gh)
	}
	if len(gh.Samples) == 0 || len(gh.Samples) > wireMaxSamples {
		t.Fatalf("wire samples = %d, want 1..%d", len(gh.Samples), wireMaxSamples)
	}
	med := gh.Quantile(0.5)
	if med < float64(reservoirSize)*0.5 || med > float64(reservoirSize)*1.5 {
		t.Fatalf("wire median = %v, want ~%d", med, reservoirSize)
	}
}

func TestSnapshotWireRejectsGarbage(t *testing.T) {
	var s Snapshot
	for _, data := range [][]byte{
		nil,
		{99},                        // bad version
		{1, 0xff, 0xff, 0xff, 0xff}, // absurd counter count
		{1, 1, 0, 0, 0},             // truncated counter record
	} {
		if err := s.UnmarshalBinary(data); err == nil {
			t.Fatalf("accepted garbage %v", data)
		}
	}
	// Trailing bytes rejected.
	good, _ := Snapshot{}.MarshalBinary()
	if err := s.UnmarshalBinary(append(good, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := newTracer(2, 16)
	if id, ok := tr.NewTrace(); ok || id != 0 {
		t.Fatal("disabled tracer sampled a trace")
	}
	tr.SetSampling(1)
	id, ok := tr.NewTrace()
	if !ok || id == 0 {
		t.Fatal("sampling=1 did not sample")
	}
	if id.Node() != 2 {
		t.Fatalf("trace node = %d, want 2", id.Node())
	}
	tr.SetSampling(4)
	var sampled int
	for i := 0; i < 40; i++ {
		if _, ok := tr.NewTrace(); ok {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-4 sampling picked %d of 40", sampled)
	}
}

func TestTracerRingAndDump(t *testing.T) {
	tr := newTracer(1, 4)
	tr.Record(Span{Trace: 0, Name: "dropped"}) // zero trace is ignored
	for i := 1; i <= 6; i++ {
		tr.Record(Span{
			Trace:  TraceID(7),
			Name:   "op",
			StartV: simnet.VTime(i * 100),
			EndV:   simnet.VTime(i*100 + 50),
		})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	if spans[0].StartV != 300 || spans[3].StartV != 600 {
		t.Fatalf("ring order wrong: first=%v last=%v", spans[0].StartV, spans[3].StartV)
	}
	if spans[0].Node != 1 {
		t.Fatalf("node not defaulted: %d", spans[0].Node)
	}
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace 0000000000000007") || !strings.Contains(b.String(), "op") {
		t.Fatalf("dump missing content:\n%s", b.String())
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != 0 {
		t.Fatal("fresh context has a trace")
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("WithTrace(0) allocated a new context")
	}
	ctx2 := WithTrace(ctx, 99)
	if TraceFrom(ctx2) != 99 {
		t.Fatalf("TraceFrom = %v, want 99", TraceFrom(ctx2))
	}
}

func TestRecordDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(3 * time.Microsecond)
	if h.Max() != 3000 {
		t.Fatalf("RecordDuration stored %v, want 3000 ns", h.Max())
	}
}
