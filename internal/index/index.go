// Package index is RStore's ordered index: a B+tree whose nodes live as
// fixed-size cells in a transactional cell space (internal/txn) and are
// traversed with one-sided reads — the servers never run index code.
//
// Layout: cell 0 is the meta cell (root pointer, height, allocation
// cursor); nodes are allocated in pairs, the node at cell 2i+1 and its
// sidecar at cell 2i+2. Leaf sidecars hold a bloom filter over the
// leaf's keys; inner sidecars are unused. Cells are never freed or
// retyped and node key ranges only ever shrink (splits move upper keys
// right), which is the invariant the client cache leans on.
//
// Reads: every node read is a validated seqlock read (txn.ReadCell), so
// a single node costs two wire reads (body + version re-check). A warm
// client routes root→leaf through its LRU cache of the meta cell and
// inner nodes with zero wire traffic and pays only the leaf read; the
// leaf's fence keys validate the whole speculative route, and a
// mismatch (someone split along the path) falls back to an
// authoritative traversal inside a read-only transaction, which also
// refreshes the cache. A cached leaf bloom filter answers negative
// lookups for one 8-byte read: the filter says "no", and re-reading the
// sidecar's version word proves the cached copy still matches the wire
// (any insert that could add the key, and any split, rewrites the
// sidecar) — so a stale filter is detected, never trusted.
//
// Writes: leaf mutations and structural changes run as optimistic
// transactions. A split rewrites the overflowing node, the new right
// sibling, the parent link, the meta cell and (for leaves) both bloom
// sidecars in ONE transaction, so concurrent clients see either the
// old tree or the new one and a client dying mid-split leaves locks the
// two-sighting breaker resolves.
//
// Like txn.Space, a Tree handle is not safe for concurrent use: open
// one per worker. Handles on different clients share the tree.
package index

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"rstore/internal/client"
	"rstore/internal/telemetry"
	"rstore/internal/txn"
)

var (
	// ErrNotFound reports a key absent from the tree.
	ErrNotFound = errors.New("index: key not found")
	// ErrTooLarge reports an entry over the per-entry capacity bound.
	ErrTooLarge = errors.New("index: entry exceeds node capacity")
	// ErrBadKey reports an empty key or one longer than MaxKey.
	ErrBadKey = errors.New("index: bad key")
	// ErrCorrupt reports an undecodable node cell.
	ErrCorrupt = errors.New("index: corrupt node")
	// ErrFull reports the node cell pool is exhausted.
	ErrFull = errors.New("index: node cells exhausted")
	// ErrBadGeometry reports options that cannot host a working tree.
	ErrBadGeometry = errors.New("index: bad geometry")
)

// Sentinels internal to the insert/delete retry loops.
var (
	errWrongLeaf = errors.New("index: routed to wrong leaf")
	errNeedSplit = errors.New("index: leaf overflow")
)

// Options sizes a tree. The zero value is usable.
type Options struct {
	// Nodes caps how many tree nodes (each a node+sidecar cell pair)
	// the space can ever hold. Default 4096.
	Nodes int
	// NodeSize is the cell size in bytes (8 of which are the txn
	// version word). Default 1024.
	NodeSize int
	// MaxKey bounds key length; it also reserves fence headroom in
	// every node. Default 128.
	MaxKey int
	// CacheNodes caps the client-side LRU over meta + inner nodes.
	// Default 256.
	CacheNodes int
	// NoCache disables the node cache: every lookup is a full
	// root-to-leaf chase. Bench ablation; leave false.
	NoCache bool
	// NoBloom disables bloom sidecar maintenance and consultation.
	// Must be uniform across every writer of a tree: a NoBloom writer
	// skips sidecar updates, so mixing modes lets filters go stale for
	// everyone. Bench ablation; leave false.
	NoBloom bool

	// Passed through to the txn space.
	Owner            int
	Owners           int
	StripeUnit       uint64
	Retry            client.RetryPolicy
	ReadRetries      int
	StaleLockTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4096
	}
	if o.NodeSize <= 0 {
		o.NodeSize = 1024
	}
	if o.MaxKey <= 0 {
		o.MaxKey = 128
	}
	if o.CacheNodes <= 0 {
		o.CacheNodes = 256
	}
	return o
}

// txnOptions maps tree geometry onto the cell space: one meta cell plus
// a node+sidecar pair per node. The 16 KiB log slot keeps the split
// write set (6 cells) well inside one redo record at the default node
// size.
func (o Options) txnOptions() txn.Options {
	return txn.Options{
		Cells:            1 + 2*o.Nodes,
		CellSize:         o.NodeSize,
		StripeUnit:       o.StripeUnit,
		Owners:           o.Owners,
		Owner:            o.Owner,
		LogSlotSize:      16 << 10,
		MaxWriteSet:      8,
		Retry:            o.Retry,
		ReadRetries:      o.ReadRetries,
		StaleLockTimeout: o.StaleLockTimeout,
	}
}

// maxEntry is the largest encoded leaf entry (4-byte header + key +
// value) the tree accepts: half a node's payload after fence headroom,
// which guarantees any overflowing leaf can split into two fitting
// halves with the pending entry landing in either.
func (o Options) maxEntry() int {
	return (o.NodeSize - 8 - nodeHeader - 2*o.MaxKey) / 2
}

func (o Options) check() error {
	if o.maxEntry() < 4+o.MaxKey+1 {
		return fmt.Errorf("%w: node size %d cannot hold a max-key entry (max entry %d)", ErrBadGeometry, o.NodeSize, o.maxEntry())
	}
	inner := nodeHeader + 2*o.MaxKey + 4 + 2*(6+o.MaxKey)
	if o.NodeSize-8 < inner {
		return fmt.Errorf("%w: node size %d cannot hold a two-separator inner node (%d bytes)", ErrBadGeometry, o.NodeSize, inner)
	}
	return nil
}

// idxCounters is the subsystem's telemetry.
type idxCounters struct {
	lookups    *telemetry.Counter
	inserts    *telemetry.Counter
	deletes    *telemetry.Counter
	scans      *telemetry.Counter
	splits     *telemetry.Counter
	cacheHits  *telemetry.Counter // lookups served via a validated cached route
	cacheMiss  *telemetry.Counter // route absent or invalidated by the fence check
	bloomShort *telemetry.Counter // negatives answered by a revalidated cached filter (one word read)
	bloomFetch *telemetry.Counter // sidecar reads to populate the bloom cache
	retraverse *telemetry.Counter // authoritative root-to-leaf walks
	depth      *telemetry.Histogram
}

// Tree is one client's handle onto a shared ordered index.
type Tree struct {
	sp       *txn.Space
	opts     Options
	bodySize int

	cache      *nodeCache
	cachedMeta *meta
	blooms     map[uint32]bloomEntry // leaf cell -> cached sidecar snapshot
	gen        uint64                // data-region generation the caches were built under

	ctr    idxCounters
	tracer *telemetry.Tracer

	// SplitFailPoint, when set, is armed as the txn space's FailPoint
	// for the duration of each split transaction — chaos harnesses use
	// it to die mid-split without perturbing ordinary commits.
	SplitFailPoint func(stage txn.CommitStage) error
}

// Entry is one key/value pair returned by Scan.
type Entry struct {
	Key []byte
	Val []byte
}

// bloomEntry is one cached leaf filter: the sidecar's bits and version
// word, plus the fence interval of the leaf state the sidecar described
// when the pair was captured (fetchBloom proves the two were read from
// one consistent instant). The fences gate the negative shortcut — a
// key outside them may live in a sibling this entry knows nothing about
// even while a stale route still points here — and the version word is
// what pre-shortcut revalidation compares against the wire.
type bloomEntry struct {
	version uint64 // sidecar cell version at capture
	lo, hi  []byte // leaf fences at capture (hi empty = +inf)
	bits    []byte // sidecar body
}

func (e *bloomEntry) covers(key []byte) bool {
	return bytes.Compare(e.lo, key) <= 0 && (len(e.hi) == 0 || bytes.Compare(key, e.hi) < 0)
}

// Create allocates the cell space and seeds an empty tree: a meta cell
// pointing at a single empty root leaf. Other clients use Open.
func Create(ctx context.Context, cli *client.Client, name string, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	sp, err := txn.Create(ctx, cli, name, opts.txnOptions())
	if err != nil {
		return nil, err
	}
	t := newTree(sp, opts, cli.Telemetry())
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(0, meta{root: 1, height: 0, nextCell: 3}.encode()); err != nil {
			return err
		}
		root := &node{kind: kindLeaf}
		if err := tx.Write(1, root.encode()); err != nil {
			return err
		}
		return tx.Write(2, buildBloom(t.bodySize, nil))
	})
	if err != nil {
		sp.Close(ctx)
		return nil, fmt.Errorf("index create: %w", err)
	}
	return t, nil
}

// Open maps an existing tree and sanity-checks its meta cell.
func Open(ctx context.Context, cli *client.Client, name string, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	sp, err := txn.Open(ctx, cli, name, opts.txnOptions())
	if err != nil {
		return nil, err
	}
	_, body, err := sp.ReadCell(ctx, 0)
	if err != nil {
		sp.Close(ctx)
		return nil, fmt.Errorf("index open: %w", err)
	}
	if _, err := decodeMeta(body); err != nil {
		sp.Close(ctx)
		return nil, fmt.Errorf("index open: %w", err)
	}
	return newTree(sp, opts, cli.Telemetry()), nil
}

func newTree(sp *txn.Space, opts Options, tel *telemetry.Registry) *Tree {
	return &Tree{
		sp:       sp,
		opts:     opts,
		bodySize: sp.BodySize(),
		cache:    newNodeCache(opts.CacheNodes),
		blooms:   make(map[uint32]bloomEntry),
		gen:      sp.Generation(),
		ctr: idxCounters{
			lookups:    tel.Counter("index.lookups"),
			inserts:    tel.Counter("index.inserts"),
			deletes:    tel.Counter("index.deletes"),
			scans:      tel.Counter("index.scans"),
			splits:     tel.Counter("index.splits"),
			cacheHits:  tel.Counter("index.cache_hits"),
			cacheMiss:  tel.Counter("index.cache_misses"),
			bloomShort: tel.Counter("index.bloom_shortcuts"),
			bloomFetch: tel.Counter("index.bloom_fetches"),
			retraverse: tel.Counter("index.retraversals"),
			depth:      tel.Histogram("index.traversal_depth"),
		},
		tracer: tel.Tracer(),
	}
}

// Close releases the underlying cell space handle.
func (t *Tree) Close(ctx context.Context) error { return t.sp.Close(ctx) }

// Space exposes the underlying transactional cell space (tests and the
// chaos harness reach through it).
func (t *Tree) Space() *txn.Space { return t.sp }

func (t *Tree) checkKey(key []byte) error {
	if len(key) == 0 || len(key) > t.opts.MaxKey {
		return fmt.Errorf("%w: %d bytes (max %d, empty disallowed)", ErrBadKey, len(key), t.opts.MaxKey)
	}
	return nil
}

// checkGen drops every cached body when the data region's layout
// generation moved: the repair plane relocated extents, so cached
// routes may describe memory that no longer holds what they claim.
func (t *Tree) checkGen() {
	if g := t.sp.Generation(); g != t.gen {
		t.invalidateAll()
		t.gen = g
	}
}

func (t *Tree) invalidateAll() {
	t.cache.clear()
	t.cachedMeta = nil
	for k := range t.blooms {
		delete(t.blooms, k)
	}
}

// span wraps fn in a named tracer span, joining the caller's trace when
// the context carries one. ErrNotFound is an answer, not a failure, so
// it does not mark the span errored.
func (t *Tree) span(ctx context.Context, name string, fn func(ctx context.Context) error) error {
	id := telemetry.TraceFrom(ctx)
	parent := telemetry.SpanFrom(ctx)
	if id == 0 {
		var ok bool
		if id, ok = t.tracer.NewTrace(); !ok {
			return fn(ctx)
		}
		parent = 0
	}
	span := telemetry.Span{
		Trace:  id,
		ID:     t.tracer.NewSpan(),
		Parent: parent,
		Name:   name,
		StartV: t.sp.VNow(),
	}
	err := fn(telemetry.WithSpan(ctx, id, span.ID))
	span.EndV = t.sp.VNow()
	if err != nil && !errors.Is(err, ErrNotFound) {
		span.Err = err.Error()
	}
	t.tracer.Record(span)
	return err
}

// routeLeaf resolves key to a candidate leaf cell purely from cache —
// zero wire reads. ok is false when any hop is missing or the cached
// fences already disclaim the key.
func (t *Tree) routeLeaf(key []byte) (uint32, bool) {
	if t.opts.NoCache || t.cachedMeta == nil {
		return 0, false
	}
	cell := t.cachedMeta.root
	for d := 0; d < int(t.cachedMeta.height); d++ {
		n, _, ok := t.cache.get(cell)
		if !ok || n.kind != kindInner || !n.covers(key) {
			return 0, false
		}
		cell = n.childFor(key)
	}
	return cell, true
}

// authLeaf walks root-to-leaf inside a read-only transaction. The
// validate-only commit proves the whole path was a consistent snapshot,
// and the path's meta + inner nodes refresh the cache. Depth records
// the remote cell reads spent (meta + inners + leaf). leafV is the
// leaf's version word within that snapshot.
func (t *Tree) authLeaf(ctx context.Context, key []byte) (uint32, *node, uint64, error) {
	t.ctr.retraverse.Inc()
	type hop struct {
		cell    uint32
		version uint64
		n       *node
	}
	var (
		m        meta
		path     []hop
		leaf     *node
		leafCell uint32
		leafV    uint64
	)
	err := t.sp.RunReadTx(ctx, func(tx *txn.Tx) error {
		path, leaf = path[:0], nil
		mb, err := tx.Read(ctx, 0)
		if err != nil {
			return err
		}
		if m, err = decodeMeta(mb); err != nil {
			return err
		}
		cell := m.root
		for d := 0; d <= int(m.height); d++ {
			v, body, err := tx.ReadVersioned(ctx, int(cell))
			if err != nil {
				return err
			}
			n, err := decodeNode(body)
			if err != nil {
				return err
			}
			if d < int(m.height) {
				if n.kind != kindInner {
					return fmt.Errorf("%w: cell %d: leaf at inner depth %d", ErrCorrupt, cell, d)
				}
				path = append(path, hop{cell, v, n})
				cell = n.childFor(key)
				continue
			}
			if n.kind != kindLeaf {
				return fmt.Errorf("%w: cell %d: inner at leaf depth", ErrCorrupt, cell)
			}
			leaf, leafCell, leafV = n, cell, v
		}
		return nil
	})
	if err != nil {
		return 0, nil, 0, err
	}
	if !t.opts.NoCache {
		mCopy := m
		t.cachedMeta = &mCopy
		for _, h := range path {
			t.cache.put(h.cell, h.version, h.n)
		}
	}
	t.ctr.depth.RecordValue(float64(int(m.height) + 2))
	return leafCell, leaf, leafV, nil
}

// findLeaf resolves key to its current leaf: the cached route when its
// fence check holds (one remote cell read), the authoritative walk
// otherwise.
func (t *Tree) findLeaf(ctx context.Context, key []byte) (uint32, *node, error) {
	t.checkGen()
	if cell, ok := t.routeLeaf(key); ok {
		if _, body, err := t.sp.ReadCell(ctx, int(cell)); err == nil {
			if leaf, derr := decodeNode(body); derr == nil && leaf.kind == kindLeaf && leaf.covers(key) {
				t.ctr.cacheHits.Inc()
				t.ctr.depth.RecordValue(1)
				return cell, leaf, nil
			}
		}
		// The route lied: a split moved the key's range, or the read
		// failed outright. Rebuild from scratch.
		t.invalidateAll()
	}
	t.ctr.cacheMiss.Inc()
	cell, leaf, _, err := t.authLeaf(ctx, key)
	return cell, leaf, err
}

// Get returns the value stored under key, or ErrNotFound. Steady-state
// warm-cache cost is one validated leaf read (two wire reads); a cached
// bloom sidecar answers repeated negative lookups with a single 8-byte
// revalidation read.
func (t *Tree) Get(ctx context.Context, key []byte) ([]byte, error) {
	if err := t.checkKey(key); err != nil {
		return nil, err
	}
	t.ctr.lookups.Inc()
	var val []byte
	err := t.span(ctx, "index.lookup", func(ctx context.Context) error {
		var err error
		val, err = t.get(ctx, key)
		return err
	})
	return val, err
}

func (t *Tree) get(ctx context.Context, key []byte) ([]byte, error) {
	t.checkGen()
	if cell, ok := t.routeLeaf(key); ok {
		if !t.opts.NoBloom && t.bloomNegative(ctx, cell, key) {
			return nil, ErrNotFound
		}
		if v, body, err := t.sp.ReadCell(ctx, int(cell)); err == nil {
			if leaf, derr := decodeNode(body); derr == nil && leaf.kind == kindLeaf && leaf.covers(key) {
				t.ctr.cacheHits.Inc()
				t.ctr.depth.RecordValue(1)
				return t.finishGet(ctx, cell, leaf, v, key)
			}
		}
		t.invalidateAll()
	}
	t.ctr.cacheMiss.Inc()
	cell, leaf, leafV, err := t.authLeaf(ctx, key)
	if err != nil {
		return nil, err
	}
	return t.finishGet(ctx, cell, leaf, leafV, key)
}

// bloomNegative reports whether the cached filter for cell proves key
// absent right now. A cached "no" is never trusted on its own — the
// filter was captured earlier, and another client may have inserted the
// key since — so the shortcut first re-reads the sidecar's version word
// (one 8-byte wire read) and requires it to equal the cached one. An
// unchanged word means no split touched this leaf (splits rewrite both
// sidecars) and no insert set new bits since capture; inserting this
// key would have set its missing bits, so the key is absent as of the
// word read, and the cached fences still bound the leaf's range, so the
// stale-route case (key now living in a sibling) cannot slip through
// either. Any mismatch — bumped version, in-flight lock, read error —
// drops the entry and falls back to the leaf read, which re-primes the
// cache on a miss.
func (t *Tree) bloomNegative(ctx context.Context, cell uint32, key []byte) bool {
	e, ok := t.blooms[cell]
	if !ok || !e.covers(key) || bloomTest(e.bits, key) {
		return false
	}
	if w, err := t.sp.ReadCellVersion(ctx, int(cell)+1); err != nil || w != e.version {
		delete(t.blooms, cell)
		return false
	}
	t.ctr.bloomShort.Inc()
	t.ctr.cacheHits.Inc()
	t.ctr.depth.RecordValue(0)
	return true
}

// finishGet searches the resolved leaf; on a miss it primes the bloom
// cache so the next negative on this leaf costs one word read. leafV is
// the version the leaf body was validated at.
func (t *Tree) finishGet(ctx context.Context, cell uint32, leaf *node, leafV uint64, key []byte) ([]byte, error) {
	if i, found := leaf.search(key); found {
		return leaf.vals[i], nil
	}
	if !t.opts.NoBloom && !t.opts.NoCache {
		if _, ok := t.blooms[cell]; !ok {
			t.fetchBloom(ctx, cell, leaf, leafV)
		}
	}
	return nil, ErrNotFound
}

// fetchBloom captures a leaf's sidecar into the bloom cache together
// with the fences of the leaf state it describes. The caller has just
// read the leaf at version leafV; after the sidecar read the leaf's
// word is re-read, and the pair is cached only if the leaf is unchanged
// — that sandwich proves no split slid between the two reads, so the
// fences and the filter are one consistent snapshot (a split rewrites
// the leaf and rebuilds the sidecar, and a half-captured pair could
// cover keys the split already moved to a sibling). Best effort: any
// wrinkle just leaves the cache cold.
func (t *Tree) fetchBloom(ctx context.Context, cell uint32, leaf *node, leafV uint64) {
	v, body, err := t.sp.ReadCell(ctx, int(cell)+1)
	if err != nil || len(body) == 0 || body[0] != kindBloom {
		return
	}
	if w, err := t.sp.ReadCellVersion(ctx, int(cell)); err != nil || w != leafV {
		return
	}
	t.ctr.bloomFetch.Inc()
	t.blooms[cell] = bloomEntry{
		version: v,
		lo:      append([]byte(nil), leaf.lo...),
		hi:      append([]byte(nil), leaf.hi...),
		bits:    body,
	}
}

// Insert stores val under key, replacing any existing value. Leaf
// overflow triggers transactional splits and a retry.
func (t *Tree) Insert(ctx context.Context, key, val []byte) error {
	if err := t.checkKey(key); err != nil {
		return err
	}
	if 4+len(key)+len(val) > t.opts.maxEntry() {
		return fmt.Errorf("%w: entry %d bytes > %d", ErrTooLarge, 4+len(key)+len(val), t.opts.maxEntry())
	}
	key = append([]byte(nil), key...)
	val = append([]byte(nil), val...)
	t.ctr.inserts.Inc()
	return t.span(ctx, "index.insert", func(ctx context.Context) error {
		for {
			cell, _, err := t.findLeaf(ctx, key)
			if err != nil {
				return err
			}
			err = t.tryInsert(ctx, cell, key, val)
			switch {
			case err == nil:
				if e, ok := t.blooms[cell]; ok && bloomSet(e.bits, key) {
					// Setting new bits means our commit rewrote the
					// sidecar on the wire, bumping its version past the
					// cached word — drop the entry rather than keep a
					// copy revalidation would reject anyway. (No new
					// bits means no sidecar write, so the entry stays
					// current.)
					delete(t.blooms, cell)
				}
				return nil
			case errors.Is(err, errWrongLeaf):
				t.invalidateAll()
			case errors.Is(err, errNeedSplit):
				if err := t.split(ctx, key, 4+len(key)+len(val)); err != nil {
					return err
				}
			default:
				return err
			}
		}
	})
}

// tryInsert is one transactional attempt against a resolved leaf cell:
// re-read it inside the transaction, re-check the fences, and write the
// leaf plus its sidecar back.
func (t *Tree) tryInsert(ctx context.Context, cell uint32, key, val []byte) error {
	return t.sp.RunTx(ctx, func(tx *txn.Tx) error {
		body, err := tx.Read(ctx, int(cell))
		if err != nil {
			return err
		}
		leaf, err := decodeNode(body)
		if err != nil {
			return err
		}
		if leaf.kind != kindLeaf || !leaf.covers(key) {
			return errWrongLeaf
		}
		leaf.insertEntry(key, val)
		if leaf.encodedLen() > t.bodySize {
			return errNeedSplit
		}
		if err := tx.Write(int(cell), leaf.encode()); err != nil {
			return err
		}
		if t.opts.NoBloom {
			return nil
		}
		side, err := tx.Read(ctx, int(cell)+1)
		if err != nil {
			return err
		}
		if len(side) == 0 || side[0] != kindBloom {
			side = buildBloom(t.bodySize, nil)
		}
		if bloomSet(side, key) {
			return tx.Write(int(cell)+1, side)
		}
		return nil
	})
}

// Delete removes key; ErrNotFound when absent. Bloom bits are left set
// (they over-approximate), so deletes cost false positives, never false
// negatives.
func (t *Tree) Delete(ctx context.Context, key []byte) error {
	if err := t.checkKey(key); err != nil {
		return err
	}
	t.ctr.deletes.Inc()
	return t.span(ctx, "index.delete", func(ctx context.Context) error {
		for {
			cell, _, err := t.findLeaf(ctx, key)
			if err != nil {
				return err
			}
			found := false
			err = t.sp.RunTx(ctx, func(tx *txn.Tx) error {
				body, err := tx.Read(ctx, int(cell))
				if err != nil {
					return err
				}
				leaf, err := decodeNode(body)
				if err != nil {
					return err
				}
				if leaf.kind != kindLeaf || !leaf.covers(key) {
					return errWrongLeaf
				}
				if found = leaf.removeEntry(key); !found {
					return nil // validate-only commit
				}
				return tx.Write(int(cell), leaf.encode())
			})
			switch {
			case err == nil && found:
				return nil
			case err == nil:
				return ErrNotFound
			case errors.Is(err, errWrongLeaf):
				t.invalidateAll()
			default:
				return err
			}
		}
	})
}

// split runs transactional splits along key's path until no node on it
// would overflow: each transaction splits the TOPMOST full node, so by
// the time a lower node splits its parent is guaranteed to have room
// for the promoted separator.
func (t *Tree) split(ctx context.Context, key []byte, entrySize int) error {
	return t.span(ctx, "index.split", func(ctx context.Context) error {
		if t.SplitFailPoint != nil {
			t.sp.FailPoint = t.SplitFailPoint
			defer func() { t.sp.FailPoint = nil }()
		}
		for {
			did, err := t.splitOne(ctx, key, entrySize)
			if err != nil {
				return err
			}
			if !did {
				return nil
			}
			t.ctr.splits.Inc()
			// Fences and possibly the root moved; cached routes along
			// this path are stale.
			t.invalidateAll()
		}
	})
}

// splitOne splits the topmost overflow-risk node on key's path, if any,
// in one transaction: meta (allocation + root bookkeeping), the split
// node, its new right sibling, the parent link (or a brand-new root),
// and for leaves both rebuilt bloom sidecars.
func (t *Tree) splitOne(ctx context.Context, key []byte, entrySize int) (bool, error) {
	var did bool
	err := t.sp.RunTx(ctx, func(tx *txn.Tx) error {
		did = false
		mb, err := tx.Read(ctx, 0)
		if err != nil {
			return err
		}
		m, err := decodeMeta(mb)
		if err != nil {
			return err
		}
		var parent *node
		var parentCell uint32
		cell := m.root
		for d := 0; d <= int(m.height); d++ {
			body, err := tx.Read(ctx, int(cell))
			if err != nil {
				return err
			}
			n, err := decodeNode(body)
			if err != nil {
				return err
			}
			isLeaf := d == int(m.height)
			full := false
			if isLeaf {
				full = n.kind == kindLeaf && n.encodedLen()+entrySize > t.bodySize && len(n.keys) >= 2
			} else {
				full = n.kind == kindInner && n.encodedLen()+6+t.opts.MaxKey > t.bodySize && len(n.seps) >= 2
			}
			if !full {
				if isLeaf {
					return nil
				}
				parent, parentCell = n, cell
				cell = n.childFor(key)
				continue
			}
			rightCell := m.nextCell
			m.nextCell += 2
			var left, right *node
			var sep []byte
			if isLeaf {
				left, right, sep = n.splitLeaf()
			} else {
				left, right, sep = n.splitInner()
			}
			if parent == nil {
				rootCell := m.nextCell
				m.nextCell += 2
				if int(m.nextCell) > t.sp.Cells() {
					return ErrFull
				}
				newRoot := &node{kind: kindInner, children: []uint32{cell, rightCell}, seps: [][]byte{sep}}
				if err := tx.Write(int(rootCell), newRoot.encode()); err != nil {
					return err
				}
				m.root = rootCell
				m.height++
			} else {
				if int(m.nextCell) > t.sp.Cells() {
					return ErrFull
				}
				parent.insertSep(sep, rightCell)
				if err := tx.Write(int(parentCell), parent.encode()); err != nil {
					return err
				}
			}
			if err := tx.Write(int(cell), left.encode()); err != nil {
				return err
			}
			if err := tx.Write(int(rightCell), right.encode()); err != nil {
				return err
			}
			if isLeaf && !t.opts.NoBloom {
				if err := tx.Write(int(cell)+1, buildBloom(t.bodySize, left.keys)); err != nil {
					return err
				}
				if err := tx.Write(int(rightCell)+1, buildBloom(t.bodySize, right.keys)); err != nil {
					return err
				}
			}
			if err := tx.Write(0, m.encode()); err != nil {
				return err
			}
			did = true
			return nil
		}
		return nil
	})
	return did, err
}

// Scan returns every entry with start <= key < end in order. An empty
// end means "to the end of the keyspace". The scan hops leaf to leaf on
// fence keys — each leaf read is an independent consistent snapshot, so
// a concurrent writer may be reflected in one leaf and not the next,
// but every key present throughout the scan appears exactly once.
func (t *Tree) Scan(ctx context.Context, start, end []byte) ([]Entry, error) {
	if len(end) > 0 && bytes.Compare(start, end) >= 0 {
		return nil, nil
	}
	t.ctr.scans.Inc()
	var out []Entry
	err := t.span(ctx, "index.scan", func(ctx context.Context) error {
		cursor := start
		if len(cursor) == 0 {
			cursor = []byte{0} // empty keys are disallowed, so this is -inf
		}
		for {
			_, leaf, err := t.findLeaf(ctx, cursor)
			if err != nil {
				return err
			}
			for i, k := range leaf.keys {
				if bytes.Compare(k, cursor) < 0 {
					continue
				}
				if len(end) > 0 && bytes.Compare(k, end) >= 0 {
					return nil
				}
				out = append(out, Entry{Key: k, Val: leaf.vals[i]})
			}
			if leaf.hiInf() || (len(end) > 0 && bytes.Compare(leaf.hi, end) >= 0) {
				return nil
			}
			cursor = leaf.hi
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats is a point-in-time summary of the tree and this handle's caches.
type Stats struct {
	Height       int // levels including the leaf level (1 = lone root leaf)
	Nodes        int // allocated nodes (leaf + inner)
	CachedNodes  int // LRU residents (meta not counted)
	CachedBlooms int // leaf sidecars cached client-side
}

// Stats reads the meta cell and reports tree shape plus cache state.
func (t *Tree) Stats(ctx context.Context) (Stats, error) {
	_, body, err := t.sp.ReadCell(ctx, 0)
	if err != nil {
		return Stats{}, err
	}
	m, err := decodeMeta(body)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Height:       int(m.height) + 1,
		Nodes:        int(m.nextCell-1) / 2,
		CachedNodes:  t.cache.len(),
		CachedBlooms: len(t.blooms),
	}, nil
}
