package index_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/index"
)

func startCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), core.Config{
		Machines:          4,
		ServerCapacity:    32 << 20,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *core.Cluster) *client.Client {
	t.Helper()
	cli, err := c.NewClient(context.Background(), c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return cli
}

// testOptions shrinks nodes so a few dozen keys force real splits.
func testOptions() index.Options {
	return index.Options{
		Nodes:    512,
		NodeSize: 512,
		MaxKey:   32,
		Retry:    client.RetryPolicy{MaxAttempts: 64, BaseDelay: 2 * time.Microsecond, MaxDelay: 64 * time.Microsecond, Multiplier: 2, Jitter: 0.2, Seed: 1},
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestIndexBasicCRUD(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	tr, err := index.Create(ctx, cli, "crud", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tr.Close(ctx)

	if _, err := tr.Get(ctx, key(1)); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("empty-tree Get: %v", err)
	}
	if err := tr.Insert(ctx, key(1), val(1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := tr.Get(ctx, key(1))
	if err != nil || !bytes.Equal(got, val(1)) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := tr.Insert(ctx, key(1), []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := tr.Get(ctx, key(1)); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after overwrite: %q", got)
	}
	if err := tr.Delete(ctx, key(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := tr.Delete(ctx, key(1)); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := tr.Get(ctx, key(1)); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}

	// Key validation.
	if err := tr.Insert(ctx, nil, val(0)); !errors.Is(err, index.ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := tr.Insert(ctx, bytes.Repeat([]byte{'k'}, 33), val(0)); !errors.Is(err, index.ErrBadKey) {
		t.Fatalf("long key: %v", err)
	}
	if err := tr.Insert(ctx, key(2), bytes.Repeat([]byte{'v'}, 400)); !errors.Is(err, index.ErrTooLarge) {
		t.Fatalf("huge value: %v", err)
	}
}

func TestIndexSplitsToDepth(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	tr, err := index.Create(ctx, cli, "deep", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tr.Close(ctx)

	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	st, err := tr.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Height < 3 {
		t.Fatalf("height %d after %d inserts into %d-byte nodes; splits not cascading", st.Height, n, testOptions().NodeSize)
	}
	if ctr := cli.Telemetry().Counter("index.splits").Value(); ctr == 0 {
		t.Fatal("split counter never moved")
	}
	for i := 0; i < n; i++ {
		got, err := tr.Get(ctx, key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d after splits = %q, %v", i, got, err)
		}
	}
	// Full scan returns everything in order.
	entries, err := tr.Scan(ctx, nil, nil)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(entries) != n {
		t.Fatalf("scan %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if !bytes.Equal(e.Key, key(i)) {
			t.Fatalf("scan[%d] = %q, want %q", i, e.Key, key(i))
		}
	}
}

func TestIndexScanRanges(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	tr, err := index.Create(ctx, cli, "ranges", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tr.Close(ctx)
	for i := 0; i < 200; i += 2 { // even keys only
		if err := tr.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	got, err := tr.Scan(ctx, key(50), key(100))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 25 {
		t.Fatalf("[50,100) returned %d entries, want 25", len(got))
	}
	if !bytes.Equal(got[0].Key, key(50)) || !bytes.Equal(got[24].Key, key(98)) {
		t.Fatalf("range edges: %q .. %q", got[0].Key, got[24].Key)
	}
	// Start key absent (odd) — scan starts at the next present key.
	got, err = tr.Scan(ctx, key(51), key(56))
	if err != nil || len(got) != 2 {
		t.Fatalf("[51,56) = %d entries, %v", len(got), err)
	}
	// Empty range and out-of-domain ranges.
	if got, _ := tr.Scan(ctx, key(10), key(10)); len(got) != 0 {
		t.Fatal("empty range returned entries")
	}
	if got, _ := tr.Scan(ctx, []byte("zzz"), nil); len(got) != 0 {
		t.Fatal("past-the-end scan returned entries")
	}
}

// TestIndexWarmLookupReadBudget pins the headline number: once the node
// cache is warm, a point Get costs at most one validated leaf read — two
// wire reads — and a repeated negative lookup costs exactly the one
// 8-byte sidecar-version read that revalidates the cached filter.
func TestIndexWarmLookupReadBudget(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	tr, err := index.Create(ctx, cli, "warm", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tr.Close(ctx)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	reads := cli.Telemetry().Counter("client.reads")
	hits := cli.Telemetry().Counter("index.cache_hits")

	// Warm every route.
	for i := 0; i < 300; i++ {
		if _, err := tr.Get(ctx, key(i)); err != nil {
			t.Fatalf("warmup Get: %v", err)
		}
	}
	before, hitsBefore := reads.Value(), hits.Value()
	for i := 0; i < 300; i++ {
		if _, err := tr.Get(ctx, key(i)); err != nil {
			t.Fatalf("warm Get: %v", err)
		}
	}
	perOp := float64(reads.Value()-before) / 300
	if perOp > 2.0 {
		t.Fatalf("warm Get costs %.2f wire reads/op, want <= 2", perOp)
	}
	if hits.Value()-hitsBefore != 300 {
		t.Fatalf("cache hits %d/300", hits.Value()-hitsBefore)
	}

	// Negative lookups: the first round fetches sidecars, the second
	// rides the cached filters for one revalidation word read apiece.
	neg := func() {
		for i := 0; i < 300; i++ {
			if _, err := tr.Get(ctx, []byte(fmt.Sprintf("nope-%06d", i))); !errors.Is(err, index.ErrNotFound) {
				t.Fatalf("negative Get: %v", err)
			}
		}
	}
	neg()
	before = reads.Value()
	shortBefore := cli.Telemetry().Counter("index.bloom_shortcuts").Value()
	neg()
	if d := reads.Value() - before; d != 300 {
		t.Fatalf("cached-bloom negatives cost %d reads, want 300 (one word read per op)", d)
	}
	if d := cli.Telemetry().Counter("index.bloom_shortcuts").Value() - shortBefore; d != 300 {
		t.Fatalf("bloom shortcuts %d/300", d)
	}
}

// TestIndexBloomStaleAcrossHandles pins the bloom cache's revalidation
// protocol against its nastiest staleness window: handle A caches a
// leaf's filter via a Get miss, handle B then inserts that very key
// WITHOUT splitting the leaf — so none of A's fences or routes are
// invalidated, only the sidecar's version word moves — and A's next Get
// must return B's committed value, not a false ErrNotFound.
func TestIndexBloomStaleAcrossHandles(t *testing.T) {
	c := startCluster(t)
	ctx := context.Background()
	cliA, cliB := newClient(t, c), newClient(t, c)
	optsA := testOptions()
	optsA.Owner = 1
	trA, err := index.Create(ctx, cliA, "bloomstale", optsA)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer trA.Close(ctx)
	optsB := testOptions()
	optsB.Owner = 2
	trB, err := index.Open(ctx, cliB, "bloomstale", optsB)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer trB.Close(ctx)

	// A handful of keys: the lone root leaf stays far from overflow.
	for i := 0; i < 4; i++ {
		if err := trA.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// A misses key(7); the miss primes A's bloom cache for the leaf.
	if _, err := trA.Get(ctx, key(7)); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("priming Get: %v", err)
	}
	shortcuts := cliA.Telemetry().Counter("index.bloom_shortcuts")
	s0 := shortcuts.Value()
	if _, err := trA.Get(ctx, key(7)); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("cached-bloom Get: %v", err)
	}
	if shortcuts.Value() == s0 {
		t.Fatal("bloom shortcut never engaged; the scenario exercises nothing")
	}

	// B inserts the key A's filter disclaims. No split may occur, or the
	// fence checks would bail A out for the wrong reason.
	splits0 := cliB.Telemetry().Counter("index.splits").Value()
	if err := trB.Insert(ctx, key(7), []byte("from-B")); err != nil {
		t.Fatalf("B Insert: %v", err)
	}
	if d := cliB.Telemetry().Counter("index.splits").Value() - splits0; d != 0 {
		t.Fatalf("B's insert split %d times; the scenario needs a non-splitting insert", d)
	}

	got, err := trA.Get(ctx, key(7))
	if err != nil || !bytes.Equal(got, []byte("from-B")) {
		t.Fatalf("A Get after B's insert = %q, %v; stale cached bloom served a false negative", got, err)
	}
}

// TestIndexBloomFencesGateShortcut pins the other staleness edge: a
// filter captured AFTER another client's split describes the shrunken
// leaf, but this handle's inner-node route is still pre-split — so a
// key the split moved to the new right sibling still routes to the old
// leaf, whose fresh filter honestly lacks it. The cached fences must
// keep that key off the shortcut (version revalidation alone would
// pass: nothing changed since capture).
func TestIndexBloomFencesGateShortcut(t *testing.T) {
	c := startCluster(t)
	ctx := context.Background()
	cliA, cliB := newClient(t, c), newClient(t, c)
	optsA := testOptions()
	optsA.Owner = 1
	trA, err := index.Create(ctx, cliA, "bloomfence", optsA)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer trA.Close(ctx)
	optsB := testOptions()
	optsB.Owner = 2
	trB, err := index.Open(ctx, cliB, "bloomfence", optsB)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer trB.Close(ctx)

	// A fills a single root leaf and warms its route cache on it.
	const n = 16
	for i := 0; i < n; i++ {
		if err := trA.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := trA.Get(ctx, key(0)); err != nil {
		t.Fatalf("warm Get: %v", err)
	}

	// B overflows the leaf: exactly the first split, moving the upper
	// half of the keys to a new right sibling A's route knows nothing
	// about.
	splits := cliB.Telemetry().Counter("index.splits")
	for i := n; splits.Value() == 0; i++ {
		if err := trB.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("B Insert: %v", err)
		}
	}
	if splits.Value() != 1 {
		t.Fatalf("B caused %d splits, want exactly 1", splits.Value())
	}

	// A misses a key inside the shrunken left range: the stale route
	// still resolves it, the leaf's (new) fences still cover it, and the
	// miss captures the post-split filter + fences — all while A's route
	// stays stale.
	if _, err := trA.Get(ctx, []byte("key-000000a")); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("priming Get: %v", err)
	}
	st, err := trA.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.CachedBlooms == 0 {
		t.Fatal("priming miss cached no bloom; the scenario exercises nothing")
	}

	// Every key the split moved right is absent from the captured filter
	// but very much present in the tree; the fences must route these past
	// the shortcut into the fence-miss → retraversal path.
	for i := 0; i < n; i++ {
		got, err := trA.Get(ctx, key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("A Get %d through post-split bloom = %q, %v", i, got, err)
		}
	}
}

// TestIndexStaleRouteHeals splits the tree through a second handle and
// checks the first handle's cached route detects the lie via fences and
// re-traverses instead of returning wrong answers.
func TestIndexStaleRouteHeals(t *testing.T) {
	c := startCluster(t)
	ctx := context.Background()
	cliA, cliB := newClient(t, c), newClient(t, c)
	opts := testOptions()
	opts.Owner = 1
	trA, err := index.Create(ctx, cliA, "stale", opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer trA.Close(ctx)
	optsB := testOptions()
	optsB.Owner = 2
	trB, err := index.Open(ctx, cliB, "stale", optsB)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer trB.Close(ctx)

	for i := 0; i < 50; i++ {
		if err := trA.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Warm A's cache, then grow the tree through B until it splits a lot.
	for i := 0; i < 50; i++ {
		if _, err := trA.Get(ctx, key(i)); err != nil {
			t.Fatalf("warm Get: %v", err)
		}
	}
	for i := 50; i < 400; i++ {
		if err := trB.Insert(ctx, key(i), val(i)); err != nil {
			t.Fatalf("B Insert: %v", err)
		}
	}
	// A must still answer correctly for every key, old and new.
	for i := 0; i < 400; i++ {
		got, err := trA.Get(ctx, key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("A Get %d through stale cache = %q, %v", i, got, err)
		}
	}
	ents, err := trA.Scan(ctx, nil, nil)
	if err != nil || len(ents) != 400 {
		t.Fatalf("A scan: %d entries, %v", len(ents), err)
	}
	if cliA.Telemetry().Counter("index.retraversals").Value() == 0 {
		t.Fatal("A never re-traversed despite B's splits")
	}
}

// TestIndexPropertyVsOracle drives random Put/Delete/Get/Scan against a
// model map and a sorted-keys oracle.
func TestIndexPropertyVsOracle(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	tr, err := index.Create(ctx, cli, "prop", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tr.Close(ctx)

	rng := rand.New(rand.NewSource(42))
	model := map[string]string{}
	randKey := func() []byte { return key(rng.Intn(500)) }

	checkScan := func(start, end []byte) {
		got, err := tr.Scan(ctx, start, end)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		var want []string
		for k := range model {
			if bytes.Compare([]byte(k), start) >= 0 && (len(end) == 0 || bytes.Compare([]byte(k), end) < 0) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("scan[%q,%q): %d entries, oracle %d", start, end, len(got), len(want))
		}
		for i, e := range got {
			if string(e.Key) != want[i] || string(e.Val) != model[want[i]] {
				t.Fatalf("scan[%d] = (%q,%q), oracle (%q,%q)", i, e.Key, e.Val, want[i], model[want[i]])
			}
		}
	}

	for step := 0; step < 3000; step++ {
		k := randKey()
		switch op := rng.Intn(10); {
		case op < 5: // put
			v := fmt.Sprintf("v%d-%d", step, rng.Intn(1e6))
			if err := tr.Insert(ctx, k, []byte(v)); err != nil {
				t.Fatalf("step %d Insert(%q): %v", step, k, err)
			}
			model[string(k)] = v
		case op < 7: // delete
			err := tr.Delete(ctx, k)
			if _, ok := model[string(k)]; ok {
				if err != nil {
					t.Fatalf("step %d Delete(%q): %v", step, k, err)
				}
				delete(model, string(k))
			} else if !errors.Is(err, index.ErrNotFound) {
				t.Fatalf("step %d Delete(absent %q): %v", step, k, err)
			}
		case op < 9: // get
			got, err := tr.Get(ctx, k)
			if want, ok := model[string(k)]; ok {
				if err != nil || string(got) != want {
					t.Fatalf("step %d Get(%q) = %q, %v; want %q", step, k, got, err, want)
				}
			} else if !errors.Is(err, index.ErrNotFound) {
				t.Fatalf("step %d Get(absent %q): %v", step, k, err)
			}
		default: // scan a random window
			a, b := rng.Intn(500), rng.Intn(500)
			if a > b {
				a, b = b, a
			}
			checkScan(key(a), key(b))
		}
	}
	checkScan(nil, nil)
	st, err := tr.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Height < 2 || st.Nodes < 4 {
		t.Fatalf("property run never grew the tree: %+v", st)
	}
}

// TestIndexAblationsStillCorrect runs the cache/bloom ablations the
// bench measures and checks plain correctness holds in each mode.
func TestIndexAblationsStillCorrect(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*index.Options)
	}{
		{"nocache", func(o *index.Options) { o.NoCache = true }},
		{"nobloom", func(o *index.Options) { o.NoBloom = true }},
		{"bare", func(o *index.Options) { o.NoCache, o.NoBloom = true, true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c := startCluster(t)
			cli := newClient(t, c)
			ctx := context.Background()
			opts := testOptions()
			mode.mutate(&opts)
			tr, err := index.Create(ctx, cli, "abl-"+mode.name, opts)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			defer tr.Close(ctx)
			for i := 0; i < 150; i++ {
				if err := tr.Insert(ctx, key(i), val(i)); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			for i := 0; i < 150; i++ {
				if got, err := tr.Get(ctx, key(i)); err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("Get %d = %q, %v", i, got, err)
				}
			}
			if _, err := tr.Get(ctx, []byte("absent")); !errors.Is(err, index.ErrNotFound) {
				t.Fatalf("negative Get: %v", err)
			}
			if ents, err := tr.Scan(ctx, nil, nil); err != nil || len(ents) != 150 {
				t.Fatalf("scan: %d, %v", len(ents), err)
			}
		})
	}
}
