package index

import "container/list"

// nodeCache is the client-side LRU over the meta cell and inner nodes.
// Cached entries are traversed speculatively — zero wire reads — and the
// fence check on the leaf the route lands on is what validates the whole
// path; a mismatch invalidates the path and forces an authoritative
// re-traversal. Versions ride along so a re-read can tell whether the
// node actually changed. Leaves are never cached: the leaf read is the
// one remote access a warm lookup pays, and it doubles as the validator.
type nodeCache struct {
	cap   int
	order *list.List               // front = most recent
	byCel map[uint32]*list.Element // cell -> element
}

type cacheEnt struct {
	cell    uint32
	version uint64
	n       *node
}

func newNodeCache(capacity int) *nodeCache {
	return &nodeCache{cap: capacity, order: list.New(), byCel: make(map[uint32]*list.Element)}
}

func (c *nodeCache) get(cell uint32) (*node, uint64, bool) {
	el, ok := c.byCel[cell]
	if !ok {
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	ent := el.Value.(*cacheEnt)
	return ent.n, ent.version, true
}

func (c *nodeCache) put(cell uint32, version uint64, n *node) {
	if el, ok := c.byCel[cell]; ok {
		ent := el.Value.(*cacheEnt)
		ent.version, ent.n = version, n
		c.order.MoveToFront(el)
		return
	}
	c.byCel[cell] = c.order.PushFront(&cacheEnt{cell: cell, version: version, n: n})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.byCel, last.Value.(*cacheEnt).cell)
		c.order.Remove(last)
	}
}

func (c *nodeCache) drop(cell uint32) {
	if el, ok := c.byCel[cell]; ok {
		delete(c.byCel, cell)
		c.order.Remove(el)
	}
}

func (c *nodeCache) clear() {
	c.order.Init()
	for k := range c.byCel {
		delete(c.byCel, k)
	}
}

func (c *nodeCache) len() int { return c.order.Len() }
