package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Node encodings. Every tree node occupies the body of one txn cell (the
// cell's leading 8-byte version/lock word belongs to the txn layer and is
// the node's seqlock). All nodes share a 7-byte header plus two fence
// keys bounding the node's key range:
//
//	[0]    kind (1 leaf, 2 inner, 3 meta; sidecars are raw bloom cells)
//	[1,3)  count   uint16 (leaf entries / inner separators)
//	[3,5)  loLen   uint16
//	[5,7)  hiLen   uint16
//	[7,…)  lo bytes, hi bytes
//
// lo is the inclusive lower bound ("" = -inf); hi the exclusive upper
// bound (length 0 = +inf; the API rejects empty keys so "" is never a
// real bound). Fences only ever narrow — splits move a node's upper keys
// right and shrink hi — and a cell allocated as a leaf stays a leaf
// forever (no merges, no frees), which is what makes speculative
// cache-guided traversal sound: a stale route can direct a client to the
// wrong node, but the fence check on the node it lands on always exposes
// the lie.
//
// After the fences:
//
//	leaf:   per entry, sorted by key: kLen u16, vLen u16, key, value
//	inner:  child0 u32, then per separator, sorted: sLen u16, child u32,
//	        sep bytes — children[i+1] covers keys >= sep[i]
//	meta:   root u32, height u16, nextCell u32 (cell 0 only)
const (
	kindFree  = 0
	kindLeaf  = 1
	kindInner = 2
	kindMeta  = 3
)

const nodeHeader = 7

// node is a decoded tree node. Leaves fill keys/vals; inners fill
// children/seps (len(children) == len(seps)+1).
type node struct {
	kind     byte
	lo, hi   []byte // hi nil/empty = +inf
	keys     [][]byte
	vals     [][]byte
	children []uint32
	seps     [][]byte
}

// meta is the decoded root cell.
type meta struct {
	root     uint32
	height   uint16 // inner levels above the leaves (0 = root is a leaf)
	nextCell uint32
}

// hiInf reports whether the node's upper fence is +inf.
func (n *node) hiInf() bool { return len(n.hi) == 0 }

// covers reports whether key falls inside the node's fences.
func (n *node) covers(key []byte) bool {
	return bytes.Compare(n.lo, key) <= 0 && (n.hiInf() || bytes.Compare(key, n.hi) < 0)
}

// search locates key in a leaf: the entry index when found, else the
// insertion point.
func (n *node) search(key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	return i, i < len(n.keys) && bytes.Equal(n.keys[i], key)
}

// childFor routes key one level down an inner node.
func (n *node) childFor(key []byte) uint32 {
	i := sort.Search(len(n.seps), func(i int) bool { return bytes.Compare(n.seps[i], key) > 0 })
	return n.children[i]
}

// encodedLen returns the node's on-cell size.
func (n *node) encodedLen() int {
	sz := nodeHeader + len(n.lo) + len(n.hi)
	switch n.kind {
	case kindLeaf:
		for i, k := range n.keys {
			sz += 4 + len(k) + len(n.vals[i])
		}
	case kindInner:
		sz += 4
		for _, s := range n.seps {
			sz += 6 + len(s)
		}
	}
	return sz
}

// encode renders the node into a fresh body slice.
func (n *node) encode() []byte {
	b := make([]byte, n.encodedLen())
	b[0] = n.kind
	count := len(n.keys)
	if n.kind == kindInner {
		count = len(n.seps)
	}
	binary.LittleEndian.PutUint16(b[1:], uint16(count))
	binary.LittleEndian.PutUint16(b[3:], uint16(len(n.lo)))
	binary.LittleEndian.PutUint16(b[5:], uint16(len(n.hi)))
	off := nodeHeader
	off += copy(b[off:], n.lo)
	off += copy(b[off:], n.hi)
	switch n.kind {
	case kindLeaf:
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(b[off:], uint16(len(k)))
			binary.LittleEndian.PutUint16(b[off+2:], uint16(len(n.vals[i])))
			off += 4
			off += copy(b[off:], k)
			off += copy(b[off:], n.vals[i])
		}
	case kindInner:
		binary.LittleEndian.PutUint32(b[off:], n.children[0])
		off += 4
		for i, s := range n.seps {
			binary.LittleEndian.PutUint16(b[off:], uint16(len(s)))
			binary.LittleEndian.PutUint32(b[off+2:], n.children[i+1])
			off += 6
			off += copy(b[off:], s)
		}
	}
	return b
}

// decodeNode parses a cell body. The returned node's slices are copies
// (cell bodies from ReadCell are reused scratch in callers).
func decodeNode(body []byte) (*node, error) {
	if len(body) < nodeHeader {
		return nil, fmt.Errorf("%w: short node (%d bytes)", ErrCorrupt, len(body))
	}
	n := &node{kind: body[0]}
	if n.kind != kindLeaf && n.kind != kindInner {
		return nil, fmt.Errorf("%w: node kind %d", ErrCorrupt, n.kind)
	}
	count := int(binary.LittleEndian.Uint16(body[1:]))
	loLen := int(binary.LittleEndian.Uint16(body[3:]))
	hiLen := int(binary.LittleEndian.Uint16(body[5:]))
	off := nodeHeader
	if off+loLen+hiLen > len(body) {
		return nil, fmt.Errorf("%w: truncated fences", ErrCorrupt)
	}
	n.lo = append([]byte(nil), body[off:off+loLen]...)
	off += loLen
	n.hi = append([]byte(nil), body[off:off+hiLen]...)
	off += hiLen
	switch n.kind {
	case kindLeaf:
		n.keys = make([][]byte, 0, count)
		n.vals = make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			if off+4 > len(body) {
				return nil, fmt.Errorf("%w: truncated leaf entry %d", ErrCorrupt, i)
			}
			kl := int(binary.LittleEndian.Uint16(body[off:]))
			vl := int(binary.LittleEndian.Uint16(body[off+2:]))
			off += 4
			if off+kl+vl > len(body) {
				return nil, fmt.Errorf("%w: truncated leaf entry %d", ErrCorrupt, i)
			}
			n.keys = append(n.keys, append([]byte(nil), body[off:off+kl]...))
			off += kl
			n.vals = append(n.vals, append([]byte(nil), body[off:off+vl]...))
			off += vl
		}
	case kindInner:
		if off+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated inner node", ErrCorrupt)
		}
		n.children = append(n.children, binary.LittleEndian.Uint32(body[off:]))
		off += 4
		n.seps = make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			if off+6 > len(body) {
				return nil, fmt.Errorf("%w: truncated separator %d", ErrCorrupt, i)
			}
			sl := int(binary.LittleEndian.Uint16(body[off:]))
			child := binary.LittleEndian.Uint32(body[off+2:])
			off += 6
			if off+sl > len(body) {
				return nil, fmt.Errorf("%w: truncated separator %d", ErrCorrupt, i)
			}
			n.seps = append(n.seps, append([]byte(nil), body[off:off+sl]...))
			n.children = append(n.children, child)
			off += sl
		}
	}
	return n, nil
}

// Meta cell body: kind, then root u32, height u16, nextCell u32.
const metaLen = 1 + 4 + 2 + 4

func (m meta) encode() []byte {
	b := make([]byte, metaLen)
	b[0] = kindMeta
	binary.LittleEndian.PutUint32(b[1:], m.root)
	binary.LittleEndian.PutUint16(b[5:], m.height)
	binary.LittleEndian.PutUint32(b[7:], m.nextCell)
	return b
}

func decodeMeta(body []byte) (meta, error) {
	if len(body) < metaLen || body[0] != kindMeta {
		return meta{}, fmt.Errorf("%w: bad meta cell", ErrCorrupt)
	}
	return meta{
		root:     binary.LittleEndian.Uint32(body[1:]),
		height:   binary.LittleEndian.Uint16(body[5:]),
		nextCell: binary.LittleEndian.Uint32(body[7:]),
	}, nil
}

// insertEntry puts (key, val) into a leaf, replacing an existing entry.
func (n *node) insertEntry(key, val []byte) {
	i, found := n.search(key)
	if found {
		n.vals[i] = val
		return
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
}

// removeEntry deletes key from a leaf; reports whether it was present.
func (n *node) removeEntry(key []byte) bool {
	i, found := n.search(key)
	if !found {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	return true
}

// splitLeaf halves a leaf by encoded size. The left half keeps the
// original cell; sep is the right half's first key and becomes the left's
// new hi and the right's lo.
func (n *node) splitLeaf() (left, right *node, sep []byte) {
	total := 0
	for i, k := range n.keys {
		total += 4 + len(k) + len(n.vals[i])
	}
	m, acc := 0, 0
	for m = 0; m < len(n.keys)-1; m++ {
		acc += 4 + len(n.keys[m]) + len(n.vals[m])
		if acc >= total/2 {
			m++
			break
		}
	}
	if m == 0 {
		m = 1
	}
	sep = n.keys[m]
	left = &node{kind: kindLeaf, lo: n.lo, hi: sep, keys: n.keys[:m], vals: n.vals[:m]}
	right = &node{kind: kindLeaf, lo: sep, hi: n.hi, keys: n.keys[m:], vals: n.vals[m:]}
	return left, right, sep
}

// splitInner halves an inner node, promoting the middle separator: the
// promoted key moves up to the parent and neither half keeps it.
func (n *node) splitInner() (left, right *node, promoted []byte) {
	m := len(n.seps) / 2
	promoted = n.seps[m]
	left = &node{kind: kindInner, lo: n.lo, hi: promoted,
		seps: n.seps[:m], children: n.children[:m+1]}
	right = &node{kind: kindInner, lo: promoted, hi: n.hi,
		seps: n.seps[m+1:], children: n.children[m+1:]}
	return left, right, promoted
}

// insertSep adds (sep -> right child) into an inner node, keeping
// separators sorted. The child that previously covered sep's range keeps
// the left half; right takes over from sep.
func (n *node) insertSep(sep []byte, right uint32) {
	i := sort.Search(len(n.seps), func(i int) bool { return bytes.Compare(n.seps[i], sep) >= 0 })
	n.seps = append(n.seps, nil)
	copy(n.seps[i+1:], n.seps[i:])
	n.seps[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// hasChild reports whether an inner node still points at cell.
func (n *node) hasChild(cell uint32) bool {
	for _, c := range n.children {
		if c == cell {
			return true
		}
	}
	return false
}
