package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestLeafEncodeDecodeRoundTrip(t *testing.T) {
	n := &node{kind: kindLeaf, lo: []byte("aaa"), hi: []byte("mmm")}
	for i := 0; i < 10; i++ {
		n.insertEntry([]byte(fmt.Sprintf("key%02d", i)), []byte(fmt.Sprintf("val-%d", i*i)))
	}
	body := n.encode()
	if len(body) != n.encodedLen() {
		t.Fatalf("encode %d bytes, encodedLen says %d", len(body), n.encodedLen())
	}
	got, err := decodeNode(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.kind != kindLeaf || !bytes.Equal(got.lo, n.lo) || !bytes.Equal(got.hi, n.hi) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.keys) != len(n.keys) {
		t.Fatalf("keys %d != %d", len(got.keys), len(n.keys))
	}
	for i := range n.keys {
		if !bytes.Equal(got.keys[i], n.keys[i]) || !bytes.Equal(got.vals[i], n.vals[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestInnerEncodeDecodeRoundTrip(t *testing.T) {
	n := &node{kind: kindInner, lo: nil, hi: []byte("zz"),
		children: []uint32{1, 3, 5, 7},
		seps:     [][]byte{[]byte("bb"), []byte("dd"), []byte("ff")}}
	got, err := decodeNode(n.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.children) != 4 || len(got.seps) != 3 {
		t.Fatalf("shape mismatch: %d children, %d seps", len(got.children), len(got.seps))
	}
	for i, c := range n.children {
		if got.children[i] != c {
			t.Fatalf("child %d: %d != %d", i, got.children[i], c)
		}
	}
	for _, k := range [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("ee"), []byte("zz")} {
		if got.childFor(k) != n.childFor(k) {
			t.Fatalf("childFor(%q) diverged", k)
		}
	}
	// Routing: keys >= sep go right of it.
	if got.childFor([]byte("aa")) != 1 || got.childFor([]byte("bb")) != 3 || got.childFor([]byte("ff")) != 7 {
		t.Fatalf("routing wrong: %d %d %d",
			got.childFor([]byte("aa")), got.childFor([]byte("bb")), got.childFor([]byte("ff")))
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := meta{root: 41, height: 3, nextCell: 99}
	got, err := decodeMeta(m.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != m {
		t.Fatalf("%+v != %+v", got, m)
	}
	if _, err := decodeMeta([]byte{0, 1, 2}); err == nil {
		t.Fatal("short meta decoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, body := range [][]byte{
		nil,
		{},
		{9, 0, 0, 0, 0, 0, 0},                // unknown kind
		{kindLeaf, 5, 0, 0, 0, 0, 0},         // claims 5 entries, has none
		{kindInner, 0, 0, 200, 0, 0, 0, 'a'}, // fence past end
	} {
		if _, err := decodeNode(body); err == nil {
			t.Fatalf("decoded garbage %v", body)
		}
	}
	// Zero cell (never written) must not decode as a node.
	if _, err := decodeNode(make([]byte, 64)); err == nil {
		t.Fatal("zero cell decoded as node")
	}
}

func TestSplitLeafBalancedAndFenced(t *testing.T) {
	n := &node{kind: kindLeaf, lo: []byte("a"), hi: nil}
	for i := 0; i < 20; i++ {
		n.insertEntry([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{'v'}, 10))
	}
	left, right, sep := n.splitLeaf()
	if !bytes.Equal(left.hi, sep) || !bytes.Equal(right.lo, sep) {
		t.Fatalf("fences don't meet at sep %q: left.hi=%q right.lo=%q", sep, left.hi, right.lo)
	}
	if !bytes.Equal(left.lo, []byte("a")) || right.hi != nil {
		t.Fatalf("outer fences not preserved")
	}
	if len(left.keys)+len(right.keys) != 20 {
		t.Fatalf("lost entries: %d + %d", len(left.keys), len(right.keys))
	}
	if len(left.keys) < 5 || len(right.keys) < 5 {
		t.Fatalf("unbalanced split: %d / %d", len(left.keys), len(right.keys))
	}
	if !bytes.Equal(right.keys[0], sep) {
		t.Fatalf("sep %q is not right's first key %q", sep, right.keys[0])
	}
	for _, k := range left.keys {
		if !left.covers(k) {
			t.Fatalf("left does not cover own key %q", k)
		}
	}
	for _, k := range right.keys {
		if !right.covers(k) {
			t.Fatalf("right does not cover own key %q", k)
		}
	}
}

func TestSplitInnerPromotes(t *testing.T) {
	n := &node{kind: kindInner, children: []uint32{10}}
	for i := 0; i < 7; i++ {
		n.insertSep([]byte(fmt.Sprintf("s%d", i)), uint32(20+i))
	}
	left, right, promoted := n.splitInner()
	if len(left.seps)+len(right.seps) != 6 {
		t.Fatalf("promoted sep must leave both halves: %d + %d", len(left.seps), len(right.seps))
	}
	if len(left.children) != len(left.seps)+1 || len(right.children) != len(right.seps)+1 {
		t.Fatal("children/seps arity broken")
	}
	if !bytes.Equal(left.hi, promoted) || !bytes.Equal(right.lo, promoted) {
		t.Fatal("fences don't meet at promoted sep")
	}
	// Every original child survives in exactly one half.
	seen := map[uint32]int{}
	for _, c := range append(append([]uint32{}, left.children...), right.children...) {
		seen[c]++
	}
	for _, c := range n.children {
		if seen[c] != 1 {
			t.Fatalf("child %d appears %d times", c, seen[c])
		}
	}
}

func TestInsertSepKeepsRouting(t *testing.T) {
	n := &node{kind: kindInner, children: []uint32{1}}
	n.insertSep([]byte("m"), 2)
	n.insertSep([]byte("e"), 3)
	n.insertSep([]byte("t"), 4)
	cases := []struct {
		key  string
		want uint32
	}{{"a", 1}, {"e", 3}, {"f", 3}, {"m", 2}, {"s", 2}, {"t", 4}, {"z", 4}}
	for _, c := range cases {
		if got := n.childFor([]byte(c.key)); got != c.want {
			t.Fatalf("childFor(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestBloomSetTest(t *testing.T) {
	body := buildBloom(256, nil)
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("present-%03d", i))
		if !bloomSet(body, keys[i]) {
			t.Fatalf("fresh key %d set no bits", i)
		}
	}
	for _, k := range keys {
		if !bloomTest(body, k) {
			t.Fatalf("false negative for %q", k)
		}
		if bloomSet(body, k) {
			t.Fatalf("re-set of %q changed bits", k)
		}
	}
	// False-positive rate over absent keys stays sane for this load.
	fp := 0
	for i := 0; i < 1000; i++ {
		if bloomTest(body, []byte(fmt.Sprintf("absent-%04d", i))) {
			fp++
		}
	}
	if fp > 200 {
		t.Fatalf("%d/1000 false positives", fp)
	}
}

func TestBuildBloomMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var keys [][]byte
	inc := buildBloom(512, nil)
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("k%d", rng.Intn(1000)))
		keys = append(keys, k)
		bloomSet(inc, k)
	}
	if !bytes.Equal(inc, buildBloom(512, keys)) {
		t.Fatal("incremental and rebuilt filters diverge")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newNodeCache(3)
	for i := uint32(1); i <= 3; i++ {
		c.put(i, uint64(i), &node{kind: kindInner})
	}
	c.get(1) // 1 is now most recent; 2 is the LRU victim
	c.put(4, 4, &node{kind: kindInner})
	if _, _, ok := c.get(2); ok {
		t.Fatal("LRU victim survived")
	}
	for _, want := range []uint32{1, 3, 4} {
		if _, _, ok := c.get(want); !ok {
			t.Fatalf("cell %d evicted wrongly", want)
		}
	}
	c.drop(3)
	if c.len() != 2 {
		t.Fatalf("len %d after drop", c.len())
	}
	c.clear()
	if c.len() != 0 {
		t.Fatal("clear left residents")
	}
}
