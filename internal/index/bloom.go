package index

// Per-leaf bloom sidecar. Every node cell is paired with the cell right
// after it; for leaves that companion holds a bloom filter over the
// leaf's keys so a client with the filter cached can answer "definitely
// absent" without fetching the leaf. The sidecar is written in the same
// transaction as the leaf mutation that changes it, so on the wire it
// is never out of sync. Bits are only ever set on insert — deletes
// leave them alone and splits rebuild each half from its actual keys —
// so the on-wire filter can only over-approximate its leaf, and a false
// positive just costs the leaf read the filter would have saved.
//
// A client-side *cached* copy has no such one-sided guarantee: a key
// another client inserts after capture is missing from the cached bits,
// which would turn "no" into a wrong answer. The cache therefore never
// trusts a cached negative without revalidation — see
// Tree.bloomNegative, which re-reads the sidecar's version word (bumped
// by every bit-setting rewrite and every split) before shortcutting.
//
// Cell body: [0] kind (4), rest is the bit array. Four probes per key
// via double hashing on fnv-64a.

const (
	kindBloom   = 4
	bloomProbes = 4
)

// bloomBits returns the filter's bit capacity for a cell body size.
func bloomBits(bodySize int) uint64 { return uint64(bodySize-1) * 8 }

func fnv64a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// bloomSet sets key's probe bits in a sidecar body; reports whether any
// bit actually changed (an unchanged sidecar needn't be rewritten).
func bloomSet(body []byte, key []byte) bool {
	bits := bloomBits(len(body))
	h := fnv64a(key)
	h2 := h>>32 | 1
	changed := false
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h + i*h2) % bits
		idx, mask := 1+bit/8, byte(1)<<(bit%8)
		if body[idx]&mask == 0 {
			body[idx] |= mask
			changed = true
		}
	}
	return changed
}

// bloomTest reports whether key may be present (false = definitely not).
func bloomTest(body []byte, key []byte) bool {
	bits := bloomBits(len(body))
	h := fnv64a(key)
	h2 := h>>32 | 1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h + i*h2) % bits
		if body[1+bit/8]&(byte(1)<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// buildBloom renders a fresh sidecar body over a key set.
func buildBloom(bodySize int, keys [][]byte) []byte {
	b := make([]byte, bodySize)
	b[0] = kindBloom
	for _, k := range keys {
		bloomSet(b, k)
	}
	return b
}
