package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/proto"
	"rstore/internal/simnet"
)

// startCluster boots a small cluster with fast heartbeats for tests.
func startCluster(t *testing.T, machines int) *Cluster {
	t.Helper()
	c, err := Start(context.Background(), Config{
		Machines:          machines,
		ServerCapacity:    32 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *Cluster, node int) *Client {
	t.Helper()
	cli, err := c.NewClient(context.Background(), simnet.NodeID(node))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return cli
}

func TestClusterBoot(t *testing.T) {
	c := startCluster(t, 4)
	if got := len(c.Servers()); got != 3 {
		t.Fatalf("servers = %d, want 3", got)
	}
	alive := c.Master().AliveServers()
	if len(alive) != 3 {
		t.Fatalf("alive = %v, want 3 servers", alive)
	}
}

func TestAllocMapWriteRead(t *testing.T) {
	c := startCluster(t, 4)
	cli := newClient(t, c, 1)
	ctx := context.Background()

	reg, err := cli.AllocMap(ctx, "data/test", 1<<20, AllocOptions{StripeUnit: 64 << 10})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	payload := make([]byte, 300<<10) // spans several stripe units
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)

	if err := reg.Write(ctx, 12345, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(payload))
	if err := reg.Read(ctx, 12345, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read data differs from written data")
	}
}

func TestZeroCopyReadWrite(t *testing.T) {
	c := startCluster(t, 4)
	cli := newClient(t, c, 2)
	ctx := context.Background()

	reg, err := cli.AllocMap(ctx, "zc", 4<<20, AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(2 << 20)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	for i := range buf.Bytes()[:1<<20] {
		buf.Bytes()[i] = byte(i * 7)
	}
	st, err := reg.WriteAt(ctx, 1<<20, buf, 0, 1<<20)
	if err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if st.Fragments == 0 || st.Latency() <= 0 {
		t.Errorf("write stat = %+v", st)
	}
	st, err = reg.ReadAt(ctx, 1<<20, buf, 1<<20, 1<<20)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if st.Latency() <= 0 {
		t.Errorf("read stat = %+v", st)
	}
	if !bytes.Equal(buf.Bytes()[:1<<20], buf.Bytes()[1<<20:]) {
		t.Fatal("zero-copy round trip mismatch")
	}
}

func TestCrossClientVisibility(t *testing.T) {
	// A write by one client is immediately visible to another client on a
	// different machine — shared distributed memory semantics.
	c := startCluster(t, 4)
	writer := newClient(t, c, 1)
	reader := newClient(t, c, 3)
	ctx := context.Background()

	if _, err := writer.Alloc(ctx, "shared", 1<<20, AllocOptions{}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	wreg, err := writer.Map(ctx, "shared")
	if err != nil {
		t.Fatalf("writer Map: %v", err)
	}
	rreg, err := reader.Map(ctx, "shared")
	if err != nil {
		t.Fatalf("reader Map: %v", err)
	}
	msg := []byte("written on node 1, read on node 3")
	if err := wreg.Write(ctx, 4096, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := rreg.Read(ctx, 4096, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestRegionLifecycle(t *testing.T) {
	c := startCluster(t, 3)
	cli := newClient(t, c, 1)
	ctx := context.Background()

	if _, err := cli.Alloc(ctx, "lc", 1<<16, AllocOptions{}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	// Duplicate allocation fails with the typed error across RPC.
	if _, err := cli.Alloc(ctx, "lc", 1<<16, AllocOptions{}); !errors.Is(err, client.ErrRegionExists) {
		t.Errorf("duplicate alloc = %v, want ErrRegionExists", err)
	}
	reg, err := cli.Map(ctx, "lc")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	// Free while mapped is refused.
	if err := cli.Free(ctx, "lc"); err == nil {
		t.Error("Free of mapped region should fail")
	}
	if err := reg.Unmap(ctx); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	// Data ops after unmap fail.
	if err := reg.Write(ctx, 0, []byte("x")); !errors.Is(err, client.ErrRegionClosed) {
		t.Errorf("write after unmap = %v", err)
	}
	if err := cli.Free(ctx, "lc"); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := cli.Map(ctx, "lc"); !errors.Is(err, client.ErrRegionNotFound) {
		t.Errorf("map after free = %v, want ErrRegionNotFound", err)
	}
	if got := c.Master().RegionCount(); got != 0 {
		t.Errorf("region count = %d, want 0", got)
	}
}

func TestAllocFreeReusesSpace(t *testing.T) {
	// Allocating, freeing, and reallocating must not leak arena space.
	c := startCluster(t, 3)
	cli := newClient(t, c, 1)
	ctx := context.Background()
	// Each server donates 32 MiB; two servers. A 40 MiB region fits only
	// if freed space is reused across iterations.
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("cycle-%d", i)
		if _, err := cli.Alloc(ctx, name, 40<<20, AllocOptions{}); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if err := cli.Free(ctx, name); err != nil {
			t.Fatalf("Free %d: %v", i, err)
		}
	}
	infos, err := cli.ClusterInfo(ctx)
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	for _, si := range infos {
		if si.Used != 0 {
			t.Errorf("server %v used = %d after frees", si.Node, si.Used)
		}
	}
}

func TestStripingUsesAllServers(t *testing.T) {
	c := startCluster(t, 5) // 4 memory servers
	cli := newClient(t, c, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "striped", 8<<20, AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	servers := reg.Info().Servers()
	if len(servers) != 4 {
		t.Fatalf("striped over %v, want 4 servers", servers)
	}
}

func TestStripeWidthLimit(t *testing.T) {
	c := startCluster(t, 5)
	cli := newClient(t, c, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "narrow", 4<<20, AllocOptions{StripeUnit: 1 << 20, StripeWidth: 2})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	if got := len(reg.Info().Servers()); got != 2 {
		t.Fatalf("servers = %d, want 2", got)
	}
}

func TestFetchAddAcrossClients(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	setup := newClient(t, c, 1)
	if _, err := setup.Alloc(ctx, "ctr", 4096, AllocOptions{StripeWidth: 1}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}

	const (
		clients = 3
		perC    = 40
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cli := newClient(t, c, 1+i%3)
		reg, err := cli.Map(ctx, "ctr")
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		wg.Add(1)
		go func(reg *Region) {
			defer wg.Done()
			for j := 0; j < perC; j++ {
				if _, _, err := reg.FetchAdd(ctx, 0, 1); err != nil {
					t.Errorf("FetchAdd: %v", err)
					return
				}
			}
		}(reg)
	}
	wg.Wait()

	reg, err := setup.Map(ctx, "ctr")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	var word [8]byte
	if err := reg.Read(ctx, 0, word[:]); err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := uint64(word[0]) | uint64(word[1])<<8 | uint64(word[2])<<16 | uint64(word[3])<<24 |
		uint64(word[4])<<32 | uint64(word[5])<<40 | uint64(word[6])<<48 | uint64(word[7])<<56
	if got != clients*perC {
		t.Fatalf("counter = %d, want %d", got, clients*perC)
	}
}

func TestCompareSwap(t *testing.T) {
	c := startCluster(t, 3)
	cli := newClient(t, c, 1)
	ctx := context.Background()
	reg, err := cli.AllocMap(ctx, "cas", 4096, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	old, _, err := reg.CompareSwap(ctx, 8, 0, 77)
	if err != nil {
		t.Fatalf("CompareSwap: %v", err)
	}
	if old != 0 {
		t.Errorf("old = %d, want 0", old)
	}
	old, _, err = reg.CompareSwap(ctx, 8, 0, 99)
	if err != nil {
		t.Fatalf("CompareSwap: %v", err)
	}
	if old != 77 {
		t.Errorf("old = %d, want 77 (failed compare)", old)
	}
}

func TestNotifications(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	producer := newClient(t, c, 1)
	consumer := newClient(t, c, 2)

	if _, err := producer.Alloc(ctx, "queue", 1<<16, AllocOptions{}); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	preg, err := producer.Map(ctx, "queue")
	if err != nil {
		t.Fatalf("producer Map: %v", err)
	}
	creg, err := consumer.Map(ctx, "queue")
	if err != nil {
		t.Fatalf("consumer Map: %v", err)
	}
	ch, unsub, err := creg.Subscribe(ctx)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer unsub()

	if err := preg.Write(ctx, 0, []byte("item-1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := preg.Notify(ctx, 1234); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	select {
	case n := <-ch:
		if n.Token != 1234 || n.Region != creg.Info().ID {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification not delivered")
	}

	// After unsubscribe no further delivery.
	unsub()
	if err := preg.Notify(ctx, 5678); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	select {
	case n, ok := <-ch:
		if ok {
			t.Errorf("unexpected notification after unsubscribe: %+v", n)
		}
	case <-time.After(100 * time.Millisecond):
	}
}

func TestServerFailureDetection(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	cli := newClient(t, c, 1)

	victim := c.MemoryServerNodes()[2]
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	if err := c.WaitServerDead(victim, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// New allocations avoid the dead server.
	reg, err := cli.AllocMap(ctx, "after-death", 2<<20, AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	for _, s := range reg.Info().Servers() {
		if s == victim {
			t.Errorf("region placed on dead server %v", victim)
		}
	}
}

func TestIOFailsOnDeadServer(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	cli := newClient(t, c, 1)
	reg, err := cli.AllocMap(ctx, "doomed", 2<<20, AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	victim := reg.Info().Servers()[0]
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	err = reg.Write(ctx, 0, make([]byte, 1<<20))
	if !errors.Is(err, client.ErrIOFailed) {
		t.Fatalf("write to dead server = %v, want ErrIOFailed", err)
	}
}

func TestReplicatedReadFailover(t *testing.T) {
	// 5 memory servers plus a dedicated client-only node, so killing the
	// primaries does not take the client's own link down.
	c, err := Start(context.Background(), Config{
		Machines:          6,
		ExtraClientNodes:  1,
		ServerCapacity:    32 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	cli := newClient(t, c, 6)
	reg, err := cli.AllocMap(ctx, "replicated", 1<<20, AllocOptions{StripeUnit: 256 << 10, StripeWidth: 2, Replicas: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	info := reg.Info()
	if len(info.Replicas) != 1 {
		t.Fatalf("replicas = %d, want 1", len(info.Replicas))
	}
	payload := make([]byte, 600<<10)
	rand.New(rand.NewSource(7)).Read(payload)
	if err := reg.Write(ctx, 0, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Kill every primary server; reads must fail over to the replica.
	for _, node := range info.Servers() {
		if err := c.KillServer(node); err != nil {
			t.Fatalf("KillServer: %v", err)
		}
	}
	got := make([]byte, len(payload))
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Fatalf("Read after primary death: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("replica data differs")
	}
}

func TestReplicaPlacementDisjoint(t *testing.T) {
	c := startCluster(t, 7) // 6 memory servers
	ctx := context.Background()
	cli := newClient(t, c, 1)
	reg, err := cli.AllocMap(ctx, "disjoint", 1<<20, AllocOptions{StripeWidth: 3, Replicas: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	info := reg.Info()
	primary := make(map[simnet.NodeID]bool)
	for _, s := range info.Servers() {
		primary[s] = true
	}
	for _, x := range info.Replicas[0] {
		if primary[x.Server] {
			t.Errorf("replica extent on primary server %v", x.Server)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	c := startCluster(t, 3) // 2 servers x 32 MiB
	ctx := context.Background()
	cli := newClient(t, c, 1)
	if _, err := cli.Alloc(ctx, "too-big", 1<<30, AllocOptions{}); err == nil {
		t.Fatal("1 GiB alloc on 64 MiB cluster should fail")
	}
	// The failed allocation must not leak space.
	if _, err := cli.Alloc(ctx, "fits", 60<<20, AllocOptions{}); err != nil {
		t.Fatalf("alloc after failed alloc: %v", err)
	}
}

func TestControlStatsAccumulate(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	cli := newClient(t, c, 1)
	before := cli.ControlStats()
	if _, err := cli.AllocMap(ctx, "ctl", 8<<20, AllocOptions{StripeUnit: 1 << 20}); err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	delta := cli.ControlStats().Sub(before)
	if delta.RPCs < 2 {
		t.Errorf("RPCs = %d, want >= 2 (alloc+map)", delta.RPCs)
	}
	if delta.Connects != 3 {
		t.Errorf("Connects = %d, want 3 (one per memory server)", delta.Connects)
	}
	if delta.RPCTime <= 0 || delta.ConnectTime <= 0 {
		t.Errorf("control time = %+v", delta)
	}

	// A second map of another region on the same servers reuses QPs: no
	// new connects — the paper's amortization point.
	before = cli.ControlStats()
	if _, err := cli.AllocMap(ctx, "ctl2", 8<<20, AllocOptions{StripeUnit: 1 << 20}); err != nil {
		t.Fatalf("AllocMap 2: %v", err)
	}
	delta = cli.ControlStats().Sub(before)
	if delta.Connects != 0 {
		t.Errorf("second map connects = %d, want 0 (QP reuse)", delta.Connects)
	}
}

func TestBoundsErrors(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	cli := newClient(t, c, 1)
	reg, err := cli.AllocMap(ctx, "bounds", 4096, AllocOptions{})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	if err := reg.Write(ctx, 4000, make([]byte, 200)); !errors.Is(err, proto.ErrBadRange) {
		t.Errorf("write past end = %v, want ErrBadRange", err)
	}
	if err := reg.Read(ctx, 5000, make([]byte, 1)); !errors.Is(err, proto.ErrBadRange) {
		t.Errorf("read past end = %v, want ErrBadRange", err)
	}
}

func TestAsyncPipelining(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	cli := newClient(t, c, 1)
	reg, err := cli.AllocMap(ctx, "async", 16<<20, AllocOptions{StripeUnit: 1 << 20})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(16 << 20)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	rand.New(rand.NewSource(3)).Read(buf.Bytes())

	const chunk = 1 << 20
	var pending []*client.Pending
	for i := 0; i < 16; i++ {
		p, err := reg.StartWriteAt(ctx, uint64(i*chunk), buf, i*chunk, chunk)
		if err != nil {
			t.Fatalf("StartWriteAt %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		if _, err := p.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	check, err := cli.AllocBuf(16 << 20)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	if _, err := reg.ReadAt(ctx, 0, check, 0, 16<<20); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(check.Bytes(), buf.Bytes()) {
		t.Fatal("pipelined writes round trip mismatch")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	c := startCluster(t, 3)
	cli := newClient(t, c, 1)
	cli.Close()
	cli.Close()
	if _, err := cli.Alloc(context.Background(), "x", 1, AllocOptions{}); !errors.Is(err, client.ErrClosed) {
		t.Errorf("alloc after close = %v", err)
	}
}

func TestWriteLandsInServerArena(t *testing.T) {
	// White-box: bytes written through the store are physically resident
	// in the memory server's arena at the extent address.
	c := startCluster(t, 3)
	ctx := context.Background()
	cli := newClient(t, c, 1)
	reg, err := cli.AllocMap(ctx, "phys", 4096, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	msg := []byte("resident bytes")
	if err := reg.Write(ctx, 100, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	ext := reg.Info().Extents[0]
	var arena []byte
	for _, s := range c.Servers() {
		if s.Node() == ext.Server {
			arena = s.Arena().Bytes()
		}
	}
	if arena == nil {
		t.Fatalf("no server for %v", ext.Server)
	}
	if got := arena[ext.Addr+100 : ext.Addr+100+uint64(len(msg))]; !bytes.Equal(got, msg) {
		t.Fatalf("arena = %q, want %q", got, msg)
	}
}

func TestConfigOverrides(t *testing.T) {
	// Custom fabric parameters and verbs costs flow through to modeled
	// results: a 10x slower link must produce ~10x the large-read latency.
	slow := simnet.DefaultParams()
	slow.LinkBandwidth = 5.6e9
	ctx := context.Background()
	c, err := Start(ctx, Config{
		Machines:       3,
		ServerCapacity: 16 << 20,
		Params:         &slow,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer c.Close()
	// Width-1 placement lands on node 1 (tie break); read from node 2 so
	// the op crosses the fabric instead of loopback.
	cli, err := c.NewClient(ctx, 2)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	reg, err := cli.AllocMap(ctx, "slow", 2<<20, AllocOptions{StripeWidth: 1})
	if err != nil {
		t.Fatalf("AllocMap: %v", err)
	}
	buf, err := cli.AllocBuf(1 << 20)
	if err != nil {
		t.Fatalf("AllocBuf: %v", err)
	}
	st, err := reg.ReadAt(ctx, 0, buf, 0, 1<<20)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	// 1 MiB at 5.6 Gb/s ≈ 1.5ms (vs ~152us at 56 Gb/s).
	if lat := st.Latency().Duration(); lat < time.Millisecond {
		t.Errorf("latency %v too low for a 5.6 Gb/s link", lat)
	}
}
