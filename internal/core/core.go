// Package core assembles the full RStore system — fabric, RDMA network,
// master, memory servers — into an in-process cluster, and re-exports the
// client's memory-like API. It is the entry point examples, applications,
// and the benchmark harness build on.
//
// A Cluster models the paper's testbed: N machines on a switched fabric,
// one running the master, the rest donating DRAM as memory servers.
// Clients may run on any machine (the paper co-locates compute with memory
// servers).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rstore/internal/client"
	"rstore/internal/master"
	"rstore/internal/memserver"
	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Re-exported client types, so applications depend on core alone.
type (
	// Client is an RStore client endpoint.
	Client = client.Client
	// Region is a mapped region handle.
	Region = client.Region
	// Buf is a registered zero-copy buffer.
	Buf = client.Buf
	// AllocOptions tunes allocation.
	AllocOptions = client.AllocOptions
	// IOStat reports a data-path operation in virtual time.
	IOStat = client.IOStat
	// Notification is a region producer/consumer signal.
	Notification = client.Notification
	// ControlStats meters modeled control-path cost.
	ControlStats = client.ControlStats
	// NodeStats is one node's telemetry snapshot in a ClusterStats response.
	NodeStats = proto.NodeStats
	// RegionStatus is the master's repair-plane view of one region.
	RegionStatus = proto.RegionStatus

	HealthReport = proto.HealthReport
	// MasterStatus is one master replica's self-reported replication role.
	MasterStatus = client.MasterStatus
)

// ErrBadNode reports a node outside the cluster.
var ErrBadNode = errors.New("core: node outside cluster")

// ErrMasterUnavailable is the client's master-outage sentinel, re-exported
// so tooling depending on core alone can errors.Is against it.
var ErrMasterUnavailable = client.ErrMasterUnavailable

// Config sizes a cluster.
type Config struct {
	// Machines is the total node count (masters + memory servers). The
	// paper's testbed has 12. Default 4.
	Machines int
	// MasterReplicas is how many machines run master replicas (nodes
	// 0..MasterReplicas-1; node 0 boots as primary, the rest as standbys).
	// Default 1 — a single, unreplicated master, exactly the paper's
	// deployment.
	MasterReplicas int
	// LeaseTerm is the layout-lease term masters grant to clients
	// (forwarded to master.Config.LeaseTerm: 0 = master default, negative
	// = disable lease discipline).
	LeaseTerm time.Duration
	// ExtraClientNodes adds client-only machines beyond Machines.
	ExtraClientNodes int
	// ServerCapacity is the DRAM each memory server donates. Default 64 MiB.
	ServerCapacity uint64
	// Params overrides the fabric cost model (zero value = calibrated
	// defaults).
	Params *simnet.Params
	// Costs overrides the verbs CPU cost model.
	Costs *rdma.Costs
	// HeartbeatInterval speeds up failure detection in tests. Default 100ms.
	HeartbeatInterval time.Duration
	// Repair overrides the master's repair-plane tuning (zero values keep
	// the master's defaults; only the fields below are forwarded).
	Repair RepairConfig
	// RPC tunes all control connections.
	RPC rpc.Options
}

// RepairConfig forwards repair-plane knobs to the master.
type RepairConfig struct {
	// Concurrency is how many repair tasks run at once.
	Concurrency int
	// Chunk is the per-read transfer size of repair pulls.
	Chunk uint64
	// RateBytesPerSec caps each repair pull's bandwidth on virtual time.
	RateBytesPerSec uint64
	// PullHook is the repair fault-injection point (see
	// master.Config.RepairPullHook).
	PullHook func(src proto.Extent)
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.MasterReplicas <= 0 {
		c.MasterReplicas = 1
	}
	if c.ServerCapacity == 0 {
		c.ServerCapacity = 64 << 20
	}
	return c
}

// Cluster is a running in-process RStore deployment.
type Cluster struct {
	cfg     Config
	fabric  *simnet.Fabric
	network *rdma.Network
	masters []*master.Master
	servers []*memserver.Server

	mu      sync.Mutex
	clients []*client.Client
	closed  bool
}

// Start boots a cluster: nodes 0..MasterReplicas-1 run master replicas
// (node 0 as the boot primary), nodes MasterReplicas..Machines-1 run
// memory servers, and ExtraClientNodes further nodes are client-only.
func Start(ctx context.Context, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.MasterReplicas >= cfg.Machines {
		return nil, fmt.Errorf("core: %d master replicas leave no memory servers among %d machines",
			cfg.MasterReplicas, cfg.Machines)
	}
	params := simnet.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	costs := rdma.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	fabric := simnet.NewFabric(cfg.Machines+cfg.ExtraClientNodes, params)
	network := rdma.NewNetworkWithCosts(fabric, costs)

	var peers []simnet.NodeID
	if cfg.MasterReplicas > 1 {
		for i := 0; i < cfg.MasterReplicas; i++ {
			peers = append(peers, simnet.NodeID(i))
		}
	}
	cl := &Cluster{cfg: cfg, fabric: fabric, network: network}
	for i := 0; i < cfg.MasterReplicas; i++ {
		masterDev, err := network.OpenDevice(simnet.NodeID(i))
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		m, err := master.Start(masterDev, master.Config{
			HeartbeatInterval:     cfg.HeartbeatInterval,
			Peers:                 peers,
			LeaseTerm:             cfg.LeaseTerm,
			RepairConcurrency:     cfg.Repair.Concurrency,
			RepairChunk:           cfg.Repair.Chunk,
			RepairRateBytesPerSec: cfg.Repair.RateBytesPerSec,
			RepairPullHook:        cfg.Repair.PullHook,
			RPC:                   cfg.RPC,
		})
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("core: start master on node %d: %w", i, err)
		}
		cl.masters = append(cl.masters, m)
	}

	for node := cfg.MasterReplicas; node < cfg.Machines; node++ {
		dev, err := network.OpenDevice(simnet.NodeID(node))
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		srv, err := memserver.Start(ctx, dev, memserver.Config{
			Capacity:          cfg.ServerCapacity,
			Master:            0,
			Masters:           cl.MasterNodes(),
			HeartbeatInterval: cfg.HeartbeatInterval,
			RPC:               cfg.RPC,
		})
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("core: start memserver on node %d: %w", node, err)
		}
		cl.servers = append(cl.servers, srv)
	}
	return cl, nil
}

// Fabric exposes the simulated fabric (stats, failure injection).
func (c *Cluster) Fabric() *simnet.Fabric { return c.fabric }

// Network exposes the verbs network.
func (c *Cluster) Network() *rdma.Network { return c.network }

// Master exposes the coordinator: the replica currently acting as primary
// (the highest-epoch one when a stale primary has not yet fenced itself),
// falling back to the boot primary when none claims the role.
func (c *Cluster) Master() *master.Master {
	var best *master.Master
	var bestEpoch uint64
	for _, m := range c.masters {
		role, epoch, _ := m.Status()
		if role == "primary" && (best == nil || epoch > bestEpoch) {
			best = m
			bestEpoch = epoch
		}
	}
	if best != nil {
		return best
	}
	return c.masters[0]
}

// Masters returns every running master replica, in node order.
func (c *Cluster) Masters() []*master.Master {
	out := make([]*master.Master, len(c.masters))
	copy(out, c.masters)
	return out
}

// MasterNodes returns the fabric nodes hosting master replicas.
func (c *Cluster) MasterNodes() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(c.masters))
	for i := range c.masters {
		out = append(out, simnet.NodeID(i))
	}
	return out
}

// KillMaster drops a master replica's node off the fabric (the failover
// trigger). ReviveServer brings it back as a fenced stale replica.
func (c *Cluster) KillMaster(node simnet.NodeID) error {
	return c.fabric.SetNodeUp(node, false)
}

// WaitMasterRole blocks until the master replica on the given node reports
// the wanted role ("primary" or "standby") at an epoch of at least
// minEpoch, or the timeout passes. Wall-clock polling, like
// WaitServerDead: failover progress rides on heartbeat timers.
func (c *Cluster) WaitMasterRole(node simnet.NodeID, want string, minEpoch uint64, timeout time.Duration) error {
	if int(node) < 0 || int(node) >= len(c.masters) {
		return fmt.Errorf("%w: %v", ErrBadNode, node)
	}
	m := c.masters[node]
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		role, epoch, _ := m.Status()
		if role == want && epoch >= minEpoch {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	role, epoch, _ := m.Status()
	return fmt.Errorf("core: master %v still %s@%d (want %s@>=%d) after %v",
		node, role, epoch, want, minEpoch, timeout)
}

// Servers returns the running memory servers.
func (c *Cluster) Servers() []*memserver.Server {
	out := make([]*memserver.Server, len(c.servers))
	copy(out, c.servers)
	return out
}

// MemoryServerNodes returns the fabric nodes hosting memory servers.
func (c *Cluster) MemoryServerNodes() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(c.servers))
	for _, s := range c.servers {
		out = append(out, s.Node())
	}
	return out
}

// NewClient opens a client on the given fabric node. Multiple clients per
// node are allowed (they model separate application processes).
func (c *Cluster) NewClient(ctx context.Context, node simnet.NodeID) (*client.Client, error) {
	if int(node) < 0 || int(node) >= c.fabric.Size() {
		return nil, fmt.Errorf("%w: %v", ErrBadNode, node)
	}
	dev, err := c.network.OpenDevice(node)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cli, err := client.Connect(ctx, dev, client.Config{Master: 0, Masters: c.MasterNodes(), RPC: c.cfg.RPC})
	if err != nil {
		return nil, fmt.Errorf("core: connect client on %v: %w", node, err)
	}
	c.mu.Lock()
	c.clients = append(c.clients, cli)
	c.mu.Unlock()
	return cli, nil
}

// registries returns every distinct metric registry in the cluster.
// Roles co-located on one machine share the node's device — and therefore
// its registry — so the walk dedupes by registry pointer to keep merged
// counters from double-counting.
func (c *Cluster) registries() []*telemetry.Registry {
	var out []*telemetry.Registry
	seen := make(map[*telemetry.Registry]bool)
	add := func(r *telemetry.Registry) {
		if r != nil && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, m := range c.masters {
		add(m.Telemetry())
	}
	for _, s := range c.servers {
		add(s.Telemetry())
	}
	c.mu.Lock()
	clients := append([]*client.Client(nil), c.clients...)
	c.mu.Unlock()
	for _, cli := range clients {
		add(cli.Telemetry())
	}
	return out
}

// TelemetrySnapshot returns the cluster-wide merged telemetry: counters
// and gauges summed, histograms merged, across the master, every memory
// server, and every client opened through NewClient. Unlike
// Client.ClusterStats it reads the in-process registries directly, so it
// is exact and does not wait for a heartbeat cycle.
func (c *Cluster) TelemetrySnapshot() telemetry.Snapshot {
	var out telemetry.Snapshot
	for _, r := range c.registries() {
		out.Merge(r.Snapshot())
	}
	return out
}

// SetTelemetryEnabled toggles metric collection on every node. Disabled
// registries cost one atomic load per would-be update on the hot path.
func (c *Cluster) SetTelemetryEnabled(on bool) {
	for _, r := range c.registries() {
		r.SetEnabled(on)
	}
}

// SetTraceSampling sets every node's root-trace sampling rate: 0 disables
// tracing, n>0 samples one in every n new operations.
func (c *Cluster) SetTraceSampling(n int) {
	for _, r := range c.registries() {
		r.Tracer().SetSampling(n)
	}
}

// SetSlowOpThreshold arms (d > 0) or disarms (d == 0) the slow-op flight
// recorder on every node: data-path ops whose modeled latency reaches d —
// or that fail — are retroactively promoted to traced and pinned in the
// flight ring, even when head sampling never picked them.
func (c *Cluster) SetSlowOpThreshold(d time.Duration) {
	for _, r := range c.registries() {
		r.Tracer().SetSlowOpThreshold(d)
	}
}

// SetWindowWidth sets the virtual-time bucket width of every node's
// windowed telemetry (0 disables windowing entirely — the overhead guard
// uses this to isolate the window rings' cost).
func (c *Cluster) SetWindowWidth(d time.Duration) {
	for _, r := range c.registries() {
		r.SetWindowWidth(d)
	}
}

// WindowSnapshot merges every node's windowed telemetry directly from the
// in-process registries (the local counterpart of Client.ClusterHealth's
// rates, exact and heartbeat-free).
func (c *Cluster) WindowSnapshot() telemetry.WindowSnapshot {
	var out telemetry.WindowSnapshot
	for _, r := range c.registries() {
		out.Merge(r.WindowSnapshot())
	}
	return out
}

// DumpHealth writes every master replica's health-engine state to w —
// the health counterpart of DumpFlight, attached to chaos artifacts.
func (c *Cluster) DumpHealth(w io.Writer) {
	for _, m := range c.Masters() {
		fmt.Fprintf(w, "== master node %d ==\n", m.Node())
		m.DumpHealth(w)
	}
}

// FlightSpans returns every span pinned in any node's flight-recorder
// ring, for post-mortem dumps.
func (c *Cluster) FlightSpans() []telemetry.Span {
	var spans []telemetry.Span
	for _, r := range c.registries() {
		spans = append(spans, r.Tracer().FlightSpans()...)
	}
	return spans
}

// DumpFlight writes every node's flight-recorder contents to w, one
// section per registry. Used by the chaos harness to attach slow-op
// evidence to failing runs.
func (c *Cluster) DumpFlight(w io.Writer) {
	for _, r := range c.registries() {
		r.Tracer().DumpFlight(w)
	}
}

// KillServer simulates a machine failure: the node drops off the fabric,
// in-flight ops against it fail, and heartbeats stop reaching the master.
func (c *Cluster) KillServer(node simnet.NodeID) error {
	return c.fabric.SetNodeUp(node, false)
}

// ReviveServer brings a killed node's link back.
func (c *Cluster) ReviveServer(node simnet.NodeID) error {
	return c.fabric.SetNodeUp(node, true)
}

// WaitServerDead blocks until the master marks the node dead (or timeout).
func (c *Cluster) WaitServerDead(node simnet.NodeID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		alive := false
		for _, id := range c.Master().AliveServers() {
			if id == node {
				alive = true
				break
			}
		}
		if !alive {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("core: server %v still alive after %v", node, timeout)
}

// Close stops every component.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()

	for _, cli := range clients {
		cli.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	for _, m := range c.masters {
		m.Close()
	}
}
