// Package tcpstore implements the two-sided comparator for RStore's
// latency evaluation: a conventional message-based DRAM store in which
// every access is a request/response against the server's CPU.
//
// It runs on the same simulated fabric as RStore, but each operation pays
// the costs one-sided RDMA avoids: a socket/kernel traversal on both ends
// and a server-side memory copy between the store and the message buffer.
// This reproduces the paper's "close-to-hardware latency" comparison — the
// gap between RStore and a classic store is exactly these per-op taxes.
package tcpstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// Message types.
const (
	mtGet uint16 = iota + 1
	mtPut
)

// ErrBadRange reports an out-of-bounds access.
var ErrBadRange = errors.New("tcpstore: bad range")

// Costs models the per-operation overheads of the kernel TCP path.
type Costs struct {
	// StackOverhead is charged once per message per host (syscall,
	// interrupt, protocol processing). Default 12us.
	StackOverhead time.Duration
}

// DefaultCosts matches DESIGN.md's calibration.
func DefaultCosts() Costs {
	return Costs{StackOverhead: 12 * time.Microsecond}
}

// Server is a message-based DRAM store on one node.
type Server struct {
	srv   *rpc.Server
	store []byte
	costs Costs
	param simnet.Params
}

// StartServer creates a store of the given capacity on the device.
func StartServer(dev *rdma.Device, service string, capacity int, costs Costs) (*Server, error) {
	srv, err := rpc.NewServer(dev, service, nil, rpc.Options{BufSize: 2 << 20})
	if err != nil {
		return nil, fmt.Errorf("tcpstore: %w", err)
	}
	s := &Server{
		srv:   srv,
		store: make([]byte, capacity),
		costs: costs,
		param: dev.Network().Fabric().Params(),
	}
	srv.Handle(mtGet, s.handleGet)
	srv.Handle(mtPut, s.handlePut)
	srv.Serve()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() { s.srv.Close() }

// Store exposes the backing memory for test assertions.
func (s *Server) Store() []byte { return s.store }

func (s *Server) checkRange(off uint64, n int) error {
	if n < 0 || off > uint64(len(s.store)) || uint64(n) > uint64(len(s.store))-off {
		return fmt.Errorf("%w: off=%d len=%d store=%d", ErrBadRange, off, n, len(s.store))
	}
	return nil
}

func (s *Server) handleGet(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	off := req.U64()
	n := int(req.U32())
	if err := req.Err(); err != nil {
		return nil, err
	}
	if err := s.checkRange(off, n); err != nil {
		return nil, err
	}
	var e rpc.Encoder
	// The server CPU copies store memory into the reply buffer — the copy
	// one-sided RDMA eliminates.
	e.Bytes32(s.store[off : off+uint64(n)])
	return &e, nil
}

func (s *Server) handlePut(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	off := req.U64()
	data := req.Bytes32()
	if err := req.Err(); err != nil {
		return nil, err
	}
	if err := s.checkRange(off, len(data)); err != nil {
		return nil, err
	}
	copy(s.store[off:], data)
	return &rpc.Encoder{}, nil
}

// Client accesses a tcpstore server.
type Client struct {
	conn  *rpc.Conn
	costs Costs
	param simnet.Params
}

// Dial connects to the named store service on the remote node.
func Dial(ctx context.Context, dev *rdma.Device, node simnet.NodeID, service string, costs Costs) (*Client, error) {
	conn, err := rpc.Dial(ctx, dev, node, service, nil, rpc.Options{BufSize: 2 << 20})
	if err != nil {
		return nil, fmt.Errorf("tcpstore: %w", err)
	}
	return &Client{conn: conn, costs: costs, param: dev.Network().Fabric().Params()}, nil
}

// Close tears down the connection.
func (c *Client) Close() { c.conn.Close() }

// overhead converts the executed message latency into the full modeled
// two-sided latency: two stack traversals per direction plus the
// server-side copy of the payload.
func (c *Client) overhead(payload int) time.Duration {
	return 2*c.costs.StackOverhead + c.param.MemCopyTime(payload)
}

// Get reads [off, off+n) and returns the data plus modeled latency.
func (c *Client) Get(ctx context.Context, off uint64, n int) ([]byte, time.Duration, error) {
	var e rpc.Encoder
	e.U64(off)
	e.U32(uint32(n))
	resp, lat, err := c.conn.Call(ctx, mtGet, e.Bytes())
	if err != nil {
		return nil, 0, fmt.Errorf("tcpstore get: %w", err)
	}
	d := rpc.NewDecoder(resp)
	data := d.Bytes32()
	if derr := d.Err(); derr != nil {
		return nil, 0, fmt.Errorf("tcpstore get: %w", derr)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, lat + c.overhead(n), nil
}

// Put writes data at off and returns the modeled latency.
func (c *Client) Put(ctx context.Context, off uint64, data []byte) (time.Duration, error) {
	var e rpc.Encoder
	e.U64(off)
	e.Bytes32(data)
	_, lat, err := c.conn.Call(ctx, mtPut, e.Bytes())
	if err != nil {
		return 0, fmt.Errorf("tcpstore put: %w", err)
	}
	return lat + c.overhead(len(data)), nil
}
