package tcpstore

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := StartServer(sd, "kv", 1<<20, DefaultCosts())
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(srv.Close)
	cd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	cli, err := Dial(context.Background(), cd, 0, "kv", DefaultCosts())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cli.Close)
	return srv, cli
}

func TestPutGetRoundTrip(t *testing.T) {
	srv, cli := newPair(t)
	ctx := context.Background()
	payload := []byte("two-sided data")
	lat, err := cli.Put(ctx, 128, payload)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if lat <= 0 {
		t.Errorf("put latency = %v", lat)
	}
	if got := srv.Store()[128 : 128+len(payload)]; !bytes.Equal(got, payload) {
		t.Errorf("store = %q", got)
	}
	data, lat, err := cli.Get(ctx, 128, len(payload))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("get = %q", data)
	}
	if lat <= 0 {
		t.Errorf("get latency = %v", lat)
	}
}

func TestTwoSidedLatencyIncludesStackCosts(t *testing.T) {
	_, cli := newPair(t)
	_, lat, err := cli.Get(context.Background(), 0, 8)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// The two stack traversals alone are 24us; the whole op must exceed
	// them — and dwarf RStore's ~2-3us one-sided read of the same size.
	if lat < 24*time.Microsecond {
		t.Errorf("latency %v below modeled stack costs", lat)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	_, cli := newPair(t)
	ctx := context.Background()
	_, small, err := cli.Get(ctx, 0, 8)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	_, big, err := cli.Get(ctx, 0, 512<<10)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if big <= small {
		t.Errorf("512KiB latency %v <= 8B latency %v", big, small)
	}
}

func TestBadRange(t *testing.T) {
	_, cli := newPair(t)
	ctx := context.Background()
	if _, _, err := cli.Get(ctx, 1<<20, 1); err == nil {
		t.Error("out of range get must fail")
	}
	if _, err := cli.Put(ctx, 1<<20-4, make([]byte, 8)); err == nil {
		t.Error("out of range put must fail")
	}
	// Typed range errors do not survive the RPC boundary; a remote error
	// is sufficient.
	_, _, err := cli.Get(ctx, 2<<20, 1)
	if err == nil || errors.Is(err, ErrBadRange) {
		t.Errorf("err = %v; want remote error, not local sentinel", err)
	}
}
