// Package mrsort is the Hadoop-TeraSort-class comparator for the paper's
// sort evaluation: a MapReduce sample sort whose phases pay the costs the
// RStore sorter avoids — disk passes for input, spills, and output;
// per-record (de)serialization; and a TCP shuffle.
//
// The sort itself executes for real (the output is validated), while phase
// times come from the calibrated cost model: a disk-era MapReduce pipeline
// makes roughly four disk passes over the data plus one network pass, with
// JVM-class per-record CPU costs. Constants are chosen so a 12-machine
// cluster sorts at the ~85 MB/s/node the paper's Hadoop comparison point
// implies; see DESIGN.md.
package mrsort

import (
	"fmt"
	"sort"
	"time"

	"rstore/internal/workload"
)

// Config tunes the modeled MapReduce cluster.
type Config struct {
	// Nodes is the cluster size (mappers == reducers == Nodes).
	Nodes int
	// DiskBandwidth is effective sequential disk bandwidth per node in
	// bits/sec. Default 4 Gb/s (a small RAID).
	DiskBandwidth float64
	// NetBandwidth is the per-node shuffle bandwidth in bits/sec. Default
	// 20 Gb/s (IPoIB on the same fabric).
	NetBandwidth float64
	// PerRecordMap is map-side per-record CPU (read, deserialize,
	// partition, serialize). Default 150ns.
	PerRecordMap time.Duration
	// PerRecordReduce is reduce-side per-record CPU. Default 150ns.
	PerRecordReduce time.Duration
	// ComparePerLevel is the per-record-per-merge-level compare cost.
	// Default 3ns.
	ComparePerLevel time.Duration
	// FetchOverhead is the per-shuffle-fetch TCP cost. Default 24us
	// (both ends).
	FetchOverhead time.Duration
	// SamplesPerMapper drives splitter quality. Default 128.
	SamplesPerMapper int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.DiskBandwidth <= 0 {
		c.DiskBandwidth = 4e9
	}
	if c.NetBandwidth <= 0 {
		c.NetBandwidth = 20e9
	}
	if c.PerRecordMap <= 0 {
		c.PerRecordMap = 150 * time.Nanosecond
	}
	if c.PerRecordReduce <= 0 {
		c.PerRecordReduce = 150 * time.Nanosecond
	}
	if c.ComparePerLevel <= 0 {
		c.ComparePerLevel = 3 * time.Nanosecond
	}
	if c.FetchOverhead <= 0 {
		c.FetchOverhead = 24 * time.Microsecond
	}
	if c.SamplesPerMapper <= 0 {
		c.SamplesPerMapper = 128
	}
	return c
}

// PhaseStats reports one modeled phase.
type PhaseStats struct {
	Modeled time.Duration
	Bytes   int64
}

// Result is a completed run.
type Result struct {
	Records int
	Bytes   int64
	Map     PhaseStats
	Shuffle PhaseStats
	Reduce  PhaseStats
	Modeled time.Duration
}

func durationFor(bytes int64, bandwidthBits float64) time.Duration {
	if bandwidthBits <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / bandwidthBits * float64(time.Second))
}

func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Run sorts records generated from seed and returns the modeled phase
// times. The sorted output is validated internally; a validation failure
// is an error.
func Run(records int, seed int64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if records <= 0 {
		return nil, fmt.Errorf("mrsort: no records")
	}
	N := cfg.Nodes
	totalBytes := int64(records) * workload.RecordSize
	res := &Result{Records: records, Bytes: totalBytes}

	// ---- Execute the sort for real (sample sort in memory). ----
	gen := workload.NewRecordGen(seed)
	input := make([]byte, totalBytes)
	if err := gen.Fill(input, 0, records); err != nil {
		return nil, fmt.Errorf("mrsort: %w", err)
	}
	samples := workload.SampleKeys(input, cfg.SamplesPerMapper*N, seed+1)
	sort.Slice(samples, func(i, j int) bool {
		return string(samples[i]) < string(samples[j])
	})
	splitters := make([]string, 0, N-1)
	for p := 1; p < N; p++ {
		splitters = append(splitters, string(samples[p*len(samples)/N]))
	}
	parts := make([][]byte, N)
	for r := 0; r < records; r++ {
		rec := input[r*workload.RecordSize : (r+1)*workload.RecordSize]
		key := string(workload.Key(rec))
		p := sort.SearchStrings(splitters, key)
		// SearchStrings finds the first splitter >= key; records equal to a
		// splitter belong to the right partition, matching kvsort.
		for p < len(splitters) && splitters[p] == key {
			p++
		}
		parts[p] = append(parts[p], rec...)
	}
	out := make([]byte, 0, totalBytes)
	for p := 0; p < N; p++ {
		sortRecords(parts[p])
		out = append(out, parts[p]...)
	}
	if !workload.Sorted(out) {
		return nil, fmt.Errorf("mrsort: internal error: output not sorted")
	}

	model := ModelOnly(records, cfg)
	res.Map, res.Shuffle, res.Reduce, res.Modeled = model.Map, model.Shuffle, model.Reduce, model.Modeled
	return res, nil
}

// ModelOnly returns the modeled phase times for a volume without
// executing the sort — used to extrapolate bench-scale runs to the
// paper's 256 GB.
func ModelOnly(records int, cfg Config) *Result {
	cfg = cfg.withDefaults()
	N := cfg.Nodes
	totalBytes := int64(records) * workload.RecordSize
	perNode := totalBytes / int64(N)
	recsPerNode := records / N
	if recsPerNode == 0 {
		recsPerNode = 1
	}
	res := &Result{Records: records, Bytes: totalBytes}

	// Map: read input split from disk, per-record CPU, sort spill, write
	// spill to disk.
	spillSortCPU := time.Duration(recsPerNode*log2ceil(recsPerNode)) * cfg.ComparePerLevel
	res.Map = PhaseStats{
		Modeled: durationFor(perNode, cfg.DiskBandwidth)*2 +
			time.Duration(recsPerNode)*cfg.PerRecordMap +
			spillSortCPU,
		Bytes: 2 * perNode,
	}

	// Shuffle: every reducer fetches one segment from every mapper; each
	// node both reads its spills from disk and transfers (N-1)/N of its
	// data over the network.
	remoteFrac := float64(N-1) / float64(N)
	netBytes := int64(float64(perNode) * remoteFrac)
	diskRead := durationFor(perNode, cfg.DiskBandwidth)
	netTime := durationFor(netBytes, cfg.NetBandwidth)
	shuffleIO := diskRead
	if netTime > shuffleIO {
		shuffleIO = netTime
	}
	res.Shuffle = PhaseStats{
		Modeled: shuffleIO + time.Duration(N)*cfg.FetchOverhead,
		Bytes:   perNode + netBytes,
	}

	// Reduce: merge (log2(N) levels), per-record CPU, write output.
	mergeCPU := time.Duration(recsPerNode*log2ceil(N)) * cfg.ComparePerLevel
	res.Reduce = PhaseStats{
		Modeled: mergeCPU +
			time.Duration(recsPerNode)*cfg.PerRecordReduce +
			durationFor(perNode, cfg.DiskBandwidth),
		Bytes: perNode,
	}
	res.Modeled = res.Map.Modeled + res.Shuffle.Modeled + res.Reduce.Modeled
	return res
}

// sortRecords sorts 100-byte records in place by key.
func sortRecords(buf []byte) {
	n := len(buf) / workload.RecordSize
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return workload.CompareRecords(buf[idx[a]*workload.RecordSize:], buf[idx[b]*workload.RecordSize:]) < 0
	})
	tmp := make([]byte, len(buf))
	for i, j := range idx {
		copy(tmp[i*workload.RecordSize:(i+1)*workload.RecordSize], buf[j*workload.RecordSize:(j+1)*workload.RecordSize])
	}
	copy(buf, tmp)
}
