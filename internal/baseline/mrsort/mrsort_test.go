package mrsort

import (
	"testing"
	"time"

	"rstore/internal/workload"
)

func TestRunSortsAndModels(t *testing.T) {
	res, err := Run(20000, 42, Config{Nodes: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Records != 20000 || res.Bytes != 20000*workload.RecordSize {
		t.Errorf("dims: %+v", res)
	}
	if res.Map.Modeled <= 0 || res.Shuffle.Modeled <= 0 || res.Reduce.Modeled <= 0 {
		t.Errorf("phases: %+v", res)
	}
	if res.Modeled != res.Map.Modeled+res.Shuffle.Modeled+res.Reduce.Modeled {
		t.Errorf("total %v != sum of phases", res.Modeled)
	}
}

func TestRunSingleNode(t *testing.T) {
	if _, err := Run(1000, 1, Config{Nodes: 1}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunNoRecords(t *testing.T) {
	if _, err := Run(0, 1, Config{}); err == nil {
		t.Error("zero records must fail")
	}
}

func TestModelScalesLinearly(t *testing.T) {
	cfg := Config{Nodes: 12}
	small := ModelOnly(1_000_000, cfg)
	big := ModelOnly(10_000_000, cfg)
	ratio := float64(big.Modeled) / float64(small.Modeled)
	if ratio < 8 || ratio > 12 {
		t.Errorf("10x volume scaled modeled time by %.2fx", ratio)
	}
}

func TestModelDominatedByDisk(t *testing.T) {
	// For the disk-era pipeline, the four disk passes should account for
	// the majority of the modeled time at scale.
	cfg := Config{Nodes: 12}.withDefaults()
	res := ModelOnly(100_000_000, cfg) // 10 GB
	perNode := res.Bytes / 12
	diskPass := durationFor(perNode, cfg.DiskBandwidth)
	if res.Modeled < 3*diskPass {
		t.Errorf("modeled %v below 3 disk passes %v", res.Modeled, 3*diskPass)
	}
}

// TestPaperScaleEightXAnchor reproduces the headline comparison's MR side:
// 256 GB on 12 nodes should land in the few-hundred-seconds class (the
// paper's Hadoop comparison point is 8x31.7s ≈ 254s).
func TestPaperScaleEightXAnchor(t *testing.T) {
	const records = 2_560_000_000 // 256 GB of 100-byte records
	res := ModelOnly(records, Config{Nodes: 12})
	if res.Modeled < 150*time.Second || res.Modeled > 450*time.Second {
		t.Errorf("256 GB modeled MR sort = %v, want the ~250s class", res.Modeled)
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := log2ceil(tt.n); got != tt.want {
			t.Errorf("log2ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestSortRecordsHelper(t *testing.T) {
	buf := make([]byte, 50*workload.RecordSize)
	if err := workload.NewRecordGen(3).Fill(buf, 0, 50); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	sortRecords(buf)
	if !workload.Sorted(buf) {
		t.Error("not sorted")
	}
}
