// Package msggraph is the message-passing comparator for the paper's
// graph-processing evaluation: a Pregel-style PageRank in which workers
// exchange one message per edge through two-sided sends, batched per
// destination worker.
//
// It runs on the same fabric and verbs layer as RStore's pull-based engine
// (internal/graph), so the measured gap between them isolates exactly what
// the paper claims: direct one-sided access to remote vertex state versus
// per-message serialize/transmit/copy/apply machinery. Per-message CPU
// costs are explicit model parameters calibrated to efficient (C++-class)
// message-passing frameworks; see DESIGN.md.
package msggraph

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
	"rstore/internal/workload"
)

// Config tunes the engine.
type Config struct {
	// Workers is the number of compute workers (one per node by default).
	Workers int
	// WorkerNodes pins workers to fabric nodes; required.
	WorkerNodes []simnet.NodeID
	// BatchBytes is the message batch size. Default 64 KiB.
	BatchBytes int
	// SerializePerMsg is the modeled CPU cost to marshal one message.
	// Default 4ns.
	SerializePerMsg time.Duration
	// ApplyPerMsg is the modeled CPU cost to apply one received message.
	// Default 4ns.
	ApplyPerMsg time.Duration
	// ComputePerEdge matches the RStore engine's compute model. Default 2ns.
	ComputePerEdge time.Duration
	// BarrierCost is the modeled end-of-superstep barrier. Default 10us.
	BarrierCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.SerializePerMsg <= 0 {
		c.SerializePerMsg = 4 * time.Nanosecond
	}
	if c.ApplyPerMsg <= 0 {
		c.ApplyPerMsg = 4 * time.Nanosecond
	}
	if c.ComputePerEdge <= 0 {
		c.ComputePerEdge = 2 * time.Nanosecond
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = 10 * time.Microsecond
	}
	return c
}

// IterStats reports one superstep.
type IterStats struct {
	Modeled  time.Duration
	Messages int64
	Bytes    int64
}

// Result is a completed run.
type Result struct {
	Iterations []IterStats
	Values     []float64
}

// TotalModeled sums the per-iteration modeled times.
func (r *Result) TotalModeled() time.Duration {
	var t time.Duration
	for _, it := range r.Iterations {
		t += it.Modeled
	}
	return t
}

const (
	msgSize   = 12 // u32 vertex + f64 contribution
	hdrSize   = 5  // u8 kind + u32 count
	kindData  = 1
	kindDone  = 2
	sendSlots = 8
	recvSlots = 16
)

// batchMsg is one parsed inbound batch (or a done marker).
type batchMsg struct {
	done    bool
	payload []byte
	arrive  simnet.VTime
}

// peerLink is one worker's half of a QP to another worker.
type peerLink struct {
	qp     *rdma.QP
	sendMR *rdma.MemoryRegion
	slot   int
	inUse  int // outstanding sends
}

// worker owns a partition and its mesh links.
type worker struct {
	id    int
	dev   *rdma.Device
	pd    *rdma.PD
	lo    uint32
	hi    uint32
	peers map[int]*peerLink

	// Out-CSR restricted to owned sources.
	outOffsets []uint64
	outTargets []uint32
	outDeg     []uint32 // of owned vertices, indexed locally

	vals []float64
	acc  []float64

	inbox  chan batchMsg
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// sendWin collects the modeled window of this superstep's sends.
	mu       sync.Mutex
	winFirst simnet.VTime
	winLast  simnet.VTime
}

func (w *worker) extendWin(a, b simnet.VTime) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.winFirst == 0 || (a != 0 && a < w.winFirst) {
		w.winFirst = a
	}
	if b > w.winLast {
		w.winLast = b
	}
}

func (w *worker) resetWin() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.winFirst, w.winLast = 0, 0
}

func (w *worker) winSpan() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.winLast <= w.winFirst {
		return 0
	}
	return w.winLast.Sub(w.winFirst)
}

// Engine is a loaded message-passing PageRank.
type Engine struct {
	cfg     Config
	n       int
	m       int
	bounds  []uint32
	workers []*worker
}

// owner returns the worker owning vertex v.
func (e *Engine) owner(v uint32) int {
	lo, hi := 0, len(e.bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.bounds[mid+1] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Load partitions the graph and wires the worker mesh over the verbs
// network.
func Load(ctx context.Context, network *rdma.Network, name string, g *workload.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers <= 0 {
		cfg.Workers = len(cfg.WorkerNodes)
	}
	if cfg.Workers == 0 || len(cfg.WorkerNodes) == 0 {
		return nil, fmt.Errorf("msggraph: no worker nodes")
	}
	e := &Engine{
		cfg:    cfg,
		n:      g.NumVertices,
		m:      g.NumEdges(),
		bounds: g.PartitionByEdges(cfg.Workers),
	}

	// Build per-worker out-CSR from the global in-CSR.
	type edgeList struct{ srcs, dsts []uint32 }
	perW := make([]edgeList, cfg.Workers)
	for v := 0; v < g.NumVertices; v++ {
		for _, u := range g.InNeighbors(uint32(v)) {
			w := e.owner(u)
			perW[w].srcs = append(perW[w].srcs, u)
			perW[w].dsts = append(perW[w].dsts, uint32(v))
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		node := cfg.WorkerNodes[i%len(cfg.WorkerNodes)]
		dev, err := network.OpenDevice(node)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("msggraph: %w", err)
		}
		pd := dev.AllocPD()
		wk := &worker{
			id:    i,
			dev:   dev,
			pd:    pd,
			lo:    e.bounds[i],
			hi:    e.bounds[i+1],
			peers: make(map[int]*peerLink),
			inbox: make(chan batchMsg, 256),
		}
		wk.buildLocalCSR(perW[i].srcs, perW[i].dsts, g)
		own := int(wk.hi - wk.lo)
		wk.vals = make([]float64, own)
		wk.acc = make([]float64, own)
		e.workers = append(e.workers, wk)
	}
	if err := e.wireMesh(ctx, name); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// buildLocalCSR builds the out-adjacency of owned vertices.
func (w *worker) buildLocalCSR(srcs, dsts []uint32, g *workload.Graph) {
	own := int(w.hi - w.lo)
	counts := make([]uint64, own)
	for _, s := range srcs {
		counts[s-w.lo]++
	}
	w.outOffsets = make([]uint64, own+1)
	for i := 0; i < own; i++ {
		w.outOffsets[i+1] = w.outOffsets[i] + counts[i]
	}
	w.outTargets = make([]uint32, len(srcs))
	cursor := make([]uint64, own)
	copy(cursor, w.outOffsets[:own])
	for k, s := range srcs {
		li := s - w.lo
		w.outTargets[cursor[li]] = dsts[k]
		cursor[li]++
	}
	w.outDeg = make([]uint32, own)
	for i := 0; i < own; i++ {
		w.outDeg[i] = g.OutDegree[w.lo+uint32(i)]
	}
}

// wireMesh connects every worker pair with a QP and starts receivers.
func (e *Engine) wireMesh(ctx context.Context, name string) error {
	W := len(e.workers)
	bufLen := hdrSize + e.cfg.BatchBytes

	listeners := make([]*rdma.Listener, W)
	for i, wk := range e.workers {
		lis, err := wk.dev.Listen(fmt.Sprintf("msggraph/%s/w%d", name, i), wk.pd, rdma.ConnOpts{SendDepth: sendSlots * W, RecvDepth: recvSlots * W})
		if err != nil {
			return fmt.Errorf("msggraph: %w", err)
		}
		listeners[i] = lis
	}
	defer func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}()

	// i dials j for i < j; accept on j's listener.
	for i := 0; i < W; i++ {
		for j := i + 1; j < W; j++ {
			wi, wj := e.workers[i], e.workers[j]
			cqp, err := wi.dev.Dial(ctx, wj.dev.Node(), fmt.Sprintf("msggraph/%s/w%d", name, j), wi.pd, rdma.ConnOpts{SendDepth: sendSlots * W, RecvDepth: recvSlots * W})
			if err != nil {
				return fmt.Errorf("msggraph: dial %d->%d: %w", i, j, err)
			}
			sqp, err := listeners[j].Accept(ctx)
			if err != nil {
				return fmt.Errorf("msggraph: accept %d->%d: %w", i, j, err)
			}
			if err := wi.addLink(j, cqp, bufLen); err != nil {
				return err
			}
			if err := wj.addLink(i, sqp, bufLen); err != nil {
				return err
			}
		}
	}
	return nil
}

// addLink registers buffers on the QP, posts receives, and starts the
// receiver goroutine.
func (w *worker) addLink(peer int, qp *rdma.QP, bufLen int) error {
	sendMR, err := w.pd.RegisterMemory(make([]byte, sendSlots*bufLen), 0)
	if err != nil {
		return fmt.Errorf("msggraph: link buffers: %w", err)
	}
	recvMR, err := w.pd.RegisterMemory(make([]byte, recvSlots*bufLen), rdma.AccessLocalWrite)
	if err != nil {
		return fmt.Errorf("msggraph: link buffers: %w", err)
	}
	for s := 0; s < recvSlots; s++ {
		if err := qp.PostRecv(rdma.RecvWR{
			WRID:  uint64(s),
			Local: rdma.SGE{MR: recvMR, Offset: uint64(s * bufLen), Len: bufLen},
		}); err != nil {
			return fmt.Errorf("msggraph: post recv: %w", err)
		}
	}
	w.peers[peer] = &peerLink{qp: qp, sendMR: sendMR}

	ctx, cancel := context.WithCancel(context.Background())
	if w.cancel == nil {
		w.cancel = cancel
	} else {
		prev := w.cancel
		w.cancel = func() { prev(); cancel() }
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			wc, err := qp.RecvCQ().Next(ctx)
			if err != nil || wc.Status != rdma.StatusSuccess {
				return
			}
			slot := int(wc.WRID)
			frame := recvMR.Bytes()[slot*bufLen : slot*bufLen+wc.ByteLen]
			m := batchMsg{arrive: wc.DoneV}
			if frame[0] == kindDone {
				m.done = true
			} else {
				count := int(binary.LittleEndian.Uint32(frame[1:]))
				m.payload = make([]byte, count*msgSize)
				copy(m.payload, frame[hdrSize:hdrSize+count*msgSize])
			}
			if err := qp.PostRecv(rdma.RecvWR{
				WRID:  wc.WRID,
				Local: rdma.SGE{MR: recvMR, Offset: uint64(slot * bufLen), Len: bufLen},
			}); err != nil {
				return
			}
			select {
			case w.inbox <- m:
			case <-ctx.Done():
				return
			}
		}
	}()
	return nil
}

// sendBatch posts one frame, recycling completed slots.
func (w *worker) sendBatch(link *peerLink, frame []byte, bufLen int) error {
	// Recycle finished sends; block politely if the ring is full.
	for {
		for _, wc := range link.qp.SendCQ().Poll(sendSlots) {
			link.inUse--
			w.extendWin(wc.PostedV, wc.DoneV)
		}
		if link.inUse < sendSlots {
			break
		}
		wc, err := link.qp.SendCQ().Next(context.Background())
		if err != nil {
			return err
		}
		link.inUse--
		w.extendWin(wc.PostedV, wc.DoneV)
	}
	slot := link.slot % sendSlots
	link.slot++
	link.inUse++
	off := slot * bufLen
	copy(link.sendMR.Bytes()[off:off+len(frame)], frame)
	return link.qp.PostSend(rdma.SendWR{
		WRID:  uint64(slot),
		Op:    rdma.OpSend,
		Local: rdma.SGE{MR: link.sendMR, Offset: uint64(off), Len: len(frame)},
	})
}

// Close tears down the mesh.
func (e *Engine) Close() {
	for _, wk := range e.workers {
		if wk.cancel != nil {
			wk.cancel()
		}
		for _, link := range wk.peers {
			link.qp.Close()
		}
		wk.wg.Wait()
	}
	e.workers = nil
}

// PageRank runs the damped power iteration and returns per-superstep
// stats plus the final values.
func (e *Engine) PageRank(ctx context.Context, iters int, damping float64) (*Result, error) {
	for _, wk := range e.workers {
		for i := range wk.vals {
			wk.vals[i] = 1 / float64(e.n)
		}
	}
	res := &Result{}
	for it := 0; it < iters; it++ {
		st, err := e.superstep(ctx, damping)
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, st)
	}
	res.Values = make([]float64, e.n)
	for _, wk := range e.workers {
		copy(res.Values[wk.lo:wk.hi], wk.vals)
	}
	return res, nil
}

func (e *Engine) superstep(ctx context.Context, damping float64) (IterStats, error) {
	W := len(e.workers)
	bufLen := hdrSize + e.cfg.BatchBytes
	base := (1 - damping) / float64(e.n)

	type wres struct {
		modeled time.Duration
		msgs    int64
		bytes   int64
		err     error
	}
	results := make([]wres, W)
	var wg sync.WaitGroup
	for i, wk := range e.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			res := &results[i]
			wk.resetWin()
			for k := range wk.acc {
				wk.acc[k] = 0
			}

			batches := make([][]byte, W)
			for p := range batches {
				if p != i {
					batches[p] = make([]byte, hdrSize, bufLen)
					batches[p][0] = kindData
				}
			}
			flush := func(p int) error {
				b := batches[p]
				count := (len(b) - hdrSize) / msgSize
				if count == 0 {
					return nil
				}
				binary.LittleEndian.PutUint32(b[1:], uint32(count))
				if err := wk.sendBatch(wk.peers[p], b, bufLen); err != nil {
					return err
				}
				res.bytes += int64(len(b))
				batches[p] = batches[p][:hdrSize]
				return nil
			}

			var localApplied int64
			own := int(wk.hi - wk.lo)
			for v := 0; v < own; v++ {
				deg := wk.outDeg[v]
				if deg == 0 {
					continue
				}
				contrib := wk.vals[v] / float64(deg)
				for _, dst := range wk.outTargets[wk.outOffsets[v]:wk.outOffsets[v+1]] {
					p := e.owner(dst)
					if p == i {
						wk.acc[dst-wk.lo] += contrib
						localApplied++
						continue
					}
					b := batches[p]
					var rec [msgSize]byte
					binary.LittleEndian.PutUint32(rec[:], dst)
					binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(contrib))
					b = append(b, rec[:]...)
					batches[p] = b
					res.msgs++
					if len(b)+msgSize > bufLen {
						if err := flush(p); err != nil {
							res.err = err
							return
						}
					}
				}
			}
			for p := 0; p < W; p++ {
				if p == i {
					continue
				}
				if err := flush(p); err != nil {
					res.err = err
					return
				}
				done := []byte{kindDone, 0, 0, 0, 0}
				if err := wk.sendBatch(wk.peers[p], done, bufLen); err != nil {
					res.err = err
					return
				}
			}

			// Receive until every peer's done marker arrived.
			var applied int64
			for doneFrom := 0; doneFrom < W-1; {
				select {
				case m := <-wk.inbox:
					wk.extendWin(m.arrive, m.arrive)
					if m.done {
						doneFrom++
						continue
					}
					for o := 0; o < len(m.payload); o += msgSize {
						dst := binary.LittleEndian.Uint32(m.payload[o:])
						c := math.Float64frombits(binary.LittleEndian.Uint64(m.payload[o+4:]))
						wk.acc[dst-wk.lo] += c
						applied++
					}
				case <-ctx.Done():
					res.err = ctx.Err()
					return
				}
			}

			for v := 0; v < own; v++ {
				wk.vals[v] = base + damping*wk.acc[v]
			}

			edges := int(wk.outOffsets[own])
			cpu := time.Duration(res.msgs)*e.cfg.SerializePerMsg +
				time.Duration(applied+localApplied)*e.cfg.ApplyPerMsg +
				time.Duration(edges)*e.cfg.ComputePerEdge
			// Receiving also pays a copy of every inbound byte (kernel to
			// user) that one-sided writes avoid.
			inBytes := applied * msgSize
			cpu += wk.dev.Network().Fabric().Params().MemCopyTime(int(inBytes))
			res.modeled = wk.winSpan() + cpu
		}(i, wk)
	}
	wg.Wait()

	var st IterStats
	for _, r := range results {
		if r.err != nil {
			return st, fmt.Errorf("msggraph: superstep: %w", r.err)
		}
		if r.modeled > st.Modeled {
			st.Modeled = r.modeled
		}
		st.Messages += r.msgs
		st.Bytes += r.bytes
	}
	st.Modeled += e.cfg.BarrierCost
	return st, nil
}
