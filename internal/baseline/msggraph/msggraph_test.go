package msggraph

import (
	"context"
	"math"
	"testing"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
	"rstore/internal/workload"
)

func refPageRank(g *workload.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			var acc float64
			for _, u := range g.InNeighbors(uint32(v)) {
				if d := g.OutDegree[u]; d > 0 {
					acc += cur[u] / float64(d)
				}
			}
			next[v] = base + damping*acc
		}
		cur, next = next, cur
	}
	return cur
}

func newEngine(t *testing.T, g *workload.Graph, workers int) *Engine {
	t.Helper()
	f := simnet.NewFabric(workers, simnet.DefaultParams())
	network := rdma.NewNetwork(f)
	nodes := make([]simnet.NodeID, workers)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	e, err := Load(context.Background(), network, t.Name(), g, Config{Workers: workers, WorkerNodes: nodes})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPageRankMatchesReference(t *testing.T) {
	g, err := workload.GenRMAT(256, 2048, 17)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	e := newEngine(t, g, 4)
	const iters = 8
	res, err := e.PageRank(context.Background(), iters, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	want := refPageRank(g, iters, 0.85)
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
	if len(res.Iterations) != iters {
		t.Errorf("iterations = %d", len(res.Iterations))
	}
	for i, st := range res.Iterations {
		if st.Modeled <= 0 {
			t.Errorf("iter %d modeled = %v", i, st.Modeled)
		}
		if st.Messages == 0 {
			t.Errorf("iter %d sent no messages", i)
		}
	}
}

func TestPageRankTwoWorkers(t *testing.T) {
	g, err := workload.GenUniform(100, 600, 3)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := newEngine(t, g, 2)
	res, err := e.PageRank(context.Background(), 5, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	want := refPageRank(g, 5, 0.85)
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestOwnerPartition(t *testing.T) {
	g, err := workload.GenUniform(100, 500, 1)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := newEngine(t, g, 3)
	for v := uint32(0); v < uint32(g.NumVertices); v++ {
		w := e.owner(v)
		if v < e.bounds[w] || v >= e.bounds[w+1] {
			t.Fatalf("owner(%d) = %d with bounds %v", v, w, e.bounds)
		}
	}
}

func TestMessagesBatched(t *testing.T) {
	// Message count should equal cross-partition edges; batches should be
	// far fewer than messages.
	g, err := workload.GenUniform(200, 4000, 5)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	e := newEngine(t, g, 4)
	res, err := e.PageRank(context.Background(), 1, 0.85)
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	st := res.Iterations[0]
	var cross int64
	for v := 0; v < g.NumVertices; v++ {
		for _, u := range g.InNeighbors(uint32(v)) {
			if e.owner(u) != e.owner(uint32(v)) && g.OutDegree[u] > 0 {
				cross++
			}
		}
	}
	if st.Messages != cross {
		t.Errorf("messages = %d, want %d cross edges", st.Messages, cross)
	}
	if st.Bytes >= st.Messages*msgSize+int64(len(e.workers)*(len(e.workers)-1))*hdrSize*1000 {
		t.Errorf("bytes %d implausibly high for %d messages", st.Bytes, st.Messages)
	}
}
