// Package kvsort implements the paper's second application study: a
// distributed Key-Value sorter over RStore's memory-like API (the system
// that sorts 256 GB in 31.7 s, 8x faster than Hadoop TeraSort).
//
// The pipeline is a classic sample sort, but every exchange is one-sided:
//
//  1. Sample: workers read key samples from their input slice and the
//     coordinator derives range splitters.
//  2. Shuffle: workers scan their input slice with bulk one-sided reads,
//     partition records by splitter, reserve space in the destination
//     partition with RDMA FETCH_ADD cursor bumps, and deposit buckets with
//     one-sided writes. No receiver CPU is involved anywhere — the paper's
//     signature design point.
//  3. Sort: each worker pulls its partition, sorts it locally, and writes
//     the sorted run to its final dense location.
//
// The MapReduce comparator lives in internal/baseline/mrsort.
package kvsort

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
	"rstore/internal/workload"
)

// Config tunes a sort run.
type Config struct {
	// Workers is the number of sort workers. Default: one per memory
	// server.
	Workers int
	// WorkerNodes optionally pins workers to nodes.
	WorkerNodes []simnet.NodeID
	// SamplesPerWorker drives splitter quality. Default 128.
	SamplesPerWorker int
	// StripeUnit for the regions. Default 1 MiB.
	StripeUnit uint64
	// Slack oversizes shuffle partitions to absorb skew. Default 1.6.
	Slack float64
	// ChunkRecords is the scan granularity of the shuffle phase. Default
	// 4096 records (400 KB).
	ChunkRecords int
	// PartitionPerRecord is the modeled CPU cost to route one record.
	// Default 25ns.
	PartitionPerRecord time.Duration
	// ComparePerRecord is the modeled per-record-per-level cost of the
	// local sort (cache-efficient radix/merge class). Default 2ns.
	ComparePerRecord time.Duration
	// BarrierCost is the modeled inter-phase barrier. Default 10us.
	BarrierCost time.Duration
}

func (c Config) withDefaults(cluster *core.Cluster) Config {
	if c.Workers <= 0 {
		c.Workers = len(cluster.MemoryServerNodes())
	}
	if c.SamplesPerWorker <= 0 {
		c.SamplesPerWorker = 128
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 1 << 20
	}
	if c.Slack <= 1 {
		c.Slack = 1.6
	}
	if c.ChunkRecords <= 0 {
		c.ChunkRecords = 4096
	}
	if c.PartitionPerRecord <= 0 {
		c.PartitionPerRecord = 25 * time.Nanosecond
	}
	if c.ComparePerRecord <= 0 {
		c.ComparePerRecord = 2 * time.Nanosecond
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = 10 * time.Microsecond
	}
	return c
}

// PhaseStats reports one phase of the pipeline.
type PhaseStats struct {
	// Modeled is the slowest worker's modeled time for the phase.
	Modeled time.Duration
	// Bytes is the one-sided traffic moved in the phase.
	Bytes int64
}

// Result is a completed sort.
type Result struct {
	Records int
	Bytes   int64
	Sample  PhaseStats
	Shuffle PhaseStats
	Sort    PhaseStats
	// Modeled is the end-to-end modeled time including barriers.
	Modeled time.Duration
	// OutputRegion names the region holding the sorted records.
	OutputRegion string
}

// Sorter runs distributed sorts on a cluster.
type Sorter struct {
	cfg     Config
	cluster *core.Cluster
	workers []*sortWorker
}

type sortWorker struct {
	id  int
	cli *client.Client
	buf *client.Buf // chunk scan buffer
	out []*client.Buf
}

// New prepares a sorter with one client per worker.
func New(ctx context.Context, cluster *core.Cluster, cfg Config) (*Sorter, error) {
	cfg = cfg.withDefaults(cluster)
	nodes := cfg.WorkerNodes
	if len(nodes) == 0 {
		nodes = cluster.MemoryServerNodes()
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kvsort: no worker nodes")
	}
	s := &Sorter{cfg: cfg, cluster: cluster}
	for w := 0; w < cfg.Workers; w++ {
		cli, err := cluster.NewClient(ctx, nodes[w%len(nodes)])
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("kvsort: worker %d: %w", w, err)
		}
		chunkBytes := cfg.ChunkRecords * workload.RecordSize
		buf, err := cli.AllocBuf(chunkBytes)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("kvsort: worker %d: %w", w, err)
		}
		wk := &sortWorker{id: w, cli: cli, buf: buf}
		for p := 0; p < cfg.Workers; p++ {
			ob, err := cli.AllocBuf(chunkBytes)
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("kvsort: worker %d: %w", w, err)
			}
			wk.out = append(wk.out, ob)
		}
		s.workers = append(s.workers, wk)
	}
	return s, nil
}

// Close releases the workers' clients.
func (s *Sorter) Close() {
	for _, wk := range s.workers {
		wk.cli.Close()
	}
	s.workers = nil
}

// GenerateInput creates and fills the named input region with records
// (TeraGen equivalent), generated in parallel by all workers.
func (s *Sorter) GenerateInput(ctx context.Context, name string, records int, seed int64) error {
	size := uint64(records) * workload.RecordSize
	if _, err := s.workers[0].cli.Alloc(ctx, name, size, client.AllocOptions{StripeUnit: s.cfg.StripeUnit}); err != nil {
		return fmt.Errorf("kvsort: generate: %w", err)
	}
	gen := workload.NewRecordGen(seed)
	var wg sync.WaitGroup
	errs := make([]error, len(s.workers))
	for i, wk := range s.workers {
		wg.Add(1)
		go func(i int, wk *sortWorker) {
			defer wg.Done()
			reg, err := wk.cli.Map(ctx, name)
			if err != nil {
				errs[i] = err
				return
			}
			lo, hi := workerSlice(records, len(s.workers), i)
			for start := lo; start < hi; start += s.cfg.ChunkRecords {
				n := min(s.cfg.ChunkRecords, hi-start)
				if err := gen.Fill(wk.buf.Bytes(), start, n); err != nil {
					errs[i] = err
					return
				}
				if _, err := reg.WriteAt(ctx, uint64(start)*workload.RecordSize, wk.buf, 0, n*workload.RecordSize); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("kvsort: generate: %w", err)
		}
	}
	return nil
}

// workerSlice splits records into contiguous per-worker ranges.
func workerSlice(records, workers, w int) (lo, hi int) {
	per := records / workers
	rem := records % workers
	lo = w*per + min(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// phaseClock aggregates per-worker modeled phase durations and one-sided
// io intervals.
type phaseClock struct {
	mu    sync.Mutex
	worst time.Duration
	bytes int64
}

func (pc *phaseClock) record(d time.Duration, bytes int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if d > pc.worst {
		pc.worst = d
	}
	pc.bytes += bytes
}

// ioWindow tracks the modeled [firstPost, lastDone] envelope of a batch of
// pipelined one-sided operations. The floor pins the window to the virtual
// time its phase began: an op may carry an earlier posted-time from a QP
// that sat idle through the previous phase, which must not be billed to
// this one.
type ioWindow struct {
	floor simnet.VTime
	first simnet.VTime
	last  simnet.VTime
}

func newIOWindow(floor simnet.VTime) ioWindow { return ioWindow{floor: floor} }

func (w *ioWindow) add(st client.IOStat) {
	if w.first == 0 || st.PostedV < w.first {
		w.first = st.PostedV
	}
	if st.DoneV > w.last {
		w.last = st.DoneV
	}
}

func (w *ioWindow) span() time.Duration {
	from := w.first
	if w.floor > from {
		from = w.floor
	}
	if w.last <= from {
		return 0
	}
	return w.last.Sub(from)
}

// Run sorts the named input region of the given record count. Output
// lands in inputName+".sorted". The input region is left untouched.
func (s *Sorter) Run(ctx context.Context, inputName string, records int) (*Result, error) {
	if records <= 0 {
		return nil, fmt.Errorf("kvsort: no records")
	}
	W := len(s.workers)
	res := &Result{
		Records:      records,
		Bytes:        int64(records) * workload.RecordSize,
		OutputRegion: inputName + ".sorted",
	}

	// Region setup (control path, not part of the sort's phase times to
	// match how sort benchmarks report: TeraSort timings exclude HDFS
	// setup).
	partCap := int(float64(records)/float64(W)*s.cfg.Slack+1) * workload.RecordSize
	shufName := inputName + ".shuffle"
	curName := inputName + ".cursors"
	admin := s.workers[0].cli
	if _, err := admin.Alloc(ctx, shufName, uint64(partCap*W), client.AllocOptions{StripeUnit: s.cfg.StripeUnit}); err != nil {
		return nil, fmt.Errorf("kvsort: %w", err)
	}
	// One 8-byte cursor per partition, spread across servers (stripe unit
	// 8) so FETCH_ADD contention distributes.
	if _, err := admin.Alloc(ctx, curName, uint64(W*8), client.AllocOptions{StripeUnit: 8}); err != nil {
		return nil, fmt.Errorf("kvsort: %w", err)
	}
	if _, err := admin.Alloc(ctx, res.OutputRegion, uint64(records)*workload.RecordSize, client.AllocOptions{StripeUnit: s.cfg.StripeUnit}); err != nil {
		return nil, fmt.Errorf("kvsort: %w", err)
	}

	// Phase 1: sampling.
	splitters, sampleStats, err := s.samplePhase(ctx, inputName, records)
	if err != nil {
		return nil, err
	}
	res.Sample = sampleStats

	// Phase 2: one-sided shuffle.
	shuffleStats, err := s.shufflePhase(ctx, inputName, shufName, curName, records, partCap, splitters)
	if err != nil {
		return nil, err
	}
	res.Shuffle = shuffleStats

	// Phase 3: local sort into the dense output.
	sortStats, err := s.sortPhase(ctx, shufName, curName, res.OutputRegion, partCap)
	if err != nil {
		return nil, err
	}
	res.Sort = sortStats

	res.Modeled = res.Sample.Modeled + res.Shuffle.Modeled + res.Sort.Modeled + 3*s.cfg.BarrierCost
	return res, nil
}

// samplePhase draws keys and derives W-1 splitters.
func (s *Sorter) samplePhase(ctx context.Context, inputName string, records int) ([][]byte, PhaseStats, error) {
	W := len(s.workers)
	var (
		mu   sync.Mutex
		keys [][]byte
		pc   phaseClock
	)
	phase0 := s.cluster.Fabric().VNow()
	var wg sync.WaitGroup
	errs := make([]error, W)
	for i, wk := range s.workers {
		wg.Add(1)
		go func(i int, wk *sortWorker) {
			defer wg.Done()
			reg, err := wk.cli.Map(ctx, inputName)
			if err != nil {
				errs[i] = err
				return
			}
			lo, hi := workerSlice(records, W, i)
			if hi <= lo {
				return
			}
			win := newIOWindow(phase0)
			var bytes int64
			stride := (hi - lo) / s.cfg.SamplesPerWorker
			if stride == 0 {
				stride = 1
			}
			for r := lo; r < hi; r += stride {
				st, err := reg.ReadAt(ctx, uint64(r)*workload.RecordSize, wk.buf, 0, workload.RecordSize)
				if err != nil {
					errs[i] = err
					return
				}
				win.add(st)
				bytes += workload.RecordSize
				key := make([]byte, workload.KeySize)
				copy(key, wk.buf.Bytes()[:workload.KeySize])
				mu.Lock()
				keys = append(keys, key)
				mu.Unlock()
			}
			pc.record(win.span(), bytes)
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, PhaseStats{}, fmt.Errorf("kvsort: sample: %w", err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	splitters := make([][]byte, 0, W-1)
	for p := 1; p < W; p++ {
		splitters = append(splitters, keys[p*len(keys)/W])
	}
	return splitters, PhaseStats{Modeled: pc.worst, Bytes: pc.bytes}, nil
}

// partitionOf routes a key.
func partitionOf(key []byte, splitters [][]byte) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(splitters[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// shufflePhase scans input and deposits records into destination
// partitions with FETCH_ADD-reserved one-sided writes.
func (s *Sorter) shufflePhase(ctx context.Context, inputName, shufName, curName string, records, partCap int, splitters [][]byte) (PhaseStats, error) {
	W := len(s.workers)
	var pc phaseClock
	phase0 := s.cluster.Fabric().VNow()
	var wg sync.WaitGroup
	errs := make([]error, W)
	for i, wk := range s.workers {
		wg.Add(1)
		go func(i int, wk *sortWorker) {
			defer wg.Done()
			in, err := wk.cli.Map(ctx, inputName)
			if err != nil {
				errs[i] = err
				return
			}
			shuf, err := wk.cli.Map(ctx, shufName)
			if err != nil {
				errs[i] = err
				return
			}
			cur, err := wk.cli.Map(ctx, curName)
			if err != nil {
				errs[i] = err
				return
			}

			lo, hi := workerSlice(records, W, i)
			win := newIOWindow(phase0)
			var moved int64
			fill := make([]int, W) // bytes used in each out buffer
			flush := func(p int) error {
				n := fill[p]
				if n == 0 {
					return nil
				}
				fill[p] = 0
				old, st, err := cur.FetchAdd(ctx, uint64(p)*8, uint64(n))
				if err != nil {
					return err
				}
				win.add(st)
				if int(old)+n > partCap {
					return fmt.Errorf("kvsort: partition %d overflow (%d+%d > %d); increase Slack", p, old, n, partCap)
				}
				wst, err := shuf.WriteAt(ctx, uint64(p*partCap)+old, wk.out[p], 0, n)
				if err != nil {
					return err
				}
				win.add(wst)
				moved += int64(n)
				return nil
			}

			for start := lo; start < hi; start += s.cfg.ChunkRecords {
				n := min(s.cfg.ChunkRecords, hi-start)
				st, err := in.ReadAt(ctx, uint64(start)*workload.RecordSize, wk.buf, 0, n*workload.RecordSize)
				if err != nil {
					errs[i] = err
					return
				}
				win.add(st)
				moved += int64(n * workload.RecordSize)
				for r := 0; r < n; r++ {
					rec := wk.buf.Bytes()[r*workload.RecordSize : (r+1)*workload.RecordSize]
					p := partitionOf(workload.Key(rec), splitters)
					if fill[p]+workload.RecordSize > wk.out[p].Len() {
						if err := flush(p); err != nil {
							errs[i] = err
							return
						}
					}
					copy(wk.out[p].Bytes()[fill[p]:], rec)
					fill[p] += workload.RecordSize
				}
			}
			for p := 0; p < W; p++ {
				if err := flush(p); err != nil {
					errs[i] = err
					return
				}
			}
			nrec := hi - lo
			compute := time.Duration(nrec) * s.cfg.PartitionPerRecord
			pc.record(win.span()+compute, moved)
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return PhaseStats{}, fmt.Errorf("kvsort: shuffle: %w", err)
		}
	}
	return PhaseStats{Modeled: pc.worst, Bytes: pc.bytes}, nil
}

// sortPhase sorts each partition locally and writes the dense output.
func (s *Sorter) sortPhase(ctx context.Context, shufName, curName, outName string, partCap int) (PhaseStats, error) {
	W := len(s.workers)

	// Read the cursor table once to learn partition sizes and final bases.
	admin := s.workers[0].cli
	curReg, err := admin.Map(ctx, curName)
	if err != nil {
		return PhaseStats{}, fmt.Errorf("kvsort: sort: %w", err)
	}
	curRaw := make([]byte, W*8)
	if err := curReg.Read(ctx, 0, curRaw); err != nil {
		return PhaseStats{}, fmt.Errorf("kvsort: sort: %w", err)
	}
	sizes := make([]int, W)
	bases := make([]uint64, W+1)
	for p := 0; p < W; p++ {
		sizes[p] = int(binary.LittleEndian.Uint64(curRaw[p*8:]))
		bases[p+1] = bases[p] + uint64(sizes[p])
	}

	var pc phaseClock
	phase0 := s.cluster.Fabric().VNow()
	var wg sync.WaitGroup
	errs := make([]error, W)
	for i, wk := range s.workers {
		wg.Add(1)
		go func(i int, wk *sortWorker) {
			defer wg.Done()
			shuf, err := wk.cli.Map(ctx, shufName)
			if err != nil {
				errs[i] = err
				return
			}
			out, err := wk.cli.Map(ctx, outName)
			if err != nil {
				errs[i] = err
				return
			}
			n := sizes[i]
			if n == 0 {
				return
			}
			part, err := wk.cli.AllocBuf(n)
			if err != nil {
				errs[i] = err
				return
			}
			defer part.Release()
			win := newIOWindow(phase0)
			st, err := shuf.ReadAt(ctx, uint64(i*partCap), part, 0, n)
			if err != nil {
				errs[i] = err
				return
			}
			win.add(st)

			nrec := n / workload.RecordSize
			sortRecords(part.Bytes()[:n])

			wst, err := out.WriteAt(ctx, bases[i], part, 0, n)
			if err != nil {
				errs[i] = err
				return
			}
			win.add(wst)

			levels := 1
			for 1<<levels < nrec {
				levels++
			}
			compute := time.Duration(nrec*levels) * s.cfg.ComparePerRecord
			pc.record(win.span()+compute, int64(2*n))
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return PhaseStats{}, fmt.Errorf("kvsort: sort: %w", err)
		}
	}
	return PhaseStats{Modeled: pc.worst, Bytes: pc.bytes}, nil
}

// sortRecords sorts 100-byte records in place by key.
func sortRecords(buf []byte) {
	n := len(buf) / workload.RecordSize
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra := buf[idx[a]*workload.RecordSize:]
		rb := buf[idx[b]*workload.RecordSize:]
		return bytes.Compare(ra[:workload.KeySize], rb[:workload.KeySize]) < 0
	})
	tmp := make([]byte, len(buf))
	for i, j := range idx {
		copy(tmp[i*workload.RecordSize:(i+1)*workload.RecordSize], buf[j*workload.RecordSize:(j+1)*workload.RecordSize])
	}
	copy(buf, tmp)
}

// Validate checks that the output region is globally sorted and contains
// exactly the expected number of records.
func (s *Sorter) Validate(ctx context.Context, outName string, records int) error {
	cli := s.workers[0].cli
	reg, err := cli.Map(ctx, outName)
	if err != nil {
		return fmt.Errorf("kvsort: validate: %w", err)
	}
	buf := make([]byte, records*workload.RecordSize)
	if err := reg.Read(ctx, 0, buf); err != nil {
		return fmt.Errorf("kvsort: validate: %w", err)
	}
	if !workload.Sorted(buf) {
		return fmt.Errorf("kvsort: output not sorted")
	}
	return nil
}
