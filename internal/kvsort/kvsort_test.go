package kvsort

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rstore/internal/core"
	"rstore/internal/workload"
)

func startCluster(t *testing.T, machines int) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), core.Config{
		Machines:          machines,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestEndToEndSort(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	s, err := New(ctx, c, Config{Workers: 3, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	const records = 20000
	if err := s.GenerateInput(ctx, "sortme", records, 42); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}
	res, err := s.Run(ctx, "sortme", records)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Validate(ctx, res.OutputRegion, records); err != nil {
		t.Fatal(err)
	}
	if res.Records != records || res.Bytes != records*workload.RecordSize {
		t.Errorf("result dims: %+v", res)
	}
	if res.Modeled <= 0 {
		t.Errorf("modeled time = %v", res.Modeled)
	}
	if res.Shuffle.Modeled <= 0 || res.Sort.Modeled <= 0 || res.Sample.Modeled <= 0 {
		t.Errorf("phase times: %+v", res)
	}
	// The shuffle moves every byte at least twice (read input + write
	// partitions, double counted across workers).
	if res.Shuffle.Bytes < int64(records)*workload.RecordSize {
		t.Errorf("shuffle bytes = %d", res.Shuffle.Bytes)
	}
}

// TestSortPreservesMultiset: output must be a permutation of the input.
func TestSortPreservesMultiset(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	s, err := New(ctx, c, Config{Workers: 2, ChunkRecords: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	const records = 5000
	if err := s.GenerateInput(ctx, "perm", records, 7); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}
	res, err := s.Run(ctx, "perm", records)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Regenerate the input locally, sort it, and compare byte-for-byte.
	want := make([]byte, records*workload.RecordSize)
	if err := workload.NewRecordGen(7).Fill(want, 0, records); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	recs := make([][]byte, records)
	for i := range recs {
		recs[i] = want[i*workload.RecordSize : (i+1)*workload.RecordSize]
	}
	sort.SliceStable(recs, func(i, j int) bool { return workload.CompareRecords(recs[i], recs[j]) < 0 })
	ref := make([]byte, 0, len(want))
	for _, r := range recs {
		ref = append(ref, r...)
	}

	cli := s.workers[0].cli
	reg, err := cli.Map(ctx, res.OutputRegion)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	got := make([]byte, records*workload.RecordSize)
	if err := reg.Read(ctx, 0, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Keys must match exactly in sequence. (Values of equal keys may be
	// permuted between distributed and stable local sort; compare keys.)
	for i := 0; i < records; i++ {
		gk := got[i*workload.RecordSize : i*workload.RecordSize+workload.KeySize]
		wk := ref[i*workload.RecordSize : i*workload.RecordSize+workload.KeySize]
		if !bytes.Equal(gk, wk) {
			t.Fatalf("key %d = %x, want %x", i, gk, wk)
		}
	}
}

func TestSortSingleWorker(t *testing.T) {
	c := startCluster(t, 3)
	ctx := context.Background()
	s, err := New(ctx, c, Config{Workers: 1, ChunkRecords: 128})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	const records = 1000
	if err := s.GenerateInput(ctx, "w1", records, 3); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}
	res, err := s.Run(ctx, "w1", records)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Validate(ctx, res.OutputRegion, records); err != nil {
		t.Fatal(err)
	}
}

func TestSortTinyInput(t *testing.T) {
	c := startCluster(t, 4)
	ctx := context.Background()
	s, err := New(ctx, c, Config{Workers: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	const records = 5 // fewer records than workers
	if err := s.GenerateInput(ctx, "tiny", records, 3); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}
	res, err := s.Run(ctx, "tiny", records)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Validate(ctx, res.OutputRegion, records); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoRecords(t *testing.T) {
	c := startCluster(t, 3)
	s, err := New(context.Background(), c, Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), "none", 0); err == nil {
		t.Error("zero records must fail")
	}
}

func TestWorkerSlice(t *testing.T) {
	tests := []struct {
		records, workers int
	}{
		{100, 4}, {7, 3}, {3, 5}, {1, 1},
	}
	for _, tt := range tests {
		total := 0
		prevHi := 0
		for w := 0; w < tt.workers; w++ {
			lo, hi := workerSlice(tt.records, tt.workers, w)
			if lo != prevHi {
				t.Errorf("records=%d workers=%d w=%d: lo=%d, want %d", tt.records, tt.workers, w, lo, prevHi)
			}
			total += hi - lo
			prevHi = hi
		}
		if total != tt.records {
			t.Errorf("records=%d workers=%d: covered %d", tt.records, tt.workers, total)
		}
	}
}

func TestPartitionOf(t *testing.T) {
	splitters := [][]byte{{0x40}, {0x80}, {0xc0}}
	tests := []struct {
		key  byte
		want int
	}{
		{0x00, 0}, {0x3f, 0}, {0x40, 1}, {0x7f, 1}, {0x80, 2}, {0xc0, 3}, {0xff, 3},
	}
	for _, tt := range tests {
		if got := partitionOf([]byte{tt.key}, splitters); got != tt.want {
			t.Errorf("partitionOf(%#x) = %d, want %d", tt.key, got, tt.want)
		}
	}
	if got := partitionOf([]byte{0x50}, nil); got != 0 {
		t.Errorf("no splitters: %d", got)
	}
}

func TestSortRecords(t *testing.T) {
	buf := make([]byte, 100*workload.RecordSize)
	if err := workload.NewRecordGen(9).Fill(buf, 0, 100); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	sortRecords(buf)
	if !workload.Sorted(buf) {
		t.Error("sortRecords left records unsorted")
	}
}

// Property: sortRecords yields sorted output and preserves the key
// multiset for arbitrary record counts and seeds.
func TestSortRecordsProperty(t *testing.T) {
	fn := func(nRaw uint8, seed int64) bool {
		n := int(nRaw)%64 + 1
		buf := make([]byte, n*workload.RecordSize)
		if err := workload.NewRecordGen(seed).Fill(buf, 0, n); err != nil {
			return false
		}
		before := keyMultiset(buf)
		sortRecords(buf)
		return workload.Sorted(buf) && keysEqual(before, keyMultiset(buf))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func keyMultiset(buf []byte) []string {
	n := len(buf) / workload.RecordSize
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = string(buf[i*workload.RecordSize : i*workload.RecordSize+workload.KeySize])
	}
	sort.Strings(out)
	return out
}

func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShuffleOverflowReportsSlack(t *testing.T) {
	// With pathological slack, a skewed run must fail with the documented
	// overflow error instead of corrupting neighbouring partitions.
	c := startCluster(t, 4)
	ctx := context.Background()
	s, err := New(ctx, c, Config{Workers: 3, Slack: 1.0001, SamplesPerWorker: 2, ChunkRecords: 128})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	const records = 30000
	if err := s.GenerateInput(ctx, "skew", records, 13); err != nil {
		t.Fatalf("GenerateInput: %v", err)
	}
	_, err = s.Run(ctx, "skew", records)
	if err == nil {
		// Splitters can occasionally be balanced enough even with 2
		// samples; only assert the message when it does fail.
		t.Skip("run balanced despite minimal sampling")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want partition overflow", err)
	}
}
