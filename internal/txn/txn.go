// Package txn builds optimistic multi-key transactions from RStore's
// one-sided verbs — reads, writes, and RDMA atomics — with no server-side
// transaction code at all, the composition PAPERS.md's Storm argues
// one-sided remote data structures need.
//
// A Space interprets a region as an array of fixed-size cells, each
// headed by an 8-byte version/lock word (see word.go), plus a companion
// log region holding one redo-record slot per owner. A transaction reads
// cells optimistically (capturing versions), buffers writes locally, and
// commits in four one-sided rounds:
//
//  1. record — the write set (cells, expected versions, new bytes) and a
//     PENDING status land in the owner's log slot in one write;
//  2. lock   — every write-set cell's word is claimed by CMP_SWAP
//     (expected version → lock word), all CASes in flight at once;
//  3. decide — the read set is re-validated, then the status word CASes
//     PENDING→COMMITTED: the commit point;
//  4. install — every cell is published whole (new version word + body),
//     which is also the unlock.
//
// A transaction whose client dies mid-commit leaves locks behind; any
// later transaction that watches the same lock word sit still for the
// stale-lock window resolves it through the owner's log record — rolling
// the transaction forward when the status says COMMITTED and backward
// otherwise (see recover.go). Single-cell transactions skip the log
// entirely: their lock word embeds the prior version, making them
// recoverable in place at plain-seqlock cost.
package txn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rstore/internal/client"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Package errors.
var (
	// ErrContended reports that a transaction kept aborting (or a read
	// kept finding its cell locked) through every retry; the operation
	// can simply be retried.
	ErrContended = errors.New("txn: retries exhausted")
	// ErrTooLarge reports a write set that does not fit the owner's log
	// record, or a body that does not fit its cell.
	ErrTooLarge = errors.New("txn: write set too large")
	// ErrBadGeometry reports inconsistent sizing options.
	ErrBadGeometry = errors.New("txn: bad geometry")
	// ErrReadOnly reports a Write inside a RunReadTx transaction.
	ErrReadOnly = errors.New("txn: write in read-only transaction")

	// errAborted is the internal retryable verdict: a lock CAS lost, a
	// read validation failed, or a breaker aborted us. RunTx retries it
	// with backoff; it never escapes.
	errAborted = errors.New("txn: aborted")
)

// Options tunes a transaction space.
type Options struct {
	// Cells is the cell count. Default 1024.
	Cells int
	// CellSize is the fixed cell size including its 8-byte word; a
	// multiple of 8, at least 16. Default 64.
	CellSize int
	// StripeUnit for both backing regions; must be a multiple of CellSize
	// and LogSlotSize so no word ever straddles servers. Default 64 KiB.
	StripeUnit uint64
	// Owners is the number of log slots (the maximum number of
	// concurrently open handles). Default 64, maximum 256.
	Owners int
	// Owner pins the handle to log slot Owner-1; 0 auto-claims the next
	// free slot via FETCH_ADD on the claim header. Handles opened beyond
	// Owners wrap around and collide — auto-claim more handles than
	// Owners at your peril.
	Owner int
	// LogSlotSize bounds one transaction's redo record. Default 4096.
	LogSlotSize int
	// MaxWriteSet caps cells written per transaction; clamped to what a
	// log record can hold. Default 16.
	MaxWriteSet int
	// Retry governs transaction retries after aborts: MaxAttempts commit
	// attempts with the policy's capped, jittered backoff between them.
	Retry client.RetryPolicy
	// ReadRetries bounds how long a validated read waits out a locked
	// cell before giving up with ErrContended. Default 64.
	ReadRetries int
	// StaleLockTimeout is the virtual-time window after which a lock word
	// observed unchanged is presumed orphaned and broken via the owner's
	// log. Owners self-abort commits that outlive half the window, the
	// lease-style discipline that keeps breaking sound. Default 500µs.
	StaleLockTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Cells <= 0 {
		o.Cells = 1024
	}
	if o.CellSize <= 0 {
		o.CellSize = 64
	}
	if o.StripeUnit == 0 {
		o.StripeUnit = 64 << 10
	}
	if o.Owners <= 0 {
		o.Owners = 64
	}
	if o.LogSlotSize <= 0 {
		o.LogSlotSize = 4096
	}
	if o.MaxWriteSet <= 0 {
		o.MaxWriteSet = 16
	}
	if o.ReadRetries <= 0 {
		o.ReadRetries = 64
	}
	if o.StaleLockTimeout <= 0 {
		o.StaleLockTimeout = 500 * time.Microsecond
	}
	return o
}

func (o Options) check() error {
	if o.CellSize < 16 || o.CellSize%8 != 0 {
		return fmt.Errorf("%w: cell size %d", ErrBadGeometry, o.CellSize)
	}
	if o.StripeUnit%uint64(o.CellSize) != 0 {
		return fmt.Errorf("%w: stripe %d not a multiple of cell %d", ErrBadGeometry, o.StripeUnit, o.CellSize)
	}
	if o.StripeUnit%uint64(o.LogSlotSize) != 0 {
		return fmt.Errorf("%w: stripe %d not a multiple of log slot %d", ErrBadGeometry, o.StripeUnit, o.LogSlotSize)
	}
	if o.Owners > 256 {
		return fmt.Errorf("%w: %d owners > 256 (lock words carry 8 owner bits)", ErrBadGeometry, o.Owners)
	}
	if o.Owner < 0 || o.Owner > o.Owners {
		return fmt.Errorf("%w: owner %d outside 1..%d", ErrBadGeometry, o.Owner, o.Owners)
	}
	if recordCapacity(o.LogSlotSize, o.CellSize) < 1 {
		return fmt.Errorf("%w: log slot %d too small for one %d-byte cell entry", ErrBadGeometry, o.LogSlotSize, o.CellSize)
	}
	return nil
}

// sighting tracks one locked word so staleness is judged across distinct
// observations: a lock is presumed orphaned only after the same word is
// seen again at least StaleLockTimeout of virtual time later. Requiring
// two sightings keeps a frontier jump (a failover wait, a latency storm)
// from maturing a lock in one step.
type sighting struct {
	word   uint64
	firstV simnet.VTime
}

// txnCounters is the layer's telemetry.
type txnCounters struct {
	commits     *telemetry.Counter
	roCommits   *telemetry.Counter // validate-only commits (no log, no locks)
	aborts      *telemetry.Counter
	lockBreaks  *telemetry.Counter // stale locks this handle broke
	locksBroken *telemetry.Counter // our locks a breaker resolved for us
	commitLat   *telemetry.Histogram
}

// Space is one client's handle onto a shared transactional cell array.
// Handles are NOT safe for concurrent use — open one per worker; handles
// on different machines (each with its own log slot) share the data.
type Space struct {
	cli    *client.Client
	data   *client.Region
	log    *client.Region
	opts   Options
	owner  int    // log slot index
	incarn uint64 // claimed at Open; stale locks from prior incarnations are breakable
	seq    uint64 // transaction sequence within this incarnation

	cellBuf  *client.Buf // validated-read scratch, one cell
	wordBuf  *client.Buf // seqlock double-check scratch
	recBuf   *client.Buf // own record staging
	breakBuf *client.Buf // peer record inspection
	recovBuf *client.Buf // own-slot recovery; breakBuf may be live then
	pubBuf   *client.Buf // install staging, MaxWriteSet cells
	valBuf   *client.Buf // read-set validation words

	ctr    txnCounters
	tracer *telemetry.Tracer
	rng    *rand.Rand

	sight map[int]sighting

	// unclean is set when a commit attempt may have left locks behind
	// that abandonAttempt could not confirm released (an IO failure, or a
	// FailPoint cut). The next multi-key commit re-resolves the owner's
	// log slot before overwriting it: a slot record may only be reused
	// once its transaction's locks are resolvable without it.
	unclean bool

	// FailPoint, when set, is consulted after each commit stage; a
	// non-nil return makes the commit stop dead — no unlock, no cleanup —
	// exactly as if the client died there. Installs run sequentially
	// while armed so StageInstalled means "first cell only". Chaos and
	// fuzz harnesses use it; production code must leave it nil.
	FailPoint func(stage CommitStage) error
}

// CommitStage names the points FailPoint is consulted at.
type CommitStage int

const (
	// StageRecord: the redo record and PENDING status are published.
	StageRecord CommitStage = iota
	// StageLocked: every write-set lock is held.
	StageLocked
	// StageDecided: the status word CASed to COMMITTED.
	StageDecided
	// StageInstalled: the first cell's publish landed (remaining cells
	// are not yet installed when FailPoint is armed).
	StageInstalled
)

func (s CommitStage) String() string {
	switch s {
	case StageRecord:
		return "record"
	case StageLocked:
		return "locked"
	case StageDecided:
		return "decided"
	case StageInstalled:
		return "installed"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// logName derives the companion log region's name.
func logName(name string) string { return name + ".txnlog" }

// Create allocates the cell and log regions and opens a handle. Other
// clients use Open.
func Create(ctx context.Context, cli *client.Client, name string, opts Options) (*Space, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	size := uint64(opts.Cells) * uint64(opts.CellSize)
	if _, err := cli.Alloc(ctx, name, size, client.AllocOptions{StripeUnit: opts.StripeUnit}); err != nil {
		return nil, fmt.Errorf("txn create: %w", err)
	}
	logSize := uint64(opts.Owners+1) * uint64(opts.LogSlotSize)
	if _, err := cli.Alloc(ctx, logName(name), logSize, client.AllocOptions{StripeUnit: opts.StripeUnit}); err != nil {
		return nil, fmt.Errorf("txn create log: %w", err)
	}
	return Open(ctx, cli, name, opts)
}

// Open maps an existing space, claims an owner log slot and a fresh
// incarnation, and self-recovers any transaction a prior incarnation of
// the slot left dangling.
func Open(ctx context.Context, cli *client.Client, name string, opts Options) (*Space, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	data, err := cli.Map(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("txn open: %w", err)
	}
	if data.Size() != uint64(opts.Cells)*uint64(opts.CellSize) {
		return nil, fmt.Errorf("%w: region %d bytes != %d cells x %d", ErrBadGeometry, data.Size(), opts.Cells, opts.CellSize)
	}
	log, err := cli.Map(ctx, logName(name))
	if err != nil {
		return nil, fmt.Errorf("txn open log: %w", err)
	}
	if log.Size() != uint64(opts.Owners+1)*uint64(opts.LogSlotSize) {
		return nil, fmt.Errorf("%w: log region %d bytes != %d slots x %d", ErrBadGeometry, log.Size(), opts.Owners+1, opts.LogSlotSize)
	}

	if opts.MaxWriteSet > recordCapacity(opts.LogSlotSize, opts.CellSize) {
		opts.MaxWriteSet = recordCapacity(opts.LogSlotSize, opts.CellSize)
	}
	tel := cli.Telemetry()
	sp := &Space{
		cli:  cli,
		data: data,
		log:  log,
		opts: opts,
		ctr: txnCounters{
			commits:     tel.Counter("txn.commits"),
			roCommits:   tel.Counter("txn.readonly_commits"),
			aborts:      tel.Counter("txn.aborts"),
			lockBreaks:  tel.Counter("txn.lock_breaks"),
			locksBroken: tel.Counter("txn.locks_broken"),
			commitLat:   tel.Histogram("txn.commit_latency"),
		},
		tracer: tel.Tracer(),
		sight:  make(map[int]sighting),
	}
	for _, b := range []struct {
		dst **client.Buf
		n   int
	}{
		{&sp.cellBuf, opts.CellSize},
		{&sp.wordBuf, 8},
		{&sp.recBuf, opts.LogSlotSize},
		{&sp.breakBuf, opts.LogSlotSize},
		{&sp.recovBuf, opts.LogSlotSize},
		{&sp.pubBuf, opts.MaxWriteSet * opts.CellSize},
		{&sp.valBuf, 8 * valChunk},
	} {
		buf, err := cli.AllocBuf(b.n)
		if err != nil {
			return nil, fmt.Errorf("txn open: %w", err)
		}
		*b.dst = buf
	}

	if opts.Owner > 0 {
		sp.owner = opts.Owner - 1
	} else {
		claimed, _, err := log.FetchAdd(ctx, 0, 1)
		if err != nil {
			return nil, fmt.Errorf("txn open: claim owner: %w", err)
		}
		sp.owner = int(claimed % uint64(opts.Owners))
	}
	prev, _, err := log.FetchAdd(ctx, sp.slotOff(sp.owner), 1)
	if err != nil {
		return nil, fmt.Errorf("txn open: claim incarnation: %w", err)
	}
	sp.incarn = prev + 1

	// Decorrelate retry jitter across handles even when they share a Seed.
	sp.rng = rand.New(rand.NewSource(opts.Retry.Seed ^ int64(sp.owner)<<16 ^ int64(sp.incarn)))

	if err := sp.recoverOwnSlot(ctx); err != nil {
		return nil, fmt.Errorf("txn open: recover slot %d: %w", sp.owner, err)
	}
	return sp, nil
}

// Close unmaps the space's regions (the regions themselves persist).
func (sp *Space) Close(ctx context.Context) error {
	err := sp.data.Unmap(ctx)
	if lerr := sp.log.Unmap(ctx); err == nil {
		err = lerr
	}
	return err
}

// Cells returns the cell count.
func (sp *Space) Cells() int { return sp.opts.Cells }

// BodySize returns the usable bytes per cell (CellSize minus the word).
func (sp *Space) BodySize() int { return sp.opts.CellSize - 8 }

// Owner returns the handle's log slot index.
func (sp *Space) Owner() int { return sp.owner }

// Generation returns the data region's layout generation as currently
// mapped. Client-side caches built over a space (the ordered index's node
// cache) compare it across operations: a bump means the repair plane moved
// extents and every cached body is suspect.
func (sp *Space) Generation() uint64 { return sp.data.Generation() }

// Incarnation returns the handle's claimed incarnation.
func (sp *Space) Incarnation() uint64 { return sp.incarn }

// VNow returns the client's virtual-time cursor (test harnesses and
// benches timestamp history events with it).
func (sp *Space) VNow() simnet.VTime { return sp.vnow() }

func (sp *Space) cellOff(cell int) uint64 {
	return uint64(cell) * uint64(sp.opts.CellSize)
}

func (sp *Space) checkCell(cell int) error {
	if cell < 0 || cell >= sp.opts.Cells {
		return fmt.Errorf("%w: cell %d outside 0..%d", ErrBadGeometry, cell, sp.opts.Cells-1)
	}
	return nil
}

// ReadCell performs one validated (seqlock-style) read: the cell is
// fetched whole, then its word re-read; a stable, unlocked pair is
// returned. Locked cells are waited out with capped backoff — and broken
// through the owner's log once the stale window matures. The returned
// body is owned by the caller.
func (sp *Space) ReadCell(ctx context.Context, cell int) (version uint64, body []byte, err error) {
	if err := sp.checkCell(cell); err != nil {
		return 0, nil, err
	}
	for retry := 0; retry < sp.opts.ReadRetries; retry++ {
		if _, err := sp.data.ReadAt(ctx, sp.cellOff(cell), sp.cellBuf, 0, sp.opts.CellSize); err != nil {
			return 0, nil, ctxErr(ctx, err)
		}
		w := le64(sp.cellBuf.Bytes())
		if !wordLocked(w) {
			if _, err := sp.data.ReadAt(ctx, sp.cellOff(cell), sp.wordBuf, 0, 8); err != nil {
				return 0, nil, ctxErr(ctx, err)
			}
			if le64(sp.wordBuf.Bytes()) == w {
				sp.clearSight(cell)
				return w, append([]byte(nil), sp.cellBuf.Bytes()[8:]...), nil
			}
		} else {
			sp.maybeBreak(ctx, cell, w)
		}
		if err := sp.backoff(ctx, retry); err != nil {
			return 0, nil, err
		}
	}
	if ctx.Err() != nil {
		return 0, nil, ctx.Err()
	}
	return 0, nil, fmt.Errorf("%w: cell %d", ErrContended, cell)
}

// ReadCellVersion fetches only a cell's version word — one 8-byte wire
// read, no body, no seqlock re-check, no lock waiting. The word is
// returned exactly as read, lock bits included, so a caller comparing it
// against a previously captured version must treat any mismatch
// (including an in-flight lock word) as "the cell may have changed".
// Client-side caches use this to revalidate a cached body for the price
// of a word instead of re-fetching the cell.
func (sp *Space) ReadCellVersion(ctx context.Context, cell int) (uint64, error) {
	if err := sp.checkCell(cell); err != nil {
		return 0, err
	}
	if _, err := sp.data.ReadAt(ctx, sp.cellOff(cell), sp.wordBuf, 0, 8); err != nil {
		return 0, ctxErr(ctx, err)
	}
	return le64(sp.wordBuf.Bytes()), nil
}

// backoff waits before re-examining a contended cell: the first few
// retries spin (a writer's critical section is a handful of one-sided
// ops), then the wait doubles from 5µs to a 320µs cap. It surfaces
// ctx.Err() the moment the caller's context is done, so contended
// operations never grind through dead retries.
func (sp *Space) backoff(ctx context.Context, retry int) error {
	if retry < 8 {
		return ctx.Err()
	}
	shift := retry - 8
	if shift > 6 {
		shift = 6
	}
	t := time.NewTimer(5 * time.Microsecond << shift)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// vnow returns the client's virtual-time cursor.
func (sp *Space) vnow() simnet.VTime { return sp.cli.VNow() }

// ctxErr surfaces the caller's cancellation as ctx.Err() instead of
// whatever wrapped IO error the aborted operation produced — callers
// cancelling mid-retry should see their own deadline, not ErrContended
// or an opaque transport error.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
