package txn

import (
	"context"

	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// commitTrace is a commit's tracing decision: a txn.commit envelope span
// with one child span per protocol phase, threaded into the client ops
// each phase issues via the context so the assembled trace shows the full
// tree — txn.commit → txn.lock → client.atomic → io.atomic.
type commitTrace struct {
	sp     *Space
	id     telemetry.TraceID
	env    telemetry.SpanID
	parent telemetry.SpanID
	startV simnet.VTime
}

// startCommitTrace joins the caller's trace when the context carries one,
// otherwise consults head sampling. The returned context carries the
// envelope span so nested ops parent under it.
func (sp *Space) startCommitTrace(ctx context.Context) (commitTrace, context.Context) {
	ct := commitTrace{sp: sp}
	if id := telemetry.TraceFrom(ctx); id != 0 {
		ct.id = id
		ct.parent = telemetry.SpanFrom(ctx)
	} else if id, ok := sp.tracer.NewTrace(); ok {
		ct.id = id
	} else {
		return ct, ctx
	}
	ct.env = sp.tracer.NewSpan()
	ct.startV = sp.vnow()
	return ct, telemetry.WithSpan(ctx, ct.id, ct.env)
}

// phase runs fn under a named child span (a no-op wrapper when the commit
// is untraced).
func (ct commitTrace) phase(ctx context.Context, name string, fn func(ctx context.Context) error) error {
	if ct.id == 0 {
		return fn(ctx)
	}
	span := telemetry.Span{
		Trace:  ct.id,
		ID:     ct.sp.tracer.NewSpan(),
		Parent: ct.env,
		Name:   name,
		StartV: ct.sp.vnow(),
	}
	err := fn(telemetry.WithSpan(ctx, ct.id, span.ID))
	span.EndV = ct.sp.vnow()
	if err != nil {
		span.Err = err.Error()
	}
	ct.sp.tracer.Record(span)
	return err
}

// finish records the txn.commit envelope.
func (ct commitTrace) finish(err error) {
	if ct.id == 0 {
		return
	}
	span := telemetry.Span{
		Trace:  ct.id,
		ID:     ct.env,
		Parent: ct.parent,
		Name:   "txn.commit",
		StartV: ct.startV,
		EndV:   ct.sp.vnow(),
	}
	if err != nil {
		span.Err = err.Error()
	}
	ct.sp.tracer.Record(span)
}
