package txn_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"rstore/internal/txn"
)

// TestReadOnlyTxTouchesNoLogOrLocks is the read-only fast path's
// contract: a validate-only commit issues reads only — no log-slot
// record, no lock CAS, no install — so the wire sees zero writes and
// zero atomics, and the log region's bytes are untouched.
func TestReadOnlyTxTouchesNoLogOrLocks(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "ro", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(1, []byte("alpha")); err != nil {
			return err
		}
		return tx.Write(2, []byte("beta"))
	}); err != nil {
		t.Fatalf("seed RunTx: %v", err)
	}

	// Observe the raw log region through a second client so the
	// snapshot reads don't pollute the counters under test.
	cli2, err := c.NewClient(ctx, c.MemoryServerNodes()[1])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	logRegion, err := cli2.Map(ctx, "ro.txnlog")
	if err != nil {
		t.Fatalf("Map log: %v", err)
	}
	logBefore := make([]byte, logRegion.Size())
	if err := logRegion.Read(ctx, 0, logBefore); err != nil {
		t.Fatalf("log snapshot: %v", err)
	}

	tel := cli.Telemetry()
	writes := tel.Counter("client.writes")
	atomics := tel.Counter("client.atomics")
	roCommits := tel.Counter("txn.readonly_commits")
	writesBefore, atomicsBefore, roBefore := writes.Value(), atomics.Value(), roCommits.Value()

	for i := 0; i < 10; i++ {
		err := sp.RunReadTx(ctx, func(tx *txn.Tx) error {
			a, err := tx.Read(ctx, 1)
			if err != nil {
				return err
			}
			b, err := tx.Read(ctx, 2)
			if err != nil {
				return err
			}
			a = bytes.TrimRight(a, "\x00")
			b = bytes.TrimRight(b, "\x00")
			if !bytes.Equal(a, []byte("alpha")) || !bytes.Equal(b, []byte("beta")) {
				t.Fatalf("snapshot read %q/%q", a, b)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("RunReadTx %d: %v", i, err)
		}
	}

	if d := writes.Value() - writesBefore; d != 0 {
		t.Errorf("read-only commits issued %d wire writes, want 0", d)
	}
	if d := atomics.Value() - atomicsBefore; d != 0 {
		t.Errorf("read-only commits issued %d atomics (lock CAS?), want 0", d)
	}
	if d := roCommits.Value() - roBefore; d != 10 {
		t.Errorf("txn.readonly_commits moved by %d, want 10", d)
	}

	logAfter := make([]byte, logRegion.Size())
	if err := logRegion.Read(ctx, 0, logAfter); err != nil {
		t.Fatalf("log re-read: %v", err)
	}
	if !bytes.Equal(logBefore, logAfter) {
		t.Error("log region bytes changed across read-only commits")
	}
}

// TestReadOnlyTxRejectsWrites: Write inside RunReadTx fails with
// ErrReadOnly and nothing commits.
func TestReadOnlyTxRejectsWrites(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "rowr", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	err = sp.RunReadTx(ctx, func(tx *txn.Tx) error {
		return tx.Write(1, []byte("nope"))
	})
	if !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("Write in RunReadTx: %v, want ErrReadOnly", err)
	}
	v, body, err := sp.ReadCell(ctx, 1)
	if err != nil || v != 0 || len(bytes.TrimRight(body, "\x00")) != 0 {
		t.Fatalf("cell 1 mutated: v=%d body=%q err=%v", v, body, err)
	}
}

// TestReadOnlyTxValidatesSnapshot: a concurrent write between a
// read-only transaction's reads aborts validation and the retry sees a
// consistent snapshot.
func TestReadOnlyTxValidatesSnapshot(t *testing.T) {
	c := startCluster(t)
	ctx := context.Background()
	cliA, cliB := newClient(t, c), newClient(t, c)
	optsA := testOptions()
	optsA.Owner = 1
	spA, err := txn.Create(ctx, cliA, "roval", optsA)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	optsB := testOptions()
	optsB.Owner = 2
	spB, err := txn.Open(ctx, cliB, "roval", optsB)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Invariant the writer maintains: cells 1 and 2 always hold the
	// same value.
	put := func(sp *txn.Space, v string) {
		t.Helper()
		if err := sp.RunTx(ctx, func(tx *txn.Tx) error {
			if err := tx.Write(1, []byte(v)); err != nil {
				return err
			}
			return tx.Write(2, []byte(v))
		}); err != nil {
			t.Fatalf("put %q: %v", v, err)
		}
	}
	put(spA, "v1")

	aborts := cliA.Telemetry().Counter("txn.aborts")
	abortsBefore := aborts.Value()
	attempt := 0
	lastTorn := false
	err = spA.RunReadTx(ctx, func(tx *txn.Tx) error {
		attempt++
		a, err := tx.Read(ctx, 1)
		if err != nil {
			return err
		}
		if attempt == 1 {
			put(spB, "v2") // invalidate A's snapshot mid-flight
		}
		b, err := tx.Read(ctx, 2)
		if err != nil {
			return err
		}
		// An attempt may OBSERVE the tear — validation's job is to
		// refuse to commit it.
		lastTorn = !bytes.Equal(a, b)
		return nil
	})
	if err != nil {
		t.Fatalf("RunReadTx: %v", err)
	}
	if lastTorn {
		t.Fatal("a torn snapshot survived validation and committed")
	}
	if attempt < 2 {
		t.Fatalf("validation let a stale first attempt commit (attempts=%d)", attempt)
	}
	if aborts.Value() == abortsBefore {
		t.Error("txn.aborts never moved despite the forced conflict")
	}
}
