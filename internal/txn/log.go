package txn

import (
	"encoding/binary"
	"fmt"
)

// Owner log layout. The log region holds one claim header slot followed
// by one slot per owner:
//
//	slot 0                      [0,8) owner auto-claim counter (FETCH_ADD)
//	slot 1+i (owner i)          [0,8)  incarnation counter (FETCH_ADD)
//	                            [8,16) status word
//	                            [16,…) record body
//
// A record body is:
//
//	u16 count, then per entry: u32 cell, u64 expect, u16 bodyLen, body
//
// The status word and body are published in a single one-sided write
// (they never straddle a stripe boundary because LogSlotSize divides
// StripeUnit), so a reader that observes a status matching a lock word is
// guaranteed a complete record behind it.
const (
	logStatusOff = 8
	logRecordOff = 16
	entryHeader  = 4 + 8 + 2
)

// entry is one cell's share of a staged write set.
type entry struct {
	cell   int
	expect uint64 // the unlocked word the lock CAS replaced
	body   []byte // the bytes a committed transaction installs
}

func (sp *Space) slotOff(owner int) uint64 {
	return uint64(owner+1) * uint64(sp.opts.LogSlotSize)
}

// encodeRecord lays status+body into buf (status first, as stored at
// [logStatusOff,…) of the slot) and returns the total byte length.
func encodeRecord(buf []byte, status uint64, entries []entry) int {
	binary.LittleEndian.PutUint64(buf, status)
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(entries)))
	off := 10
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.cell))
		binary.LittleEndian.PutUint64(buf[off+4:], e.expect)
		binary.LittleEndian.PutUint16(buf[off+12:], uint16(len(e.body)))
		copy(buf[off+entryHeader:], e.body)
		off += entryHeader + len(e.body)
	}
	return off
}

// decodeRecord parses a slot image read from [logStatusOff,…). The
// returned entries alias buf.
func decodeRecord(buf []byte) (status uint64, entries []entry, err error) {
	if len(buf) < 10 {
		return 0, nil, fmt.Errorf("txn: short record (%d bytes)", len(buf))
	}
	status = binary.LittleEndian.Uint64(buf)
	n := int(binary.LittleEndian.Uint16(buf[8:]))
	off := 10
	for i := 0; i < n; i++ {
		if off+entryHeader > len(buf) {
			return status, nil, fmt.Errorf("txn: truncated record entry %d", i)
		}
		e := entry{
			cell:   int(binary.LittleEndian.Uint32(buf[off:])),
			expect: binary.LittleEndian.Uint64(buf[off+4:]),
		}
		bl := int(binary.LittleEndian.Uint16(buf[off+12:]))
		if off+entryHeader+bl > len(buf) {
			return status, nil, fmt.Errorf("txn: truncated record body %d", i)
		}
		e.body = buf[off+entryHeader : off+entryHeader+bl]
		entries = append(entries, e)
		off += entryHeader + bl
	}
	return status, entries, nil
}

// recordCapacity returns how many full-size entries fit one log slot.
func recordCapacity(logSlotSize, cellSize int) int {
	return (logSlotSize - logRecordOff - 2) / (entryHeader + cellSize - 8)
}
