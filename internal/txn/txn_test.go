package txn_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/txn"
	"rstore/internal/txn/txntest"
)

func startCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), core.Config{
		Machines:          4,
		ServerCapacity:    32 << 20,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *core.Cluster) *client.Client {
	t.Helper()
	cli, err := c.NewClient(context.Background(), c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return cli
}

// testOptions keeps unit-test spaces small and recovery windows short so
// stale locks mature within a few read retries of modeled time.
func testOptions() txn.Options {
	return txn.Options{
		Cells:            64,
		CellSize:         64,
		StaleLockTimeout: 20 * time.Microsecond,
		ReadRetries:      256,
		Retry:            client.RetryPolicy{MaxAttempts: 32, BaseDelay: 2 * time.Microsecond, MaxDelay: 64 * time.Microsecond, Multiplier: 2, Jitter: 0.2, Seed: 1},
	}
}

func TestTxnReadWriteBasic(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "basic", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Multi-cell commit.
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(1, []byte("one")); err != nil {
			return err
		}
		return tx.Write(2, []byte("two"))
	})
	if err != nil {
		t.Fatalf("RunTx write: %v", err)
	}

	// A transaction sees its own writes before commit.
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(3, []byte("three")); err != nil {
			return err
		}
		b, err := tx.Read(ctx, 3)
		if err != nil {
			return err
		}
		if string(b) != "three" {
			return fmt.Errorf("read own write = %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunTx own-write: %v", err)
	}

	for cell, want := range map[int]string{1: "one", 2: "two", 3: "three"} {
		v, body, err := sp.ReadCell(ctx, cell)
		if err != nil {
			t.Fatalf("ReadCell(%d): %v", cell, err)
		}
		if v == 0 {
			t.Errorf("cell %d: version still 0 after commit", cell)
		}
		if !bytes.Equal(bytes.TrimRight(body, "\x00"), []byte(want)) {
			t.Errorf("cell %d = %q, want %q", cell, body, want)
		}
	}

	// A never-written cell reads as version 0.
	v, _, err := sp.ReadCell(ctx, 9)
	if err != nil || v != 0 {
		t.Errorf("empty cell: v=%d err=%v", v, err)
	}
}

func TestTxnValidationAbortsStaleRead(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "stale", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	opts := testOptions()
	opts.Owner = 2
	sp2, err := txn.Open(ctx, cli, "stale", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// sp reads cell 0, then sp2 updates it under sp's feet; sp's commit
	// writing elsewhere must abort and retry against the fresh value.
	attempts := 0
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		attempts++
		if _, err := tx.Read(ctx, 0); err != nil {
			return err
		}
		if attempts == 1 {
			if werr := sp2.RunTx(ctx, func(tx2 *txn.Tx) error {
				return tx2.Write(0, []byte("interloper"))
			}); werr != nil {
				return fmt.Errorf("interloper: %w", werr)
			}
		}
		return tx.Write(1, []byte("dependent"))
	})
	if err != nil {
		t.Fatalf("RunTx: %v", err)
	}
	if attempts < 2 {
		t.Errorf("commit succeeded in %d attempts; stale read was not detected", attempts)
	}
}

func TestTxnBankConcurrent(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	const (
		accounts  = 8
		workers   = 4
		transfers = 40
		initial   = int64(1000)
	)
	sp, err := txn.Create(ctx, cli, "bank", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := txntest.SetupBank(ctx, sp, accounts, initial); err != nil {
		t.Fatalf("SetupBank: %v", err)
	}

	h := txntest.NewHistory(c.Fabric().VNow)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 1; w <= workers; w++ {
		wsp, err := txn.Open(ctx, cli, "bank", testOptions())
		if err != nil {
			t.Fatalf("Open worker %d: %v", w, err)
		}
		wg.Add(1)
		go func(w int, wsp *txn.Space) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				if i%10 == 9 {
					if err := txntest.Snapshot(ctx, wsp, h, w, i, accounts); err != nil {
						errs <- err
						return
					}
					continue
				}
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				for to == from {
					to = rng.Intn(accounts)
				}
				if err := txntest.Transfer(ctx, wsp, h, w, i, from, to, int64(rng.Intn(50)+1), nil); err != nil {
					errs <- err
					return
				}
			}
		}(w, wsp)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker: %v", err)
	}

	final, err := txntest.Sweep(ctx, sp, accounts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, v := range txntest.Check(h, final, accounts, initial) {
		t.Errorf("checker: %s", v)
	}

	committed := 0
	for _, ev := range h.Events() {
		if ev.Outcome == txntest.Committed && len(ev.Legs) > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no transfer ever committed")
	}
}

func TestTxnStaleLockRollBack(t *testing.T) {
	testStaleLock(t, txn.StageLocked, false)
}

func TestTxnStaleLockRollForward(t *testing.T) {
	testStaleLock(t, txn.StageDecided, true)
}

// testStaleLock kills a transaction at the given stage (locks held, no
// unlock ever) and verifies a second handle breaks the locks with
// all-or-none effect: nothing installed before the commit point, both
// cells installed after it.
func testStaleLock(t *testing.T, stage txn.CommitStage, wantInstalled bool) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "break", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	seed := sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(4, []byte("old4")); err != nil {
			return err
		}
		return tx.Write(5, []byte("old5"))
	})
	if seed != nil {
		t.Fatalf("seed: %v", seed)
	}

	errKilled := errors.New("killed by failpoint")
	sp.FailPoint = func(s txn.CommitStage) error {
		if s == stage {
			return errKilled
		}
		return nil
	}
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(4, []byte("new4")); err != nil {
			return err
		}
		return tx.Write(5, []byte("new5"))
	})
	if !errors.Is(err, errKilled) {
		t.Fatalf("RunTx = %v, want failpoint kill", err)
	}
	sp.FailPoint = nil

	opts := testOptions()
	opts.Owner = 2
	sp2, err := txn.Open(ctx, cli, "break", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want4, want5 := "old4", "old5"
	if wantInstalled {
		want4, want5 = "new4", "new5"
	}
	for cell, want := range map[int]string{4: want4, 5: want5} {
		_, body, err := sp2.ReadCell(ctx, cell)
		if err != nil {
			t.Fatalf("ReadCell(%d): %v", cell, err)
		}
		if got := string(bytes.TrimRight(body, "\x00")); got != want {
			t.Errorf("cell %d = %q, want %q (stage %v)", cell, got, want, stage)
		}
	}
	// The broken-into state must be writable again.
	if err := sp2.RunTx(ctx, func(tx *txn.Tx) error {
		return tx.Write(4, []byte("after"))
	}); err != nil {
		t.Fatalf("post-break write: %v", err)
	}
}

func TestTxnOpenRecoversOwnSlot(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	opts := testOptions()
	opts.Owner = 1
	sp, err := txn.Create(ctx, cli, "reopen", opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	errKilled := errors.New("killed")
	sp.FailPoint = func(s txn.CommitStage) error {
		if s == txn.StageDecided {
			return errKilled
		}
		return nil
	}
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		if err := tx.Write(0, []byte("a")); err != nil {
			return err
		}
		return tx.Write(1, []byte("b"))
	})
	if !errors.Is(err, errKilled) {
		t.Fatalf("RunTx = %v", err)
	}

	// Reopening the same owner slot must roll the decided transaction
	// forward before serving anything.
	sp2, err := txn.Open(ctx, cli, "reopen", opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for cell, want := range map[int]string{0: "a", 1: "b"} {
		_, body, err := sp2.ReadCell(ctx, cell)
		if err != nil {
			t.Fatalf("ReadCell(%d): %v", cell, err)
		}
		if got := string(bytes.TrimRight(body, "\x00")); got != want {
			t.Errorf("cell %d = %q, want %q", cell, got, want)
		}
	}
}

func TestTxnSingleCellFastPath(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "single", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	atomics := cli.Telemetry().Counter("client.atomics").Value()
	writes := cli.Telemetry().Counter("client.writes").Value()
	if err := sp.RunTx(ctx, func(tx *txn.Tx) error {
		return tx.Write(7, []byte("solo"))
	}); err != nil {
		t.Fatalf("RunTx: %v", err)
	}
	gotAtomics := cli.Telemetry().Counter("client.atomics").Value() - atomics
	gotWrites := cli.Telemetry().Counter("client.writes").Value() - writes
	// Fast path: one CAS (lock+validate) and one publish — no log write.
	if gotAtomics != 1 || gotWrites != 1 {
		t.Errorf("single-cell commit cost %d atomics + %d writes, want 1 + 1", gotAtomics, gotWrites)
	}
}

func TestTxnReadCancelledContext(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	sp, err := txn.Create(ctx, cli, "cancel", testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := sp.RunTx(cctx, func(tx *txn.Tx) error {
		_, err := tx.Read(cctx, 0)
		return err
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTx on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestTxnWriteSetLimits(t *testing.T) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	opts := testOptions()
	opts.MaxWriteSet = 2
	sp, err := txn.Create(ctx, cli, "limits", opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		for i := 0; i < 3; i++ {
			if err := tx.Write(i, []byte("x")); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, txn.ErrTooLarge) {
		t.Errorf("3-cell write with MaxWriteSet=2 = %v, want ErrTooLarge", err)
	}
	err = sp.RunTx(ctx, func(tx *txn.Tx) error {
		return tx.Write(0, make([]byte, sp.BodySize()+1))
	})
	if !errors.Is(err, txn.ErrTooLarge) {
		t.Errorf("oversized body = %v, want ErrTooLarge", err)
	}
}
