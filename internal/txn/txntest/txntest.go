// Package txntest is the transaction layer's adversarial test harness: a
// history-recording bank workload plus a serializability checker.
//
// Workers run transfers (and consistent snapshots) over a txn.Space whose
// cells are bank accounts, logging an invoke/complete Event on virtual
// time for every operation with its observed reads and intended writes.
// Every committed write carries a globally unique stamp, so the final
// state of each account induces a *stamp chain* — the serial order of
// writes the account actually went through. The checker rebuilds those
// chains and asserts the history is a serializable bank:
//
//   - conservation: every transfer moves value, never creates it, and the
//     final (and every snapshot's) total equals the initial total;
//   - no lost updates: each account's writes form one linear chain from
//     the initial state to the final state — a fork means two commits
//     both validated against the same version;
//   - atomicity: an Unknown-outcome event (a client killed mid-commit) is
//     either entirely in the chains or entirely absent — one leg visible
//     without the other is torn multi-key state;
//   - snapshot consistency: every snapshot is a cut through the chains;
//   - real-time order: a transfer that completed before another was
//     invoked appears earlier in every chain they share.
//
// The harness is deliberately reusable: unit tests drive it directly,
// chaos tests add FailPoint kills and failovers, and the bench smoke test
// runs it under load.
package txntest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rstore/internal/simnet"
	"rstore/internal/txn"
)

// Outcome is what the worker knows about an operation's fate.
type Outcome int

const (
	// Aborted: the operation definitely did not commit.
	Aborted Outcome = iota
	// Committed: the operation definitely committed.
	Committed
	// Unknown: the client died (or was cut off) mid-commit; the commit
	// point may or may not have been reached. The checker accepts either,
	// but never half.
	Unknown
)

func (o Outcome) String() string {
	switch o {
	case Aborted:
		return "aborted"
	case Committed:
		return "committed"
	default:
		return "unknown"
	}
}

// Leg is one account's share of a transfer: the state the transaction
// read and the state it wrote.
type Leg struct {
	Account   int
	PrevStamp uint64
	NewStamp  uint64
	PrevBal   int64
	NewBal    int64
}

// AccountState is one account in a snapshot or the final sweep.
type AccountState struct {
	Account int
	Stamp   uint64
	Balance int64
}

// Event is one logged operation.
type Event struct {
	Worker    int
	Seq       int
	InvokeV   simnet.VTime
	CompleteV simnet.VTime
	Outcome   Outcome
	Legs      []Leg          // transfers: the read/written accounts
	Snapshot  []AccountState // read-only snapshots: the cut observed
}

// History collects events from concurrent workers, timestamping them
// from one shared monotone clock. The clock MUST be global across every
// worker (e.g. the cluster fabric's VNow) — the real-time precedence
// check is sound only against a single monotone order.
type History struct {
	now    func() simnet.VTime
	mu     sync.Mutex
	events []Event
}

// NewHistory builds a history around the shared clock.
func NewHistory(now func() simnet.VTime) *History {
	return &History{now: now}
}

// Record appends one event.
func (h *History) Record(e Event) {
	h.mu.Lock()
	h.events = append(h.events, e)
	h.mu.Unlock()
}

// Events returns the recorded events (shared slice; call after workers
// are done).
func (h *History) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.events
}

// Account body codec: 16 bytes, balance then stamp.
const accountBytes = 16

// EncodeAccount renders an account body.
func EncodeAccount(balance int64, stamp uint64) []byte {
	b := make([]byte, accountBytes)
	binary.LittleEndian.PutUint64(b, uint64(balance))
	binary.LittleEndian.PutUint64(b[8:], stamp)
	return b
}

// DecodeAccount parses an account body (zero-value for a never-written
// cell).
func DecodeAccount(b []byte) (balance int64, stamp uint64) {
	if len(b) < accountBytes {
		return 0, 0
	}
	return int64(binary.LittleEndian.Uint64(b)), binary.LittleEndian.Uint64(b[8:])
}

// Stamp builds the globally unique write stamp for (worker, seq). Worker
// 0 is reserved for the initial state.
func Stamp(worker, seq int) uint64 {
	return uint64(worker)<<32 | uint64(uint32(seq))
}

// SetupBank initializes accounts 0..accounts-1 with `initial` balance
// each, stamped as worker 0.
func SetupBank(ctx context.Context, sp *txn.Space, accounts int, initial int64) error {
	for a := 0; a < accounts; a++ {
		acct := a
		err := sp.RunTx(ctx, func(tx *txn.Tx) error {
			return tx.Write(acct, EncodeAccount(initial, Stamp(0, acct)))
		})
		if err != nil {
			return fmt.Errorf("setup account %d: %w", acct, err)
		}
	}
	return nil
}

// Transfer moves amount from one account to another as one transaction,
// recording the event. classify maps a commit error to an outcome
// (nil classify treats every error as Aborted); errors classified Aborted
// or Unknown are swallowed into the history, others returned.
func Transfer(ctx context.Context, sp *txn.Space, h *History, worker, seq, from, to int, amount int64, classify func(error) Outcome) error {
	ev := Event{Worker: worker, Seq: seq, InvokeV: h.now()}
	err := sp.RunTx(ctx, func(tx *txn.Tx) error {
		ev.Legs = ev.Legs[:0]
		fb, err := tx.Read(ctx, from)
		if err != nil {
			return err
		}
		tb, err := tx.Read(ctx, to)
		if err != nil {
			return err
		}
		fBal, fStamp := DecodeAccount(fb)
		tBal, tStamp := DecodeAccount(tb)
		stamp := Stamp(worker, seq)
		ev.Legs = append(ev.Legs,
			Leg{Account: from, PrevStamp: fStamp, NewStamp: stamp, PrevBal: fBal, NewBal: fBal - amount},
			Leg{Account: to, PrevStamp: tStamp, NewStamp: stamp, PrevBal: tBal, NewBal: tBal + amount},
		)
		if err := tx.Write(from, EncodeAccount(fBal-amount, stamp)); err != nil {
			return err
		}
		if err := tx.Write(to, EncodeAccount(tBal+amount, stamp)); err != nil {
			return err
		}
		// Virtual time never preempts a goroutine, so without an explicit
		// yield between read-set capture and commit, concurrent workers
		// rarely overlap their optimistic windows in real execution order.
		// The yield models independent clients racing, which is the point
		// of every harness built on this helper.
		runtime.Gosched()
		return nil
	})
	ev.CompleteV = h.now()
	switch {
	case err == nil:
		ev.Outcome = Committed
	case classify != nil:
		ev.Outcome = classify(err)
	default:
		ev.Outcome = defaultClassify(err)
	}
	h.Record(ev)
	if err != nil && ev.Outcome == Committed {
		return fmt.Errorf("classify returned Committed for error: %w", err)
	}
	return nil
}

// defaultClassify maps a RunTx error to the soundest outcome: retries
// exhausted means no attempt ever reached its commit point (Aborted);
// anything else — a kill, a cancellation, an IO failure — may have struck
// after the decision, so the fate is Unknown.
func defaultClassify(err error) Outcome {
	if errors.Is(err, txn.ErrContended) {
		return Aborted
	}
	return Unknown
}

// Snapshot reads every account in one read-only transaction and records
// the observed cut.
func Snapshot(ctx context.Context, sp *txn.Space, h *History, worker, seq, accounts int) error {
	ev := Event{Worker: worker, Seq: seq, InvokeV: h.now()}
	err := sp.RunTx(ctx, func(tx *txn.Tx) error {
		ev.Snapshot = ev.Snapshot[:0]
		for a := 0; a < accounts; a++ {
			b, err := tx.Read(ctx, a)
			if err != nil {
				return err
			}
			bal, stamp := DecodeAccount(b)
			ev.Snapshot = append(ev.Snapshot, AccountState{Account: a, Stamp: stamp, Balance: bal})
		}
		return nil
	})
	ev.CompleteV = h.now()
	if err != nil {
		ev.Outcome = Aborted
		h.Record(ev)
		return nil
	}
	ev.Outcome = Committed
	h.Record(ev)
	return nil
}

// Sweep reads the final state of every account outside any transaction
// churn (call after workers quiesce and stale locks are resolved).
func Sweep(ctx context.Context, sp *txn.Space, accounts int) ([]AccountState, error) {
	final := make([]AccountState, accounts)
	for a := 0; a < accounts; a++ {
		_, body, err := sp.ReadCell(ctx, a)
		if err != nil {
			return nil, fmt.Errorf("sweep account %d: %w", a, err)
		}
		bal, stamp := DecodeAccount(body)
		final[a] = AccountState{Account: a, Stamp: stamp, Balance: bal}
	}
	return final, nil
}

// chainLink is one write in an account's reconstructed serial order.
type chainLink struct {
	leg Leg
	ev  *Event
	pos int
}

// Check verifies the history against the final account sweep. accounts is
// the account count, initial the per-account starting balance. It returns
// every violation found (empty = serializable).
func Check(h *History, final []AccountState, accounts int, initial int64) []string {
	events := h.Events()
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Total conservation over the final state.
	var total int64
	for _, a := range final {
		total += a.Balance
	}
	if want := initial * int64(accounts); total != want {
		fail("final total %d != initial total %d", total, want)
	}

	// Per-event conservation: committed and unknown transfers must move
	// value, not mint it. (Aborted events claim nothing.)
	for i := range events {
		ev := &events[i]
		if ev.Outcome == Aborted || len(ev.Legs) == 0 {
			continue
		}
		var delta int64
		for _, l := range ev.Legs {
			delta += l.NewBal - l.PrevBal
		}
		if delta != 0 {
			fail("w%d/%d: transfer legs sum to %+d", ev.Worker, ev.Seq, delta)
		}
	}

	// Rebuild each account's stamp chain: committed legs plus the legs of
	// Unknown events whose stamp is visible anywhere (final state or as a
	// later write's PrevStamp). An Unknown event must contribute all of
	// its legs or none.
	visible := make(map[uint64]bool) // stamp -> observed in the world
	for _, a := range final {
		visible[a.Stamp] = true
	}
	for i := range events {
		ev := &events[i]
		if ev.Outcome == Aborted {
			continue
		}
		for _, l := range ev.Legs {
			visible[l.PrevStamp] = true
		}
		for _, s := range ev.Snapshot {
			visible[s.Stamp] = true
		}
	}

	inChains := func(ev *Event) bool {
		if ev.Outcome == Committed {
			return true
		}
		// Unknown: in if any of its legs' stamps was ever observed.
		for _, l := range ev.Legs {
			if visible[l.NewStamp] {
				return true
			}
		}
		return false
	}

	// Torn-write detection for Unknown events: visibility must be
	// all-or-none across legs.
	for i := range events {
		ev := &events[i]
		if ev.Outcome != Unknown || len(ev.Legs) == 0 {
			continue
		}
		seen := 0
		for _, l := range ev.Legs {
			if visible[l.NewStamp] {
				seen++
			}
		}
		if seen != 0 && seen != len(ev.Legs) {
			fail("w%d/%d: torn unknown transfer — %d of %d legs visible", ev.Worker, ev.Seq, seen, len(ev.Legs))
		}
	}

	chains := make([][]chainLink, accounts)
	for i := range events {
		ev := &events[i]
		if ev.Outcome == Aborted || !inChains(ev) {
			continue
		}
		for _, l := range ev.Legs {
			if l.Account < 0 || l.Account >= accounts {
				fail("w%d/%d: leg on unknown account %d", ev.Worker, ev.Seq, l.Account)
				continue
			}
			chains[l.Account] = append(chains[l.Account], chainLink{leg: l, ev: ev})
		}
	}

	chainPos := make(map[int]map[uint64]int, accounts) // account -> stamp -> position
	for a := 0; a < accounts; a++ {
		chainPos[a] = make(map[uint64]int)
		byPrev := make(map[uint64][]*chainLink)
		for i := range chains[a] {
			l := &chains[a][i]
			byPrev[l.leg.PrevStamp] = append(byPrev[l.leg.PrevStamp], l)
		}
		// Walk from the initial state; each step must have exactly one
		// successor (a fork is a lost update).
		stamp := Stamp(0, a)
		bal := initial
		pos := 0
		walked := 0
		for {
			next := byPrev[stamp]
			if len(next) == 0 {
				break
			}
			if len(next) > 1 {
				workers := ""
				for _, l := range next {
					workers += fmt.Sprintf(" w%d/%d", l.ev.Worker, l.ev.Seq)
				}
				fail("account %d: lost update — %d writes from stamp %x:%s", a, len(next), stamp, workers)
				break
			}
			l := next[0]
			if l.leg.PrevBal != bal {
				fail("account %d: w%d/%d read balance %d, chain says %d", a, l.ev.Worker, l.ev.Seq, l.leg.PrevBal, bal)
			}
			stamp = l.leg.NewStamp
			bal = l.leg.NewBal
			pos++
			l.pos = pos
			chainPos[a][stamp] = pos
			walked++
			if walked > len(chains[a]) {
				fail("account %d: stamp cycle", a)
				break
			}
		}
		if walked < len(chains[a]) {
			fail("account %d: %d committed writes unreachable from the initial state", a, len(chains[a])-walked)
		}
		if final[a].Stamp != stamp || final[a].Balance != bal {
			fail("account %d: chain ends at stamp %x bal %d, final state stamp %x bal %d",
				a, stamp, bal, final[a].Stamp, final[a].Balance)
		}
	}

	// Snapshots must be cuts: correct total, every entry on its chain.
	for i := range events {
		ev := &events[i]
		if ev.Outcome != Committed || len(ev.Snapshot) == 0 {
			continue
		}
		var snapTotal int64
		for _, s := range ev.Snapshot {
			snapTotal += s.Balance
			if s.Account < 0 || s.Account >= accounts {
				continue
			}
			if s.Stamp == Stamp(0, s.Account) {
				if s.Balance != initial {
					fail("w%d/%d: snapshot account %d at initial stamp with balance %d", ev.Worker, ev.Seq, s.Account, s.Balance)
				}
				continue
			}
			if _, ok := chainPos[s.Account][s.Stamp]; !ok {
				fail("w%d/%d: snapshot observed account %d at stamp %x — not on its chain", ev.Worker, ev.Seq, s.Account, s.Stamp)
			}
		}
		if want := initial * int64(len(ev.Snapshot)); snapTotal != want {
			fail("w%d/%d: snapshot total %d != %d", ev.Worker, ev.Seq, snapTotal, want)
		}
	}

	// Real-time order: a committed transfer that finished before another
	// began must precede it on every shared account.
	type committed struct {
		ev  *Event
		pos map[int]int // account -> chain position
	}
	var cs []committed
	for i := range events {
		ev := &events[i]
		if ev.Outcome != Committed || len(ev.Legs) == 0 {
			continue
		}
		pos := make(map[int]int, len(ev.Legs))
		for _, l := range ev.Legs {
			if p, ok := chainPos[l.Account][l.NewStamp]; ok {
				pos[l.Account] = p
			}
		}
		cs = append(cs, committed{ev: ev, pos: pos})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ev.CompleteV < cs[j].ev.CompleteV })
	for i := range cs {
		for j := range cs {
			if cs[i].ev.CompleteV >= cs[j].ev.InvokeV {
				continue
			}
			for acct, pi := range cs[i].pos {
				if pj, ok := cs[j].pos[acct]; ok && pi >= pj {
					fail("real-time violation on account %d: w%d/%d (pos %d) completed before w%d/%d (pos %d) was invoked",
						acct, cs[i].ev.Worker, cs[i].ev.Seq, pi, cs[j].ev.Worker, cs[j].ev.Seq, pj)
				}
			}
		}
	}

	return violations
}
