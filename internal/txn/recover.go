package txn

// Stale-lock detection and recovery.
//
// A lock whose owner died stays set forever unless someone breaks it.
// Liveness here is observational: a reader (or a blind writer capturing
// its expected word) that finds a cell locked notes the word and the
// virtual time; only when the SAME word is seen again at least
// StaleLockTimeout later is the owner presumed dead. Two observations —
// not one old timestamp — are required, so a virtual-time frontier jump
// (a failover wait, a latency storm) can never mature a healthy lock in
// one step. Owners hold up their half of the lease-style bargain by
// forfeiting any commit still undecided at half the window (commit.go).
//
// Resolution is driven entirely by the words:
//
//   - single-cell locks carry their prior version; breaking always rolls
//     the version forward (prior+2) — sound whether or not the owner's
//     body landed, costing at worst one spurious version bump.
//   - multi-key locks name the owner's log record. The breaker reads it,
//     checks the status names the same transaction, then: PENDING is
//     retired by CAS to ABORTED (arbitrating against the owner's own
//     commit-point CAS) and the cell rolled back; ABORTED is rolled back;
//     COMMITTED is rolled FORWARD — the breaker re-stages the cell's redo
//     entry under its own log slot, CASes the lock over to itself
//     (ownership transfer, so a breaker dying mid-break is itself
//     recoverable), and installs the committed body.
//
// Every mutation is a CAS from the observed word, so any number of
// breakers — plus a slow-but-alive owner — race to the same outcome.

import (
	"context"
)

// noteSight records an observation of a locked word for staleness
// tracking. A different word on the same cell restarts the clock.
func (sp *Space) noteSight(cell int, w uint64) {
	if s, ok := sp.sight[cell]; ok && s.word == w {
		return
	}
	sp.sight[cell] = sighting{word: w, firstV: sp.vnow()}
}

// clearSight forgets a cell observed unlocked.
func (sp *Space) clearSight(cell int) {
	delete(sp.sight, cell)
}

// maybeBreak notes a locked-word observation and, once the same word has
// been sighted across the full stale window, resolves the orphaned
// transaction. Callers must not hold a staged record of their own (the
// read path and pre-record expect capture qualify; mid-commit code never
// calls this).
func (sp *Space) maybeBreak(ctx context.Context, cell int, w uint64) {
	s, ok := sp.sight[cell]
	if !ok || s.word != w {
		sp.noteSight(cell, w)
		return
	}
	if sp.vnow().Sub(s.firstV) < sp.opts.StaleLockTimeout {
		return
	}
	delete(sp.sight, cell)
	if wordSingle(w) {
		sp.breakSingle(ctx, cell, w)
		return
	}
	sp.breakMulti(ctx, cell, w)
}

// breakSingle rolls a stale single-cell lock forward to the next version.
func (sp *Space) breakSingle(ctx context.Context, cell int, w uint64) {
	old, _, err := sp.data.CompareSwap(ctx, sp.cellOff(cell), w, nextVersion(singlePrior(w)))
	if err == nil && old == w {
		sp.ctr.lockBreaks.Inc()
	}
}

// breakMulti resolves one cell of a stale logged transaction through the
// owner's record.
func (sp *Space) breakMulti(ctx context.Context, cell int, w uint64) {
	victim := lockOwnerSlot(w)
	n := sp.opts.LogSlotSize - logStatusOff
	if _, err := sp.log.ReadAt(ctx, sp.slotOff(victim)+logStatusOff, sp.breakBuf, 0, n); err != nil {
		return
	}
	status, entries, err := decodeRecord(sp.breakBuf.Bytes()[:n])
	if err != nil || !statusMatches(status, w) {
		// The slot has moved on to a different transaction: the lock we
		// observed is gone or about to be. Re-observe.
		return
	}
	var rec *entry
	for i := range entries {
		if entries[i].cell == cell {
			rec = &entries[i]
			break
		}
	}
	if rec == nil {
		return
	}

	switch statusState(status) {
	case statePending:
		// Retire the transaction before touching its locks; this CAS
		// arbitrates against the owner's own PENDING→COMMITTED decision.
		aborted := statusWord(stateAborted, statusIncarn(status), statusSeq(status))
		old, _, cerr := sp.log.CompareSwap(ctx, sp.slotOff(victim)+logStatusOff, status, aborted)
		if cerr != nil || old != status {
			// Lost the race — the owner decided, or another breaker got
			// there first. Next observation resolves the new state.
			return
		}
		sp.rollBack(ctx, w, entries)
		sp.ctr.lockBreaks.Inc()
	case stateAborted:
		sp.rollBack(ctx, w, entries)
		sp.ctr.lockBreaks.Inc()
	case stateCommitted:
		sp.rollForward(ctx, cell, w, *rec)
	}
}

// rollBack releases every still-held lock of a retired transaction back
// to its prior version.
func (sp *Space) rollBack(ctx context.Context, w uint64, entries []entry) {
	for _, e := range entries {
		_, _, _ = sp.data.CompareSwap(ctx, sp.cellOff(e.cell), w, e.expect)
	}
}

// rollForward installs one committed-but-unpublished cell on behalf of a
// dead owner. The redo entry is first re-staged under the breaker's own
// log slot as an already-COMMITTED single-entry record, then the lock is
// CASed over to the breaker: from that point the cell is a committed cell
// of OURS, and a breaker dying mid-break is recovered exactly like any
// other dead owner. Other cells of the victim transaction are rolled
// forward by whoever observes them.
func (sp *Space) rollForward(ctx context.Context, cell int, w uint64, rec entry) {
	if sp.unclean {
		// Our own slot record may still be the only path to locks a cut
		// attempt left behind — possibly including this very cell, if the
		// victim is a past self. Resolve our slot before overwriting it;
		// if that already resolved the cell, the CAS below simply misses.
		if err := sp.recoverOwnSlot(ctx); err != nil {
			return
		}
		sp.unclean = false
	}
	sp.seq++
	seq := sp.seq
	committed := statusWord(stateCommitted, sp.incarn, seq)
	n := encodeRecord(sp.recBuf.Bytes(), committed, []entry{rec})
	if _, err := sp.log.WriteAt(ctx, sp.slotOff(sp.owner)+logStatusOff, sp.recBuf, 0, n); err != nil {
		return
	}
	mine := lockWord(sp.owner, sp.incarn, seq)
	old, _, err := sp.data.CompareSwap(ctx, sp.cellOff(cell), w, mine)
	if err != nil || old != w {
		return
	}
	if _, err := sp.publishCell(ctx, entry{cell: cell, expect: rec.expect, body: rec.body}, 0); err != nil {
		return
	}
	sp.ctr.lockBreaks.Inc()
}

// recoverOwnSlot finishes whatever a prior incarnation of this owner slot
// left behind, before the new incarnation runs its first transaction:
// PENDING is retired and rolled back, ABORTED rolled back, COMMITTED
// rolled forward (idempotently — concurrent breakers publish identical
// bytes under identical versions).
func (sp *Space) recoverOwnSlot(ctx context.Context) error {
	// Deliberately not breakBuf: rollForward calls here while the victim
	// record it is resolving still aliases breakBuf.
	n := sp.opts.LogSlotSize - logStatusOff
	if _, err := sp.log.ReadAt(ctx, sp.slotOff(sp.owner)+logStatusOff, sp.recovBuf, 0, n); err != nil {
		return err
	}
	status, entries, err := decodeRecord(sp.recovBuf.Bytes()[:n])
	if err != nil || statusState(status) == stateFree || len(entries) == 0 {
		return nil
	}
	lock := lockWord(sp.owner, statusIncarn(status), statusSeq(status))

	switch statusState(status) {
	case statePending:
		aborted := statusWord(stateAborted, statusIncarn(status), statusSeq(status))
		old, _, cerr := sp.log.CompareSwap(ctx, sp.slotOff(sp.owner)+logStatusOff, status, aborted)
		if cerr != nil {
			return cerr
		}
		if old != status {
			// A breaker is mid-resolution on our slot right now; whatever it
			// decided, it also resolves the cells.
			return nil
		}
		sp.rollBack(ctx, lock, entries)
	case stateAborted:
		sp.rollBack(ctx, lock, entries)
	case stateCommitted:
		for _, e := range entries {
			if _, rerr := sp.data.ReadAt(ctx, sp.cellOff(e.cell), sp.wordBuf, 0, 8); rerr != nil {
				return rerr
			}
			if le64(sp.wordBuf.Bytes()) != lock {
				continue // already installed, or a breaker transferred it
			}
			if _, perr := sp.publishCell(ctx, e, 0); perr != nil {
				return perr
			}
		}
	}
	return nil
}
