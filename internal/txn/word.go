package txn

// Cell word and log status encodings.
//
// The first 8 bytes of every cell are its word, manipulated only with
// RDMA atomics:
//
//	unlocked:  LSB 0; the word is the cell's version (0 = never written,
//	           bumped by 2 on every commit so the LSB stays clear).
//	locked:    LSB 1. Bit 1 selects the flavor:
//
//	multi-key lock (bit1=0) — the cell belongs to a logged transaction:
//	  bits  2..10   owner log slot (8 bits)
//	  bits 10..26   owner incarnation, low 16 bits
//	  bits 26..64   transaction sequence, low 38 bits
//	The (slot, incarnation, seq) triple names the owner's log record; a
//	breaker resolves the transaction's fate from it.
//
//	single-cell lock (bit1=1) — a one-cell transaction needs no log
//	record, so the lock word carries its own recovery state instead:
//	  bits  2..10   owner log slot (8 bits, accounting only)
//	  bits 10..64   prior version >> 1 (54 bits)
//	Breaking a stale single-cell lock always rolls the version forward
//	to prior+2: the body is either the old or the new bytes, and in both
//	cases a bumped version is sound — at worst it re-publishes the old
//	bytes under a fresh version, which only costs optimists a retry.
const (
	wordLockBit   = 1 << 0
	wordSingleBit = 1 << 1
)

const (
	lockSeqBits   = 38
	statusSeqBits = 46
)

func lockWord(owner int, incarn, seq uint64) uint64 {
	return wordLockBit |
		uint64(owner&0xff)<<2 |
		(incarn&0xffff)<<10 |
		(seq&(1<<lockSeqBits-1))<<26
}

func wordLocked(w uint64) bool   { return w&wordLockBit != 0 }
func wordSingle(w uint64) bool   { return w&wordSingleBit != 0 }
func lockOwnerSlot(w uint64) int { return int(w >> 2 & 0xff) }
func lockIncarn(w uint64) uint64 { return w >> 10 & 0xffff }
func lockSeq(w uint64) uint64    { return w >> 26 }

func singleLockWord(owner int, prior uint64) uint64 {
	return wordLockBit | wordSingleBit | uint64(owner&0xff)<<2 | (prior>>1)<<10
}

func singlePrior(w uint64) uint64 { return w >> 10 << 1 }

// nextVersion is the unlocked word a commit publishes over the prior one.
func nextVersion(prior uint64) uint64 { return prior + 2 }

// Log status word: the second 8 bytes of an owner's log slot.
//
//	bits  0..2    state
//	bits  2..18   incarnation, low 16 bits
//	bits 18..64   transaction sequence, low 46 bits
//
// The pending→committed transition is the transaction's commit point and
// is arbitrated by CMP_SWAP: a breaker rolling back a stale transaction
// first CASes pending→aborted, so a slow owner's committed decision and a
// breaker's abort can never both win.
const (
	stateFree      = 0
	statePending   = 1
	stateCommitted = 2
	stateAborted   = 3
)

func statusWord(state int, incarn, seq uint64) uint64 {
	return uint64(state&3) | (incarn&0xffff)<<2 | (seq&(1<<statusSeqBits-1))<<18
}

func statusState(w uint64) int     { return int(w & 3) }
func statusIncarn(w uint64) uint64 { return w >> 2 & 0xffff }
func statusSeq(w uint64) uint64    { return w >> 18 }

// statusMatches reports whether a status word names the same transaction
// as a multi-key lock word (comparing the truncated incarnation and
// sequence both encodings carry).
func statusMatches(status, lock uint64) bool {
	return statusIncarn(status) == lockIncarn(lock) &&
		statusSeq(status)&(1<<lockSeqBits-1) == lockSeq(lock)
}
