package txn

import "testing"

func TestLockWordRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		owner  int
		incarn uint64
		seq    uint64
	}{
		{0, 0, 0},
		{3, 1, 1},
		{255, 0xffff, 1<<lockSeqBits - 1},
		{17, 0x12345, 0x1234567890}, // incarn/seq above their truncation widths
	} {
		w := lockWord(tc.owner, tc.incarn, tc.seq)
		if !wordLocked(w) || wordSingle(w) {
			t.Errorf("lockWord(%v): locked=%v single=%v", tc, wordLocked(w), wordSingle(w))
		}
		if got := lockOwnerSlot(w); got != tc.owner&0xff {
			t.Errorf("owner = %d, want %d", got, tc.owner&0xff)
		}
		if got := lockIncarn(w); got != tc.incarn&0xffff {
			t.Errorf("incarn = %#x, want %#x", got, tc.incarn&0xffff)
		}
		if got := lockSeq(w); got != tc.seq&(1<<lockSeqBits-1) {
			t.Errorf("seq = %#x, want %#x", got, tc.seq&(1<<lockSeqBits-1))
		}
	}
}

func TestSingleLockWordRoundTrip(t *testing.T) {
	for _, prior := range []uint64{0, 2, 4, 1 << 40, 1<<54 - 2} {
		w := singleLockWord(9, prior)
		if !wordLocked(w) || !wordSingle(w) {
			t.Fatalf("singleLockWord(%d): locked=%v single=%v", prior, wordLocked(w), wordSingle(w))
		}
		if got := singlePrior(w); got != prior {
			t.Errorf("singlePrior = %d, want %d", got, prior)
		}
		if got := lockOwnerSlot(w); got != 9 {
			t.Errorf("owner = %d, want 9", got)
		}
	}
}

func TestVersionsStayUnlocked(t *testing.T) {
	v := uint64(0)
	for i := 0; i < 100; i++ {
		if wordLocked(v) {
			t.Fatalf("version %d reads as locked", v)
		}
		v = nextVersion(v)
	}
}

func TestStatusMatches(t *testing.T) {
	lock := lockWord(5, 7, 42)
	if !statusMatches(statusWord(statePending, 7, 42), lock) {
		t.Error("matching status rejected")
	}
	for _, s := range []uint64{
		statusWord(statePending, 8, 42),   // other incarnation
		statusWord(statePending, 7, 43),   // other transaction
		statusWord(stateCommitted, 6, 42), // other incarnation, committed
		statusWord(stateAborted, 7, 42+1), // successor transaction
	} {
		if statusMatches(s, lock) {
			t.Errorf("status %#x matches lock %#x", s, lock)
		}
	}
	// States differ, transaction identity matches: still the same txn.
	if !statusMatches(statusWord(stateCommitted, 7, 42), lock) {
		t.Error("committed status of the same txn rejected")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	entries := []entry{
		{cell: 3, expect: 40, body: []byte("hello")},
		{cell: 900, expect: 0, body: nil},
		{cell: 41, expect: 1 << 40, body: make([]byte, 56)},
	}
	buf := make([]byte, 4096)
	status := statusWord(statePending, 12, 99)
	n := encodeRecord(buf, status, entries)
	gotStatus, got, err := decodeRecord(buf[:n])
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if gotStatus != status {
		t.Errorf("status = %#x, want %#x", gotStatus, status)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].cell != entries[i].cell || got[i].expect != entries[i].expect ||
			string(got[i].body) != string(entries[i].body) {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestRecordCapacity(t *testing.T) {
	if c := recordCapacity(4096, 64); c < 16 {
		t.Errorf("default geometry capacity = %d, want >= 16", c)
	}
	if c := recordCapacity(64, 4096); c >= 1 {
		t.Errorf("tiny slot capacity = %d, want 0", c)
	}
}
