package txn_test

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/txn"
	"rstore/internal/txn/txntest"
)

// errFuzzKill marks a commit attempt the fuzzer cut dead mid-protocol.
var errFuzzKill = errors.New("fuzz: killed mid-commit")

// ownerOptions pins a handle to a fixed log slot so fuzz inputs replay
// byte-for-byte identically.
func ownerOptions(owner int) txn.Options {
	o := testOptions()
	o.Owner = owner
	return o
}

// FuzzTxnCommitProtocol drives the commit protocol through randomized
// interleavings of transfers, snapshots, raw reads, and mid-commit kills
// at every stage (record staged / locks held / decision taken / first
// cell installed), on two competing handles. Each input byte is one op:
//
//	bits 0-2: op kind — 0,1 transfer on A; 2,3 transfer on B;
//	          4 snapshot on B; 5 arm one-shot kill on A; 6 arm one-shot
//	          kill on B; 7 raw ReadCell on A (drives stale-lock breaking)
//	bits 3-5: from-account (transfers), kill stage mod 4 (kills),
//	          cell (reads)
//	bits 6-7: to-account offset (transfers)
//
// A killed handle keeps running — the worst case for slot reuse — so the
// harness exercises owner self-recovery as well as peer lock breaking.
// Whatever the interleaving, the sweep must succeed and the history must
// check out serializable with all-or-none visibility for every cut
// commit.
func FuzzTxnCommitProtocol(f *testing.F) {
	// Plain contention, no kills.
	f.Add([]byte{0x00, 0x0a, 0x19, 0x22, 0x08, 0x11, 0x3a, 0x04})
	// Kill A with locks held; B breaks the stale locks and rolls back.
	f.Add([]byte{0x0d, 0x00, 0x0a, 0x12, 0x1a, 0x04, 0x0f})
	// Kill A after its decision CAS; B must roll the commit forward.
	f.Add([]byte{0x15, 0x08, 0x02, 0x2a, 0x04, 0x17, 0x3f})
	// Kill B at record-staged and at first-cell-installed; A sweeps past.
	f.Add([]byte{0x06, 0x02, 0x1e, 0x0a, 0x00, 0x09, 0x04, 0x11})
	// Kill both workers back to back, then read every account.
	f.Add([]byte{0x0d, 0x00, 0x16, 0x02, 0x07, 0x0f, 0x17, 0x1f, 0x27, 0x2f, 0x37, 0x3f, 0x01, 0x0b})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			t.Skip("op stream out of bounds")
		}
		runFuzzScenario(t, data)
	})
}

func runFuzzScenario(t *testing.T, data []byte) {
	c := startCluster(t)
	cli := newClient(t, c)
	ctx := context.Background()
	const (
		accounts = 8
		initial  = int64(100)
	)
	spA, err := txn.Create(ctx, cli, "fuzz", ownerOptions(1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	spB, err := txn.Open(ctx, cli, "fuzz", ownerOptions(2))
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	if err := txntest.SetupBank(ctx, spA, accounts, initial); err != nil {
		t.Fatalf("SetupBank: %v", err)
	}

	h := txntest.NewHistory(c.Fabric().VNow)
	classify := func(err error) txntest.Outcome {
		switch {
		case errors.Is(err, errFuzzKill):
			return txntest.Unknown
		case errors.Is(err, txn.ErrContended):
			return txntest.Aborted
		default:
			return txntest.Unknown
		}
	}
	armKill := func(sp *txn.Space, stage txn.CommitStage) {
		sp.FailPoint = func(s txn.CommitStage) error {
			if s != stage {
				return nil
			}
			sp.FailPoint = nil
			return errFuzzKill
		}
	}
	seq := map[int]int{1: 0, 2: 0}
	transfer := func(sp *txn.Space, worker int, b byte) {
		from := int(b>>3) % accounts
		to := (from + 1 + int(b>>6)) % accounts
		amount := int64((b>>3)&0x0f) + 1
		if err := txntest.Transfer(ctx, sp, h, worker, seq[worker], from, to, amount, classify); err != nil {
			t.Errorf("transfer worker %d seq %d: %v", worker, seq[worker], err)
		}
		seq[worker]++
	}

	for _, b := range data {
		switch b % 8 {
		case 0, 1:
			transfer(spA, 1, b)
		case 2, 3:
			transfer(spB, 2, b)
		case 4:
			if err := txntest.Snapshot(ctx, spB, h, 2, seq[2], accounts); err != nil {
				t.Errorf("snapshot: %v", err)
			}
			seq[2]++
		case 5:
			armKill(spA, txn.CommitStage(int(b>>3)%4))
		case 6:
			armKill(spB, txn.CommitStage(int(b>>3)%4))
		case 7:
			// Raw read: in this fault-free fabric every lock is breakable,
			// so a read may never fail.
			cell := int(b>>3) % accounts
			if _, _, err := spA.ReadCell(ctx, cell); err != nil {
				t.Errorf("ReadCell(%d): %v", cell, err)
			}
		}
	}

	spA.FailPoint = nil
	spB.FailPoint = nil
	final, err := txntest.Sweep(ctx, spB, accounts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, v := range txntest.Check(h, final, accounts, initial) {
		t.Errorf("checker: %s", v)
	}
}
