package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rstore/internal/client"
	"rstore/internal/simnet"
)

// valChunk bounds how many read-set validation reads fly at once (and
// sizes the validation buffer).
const valChunk = 32

// Tx is one transaction attempt: reads are validated and their versions
// captured, writes are buffered locally until commit. A Tx is only valid
// inside the RunTx callback that created it.
type Tx struct {
	sp       *Space
	gen      uint64
	genSet   bool
	readOnly bool           // opened by RunReadTx: Write is rejected
	reads    map[int]uint64 // cell -> version captured at first read
	cache    map[int][]byte // cell -> body snapshot backing repeat reads
	writes   map[int][]byte // cell -> buffered new body
}

// noteGen pins the region generation the transaction runs against; a
// repair-plane layout change mid-transaction shows up as a mismatch at
// validation and aborts the attempt.
func (tx *Tx) noteGen() {
	if !tx.genSet {
		tx.gen = tx.sp.data.Info().Generation
		tx.genSet = true
	}
}

// Read returns the cell's body as of the transaction's snapshot. The
// first read of a cell captures its version for commit-time validation;
// repeat reads (and reads of cells this transaction wrote) are served
// from the local cache so the attempt always sees its own writes and a
// stable snapshot. The returned slice is owned by the caller.
func (tx *Tx) Read(ctx context.Context, cell int) ([]byte, error) {
	_, body, err := tx.ReadVersioned(ctx, cell)
	return body, err
}

// ReadVersioned is Read plus the cell's version word as of the snapshot
// (0 = never written). Callers that must distinguish an absent cell from
// a written-empty one — e.g. a hash table telling "end of probe chain"
// from a tombstone — need the version. For cells this transaction wrote
// blind (never read), the reported version is 0.
func (tx *Tx) ReadVersioned(ctx context.Context, cell int) (uint64, []byte, error) {
	if body, ok := tx.writes[cell]; ok {
		return tx.reads[cell], append([]byte(nil), body...), nil
	}
	if body, ok := tx.cache[cell]; ok {
		return tx.reads[cell], append([]byte(nil), body...), nil
	}
	tx.noteGen()
	version, body, err := tx.sp.ReadCell(ctx, cell)
	if err != nil {
		return 0, nil, err
	}
	tx.reads[cell] = version
	tx.cache[cell] = body
	return version, append([]byte(nil), body...), nil
}

// Write buffers body as the cell's new contents. Bytes past body up to
// the cell's capacity are zeroed on install.
func (tx *Tx) Write(cell int, body []byte) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if err := tx.sp.checkCell(cell); err != nil {
		return err
	}
	if len(body) > tx.sp.BodySize() {
		return fmt.Errorf("%w: body %d > cell capacity %d", ErrTooLarge, len(body), tx.sp.BodySize())
	}
	if _, ok := tx.writes[cell]; !ok && len(tx.writes) >= tx.sp.opts.MaxWriteSet {
		return fmt.Errorf("%w: write set > %d cells", ErrTooLarge, tx.sp.opts.MaxWriteSet)
	}
	tx.writes[cell] = append([]byte(nil), body...)
	return nil
}

// RunTx runs fn as an optimistic transaction, retrying aborted attempts
// (lock conflicts, validation failures, broken locks) with the space's
// jittered backoff policy. fn may be invoked many times and must not keep
// side effects across attempts. A read-only fn commits without touching
// any lock. Context cancellation surfaces as ctx.Err(); exhausting every
// attempt surfaces ErrContended.
func (sp *Space) RunTx(ctx context.Context, fn func(tx *Tx) error) error {
	return sp.runTx(ctx, fn, false)
}

// RunReadTx runs fn as a read-only transaction: the commit is a pure
// validation round — the read-set words are re-read and compared — with no
// log-slot write and no lock CAS anywhere on the path (ROADMAP's
// "validate-only, no log slot" fast path). A successful return means every
// value fn read was part of one consistent snapshot. tx.Write inside fn
// fails with ErrReadOnly. Index traversals and multi-cell reads ride this;
// it costs one extra 8-byte read per read-set cell over raw ReadCells and
// buys a serializable multi-cell view.
func (sp *Space) RunReadTx(ctx context.Context, fn func(tx *Tx) error) error {
	return sp.runTx(ctx, fn, true)
}

func (sp *Space) runTx(ctx context.Context, fn func(tx *Tx) error, readOnly bool) error {
	attempts := sp.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sp.retrySleep(ctx, attempt-1); err != nil {
				return err
			}
		}
		tx := &Tx{
			sp:       sp,
			readOnly: readOnly,
			reads:    make(map[int]uint64),
			cache:    make(map[int][]byte),
			writes:   make(map[int][]byte),
		}
		if err := fn(tx); err != nil {
			if errors.Is(err, errAborted) {
				sp.ctr.aborts.Inc()
				continue
			}
			return ctxErr(ctx, err)
		}
		err := sp.commit(ctx, tx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errAborted) {
			return err
		}
		sp.ctr.aborts.Inc()
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w: %d attempts", ErrContended, attempts)
}

// retrySleep waits the policy's jittered backoff before retry `attempt`,
// bailing out the moment the caller's context is done.
func (sp *Space) retrySleep(ctx context.Context, attempt int) error {
	d := sp.opts.Retry.Backoff(attempt)
	if j := sp.opts.Retry.Jitter; j > 0 && d > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*sp.rng.Float64()-1)))
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// commit drives one attempt through the four-round protocol (or the
// single-cell fast path). Every return of errAborted leaves no lock of
// ours behind — unless FailPoint cut the attempt short, which is the
// point of FailPoint.
func (sp *Space) commit(ctx context.Context, tx *Tx) error {
	ct, ctx := sp.startCommitTrace(ctx)
	startV := sp.vnow()
	err := sp.commitInner(ctx, tx, ct, startV)
	ct.finish(err)
	if err == nil {
		sp.ctr.commits.Inc()
		// Counts RunReadTx commits only: a RunTx that happened to buffer
		// no writes also commits validate-only, but counting it here
		// would overstate how often callers ride the declared fast path.
		if tx.readOnly {
			sp.ctr.roCommits.Inc()
		}
		sp.ctr.commitLat.Record(sp.vnow().Sub(startV))
	} else if !errors.Is(err, errAborted) {
		// An abort cleaned up after itself (abandonAttempt flags its own
		// failures); anything else — an install that half-landed, a cut —
		// may have left locks only our slot record can resolve.
		sp.unclean = true
	}
	return err
}

func (sp *Space) commitInner(ctx context.Context, tx *Tx, ct commitTrace, startV simnet.VTime) error {
	if len(tx.writes) == 0 {
		// Read-only: re-validating the read set is the whole commit.
		return ct.phase(ctx, "txn.validate", func(ctx context.Context) error {
			return sp.validateReads(ctx, tx, nil)
		})
	}

	// Capture the expected (unlocked) word for every write-set cell. Cells
	// the transaction read use the captured version — the lock CAS then
	// doubles as their validation. Blind writes fetch a fresh word, waiting
	// out (and eventually breaking) locks; this is also the one place the
	// commit path breaks matured stale locks, before our own record is
	// staged.
	cells := make([]int, 0, len(tx.writes))
	for c := range tx.writes {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	entries := make([]entry, len(cells))
	for i, c := range cells {
		expect, ok := tx.reads[c]
		if !ok {
			tx.noteGen()
			w, err := sp.fetchUnlockedWord(ctx, c)
			if err != nil {
				return err
			}
			expect = w
		}
		entries[i] = entry{cell: c, expect: expect, body: tx.writes[c]}
	}

	if len(entries) == 1 && len(tx.reads) <= 1 {
		if _, onlyWrite := tx.reads[entries[0].cell]; len(tx.reads) == 0 || onlyWrite {
			return sp.commitSingle(ctx, ct, entries[0], startV)
		}
	}

	if sp.unclean {
		// A previous attempt may have left locks that only our current slot
		// record can resolve (breakers punt on a record that has moved on to
		// a later transaction). Resolve the slot before overwriting it.
		if err := sp.recoverOwnSlot(ctx); err != nil {
			return ctxErr(ctx, err)
		}
		sp.unclean = false
	}

	sp.seq++
	seq := sp.seq
	lock := lockWord(sp.owner, sp.incarn, seq)
	pending := statusWord(statePending, sp.incarn, seq)

	// Round 1 — record. Status and redo body land in one write (one
	// fragment: the slot never straddles a stripe), so any peer that can
	// see the PENDING status can see the whole record behind it.
	err := ct.phase(ctx, "txn.log", func(ctx context.Context) error {
		n := encodeRecord(sp.recBuf.Bytes(), pending, entries)
		_, werr := sp.log.WriteAt(ctx, sp.slotOff(sp.owner)+logStatusOff, sp.recBuf, 0, n)
		return werr
	})
	if err != nil {
		return err
	}
	if err := sp.failpoint(StageRecord); err != nil {
		return err
	}

	// Round 2 — lock. All CASes in flight at once; each validates its
	// cell's version as it claims it. The lease clock starts here: the
	// stale-window discipline bounds how long locks are *held*, and the
	// pre-lock rounds (blind-write word fetches, the log record) can cost
	// several fabric round trips on a remote client without making any
	// lock observable.
	startV = sp.vnow()
	var locked []entry
	err = ct.phase(ctx, "txn.lock", func(ctx context.Context) error {
		var lerr error
		pendings := make([]*client.AtomicPending, len(entries))
		for i, e := range entries {
			p, perr := sp.data.StartCompareSwap(ctx, sp.cellOff(e.cell), e.expect, lock)
			if perr != nil {
				lerr = perr
				break
			}
			pendings[i] = p
		}
		conflict := false
		for i, p := range pendings {
			if p == nil {
				continue
			}
			old, _, werr := p.Wait(ctx)
			if werr != nil {
				if lerr == nil {
					lerr = werr
				}
				continue
			}
			if old == entries[i].expect {
				locked = append(locked, entries[i])
			} else {
				conflict = true
				if wordLocked(old) {
					sp.noteSight(entries[i].cell, old)
				}
			}
		}
		if lerr != nil {
			return lerr
		}
		if conflict {
			return errAborted
		}
		return nil
	})
	if err != nil {
		sp.abandonAttempt(ctx, pending, locked)
		return err
	}
	if err := sp.failpoint(StageLocked); err != nil {
		return err
	}

	// Round 3 — validate and decide. The read-only read set is re-checked,
	// then the status word CASes PENDING→COMMITTED: the commit point,
	// arbitrated against breakers that abort stale transactions through the
	// same word. Holding locks past half the stale window forfeits the
	// attempt — the lease-style discipline that makes lock breaking sound.
	err = ct.phase(ctx, "txn.validate", func(ctx context.Context) error {
		if verr := sp.validateReads(ctx, tx, tx.writes); verr != nil {
			return verr
		}
		if sp.vnow().Sub(startV) > sp.opts.StaleLockTimeout/2 {
			return errAborted
		}
		committed := statusWord(stateCommitted, sp.incarn, seq)
		old, _, cerr := sp.log.CompareSwap(ctx, sp.slotOff(sp.owner)+logStatusOff, pending, committed)
		if cerr != nil {
			return cerr
		}
		if old != pending {
			// A breaker rolled us back while we dithered.
			sp.ctr.locksBroken.Inc()
			return errAborted
		}
		return nil
	})
	if err != nil {
		sp.abandonAttempt(ctx, pending, locked)
		return err
	}
	if err := sp.failpoint(StageDecided); err != nil {
		return err
	}

	// Round 4 — install. Publishing the whole cell (fresh version word +
	// body) is also the unlock; cell-sized writes are single fragments, so
	// each publish is atomic in flight. Past the commit point nothing can
	// abort us: failures here leave locks for breakers to roll forward.
	return ct.phase(ctx, "txn.install", func(ctx context.Context) error {
		if sp.FailPoint != nil {
			// Sequential installs so StageInstalled means exactly "the first
			// cell landed, the rest did not".
			for i, e := range entries {
				if _, werr := sp.publishCell(ctx, e, i); werr != nil {
					return werr
				}
				if i == 0 {
					if ferr := sp.failpoint(StageInstalled); ferr != nil {
						return ferr
					}
				}
			}
			return nil
		}
		pendings := make([]*client.Pending, len(entries))
		var werr error
		for i, e := range entries {
			p, perr := sp.startPublishCell(ctx, e, i)
			if perr != nil {
				werr = perr
				break
			}
			pendings[i] = p
		}
		for _, p := range pendings {
			if p == nil {
				continue
			}
			if _, perr := p.Wait(ctx); perr != nil && werr == nil {
				werr = perr
			}
		}
		return werr
	})
}

// commitSingle is the one-cell fast path: CAS the version to a
// self-describing lock word, publish the new cell over it. Two rounds, no
// log record — recovery state lives in the lock word itself.
func (sp *Space) commitSingle(ctx context.Context, ct commitTrace, e entry, startV simnet.VTime) error {
	sp.seq++
	lock := singleLockWord(sp.owner, e.expect)
	// As in commitInner, the lease clock starts at the lock round: a blind
	// write's word fetch happened before this call and holds nothing.
	startV = sp.vnow()
	err := ct.phase(ctx, "txn.lock", func(ctx context.Context) error {
		old, _, cerr := sp.data.CompareSwap(ctx, sp.cellOff(e.cell), e.expect, lock)
		if cerr != nil {
			return cerr
		}
		if old != e.expect {
			if wordLocked(old) {
				sp.noteSight(e.cell, old)
			}
			return errAborted
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := sp.failpoint(StageLocked); err != nil {
		return err
	}
	if sp.vnow().Sub(startV) > sp.opts.StaleLockTimeout/2 {
		// Too slow: a breaker may already have rolled the version forward.
		// Try to restore the prior word; whoever's CAS lands first wins, and
		// either way the new body must not be published.
		_, _, _ = sp.data.CompareSwap(ctx, sp.cellOff(e.cell), lock, e.expect)
		return errAborted
	}
	err = ct.phase(ctx, "txn.install", func(ctx context.Context) error {
		_, werr := sp.publishCell(ctx, e, 0)
		return werr
	})
	if err != nil {
		return err
	}
	return sp.failpoint(StageInstalled)
}

// fetchUnlockedWord reads a blind-write cell's word, waiting out (and
// after the stale window, breaking) locks.
func (sp *Space) fetchUnlockedWord(ctx context.Context, cell int) (uint64, error) {
	for retry := 0; retry < sp.opts.ReadRetries; retry++ {
		if _, err := sp.data.ReadAt(ctx, sp.cellOff(cell), sp.wordBuf, 0, 8); err != nil {
			return 0, ctxErr(ctx, err)
		}
		w := le64(sp.wordBuf.Bytes())
		if !wordLocked(w) {
			sp.clearSight(cell)
			return w, nil
		}
		sp.maybeBreak(ctx, cell, w)
		if err := sp.backoff(ctx, retry); err != nil {
			return 0, err
		}
	}
	if ctx.Err() != nil {
		return 0, ctx.Err()
	}
	return 0, errAborted
}

// validateReads re-reads every read-set word not in skip and compares it
// to the captured version, then re-checks the region generation.
func (sp *Space) validateReads(ctx context.Context, tx *Tx, skip map[int][]byte) error {
	var cells []int
	for c := range tx.reads {
		if skip != nil {
			if _, ok := skip[c]; ok {
				continue
			}
		}
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for base := 0; base < len(cells); base += valChunk {
		end := base + valChunk
		if end > len(cells) {
			end = len(cells)
		}
		chunk := cells[base:end]
		pendings := make([]*client.Pending, len(chunk))
		var err error
		for i, c := range chunk {
			p, perr := sp.data.StartReadAt(ctx, sp.cellOff(c), sp.valBuf, 8*i, 8)
			if perr != nil {
				err = perr
				break
			}
			pendings[i] = p
		}
		mismatch := false
		for i, p := range pendings {
			if p == nil {
				continue
			}
			if _, werr := p.Wait(ctx); werr != nil {
				if err == nil {
					err = werr
				}
				continue
			}
			if le64(sp.valBuf.Bytes()[8*i:]) != tx.reads[chunk[i]] {
				mismatch = true
			}
		}
		if err != nil {
			return err
		}
		if mismatch {
			return errAborted
		}
	}
	if tx.genSet && sp.data.Info().Generation != tx.gen {
		return errAborted
	}
	return nil
}

// abandonAttempt rolls back a commit attempt that lost before its commit
// point: the status word is retired PENDING→ABORTED first (so no breaker
// can roll the attempt forward afterwards), then every lock still held is
// released back to its prior version. All best-effort — a breaker racing
// us performs the exact same CASes.
func (sp *Space) abandonAttempt(ctx context.Context, pending uint64, locked []entry) {
	aborted := statusWord(stateAborted, statusIncarn(pending), statusSeq(pending))
	_, _, serr := sp.log.CompareSwap(ctx, sp.slotOff(sp.owner)+logStatusOff, pending, aborted)
	lock := lockWord(sp.owner, statusIncarn(pending), statusSeq(pending))
	var lerr error
	for _, e := range locked {
		if _, _, err := sp.data.CompareSwap(ctx, sp.cellOff(e.cell), lock, e.expect); err != nil {
			lerr = err
		}
	}
	if serr != nil || lerr != nil {
		// Some lock may still dangle, and only this slot's record can
		// resolve it. Do not reuse the slot before re-resolving.
		sp.unclean = true
	}
}

// publishCell writes one committed cell whole: the bumped version word,
// the new body, zero padding to the cell boundary. bufSlot selects this
// cell's chunk of the publish staging buffer.
func (sp *Space) publishCell(ctx context.Context, e entry, bufSlot int) (client.IOStat, error) {
	p, err := sp.startPublishCell(ctx, e, bufSlot)
	if err != nil {
		return client.IOStat{}, err
	}
	return p.Wait(ctx)
}

func (sp *Space) startPublishCell(ctx context.Context, e entry, bufSlot int) (*client.Pending, error) {
	cs := sp.opts.CellSize
	chunk := sp.pubBuf.Bytes()[bufSlot*cs : (bufSlot+1)*cs]
	put64(chunk, nextVersion(e.expect))
	n := copy(chunk[8:], e.body)
	for i := 8 + n; i < cs; i++ {
		chunk[i] = 0
	}
	return sp.data.StartWriteAt(ctx, sp.cellOff(e.cell), sp.pubBuf, bufSlot*cs, cs)
}

// failpoint consults the test-only FailPoint hook. A cut attempt leaves
// its locks and record exactly as they are — and marks the handle
// unclean, so a reused handle (modeling a client that lived on) resolves
// its own slot before staging another record.
func (sp *Space) failpoint(stage CommitStage) error {
	if sp.FailPoint == nil {
		return nil
	}
	err := sp.FailPoint(stage)
	if err != nil {
		sp.unclean = true
	}
	return err
}
