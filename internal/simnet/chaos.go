package simnet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos is a scriptable fault controller for a fabric. It implements the
// Injector interface and drives four failure classes:
//
//   - node kill/restart (link down, every transfer fails with ErrNodeDown)
//   - pairwise partition/heal (ErrPartitioned)
//   - transient drops: each transfer is lost with a configured probability
//     and fails with ErrDropped (the retryable class)
//   - latency spikes: each transfer is delayed by a configured extra with a
//     configured probability
//
// All probabilistic decisions are pure functions of the seed and the
// transfer's identity (endpoints, size, virtual start time), not of any
// mutable counter. Two runs over the same virtual timeline therefore make
// identical drop/spike decisions regardless of goroutine interleaving —
// chaos runs are deterministic and seedable.
//
// Scripted events fire on virtual time: At(v, fn) runs fn once the
// fabric-wide frontier crosses v. Because virtual time only advances as
// modeled work completes, a scripted timeline is reproducible in a way a
// wall-clock timeline is not.
type Chaos struct {
	f    *Fabric
	seed uint64

	// pendingEvents counts scheduled events, letting Advance return without
	// locking on the (hot) no-event path.
	pendingEvents atomic.Int32

	mu         sync.Mutex
	dropRate   float64
	pairDrop   map[[2]NodeID]float64
	spikeProb  float64
	spikeExtra time.Duration
	events     []chaosEvent
	firing     bool
	stats      ChaosStats
}

// chaosEvent is one scripted action on the virtual timeline.
type chaosEvent struct {
	at VTime
	fn func(*Chaos)
}

// ChaosStats counts what the controller has injected.
type ChaosStats struct {
	Drops  int64
	Spikes int64
	Events int64
}

// NewChaos attaches a chaos controller to the fabric. The controller
// replaces any previously installed injector.
func NewChaos(f *Fabric, seed int64) *Chaos {
	c := &Chaos{
		f:        f,
		seed:     uint64(seed),
		pairDrop: make(map[[2]NodeID]float64),
	}
	f.SetInjector(c)
	return c
}

// Detach removes the controller from the fabric; traffic flows clean again.
func (c *Chaos) Detach() { c.f.SetInjector(nil) }

// Stats returns a snapshot of the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// KillNode downs a node immediately: transfers to or from it fail with
// ErrNodeDown until RestartNode.
func (c *Chaos) KillNode(id NodeID) error { return c.f.SetNodeUp(id, false) }

// RestartNode brings a killed node's link back.
func (c *Chaos) RestartNode(id NodeID) error { return c.f.SetNodeUp(id, true) }

// Partition blocks all traffic between a and b until Heal.
func (c *Chaos) Partition(a, b NodeID) { c.f.SetPartition(a, b, true) }

// Heal unblocks traffic between a and b.
func (c *Chaos) Heal(a, b NodeID) { c.f.SetPartition(a, b, false) }

// SetDropRate makes every transfer fail with ErrDropped with probability p
// (clamped to [0,1]). Per-pair overrides from SetPairDropRate win.
func (c *Chaos) SetDropRate(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropRate = clamp01(p)
}

// SetPairDropRate overrides the drop probability for one node pair (both
// directions). A negative p removes the override.
func (c *Chaos) SetPairDropRate(a, b NodeID, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p < 0 {
		delete(c.pairDrop, pairKey(a, b))
		return
	}
	c.pairDrop[pairKey(a, b)] = clamp01(p)
}

// SetLatencySpike delays each transfer by extra with probability p.
func (c *Chaos) SetLatencySpike(extra time.Duration, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spikeExtra = extra
	c.spikeProb = clamp01(p)
}

// At schedules fn to run once the fabric's virtual frontier reaches v. The
// callback runs on whichever goroutine advances the frontier (or calls
// Fire), so it must not block; the Chaos and Fabric mutation methods above
// are all safe to call from it.
func (c *Chaos) At(v VTime, fn func(*Chaos)) {
	c.mu.Lock()
	c.events = append(c.events, chaosEvent{at: v, fn: fn})
	sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].at < c.events[j].at })
	c.mu.Unlock()
	c.pendingEvents.Add(1)
	// The frontier may already be past v.
	c.Fire(c.f.VNow())
}

// Fire runs every scheduled event due at or before v. The fabric calls it
// implicitly as the frontier advances; tests may call it directly to run a
// script against an idle fabric.
func (c *Chaos) Fire(v VTime) {
	if c.pendingEvents.Load() == 0 {
		return
	}
	c.mu.Lock()
	if c.firing {
		// An event's callback advanced the frontier (e.g. via a transfer);
		// the outer Fire will pick up anything newly due.
		c.mu.Unlock()
		return
	}
	c.firing = true
	for {
		var due []chaosEvent
		for len(c.events) > 0 && c.events[0].at <= v {
			due = append(due, c.events[0])
			c.events = c.events[1:]
		}
		if len(due) == 0 {
			break
		}
		c.stats.Events += int64(len(due))
		c.mu.Unlock()
		c.pendingEvents.Add(int32(-len(due)))
		for _, ev := range due {
			ev.fn(c)
		}
		c.mu.Lock()
	}
	c.firing = false
	c.mu.Unlock()
}

// Transfer implements Injector: it decides drops and spikes for one
// transfer. The decision hashes the transfer's identity with the seed, so
// it is deterministic across runs and goroutine schedules.
func (c *Chaos) Transfer(from, to NodeID, n int, start VTime) (time.Duration, error) {
	c.mu.Lock()
	rate, ok := c.pairDrop[pairKey(from, to)]
	if !ok {
		rate = c.dropRate
	}
	spikeProb, spikeExtra := c.spikeProb, c.spikeExtra
	c.mu.Unlock()

	if rate > 0 && hashUnit(c.seed, uint64(from), uint64(to), uint64(n), uint64(start), 0x1) < rate {
		c.mu.Lock()
		c.stats.Drops++
		c.mu.Unlock()
		return 0, ErrDropped
	}
	if spikeProb > 0 && hashUnit(c.seed, uint64(from), uint64(to), uint64(n), uint64(start), 0x2) < spikeProb {
		c.mu.Lock()
		c.stats.Spikes++
		c.mu.Unlock()
		return spikeExtra, nil
	}
	return 0, nil
}

// Advance implements Injector: scripted events fire as the frontier moves.
func (c *Chaos) Advance(v VTime) { c.Fire(v) }

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// hashUnit maps (seed, words...) to a uniform float64 in [0,1) with a
// splitmix64-style mix. Pure function: no state, no interleaving effects.
func hashUnit(seed uint64, words ...uint64) float64 {
	x := seed
	for _, w := range words {
		x ^= w + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	// 53 high bits → [0,1).
	return float64(x>>11) / float64(1<<53)
}
