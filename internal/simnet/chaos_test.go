package simnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestChaosKillRestart(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 1)
	if err := c.KillNode(1); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrNodeDown) {
		t.Errorf("err = %v, want ErrNodeDown", err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after restart: %v", err)
	}
}

func TestChaosPartitionHeal(t *testing.T) {
	f := NewFabric(3, testParams())
	c := NewChaos(f, 1)
	c.Partition(0, 1)
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrPartitioned) {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
	if _, err := f.Transfer(0, 2, 10, 0); err != nil {
		t.Errorf("bystander pair affected: %v", err)
	}
	c.Heal(0, 1)
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after heal: %v", err)
	}
}

func TestChaosDropRateZeroAndOne(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 7)
	c.SetDropRate(0)
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("rate 0 dropped: %v", err)
	}
	c.SetDropRate(1)
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrDropped) {
		t.Errorf("rate 1 err = %v, want ErrDropped", err)
	}
	if st := c.Stats(); st.Drops != 1 {
		t.Errorf("Drops = %d, want 1", st.Drops)
	}
}

func TestChaosDropDecisionsDeterministic(t *testing.T) {
	// The same seed and the same transfer identities must produce the same
	// drop pattern, run to run.
	pattern := func(seed int64) []bool {
		f := NewFabric(2, testParams())
		c := NewChaos(f, seed)
		c.SetDropRate(0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := f.Transfer(0, 1, 100+i, VTime(i*1000))
			out = append(out, errors.Is(err, ErrDropped))
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decisions diverged at transfer %d", i)
		}
	}
	// A different seed should (overwhelmingly) give a different pattern.
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical drop patterns")
	}
}

func TestChaosDropRateIsRoughlyHonored(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 99)
	c.SetDropRate(0.3)
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := f.Transfer(0, 1, i, VTime(i*777)); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.2 || got > 0.4 {
		t.Errorf("observed drop rate %.3f, want ~0.3", got)
	}
}

func TestChaosPairDropOverride(t *testing.T) {
	f := NewFabric(3, testParams())
	c := NewChaos(f, 5)
	c.SetPairDropRate(0, 1, 1)
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrDropped) {
		t.Errorf("pair 0-1 err = %v, want ErrDropped", err)
	}
	if _, err := f.Transfer(0, 2, 10, 0); err != nil {
		t.Errorf("pair 0-2 should be clean: %v", err)
	}
	c.SetPairDropRate(0, 1, -1) // remove override
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after override removal: %v", err)
	}
}

func TestChaosLatencySpike(t *testing.T) {
	p := testParams()
	f := NewFabric(2, p)
	c := NewChaos(f, 11)
	const extra = 50 * time.Microsecond
	c.SetLatencySpike(extra, 1)
	end, err := f.Transfer(0, 1, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	want := VTime(0).Add(extra + p.SerializationTime(1000) + p.PropDelay)
	if end != want {
		t.Errorf("spiked end = %v, want %v", end, want)
	}
	if st := c.Stats(); st.Spikes != 1 {
		t.Errorf("Spikes = %d, want 1", st.Spikes)
	}
}

func TestChaosScriptedEventsFireOnVirtualTime(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 3)
	c.At(5000, func(ch *Chaos) { _ = ch.KillNode(1) })

	// Before the frontier reaches 5000 the node is up.
	if _, err := f.Transfer(0, 1, 1000, 0); err != nil {
		t.Fatalf("early transfer: %v", err)
	}
	// This transfer completes past v=5000, advancing the frontier across the
	// event; the next transfer must observe the kill.
	if _, err := f.Transfer(0, 1, 4000, 2000); err != nil {
		t.Fatalf("crossing transfer: %v", err)
	}
	if f.NodeUp(1) {
		t.Fatal("scripted kill did not fire")
	}
	if _, err := f.Transfer(0, 1, 10, 6000); !errors.Is(err, ErrNodeDown) {
		t.Errorf("err = %v, want ErrNodeDown", err)
	}
}

func TestChaosAtInThePastFiresImmediately(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 3)
	if _, err := f.Transfer(0, 1, 1000, 0); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	fired := false
	c.At(1, func(*Chaos) { fired = true })
	if !fired {
		t.Error("event scheduled behind the frontier did not fire")
	}
}

func TestChaosEventChaining(t *testing.T) {
	// An event's callback may schedule further events, including ones
	// already due; all must fire in one frontier crossing.
	f := NewFabric(2, testParams())
	c := NewChaos(f, 3)
	var order []int
	c.At(100, func(ch *Chaos) {
		order = append(order, 1)
		ch.At(200, func(*Chaos) { order = append(order, 2) })
	})
	c.Fire(1000)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2]", order)
	}
	if st := c.Stats(); st.Events != 2 {
		t.Errorf("Events = %d, want 2", st.Events)
	}
}

func TestChaosDetach(t *testing.T) {
	f := NewFabric(2, testParams())
	c := NewChaos(f, 1)
	c.SetDropRate(1)
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	c.Detach()
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after detach: %v", err)
	}
}

// Property: hashUnit stays in [0,1) for arbitrary inputs, and is a pure
// function of its arguments.
func TestHashUnitProperty(t *testing.T) {
	fn := func(seed, a, b, c uint64) bool {
		u := hashUnit(seed, a, b, c)
		return u >= 0 && u < 1 && u == hashUnit(seed, a, b, c)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClamp01(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	}
	for _, tt := range tests {
		if got := clamp01(tt.in); got != tt.want {
			t.Errorf("clamp01(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
