package simnet

import (
	"math/rand"
	"sort"
	"testing"
)

// TestLineReservationsNeverOverlap: arbitrary interleavings of gap-filling
// reservations must produce pairwise-disjoint intervals — double-booking a
// line would fabricate bandwidth.
func TestLineReservationsNeverOverlap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var l line
		type iv struct{ from, to VTime }
		var got []iv
		for i := 0; i < 2000; i++ {
			start := VTime(rng.Intn(1 << 20))
			ser := VTime(rng.Intn(1<<12) + 1)
			from, to := l.reserve(start, ser)
			if from < start {
				t.Fatalf("seed %d: reservation [%d,%d) before start %d", seed, from, to, start)
			}
			if to-from != ser {
				t.Fatalf("seed %d: reservation [%d,%d) wrong length, want %d", seed, from, to, ser)
			}
			got = append(got, iv{from, to})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].from < got[j].from })
		for i := 1; i < len(got); i++ {
			if got[i].from < got[i-1].to {
				t.Fatalf("seed %d: overlap [%d,%d) vs [%d,%d)", seed,
					got[i-1].from, got[i-1].to, got[i].from, got[i].to)
			}
		}
	}
}

// TestLineGapFill: a late-start reservation leaves a gap that an earlier
// start can reclaim.
func TestLineGapFill(t *testing.T) {
	var l line
	f1, t1 := l.reserve(1000, 100) // leaves gap [0,1000)
	if f1 != 1000 || t1 != 1100 {
		t.Fatalf("first = [%d,%d)", f1, t1)
	}
	f2, t2 := l.reserve(0, 500) // fills the gap
	if f2 != 0 || t2 != 500 {
		t.Fatalf("gap fill = [%d,%d)", f2, t2)
	}
	f3, _ := l.reserve(0, 600) // does not fit remaining gap [500,1000); goes to frontier
	if f3 != 1100 {
		t.Fatalf("frontier = %d, want 1100", f3)
	}
	f4, t4 := l.reserve(0, 500) // exactly fills [500,1000)
	if f4 != 500 || t4 != 1000 {
		t.Fatalf("exact fill = [%d,%d)", f4, t4)
	}
}
