// Package simnet simulates a switched cluster fabric in virtual time.
//
// The simulator provides the timing substrate for the software RDMA layer:
// nodes joined by full-duplex links through a central switch, a first-order
// cost model (per-link bandwidth, propagation delay), FIFO link occupancy
// for queueing and bandwidth sharing, and failure injection (node down,
// pairwise partitions).
//
// All data movement in the repository is real (bytes are copied between
// per-node memories by the layers above); simnet only accounts for *when*
// those transfers would complete on the modeled hardware. Callers thread an
// explicit virtual start time through each transfer and receive the virtual
// completion time back, which makes benchmarks deterministic and lets
// concurrent actors share links realistically.
package simnet

import (
	"fmt"
	"time"
)

// VTime is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time is unrelated to the wall clock: it advances only
// as modeled work is performed.
type VTime int64

// Duration converts a virtual interval to a time.Duration.
func (v VTime) Duration() time.Duration { return time.Duration(v) }

// Add returns the virtual time d after v.
func (v VTime) Add(d time.Duration) VTime { return v + VTime(d) }

// Sub returns the interval between v and earlier time u.
func (v VTime) Sub(u VTime) time.Duration { return time.Duration(v - u) }

// String renders the virtual time with microsecond precision.
func (v VTime) String() string {
	return fmt.Sprintf("%.3fus", float64(v)/1e3)
}

// maxV returns the later of two virtual times.
func maxV(a, b VTime) VTime {
	if a > b {
		return a
	}
	return b
}
