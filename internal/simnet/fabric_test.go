package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	return Params{
		LinkBandwidth: 8e9, // 1 GB/s: 1 byte per ns, easy math
		PropDelay:     1000 * time.Nanosecond,
		LoopbackDelay: 100 * time.Nanosecond,
		MemBandwidth:  80e9,
		DiskBandwidth: 1e9,
		DiskSeek:      time.Millisecond,
	}
}

func TestSerializationTime(t *testing.T) {
	p := testParams()
	tests := []struct {
		name string
		n    int
		want time.Duration
	}{
		{"zero", 0, 0},
		{"one byte", 1, time.Nanosecond},
		{"kilobyte", 1000, 1000 * time.Nanosecond},
		{"negative clamps to zero", -5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.SerializationTime(tt.n); got != tt.want {
				t.Errorf("SerializationTime(%d) = %v, want %v", tt.n, got, tt.want)
			}
		})
	}
}

func TestTransferLatency(t *testing.T) {
	f := NewFabric(2, testParams())
	end, err := f.Transfer(0, 1, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	// 1000 bytes at 1 byte/ns = 1000ns serialization + 1000ns prop = 2000ns.
	want := VTime(2000)
	if end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestTransferQueueing(t *testing.T) {
	f := NewFabric(2, testParams())
	// Two back-to-back transfers posted at the same virtual start share
	// node 0's egress line: the second queues behind the first.
	end1, err := f.Transfer(0, 1, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer 1: %v", err)
	}
	end2, err := f.Transfer(0, 1, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer 2: %v", err)
	}
	if end2 <= end1 {
		t.Errorf("second transfer end %v not after first %v", end2, end1)
	}
	if want := end1 + VTime(1000); end2 != want {
		t.Errorf("end2 = %v, want %v (queued one serialization later)", end2, want)
	}
}

func TestTransferDisjointLinksDoNotQueue(t *testing.T) {
	f := NewFabric(4, testParams())
	end1, err := f.Transfer(0, 1, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer 0->1: %v", err)
	}
	end2, err := f.Transfer(2, 3, 1000, 0)
	if err != nil {
		t.Fatalf("Transfer 2->3: %v", err)
	}
	if end1 != end2 {
		t.Errorf("disjoint transfers should complete simultaneously: %v vs %v", end1, end2)
	}
}

func TestLoopbackTransfer(t *testing.T) {
	f := NewFabric(1, testParams())
	end, err := f.Transfer(0, 0, 800, 0)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	want := VTime(0).Add(testParams().LoopbackDelay + testParams().MemCopyTime(800))
	if end != want {
		t.Errorf("loopback end = %v, want %v", end, want)
	}
	// Loopback must not occupy fabric links.
	st := f.Stats()[0]
	if st.Egress.Bytes != 0 || st.Ingress.Bytes != 0 {
		t.Errorf("loopback occupied links: %+v", st)
	}
}

func TestTransferToDownNode(t *testing.T) {
	f := NewFabric(2, testParams())
	if err := f.SetNodeUp(1, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrNodeDown) {
		t.Errorf("err = %v, want ErrNodeDown", err)
	}
	if err := f.SetNodeUp(1, true); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after revive: %v", err)
	}
}

func TestTransferPartitioned(t *testing.T) {
	f := NewFabric(3, testParams())
	f.SetPartition(0, 1, true)
	if _, err := f.Transfer(0, 1, 10, 0); !errors.Is(err, ErrPartitioned) {
		t.Errorf("0->1 err = %v, want ErrPartitioned", err)
	}
	if _, err := f.Transfer(1, 0, 10, 0); !errors.Is(err, ErrPartitioned) {
		t.Errorf("1->0 err = %v, want ErrPartitioned", err)
	}
	if _, err := f.Transfer(0, 2, 10, 0); err != nil {
		t.Errorf("0->2 should be unaffected: %v", err)
	}
	f.SetPartition(0, 1, false)
	if _, err := f.Transfer(0, 1, 10, 0); err != nil {
		t.Errorf("after heal: %v", err)
	}
}

func TestUnknownNode(t *testing.T) {
	f := NewFabric(1, testParams())
	if _, err := f.Transfer(0, 5, 10, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := f.Transfer(-1, 0, 10, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestNegativeBytes(t *testing.T) {
	f := NewFabric(2, testParams())
	if _, err := f.Transfer(0, 1, -1, 0); !errors.Is(err, ErrNegativeBytes) {
		t.Errorf("err = %v, want ErrNegativeBytes", err)
	}
}

func TestAddNode(t *testing.T) {
	f := NewFabric(1, testParams())
	id := f.AddNode()
	if id != 1 {
		t.Fatalf("AddNode id = %v, want 1", id)
	}
	if f.Size() != 2 {
		t.Fatalf("Size = %d, want 2", f.Size())
	}
	if _, err := f.Transfer(0, id, 10, 0); err != nil {
		t.Errorf("transfer to added node: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := NewFabric(2, testParams())
	for i := 0; i < 5; i++ {
		if _, err := f.Transfer(0, 1, 1000, 0); err != nil {
			t.Fatalf("Transfer: %v", err)
		}
	}
	st := f.Stats()
	if got := st[0].Egress.Bytes; got != 5000 {
		t.Errorf("egress bytes = %d, want 5000", got)
	}
	if got := st[1].Ingress.Bytes; got != 5000 {
		t.Errorf("ingress bytes = %d, want 5000", got)
	}
	if got := st[0].Egress.Ops; got != 5 {
		t.Errorf("egress ops = %d, want 5", got)
	}
	if got := st[0].Egress.Busy; got != VTime(5000) {
		t.Errorf("egress busy = %v, want 5000ns", got)
	}
	f.ResetStats()
	st = f.Stats()
	if st[0].Egress.Bytes != 0 || st[0].Egress.Ops != 0 {
		t.Errorf("stats not reset: %+v", st[0])
	}
}

// TestAggregateBandwidthScales checks the property the E2 experiment relies
// on: with all-to-all transfers, modeled aggregate bandwidth grows with the
// number of machines because each node contributes an independent link.
func TestAggregateBandwidthScales(t *testing.T) {
	elapsed := func(nodes int) VTime {
		f := NewFabric(nodes, testParams())
		const size = 1 << 20
		var latest VTime
		for i := 0; i < nodes; i++ {
			src := NodeID(i)
			dst := NodeID((i + 1) % nodes)
			end, err := f.Transfer(src, dst, size, 0)
			if err != nil {
				t.Fatalf("Transfer: %v", err)
			}
			latest = maxV(latest, end)
		}
		return latest
	}
	// Same per-node volume: wall time should stay ~flat as nodes grow,
	// meaning aggregate bandwidth scales linearly.
	e2, e8 := elapsed(2), elapsed(8)
	if e8 > e2*2 {
		t.Errorf("8-node ring took %v, 2-node %v: aggregate bandwidth did not scale", e8, e2)
	}
}

// TestConcurrentTransfers exercises the fabric under real goroutine
// concurrency: accounting must stay consistent and no transfer may be lost.
func TestConcurrentTransfers(t *testing.T) {
	f := NewFabric(4, testParams())
	const (
		workers = 8
		ops     = 200
		size    = 128
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var now VTime
			for i := 0; i < ops; i++ {
				src := NodeID(rng.Intn(4))
				dst := NodeID(rng.Intn(4))
				end, err := f.Transfer(src, dst, size, now)
				if err != nil {
					t.Errorf("Transfer: %v", err)
					return
				}
				if end < now {
					t.Errorf("end %v before start %v", end, now)
					return
				}
				now = end
			}
		}(int64(w))
	}
	wg.Wait()

	var egressOps, ingressOps int64
	for _, st := range f.Stats() {
		egressOps += st.Egress.Ops
		ingressOps += st.Ingress.Ops
	}
	if egressOps != ingressOps {
		t.Errorf("egress ops %d != ingress ops %d", egressOps, ingressOps)
	}
}

// Property: a transfer's completion is never before start + serialization +
// propagation, and queueing can only push it later.
func TestTransferLowerBoundProperty(t *testing.T) {
	p := testParams()
	f := NewFabric(8, p)
	fn := func(srcRaw, dstRaw uint8, sizeRaw uint16, startRaw uint32) bool {
		src := NodeID(srcRaw % 8)
		dst := NodeID(dstRaw % 8)
		if src == dst {
			dst = (dst + 1) % 8
		}
		size := int(sizeRaw)
		start := VTime(startRaw)
		end, err := f.Transfer(src, dst, size, start)
		if err != nil {
			return false
		}
		lower := start.Add(p.SerializationTime(size) + p.PropDelay)
		return end >= lower
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVTimeHelpers(t *testing.T) {
	v := VTime(1500)
	if got := v.Add(500 * time.Nanosecond); got != VTime(2000) {
		t.Errorf("Add = %v", got)
	}
	if got := VTime(2000).Sub(v); got != 500*time.Nanosecond {
		t.Errorf("Sub = %v", got)
	}
	if got := v.String(); got != "1.500us" {
		t.Errorf("String = %q", got)
	}
	if got := v.Duration(); got != 1500*time.Nanosecond {
		t.Errorf("Duration = %v", got)
	}
}

func TestDiskTime(t *testing.T) {
	p := testParams()
	got := p.DiskTime(1e9 / 8) // 125 MB at 1 Gb/s = 1s + seek
	want := p.DiskSeek + time.Second
	if got != want {
		t.Errorf("DiskTime = %v, want %v", got, want)
	}
}

func TestZeroByteTransferStillPaysPropagation(t *testing.T) {
	f := NewFabric(2, testParams())
	end, err := f.Transfer(0, 1, 0, 100)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if want := VTime(100).Add(testParams().PropDelay); end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestVNowMonotonic(t *testing.T) {
	f := NewFabric(2, testParams())
	var prev VTime
	for i := 0; i < 50; i++ {
		if _, err := f.Transfer(0, 1, 100, VTime(i*10)); err != nil {
			t.Fatalf("Transfer: %v", err)
		}
		now := f.VNow()
		if now < prev {
			t.Fatalf("VNow went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
	if prev == 0 {
		t.Error("VNow never advanced")
	}
}

func TestSegmentedTransferMatchesWholeTransfer(t *testing.T) {
	// On an idle fabric, segmentation must not change a single flow's
	// completion time (modulo the final segment's pipelining benefit being
	// absent for a lone flow).
	p := testParams()
	p.SegmentBytes = 256
	f := NewFabric(2, p)
	end, err := f.Transfer(0, 1, 4096, 0)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	want := VTime(0).Add(p.SerializationTime(4096) + p.PropDelay)
	if end != want {
		t.Errorf("segmented end = %v, want %v", end, want)
	}
}

func TestLoopbackToDownNodeFails(t *testing.T) {
	f := NewFabric(1, testParams())
	if err := f.SetNodeUp(0, false); err != nil {
		t.Fatalf("SetNodeUp: %v", err)
	}
	if _, err := f.Transfer(0, 0, 10, 0); !errors.Is(err, ErrNodeDown) {
		t.Errorf("err = %v, want ErrNodeDown", err)
	}
}
