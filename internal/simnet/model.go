package simnet

import "time"

// Params holds the cost-model constants of the simulated fabric. The
// defaults (see DefaultParams) are calibrated to the FDR-class 12-machine
// testbed used in the RStore paper; see DESIGN.md "Cost-model calibration".
type Params struct {
	// LinkBandwidth is the per-direction capacity of every node's link to
	// the switch, in bits per second.
	LinkBandwidth float64

	// PropDelay is the one-way propagation plus switch delay between any
	// two distinct nodes.
	PropDelay time.Duration

	// LoopbackDelay is the delay for a node talking to itself (no fabric
	// traversal, just a local DMA).
	LoopbackDelay time.Duration

	// MemBandwidth is the effective bandwidth of a server-side memory copy,
	// in bits per second. Two-sided (CPU-mediated) designs pay this on every
	// op; one-sided RDMA does not.
	MemBandwidth float64

	// DiskBandwidth is the effective sequential disk bandwidth per node, in
	// bits per second. Used by the MapReduce sort baseline.
	DiskBandwidth float64

	// DiskSeek is the latency charged for each distinct disk stream start.
	DiskSeek time.Duration

	// SegmentBytes is the granularity at which transfers occupy links.
	// Concurrent flows interleave at this granularity (as real fabrics do
	// at MTU granularity), avoiding message-sized head-of-line blocking.
	// Default 64 KiB.
	SegmentBytes int
}

// DefaultParams returns the calibrated testbed model.
func DefaultParams() Params {
	return Params{
		LinkBandwidth: 56e9, // 56 Gb/s per direction (FDR class)
		PropDelay:     900 * time.Nanosecond,
		LoopbackDelay: 150 * time.Nanosecond,
		MemBandwidth:  80e9,
		DiskBandwidth: 4e9, // small RAID, matching the MR-baseline calibration
		DiskSeek:      4 * time.Millisecond,
		SegmentBytes:  64 << 10,
	}
}

// segment returns the link-occupancy granularity.
func (p Params) segment() int {
	if p.SegmentBytes <= 0 {
		return 64 << 10
	}
	return p.SegmentBytes
}

// serialize returns the time to push n bytes through a pipe of bw bits/sec.
func serialize(n int, bw float64) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / bw * float64(time.Second))
}

// SerializationTime returns the wire time for n bytes on one link direction.
func (p Params) SerializationTime(n int) time.Duration {
	return serialize(n, p.LinkBandwidth)
}

// MemCopyTime returns the modeled time for a CPU to copy n bytes.
func (p Params) MemCopyTime(n int) time.Duration {
	return serialize(n, p.MemBandwidth)
}

// DiskTime returns the modeled time to stream n bytes to or from disk,
// including one seek.
func (p Params) DiskTime(n int) time.Duration {
	return p.DiskSeek + serialize(n, p.DiskBandwidth)
}
