package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a machine in the simulated cluster.
type NodeID int32

// String renders the node id as "n<id>".
func (id NodeID) String() string { return fmt.Sprintf("n%d", id) }

// Errors reported by the fabric.
var (
	ErrNodeDown      = errors.New("simnet: node is down")
	ErrPartitioned   = errors.New("simnet: nodes are partitioned")
	ErrUnknownNode   = errors.New("simnet: unknown node")
	ErrNegativeBytes = errors.New("simnet: negative transfer size")
	// ErrDropped reports a transfer lost to transient fault injection. It is
	// the one retryable fabric error: the layers above model RC-style
	// retransmission against it, whereas ErrNodeDown/ErrPartitioned persist
	// until the failure is healed.
	ErrDropped = errors.New("simnet: transfer dropped (transient)")
)

// Injector observes and perturbs fabric traffic. Implementations must be
// safe for concurrent use; the Chaos controller is the canonical one.
type Injector interface {
	// Transfer is consulted before a transfer occupies any line. A non-nil
	// error fails the transfer (ErrDropped for transient losses); a positive
	// extra delays its start (latency spike).
	Transfer(from, to NodeID, n int, start VTime) (extra time.Duration, err error)
	// Advance observes the fabric-wide virtual frontier moving to v, giving
	// scripted fault timelines a clock to fire against.
	Advance(v VTime)
}

// maxGaps bounds the free-gap list a line remembers. Old gaps beyond the
// bound are forgotten (conservatively treated as busy).
const maxGaps = 4096

// gap is a free interval [from, to) behind a line's frontier.
type gap struct {
	from, to VTime
}

// line is one direction of a node's link to the switch. The line is a
// work-conserving unit-capacity resource: a reservation takes the earliest
// free interval at or after its start time — either a remembered gap
// behind the frontier or the frontier itself. Remembering gaps matters: an
// actor whose chained start lands mid-round must not permanently waste the
// idle capacity before it, or balanced all-to-all traffic degrades
// round-over-round.
type line struct {
	mu       sync.Mutex
	nextFree VTime
	gaps     []gap // sorted by from, disjoint, all before nextFree
	busy     VTime // total occupied virtual time
	bytes    int64 // total bytes serialized
	ops      int64
}

// reserve books the line for ser starting at or after start and returns
// the interval actually occupied.
func (l *line) reserve(start VTime, ser VTime) (from, to VTime) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.busy += ser
	l.ops++
	// First fit into a remembered gap.
	for i := range l.gaps {
		g := l.gaps[i]
		s := maxV(g.from, start)
		if s+ser <= g.to {
			switch {
			case s == g.from && s+ser == g.to:
				l.gaps = append(l.gaps[:i], l.gaps[i+1:]...)
			case s == g.from:
				l.gaps[i].from = s + ser
			case s+ser == g.to:
				l.gaps[i].to = s
			default:
				l.gaps = append(l.gaps, gap{})
				copy(l.gaps[i+2:], l.gaps[i+1:])
				l.gaps[i] = gap{g.from, s}
				l.gaps[i+1] = gap{s + ser, g.to}
			}
			return s, s + ser
		}
	}
	from = maxV(start, l.nextFree)
	if from > l.nextFree && len(l.gaps) < maxGaps {
		l.gaps = append(l.gaps, gap{l.nextFree, from})
	}
	to = from + ser
	l.nextFree = to
	return from, to
}

func (l *line) addBytes(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes += int64(n)
}

// node is the fabric's view of a machine: link state plus liveness.
type node struct {
	id      NodeID
	name    string
	egress  line
	ingress line

	mu sync.Mutex
	up bool
}

// Fabric is a simulated cluster: a set of nodes joined through one switch.
// The zero value is not usable; construct with NewFabric.
type Fabric struct {
	params Params

	// vnow is the fabric-wide virtual-time frontier: the latest completion
	// of any reservation. Actors that were idle rejoin the timeline here
	// instead of queueing behind history they did not contend with.
	vnow atomic.Int64

	// injector is the optional fault injector (nil when absent).
	injector atomic.Pointer[injectorSlot]

	mu         sync.Mutex
	nodes      []*node
	partitions map[[2]NodeID]bool
}

// injectorSlot wraps the interface so it fits an atomic.Pointer.
type injectorSlot struct{ inj Injector }

// SetInjector installs (or, with nil, removes) the fabric's fault injector.
func (f *Fabric) SetInjector(inj Injector) {
	if inj == nil {
		f.injector.Store(nil)
		return
	}
	f.injector.Store(&injectorSlot{inj: inj})
}

// VNow returns the fabric-wide virtual-time frontier.
func (f *Fabric) VNow() VTime { return VTime(f.vnow.Load()) }

// WaitUntil models an actor sitting out a timer: virtual time is the
// simulation's only clock, so a node that must let a duration elapse
// (a lease term, a quarantine) contributes that wait to the frontier
// exactly as a transfer of equal duration would. Idle actors rejoin the
// timeline at the lifted frontier; a frontier already past v is a no-op
// (the wait had, in virtual terms, already happened).
func (f *Fabric) WaitUntil(v VTime) { f.advanceVNow(v) }

// advanceVNow lifts the frontier to at least v.
func (f *Fabric) advanceVNow(v VTime) {
	for {
		cur := f.vnow.Load()
		if int64(v) <= cur {
			return
		}
		if f.vnow.CompareAndSwap(cur, int64(v)) {
			if slot := f.injector.Load(); slot != nil {
				slot.inj.Advance(v)
			}
			return
		}
	}
}

// NewFabric creates a fabric with n nodes, all up, no partitions.
func NewFabric(n int, params Params) *Fabric {
	f := &Fabric{
		params:     params,
		partitions: make(map[[2]NodeID]bool),
	}
	for i := 0; i < n; i++ {
		f.nodes = append(f.nodes, &node{
			id:   NodeID(i),
			name: NodeID(i).String(),
			up:   true,
		})
	}
	return f
}

// Params returns the fabric's cost-model constants.
func (f *Fabric) Params() Params { return f.params }

// Size returns the number of nodes, up or down.
func (f *Fabric) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes)
}

// AddNode grows the cluster by one node and returns its id.
func (f *Fabric) AddNode() NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := NodeID(len(f.nodes))
	f.nodes = append(f.nodes, &node{id: id, name: id.String(), up: true})
	return id
}

func (f *Fabric) node(id NodeID) (*node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 0 || int(id) >= len(f.nodes) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, id)
	}
	return f.nodes[id], nil
}

// SetNodeUp marks a node alive or dead. Transfers involving a dead node
// fail with ErrNodeDown.
func (f *Fabric) SetNodeUp(id NodeID, up bool) error {
	n, err := f.node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up = up
	return nil
}

// NodeUp reports whether the node is alive.
func (f *Fabric) NodeUp(id NodeID) bool {
	n, err := f.node(id)
	if err != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// SetPartition blocks (or unblocks) all traffic between a and b.
func (f *Fabric) SetPartition(a, b NodeID, partitioned bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if partitioned {
		f.partitions[pairKey(a, b)] = true
	} else {
		delete(f.partitions, pairKey(a, b))
	}
}

// Partitioned reports whether traffic between a and b is blocked.
func (f *Fabric) Partitioned(a, b NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitions[pairKey(a, b)]
}

// Reachable reports whether from can currently exchange traffic with to.
func (f *Fabric) Reachable(from, to NodeID) error {
	a, err := f.node(from)
	if err != nil {
		return err
	}
	b, err := f.node(to)
	if err != nil {
		return err
	}
	a.mu.Lock()
	aUp := a.up
	a.mu.Unlock()
	b.mu.Lock()
	bUp := b.up
	b.mu.Unlock()
	if !aUp {
		return fmt.Errorf("%w: %v", ErrNodeDown, from)
	}
	if !bUp {
		return fmt.Errorf("%w: %v", ErrNodeDown, to)
	}
	if from != to && f.Partitioned(from, to) {
		return fmt.Errorf("%w: %v<->%v", ErrPartitioned, from, to)
	}
	return nil
}

// Transfer accounts a transfer of n payload bytes from one node to another,
// beginning no earlier than virtual time start, and returns the virtual
// completion time. The sender's egress line and receiver's ingress line are
// both reserved FIFO, so concurrent transfers sharing a line queue behind
// each other. Loopback transfers bypass the fabric.
func (f *Fabric) Transfer(from, to NodeID, n int, start VTime) (VTime, error) {
	if n < 0 {
		return 0, ErrNegativeBytes
	}
	if err := f.Reachable(from, to); err != nil {
		return 0, err
	}
	if slot := f.injector.Load(); slot != nil {
		extra, err := slot.inj.Transfer(from, to, n, start)
		if err != nil {
			return 0, err
		}
		start = start.Add(extra)
	}
	src, err := f.node(from)
	if err != nil {
		return 0, err
	}
	if from == to {
		// Local DMA: charged at memory bandwidth, no link occupancy.
		return start.Add(f.params.LoopbackDelay + f.params.MemCopyTime(n)), nil
	}
	dst, err := f.node(to)
	if err != nil {
		return 0, err
	}
	// The flow occupies links one segment at a time, so concurrent flows
	// interleave (fluid sharing) instead of blocking behind whole
	// messages. Cut-through switch: a segment starts occupying the ingress
	// a propagation delay after it starts serializing at the egress.
	seg := f.params.segment()
	prop := VTime(f.params.PropDelay)
	var done VTime
	cursor := start
	for off := 0; off < n || off == 0; off += seg {
		m := n - off
		if m > seg {
			m = seg
		}
		ser := VTime(f.params.SerializationTime(m))
		egFrom, _ := src.egress.reserve(cursor, ser)
		_, inDone := dst.ingress.reserve(egFrom+prop, ser)
		// The next segment cannot start serializing before this one did
		// (in-order flow), but may interleave with other flows' segments.
		// Gap-filling can place a later segment into an earlier free slot,
		// so the flow completes at the latest segment end, not the last.
		cursor = egFrom
		done = maxV(done, inDone)
		if n == 0 {
			break
		}
	}
	src.egress.addBytes(n)
	dst.ingress.addBytes(n)
	f.advanceVNow(done)
	return done, nil
}

// LinkStats is a snapshot of one line's accounting.
type LinkStats struct {
	Bytes int64
	Busy  VTime
	Ops   int64
	// HighWater is the latest virtual time at which the line was reserved.
	HighWater VTime
}

// NodeStats reports both directions of a node's link.
type NodeStats struct {
	Node    NodeID
	Egress  LinkStats
	Ingress LinkStats
}

// Stats returns a snapshot for every node.
func (f *Fabric) Stats() []NodeStats {
	f.mu.Lock()
	nodes := make([]*node, len(f.nodes))
	copy(nodes, f.nodes)
	f.mu.Unlock()

	out := make([]NodeStats, 0, len(nodes))
	for _, n := range nodes {
		var st NodeStats
		st.Node = n.id
		n.egress.mu.Lock()
		st.Egress = LinkStats{Bytes: n.egress.bytes, Busy: n.egress.busy, Ops: n.egress.ops, HighWater: n.egress.nextFree}
		n.egress.mu.Unlock()
		n.ingress.mu.Lock()
		st.Ingress = LinkStats{Bytes: n.ingress.bytes, Busy: n.ingress.busy, Ops: n.ingress.ops, HighWater: n.ingress.nextFree}
		n.ingress.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// ResetStats zeroes the per-line accounting (but not nextFree, which is
// part of the virtual timeline).
func (f *Fabric) ResetStats() {
	f.mu.Lock()
	nodes := make([]*node, len(f.nodes))
	copy(nodes, f.nodes)
	f.mu.Unlock()
	for _, n := range nodes {
		for _, l := range []*line{&n.egress, &n.ingress} {
			l.mu.Lock()
			l.bytes, l.busy, l.ops = 0, 0, 0
			l.mu.Unlock()
		}
	}
}
