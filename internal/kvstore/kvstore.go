// Package kvstore builds a shared key-value store on RStore's memory-like
// API — the "data store" use the paper's title promises, assembled purely
// from the primitives the paper provides: a region of distributed DRAM,
// one-sided reads and writes, and RDMA compare-and-swap for coordination.
//
// The table is a fixed-capacity open-addressing hash table striped across
// the cluster's memory servers. Every slot carries a sequence word
// manipulated only with RDMA atomics:
//
//   - even value  = stable (0 = empty, >=2 = occupied generation)
//   - odd value   = locked by a writer
//
// Writers CAS the sequence to odd, deposit the entry with a one-sided
// write, and release by writing the next even generation. Readers are
// lock-free: read the slot, then re-read the sequence word and retry if it
// changed or was odd (a seqlock over RDMA). Multiple clients on different
// machines can share one table with no server-side code at all.
package kvstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"rstore/internal/client"
)

// Store-level errors.
var (
	ErrFull        = errors.New("kvstore: table full")
	ErrNotFound    = errors.New("kvstore: key not found")
	ErrTooLarge    = errors.New("kvstore: entry exceeds slot size")
	ErrBadGeometry = errors.New("kvstore: bad table geometry")
	// ErrContention reports that a slot stayed locked (or kept changing)
	// through every retry; the operation can simply be retried.
	ErrContention = errors.New("kvstore: slot contention retries exhausted")
)

// Slot layout:
//
//	[0,8)    seq      uint64 (even=stable, odd=locked, 0=empty)
//	[8,10)   keyLen   uint16
//	[10,12)  valLen   uint16
//	[12,12+keyLen)          key bytes
//	[12+keyLen, ...)        value bytes
const slotHeader = 12

// Options tunes table geometry.
type Options struct {
	// SlotSize is the fixed on-wire slot size; an entry (key+value+header)
	// must fit. Default 256.
	SlotSize int
	// Slots is the table capacity. Default 4096.
	Slots int
	// StripeUnit for the backing region. Default 64 KiB.
	StripeUnit uint64
	// MaxProbe bounds linear probing. Default 64.
	MaxProbe int
	// LockRetries bounds CAS retries on a locked slot. Default 64.
	LockRetries int
}

func (o Options) withDefaults() Options {
	if o.SlotSize <= 0 {
		o.SlotSize = 256
	}
	if o.Slots <= 0 {
		o.Slots = 4096
	}
	if o.StripeUnit == 0 {
		o.StripeUnit = 64 << 10
	}
	if o.MaxProbe <= 0 {
		o.MaxProbe = 64
	}
	if o.LockRetries <= 0 {
		o.LockRetries = 64
	}
	return o
}

// Store is a handle to a shared table. Every client opens its own handle;
// handles on different machines see the same data.
type Store struct {
	cli  *client.Client
	reg  *client.Region
	opts Options
	buf  *client.Buf // slot-sized scratch, one per handle (handles are not goroutine-safe)
}

// Create allocates the backing region and opens a handle. The creating
// client owns the region name; other clients use Open.
func Create(ctx context.Context, cli *client.Client, name string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.SlotSize <= slotHeader || opts.SlotSize%8 != 0 {
		return nil, fmt.Errorf("%w: slot size %d", ErrBadGeometry, opts.SlotSize)
	}
	size := uint64(opts.Slots) * uint64(opts.SlotSize)
	// Keep whole slots inside one stripe unit so slot IO is one fragment
	// and the seq word never straddles servers.
	if opts.StripeUnit%uint64(opts.SlotSize) != 0 {
		return nil, fmt.Errorf("%w: stripe %d not a multiple of slot %d", ErrBadGeometry, opts.StripeUnit, opts.SlotSize)
	}
	if _, err := cli.Alloc(ctx, name, size, client.AllocOptions{StripeUnit: opts.StripeUnit}); err != nil {
		return nil, fmt.Errorf("kvstore create: %w", err)
	}
	return Open(ctx, cli, name, opts)
}

// Open maps an existing table.
func Open(ctx context.Context, cli *client.Client, name string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	reg, err := cli.Map(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("kvstore open: %w", err)
	}
	if reg.Size() != uint64(opts.Slots)*uint64(opts.SlotSize) {
		return nil, fmt.Errorf("%w: region %d bytes != %d slots x %d", ErrBadGeometry, reg.Size(), opts.Slots, opts.SlotSize)
	}
	buf, err := cli.AllocBuf(opts.SlotSize)
	if err != nil {
		return nil, fmt.Errorf("kvstore open: %w", err)
	}
	return &Store{cli: cli, reg: reg, opts: opts, buf: buf}, nil
}

// Close unmaps the table (the region itself persists).
func (s *Store) Close(ctx context.Context) error {
	return s.reg.Unmap(ctx)
}

// Capacity returns the slot count.
func (s *Store) Capacity() int { return s.opts.Slots }

// MaxEntry returns the largest key+value an entry may hold.
func (s *Store) MaxEntry() int { return s.opts.SlotSize - slotHeader }

func (s *Store) slotOffset(slot int) uint64 {
	return uint64(slot) * uint64(s.opts.SlotSize)
}

// backoff waits before reprobing a contended slot. The first few retries
// spin — a writer's critical section is a handful of one-sided ops — then
// the wait doubles from 5µs up to a 320µs cap so a descheduled lock holder
// gets CPU without the reader hammering the fabric. It returns ctx.Err()
// as soon as the caller's context is done, so operations do not grind
// through their remaining LockRetries against a dead deadline.
func backoff(ctx context.Context, retry int) error {
	if retry < 8 {
		return ctx.Err()
	}
	shift := retry - 8
	if shift > 6 {
		shift = 6
	}
	t := time.NewTimer(5 * time.Microsecond << shift) // 5µs … 320µs
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return h.Sum64()
}

// checkEntry validates sizes.
func (s *Store) checkEntry(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrTooLarge)
	}
	if len(key) > 0xffff || len(value) > 0xffff || len(key)+len(value) > s.MaxEntry() {
		return fmt.Errorf("%w: key %d + value %d > %d", ErrTooLarge, len(key), len(value), s.MaxEntry())
	}
	return nil
}

// readSlot fetches a slot into the scratch buffer and parses it.
func (s *Store) readSlot(ctx context.Context, slot int) (seq uint64, key, val []byte, err error) {
	if _, err := s.reg.ReadAt(ctx, s.slotOffset(slot), s.buf, 0, s.opts.SlotSize); err != nil {
		return 0, nil, nil, err
	}
	b := s.buf.Bytes()
	seq = binary.LittleEndian.Uint64(b)
	keyLen := int(binary.LittleEndian.Uint16(b[8:]))
	valLen := int(binary.LittleEndian.Uint16(b[10:]))
	if slotHeader+keyLen+valLen > s.opts.SlotSize {
		return seq, nil, nil, nil // torn or garbage; caller retries via seq check
	}
	key = b[slotHeader : slotHeader+keyLen]
	val = b[slotHeader+keyLen : slotHeader+keyLen+valLen]
	return seq, key, val, nil
}

// lockSlot CAS-locks the slot if its current seq matches expect (which
// must be even). Returns the locked (odd) value.
func (s *Store) lockSlot(ctx context.Context, slot int, expect uint64) (bool, error) {
	old, _, err := s.reg.CompareSwap(ctx, s.slotOffset(slot), expect, expect|1)
	if err != nil {
		return false, err
	}
	return old == expect, nil
}

// publish writes the full slot (entry + next even generation) and is the
// lock release: the one-sided write replaces the odd seq word with gen.
func (s *Store) publish(ctx context.Context, slot int, gen uint64, key, value []byte) error {
	b := s.buf.Bytes()
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b, gen)
	binary.LittleEndian.PutUint16(b[8:], uint16(len(key)))
	binary.LittleEndian.PutUint16(b[10:], uint16(len(value)))
	copy(b[slotHeader:], key)
	copy(b[slotHeader+len(key):], value)
	_, err := s.reg.WriteAt(ctx, s.slotOffset(slot), s.buf, 0, s.opts.SlotSize)
	return err
}

// unlock restores a locked slot's previous stable seq after a failed
// attempt.
func (s *Store) unlock(ctx context.Context, slot int, locked uint64) {
	// CAS back from the odd value to the prior even one; best effort.
	_, _, _ = s.reg.CompareSwap(ctx, s.slotOffset(slot), locked, locked&^uint64(1))
}

// Put inserts or replaces the value for key.
func (s *Store) Put(ctx context.Context, key, value []byte) error {
	if err := s.checkEntry(key, value); err != nil {
		return err
	}
	h := hashKey(key)
	for probe := 0; probe < s.opts.MaxProbe; probe++ {
		slot := int((h + uint64(probe)) % uint64(s.opts.Slots))
		stable := false
		for retry := 0; retry < s.opts.LockRetries; retry++ {
			seq, k, _, err := s.readSlot(ctx, slot)
			if err != nil {
				return err
			}
			if seq%2 == 1 {
				if err := backoff(ctx, retry); err != nil {
					return err
				}
				continue // writer active; retry this slot
			}
			occupied := seq != 0
			if occupied && !bytes.Equal(k, key) {
				stable = true
				break // stably another key's slot: next probe
			}
			ok, err := s.lockSlot(ctx, slot, seq)
			if err != nil {
				return err
			}
			if !ok {
				if err := backoff(ctx, retry); err != nil {
					return err
				}
				continue // raced; re-read
			}
			// The CAS matched seq, so the slot is unchanged since the
			// read. Deposit the entry; the publish releases the lock.
			gen := seq + 2
			if gen == 0 {
				gen = 2
			}
			if err := s.publish(ctx, slot, gen, key, value); err != nil {
				s.unlock(ctx, slot, seq|1)
				return err
			}
			return nil
		}
		if !stable {
			// We never saw this slot stable; it may hold our key. Moving
			// on could insert a duplicate.
			return fmt.Errorf("%w: put %q", ErrContention, key)
		}
	}
	return fmt.Errorf("%w: after %d probes", ErrFull, s.opts.MaxProbe)
}

// Get returns the value for key. The returned slice is owned by the
// caller.
func (s *Store) Get(ctx context.Context, key []byte) ([]byte, error) {
	if err := s.checkEntry(key, nil); err != nil {
		return nil, err
	}
	h := hashKey(key)
	for probe := 0; probe < s.opts.MaxProbe; probe++ {
		slot := int((h + uint64(probe)) % uint64(s.opts.Slots))
		stable := false
		for retry := 0; retry < s.opts.LockRetries; retry++ {
			seq, k, v, err := s.readSlot(ctx, slot)
			if err != nil {
				return nil, err
			}
			if seq == 0 {
				return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			if seq%2 == 1 {
				if err := backoff(ctx, retry); err != nil {
					return nil, err
				}
				continue // mid-update; retry
			}
			if !bytes.Equal(k, key) {
				stable = true
				break // stably another key's slot: next probe
			}
			// Seqlock validation: confirm the slot did not change while
			// we copied it.
			val := append([]byte(nil), v...)
			seq2, _, _, err := s.readSlot(ctx, slot)
			if err != nil {
				return nil, err
			}
			if seq2 == seq {
				return val, nil
			}
			if err := backoff(ctx, retry); err != nil { // changed under us; retry
				return nil, err
			}
		}
		if !stable {
			return nil, fmt.Errorf("%w: get %q", ErrContention, key)
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// Delete removes key. Deleting an absent key returns ErrNotFound.
//
// Deleted slots become tombstones (occupied generation with zero-length
// key) so probe chains stay intact. Tombstones are not reclaimed: in this
// fixed-capacity table a slot once used stays consumed, which keeps the
// concurrent protocol free of the duplicate-insert hazard tombstone reuse
// would introduce.
func (s *Store) Delete(ctx context.Context, key []byte) error {
	if err := s.checkEntry(key, nil); err != nil {
		return err
	}
	h := hashKey(key)
	for probe := 0; probe < s.opts.MaxProbe; probe++ {
		slot := int((h + uint64(probe)) % uint64(s.opts.Slots))
		stable := false
		for retry := 0; retry < s.opts.LockRetries; retry++ {
			seq, k, _, err := s.readSlot(ctx, slot)
			if err != nil {
				return err
			}
			if seq == 0 {
				return fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			if seq%2 == 1 {
				if err := backoff(ctx, retry); err != nil {
					return err
				}
				continue
			}
			if !bytes.Equal(k, key) {
				stable = true
				break
			}
			ok, err := s.lockSlot(ctx, slot, seq)
			if err != nil {
				return err
			}
			if !ok {
				if err := backoff(ctx, retry); err != nil {
					return err
				}
				continue
			}
			gen := seq + 2
			if gen == 0 {
				gen = 2
			}
			if err := s.publish(ctx, slot, gen, nil, nil); err != nil {
				s.unlock(ctx, slot, seq|1)
				return err
			}
			return nil
		}
		if !stable {
			return fmt.Errorf("%w: delete %q", ErrContention, key)
		}
	}
	return fmt.Errorf("%w: %q", ErrNotFound, key)
}
