// Package kvstore builds a shared key-value store on RStore's memory-like
// API — the "data store" use the paper's title promises, assembled purely
// from the primitives the paper provides: a region of distributed DRAM,
// one-sided reads and writes, and RDMA compare-and-swap for coordination.
//
// The table is a fixed-capacity open-addressing hash table striped across
// the cluster's memory servers, carried on the internal/txn optimistic
// transaction layer: every slot is a txn cell whose leading word is a
// version/lock word, updates run as (usually single-cell) transactions
// whose CAS lock doubles as the old seqlock, and reads are the txn
// layer's validated lock-free reads. What the move buys over the previous
// hand-rolled seqlock: a writer that dies mid-update no longer wedges its
// slot (stale locks are broken through the transaction log), and probe
// chains are claimed under real read-set validation, so racing inserts of
// the same new key can never land in two slots. Multiple clients on
// different machines share one table with no server-side code at all.
package kvstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"rstore/internal/client"
	"rstore/internal/txn"
)

// Store-level errors.
var (
	ErrFull     = errors.New("kvstore: table full")
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrEntryTooLarge reports a key/value pair that cannot fit a
	// store's slot (or ordered-index node) geometry, and empty keys.
	ErrEntryTooLarge = errors.New("kvstore: entry exceeds slot size")
	// ErrTooLarge is the historical alias for ErrEntryTooLarge.
	//
	// Deprecated: match ErrEntryTooLarge instead.
	ErrTooLarge    = ErrEntryTooLarge
	ErrBadGeometry = errors.New("kvstore: bad table geometry")
	// ErrContention reports that a slot stayed locked (or kept changing)
	// through every retry; the operation can simply be retried.
	ErrContention = errors.New("kvstore: slot contention retries exhausted")
)

// Slot layout (a txn cell):
//
//	[0,8)    version/lock word (owned by the txn layer)
//	[8,10)   keyLen   uint16
//	[10,12)  valLen   uint16
//	[12,12+keyLen)          key bytes
//	[12+keyLen, ...)        value bytes
//
// A never-written cell (version 0) is empty; a written cell with
// keyLen 0 is a tombstone.
const slotHeader = 12

// entryHeader is the body-relative prefix (the txn layer owns the word).
const entryHeader = slotHeader - 8

// Options tunes table geometry.
type Options struct {
	// SlotSize is the fixed on-wire slot size; an entry (key+value+header)
	// must fit. Default 256.
	SlotSize int
	// Slots is the table capacity. Default 4096.
	Slots int
	// StripeUnit for the backing region. Default 64 KiB.
	StripeUnit uint64
	// MaxProbe bounds linear probing. Default 64.
	MaxProbe int
	// LockRetries bounds retries against a locked or churning slot — both
	// the read path's validated-read loop and the write path's commit
	// attempts. Default 64.
	LockRetries int
}

func (o Options) withDefaults() Options {
	if o.SlotSize <= 0 {
		o.SlotSize = 256
	}
	if o.Slots <= 0 {
		o.Slots = 4096
	}
	if o.StripeUnit == 0 {
		o.StripeUnit = 64 << 10
	}
	if o.MaxProbe <= 0 {
		o.MaxProbe = 64
	}
	if o.LockRetries <= 0 {
		o.LockRetries = 64
	}
	return o
}

// txnOptions maps table geometry onto the transaction layer: one cell per
// slot, and the old lock-retry budget split between the validated-read
// loop and the commit retry policy (whose backoff mirrors the historical
// 5µs-doubling-to-320µs discipline, now with jitter).
func (o Options) txnOptions() txn.Options {
	return txn.Options{
		Cells:       o.Slots,
		CellSize:    o.SlotSize,
		StripeUnit:  o.StripeUnit,
		ReadRetries: o.LockRetries,
		Retry: client.RetryPolicy{
			MaxAttempts: o.LockRetries,
			BaseDelay:   5 * time.Microsecond,
			MaxDelay:    320 * time.Microsecond,
			Multiplier:  2,
			Jitter:      0.2,
		},
	}
}

// Store is a handle to a shared table. Every client opens its own handle;
// handles on different machines see the same data. A handle is not safe
// for concurrent use.
type Store struct {
	sp   *txn.Space
	opts Options
}

func (o Options) check() error {
	if o.SlotSize <= slotHeader || o.SlotSize%8 != 0 {
		return fmt.Errorf("%w: slot size %d", ErrBadGeometry, o.SlotSize)
	}
	if o.StripeUnit%uint64(o.SlotSize) != 0 {
		return fmt.Errorf("%w: stripe %d not a multiple of slot %d", ErrBadGeometry, o.StripeUnit, o.SlotSize)
	}
	return nil
}

// Create allocates the backing region (and its transaction log) and opens
// a handle. The creating client owns the region name; other clients use
// Open.
func Create(ctx context.Context, cli *client.Client, name string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	sp, err := txn.Create(ctx, cli, name, opts.txnOptions())
	if err != nil {
		return nil, fmt.Errorf("kvstore create: %w", err)
	}
	return &Store{sp: sp, opts: opts}, nil
}

// Open maps an existing table.
func Open(ctx context.Context, cli *client.Client, name string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.check(); err != nil {
		return nil, err
	}
	sp, err := txn.Open(ctx, cli, name, opts.txnOptions())
	if err != nil {
		return nil, fmt.Errorf("kvstore open: %w", err)
	}
	return &Store{sp: sp, opts: opts}, nil
}

// Close unmaps the table (the region itself persists).
func (s *Store) Close(ctx context.Context) error {
	return s.sp.Close(ctx)
}

// Capacity returns the slot count.
func (s *Store) Capacity() int { return s.opts.Slots }

// MaxEntry returns the largest key+value an entry may hold.
func (s *Store) MaxEntry() int { return s.opts.SlotSize - slotHeader }

// Txn exposes the table's transaction space, so callers can compose
// multi-key updates over the same cells the Store serves.
func (s *Store) Txn() *txn.Space { return s.sp }

// backoff waits before reprobing a contended slot. The first few retries
// spin — a writer's critical section is a handful of one-sided ops — then
// the wait doubles from 5µs up to a 320µs cap so a descheduled lock holder
// gets CPU without the reader hammering the fabric. It returns ctx.Err()
// as soon as the caller's context is done, so operations do not grind
// through their remaining retries against a dead deadline. The txn layer
// applies this same discipline inside its validated-read loop; the
// function remains the package's statement of the policy (and is covered
// directly by tests).
func backoff(ctx context.Context, retry int) error {
	if retry < 8 {
		return ctx.Err()
	}
	shift := retry - 8
	if shift > 6 {
		shift = 6
	}
	t := time.NewTimer(5 * time.Microsecond << shift) // 5µs … 320µs
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return h.Sum64()
}

// checkEntry validates sizes.
func (s *Store) checkEntry(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrEntryTooLarge)
	}
	if len(key) > 0xffff || len(value) > 0xffff || len(key)+len(value) > s.MaxEntry() {
		return fmt.Errorf("%w: key %d + value %d > %d", ErrEntryTooLarge, len(key), len(value), s.MaxEntry())
	}
	return nil
}

// encodeEntry renders a cell body. A nil key produces a tombstone.
func encodeEntry(key, value []byte) []byte {
	b := make([]byte, entryHeader+len(key)+len(value))
	binary.LittleEndian.PutUint16(b, uint16(len(key)))
	binary.LittleEndian.PutUint16(b[2:], uint16(len(value)))
	copy(b[entryHeader:], key)
	copy(b[entryHeader+len(key):], value)
	return b
}

// decodeEntry parses a cell body; key and val alias body.
func decodeEntry(body []byte, slotSize int) (key, val []byte, ok bool) {
	if len(body) < entryHeader {
		return nil, nil, false
	}
	keyLen := int(binary.LittleEndian.Uint16(body))
	valLen := int(binary.LittleEndian.Uint16(body[2:]))
	if entryHeader+keyLen+valLen > slotSize-8 {
		return nil, nil, false
	}
	return body[entryHeader : entryHeader+keyLen], body[entryHeader+keyLen : entryHeader+keyLen+valLen], true
}

// wrapErr maps transaction-layer verdicts onto the store's sentinels.
func wrapErr(op string, key []byte, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, txn.ErrContended) {
		return fmt.Errorf("%w: %s %q", ErrContention, op, key)
	}
	return err
}

// findSlot probes the table inside a transaction. It returns the key's
// slot (found=true), or the first never-written slot the key could claim
// (free >= 0), or neither (probe budget exhausted: the chain is full).
// Tombstones are probed past, never reused — in this fixed-capacity table
// a slot once used stays consumed, which keeps the concurrent protocol
// free of the duplicate-insert hazard tombstone reuse would introduce.
func (s *Store) findSlot(ctx context.Context, tx *txn.Tx, key []byte) (slot int, found bool, free int, err error) {
	h := hashKey(key)
	for probe := 0; probe < s.opts.MaxProbe; probe++ {
		slot := int((h + uint64(probe)) % uint64(s.opts.Slots))
		version, body, err := tx.ReadVersioned(ctx, slot)
		if err != nil {
			return 0, false, -1, err
		}
		if version == 0 {
			// End of the probe chain: the key is not in the table, and this
			// slot (now in our read set at version 0) is claimable.
			return 0, false, slot, nil
		}
		k, _, ok := decodeEntry(body, s.opts.SlotSize)
		if ok && len(k) > 0 && bytes.Equal(k, key) {
			return slot, true, -1, nil
		}
		// Tombstone or another key's slot: keep probing.
	}
	return 0, false, -1, nil
}

// Put inserts or replaces the value for key.
func (s *Store) Put(ctx context.Context, key, value []byte) error {
	if err := s.checkEntry(key, value); err != nil {
		return err
	}
	err := s.sp.RunTx(ctx, func(tx *txn.Tx) error {
		slot, found, free, err := s.findSlot(ctx, tx, key)
		if err != nil {
			return err
		}
		switch {
		case found:
		case free >= 0:
			slot = free
		default:
			return fmt.Errorf("%w: after %d probes", ErrFull, s.opts.MaxProbe)
		}
		return tx.Write(slot, encodeEntry(key, value))
	})
	return wrapErr("put", key, err)
}

// Get returns the value for key. The returned slice is owned by the
// caller. Reads are lock-free validated reads straight off the cells — no
// transaction, no locks, same as the historical seqlock read.
func (s *Store) Get(ctx context.Context, key []byte) ([]byte, error) {
	if err := s.checkEntry(key, nil); err != nil {
		return nil, err
	}
	h := hashKey(key)
	for probe := 0; probe < s.opts.MaxProbe; probe++ {
		slot := int((h + uint64(probe)) % uint64(s.opts.Slots))
		version, body, err := s.sp.ReadCell(ctx, slot)
		if err != nil {
			return nil, wrapErr("get", key, err)
		}
		if version == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		k, v, ok := decodeEntry(body, s.opts.SlotSize)
		if ok && len(k) > 0 && bytes.Equal(k, key) {
			return append([]byte(nil), v...), nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// Delete removes key. Deleting an absent key returns ErrNotFound.
//
// Deleted slots become tombstones (occupied version with zero-length key)
// so probe chains stay intact.
func (s *Store) Delete(ctx context.Context, key []byte) error {
	if err := s.checkEntry(key, nil); err != nil {
		return err
	}
	err := s.sp.RunTx(ctx, func(tx *txn.Tx) error {
		slot, found, _, err := s.findSlot(ctx, tx, key)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return tx.Write(slot, encodeEntry(nil, nil))
	})
	return wrapErr("delete", key, err)
}
