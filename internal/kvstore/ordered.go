package kvstore

import (
	"context"
	"errors"
	"fmt"

	"rstore/internal/client"
	"rstore/internal/index"
)

// OrderedStore is the ordered sibling of Store: the same Put/Get/Delete
// surface plus range Scan, backed by the client-cached B+tree in
// internal/index instead of a flat hash table. Like Store, a handle is
// not safe for concurrent use; handles on different machines share the
// data.
type OrderedStore struct {
	tree *index.Tree
}

// OrderedOptions passes through to the index layer.
type OrderedOptions = index.Options

// CreateOrdered allocates and seeds an ordered store. Other clients use
// OpenOrdered.
func CreateOrdered(ctx context.Context, cli *client.Client, name string, opts OrderedOptions) (*OrderedStore, error) {
	tree, err := index.Create(ctx, cli, name, opts)
	if err != nil {
		return nil, fmt.Errorf("kvstore ordered create: %w", err)
	}
	return &OrderedStore{tree: tree}, nil
}

// OpenOrdered maps an existing ordered store.
func OpenOrdered(ctx context.Context, cli *client.Client, name string, opts OrderedOptions) (*OrderedStore, error) {
	tree, err := index.Open(ctx, cli, name, opts)
	if err != nil {
		return nil, fmt.Errorf("kvstore ordered open: %w", err)
	}
	return &OrderedStore{tree: tree}, nil
}

// Close releases the handle.
func (s *OrderedStore) Close(ctx context.Context) error { return s.tree.Close(ctx) }

// Tree exposes the underlying index handle (stats, chaos hooks).
func (s *OrderedStore) Tree() *index.Tree { return s.tree }

// mapErr translates index sentinels into the store's error vocabulary so
// callers written against Store semantics keep working.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, index.ErrNotFound):
		return fmt.Errorf("%w: %w", ErrNotFound, err)
	case errors.Is(err, index.ErrTooLarge), errors.Is(err, index.ErrBadKey):
		return fmt.Errorf("%w: %w", ErrEntryTooLarge, err)
	case errors.Is(err, index.ErrFull):
		return fmt.Errorf("%w: %w", ErrFull, err)
	default:
		return err
	}
}

// Put stores value under key, replacing any existing value.
func (s *OrderedStore) Put(ctx context.Context, key, value []byte) error {
	return mapErr(s.tree.Insert(ctx, key, value))
}

// Get returns the value under key, or ErrNotFound.
func (s *OrderedStore) Get(ctx context.Context, key []byte) ([]byte, error) {
	v, err := s.tree.Get(ctx, key)
	return v, mapErr(err)
}

// Delete removes key; ErrNotFound when absent.
func (s *OrderedStore) Delete(ctx context.Context, key []byte) error {
	return mapErr(s.tree.Delete(ctx, key))
}

// Scan returns every entry with start <= key < end in key order; an
// empty end runs to the end of the keyspace.
func (s *OrderedStore) Scan(ctx context.Context, start, end []byte) ([]index.Entry, error) {
	ents, err := s.tree.Scan(ctx, start, end)
	return ents, mapErr(err)
}
