package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"rstore/internal/client"
	"rstore/internal/core"
)

func newOrdered(t *testing.T, c *core.Cluster, name string) (*OrderedStore, *client.Client) {
	t.Helper()
	cli, err := c.NewClient(context.Background(), c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s, err := CreateOrdered(context.Background(), cli, name, OrderedOptions{
		Nodes:    256,
		NodeSize: 512,
		MaxKey:   32,
	})
	if err != nil {
		t.Fatalf("CreateOrdered: %v", err)
	}
	return s, cli
}

func TestOrderedPutGetDeleteScan(t *testing.T) {
	c := startCluster(t)
	s, _ := newOrdered(t, c, "okv")
	ctx := context.Background()

	for i := 0; i < 120; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		if err := s.Put(ctx, k, []byte(fmt.Sprintf("row-%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	v, err := s.Get(ctx, []byte("user:0042"))
	if err != nil || string(v) != "row-42" {
		t.Fatalf("Get = %q, %v", v, err)
	}

	// Range scan comes back sorted and half-open.
	ents, err := s.Scan(ctx, []byte("user:0010"), []byte("user:0020"))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(ents) != 10 {
		t.Fatalf("scan returned %d entries, want 10", len(ents))
	}
	for i, e := range ents {
		want := fmt.Sprintf("user:%04d", 10+i)
		if string(e.Key) != want {
			t.Fatalf("scan[%d] = %q, want %q", i, e.Key, want)
		}
	}

	if err := s.Delete(ctx, []byte("user:0042")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(ctx, []byte("user:0042")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete(ctx, []byte("user:0042")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestOrderedErrorMapping(t *testing.T) {
	c := startCluster(t)
	s, _ := newOrdered(t, c, "oerr")
	ctx := context.Background()

	if err := s.Put(ctx, nil, []byte("v")); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if err := s.Put(ctx, []byte("k"), bytes.Repeat([]byte{'v'}, 4096)); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("oversize value: %v", err)
	}
	if _, err := s.Get(ctx, []byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent get: %v", err)
	}
}

func TestOrderedSharedAcrossClients(t *testing.T) {
	c := startCluster(t)
	ctx := context.Background()
	s1, _ := newOrdered(t, c, "oshare")
	cli2, err := c.NewClient(ctx, c.MemoryServerNodes()[1])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s2, err := OpenOrdered(ctx, cli2, "oshare", OrderedOptions{
		Nodes:    256,
		NodeSize: 512,
		MaxKey:   32,
	})
	if err != nil {
		t.Fatalf("OpenOrdered: %v", err)
	}

	if err := s1.Put(ctx, []byte("shared"), []byte("one-sided")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := s2.Get(ctx, []byte("shared"))
	if err != nil || string(v) != "one-sided" {
		t.Fatalf("cross-client Get = %q, %v", v, err)
	}
	ents, err := s2.Scan(ctx, nil, nil)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cross-client Scan: %d entries, %v", len(ents), err)
	}
}
