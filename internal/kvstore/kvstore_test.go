package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
)

func startCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.Start(context.Background(), core.Config{
		Machines:          4,
		ServerCapacity:    32 << 20,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newStore(t *testing.T, c *core.Cluster, name string, opts Options) (*Store, *client.Client) {
	t.Helper()
	cli, err := c.NewClient(context.Background(), c.MemoryServerNodes()[0])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s, err := Create(context.Background(), cli, name, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s, cli
}

func TestPutGetDelete(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "kv", Options{})
	ctx := context.Background()

	if err := s.Put(ctx, []byte("name"), []byte("rstore")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := s.Get(ctx, []byte("name"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "rstore" {
		t.Errorf("Get = %q", v)
	}

	// Overwrite.
	if err := s.Put(ctx, []byte("name"), []byte("rstore-v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	v, err = s.Get(ctx, []byte("name"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "rstore-v2" {
		t.Errorf("Get after overwrite = %q", v)
	}

	if err := s.Delete(ctx, []byte("name")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(ctx, []byte("name")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if err := s.Delete(ctx, []byte("name")); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "kv", Options{})
	if _, err := s.Get(context.Background(), []byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestManyKeys(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "kv", Options{Slots: 2048})
	ctx := context.Background()
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("value-%d", i*i))
		if err := s.Put(ctx, k, v); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, err := s.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i*i); string(v) != want {
			t.Fatalf("Get %d = %q, want %q", i, v, want)
		}
	}
}

func TestSharedAcrossClients(t *testing.T) {
	c := startCluster(t)
	s1, _ := newStore(t, c, "shared", Options{})
	ctx := context.Background()

	cli2, err := c.NewClient(ctx, c.MemoryServerNodes()[1])
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s2, err := Open(ctx, cli2, "shared", Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	if err := s1.Put(ctx, []byte("from"), []byte("client-1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := s2.Get(ctx, []byte("from"))
	if err != nil {
		t.Fatalf("Get from second client: %v", err)
	}
	if string(v) != "client-1" {
		t.Errorf("cross-client value = %q", v)
	}
}

func TestEntryTooLarge(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "kv", Options{SlotSize: 64})
	ctx := context.Background()
	if err := s.Put(ctx, []byte("k"), make([]byte, 64)); !errors.Is(err, ErrEntryTooLarge) {
		t.Errorf("oversize put = %v", err)
	}
	if err := s.Put(ctx, nil, []byte("v")); !errors.Is(err, ErrEntryTooLarge) {
		t.Errorf("empty key = %v", err)
	}
	// The historical alias must keep matching the same failures.
	if err := s.Put(ctx, []byte("k"), make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize put does not match deprecated alias: %v", err)
	}
}

func TestTableFull(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "tiny", Options{Slots: 8, MaxProbe: 8})
	ctx := context.Background()
	var err error
	for i := 0; i < 16; i++ {
		err = s.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Errorf("filling 8-slot table: err = %v, want ErrFull", err)
	}
}

func TestBadGeometry(t *testing.T) {
	c := startCluster(t)
	cli, err := c.NewClient(context.Background(), 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := Create(context.Background(), cli, "g1", Options{SlotSize: 10}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("slot 10 = %v", err)
	}
	if _, err := Create(context.Background(), cli, "g2", Options{SlotSize: 384, StripeUnit: 64 << 10}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("misaligned stripe = %v", err)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	c := startCluster(t)
	_, _ = newStore(t, c, "conc", Options{Slots: 4096})
	ctx := context.Background()

	const (
		writers = 3
		keys    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		cli, err := c.NewClient(ctx, c.MemoryServerNodes()[w%3])
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		s, err := Open(ctx, cli, "conc", Options{Slots: 4096})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := s.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("writer %d put: %v", w, err)
					return
				}
			}
		}(w, s)
	}
	wg.Wait()

	checker, err := c.NewClient(ctx, 1)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s, err := Open(ctx, checker, "conc", Options{Slots: 4096})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("w%d-k%d", w, i))
			v, err := s.Get(ctx, k)
			if err != nil {
				t.Fatalf("get %s: %v", k, err)
			}
			if want := fmt.Sprintf("v%d", i); string(v) != want {
				t.Fatalf("get %s = %q, want %q", k, v, want)
			}
		}
	}
}

func TestConcurrentSameKeyContention(t *testing.T) {
	// Several clients hammer the same key with distinct tagged values; a
	// concurrent reader must always observe a complete, untorn value.
	c := startCluster(t)
	_, _ = newStore(t, c, "hot", Options{})
	ctx := context.Background()

	openStore := func(node int) *Store {
		cli, err := c.NewClient(ctx, c.MemoryServerNodes()[node%3])
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		s, err := Open(ctx, cli, "hot", Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return s
	}

	key := []byte("contended")
	if err := openStore(0).Put(ctx, key, valueFor(0, 0)); err != nil {
		t.Fatalf("seed put: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		s := openStore(w)
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(ctx, key, valueFor(w, i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, s)
	}

	reader := openStore(2)
	for i := 0; i < 100; i++ {
		v, err := reader.Get(ctx, key)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		if !validValue(v) {
			t.Fatalf("torn value observed: %q", v)
		}
	}
	close(stop)
	wg.Wait()
}

// valueFor builds a self-consistent value: a tag repeated, so tearing is
// detectable.
func valueFor(w, i int) []byte {
	tag := fmt.Sprintf("[w%d-i%d]", w, i)
	return bytes.Repeat([]byte(tag), 96/len(tag))
}

func validValue(v []byte) bool {
	if len(v) == 0 {
		return false
	}
	end := bytes.IndexByte(v[1:], '[')
	if end < 0 {
		return false
	}
	tag := v[:end+1]
	for off := 0; off+len(tag) <= len(v); off += len(tag) {
		if !bytes.Equal(v[off:off+len(tag)], tag) {
			return false
		}
	}
	return true
}

// Property: a random batch of distinct keys round-trips.
func TestPutGetProperty(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "prop", Options{Slots: 8192})
	ctx := context.Background()
	seen := make(map[string]bool)
	fn := func(rawKey []byte, rawVal []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		if len(rawKey) == 0 || len(rawKey) > 32 {
			rawKey = []byte(fmt.Sprintf("k%d", rng.Int63()))
		}
		if seen[string(rawKey)] {
			return true
		}
		seen[string(rawKey)] = true
		if len(rawVal) > 128 {
			rawVal = rawVal[:128]
		}
		if err := s.Put(ctx, rawKey, rawVal); err != nil {
			return false
		}
		got, err := s.Get(ctx, rawKey)
		if err != nil {
			return false
		}
		return bytes.Equal(got, rawVal)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCapacityAndMaxEntry(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "meta", Options{SlotSize: 128, Slots: 512, StripeUnit: 16 << 10})
	if s.Capacity() != 512 {
		t.Errorf("Capacity = %d", s.Capacity())
	}
	if s.MaxEntry() != 128-slotHeader {
		t.Errorf("MaxEntry = %d", s.MaxEntry())
	}
}

func TestBackoffRespectsContext(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// Both the spin phase and the sleep phase must notice cancellation.
	if err := backoff(canceled, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("spin-phase backoff on canceled ctx: got %v", err)
	}
	if err := backoff(canceled, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep-phase backoff on canceled ctx: got %v", err)
	}
	if err := backoff(context.Background(), 20); err != nil {
		t.Fatalf("backoff with live ctx: got %v", err)
	}
}

// Regression: an operation cancelled mid-retry must surface the caller's
// ctx.Err(), not a generic retry-exhausted error.
func TestCancelledContextSurfacesCtxErr(t *testing.T) {
	c := startCluster(t)
	s, _ := newStore(t, c, "cancel", Options{})
	ctx := context.Background()
	if err := s.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := s.Put(canceled, []byte("k"), []byte("v2")); !errors.Is(err, context.Canceled) {
		t.Errorf("Put on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.Get(canceled, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Errorf("Get on canceled ctx = %v, want context.Canceled", err)
	}
	if err := s.Delete(canceled, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Errorf("Delete on canceled ctx = %v, want context.Canceled", err)
	}
}
