package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parse helpers for rendered table cells.

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func cellDuration(t *testing.T, s string) time.Duration {
	t.Helper()
	// metrics renders "500ns", "2.50us", "1.50ms", "2.00s" — match the
	// most specific suffix first.
	for _, suf := range []struct {
		tag  string
		unit time.Duration
	}{{"ns", time.Nanosecond}, {"us", time.Microsecond}, {"ms", time.Millisecond}, {"s", time.Second}} {
		if !strings.HasSuffix(s, suf.tag) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, suf.tag), 64)
		if err != nil {
			continue
		}
		return time.Duration(v * float64(suf.unit))
	}
	t.Fatalf("cell %q not a duration", s)
	return 0
}

func TestE1LatencyShape(t *testing.T) {
	tbl, err := E1Latency(context.Background())
	if err != nil {
		t.Fatalf("E1Latency: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	if len(rows) != len(E1Sizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		raw := cellDuration(t, row[1])
		rstore := cellDuration(t, row[2])
		tcp := cellDuration(t, row[4])
		// Close to hardware: RStore within 2x of raw verbs.
		if float64(rstore) > 2*float64(raw) {
			t.Errorf("size %s: rstore %v not close to raw %v", row[0], rstore, raw)
		}
		// Far below the two-sided store for small transfers.
		if row[0] == "8B" && tcp < 5*rstore {
			t.Errorf("8B: two-sided %v should dwarf rstore %v", tcp, rstore)
		}
	}
	// Small op stays in the close-to-hardware class (single digit us).
	if small := cellDuration(t, rows[0][2]); small > 10*time.Microsecond {
		t.Errorf("8B read latency %v too high", small)
	}
}

func TestE2BandwidthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := E2Bandwidth(context.Background())
	if err != nil {
		t.Fatalf("E2Bandwidth: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	// Aggregate bandwidth grows with machine count. (The smallest
	// clusters see extra per-machine bandwidth from co-located locality —
	// half of a 2-machine stripe is loopback — so compare from 4 up.)
	fourUp := cellFloat(t, rows[1][2])
	last := cellFloat(t, rows[len(rows)-1][2])
	if last < 2*fourUp {
		t.Errorf("aggregate bandwidth did not scale: %v@4 -> %v@12 Gb/s", fourUp, last)
	}
	// The 12-machine row lands in the paper's several-hundred-Gb/s class
	// with healthy per-link efficiency.
	if last < 400 || last > 900 {
		t.Errorf("12-machine aggregate = %.0f Gb/s, want the ~700 Gb/s class", last)
	}
	if perMachine := cellFloat(t, rows[len(rows)-1][3]); perMachine < 35 {
		t.Errorf("per-machine bandwidth = %.1f Gb/s, want >= 35 (56 Gb/s links)", perMachine)
	}
}

func TestE3ControlShape(t *testing.T) {
	tbl, err := E3ControlPath(context.Background())
	if err != nil {
		t.Fatalf("E3ControlPath: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	// Data path flat: 8B read latency identical (within 50%) across region
	// sizes while register cost grows by orders of magnitude.
	firstRead := cellDuration(t, rows[0][5])
	lastRead := cellDuration(t, rows[len(rows)-1][5])
	if ratio := float64(lastRead) / float64(firstRead); ratio > 1.5 || ratio < 0.67 {
		t.Errorf("data path not flat: %v vs %v", firstRead, lastRead)
	}
	firstRegister := cellDuration(t, rows[0][4])
	lastRegister := cellDuration(t, rows[len(rows)-1][4])
	if lastRegister < 10*firstRegister {
		t.Errorf("register cost did not grow with size: %v vs %v", firstRegister, lastRegister)
	}
	// Warm map far cheaper than cold map (QP reuse).
	coldMap := cellDuration(t, rows[0][2])
	warmMap := cellDuration(t, rows[0][3])
	if warmMap*2 > coldMap {
		t.Errorf("warm map %v not amortized vs cold %v", warmMap, coldMap)
	}
}

func TestE4PageRankShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// One smaller case to keep test time in check; the full sweep runs in
	// the root benches.
	cases := []E4Graph{{Name: "rmat-16k", Vertices: 16 << 10, Edges: 160 << 10, Kind: "rmat", Machines: 8}}
	tbl, err := E4PageRank(context.Background(), cases)
	if err != nil {
		t.Fatalf("E4PageRank: %v", err)
	}
	t.Log("\n" + tbl.String())
	speedup := cellFloat(t, tbl.Rows()[0][5])
	if speedup < 1.5 || speedup > 8 {
		t.Errorf("speedup = %.2f, want the paper's 2.6-4.2x class", speedup)
	}
}

func TestE5SortShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := E5Sort(context.Background(), []int{500_000, 2_000_000})
	if err != nil {
		t.Fatalf("E5Sort: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	// Extrapolated 256 GB row: RStore in the tens of seconds, speedup in
	// the ~8x class.
	last := rows[len(rows)-1]
	rstore := cellDuration(t, last[2])
	speedup := cellFloat(t, last[4])
	if rstore < 10*time.Second || rstore > 120*time.Second {
		t.Errorf("256GB extrapolation = %v, want the ~31.7s class", rstore)
	}
	if speedup < 4 || speedup > 16 {
		t.Errorf("speedup = %.1f, want the ~8x class", speedup)
	}
}

func TestE6NotifyShape(t *testing.T) {
	tbl, err := E6Notify(context.Background())
	if err != nil {
		t.Fatalf("E6Notify: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	total := cellDuration(t, rows[0][3])
	if total <= 0 || total > 100*time.Microsecond {
		t.Errorf("notify e2e = %v, want a few microseconds", total)
	}
}

func TestE7MultiClientShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := E7MultiClient(context.Background())
	if err != nil {
		t.Fatalf("E7MultiClient: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	first := cellFloat(t, rows[0][1])
	last := cellFloat(t, rows[len(rows)-1][1])
	if last < 4*first {
		t.Errorf("throughput did not scale with clients: %v -> %v Mops/s", first, last)
	}
}

func TestE8RepairShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// One small size keeps the real-time cost down; the full sweep runs
	// under `rstore-bench -exp e8`.
	orig := E8Sizes
	E8Sizes = []uint64{2 << 20}
	defer func() { E8Sizes = orig }()
	tbl, err := E8RepairMTTR(context.Background())
	if err != nil {
		t.Fatalf("E8RepairMTTR: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if mib := cellFloat(t, rows[0][1]); mib < 2 {
		t.Errorf("repair-mib = %v, want >= 2 (the replica re-replicated)", mib)
	}
	if tbl.Footer == "" {
		t.Error("no slowest-op breakdown footer; flight recorder pinned nothing")
	}
}

func TestA1StripeShape(t *testing.T) {
	tbl, err := A1Stripe(context.Background())
	if err != nil {
		t.Fatalf("A1Stripe: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	narrow := cellFloat(t, rows[0][1])
	wide := cellFloat(t, rows[len(rows)-1][1])
	// Width-1 is capped by a single server link (~56 Gb/s); width-8
	// should multiply aggregate bandwidth severalfold.
	if narrow > 70 {
		t.Errorf("width-1 aggregate %.1f Gb/s exceeds one server link", narrow)
	}
	if wide < 2.5*narrow {
		t.Errorf("striping did not scale: width-1 %.1f vs width-8 %.1f Gb/s", narrow, wide)
	}
}

func TestA2ReplicationShape(t *testing.T) {
	tbl, err := A2Replication(context.Background())
	if err != nil {
		t.Fatalf("A2Replication: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	r0 := cellDuration(t, rows[0][1])
	r2 := cellDuration(t, rows[2][1])
	if r2 <= r0 {
		t.Errorf("replication should cost: r0=%v r2=%v", r0, r2)
	}
}

func TestA4KVStoreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := A4KVStore(context.Background())
	if err != nil {
		t.Fatalf("A4KVStore: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	// Read-only should not lose badly to the write-heavy mix, and per-op
	// latency stays in the close-to-hardware class (small multiple of a
	// one-sided read). Throughput between mixes is noisy on a loaded box
	// (workers claim virtual-time slots in real execution order), so the
	// shape check allows the documented run-to-run variance.
	readOnly := cellFloat(t, rows[0][1])
	mixed := cellFloat(t, rows[len(rows)-1][1])
	if readOnly < 0.75*mixed {
		t.Errorf("read-only %.1f kops/s far slower than 50/50 %.1f", readOnly, mixed)
	}
	if p50 := cellFloat(t, rows[0][2]); p50 <= 0 || p50 > 50 {
		t.Errorf("get p50 = %.2f us, want close-to-hardware", p50)
	}
}

func TestA3QPSharingShape(t *testing.T) {
	tbl, err := A3QPSharing(context.Background())
	if err != nil {
		t.Fatalf("A3QPSharing: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	firstConnects := cellFloat(t, rows[0][2])
	laterConnects := cellFloat(t, rows[1][2])
	if firstConnects == 0 {
		t.Error("first map should establish connections")
	}
	if laterConnects != 0 {
		t.Errorf("later maps should reuse QPs, got %v connects", laterConnects)
	}
}

func TestE10TxnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Two corners of the sweep keep the real-time cost down; the full
	// grid runs under `rstore-bench -exp e10`.
	origW, origS := E10Workers, E10Skews
	E10Workers = []int{1, 8}
	E10Skews = E10Skews[:1:1]
	E10Skews = append(E10Skews, origS[len(origS)-1])
	defer func() { E10Workers, E10Skews = origW, origS }()

	tbl, err := E10TxnContention(context.Background())
	if err != nil {
		t.Fatalf("E10TxnContention: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	rate := func(row []string) float64 {
		return cellFloat(t, strings.TrimSuffix(row[4], "%"))
	}
	for _, row := range rows {
		if cellFloat(t, row[2]) < 1 {
			t.Errorf("row %v: nothing committed", row)
		}
	}
	// Contention must show: the skewed many-worker corner aborts more
	// than the single uncontended worker.
	if lo, hi := rate(rows[0]), rate(rows[len(rows)-1]); hi <= lo {
		t.Errorf("abort rate flat under contention: uncontended %.1f%% vs contended %.1f%%", lo, hi)
	}
	// The design's promise: the transactional envelope costs at most 2x
	// the raw one-sided write pair it replaces.
	commit, pair, err := e10Baseline(context.Background())
	if err != nil {
		t.Fatalf("e10Baseline: %v", err)
	}
	if ratio := float64(commit) / float64(pair); ratio > 2.0 {
		t.Errorf("uncontended commit %v = %.2fx write pair %v, want <= 2x", commit, ratio, pair)
	}
}

func TestE11IndexShape(t *testing.T) {
	// A shrunken corner of the sweep; the full table runs under
	// `rstore-bench -exp e11`.
	origK, origL, origN, origS := E11Keys, E11Lookups, E11Negatives, E11ScanSizes
	E11Keys, E11Lookups, E11Negatives = 256, 96, 64
	E11ScanSizes = []int{16, 64}
	defer func() { E11Keys, E11Lookups, E11Negatives, E11ScanSizes = origK, origL, origN, origS }()

	tbl, err := E11Index(context.Background())
	if err != nil {
		t.Fatalf("E11Index: %v", err)
	}
	t.Log("\n" + tbl.String())
	rows := tbl.Rows()
	if len(rows) != 6+2*len(E11ScanSizes) {
		t.Fatalf("rows = %d, want %d", len(rows), 6+2*len(E11ScanSizes))
	}
	flatLat, flatReads := cellDuration(t, rows[0][2]), cellFloat(t, rows[0][3])
	coldReads := cellFloat(t, rows[1][3])
	warmLat, warmReads := cellDuration(t, rows[2][2]), cellFloat(t, rows[2][3])
	zipfReads := cellFloat(t, rows[3][3])
	missPlainReads := cellFloat(t, rows[4][3])
	missBloomReads := cellFloat(t, rows[5][3])

	// (a) A warm client's point get routes through its cache: at most
	// the two wire reads of one validated leaf read, and within 1.5x the
	// flat hash table's validated slot read.
	if warmReads > 2.2 {
		t.Errorf("warm get costs %.2f reads/op, want <= 2.2", warmReads)
	}
	if zipfReads > 2.2 {
		t.Errorf("warm zipf get costs %.2f reads/op, want <= 2.2", zipfReads)
	}
	if float64(warmLat) > 1.5*float64(flatLat) {
		t.Errorf("warm get %v vs flat-hash %v, want <= 1.5x", warmLat, flatLat)
	}
	if coldReads <= warmReads {
		t.Errorf("cold get %.2f reads/op not above warm %.2f: cache buys nothing", coldReads, warmReads)
	}
	if flatReads <= 0 {
		t.Errorf("flat get read nothing (%.2f reads/op)", flatReads)
	}

	// (c) Bloom sidecars cut negative-lookup wire reads by at least half.
	if missBloomReads > 0.5*missPlainReads {
		t.Errorf("bloom miss %.2f reads/op vs nobloom %.2f, want <= 50%%", missBloomReads, missPlainReads)
	}

	// (b) A range scan of n keys beats the n point gets it replaces,
	// from the smallest swept size up, on both latency and wire reads.
	for i, n := range E11ScanSizes {
		scanRow, getsRow := rows[6+2*i], rows[7+2*i]
		scanLat, scanReads := cellDuration(t, scanRow[2]), cellFloat(t, scanRow[3])
		getsLat, getsReads := cellDuration(t, getsRow[2]), cellFloat(t, getsRow[3])
		if scanLat >= getsLat {
			t.Errorf("scan-%d %v not below %d point gets %v", n, scanLat, n, getsLat)
		}
		if scanReads >= getsReads {
			t.Errorf("scan-%d %.2f reads not below point gets %.2f", n, scanReads, getsReads)
		}
	}
}
