package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/baseline/mrsort"
	"rstore/internal/core"
	"rstore/internal/kvsort"
	"rstore/internal/workload"
)

// E5Volumes is the record-count sweep of the sort experiment (bench
// scale; the 256 GB headline row is extrapolated from the marginal cost
// between the two largest runs, which strips the fixed per-run setup
// costs that dominate at megabyte scale but vanish at 256 GB).
var E5Volumes = []int{500_000, 1_500_000, 3_000_000}

// E5PaperRecords is the paper's 256 GB volume in 100-byte records.
const E5PaperRecords = 2_560_000_000

// E5Sort reproduces the paper's sort headline: the RStore KV sorter vs a
// MapReduce (Hadoop TeraSort class) baseline, with the paper reporting
// 256 GB in 31.7s — 8x faster than Hadoop.
func E5Sort(ctx context.Context, volumes []int) (*metricsTable, error) {
	if volumes == nil {
		volumes = E5Volumes
	}
	const machines = 12
	cluster, err := startCluster(ctx, machines+1, 0, 256<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	tbl := newTable("E5: KV sort, RStore vs MapReduce (modeled)",
		"records", "mb", "rstore", "mapreduce", "speedup")

	type point struct {
		records int
		modeled time.Duration
	}
	var points []point
	for _, records := range volumes {
		s, err := kvsort.New(ctx, cluster, kvsort.Config{})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("e5-%d", records)
		if err := s.GenerateInput(ctx, name, records, 42); err != nil {
			s.Close()
			return nil, err
		}
		res, err := s.Run(ctx, name, records)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := s.Validate(ctx, res.OutputRegion, records); err != nil {
			s.Close()
			return nil, err
		}
		// Free everything so the next volume fits in the arena.
		for _, rn := range []string{name, name + ".shuffle", name + ".cursors", name + ".sorted"} {
			_ = freeRegion(ctx, cluster, rn)
		}
		s.Close()

		mr, err := mrsort.Run(records, 42, mrsort.Config{Nodes: machines})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(records, records*workload.RecordSize/(1<<20), res.Modeled, mr.Modeled,
			float64(mr.Modeled)/float64(res.Modeled))
		points = append(points, point{records, res.Modeled})
	}

	// Headline extrapolation: fit the marginal cost per record between the
	// two largest runs (every phase is volume-proportional once links and
	// CPUs are saturated; the intercept captures fixed setup costs that do
	// not grow) and use the MR closed-form model directly.
	if len(points) >= 2 {
		p1, p2 := points[len(points)-2], points[len(points)-1]
		slope := float64(p2.modeled-p1.modeled) / float64(p2.records-p1.records)
		if slope <= 0 {
			slope = float64(p2.modeled) / float64(p2.records)
		}
		rsExtrap := p2.modeled + time.Duration(slope*float64(E5PaperRecords-p2.records))
		mrExtrap := mrsort.ModelOnly(E5PaperRecords, mrsort.Config{Nodes: machines}).Modeled
		tbl.AddRow(fmt.Sprintf("%d (256GB extrap)", E5PaperRecords), 256<<10, rsExtrap, mrExtrap,
			float64(mrExtrap)/float64(rsExtrap))
	}
	return tbl, nil
}

// freeRegion best-effort frees a region through a throwaway client.
func freeRegion(ctx context.Context, cluster *core.Cluster, name string) error {
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return err
	}
	defer cli.Close()
	return cli.Free(ctx, name)
}
