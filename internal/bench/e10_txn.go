package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/proto"
	"rstore/internal/simnet"
	"rstore/internal/txn"
	"rstore/internal/txn/txntest"
	"rstore/internal/workload"
)

// E10Workers is the contention sweep of the transaction experiment.
var E10Workers = []int{1, 4, 16}

// E10Skews are the access distributions the transfer pairs are drawn
// from. Higher theta concentrates traffic on fewer accounts, driving the
// optimistic abort rate up without changing offered load.
var E10Skews = []struct {
	Name  string
	Theta float64
}{
	{"uniform", 0},
	{"zipf-1.2", 1.2},
	{"zipf-3.0", 3.0},
}

const (
	e10Accounts  = 64
	e10CellSize  = 64
	e10Transfers = 40 // per worker
	e10Initial   = int64(1000)
)

// E10TxnContention measures the optimistic commit protocol (not in the
// paper, which stops at raw one-sided verbs): bank transfers between two
// accounts drawn from a skewed distribution, swept over worker count and
// zipfian theta. Aborts are per-attempt (a transfer may abort several
// times before committing); commit latency is the modeled time of the
// winning attempt's commit rounds only, so it isolates protocol overhead
// from business reads. The final rows pit an uncontended two-cell commit
// against a pair of sequential one-sided writes — the design's promise is
// that the transactional envelope costs at most 2x the raw write pair it
// replaces.
func E10TxnContention(ctx context.Context) (*metricsTable, error) {
	tbl := newTable("E10: optimistic txn abort rate and commit latency vs contention (modeled)",
		"workers", "skew", "committed", "aborts", "abort-rate", "p50-commit", "p99-commit")
	for _, workers := range E10Workers {
		for _, skew := range E10Skews {
			row, err := e10Run(ctx, workers, skew.Name, skew.Theta)
			if err != nil {
				return nil, fmt.Errorf("e10 %d workers %s: %w", workers, skew.Name, err)
			}
			tbl.AddRow(row...)
		}
	}

	commit, pair, err := e10Baseline(ctx)
	if err != nil {
		return nil, fmt.Errorf("e10 baseline: %w", err)
	}
	ratio := float64(commit) / float64(pair)
	tbl.Footer = fmt.Sprintf(
		"baseline: uncontended 2-cell commit %v vs sequential one-sided write pair %v = %.2fx (bound 2x); aborts are per-attempt",
		commit, pair, ratio)
	return tbl, nil
}

func e10Run(ctx context.Context, workers int, skewName string, theta float64) ([]interface{}, error) {
	cluster, err := core.Start(ctx, core.Config{
		Machines:       4,
		ServerCapacity: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Setup runs on its own client so the measurement client's
	// txn.commit_latency histogram sees transfer commits only.
	setupCli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return nil, err
	}
	defer setupCli.Close()
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	setup, err := txn.Create(ctx, setupCli, "e10", e10Options())
	if err != nil {
		return nil, err
	}
	if err := txntest.SetupBank(ctx, setup, e10Accounts, e10Initial); err != nil {
		return nil, err
	}

	tel := cli.Telemetry()
	commits0 := tel.Counter("txn.commits").Value()
	aborts0 := tel.Counter("txn.aborts").Value()
	h := txntest.NewHistory(cluster.Fabric().VNow)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 1; w <= workers; w++ {
		wsp, err := txn.Open(ctx, cli, "e10", e10Options())
		if err != nil {
			return nil, err
		}
		var pattern workload.AccessPattern
		if theta > 0 {
			pattern, err = workload.NewZipfian(e10Accounts*e10CellSize, e10CellSize, theta, 20150701+int64(w))
		} else {
			pattern, err = workload.NewUniform(e10Accounts*e10CellSize, e10CellSize, 20150701+int64(w))
		}
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, wsp *txn.Space, pattern workload.AccessPattern) {
			defer wg.Done()
			account := func() int { return int(pattern.Next() / e10CellSize) }
			for i := 0; i < e10Transfers; i++ {
				from := account()
				to := account()
				for to == from {
					to = account()
				}
				err := txntest.Transfer(ctx, wsp, h, w, i, from, to, 1, nil)
				if err != nil {
					errs <- fmt.Errorf("worker %d transfer %d: %w", w, i, err)
					return
				}
			}
		}(w, wsp, pattern)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	// The books must still balance — the bench reuses the chaos checker.
	final, err := txntest.Sweep(ctx, setup, e10Accounts)
	if err != nil {
		return nil, err
	}
	if vs := txntest.Check(h, final, e10Accounts, e10Initial); len(vs) > 0 {
		return nil, fmt.Errorf("history not serializable: %s", vs[0])
	}

	commits := tel.Counter("txn.commits").Value() - commits0
	aborts := tel.Counter("txn.aborts").Value() - aborts0
	rate := 0.0
	if commits+aborts > 0 {
		rate = float64(aborts) / float64(commits+aborts)
	}
	hist := tel.Histogram("txn.commit_latency")
	p50 := time.Duration(hist.Quantile(0.50))
	p99 := time.Duration(hist.Quantile(0.99))
	return []interface{}{workers, skewName, commits, aborts, fmt.Sprintf("%.1f%%", rate*100), p50, p99}, nil
}

// e10Baseline times the transactional envelope against the raw verbs it
// replaces, on an otherwise idle cluster: a two-cell read-modify-write
// commit (record, parallel locks, decide, parallel install — the
// business reads are excluded, they exist in both designs) vs two
// sequential one-sided cell writes to the same stripes.
//
// Placement matters as much as round count here, so the bench arranges
// it the way a deployed client would: the private log slot is pinned to
// the client-local server (the record and decision rounds never cross
// the wire at full cost) while the shared data cells live on remote
// servers, and the raw write pair targets cells of identical locality.
func e10Baseline(ctx context.Context) (commit, pair time.Duration, err error) {
	cluster, err := core.Start(ctx, core.Config{
		Machines:       4,
		ServerCapacity: 64 << 20,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()
	local := cluster.MemoryServerNodes()[0]
	setupCli, err := cluster.NewClient(ctx, local)
	if err != nil {
		return 0, 0, err
	}
	defer setupCli.Close()
	cli, err := cluster.NewClient(ctx, local)
	if err != nil {
		return 0, 0, err
	}
	defer cli.Close()

	opts := e10BaseOptions()
	if _, err := txn.Create(ctx, setupCli, "e10base", opts); err != nil {
		return 0, 0, err
	}

	// Pick the measurement handle's log slot so it lands on the local
	// server. Pinned Owner o writes records at offset o*LogSlotSize; with
	// LogSlotSize == StripeUnit that is stripe unit o, which the layout
	// contract places in Extents[o % len]. Owner 1 is skipped: Create's
	// handle auto-claimed it.
	logReg, err := cli.Map(ctx, "e10base.txnlog")
	if err != nil {
		return 0, 0, err
	}
	owner := 2
	for o := 2; o <= opts.Owners; o++ {
		if extentServer(logReg.Info(), uint64(o)*opts.StripeUnit) == local {
			owner = o
			break
		}
	}
	opts.Owner = owner

	// And the two cells on remote servers — distinct ones when the layout
	// offers them, so the parallel lock and install fan-outs genuinely
	// overlap their round trips.
	dataReg, err := cli.Map(ctx, "e10base")
	if err != nil {
		return 0, 0, err
	}
	cellA, cellB := e10RemoteCells(dataReg.Info(), local, opts)

	sp, err := txn.Open(ctx, cli, "e10base", opts)
	if err != nil {
		return 0, 0, err
	}
	hist := cli.Telemetry().Histogram("txn.commit_latency")
	n0 := hist.Count()
	sum0 := hist.Sum()
	commit, err = meanLatency(20, func() (time.Duration, error) {
		start := cli.VNow()
		err := sp.RunTx(ctx, func(tx *txn.Tx) error {
			for i, cell := range [2]int{cellA, cellB} {
				b, err := tx.Read(ctx, cell)
				if err != nil {
					return err
				}
				bal, _ := txntest.DecodeAccount(b)
				if err := tx.Write(cell, txntest.EncodeAccount(bal, txntest.Stamp(0, i))); err != nil {
					return err
				}
			}
			return nil
		})
		return cli.VNow().Sub(start), err
	})
	if err != nil {
		return 0, 0, err
	}
	// Swap the end-to-end mean for the commit-rounds-only mean: the
	// histogram saw exactly the commits of the loop above.
	if n := hist.Count() - n0; n > 0 {
		commit = time.Duration((hist.Sum() - sum0) / float64(n))
	}

	// The raw pair writes the same two stripes of a fresh region with the
	// same geometry — identical locality, no transactional envelope.
	size := uint64(opts.Cells) * uint64(opts.CellSize)
	if _, err := setupCli.Alloc(ctx, "e10raw", size, client.AllocOptions{StripeUnit: opts.StripeUnit}); err != nil {
		return 0, 0, err
	}
	reg, err := cli.Map(ctx, "e10raw")
	if err != nil {
		return 0, 0, err
	}
	rawA, rawB := e10RemoteCells(reg.Info(), local, opts)
	buf, err := cli.AllocBuf(e10CellSize)
	if err != nil {
		return 0, 0, err
	}
	pair, err = meanLatency(20, func() (time.Duration, error) {
		start := cli.VNow()
		if _, err := reg.WriteAt(ctx, uint64(rawA)*e10CellSize, buf, 0, e10CellSize); err != nil {
			return 0, err
		}
		if _, err := reg.WriteAt(ctx, uint64(rawB)*e10CellSize, buf, 0, e10CellSize); err != nil {
			return 0, err
		}
		return cli.VNow().Sub(start), nil
	})
	if err != nil {
		return 0, 0, err
	}
	if pair <= 0 {
		return 0, 0, fmt.Errorf("degenerate write-pair measurement")
	}
	return commit, pair, nil
}

// extentServer resolves which server owns the stripe unit containing off.
func extentServer(info *proto.RegionInfo, off uint64) simnet.NodeID {
	unit := off / info.StripeUnit
	return info.Extents[unit%uint64(len(info.Extents))].Server
}

// e10RemoteCells picks two cells on servers other than local — on two
// distinct remote servers when the layout has them — so the measured
// data-path rounds pay full wire cost.
func e10RemoteCells(info *proto.RegionInfo, local simnet.NodeID, opts txn.Options) (int, int) {
	perUnit := int(opts.StripeUnit) / opts.CellSize
	units := opts.Cells / perUnit
	remote := make([]int, 0, units)
	for u := 0; u < units; u++ {
		if extentServer(info, uint64(u)*opts.StripeUnit) != local {
			remote = append(remote, u)
		}
	}
	switch len(remote) {
	case 0:
		return 0, 1 // single-server layout: locality is equal everywhere
	case 1:
		return remote[0] * perUnit, remote[0]*perUnit + 1
	}
	a := remote[0]
	for _, u := range remote[1:] {
		if extentServer(info, uint64(u)*opts.StripeUnit) != extentServer(info, uint64(a)*opts.StripeUnit) {
			return a * perUnit, u * perUnit
		}
	}
	return remote[0] * perUnit, remote[1] * perUnit
}

func e10Options() txn.Options {
	return txn.Options{
		Cells:            e10Accounts,
		CellSize:         e10CellSize,
		StaleLockTimeout: 500 * time.Microsecond,
		Retry: client.RetryPolicy{
			MaxAttempts: 64,
			BaseDelay:   2 * time.Microsecond,
			MaxDelay:    64 * time.Microsecond,
			Multiplier:  2,
			Jitter:      0.2,
			Seed:        20150701,
		},
	}
}

// e10BaseOptions spreads the baseline space across servers: a 4 KiB
// stripe unit (the smallest the log slot admits) gives the data region
// one stripe per 64 cells and the log one slot per stripe, which is what
// lets the baseline steer record locality per owner.
func e10BaseOptions() txn.Options {
	o := e10Options()
	o.Cells = 256
	o.StripeUnit = 4096
	o.LogSlotSize = 4096
	return o
}
