package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"rstore/internal/telemetry"
)

func TestNewReportExtractsNumericCells(t *testing.T) {
	tbl := telemetry.NewTable("demo", "size", "latency", "gbps", "speedup", "note")
	tbl.AddRow("128KiB", 1270*time.Nanosecond, 705.23, "8x", "ok")
	tbl.AddRow("1MiB", 2*time.Millisecond, 12.5, "-", "n/a")
	rep := NewReport("e1", tbl)

	if rep.Experiment != "e1" || rep.Title != "demo" {
		t.Fatalf("header = %q/%q", rep.Experiment, rep.Title)
	}
	// Row 1: latency (1.27us -> ns), gbps (bare float), speedup ("8x");
	// row 2: latency (2.00ms -> ns), gbps. "ok"/"n/a"/"-" are skipped and
	// the first column is config, never a metric.
	want := []Metric{
		{Name: "latency", Value: 1270, Unit: "ns", Config: "128KiB"},
		{Name: "gbps", Value: 705.23, Config: "128KiB"},
		{Name: "speedup", Value: 8, Unit: "x", Config: "128KiB"},
		{Name: "latency", Value: 2e6, Unit: "ns", Config: "1MiB"},
		{Name: "gbps", Value: 12.5, Config: "1MiB"},
	}
	if len(rep.Metrics) != len(want) {
		t.Fatalf("metrics = %+v, want %d entries", rep.Metrics, len(want))
	}
	for i, m := range rep.Metrics {
		if m != want[i] {
			t.Errorf("metric[%d] = %+v, want %+v", i, m, want[i])
		}
	}
}

func TestReportWriteRoundTrips(t *testing.T) {
	tbl := telemetry.NewTable("tiny", "cfg", "v")
	tbl.AddRow("a", 42.0)
	dir := t.TempDir()
	path, err := NewReport("a3", tbl).Write(dir)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got, want := path, dir+"/BENCH_A3.json"; got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if rep.Experiment != "a3" || len(rep.Metrics) != 1 || rep.Metrics[0].Value != 42 {
		t.Fatalf("round-trip = %+v", rep)
	}
}
