package bench

import (
	"context"
	"fmt"
	"sync"

	"rstore/internal/client"
	"rstore/internal/simnet"
)

// E7Clients is the client-count sweep.
var E7Clients = []int{1, 2, 4, 8, 16, 24}

// E7MultiClient measures aggregate small-op throughput as clients are
// added: because the data path bypasses every server CPU, throughput
// scales with client count until the links saturate.
func E7MultiClient(ctx context.Context) (*metricsTable, error) {
	const (
		servers = 12
		opSize  = 4 << 10
		opsEach = 256
	)
	maxClients := E7Clients[len(E7Clients)-1]
	cluster, err := startCluster(ctx, servers+1, maxClients, 64<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	admin, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return nil, err
	}
	regionSize := uint64(servers) * 4 << 20
	if _, err := admin.Alloc(ctx, "e7", regionSize, client.AllocOptions{StripeUnit: 64 << 10}); err != nil {
		return nil, err
	}

	tbl := newTable("E7: aggregate 4KiB read throughput vs clients (modeled)",
		"clients", "mops/s", "agg-gbps")
	for _, clients := range E7Clients {
		mops, gbps, err := e7Run(ctx, cluster, clients, servers, opSize, opsEach, regionSize)
		if err != nil {
			return nil, fmt.Errorf("e7 with %d clients: %w", clients, err)
		}
		tbl.AddRow(clients, mops, gbps)
	}
	return tbl, nil
}

func e7Run(ctx context.Context, cluster clusterIface, clients, servers, opSize, opsEach int, regionSize uint64) (float64, float64, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		aggGbps  float64
		aggOpsPS float64
		errs     = make([]error, clients)
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			node := simnet.NodeID(servers + 1 + c%((cluster.Fabric().Size())-servers-1))
			cli, err := cluster.NewClient(ctx, node)
			if err != nil {
				errs[c] = err
				return
			}
			defer cli.Close()
			reg, err := cli.Map(ctx, "e7")
			if err != nil {
				errs[c] = err
				return
			}
			buf, err := cli.AllocBuf(opSize)
			if err != nil {
				errs[c] = err
				return
			}
			var win window
			for i := 0; i < opsEach; i++ {
				off := (uint64(c*opsEach+i) * 40961) % (regionSize - uint64(opSize))
				st, err := reg.ReadAt(ctx, off, buf, 0, opSize)
				if err != nil {
					errs[c] = err
					return
				}
				win.add(st, opSize)
			}
			span := win.last.Sub(win.first)
			mu.Lock()
			aggGbps += win.gbps()
			if span > 0 {
				aggOpsPS += float64(opsEach) / span.Seconds()
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return aggOpsPS / 1e6, aggGbps, nil
}

// clusterIface is the slice of core.Cluster the runner needs (kept small
// for testability).
type clusterIface interface {
	Fabric() *simnet.Fabric
	NewClient(ctx context.Context, node simnet.NodeID) (*client.Client, error)
	MemoryServerNodes() []simnet.NodeID
}
