package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rstore/internal/client"
	"rstore/internal/telemetry"
)

// E2Machines is the cluster-size sweep of the aggregate bandwidth
// experiment (the paper scales to 12 machines).
var E2Machines = []int{2, 4, 6, 8, 10, 12}

// E2Bandwidth reproduces the paper's aggregate-bandwidth scaling figure:
// with a region striped over all memory servers and one client per
// machine issuing large reads, aggregate modeled bandwidth grows linearly
// with machine count, reaching the ~700 Gb/s class at 12 FDR machines.
func E2Bandwidth(ctx context.Context) (*metricsTable, error) {
	tbl := newTable("E2: aggregate read bandwidth vs machines (modeled)",
		"machines", "clients", "agg-gbps", "gbps/machine", "rdma-ops", "rdma-gib", "retx")
	var worst time.Duration
	for _, n := range E2Machines {
		agg, snap, slowD, slowDesc, err := e2Run(ctx, n)
		if err != nil {
			return nil, fmt.Errorf("e2 with %d machines: %w", n, err)
		}
		tbl.AddRow(n, n, agg, agg/float64(n),
			snap.Counter("rdma.ops"),
			float64(snap.Counter("rdma.bytes"))/float64(1<<30),
			snap.Counter("rdma.retransmits"))
		if slowDesc != "" && slowD > worst {
			worst = slowD
			tbl.Footer = fmt.Sprintf("%s (%d machines)", slowDesc, n)
		}
	}
	return tbl, nil
}

// e2Run measures one cluster size: n memory-server machines, one client
// co-located on each (as on the paper's testbed). Every client issues
// full-stripe bulk reads: each operation scatter-gathers one 1 MiB
// fragment from every server, so all links stay engaged and balanced —
// the access pattern the paper's bandwidth experiment uses.
func e2Run(ctx context.Context, n int) (float64, telemetry.Snapshot, time.Duration, string, error) {
	const (
		stripeUnit = 1 << 20
		rounds     = 12
	)
	opSize := n * stripeUnit // one fragment per server
	cluster, err := startCluster(ctx, n+1, 0, 256<<20)
	if err != nil {
		return 0, telemetry.Snapshot{}, 0, "", err
	}
	defer cluster.Close()

	// Pin every op in the flight recorder so the run can report its
	// slowest operation's critical-path breakdown alongside the aggregate:
	// rounds × (1 envelope + n fragments) spans fit each client's ring.
	cluster.SetSlowOpThreshold(time.Nanosecond)

	nodes := cluster.MemoryServerNodes()
	admin, err := cluster.NewClient(ctx, nodes[0])
	if err != nil {
		return 0, telemetry.Snapshot{}, 0, "", err
	}
	regionSize := uint64(opSize)
	if _, err := admin.Alloc(ctx, "e2", regionSize, client.AllocOptions{StripeUnit: stripeUnit}); err != nil {
		return 0, telemetry.Snapshot{}, 0, "", err
	}

	// One client per machine, mapped up front.
	type endpoint struct {
		reg *client.Region
		buf *client.Buf
		win window
	}
	eps := make([]*endpoint, len(nodes))
	for i, node := range nodes {
		cli, err := cluster.NewClient(ctx, node)
		if err != nil {
			return 0, telemetry.Snapshot{}, 0, "", err
		}
		reg, err := cli.Map(ctx, "e2")
		if err != nil {
			return 0, telemetry.Snapshot{}, 0, "", err
		}
		buf, err := cli.AllocBuf(opSize)
		if err != nil {
			return 0, telemetry.Snapshot{}, 0, "", err
		}
		eps[i] = &endpoint{reg: reg, buf: buf}
	}

	// Lockstep rounds, as bandwidth tests run on real testbeds: every
	// client issues one full-stripe read per round. The barrier keeps the
	// clients contending for the same virtual-time window instead of one
	// client racing many rounds ahead on the shared timeline.
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make([]error, len(eps))
		for i, ep := range eps {
			wg.Add(1)
			go func(i int, ep *endpoint) {
				defer wg.Done()
				st, err := ep.reg.ReadAt(ctx, 0, ep.buf, 0, opSize)
				if err != nil {
					errs[i] = err
					return
				}
				ep.win.add(st, opSize)
			}(i, ep)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, telemetry.Snapshot{}, 0, "", err
			}
		}
	}
	var agg float64
	for _, ep := range eps {
		agg += ep.win.gbps()
	}
	// The run just finished in-process, so read the registries directly —
	// the merged snapshot reports what the fabric actually carried.
	slowD, slowDesc, _ := slowestPinnedOp(cluster)
	return agg, cluster.TelemetrySnapshot(), slowD, slowDesc, nil
}
