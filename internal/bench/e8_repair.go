package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
)

// E8Sizes is the region-size sweep of the repair-MTTR experiment.
var E8Sizes = []uint64{2 << 20, 16 << 20, 64 << 20}

// E8RepairMTTR measures the self-healing plane (not in the paper, which
// stops at failure detection): for each region size, a memory server
// holding the replica of an RF=2 region is killed and MTTR is the virtual
// time from the master declaring it dead to the region reporting full RF
// again — the master.repair_duration histogram, with master.repair_bytes
// as the work measure. The flight recorder stays armed through the
// degraded window, so the footer carries the critical-path breakdown of
// the slowest client op that rode through the failure.
func E8RepairMTTR(ctx context.Context) (*metricsTable, error) {
	tbl := newTable("E8: repair MTTR vs region size (modeled)",
		"size", "repair-mib", "mttr", "gen")
	var worst time.Duration
	for _, size := range E8Sizes {
		row, slowD, slowDesc, err := e8Run(ctx, size)
		if err != nil {
			return nil, fmt.Errorf("e8 with %s: %w", sizeLabel(int(size)), err)
		}
		tbl.AddRow(row...)
		if slowDesc != "" && slowD > worst {
			worst = slowD
			tbl.Footer = fmt.Sprintf("%s (%s region)", slowDesc, sizeLabel(int(size)))
		}
	}
	return tbl, nil
}

// e8Run kills the replica holder of one RF=2 region and waits for the
// repair plane to restore full replication, issuing degraded-window ops so
// the flight recorder has traffic to pin.
func e8Run(ctx context.Context, size uint64) ([]interface{}, time.Duration, string, error) {
	const beat = 10 * time.Millisecond
	cluster, err := core.Start(ctx, core.Config{
		Machines:          6,
		ExtraClientNodes:  1,
		ServerCapacity:    256 << 20,
		HeartbeatInterval: beat,
	})
	if err != nil {
		return nil, 0, "", err
	}
	defer cluster.Close()

	cli, err := cluster.NewClient(ctx, simnet.NodeID(cluster.Fabric().Size()-1))
	if err != nil {
		return nil, 0, "", err
	}
	// Arm after the client exists: the extra client node's registry is not
	// part of the cluster walk until the client opens its device.
	cluster.SetSlowOpThreshold(time.Nanosecond)
	reg, err := cli.AllocMap(ctx, "e8", size, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2, Replicas: 1,
	})
	if err != nil {
		return nil, 0, "", err
	}
	buf, err := cli.AllocBuf(1 << 20)
	if err != nil {
		return nil, 0, "", err
	}
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 1<<20); err != nil {
		return nil, 0, "", err
	}

	victim := reg.Info().Copies()[1][0].Server
	gen := reg.Info().Generation
	if err := cluster.KillServer(victim); err != nil {
		return nil, 0, "", err
	}

	// Poll until healed, keeping degraded-window traffic flowing so the
	// recorder sees the ops that pay the failure's latency tax.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := reg.WriteAt(ctx, 0, buf, 0, 64<<10); err != nil {
			return nil, 0, "", err
		}
		statuses, err := cli.RegionStatuses(ctx)
		if err != nil {
			return nil, 0, "", err
		}
		healed := false
		var finalGen uint64
		for _, st := range statuses {
			if st.Info.Name != "e8" || st.Lost {
				continue
			}
			ok := st.Info.Generation > gen
			for _, cs := range st.Copies {
				if !cs.Healthy || cs.Dirty || cs.UnderRepair {
					ok = false
				}
			}
			if ok {
				healed, finalGen = true, st.Info.Generation
			}
		}
		if healed {
			snap := cluster.TelemetrySnapshot()
			h := snap.Histograms["master.repair_duration"]
			mttr := time.Duration(h.Max)
			repairMiB := float64(snap.Counter("master.repair_bytes")) / float64(1<<20)
			slowD, slowDesc, _ := slowestPinnedOp(cluster)
			return []interface{}{sizeLabel(int(size)), repairMiB, mttr, finalGen}, slowD, slowDesc, nil
		}
		if time.Now().After(deadline) {
			return nil, 0, "", fmt.Errorf("region not healed after 30s")
		}
		time.Sleep(beat)
	}
}
