// Package bench regenerates every table and figure of the paper's
// evaluation on the simulated testbed. Each Ex function builds the cluster
// it needs, drives the workload, and returns a telemetry.Table whose rows
// mirror what the paper reports; EXPERIMENTS.md records the side-by-side.
//
// Experiment IDs (see DESIGN.md per-experiment index):
//
//	E1  read/write latency vs transfer size (raw verbs / RStore / two-sided)
//	E2  aggregate bandwidth vs cluster size (the 705 Gb/s figure)
//	E3  control-path costs (alloc / map / register) vs data-path flatness
//	E4  PageRank: RStore graph engine vs message-passing baseline
//	E5  KV sort: RStore sorter vs MapReduce baseline (the 31.7s / 8x figure)
//	E6  notification latency
//	E7  small-op throughput vs client count
//	A1-A3 ablations: stripe unit, replication, QP sharing
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// metricsTable aliases the harness's table type to keep experiment files
// terse.
type metricsTable = telemetry.Table

func newTable(title string, headers ...string) *metricsTable {
	return telemetry.NewTable(title, headers...)
}

func int32ToNode(n int) simnet.NodeID { return simnet.NodeID(n) }

// sizeLabel renders a byte size compactly.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// startCluster boots a cluster sized for an experiment.
func startCluster(ctx context.Context, machines, extraClients int, capacity uint64) (*core.Cluster, error) {
	return core.Start(ctx, core.Config{
		Machines:         machines,
		ExtraClientNodes: extraClients,
		ServerCapacity:   capacity,
	})
}

// slowestPinnedOp scans the cluster's flight recorder for the slowest
// pinned client operation and returns its modeled duration plus a
// critical-path breakdown line, for benches to attach as a table footer.
// Callers arm the recorder (Cluster.SetSlowOpThreshold) before the
// workload; ok is false when nothing was pinned.
func slowestPinnedOp(cluster *core.Cluster) (time.Duration, string, bool) {
	flight := cluster.FlightSpans()
	var root telemetry.Span
	var worst time.Duration
	for _, sp := range flight {
		if sp.Parent != 0 || !strings.HasPrefix(sp.Name, "client.") {
			continue
		}
		if d := sp.EndV.Sub(sp.StartV); d >= worst {
			worst, root = d, sp
		}
	}
	if root.Trace == 0 {
		return 0, "", false
	}
	var spans []telemetry.Span
	for _, sp := range flight {
		if sp.Trace == root.Trace {
			spans = append(spans, sp)
		}
	}
	bd := telemetry.CriticalPath(telemetry.Assemble(spans))
	return worst, fmt.Sprintf("slowest op: %s %s", root.Name, bd.String()), true
}

// meanLatency runs fn count times and averages the modeled latencies it
// returns. A few warmup calls absorb the virtual-time queueing debt a QP
// may carry from earlier phases on shared links, so the mean reflects
// steady state.
func meanLatency(count int, fn func() (time.Duration, error)) (time.Duration, error) {
	const warmup = 3
	for i := 0; i < warmup; i++ {
		if _, err := fn(); err != nil {
			return 0, err
		}
	}
	var total time.Duration
	for i := 0; i < count; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(count), nil
}

// window aggregates modeled [first-post, last-done] envelopes.
type window struct {
	first simnet.VTime
	last  simnet.VTime
	bytes int64
}

func (w *window) add(st client.IOStat, n int) {
	if w.first == 0 || st.PostedV < w.first {
		w.first = st.PostedV
	}
	if st.DoneV > w.last {
		w.last = st.DoneV
	}
	w.bytes += int64(n)
}

// gbps returns the modeled throughput of the window.
func (w *window) gbps() float64 {
	if w.last <= w.first {
		return 0
	}
	return telemetry.Gbps(w.bytes, w.last.Sub(w.first))
}
