package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/baseline/tcpstore"
	"rstore/internal/client"
	"rstore/internal/rdma"
)

// E1Sizes is the transfer-size sweep of the latency experiment.
var E1Sizes = []int{8, 64, 512, 4 << 10, 32 << 10, 256 << 10, 1 << 20}

// E1Latency reproduces the paper's "close-to-hardware latency" comparison:
// RStore's data-path read and write latencies track raw verbs across
// transfer sizes, while a conventional two-sided store pays an order of
// magnitude more on small transfers.
func E1Latency(ctx context.Context) (*metricsTable, error) {
	const reps = 16
	cluster, err := startCluster(ctx, 2, 1, 64<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	serverNode := cluster.MemoryServerNodes()[0]
	clientNode := cluster.Fabric().Size() - 1

	// Raw verbs path: a plain QP + MR pair, no RStore.
	rawDev, err := cluster.Network().OpenDevice(int32ToNode(clientNode))
	if err != nil {
		return nil, err
	}
	rawSrvDev, err := cluster.Network().OpenDevice(serverNode)
	if err != nil {
		return nil, err
	}
	rawLis, err := rawSrvDev.Listen("e1-raw", nil, rdma.ConnOpts{})
	if err != nil {
		return nil, err
	}
	defer rawLis.Close()
	rawRemote, err := rawLis.PD().RegisterMemory(make([]byte, 2<<20), rdma.AccessRemoteRead|rdma.AccessRemoteWrite)
	if err != nil {
		return nil, err
	}
	rawQP, err := rawDev.Dial(ctx, serverNode, "e1-raw", nil, rdma.ConnOpts{})
	if err != nil {
		return nil, err
	}
	defer rawQP.Close()
	rawLocal, err := rawQP.PD().RegisterMemory(make([]byte, 2<<20), rdma.AccessLocalWrite)
	if err != nil {
		return nil, err
	}

	// RStore path.
	cli, err := cluster.NewClient(ctx, int32ToNode(clientNode))
	if err != nil {
		return nil, err
	}
	reg, err := cli.AllocMap(ctx, "e1", 2<<20, client.AllocOptions{StripeWidth: 1})
	if err != nil {
		return nil, err
	}
	buf, err := cli.AllocBuf(2 << 20)
	if err != nil {
		return nil, err
	}

	// Two-sided path.
	tcpSrv, err := tcpstore.StartServer(rawSrvDev, "e1-tcp", 2<<20, tcpstore.DefaultCosts())
	if err != nil {
		return nil, err
	}
	defer tcpSrv.Close()
	tcpCli, err := tcpstore.Dial(ctx, rawDev, serverNode, "e1-tcp", tcpstore.DefaultCosts())
	if err != nil {
		return nil, err
	}
	defer tcpCli.Close()

	tbl := newTable("E1: read latency vs transfer size (modeled)",
		"size", "raw-verbs", "rstore", "rstore-write", "two-sided", "rstore/raw")
	for _, size := range E1Sizes {
		rawLat, err := meanLatency(reps, func() (time.Duration, error) {
			if err := rawQP.PostSend(rdma.SendWR{
				Op:        rdma.OpRead,
				Local:     rdma.SGE{MR: rawLocal, Len: size},
				RemoteKey: rawRemote.RKey(),
			}); err != nil {
				return 0, err
			}
			wc, err := rawQP.SendCQ().Next(ctx)
			if err != nil {
				return 0, err
			}
			if wc.Status != rdma.StatusSuccess {
				return 0, fmt.Errorf("e1 raw read: %v", wc.Status)
			}
			return wc.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}

		rsLat, err := meanLatency(reps, func() (time.Duration, error) {
			st, err := reg.ReadAt(ctx, 0, buf, 0, size)
			if err != nil {
				return 0, err
			}
			return st.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}

		rsWLat, err := meanLatency(reps, func() (time.Duration, error) {
			st, err := reg.WriteAt(ctx, 0, buf, 0, size)
			if err != nil {
				return 0, err
			}
			return st.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}

		tcpLat, err := meanLatency(reps, func() (time.Duration, error) {
			_, lat, err := tcpCli.Get(ctx, 0, size)
			return lat, err
		})
		if err != nil {
			return nil, err
		}

		tbl.AddRow(sizeLabel(size), rawLat, rsLat, rsWLat, tcpLat,
			float64(rsLat)/float64(rawLat))
	}
	return tbl, nil
}
