package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rstore/internal/baseline/msggraph"
	"rstore/internal/graph"
	"rstore/internal/workload"
)

// E4Graph describes one PageRank configuration.
type E4Graph struct {
	Name     string
	Vertices int
	Edges    int
	Kind     string // "rmat" or "uniform"
	Machines int
}

// E4Graphs is the default sweep: power-law and uniform graphs across
// cluster sizes, standing in for the paper's social-network datasets.
var E4Graphs = []E4Graph{
	{Name: "rmat-64k", Vertices: 64 << 10, Edges: 640 << 10, Kind: "rmat", Machines: 8},
	{Name: "rmat-64k", Vertices: 64 << 10, Edges: 640 << 10, Kind: "rmat", Machines: 12},
	{Name: "uniform-64k", Vertices: 64 << 10, Edges: 640 << 10, Kind: "uniform", Machines: 12},
	{Name: "rmat-128k", Vertices: 128 << 10, Edges: 1 << 20, Kind: "rmat", Machines: 12},
}

// E4Iterations is the number of PageRank power iterations measured.
const E4Iterations = 10

// E4PageRank reproduces the paper's graph-processing headline: the
// RStore pull-based engine versus the message-passing baseline on
// PageRank, with the paper reporting wins of 2.6-4.2x.
func E4PageRank(ctx context.Context, cases []E4Graph) (*metricsTable, error) {
	if cases == nil {
		cases = E4Graphs
	}
	tbl := newTable("E4: PageRank runtime, RStore engine vs message passing (modeled)",
		"graph", "machines", "edges", "rstore", "msg-passing", "speedup")
	for _, gc := range cases {
		rs, mp, err := e4Run(ctx, gc)
		if err != nil {
			return nil, fmt.Errorf("e4 %s/%d: %w", gc.Name, gc.Machines, err)
		}
		tbl.AddRow(gc.Name, gc.Machines, gc.Edges, rs, mp, float64(mp)/float64(rs))
	}
	return tbl, nil
}

func e4Run(ctx context.Context, gc E4Graph) (rstoreTime, msgTime time.Duration, err error) {
	var g *workload.Graph
	switch gc.Kind {
	case "uniform":
		g, err = workload.GenUniform(gc.Vertices, gc.Edges, 42)
	default:
		g, err = workload.GenRMAT(gc.Vertices, gc.Edges, 42)
	}
	if err != nil {
		return 0, 0, err
	}

	cluster, err := startCluster(ctx, gc.Machines+1, 0, 128<<20)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()
	nodes := cluster.MemoryServerNodes()

	eng, err := graph.Load(ctx, cluster, "e4", g, graph.Config{Workers: len(nodes)})
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	rsRes, err := eng.PageRank(ctx, E4Iterations, 0.85)
	if err != nil {
		return 0, 0, err
	}

	mp, err := msggraph.Load(ctx, cluster.Network(), "e4", g, msggraph.Config{
		Workers:     len(nodes),
		WorkerNodes: nodes,
	})
	if err != nil {
		return 0, 0, err
	}
	defer mp.Close()
	mpRes, err := mp.PageRank(ctx, E4Iterations, 0.85)
	if err != nil {
		return 0, 0, err
	}

	// Sanity: both computed the same ranks.
	for v := range rsRes.Values {
		if math.Abs(rsRes.Values[v]-mpRes.Values[v]) > 1e-9 {
			return 0, 0, fmt.Errorf("engines disagree at vertex %d: %v vs %v", v, rsRes.Values[v], mpRes.Values[v])
		}
	}
	return rsRes.TotalModeled(), mpRes.TotalModeled(), nil
}
