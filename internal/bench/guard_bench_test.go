package bench

import (
	"context"
	"testing"
	"time"

	"rstore/internal/client"
)

// BenchmarkTelemetryOverhead is the observability guard: it measures the
// telemetry tax on the hot data path — one client issuing 4KiB reads
// against a mapped region — with the registry disabled, with counters and
// latency histograms live, with 1-in-64 op tracing on top, and with the
// slow-op flight recorder armed (every op mints a provisional trace and
// buffers fragment spans, dropped unless the op crosses the threshold —
// the always-on production configuration), and with windowed time-series
// rings live on top (every histogram observation also lands in the
// current virtual-time bucket). The acceptance bar is ≤5% overhead for
// the enabled modes (EXPERIMENTS.md records the measured numbers).
func BenchmarkTelemetryOverhead(b *testing.B) {
	modes := []struct {
		name      string
		enabled   bool
		sampling  int
		threshold time.Duration
		window    time.Duration
	}{
		{"off", false, 0, 0, 0},
		{"counters", true, 0, 0, 0},
		{"counters+trace64", true, 64, 0, 0},
		// 1ms >> the ~12µs modeled op latency: provisional traces are
		// minted and buffered on every op but never pinned.
		{"counters+flight", true, 0, time.Millisecond, 0},
		{"counters+windows", true, 0, 0, time.Millisecond},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			cluster, err := startCluster(ctx, 4, 0, 64<<20)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			cli, err := cluster.NewClient(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			reg, err := cli.AllocMap(ctx, "guard", 8<<20, client.AllocOptions{})
			if err != nil {
				b.Fatal(err)
			}
			const opSize = 4096
			buf, err := cli.AllocBuf(opSize)
			if err != nil {
				b.Fatal(err)
			}
			cluster.SetTelemetryEnabled(mode.enabled)
			cluster.SetTraceSampling(mode.sampling)
			cluster.SetSlowOpThreshold(mode.threshold)
			// Windows default on; zero width isolates their cost out of the
			// other modes so this mode alone measures the ring tax.
			cluster.SetWindowWidth(mode.window)
			b.SetBytes(opSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(i%2048) * opSize
				if _, err := reg.ReadAt(ctx, off, buf, 0, opSize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
