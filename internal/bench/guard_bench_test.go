package bench

import (
	"context"
	"testing"

	"rstore/internal/client"
)

// BenchmarkTelemetryOverhead is the observability guard: it measures the
// telemetry tax on the hot data path — one client issuing 4KiB reads
// against a mapped region — with the registry disabled, with counters and
// latency histograms live, and with 1-in-64 op tracing on top. The
// acceptance bar is ≤5% overhead for the enabled modes (EXPERIMENTS.md
// records the measured numbers).
func BenchmarkTelemetryOverhead(b *testing.B) {
	modes := []struct {
		name     string
		enabled  bool
		sampling int
	}{
		{"off", false, 0},
		{"counters", true, 0},
		{"counters+trace64", true, 64},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			cluster, err := startCluster(ctx, 4, 0, 64<<20)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			cli, err := cluster.NewClient(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			reg, err := cli.AllocMap(ctx, "guard", 8<<20, client.AllocOptions{})
			if err != nil {
				b.Fatal(err)
			}
			const opSize = 4096
			buf, err := cli.AllocBuf(opSize)
			if err != nil {
				b.Fatal(err)
			}
			cluster.SetTelemetryEnabled(mode.enabled)
			cluster.SetTraceSampling(mode.sampling)
			b.SetBytes(opSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(i%2048) * opSize
				if _, err := reg.ReadAt(ctx, off, buf, 0, opSize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
