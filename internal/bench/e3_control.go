package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/client"
)

// E3Sizes is the region-size sweep for the control-path experiment.
var E3Sizes = []uint64{1 << 20, 16 << 20, 128 << 20, 1 << 30}

// E3ControlPath reproduces the separation-philosophy measurement: the
// control path (Ralloc, Rmap, buffer registration) costs grow with region
// size and server count but are paid once, while data-path operations
// stay flat at a few microseconds regardless of how big the mapped region
// is.
func E3ControlPath(ctx context.Context) (*metricsTable, error) {
	const servers = 12
	cluster, err := startCluster(ctx, servers+1, 1, 192<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	clientNode := int32ToNode(cluster.Fabric().Size() - 1)

	tbl := newTable("E3: control path vs data path (modeled)",
		"region", "alloc", "map(new-conns)", "map(warm)", "register-buf", "read-8B")
	for _, size := range E3Sizes {
		name := fmt.Sprintf("e3-%d", size)

		// A fresh client pays the QP handshakes on first map.
		cold, err := cluster.NewClient(ctx, clientNode)
		if err != nil {
			return nil, err
		}
		before := cold.ControlStats()
		if _, err := cold.Alloc(ctx, name, size, client.AllocOptions{}); err != nil {
			return nil, err
		}
		allocCost := cold.ControlStats().Sub(before).Total()

		before = cold.ControlStats()
		reg, err := cold.Map(ctx, name)
		if err != nil {
			return nil, err
		}
		coldMapCost := cold.ControlStats().Sub(before).Total()

		// Mapping again on the same client reuses every QP.
		before = cold.ControlStats()
		reg2, err := cold.Map(ctx, name)
		if err != nil {
			return nil, err
		}
		warmMapCost := cold.ControlStats().Sub(before).Total()
		if err := reg2.Unmap(ctx); err != nil {
			return nil, err
		}

		// Registering a zero-copy buffer scales with its size (page
		// pinning) — also control path, also amortized.
		before = cold.ControlStats()
		bufSize := int(size)
		if bufSize > 64<<20 {
			bufSize = 64 << 20
		}
		buf, err := cold.AllocBuf(bufSize)
		if err != nil {
			return nil, err
		}
		registerCost := cold.ControlStats().Sub(before).Total()

		// Data path after setup: flat small-op latency.
		readLat, err := meanLatency(16, func() (time.Duration, error) {
			st, err := reg.ReadAt(ctx, 0, buf, 0, 8)
			if err != nil {
				return 0, err
			}
			return st.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}

		tbl.AddRow(sizeLabel(int(size)), allocCost, coldMapCost, warmMapCost, registerCost, readLat)
	}
	return tbl, nil
}
