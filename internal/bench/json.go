package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rstore/internal/telemetry"
)

// Metric is one scalar measurement lifted out of an experiment table: the
// column header names the metric, the row's first cell names the
// configuration it was measured under (transfer size, machine count, ...).
// Time-valued cells are normalized to nanoseconds so a run whose latency
// drifts across a rendering boundary (999us -> 1.00ms) still compares
// against older reports.
type Metric struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit,omitempty"`
	Config string  `json:"config,omitempty"`
}

// Report is the machine-readable form of one experiment's output — the
// bench trajectory CI archives beside the rendered tables, so regressions
// are diffable without scraping aligned-column text.
type Report struct {
	Experiment string   `json:"experiment"`
	Title      string   `json:"title"`
	Metrics    []Metric `json:"metrics"`
}

// NewReport extracts every numeric cell of tbl into a Report. Cells are
// rendered strings ("1.27us", "705.23", "8x"): a leading float is the
// value and the remaining suffix is the unit; cells with no leading
// number (labels, "-") are skipped. The first column is treated as the
// row's configuration label, not a metric.
func NewReport(id string, tbl *telemetry.Table) *Report {
	rep := &Report{Experiment: id, Title: tbl.Title}
	headers := tbl.Headers
	for _, row := range tbl.Rows() {
		config := ""
		if len(row) > 0 {
			config = row[0]
		}
		for i := 1; i < len(row) && i < len(headers); i++ {
			v, unit, ok := parseCell(row[i])
			if !ok {
				continue
			}
			rep.Metrics = append(rep.Metrics, Metric{
				Name: headers[i], Value: v, Unit: unit, Config: config,
			})
		}
	}
	return rep
}

// parseCell splits a rendered cell into a leading float and a unit
// suffix, normalizing time units to nanoseconds.
func parseCell(s string) (float64, string, bool) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' && end > 0 {
			end++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, "", false
	}
	unit := strings.TrimSpace(s[end:])
	switch unit {
	case "ns":
		return v, "ns", true
	case "us":
		return v * 1e3, "ns", true
	case "ms":
		return v * 1e6, "ns", true
	case "s":
		return v * 1e9, "ns", true
	}
	return v, unit, true
}

// Write marshals the report to dir/BENCH_<ID>.json (BENCH_E1.json,
// BENCH_A3.json, ...) and returns the path.
func (r *Report) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", strings.ToUpper(r.Experiment)))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
