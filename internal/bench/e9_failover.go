package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/simnet"
)

// E9Leases is the lease-term sweep of the failover experiment.
var E9Leases = []time.Duration{
	500 * time.Microsecond,
	2 * time.Millisecond,
	8 * time.Millisecond,
}

// E9FailoverMTTR measures the replicated control plane (not in the paper,
// whose master is a single process): the primary master is killed while a
// client runs, and the standby waits out the layout-lease term on virtual
// time before promoting. MTTR is the virtual time from the kill to the
// first control-plane call answered by the new primary; unavail is the
// client-visible control-plane gap (last success before the kill to first
// success after). The bound column checks the design's promise — the gap
// stays within the lease term plus the modeled cost of the traffic that
// rode through the outage — and io-during counts one-sided data ops the
// client completed off its cached, leased layout while the master group
// had no primary at all.
func E9FailoverMTTR(ctx context.Context) (*metricsTable, error) {
	tbl := newTable("E9: master failover MTTR vs lease term (modeled)",
		"lease", "mttr", "unavail", "io-during", "bounded")
	for _, lease := range E9Leases {
		row, err := e9Run(ctx, lease)
		if err != nil {
			return nil, fmt.Errorf("e9 with lease %v: %w", lease, err)
		}
		tbl.AddRow(row...)
	}
	tbl.Footer = "unavail bound = lease + 1ms slack for detection-window traffic; data path never pauses"
	return tbl, nil
}

func e9Run(ctx context.Context, lease time.Duration) ([]interface{}, error) {
	const beat = 10 * time.Millisecond
	cluster, err := core.Start(ctx, core.Config{
		Machines:          6,
		MasterReplicas:    2,
		ExtraClientNodes:  1,
		ServerCapacity:    64 << 20,
		HeartbeatInterval: beat,
		LeaseTerm:         lease,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	dev, err := cluster.Network().OpenDevice(simnet.NodeID(cluster.Fabric().Size() - 1))
	if err != nil {
		return nil, err
	}
	// The retry budget must outlast the whole failover in wall time:
	// silence detection rides heartbeat timers, so the control probe below
	// simply keeps knocking until the promoted standby answers.
	cli, err := client.Connect(ctx, dev, client.Config{
		Master:  0,
		Masters: cluster.MasterNodes(),
		Retry: client.RetryPolicy{
			MaxAttempts: 400,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			Seed:        20150701,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	reg, err := cli.AllocMap(ctx, "e9", 1<<20, client.AllocOptions{
		StripeUnit: 256 << 10, StripeWidth: 2,
	})
	if err != nil {
		return nil, err
	}
	buf, err := cli.AllocBuf(64 << 10)
	if err != nil {
		return nil, err
	}
	if _, err := reg.WriteAt(ctx, 0, buf, 0, 64<<10); err != nil {
		return nil, err
	}
	if _, err := cli.ListRegions(ctx); err != nil {
		return nil, err
	}

	fab := cluster.Fabric()
	lastOkV := fab.VNow()
	if err := cluster.KillMaster(0); err != nil {
		return nil, err
	}
	killV := fab.VNow()

	// The control probe defines recovery: its one call rides the retry
	// policy across the outage and returns with the first answer from the
	// promoted standby.
	var recoveredV atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, perr := cli.ListRegions(ctx)
		recoveredV.Store(int64(fab.VNow()))
		done <- perr
	}()

	// Meanwhile the data path keeps serving off the cached leased layout.
	// Throttled: each op advances virtual time, and the point is to show
	// continuity, not to race the clock past the lease.
	ioDuring := 0
	for {
		var perr error
		select {
		case perr = <-done:
			if perr != nil {
				return nil, fmt.Errorf("control plane never recovered: %w", perr)
			}
		case <-time.After(time.Millisecond):
			if _, werr := reg.WriteAt(ctx, 0, buf, 0, 4096); werr == nil {
				ioDuring++
			}
			if _, rerr := reg.ReadAt(ctx, 0, buf, 0, 4096); rerr == nil {
				ioDuring++
			}
			continue
		}
		break
	}

	recV := simnet.VTime(recoveredV.Load())
	mttr := recV.Sub(killV)
	unavail := recV.Sub(lastOkV)
	bounded := unavail <= lease+time.Millisecond
	return []interface{}{lease, mttr, unavail, ioDuring, bounded}, nil
}
