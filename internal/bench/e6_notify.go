package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/client"
)

// E6Notify measures the memory-like API's producer/consumer notification:
// end-to-end modeled latency from the producer's write completing to the
// consumer observing the token, across the region's home server.
func E6Notify(ctx context.Context) (*metricsTable, error) {
	const reps = 32
	cluster, err := startCluster(ctx, 4, 2, 64<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	prodNode := int32ToNode(cluster.Fabric().Size() - 2)
	consNode := int32ToNode(cluster.Fabric().Size() - 1)

	producer, err := cluster.NewClient(ctx, prodNode)
	if err != nil {
		return nil, err
	}
	consumer, err := cluster.NewClient(ctx, consNode)
	if err != nil {
		return nil, err
	}
	if _, err := producer.Alloc(ctx, "e6", 1<<20, client.AllocOptions{}); err != nil {
		return nil, err
	}
	preg, err := producer.Map(ctx, "e6")
	if err != nil {
		return nil, err
	}
	creg, err := consumer.Map(ctx, "e6")
	if err != nil {
		return nil, err
	}
	ch, unsub, err := creg.Subscribe(ctx)
	if err != nil {
		return nil, err
	}
	defer unsub()
	buf, err := producer.AllocBuf(64 << 10)
	if err != nil {
		return nil, err
	}

	tbl := newTable("E6: write+notify end-to-end latency (modeled)",
		"payload", "write", "notify-e2e", "total")
	for _, size := range []int{64, 4 << 10, 64 << 10} {
		var writeLat, e2e time.Duration
		for r := 0; r < reps; r++ {
			st, err := preg.WriteAt(ctx, 0, buf, 0, size)
			if err != nil {
				return nil, err
			}
			if err := preg.Notify(ctx, uint32(r)); err != nil {
				return nil, err
			}
			select {
			case n := <-ch:
				writeLat += st.Latency().Duration()
				d := n.ArriveV.Sub(st.PostedV)
				if d < 0 {
					d = 0
				}
				e2e += d
			case <-time.After(5 * time.Second):
				return nil, fmt.Errorf("e6: notification lost at size %d rep %d", size, r)
			}
		}
		writeLat /= reps
		e2e /= reps
		tbl.AddRow(sizeLabel(size), writeLat, e2e-writeLat, e2e)
	}
	return tbl, nil
}
