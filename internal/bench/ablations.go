package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rstore/internal/client"
)

// A1StripeWidths is the stripe-width sweep.
var A1StripeWidths = []int{1, 2, 4, 8}

// A1Stripe ablates the striping design choice: aggregate bandwidth of
// many clients reading one region as the number of servers it is striped
// over varies. Striping across servers is what turns per-link bandwidth
// into aggregate bandwidth: a width-1 region bottlenecks on one server's
// link no matter how many clients read it.
func A1Stripe(ctx context.Context) (*metricsTable, error) {
	const (
		servers = 8
		clients = 8
		opSize  = 4 << 20
		rounds  = 4
	)
	cluster, err := startCluster(ctx, servers+1, clients, 128<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	type endpoint struct {
		cli *client.Client
		buf *client.Buf
	}
	eps := make([]*endpoint, clients)
	for i := range eps {
		cli, err := cluster.NewClient(ctx, int32ToNode(servers+1+i))
		if err != nil {
			return nil, err
		}
		buf, err := cli.AllocBuf(opSize)
		if err != nil {
			return nil, err
		}
		eps[i] = &endpoint{cli: cli, buf: buf}
	}

	tbl := newTable("A1: aggregate read bandwidth vs stripe width (modeled, 8 clients)",
		"width", "agg-gbps")
	for _, width := range A1StripeWidths {
		name := fmt.Sprintf("a1-w%d", width)
		if _, err := eps[0].cli.Alloc(ctx, name, uint64(width)*opSize, client.AllocOptions{StripeUnit: 1 << 20, StripeWidth: width}); err != nil {
			return nil, err
		}
		regs := make([]*client.Region, clients)
		wins := make([]window, clients)
		for i, ep := range eps {
			reg, err := ep.cli.Map(ctx, name)
			if err != nil {
				return nil, err
			}
			regs[i] = reg
		}
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for i := range eps {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Spread clients across the striped space.
					off := (uint64(i) * opSize) % (uint64(width) * opSize)
					st, err := regs[i].ReadAt(ctx, off, eps[i].buf, 0, opSize)
					if err != nil {
						errs[i] = err
						return
					}
					wins[i].add(st, opSize)
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
		var agg float64
		for i := range wins {
			agg += wins[i].gbps()
		}
		tbl.AddRow(width, agg)
		for i := range regs {
			if err := regs[i].Unmap(ctx); err != nil {
				return nil, err
			}
		}
		if err := eps[0].cli.Free(ctx, name); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// A2Replication ablates write-through replication (an extension beyond
// the paper): write latency and modeled bandwidth as the replica count
// grows.
func A2Replication(ctx context.Context) (*metricsTable, error) {
	const opSize = 1 << 20
	cluster, err := startCluster(ctx, 10, 1, 128<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cli, err := cluster.NewClient(ctx, int32ToNode(cluster.Fabric().Size()-1))
	if err != nil {
		return nil, err
	}
	buf, err := cli.AllocBuf(opSize)
	if err != nil {
		return nil, err
	}

	tbl := newTable("A2: write cost vs replication factor (modeled)",
		"replicas", "write-1MiB", "write-8B")
	for _, r := range []int{0, 1, 2} {
		name := fmt.Sprintf("a2-%d", r)
		reg, err := cli.AllocMap(ctx, name, 16<<20, client.AllocOptions{StripeWidth: 3, Replicas: r})
		if err != nil {
			return nil, err
		}
		big, err := meanLatency(8, func() (time.Duration, error) {
			st, err := reg.WriteAt(ctx, 0, buf, 0, opSize)
			if err != nil {
				return 0, err
			}
			return st.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}
		small, err := meanLatency(8, func() (time.Duration, error) {
			st, err := reg.WriteAt(ctx, 0, buf, 0, 8)
			if err != nil {
				return 0, err
			}
			return st.Latency().Duration(), nil
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(r, big, small)
	}
	return tbl, nil
}

// A3QPSharing ablates connection amortization: the modeled cost of
// mapping the Nth region, which reuses the per-server QPs the first map
// established.
func A3QPSharing(ctx context.Context) (*metricsTable, error) {
	const servers = 12
	cluster, err := startCluster(ctx, servers+1, 1, 128<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cli, err := cluster.NewClient(ctx, int32ToNode(cluster.Fabric().Size()-1))
	if err != nil {
		return nil, err
	}

	const regions = 64
	for i := 0; i < regions; i++ {
		if _, err := cli.Alloc(ctx, fmt.Sprintf("a3-%d", i), 1<<20, client.AllocOptions{}); err != nil {
			return nil, err
		}
	}

	tbl := newTable("A3: Rmap cost vs region index (QP sharing, modeled)",
		"region#", "map-cost", "new-connects")
	for _, idx := range []int{0, 1, 7, 63} {
		before := cli.ControlStats()
		if _, err := cli.Map(ctx, fmt.Sprintf("a3-%d", idx)); err != nil {
			return nil, err
		}
		d := cli.ControlStats().Sub(before)
		tbl.AddRow(idx, d.Total(), d.Connects)
	}
	return tbl, nil
}
