package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/index"
	"rstore/internal/kvstore"
	"rstore/internal/workload"
)

// E11 workload knobs, package-level so the shape test can shrink them.
var (
	// E11Keys is how many ordered keys are loaded into each store.
	E11Keys = 512
	// E11Lookups is how many point lookups each get variant measures.
	E11Lookups = 256
	// E11Negatives is how many absent keys the miss variants probe.
	E11Negatives = 128
	// E11ScanSizes are the range lengths pitted against equivalent
	// batches of point gets.
	E11ScanSizes = []int{16, 64, 256}
)

const (
	e11ScanReps  = 8
	e11ZipfTheta = 1.2
	e11Seed      = 20150701
)

// E11Index measures the ordered index (not in the paper, which stops at
// a hash KV store): point gets on the flat hash table vs the B+tree with
// a cold client (no node cache, no blooms) and a warm one (cached inner
// nodes and bloom sidecars), under uniform and zipfian key choice;
// negative lookups with and without the bloom sidecars; and range scans
// against the N point gets they replace. Latencies are modeled
// (virtual-time) means; reads/op counts one-sided wire reads. The
// headline shape: a warm tree point get costs the same two wire reads
// as a validated hash-slot read, scans beat point-get batches from 16
// keys up, and blooms erase the wire cost of misses.
func E11Index(ctx context.Context) (*metricsTable, error) {
	tbl := newTable("E11: ordered index — point, range, skew (modeled)",
		"op", "variant", "mean-latency", "reads/op")

	cluster, err := core.Start(ctx, core.Config{
		Machines:       4,
		ServerCapacity: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	load, err := e11Load(ctx, cluster)
	if err != nil {
		return nil, fmt.Errorf("e11 load: %w", err)
	}

	// Point gets: flat hash table, cold tree, warm tree.
	flatLat, flatReads, err := e11FlatGets(ctx, cluster)
	if err != nil {
		return nil, fmt.Errorf("e11 flat gets: %w", err)
	}
	tbl.AddRow("get", "flat-hash", flatLat, fmt.Sprintf("%.2f", flatReads))

	coldLat, coldReads, err := e11TreeGets(ctx, cluster, e11TreeOptions(true, true), false, false)
	if err != nil {
		return nil, fmt.Errorf("e11 cold gets: %w", err)
	}
	tbl.AddRow("get", "btree-cold", coldLat, fmt.Sprintf("%.2f", coldReads))

	warm, err := e11Warm(ctx, cluster)
	if err != nil {
		return nil, fmt.Errorf("e11 warm: %w", err)
	}
	tbl.AddRow("get", "btree-warm", warm.uniLat, fmt.Sprintf("%.2f", warm.uniReads))
	tbl.AddRow("get-zipf", "btree-warm", warm.zipfLat, fmt.Sprintf("%.2f", warm.zipfReads))

	// Negative lookups: blooms on vs off, both with warm caches.
	missNoBloomLat, missNoBloomReads, err := e11TreeGets(ctx, cluster, e11TreeOptions(false, true), true, true)
	if err != nil {
		return nil, fmt.Errorf("e11 miss nobloom: %w", err)
	}
	tbl.AddRow("get-miss", "btree-nobloom", missNoBloomLat, fmt.Sprintf("%.2f", missNoBloomReads))
	missBloomLat, missBloomReads, err := e11TreeGets(ctx, cluster, e11TreeOptions(false, false), true, true)
	if err != nil {
		return nil, fmt.Errorf("e11 miss bloom: %w", err)
	}
	tbl.AddRow("get-miss", "btree-bloom", missBloomLat, fmt.Sprintf("%.2f", missBloomReads))

	// Range scans vs the point-get batches they replace.
	for _, n := range E11ScanSizes {
		scan, gets, err := e11ScanVsGets(ctx, cluster, n)
		if err != nil {
			return nil, fmt.Errorf("e11 scan %d: %w", n, err)
		}
		op := fmt.Sprintf("scan-%d", n)
		tbl.AddRow(op, "btree-range", scan.lat, fmt.Sprintf("%.2f", scan.reads))
		tbl.AddRow(op, "point-gets", gets.lat, fmt.Sprintf("%.2f", gets.reads))
	}

	bloomCut := 0.0
	if missNoBloomReads > 0 {
		bloomCut = 100 * (1 - missBloomReads/missNoBloomReads)
	}
	tbl.Footer = fmt.Sprintf(
		"tree: height %d, %d nodes (~%d keys/node), %d splits during load; warm cache hit-rate %.0f%%; blooms cut negative-lookup reads %.0f%%",
		load.height, load.nodes, load.keysPerNode, load.splits, 100*warm.hitRate, bloomCut)
	return tbl, nil
}

// e11Point is one measured operation class.
type e11Point struct {
	lat   time.Duration
	reads float64
}

type e11LoadStats struct {
	height, nodes, keysPerNode int
	splits                     int64
}

func e11TreeOptions(noCache, noBloom bool) index.Options {
	return index.Options{
		Nodes:    512,
		NodeSize: 512,
		MaxKey:   32,
		NoCache:  noCache,
		NoBloom:  noBloom,
	}
}

func e11FlatOptions() kvstore.Options {
	return kvstore.Options{SlotSize: 128, Slots: 4096}
}

func e11Val(i int) []byte { return []byte(fmt.Sprintf("v-%08d", i)) }

func e11MissKey(i int) []byte { return []byte(fmt.Sprintf("miss%05d", i)) }

// e11Load seeds the flat table and the tree with the same ordered keys.
func e11Load(ctx context.Context, cluster *core.Cluster) (e11LoadStats, error) {
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return e11LoadStats{}, err
	}
	flat, err := kvstore.Create(ctx, cli, "e11flat", e11FlatOptions())
	if err != nil {
		return e11LoadStats{}, err
	}
	tree, err := index.Create(ctx, cli, "e11tree", e11TreeOptions(false, false))
	if err != nil {
		return e11LoadStats{}, err
	}
	for i := 0; i < E11Keys; i++ {
		k := workload.OrderedKey(i)
		if err := flat.Put(ctx, k, e11Val(i)); err != nil {
			return e11LoadStats{}, err
		}
		if err := tree.Insert(ctx, k, e11Val(i)); err != nil {
			return e11LoadStats{}, err
		}
	}
	st, err := tree.Stats(ctx)
	if err != nil {
		return e11LoadStats{}, err
	}
	kpn := 0
	if st.Nodes > 0 {
		kpn = E11Keys / st.Nodes
	}
	return e11LoadStats{
		height:      st.Height,
		nodes:       st.Nodes,
		keysPerNode: kpn,
		splits:      cli.Telemetry().Counter("index.splits").Value(),
	}, nil
}

// e11Measure times ops calls of fn on a fresh-counter window and returns
// the modeled mean latency and one-sided reads per op.
func e11Measure(cli *client.Client, ops int, fn func(i int) error) (time.Duration, float64, error) {
	reads := cli.Telemetry().Counter("client.reads")
	r0 := reads.Value()
	start := cli.VNow()
	for i := 0; i < ops; i++ {
		if err := fn(i); err != nil {
			return 0, 0, err
		}
	}
	lat := time.Duration(int64(cli.VNow().Sub(start)) / int64(ops))
	return lat, float64(reads.Value()-r0) / float64(ops), nil
}

func e11FlatGets(ctx context.Context, cluster *core.Cluster) (time.Duration, float64, error) {
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return 0, 0, err
	}
	s, err := kvstore.Open(ctx, cli, "e11flat", e11FlatOptions())
	if err != nil {
		return 0, 0, err
	}
	return e11Measure(cli, E11Lookups, func(i int) error {
		_, err := s.Get(ctx, workload.OrderedKey(i*7%E11Keys))
		return err
	})
}

// e11TreeGets measures point lookups on a fresh handle with the given
// options. miss probes absent keys (and tolerates ErrNotFound); prime
// runs one untimed round first so caches and blooms are warm.
func e11TreeGets(ctx context.Context, cluster *core.Cluster, opts index.Options, miss, prime bool) (time.Duration, float64, error) {
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return 0, 0, err
	}
	tree, err := index.Open(ctx, cli, "e11tree", opts)
	if err != nil {
		return 0, 0, err
	}
	n := E11Lookups
	if miss {
		n = E11Negatives
	}
	probe := func(i int) error {
		var key []byte
		if miss {
			key = e11MissKey(i % E11Negatives)
		} else {
			key = workload.OrderedKey(i * 7 % E11Keys)
		}
		_, err := tree.Get(ctx, key)
		if miss && err == index.ErrNotFound {
			return nil
		}
		return err
	}
	if prime {
		for i := 0; i < n; i++ {
			if err := probe(i); err != nil {
				return 0, 0, err
			}
		}
	}
	return e11Measure(cli, n, probe)
}

type e11WarmResult struct {
	uniLat    time.Duration
	uniReads  float64
	zipfLat   time.Duration
	zipfReads float64
	hitRate   float64
}

// e11Warm measures uniform and zipfian point gets on one warmed handle:
// a full prime pass caches every inner node and leaf bloom first.
func e11Warm(ctx context.Context, cluster *core.Cluster) (e11WarmResult, error) {
	var res e11WarmResult
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return res, err
	}
	tree, err := index.Open(ctx, cli, "e11tree", e11TreeOptions(false, false))
	if err != nil {
		return res, err
	}
	for i := 0; i < E11Keys; i++ {
		if _, err := tree.Get(ctx, workload.OrderedKey(i)); err != nil {
			return res, err
		}
	}

	tel := cli.Telemetry()
	hits0 := tel.Counter("index.cache_hits").Value()
	misses0 := tel.Counter("index.cache_misses").Value()

	res.uniLat, res.uniReads, err = e11Measure(cli, E11Lookups, func(i int) error {
		_, err := tree.Get(ctx, workload.OrderedKey(i*7%E11Keys))
		return err
	})
	if err != nil {
		return res, err
	}

	// Zipfian key choice over the same key space, as e10 draws accounts.
	const span = 64
	pattern, err := workload.NewZipfian(uint64(E11Keys)*span, span, e11ZipfTheta, e11Seed)
	if err != nil {
		return res, err
	}
	res.zipfLat, res.zipfReads, err = e11Measure(cli, E11Lookups, func(i int) error {
		_, err := tree.Get(ctx, workload.OrderedKey(int(pattern.Next()/span)))
		return err
	})
	if err != nil {
		return res, err
	}

	hits := tel.Counter("index.cache_hits").Value() - hits0
	misses := tel.Counter("index.cache_misses").Value() - misses0
	if hits+misses > 0 {
		res.hitRate = float64(hits) / float64(hits+misses)
	}
	return res, nil
}

// e11ScanVsGets pits one n-key range scan against the n point gets it
// replaces, both on warm handles.
func e11ScanVsGets(ctx context.Context, cluster *core.Cluster, n int) (scan, gets e11Point, err error) {
	if n > E11Keys {
		return scan, gets, fmt.Errorf("scan size %d exceeds key count %d", n, E11Keys)
	}
	cli, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return scan, gets, err
	}
	tree, err := index.Open(ctx, cli, "e11tree", e11TreeOptions(false, false))
	if err != nil {
		return scan, gets, err
	}
	// Warm the route cache over the scanned range.
	start, end := workload.OrderedKey(0), workload.OrderedKey(n)
	if _, err := tree.Scan(ctx, start, end); err != nil {
		return scan, gets, err
	}
	scan.lat, scan.reads, err = e11Measure(cli, e11ScanReps, func(int) error {
		ents, err := tree.Scan(ctx, start, end)
		if err != nil {
			return err
		}
		if len(ents) != n {
			return fmt.Errorf("scan returned %d of %d keys", len(ents), n)
		}
		return nil
	})
	if err != nil {
		return scan, gets, err
	}
	gets.lat, gets.reads, err = e11Measure(cli, e11ScanReps, func(int) error {
		for i := 0; i < n; i++ {
			if _, err := tree.Get(ctx, workload.OrderedKey(i)); err != nil {
				return err
			}
		}
		return nil
	})
	return scan, gets, err
}
