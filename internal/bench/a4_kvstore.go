package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/telemetry"
)

// A4Mixes are the workload mixes swept (fraction of operations that are
// reads).
var A4Mixes = []float64{1.0, 0.95, 0.5}

// A4KVStore measures the key-value layer built on the memory API: per-op
// modeled latency and aggregate throughput for read-heavy and mixed
// workloads across several client machines. Reads are a single one-sided
// read plus a seqlock check; writes are CAS + deposit.
func A4KVStore(ctx context.Context) (*metricsTable, error) {
	const (
		servers = 8
		clients = 4
		keys    = 512
		opsEach = 300
	)
	cluster, err := startCluster(ctx, servers+1, clients, 64<<20)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	admin, err := cluster.NewClient(ctx, cluster.MemoryServerNodes()[0])
	if err != nil {
		return nil, err
	}
	opts := kvstore.Options{Slots: 8192}
	table, err := kvstore.Create(ctx, admin, "a4", opts)
	if err != nil {
		return nil, err
	}
	// Preload the key space.
	for i := 0; i < keys; i++ {
		if err := table.Put(ctx, a4Key(i), a4Val(i, 0)); err != nil {
			return nil, err
		}
	}

	tbl := newTable("A4: KV store on the memory API (modeled, 4 clients)",
		"read-frac", "kops/s", "get-p50-us", "put-p50-us")
	for _, mix := range A4Mixes {
		kops, getP50, putP50, err := a4Run(ctx, cluster, mix, clients, keys, opsEach, opts)
		if err != nil {
			return nil, fmt.Errorf("a4 mix %.2f: %w", mix, err)
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", mix*100), kops, getP50, putP50)
	}
	return tbl, nil
}

func a4Key(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }

// retryContended retries an operation whose only failure is transient slot
// contention (a writer held the seqlock through our retry budget).
func retryContended(op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !errors.Is(err, kvstore.ErrContention) || attempt >= 16 {
			return err
		}
	}
}

func a4Val(i, ver int) []byte {
	return []byte(fmt.Sprintf("value-%d-version-%d-padding-padding-padding", i, ver))
}

func a4Run(ctx context.Context, cluster *core.Cluster, mix float64, clients, keys, opsEach int, opts kvstore.Options) (kops, getP50, putP50 float64, err error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		getHist telemetry.Histogram
		putHist telemetry.Histogram
		aggOps  float64
		errs    = make([]error, clients)
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			node := int32ToNode(cluster.Fabric().Size() - clients + c)
			cli, err := cluster.NewClient(ctx, node)
			if err != nil {
				errs[c] = err
				return
			}
			kv, err := kvstore.Open(ctx, cli, "a4", opts)
			if err != nil {
				errs[c] = err
				return
			}
			rng := rand.New(rand.NewSource(int64(c) + 77))
			start := cli.VNow()
			for i := 0; i < opsEach; i++ {
				key := a4Key(rng.Intn(keys))
				before := cli.VNow()
				if rng.Float64() < mix {
					if err := retryContended(func() error { _, e := kv.Get(ctx, key); return e }); err != nil {
						errs[c] = err
						return
					}
					getHist.Record(cli.VNow().Sub(before))
				} else {
					if err := retryContended(func() error { return kv.Put(ctx, key, a4Val(i, c)) }); err != nil {
						errs[c] = err
						return
					}
					putHist.Record(cli.VNow().Sub(before))
				}
			}
			elapsed := cli.VNow().Sub(start)
			if elapsed > 0 {
				mu.Lock()
				aggOps += float64(opsEach) / elapsed.Seconds()
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	getP50 = getHist.Quantile(0.5) / 1e3 // us
	putP50 = putHist.Quantile(0.5) / 1e3
	return aggOps / 1e3, getP50, putP50, nil
}
