package master

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	a := newSpaceAllocator(1024)
	off1, err := a.Alloc(128)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	off2, err := a.Alloc(256)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off1 == off2 {
		t.Error("overlapping allocations")
	}
	if a.Used() != 384 {
		t.Errorf("Used = %d", a.Used())
	}
	if a.FreeBytes() != 640 {
		t.Errorf("FreeBytes = %d", a.FreeBytes())
	}
}

func TestAllocAlignment(t *testing.T) {
	a := newSpaceAllocator(1024)
	// Odd sizes round up to the 64-byte granule and offsets stay aligned.
	o1, err := a.Alloc(1)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	o2, err := a.Alloc(65)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if o1%allocAlign != 0 || o2%allocAlign != 0 {
		t.Errorf("offsets %d, %d not aligned", o1, o2)
	}
	if a.Used() != 64+128 {
		t.Errorf("Used = %d, want 192", a.Used())
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := newSpaceAllocator(128)
	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if _, err := a.Alloc(128); !errors.Is(err, ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Errorf("exact fit should work: %v", err)
	}
}

func TestAllocZero(t *testing.T) {
	a := newSpaceAllocator(10)
	if _, err := a.Alloc(0); err != nil {
		t.Errorf("zero alloc: %v", err)
	}
	if err := a.Free(0, 0); err != nil {
		t.Errorf("zero free: %v", err)
	}
	if a.Used() != 0 {
		t.Errorf("Used = %d", a.Used())
	}
}

func TestFreeCoalesces(t *testing.T) {
	a := newSpaceAllocator(384)
	o1, _ := a.Alloc(128)
	o2, _ := a.Alloc(128)
	o3, _ := a.Alloc(128)
	// Free middle, then sides: must coalesce back to one span so a full
	// allocation succeeds again.
	if err := a.Free(o2, 128); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(o1, 128); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(o3, 128); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if len(a.free) != 1 {
		t.Errorf("free list = %+v, want single span", a.free)
	}
	if _, err := a.Alloc(384); err != nil {
		t.Errorf("full realloc: %v", err)
	}
}

func TestFreeErrors(t *testing.T) {
	a := newSpaceAllocator(128)
	if err := a.Free(64, 128); !errors.Is(err, ErrBadFree) {
		t.Errorf("beyond capacity: %v", err)
	}
	off, _ := a.Alloc(50)
	if err := a.Free(off, 50); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// Double free overlaps the free list.
	if err := a.Free(off, 50); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
}

func TestAllocFirstFitReusesHoles(t *testing.T) {
	a := newSpaceAllocator(1280)
	offs := make([]uint64, 10)
	for i := range offs {
		o, err := a.Alloc(128)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		offs[i] = o
	}
	if err := a.Free(offs[3], 128); err != nil {
		t.Fatalf("Free: %v", err)
	}
	o, err := a.Alloc(128)
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	if o != offs[3] {
		t.Errorf("first fit returned %d, want hole at %d", o, offs[3])
	}
}

// Property: random alloc/free sequences never hand out overlapping spans
// and always account Used() exactly.
func TestAllocatorProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newSpaceAllocator(1 << 16)
		type allocRec struct{ off, n uint64 }
		var live []allocRec
		var used uint64
		for i := 0; i < 200; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				n := uint64(rng.Intn(1<<12)) + 1
				off, err := a.Alloc(n)
				if err != nil {
					continue
				}
				for _, r := range live {
					if off < r.off+alignUp(r.n) && r.off < off+alignUp(n) {
						return false // overlap
					}
				}
				live = append(live, allocRec{off, n})
				used += alignUp(n)
			} else {
				i := rng.Intn(len(live))
				r := live[i]
				if err := a.Free(r.off, r.n); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				used -= alignUp(r.n)
			}
			if a.Used() != used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWidthOrAll(t *testing.T) {
	tests := []struct {
		width, all, want int
	}{
		{0, 5, 5},
		{-1, 5, 5},
		{3, 5, 3},
		{7, 5, 5},
		{5, 5, 5},
	}
	for _, tt := range tests {
		if got := widthOrAll(tt.width, tt.all); got != tt.want {
			t.Errorf("widthOrAll(%d, %d) = %d, want %d", tt.width, tt.all, got, tt.want)
		}
	}
}
