package master

import (
	"context"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// handleTraceFetch services one MtTraceFetch: it merges the spans its own
// ring holds for the trace with those pulled from every alive memory
// server's control endpoint (MtTracePull), so the caller receives one
// cluster-wide span set to assemble. Completeness degrades honestly: an
// unreachable server or a torn ring turns the Complete flag off rather
// than silently shrinking the set.
func (m *Master) handleTraceFetch(ctx context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	r := proto.DecodeTraceFetchRequest(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if err := m.requirePrimaryLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Unlock()
	m.ctr.traceFetches.Inc()

	spans, complete := m.tel.Tracer().SpansFor(r.Trace)
	for _, node := range m.AliveServers() {
		resp, err := m.tracePull(node, r.Trace)
		if err != nil {
			complete = false
			continue
		}
		spans = append(spans, resp.Spans...)
		if !resp.Complete {
			complete = false
		}
	}

	out := proto.TraceFetchResponse{Spans: spans, Complete: complete}
	var e rpc.Encoder
	if err := out.Encode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// tracePull fetches one node's spans for a trace over the cached control
// connection, following the repairPull pattern.
func (m *Master) tracePull(node simnet.NodeID, id telemetry.TraceID) (proto.TraceFetchResponse, error) {
	conn, err := m.ctrlConn(node)
	if err != nil {
		return proto.TraceFetchResponse{}, err
	}
	var e rpc.Encoder
	(&proto.TraceFetchRequest{Trace: id}).Encode(&e)
	ctx, cancel := m.stopCtx(5 * time.Second)
	defer cancel()
	payload, _, err := conn.Call(ctx, proto.MtTracePull, e.Bytes())
	if err != nil {
		m.dropCtrlConn(node, conn)
		return proto.TraceFetchResponse{}, err
	}
	return proto.DecodeTraceFetchResponse(rpc.NewDecoder(payload))
}
