package master

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// harness boots a master on node 0 of a small fabric and returns dialers
// for playing the roles of memory servers and clients.
type harness struct {
	t   *testing.T
	net *rdma.Network
	m   *Master
}

func newHarness(t *testing.T, nodes int) *harness {
	t.Helper()
	f := simnet.NewFabric(nodes, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	dev, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	m, err := Start(dev, Config{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(m.Close)
	return &harness{t: t, net: n, m: m}
}

func (h *harness) dial(node simnet.NodeID) *rpc.Conn {
	h.t.Helper()
	dev, err := h.net.OpenDevice(node)
	if err != nil {
		h.t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := rpc.Dial(context.Background(), dev, 0, proto.MasterService, nil, rpc.Options{})
	if err != nil {
		h.t.Fatalf("Dial: %v", err)
	}
	h.t.Cleanup(conn.Close)
	return conn
}

// registerServer announces a fake memory server with the given capacity.
func (h *harness) registerServer(conn *rpc.Conn, capacity uint64, rkey uint32) {
	h.t.Helper()
	var e rpc.Encoder
	e.U64(capacity)
	e.U32(rkey)
	if _, _, err := conn.Call(context.Background(), proto.MtRegisterServer, e.Bytes()); err != nil {
		h.t.Fatalf("register server: %v", err)
	}
}

func (h *harness) alloc(conn *rpc.Conn, req proto.AllocRequest) (*proto.RegionInfo, error) {
	h.t.Helper()
	var e rpc.Encoder
	req.Encode(&e)
	resp, _, err := conn.Call(context.Background(), proto.MtAlloc, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	if derr := d.Err(); derr != nil {
		h.t.Fatalf("decode alloc response: %v", derr)
	}
	return info, nil
}

func TestAllocPlacesOnLeastLoadedServer(t *testing.T) {
	h := newHarness(t, 3)
	s1 := h.dial(1)
	s2 := h.dial(2)
	h.registerServer(s1, 1<<20, 11)
	h.registerServer(s2, 1<<20, 22)

	// Fill most of server 1 (width 1 lands on the emptiest; both are
	// empty, tie broken by node id → node 1).
	first, err := h.alloc(s1, proto.AllocRequest{Name: "fill", Size: 700 << 10, StripeUnit: 4096, StripeWidth: 1})
	if err != nil {
		t.Fatalf("alloc fill: %v", err)
	}
	if first.Extents[0].Server != 1 {
		t.Fatalf("first alloc on %v, want node 1 (tie break)", first.Extents[0].Server)
	}
	// The next width-1 allocation must go to the emptier server 2.
	second, err := h.alloc(s1, proto.AllocRequest{Name: "next", Size: 100 << 10, StripeUnit: 4096, StripeWidth: 1})
	if err != nil {
		t.Fatalf("alloc next: %v", err)
	}
	if second.Extents[0].Server != 2 {
		t.Errorf("second alloc on %v, want least-loaded node 2", second.Extents[0].Server)
	}
	if second.Extents[0].RKey != 22 {
		t.Errorf("rkey = %d, want server 2's 22", second.Extents[0].RKey)
	}
}

func TestAllocRollbackOnInsufficientSpace(t *testing.T) {
	h := newHarness(t, 3)
	s1 := h.dial(1)
	s2 := h.dial(2)
	h.registerServer(s1, 1<<20, 11)
	h.registerServer(s2, 256<<10, 22)

	// A wide region too big for server 2's arena must fail entirely and
	// release whatever it grabbed from server 1.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "big", Size: 1 << 20, StripeUnit: 4096}); err == nil {
		t.Fatal("oversized wide alloc should fail")
	}
	// Everything must fit again afterwards.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "ok", Size: 1 << 20, StripeUnit: 64 << 10, StripeWidth: 1}); err != nil {
		t.Fatalf("alloc after rollback: %v", err)
	}
}

func TestReplicaRollbackOnFailure(t *testing.T) {
	h := newHarness(t, 2)
	s1 := h.dial(1)
	h.registerServer(s1, 1<<20, 11)

	// One server cannot host primary + replica of 700 KiB each.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "rep", Size: 700 << 10, StripeUnit: 4096, Replicas: 1}); err == nil {
		t.Fatal("replicated alloc beyond capacity should fail")
	}
	// The full megabyte is still available.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "all", Size: 1 << 20, StripeUnit: 64 << 10}); err != nil {
		t.Fatalf("alloc after replica rollback: %v", err)
	}
}

func TestHeartbeatFromUnknownServer(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	if _, _, err := conn.Call(context.Background(), proto.MtHeartbeat, nil); err == nil {
		t.Error("heartbeat before registration should fail")
	}
}

func TestMissedHeartbeatsMarkDead(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)
	if got := h.m.AliveServers(); len(got) != 1 {
		t.Fatalf("alive = %v", got)
	}
	// Stop beating: within a few intervals the master declares it dead.
	deadline := time.Now().Add(2 * time.Second)
	for len(h.m.AliveServers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never marked dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A heartbeat revives it.
	if _, _, err := conn.Call(context.Background(), proto.MtHeartbeat, nil); err != nil {
		t.Fatalf("revival heartbeat: %v", err)
	}
	if got := h.m.AliveServers(); len(got) != 1 {
		t.Errorf("alive after revival = %v", got)
	}
}

func TestAllocValidation(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)

	if _, err := h.alloc(conn, proto.AllocRequest{Name: "", Size: 4096}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "a", Size: 4096}); err != nil {
		t.Errorf("default stripe unit should apply: %v", err)
	}
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "a", Size: 4096}); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestRegionCountTracksLifecycle(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "x", Size: 4096, StripeUnit: 4096}); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if h.m.RegionCount() != 1 {
		t.Fatalf("count = %d", h.m.RegionCount())
	}
	var e rpc.Encoder
	e.String("x")
	if _, _, err := conn.Call(context.Background(), proto.MtFree, e.Bytes()); err != nil {
		t.Fatalf("free: %v", err)
	}
	if h.m.RegionCount() != 0 {
		t.Fatalf("count after free = %d", h.m.RegionCount())
	}
}

// TestReplicaPlacementDisjointProperty: across stripe widths and replica
// counts, every pair of copies lands on disjoint node sets whenever the
// cluster is large enough to allow it — and when it is not, the allocation
// still succeeds but the fallback is recorded (placement_degraded counter,
// PlacementDegraded status flag), never silent.
func TestReplicaPlacementDisjointProperty(t *testing.T) {
	const servers = 6
	h := newHarness(t, servers+1)
	conn := h.dial(1)
	srvConns := make([]*rpc.Conn, servers)
	for n := 1; n <= servers; n++ {
		srvConns[n-1] = h.dial(simnet.NodeID(n))
		h.registerServer(srvConns[n-1], 32<<20, uint32(100+n))
	}
	// The fake servers have no heartbeat loop and the harness death window
	// is 60 ms; beat them all so no server dies mid-sweep and shrinks the
	// candidate set (which would turn exact-fit placements into fallbacks).
	beat := func() {
		for _, sc := range srvConns {
			if _, _, err := sc.Call(context.Background(), proto.MtHeartbeat, nil); err != nil {
				t.Fatalf("heartbeat: %v", err)
			}
		}
	}

	regionStatus := func(name string) proto.RegionStatus {
		resp, _, err := conn.Call(context.Background(), proto.MtRegionStatus, nil)
		if err != nil {
			t.Fatalf("region status: %v", err)
		}
		d := rpc.NewDecoder(resp)
		n := d.U32()
		for i := uint32(0); i < n; i++ {
			st := proto.DecodeRegionStatus(d)
			if st.Info.Name == name {
				return st
			}
		}
		t.Fatalf("region %q missing from status", name)
		return proto.RegionStatus{}
	}

	for width := 1; width <= 3; width++ {
		for replicas := 0; replicas <= 2; replicas++ {
			name := fmt.Sprintf("prop/w%d-r%d", width, replicas)
			beat()
			pre := h.m.Telemetry().Snapshot().Counter("master.placement_degraded")
			info, err := h.alloc(conn, proto.AllocRequest{
				Name: name, Size: 96 << 10, StripeUnit: 16 << 10,
				StripeWidth: width, Replicas: replicas,
			})
			if err != nil {
				t.Fatalf("alloc %s: %v", name, err)
			}
			copies := info.Copies()
			if len(copies) != replicas+1 {
				t.Fatalf("%s: %d copies, want %d", name, len(copies), replicas+1)
			}
			overlap := false
			used := make(map[simnet.NodeID]int)
			for ci, xs := range copies {
				for _, x := range xs {
					if prev, ok := used[x.Server]; ok && prev != ci {
						overlap = true
					}
					used[x.Server] = ci
				}
			}
			delta := h.m.Telemetry().Snapshot().Counter("master.placement_degraded") - pre
			fitsDisjoint := (replicas+1)*width <= servers
			st := regionStatus(name)
			anyFlagged := false
			for _, cs := range st.Copies {
				anyFlagged = anyFlagged || cs.PlacementDegraded
			}
			if fitsDisjoint {
				if overlap {
					t.Errorf("%s: copies overlap although %d disjoint nodes were available", name, servers)
				}
				if delta != 0 {
					t.Errorf("%s: placement_degraded moved by %d on a disjoint placement", name, delta)
				}
				if anyFlagged {
					t.Errorf("%s: PlacementDegraded flagged on a disjoint placement", name)
				}
			} else {
				if delta <= 0 {
					t.Errorf("%s: fallback placement not recorded in placement_degraded", name)
				}
				if !anyFlagged {
					t.Errorf("%s: fallback placement not flagged in region status", name)
				}
			}
		}
	}
}

// TestSpuriousDeathAbsolvedOnHeartbeat: a server that misses heartbeats is
// presumed dead and the sweep dirties its copies — but when the same
// incarnation beats again without re-registering, the arena is intact, so
// the provisional dirtiness and even a latched Lost verdict must lift
// without any repair traffic (generation untouched). Dirtiness with a
// confirmed cause (a degraded-write report) must survive the absolution.
func TestSpuriousDeathAbsolvedOnHeartbeat(t *testing.T) {
	h := newHarness(t, 3)
	conn := h.dial(1)
	srv := map[simnet.NodeID]*rpc.Conn{}
	for n := simnet.NodeID(1); n <= 2; n++ {
		c := h.dial(n)
		h.registerServer(c, 1<<20, uint32(10*n))
		srv[n] = c
	}
	if _, err := h.alloc(conn, proto.AllocRequest{
		Name: "flap", Size: 64 << 10, StripeUnit: 16 << 10,
		StripeWidth: 1, Replicas: 1,
	}); err != nil {
		t.Fatalf("alloc: %v", err)
	}

	beat := func(n simnet.NodeID) {
		if _, _, err := srv[n].Call(context.Background(), proto.MtHeartbeat, nil); err != nil {
			t.Fatalf("heartbeat %v: %v", n, err)
		}
	}
	status := func() proto.RegionStatus {
		resp, _, err := conn.Call(context.Background(), proto.MtRegionStatus, nil)
		if err != nil {
			t.Fatalf("region status: %v", err)
		}
		d := rpc.NewDecoder(resp)
		n := d.U32()
		for i := uint32(0); i < n; i++ {
			if st := proto.DecodeRegionStatus(d); st.Info.Name == "flap" {
				return st
			}
		}
		t.Fatal(`region "flap" missing from status`)
		return proto.RegionStatus{}
	}
	waitFor := func(what string, cond func(proto.RegionStatus) bool) proto.RegionStatus {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st := status(); cond(st) {
				return st
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; status %+v", what, status())
		return proto.RegionStatus{}
	}

	// Starve both servers (the fakes have no beat loop): the sweep dirties
	// both copies, and with no clean source left the region latches Lost.
	st := waitFor("lost latch", func(st proto.RegionStatus) bool { return st.Lost })
	if !st.Copies[0].Dirty || !st.Copies[1].Dirty {
		t.Fatalf("expected both copies dirty while presumed dead; status %+v", st)
	}

	// The same incarnations beat again: dirtiness absolved, Lost lifted,
	// and no repair ever ran — the layout generation is untouched.
	beat(1)
	beat(2)
	st = waitFor("absolution", func(st proto.RegionStatus) bool {
		return !st.Lost && !st.Copies[0].Dirty && !st.Copies[1].Dirty
	})
	if st.Info.Generation != 0 {
		t.Errorf("generation %d after absolution, want 0 (no layout change)", st.Info.Generation)
	}

	// A degraded-write report is confirmed divergence, not a liveness
	// verdict: it must survive a starve/revive flap of the same server.
	var e rpc.Encoder
	rep := proto.DegradedReport{Name: "flap", Copy: 1}
	rep.Encode(&e)
	if _, _, err := conn.Call(context.Background(), proto.MtReportDegraded, e.Bytes()); err != nil {
		t.Fatalf("report degraded: %v", err)
	}
	waitFor("reported dirty", func(st proto.RegionStatus) bool { return st.Copies[1].Dirty })
	waitFor("second starve", func(st proto.RegionStatus) bool { return st.Copies[0].Dirty })
	beat(1)
	beat(2)
	st = waitFor("partial absolution", func(st proto.RegionStatus) bool { return !st.Copies[0].Dirty })
	if !st.Copies[1].Dirty {
		t.Error("degraded-write dirtiness was absolved by the flap; it must survive")
	}
	if st.Lost {
		t.Error("region still lost although a clean available copy exists")
	}
}
