package master

import (
	"context"
	"testing"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// harness boots a master on node 0 of a small fabric and returns dialers
// for playing the roles of memory servers and clients.
type harness struct {
	t   *testing.T
	net *rdma.Network
	m   *Master
}

func newHarness(t *testing.T, nodes int) *harness {
	t.Helper()
	f := simnet.NewFabric(nodes, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	dev, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	m, err := Start(dev, Config{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(m.Close)
	return &harness{t: t, net: n, m: m}
}

func (h *harness) dial(node simnet.NodeID) *rpc.Conn {
	h.t.Helper()
	dev, err := h.net.OpenDevice(node)
	if err != nil {
		h.t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := rpc.Dial(context.Background(), dev, 0, proto.MasterService, nil, rpc.Options{})
	if err != nil {
		h.t.Fatalf("Dial: %v", err)
	}
	h.t.Cleanup(conn.Close)
	return conn
}

// registerServer announces a fake memory server with the given capacity.
func (h *harness) registerServer(conn *rpc.Conn, capacity uint64, rkey uint32) {
	h.t.Helper()
	var e rpc.Encoder
	e.U64(capacity)
	e.U32(rkey)
	if _, _, err := conn.Call(context.Background(), proto.MtRegisterServer, e.Bytes()); err != nil {
		h.t.Fatalf("register server: %v", err)
	}
}

func (h *harness) alloc(conn *rpc.Conn, req proto.AllocRequest) (*proto.RegionInfo, error) {
	h.t.Helper()
	var e rpc.Encoder
	req.Encode(&e)
	resp, _, err := conn.Call(context.Background(), proto.MtAlloc, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	if derr := d.Err(); derr != nil {
		h.t.Fatalf("decode alloc response: %v", derr)
	}
	return info, nil
}

func TestAllocPlacesOnLeastLoadedServer(t *testing.T) {
	h := newHarness(t, 3)
	s1 := h.dial(1)
	s2 := h.dial(2)
	h.registerServer(s1, 1<<20, 11)
	h.registerServer(s2, 1<<20, 22)

	// Fill most of server 1 (width 1 lands on the emptiest; both are
	// empty, tie broken by node id → node 1).
	first, err := h.alloc(s1, proto.AllocRequest{Name: "fill", Size: 700 << 10, StripeUnit: 4096, StripeWidth: 1})
	if err != nil {
		t.Fatalf("alloc fill: %v", err)
	}
	if first.Extents[0].Server != 1 {
		t.Fatalf("first alloc on %v, want node 1 (tie break)", first.Extents[0].Server)
	}
	// The next width-1 allocation must go to the emptier server 2.
	second, err := h.alloc(s1, proto.AllocRequest{Name: "next", Size: 100 << 10, StripeUnit: 4096, StripeWidth: 1})
	if err != nil {
		t.Fatalf("alloc next: %v", err)
	}
	if second.Extents[0].Server != 2 {
		t.Errorf("second alloc on %v, want least-loaded node 2", second.Extents[0].Server)
	}
	if second.Extents[0].RKey != 22 {
		t.Errorf("rkey = %d, want server 2's 22", second.Extents[0].RKey)
	}
}

func TestAllocRollbackOnInsufficientSpace(t *testing.T) {
	h := newHarness(t, 3)
	s1 := h.dial(1)
	s2 := h.dial(2)
	h.registerServer(s1, 1<<20, 11)
	h.registerServer(s2, 256<<10, 22)

	// A wide region too big for server 2's arena must fail entirely and
	// release whatever it grabbed from server 1.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "big", Size: 1 << 20, StripeUnit: 4096}); err == nil {
		t.Fatal("oversized wide alloc should fail")
	}
	// Everything must fit again afterwards.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "ok", Size: 1 << 20, StripeUnit: 64 << 10, StripeWidth: 1}); err != nil {
		t.Fatalf("alloc after rollback: %v", err)
	}
}

func TestReplicaRollbackOnFailure(t *testing.T) {
	h := newHarness(t, 2)
	s1 := h.dial(1)
	h.registerServer(s1, 1<<20, 11)

	// One server cannot host primary + replica of 700 KiB each.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "rep", Size: 700 << 10, StripeUnit: 4096, Replicas: 1}); err == nil {
		t.Fatal("replicated alloc beyond capacity should fail")
	}
	// The full megabyte is still available.
	if _, err := h.alloc(s1, proto.AllocRequest{Name: "all", Size: 1 << 20, StripeUnit: 64 << 10}); err != nil {
		t.Fatalf("alloc after replica rollback: %v", err)
	}
}

func TestHeartbeatFromUnknownServer(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	if _, _, err := conn.Call(context.Background(), proto.MtHeartbeat, nil); err == nil {
		t.Error("heartbeat before registration should fail")
	}
}

func TestMissedHeartbeatsMarkDead(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)
	if got := h.m.AliveServers(); len(got) != 1 {
		t.Fatalf("alive = %v", got)
	}
	// Stop beating: within a few intervals the master declares it dead.
	deadline := time.Now().Add(2 * time.Second)
	for len(h.m.AliveServers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never marked dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A heartbeat revives it.
	if _, _, err := conn.Call(context.Background(), proto.MtHeartbeat, nil); err != nil {
		t.Fatalf("revival heartbeat: %v", err)
	}
	if got := h.m.AliveServers(); len(got) != 1 {
		t.Errorf("alive after revival = %v", got)
	}
}

func TestAllocValidation(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)

	if _, err := h.alloc(conn, proto.AllocRequest{Name: "", Size: 4096}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "a", Size: 4096}); err != nil {
		t.Errorf("default stripe unit should apply: %v", err)
	}
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "a", Size: 4096}); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestRegionCountTracksLifecycle(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 11)
	if _, err := h.alloc(conn, proto.AllocRequest{Name: "x", Size: 4096, StripeUnit: 4096}); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if h.m.RegionCount() != 1 {
		t.Fatalf("count = %d", h.m.RegionCount())
	}
	var e rpc.Encoder
	e.String("x")
	if _, _, err := conn.Call(context.Background(), proto.MtFree, e.Bytes()); err != nil {
		t.Fatalf("free: %v", err)
	}
	if h.m.RegionCount() != 0 {
		t.Fatalf("count after free = %d", h.m.RegionCount())
	}
}
