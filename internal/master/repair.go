package master

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rstore/internal/memserver"
	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// The repair plane: when liveness declares a server dead (or a client
// reports a degraded write, or placement fell back onto overlapping
// nodes), the master schedules background tasks that restore each affected
// copy — allocating replacement extents on healthy servers, directing the
// destination server to pull the bytes from a surviving copy over the
// one-sided repair path, then atomically swapping the new extents into the
// region and bumping its generation. Clients never participate: the write
// path keeps succeeding degraded while repair catches up.

// errNoSource means no clean copy on live servers remains to repair from.
var errNoSource = errors.New("master: no clean surviving copy")

// repairKey identifies one copy of one region in the repair queue.
type repairKey struct {
	name string
	copy int
}

// repairTask is one queued repair.
type repairTask struct {
	key repairKey
	// rehome asks for relocation of a clean but placement-degraded copy
	// onto disjoint nodes (no dirty data involved; the copy is its own
	// source).
	rehome bool
	// enqueuedV stamps the task on the virtual timeline for the MTTR
	// histogram (master.repair_duration).
	enqueuedV simnet.VTime
}

// repairQueue is an unbounded deduplicating task queue. A key stays
// "present" from enqueue until finish, so re-enqueues of a copy already
// being repaired are suppressed — the dirty-epoch check at completion
// re-queues if the copy degraded again mid-repair.
type repairQueue struct {
	mu      sync.Mutex
	tasks   []repairTask
	present map[repairKey]bool
	wake    chan struct{}
}

func (q *repairQueue) init() {
	q.present = make(map[repairKey]bool)
	q.wake = make(chan struct{}, 64)
}

func (q *repairQueue) push(t repairTask) bool {
	q.mu.Lock()
	if q.present[t.key] {
		q.mu.Unlock()
		return false
	}
	q.present[t.key] = true
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

func (q *repairQueue) pop() (repairTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return repairTask{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

func (q *repairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// finish releases the key so the copy can be queued again.
func (q *repairQueue) finish(k repairKey) {
	q.mu.Lock()
	delete(q.present, k)
	q.mu.Unlock()
}

// enqueueRepair queues one copy for repair (deduplicated).
func (m *Master) enqueueRepair(key repairKey, rehome bool) {
	t := repairTask{key: key, rehome: rehome, enqueuedV: m.dev.Network().Fabric().VNow()}
	if m.repair.push(t) {
		m.ctr.repairQueueDepth.Set(int64(m.repair.depth()))
	}
}

// scheduleRepairsLocked marks every copy with an extent on one of the
// given nodes dirty and queues it for repair. Caller holds m.mu. Used on
// dead transitions (the node's extents are unreachable) and on revival
// after death (the node's arena came back empty). presumed=true means the
// loss is a heartbeat verdict, not confirmed: if the copy had no other
// cause of dirtiness, record the epoch so a same-incarnation heartbeat
// can absolve it (see absolveDeathDirtyLocked). A re-registration after
// death passes presumed=false — the arena really is a new incarnation.
func (m *Master) scheduleRepairsLocked(nodes []simnet.NodeID, presumed bool) {
	hit := make(map[simnet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		hit[n] = true
	}
	for name, rs := range m.regionsByName {
		for j := 0; j < rs.copyCount(); j++ {
			touched := false
			for _, x := range rs.copyExtents(j) {
				if hit[x.Server] {
					touched = true
					break
				}
			}
			if touched {
				wasDirty := rs.dirty[j]
				rs.markDirty(j)
				if presumed && !wasDirty {
					rs.deathEpoch[j] = rs.dirtyEpoch[j]
				}
				m.appendLocked(proto.ReplRecord{
					Kind:        proto.ReplDirty,
					Name:        name,
					Copy:        j,
					Provisional: presumed,
				})
				m.enqueueRepair(repairKey{name: name, copy: j}, false)
			}
		}
	}
}

// absolveDeathDirtyLocked clears provisional death-induced dirtiness on
// copies touching node, which just heartbeat from the dead state: the
// same incarnation is back, its arena intact — the master's verdict was
// starvation, not death. A copy is absolved only when (a) the heartbeat
// sweep was the sole cause of its dirtiness (dirty epoch unchanged since;
// a degraded-write report in between keeps it dirty) and (b) every one of
// its servers is alive again, so it needs no repair at all. If absolution
// leaves the region with a clean available copy, the lost latch lifts and
// the remaining dirty copies re-queue — they now have a source. Caller
// holds m.mu.
func (m *Master) absolveDeathDirtyLocked(node simnet.NodeID) {
	for name, rs := range m.regionsByName {
		absolved := false
		for j := 0; j < rs.copyCount(); j++ {
			if !rs.dirty[j] || rs.deathEpoch[j] == 0 || rs.dirtyEpoch[j] != rs.deathEpoch[j] {
				continue
			}
			touches, available := false, true
			for _, x := range rs.copyExtents(j) {
				if x.Server == node {
					touches = true
				}
				s, have := m.servers[x.Server]
				if !have || !s.alive {
					available = false
				}
			}
			if !touches || !available {
				continue
			}
			rs.dirty[j] = false
			rs.deathEpoch[j] = 0
			m.appendLocked(proto.ReplRecord{Kind: proto.ReplClean, Name: name, Copy: j})
			absolved = true
		}
		if !absolved || !rs.lost {
			continue
		}
		for j := 0; j < rs.copyCount(); j++ {
			if rs.dirty[j] {
				continue
			}
			available := true
			for _, x := range rs.copyExtents(j) {
				s, have := m.servers[x.Server]
				if !have || !s.alive {
					available = false
					break
				}
			}
			if available {
				rs.lost = false
				m.appendLocked(proto.ReplRecord{Kind: proto.ReplLost, Name: name, Lost: false})
				break
			}
		}
		if !rs.lost {
			for j := 0; j < rs.copyCount(); j++ {
				if rs.dirty[j] && !rs.underRepair[j] {
					m.enqueueRepair(repairKey{name: name, copy: j}, false)
				}
			}
		}
	}
}

// rescheduleStalledLocked re-queues every dirty copy without an in-flight
// task (repairs dropped earlier for lack of capacity) and every clean
// placement-degraded copy (re-home now that capacity may exist). Caller
// holds m.mu; runs on server registration.
func (m *Master) rescheduleStalledLocked() {
	for name, rs := range m.regionsByName {
		for j := 0; j < rs.copyCount(); j++ {
			if rs.underRepair[j] {
				continue
			}
			switch {
			case rs.dirty[j]:
				m.enqueueRepair(repairKey{name: name, copy: j}, false)
			case rs.degraded[j]:
				m.enqueueRepair(repairKey{name: name, copy: j}, true)
			}
		}
	}
}

// repairWorker drains the repair queue until the master stops. Retryable
// failures (no capacity yet, transfer interrupted beyond resume) re-queue
// after RepairRetryDelay. The periodic poll tick backstops a lost wakeup.
func (m *Master) repairWorker() {
	defer m.wg.Done()
	for {
		task, ok := m.repair.pop()
		if !ok {
			select {
			case <-m.stop:
				return
			case <-m.repair.wake:
			case <-time.After(m.cfg.HeartbeatInterval):
			}
			continue
		}
		m.ctr.repairQueueDepth.Set(int64(m.repair.depth()))
		m.mu.Lock()
		primary := m.role == rolePrimary
		m.mu.Unlock()
		if !primary {
			// A stepped-down replica drops its queued repairs: the new
			// primary re-derives them from the replicated dirty state (its
			// promotion reschedules every stalled copy).
			m.repair.finish(task.key)
			continue
		}
		if m.runRepair(task) {
			select {
			case <-m.stop:
				return
			case <-time.After(m.cfg.RepairRetryDelay):
			}
			m.enqueueRepair(task.key, task.rehome)
		}
	}
}

// repairPlan is the immutable snapshot runRepair works from after the
// planning phase releases the master lock.
type repairPlan struct {
	key        repairKey
	epoch      uint64 // dirty epoch at planning time
	old        []proto.Extent
	dest       []proto.Extent
	realloc    bool // dest is freshly allocated (old must be freed, generation bumped)
	fellBack   bool // dest placement overlaps another copy
	rehome     bool
	sizes      []uint64 // per-extent lengths
	regionID   proto.RegionID
	homeServer simnet.NodeID
}

// runRepair executes one task end to end. Returns true when the task
// should be retried after a delay.
func (m *Master) runRepair(task repairTask) (retry bool) {
	plan, retry, ok := m.planRepair(task)
	if !ok {
		return retry
	}
	m.ctr.repairsStarted.Inc()

	copied := make([]uint64, len(plan.dest))
	err := m.pullAllExtents(plan, copied)
	if err != nil {
		m.abortRepair(plan)
		m.ctr.repairsFailed.Inc()
		return true
	}
	m.commitRepair(plan, task.enqueuedV)
	return false
}

// planRepair validates the task against current state, picks the
// destination placement (in-place, or freshly allocated when the copy's
// servers are dead, the geometry changed, or a re-home was requested), and
// marks the copy under repair. ok=false means the task is finished or must
// be retried (per retry).
func (m *Master) planRepair(task repairTask) (plan repairPlan, retry, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	finish := func() { m.repair.finish(task.key) }

	if m.role != rolePrimary {
		finish()
		return plan, false, false
	}
	rs, exists := m.regionsByName[task.key.name]
	ci := task.key.copy
	if !exists || ci >= rs.copyCount() {
		finish()
		return plan, false, false
	}
	// A re-home request is only meaningful while the copy is clean and
	// still degraded; a copy that went dirty meanwhile takes the normal
	// repair path (which relocates it anyway).
	rehome := task.rehome && !rs.dirty[ci]
	if rehome && !rs.degraded[ci] {
		finish()
		return plan, false, false
	}
	if !rehome && !rs.dirty[ci] {
		// Already clean (e.g. repaired via another path); nothing to do.
		finish()
		return plan, false, false
	}

	src, srcOK := m.pickSourceLocked(rs, ci, rehome)
	if !srcOK {
		// Every copy is dirty or on dead servers: the data is gone. Flag
		// the region lost; a later write-and-repair cycle cannot help, so
		// do not retry.
		if !rs.lost {
			rs.lost = true
			m.ctr.regionsLost.Inc()
			m.appendLocked(proto.ReplRecord{Kind: proto.ReplLost, Name: task.key.name, Lost: true})
		}
		finish()
		return plan, false, false
	}

	old := append([]proto.Extent(nil), rs.copyExtents(ci)...)
	width := len(src)
	needRealloc := rehome || len(old) != width
	for _, x := range old {
		s, have := m.servers[x.Server]
		if !have || !s.alive {
			needRealloc = true
			break
		}
	}

	dest := old
	fellBack := rs.degraded[ci] && !needRealloc
	if needRealloc {
		exclude := make(map[simnet.NodeID]bool)
		for j := 0; j < rs.copyCount(); j++ {
			if j == ci {
				continue
			}
			for _, x := range rs.copyExtents(j) {
				exclude[x.Server] = true
			}
		}
		servers := m.pickServers(width, exclude)
		fellBack = false
		if len(servers) < width {
			if rehome {
				// Still no disjoint placement; wait for the next capacity
				// change to try again (registration re-queues).
				finish()
				return plan, false, false
			}
			servers = m.pickServers(width, nil)
			fellBack = true
		}
		if len(servers) < width {
			finish()
			m.ctr.repairsFailed.Inc()
			return plan, true, false
		}
		xs, err := allocateCopy(servers, rs.info.Size, rs.info.StripeUnit)
		if err != nil {
			finish()
			m.ctr.repairsFailed.Inc()
			return plan, true, false
		}
		dest = xs
	}

	sizes := make([]uint64, width)
	for k := range src {
		sizes[k] = src[k].Len
	}
	rs.underRepair[ci] = true
	return repairPlan{
		key:        task.key,
		epoch:      rs.dirtyEpoch[ci],
		old:        old,
		dest:       dest,
		realloc:    needRealloc,
		fellBack:   fellBack,
		rehome:     rehome,
		sizes:      sizes,
		regionID:   rs.info.ID,
		homeServer: rs.info.HomeServer(),
	}, false, true
}

// pickSourceLocked returns the extent set of the lowest-indexed clean copy
// whose servers are all alive. For re-homes the copy itself qualifies (it
// is clean; the transfer just relocates it). Caller holds m.mu.
func (m *Master) pickSourceLocked(rs *regionState, ci int, rehome bool) ([]proto.Extent, bool) {
	for j := 0; j < rs.copyCount(); j++ {
		if j == ci && !rehome {
			continue
		}
		if rs.dirty[j] {
			continue
		}
		xs := rs.copyExtents(j)
		live := true
		for _, x := range xs {
			s, have := m.servers[x.Server]
			if !have || !s.alive {
				live = false
				break
			}
		}
		if live {
			return append([]proto.Extent(nil), xs...), true
		}
	}
	return nil, false
}

// pullAllExtents copies every extent of the plan from a surviving source
// into the destination, resuming per extent. When a source dies
// mid-transfer it re-picks one (the acceptance scenario "kill the repair
// source mid-repair") and resumes from the bytes already landed.
func (m *Master) pullAllExtents(plan repairPlan, copied []uint64) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		m.mu.Lock()
		rs, exists := m.regionsByName[plan.key.name]
		var src []proto.Extent
		srcOK := false
		if exists {
			src, srcOK = m.pickSourceLocked(rs, plan.key.copy, plan.rehome)
		}
		m.mu.Unlock()
		if !exists {
			return nil // commit will notice the region is gone
		}
		if !srcOK || len(src) != len(plan.dest) {
			return errNoSource
		}
		lastErr = m.pullFromSource(src, plan, copied)
		if lastErr == nil {
			return nil
		}
	}
	return lastErr
}

// pullFromSource runs one pass over the extents against a fixed source,
// advancing copied[k] as bytes land.
func (m *Master) pullFromSource(src []proto.Extent, plan repairPlan, copied []uint64) error {
	for k := range plan.dest {
		if copied[k] >= plan.sizes[k] {
			continue
		}
		if hook := m.cfg.RepairPullHook; hook != nil {
			hook(src[k])
		}
		req := proto.RepairPullRequest{
			Source:          src[k],
			DestAddr:        plan.dest[k].Addr,
			Len:             plan.sizes[k],
			StartOff:        copied[k],
			ChunkSize:       uint32(m.cfg.RepairChunk),
			RateBytesPerSec: m.cfg.RepairRateBytesPerSec,
		}
		resp, err := m.repairPull(plan.dest[k].Server, req)
		if err != nil {
			return err
		}
		if resp.Copied > copied[k] {
			m.ctr.repairBytes.Add(int64(resp.Copied - copied[k]))
			copied[k] = resp.Copied
		}
		if !resp.OK {
			return fmt.Errorf("master: repair pull extent %d: %s", k, resp.ErrMsg)
		}
	}
	return nil
}

// stopCtx returns a context bounded by both the timeout and the master's
// shutdown, so a repair in flight cannot stall Close on a dead peer.
func (m *Master) stopCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	go func() {
		select {
		case <-m.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// repairPull issues one MtRepairPull to the destination server over a
// cached control connection.
func (m *Master) repairPull(node simnet.NodeID, req proto.RepairPullRequest) (proto.RepairPullResponse, error) {
	conn, err := m.ctrlConn(node)
	if err != nil {
		return proto.RepairPullResponse{}, err
	}
	var e rpc.Encoder
	req.Encode(&e)
	ctx, cancel := m.stopCtx(30 * time.Second)
	defer cancel()
	payload, _, err := conn.Call(ctx, proto.MtRepairPull, e.Bytes())
	if err != nil {
		m.dropCtrlConn(node, conn)
		return proto.RepairPullResponse{}, err
	}
	d := rpc.NewDecoder(payload)
	resp := proto.DecodeRepairPullResponse(d)
	if derr := d.Err(); derr != nil {
		return proto.RepairPullResponse{}, derr
	}
	return resp, nil
}

// ctrlConn returns (dialing if needed) the control connection to a memory
// server's repair endpoint.
func (m *Master) ctrlConn(node simnet.NodeID) (*rpc.Conn, error) {
	m.ctrlMu.Lock()
	if c, ok := m.ctrlConns[node]; ok && c.Err() == nil {
		m.ctrlMu.Unlock()
		return c, nil
	}
	stale := m.ctrlConns[node]
	delete(m.ctrlConns, node)
	m.ctrlMu.Unlock()
	if stale != nil {
		stale.Close()
	}
	ctx, cancel := m.stopCtx(5 * time.Second)
	defer cancel()
	c, err := rpc.Dial(ctx, m.dev, node, proto.MemCtrlService, nil, m.cfg.RPC)
	if err != nil {
		return nil, err
	}
	m.ctrlMu.Lock()
	defer m.ctrlMu.Unlock()
	if cur, ok := m.ctrlConns[node]; ok && cur.Err() == nil {
		go c.Close()
		return cur, nil
	}
	m.ctrlConns[node] = c
	return c, nil
}

// dropCtrlConn forgets a failed control connection.
func (m *Master) dropCtrlConn(node simnet.NodeID, conn *rpc.Conn) {
	m.ctrlMu.Lock()
	if m.ctrlConns[node] == conn {
		delete(m.ctrlConns, node)
	}
	m.ctrlMu.Unlock()
	conn.Close()
}

// closeCtrlConns tears down the repair plane's connections at shutdown.
func (m *Master) closeCtrlConns() {
	m.ctrlMu.Lock()
	conns := m.ctrlConns
	m.ctrlConns = make(map[simnet.NodeID]*rpc.Conn)
	m.ctrlMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// abortRepair backs out a failed plan: releases freshly allocated extents
// and clears the under-repair mark so the copy can be re-queued.
func (m *Master) abortRepair(plan repairPlan) {
	m.mu.Lock()
	if m.role != rolePrimary {
		// Stepped down mid-repair: our allocators were (or will be) rebuilt
		// from the new primary's snapshot, so the plan's reservations no
		// longer exist to be freed.
		m.mu.Unlock()
		m.repair.finish(plan.key)
		return
	}
	if plan.realloc {
		m.freeExtents(plan.dest)
	}
	if rs, ok := m.regionsByName[plan.key.name]; ok && plan.key.copy < rs.copyCount() {
		rs.underRepair[plan.key.copy] = false
	}
	m.mu.Unlock()
	m.repair.finish(plan.key)
}

// commitRepair atomically swaps the repaired extents into the region,
// bumps the generation on layout change, and pushes an invalidation to the
// region's subscribers. A dirty-epoch mismatch (the copy degraded again
// while the transfer ran) leaves the copy dirty and re-queues it — repair
// then only re-transfers on top of already-landed bytes.
func (m *Master) commitRepair(plan repairPlan, enqueuedV simnet.VTime) {
	m.mu.Lock()
	if m.role != rolePrimary {
		// Stepped down while the transfer ran: this replica no longer owns
		// the metadata, and its allocator state was rebuilt from the new
		// primary's snapshot. The new primary re-runs the repair.
		m.mu.Unlock()
		m.repair.finish(plan.key)
		return
	}
	rs, exists := m.regionsByName[plan.key.name]
	ci := plan.key.copy
	if !exists || ci >= rs.copyCount() {
		if plan.realloc {
			m.freeExtents(plan.dest)
		}
		m.mu.Unlock()
		m.repair.finish(plan.key)
		return
	}
	layoutChanged := plan.realloc
	if layoutChanged {
		m.freeExtents(rs.copyExtents(ci))
		rs.setCopyExtents(ci, plan.dest)
		rs.info.Generation++
	}
	stillDirty := rs.dirtyEpoch[ci] != plan.epoch
	if !stillDirty {
		rs.dirty[ci] = false
		rs.deathEpoch[ci] = 0
	}
	rs.degraded[ci] = plan.fellBack
	rs.underRepair[ci] = false
	rs.lost = false
	rec := proto.ReplRecord{
		Kind:       proto.ReplCommit,
		Name:       plan.key.name,
		Copy:       ci,
		Generation: rs.info.Generation,
		Degraded:   plan.fellBack,
		StillDirty: stillDirty,
	}
	if layoutChanged {
		rec.Extents = append([]proto.Extent(nil), plan.dest...)
	}
	m.appendLocked(rec)
	commit := m.commitSeqLocked()
	gen := rs.info.Generation
	home := rs.info.HomeServer()
	id := rs.info.ID
	m.mu.Unlock()
	m.repl.waitCommitted(commit)
	m.repair.finish(plan.key)

	m.ctr.repairsDone.Inc()
	if plan.rehome {
		m.ctr.rehomes.Inc()
	}
	doneV := m.dev.Network().Fabric().VNow()
	if doneV > enqueuedV {
		m.ctr.repairDuration.Record(doneV.Sub(enqueuedV))
	}
	if stillDirty {
		m.enqueueRepair(plan.key, false)
	}
	if layoutChanged {
		go m.pushInvalidation(home, id, gen)
	}
}

// pushInvalidation tells the region's subscribers (via its home server's
// notify fan-out) that the layout changed. Best effort: clients that miss
// it still converge through the generation check on their next remap.
func (m *Master) pushInvalidation(home simnet.NodeID, id proto.RegionID, gen uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	qp, err := m.dev.Dial(ctx, home, proto.MemNotifyService, m.pd, rdma.ConnOpts{SendDepth: 4, RecvDepth: 4})
	if err != nil {
		return
	}
	defer qp.Close()
	mr, err := m.pd.RegisterMemory(make([]byte, memserver.NotifyMsgSize), 0)
	if err != nil {
		return
	}
	memserver.EncodeNotifyMsg(mr.Bytes(), memserver.NotifyKindInvalidate, id, uint32(gen))
	if err := qp.PostSend(rdma.SendWR{
		Op:    rdma.OpSend,
		Local: rdma.SGE{MR: mr, Len: memserver.NotifyMsgSize},
	}); err != nil {
		return
	}
	_, _ = qp.SendCQ().Next(ctx)
}

// handleRegionStatus returns the repair plane's view of every region.
func (m *Master) handleRegionStatus(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.regionsByName))
	for n := range m.regionsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	var e rpc.Encoder
	e.U32(uint32(len(names)))
	for _, n := range names {
		rs := m.regionsByName[n]
		st := proto.RegionStatus{
			Info:     *rs.info,
			MapCount: rs.mapCount,
			Lost:     rs.lost,
			Copies:   make([]proto.CopyStatus, rs.copyCount()),
		}
		for j := range st.Copies {
			healthy := true
			for _, x := range rs.copyExtents(j) {
				s, have := m.servers[x.Server]
				if !have || !s.alive {
					healthy = false
					break
				}
			}
			st.Copies[j] = proto.CopyStatus{
				Healthy:           healthy,
				Dirty:             rs.dirty[j],
				UnderRepair:       rs.underRepair[j],
				PlacementDegraded: rs.degraded[j],
			}
		}
		st.Encode(&e)
	}
	return &e, nil
}

// handleReportDegraded records a client's degraded write: the copy missed
// bytes, so it is dirty until repair re-syncs it. The response carries the
// region's current generation so a reporter on a stale layout remaps.
func (m *Master) handleReportDegraded(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	r := proto.DecodeDegradedReport(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if err := m.requirePrimaryLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	rs, ok := m.regionsByName[r.Name]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrRegionNotFound, r.Name)
	}
	if r.Copy < 0 || r.Copy >= rs.copyCount() {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: copy %d out of range for %q", r.Copy, r.Name)
	}
	m.ctr.degradedReports.Inc()
	rs.markDirty(r.Copy)
	m.appendLocked(proto.ReplRecord{Kind: proto.ReplDirty, Name: r.Name, Copy: r.Copy})
	commit := m.commitSeqLocked()
	gen := rs.info.Generation
	key := repairKey{name: r.Name, copy: r.Copy}
	m.mu.Unlock()
	m.repl.waitCommitted(commit)
	m.enqueueRepair(key, false)
	var e rpc.Encoder
	e.U64(gen)
	return &e, nil
}
