package master

// The master is the health engine's host: it is the one vantage point
// that already holds liveness verdicts, repair-plane state, and — via the
// windowed telemetry every heartbeat piggybacks — each server's current
// rates. After every monitor tick the primary assembles an immutable
// health.Input from that state and runs the rule engine over it; MtHealth
// serves the resulting alert table, event ring, and merged windows.

import (
	"context"
	"io"
	"time"

	"rstore/internal/health"
	"rstore/internal/proto"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// healthInputLocked assembles one evaluation's fact set: per-server
// liveness (with whether region copies still reference the server — what
// lets a server-silent alert resolve once repair re-homes everything),
// repair-plane summary state, and the cluster-merged windowed telemetry.
// Caller holds m.mu; ownWin is the master's own window snapshot, taken
// before the lock.
func (m *Master) healthInputLocked(now time.Time, ownWin telemetry.WindowSnapshot) health.Input {
	referenced := make(map[simnet.NodeID]bool)
	degraded := 0
	for _, rs := range m.regionsByName {
		bad := rs.lost
		for ci := 0; ci < rs.copyCount(); ci++ {
			if rs.dirty[ci] || rs.underRepair[ci] {
				bad = true
			}
			for _, x := range rs.copyExtents(ci) {
				referenced[x.Server] = true
			}
		}
		if bad {
			degraded++
		}
	}
	view := health.ClusterView{
		RepairQueueDepth: m.ctr.repairQueueDepth.Value(),
		DegradedRegions:  degraded,
	}
	windows := ownWin
	for _, s := range m.servers {
		sh := health.ServerHealth{
			Node:      s.node,
			Alive:     s.alive,
			HoldsData: referenced[s.node],
		}
		if !s.alive {
			sh.SilentFor = now.Sub(s.lastBeat)
		}
		view.Servers = append(view.Servers, sh)
		if s.hasWindows {
			windows.Merge(s.windows)
		}
	}
	return health.Input{Now: m.vnow(), Cluster: view, Windows: windows}
}

// evalHealth runs the engine over one assembled input.
func (m *Master) evalHealth(in health.Input) {
	fired, resolved := m.engine.Eval(in)
	m.ctr.healthEvals.Inc()
	m.ctr.healthFired.Add(int64(fired))
	m.ctr.healthResolved.Add(int64(resolved))
}

// handleHealth serves MtHealth: the current alert table, the health-event
// ring, and a freshly merged window snapshot. Primary-only — a standby's
// engine has never evaluated (verdict inputs are firsthand only on the
// primary), so its empty tables would read as "all healthy".
func (m *Master) handleHealth(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.ctr.healthRequests.Inc()
	ownWin := m.tel.WindowSnapshot()
	m.mu.Lock()
	if err := m.requirePrimaryLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	in := m.healthInputLocked(time.Now(), ownWin)
	m.mu.Unlock()
	report := proto.HealthReport{
		Alerts:  m.engine.Alerts(),
		Events:  m.engine.Events(),
		Windows: in.Windows,
	}
	e := &rpc.Encoder{}
	if err := report.Encode(e); err != nil {
		return nil, err
	}
	return e, nil
}

// HealthAlerts returns the engine's current alert table (tests and local
// tooling; remote callers use MtHealth).
func (m *Master) HealthAlerts() []health.Alert { return m.engine.Alerts() }

// DumpHealth writes the engine's alert table and event ring — the health
// counterpart of the tracer's flight-recorder dump, attached to chaos
// artifacts on test failure.
func (m *Master) DumpHealth(w io.Writer) { m.engine.Dump(w) }
