package master

import (
	"errors"
	"fmt"
	"sort"
)

// Allocation errors.
var (
	// ErrNoSpace is returned when a server's arena cannot fit a request.
	ErrNoSpace = errors.New("master: out of arena space")
	// ErrBadFree is returned when a span being freed was not allocated.
	ErrBadFree = errors.New("master: bad free")
)

// span is a contiguous [Off, Off+Len) window of a server's arena.
type span struct {
	off uint64
	len uint64
}

// allocAlign is the allocation granularity. Every span is rounded up to a
// multiple of this, so extent base addresses are always 64-byte aligned —
// a requirement for RDMA atomics (8-byte alignment) and good practice for
// cache behaviour.
const allocAlign = 64

// spaceAllocator manages one memory server's donated arena with a
// first-fit free list. It is not safe for concurrent use; the master
// serializes access under its own lock.
type spaceAllocator struct {
	capacity uint64
	free     []span // sorted by offset, adjacent spans coalesced
	used     uint64
}

// newSpaceAllocator covers [0, capacity).
func newSpaceAllocator(capacity uint64) *spaceAllocator {
	a := &spaceAllocator{capacity: capacity}
	if capacity > 0 {
		a.free = []span{{0, capacity}}
	}
	return a
}

// Capacity returns the arena size.
func (a *spaceAllocator) Capacity() uint64 { return a.capacity }

// Used returns the number of allocated bytes.
func (a *spaceAllocator) Used() uint64 { return a.used }

// FreeBytes returns the number of unallocated bytes.
func (a *spaceAllocator) FreeBytes() uint64 { return a.capacity - a.used }

// alignUp rounds n up to the allocation granularity.
func alignUp(n uint64) uint64 {
	return (n + allocAlign - 1) &^ uint64(allocAlign-1)
}

// Alloc carves n bytes (rounded up to the allocation granularity) out of
// the first free span that fits. The returned offset is always
// allocAlign-aligned.
func (a *spaceAllocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	n = alignUp(n)
	for i := range a.free {
		if a.free[i].len >= n {
			off := a.free[i].off
			a.free[i].off += n
			a.free[i].len -= n
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used += n
			return off, nil
		}
	}
	return 0, fmt.Errorf("%w: need %d, largest free %d", ErrNoSpace, n, a.largestFree())
}

// AllocAt carves the exact span [off, off+n) (n rounded up to the
// allocation granularity) out of the free list. It is how a standby
// rebuilding from a snapshot or log replays the primary's placement
// decisions byte-for-byte instead of re-running first-fit.
func (a *spaceAllocator) AllocAt(off, n uint64) error {
	if n == 0 {
		return nil
	}
	n = alignUp(n)
	if off+n > a.capacity || off+n < off {
		return fmt.Errorf("%w: [%d,%d) beyond capacity %d", ErrNoSpace, off, off+n, a.capacity)
	}
	for i := range a.free {
		s := a.free[i]
		if off < s.off || off+n > s.off+s.len {
			continue
		}
		// Split the free span around the carved window.
		var repl []span
		if off > s.off {
			repl = append(repl, span{s.off, off - s.off})
		}
		if off+n < s.off+s.len {
			repl = append(repl, span{off + n, s.off + s.len - (off + n)})
		}
		a.free = append(a.free[:i], append(repl, a.free[i+1:]...)...)
		a.used += n
		return nil
	}
	return fmt.Errorf("%w: [%d,%d) not free", ErrNoSpace, off, off+n)
}

func (a *spaceAllocator) largestFree() uint64 {
	var max uint64
	for _, s := range a.free {
		if s.len > max {
			max = s.len
		}
	}
	return max
}

// Free returns the span allocated at off for n bytes (rounded up the same
// way Alloc rounded it) to the free list, coalescing neighbors. Freeing a
// span that overlaps the free list is an error.
func (a *spaceAllocator) Free(off, n uint64) error {
	if n == 0 {
		return nil
	}
	n = alignUp(n)
	if off+n > a.capacity || off+n < off {
		return fmt.Errorf("%w: [%d,%d) beyond capacity %d", ErrBadFree, off, off+n, a.capacity)
	}
	idx := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	// Overlap checks against neighbors.
	if idx < len(a.free) && off+n > a.free[idx].off {
		return fmt.Errorf("%w: overlaps free span at %d", ErrBadFree, a.free[idx].off)
	}
	if idx > 0 && a.free[idx-1].off+a.free[idx-1].len > off {
		return fmt.Errorf("%w: overlaps free span at %d", ErrBadFree, a.free[idx-1].off)
	}
	a.free = append(a.free, span{})
	copy(a.free[idx+1:], a.free[idx:])
	a.free[idx] = span{off, n}
	a.used -= n
	// Coalesce with successor, then predecessor.
	if idx+1 < len(a.free) && a.free[idx].off+a.free[idx].len == a.free[idx+1].off {
		a.free[idx].len += a.free[idx+1].len
		a.free = append(a.free[:idx+1], a.free[idx+2:]...)
	}
	if idx > 0 && a.free[idx-1].off+a.free[idx-1].len == a.free[idx].off {
		a.free[idx-1].len += a.free[idx].len
		a.free = append(a.free[:idx], a.free[idx+1:]...)
	}
	return nil
}
