package master

import (
	"context"
	"errors"
	"testing"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// replHarness boots a replicated master group on the low nodes of a small
// fabric. LeaseTerm is negative so candidates skip the virtual-time lease
// wait — the fake memory servers in these tests speak no MtPing.
type replHarness struct {
	t   *testing.T
	f   *simnet.Fabric
	net *rdma.Network
	ms  []*Master
}

func newReplHarness(t *testing.T, nodes, replicas int) *replHarness {
	t.Helper()
	f := simnet.NewFabric(nodes, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	peers := make([]simnet.NodeID, replicas)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	h := &replHarness{t: t, f: f, net: n}
	for i := 0; i < replicas; i++ {
		dev, err := n.OpenDevice(simnet.NodeID(i))
		if err != nil {
			t.Fatalf("OpenDevice(%d): %v", i, err)
		}
		m, err := Start(dev, Config{
			HeartbeatInterval: 20 * time.Millisecond,
			Peers:             peers,
			LeaseTerm:         -1,
		})
		if err != nil {
			t.Fatalf("Start master %d: %v", i, err)
		}
		t.Cleanup(m.Close)
		h.ms = append(h.ms, m)
	}
	return h
}

func (h *replHarness) dial(from, to simnet.NodeID) *rpc.Conn {
	h.t.Helper()
	dev, err := h.net.OpenDevice(from)
	if err != nil {
		h.t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := rpc.Dial(context.Background(), dev, to, proto.MasterService, nil, rpc.Options{})
	if err != nil {
		h.t.Fatalf("Dial %v->%v: %v", from, to, err)
	}
	h.t.Cleanup(conn.Close)
	return conn
}

func (h *replHarness) waitRole(m *Master, want string, minEpoch uint64) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		role, epoch, _ := m.Status()
		if role == want && epoch >= minEpoch {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	role, epoch, leader := m.Status()
	h.t.Fatalf("master %v stuck at %s@%d (leader %v), want %s@>=%d",
		m.Node(), role, epoch, leader, want, minEpoch)
}

func regionStatusOf(t *testing.T, conn *rpc.Conn, name string) (proto.RegionStatus, bool) {
	t.Helper()
	resp, _, err := conn.Call(context.Background(), proto.MtRegionStatus, nil)
	if err != nil {
		t.Fatalf("region status: %v", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	for i := uint32(0); i < n; i++ {
		if st := proto.DecodeRegionStatus(d); st.Info.Name == name {
			return st, true
		}
	}
	return proto.RegionStatus{}, false
}

// TestFailoverPromotesStandbyAndFencesOldPrimary: the boot primary streams
// its metadata log to the standby; when the primary's node drops off the
// fabric, the standby waits out the silence, promotes itself at a bumped
// epoch, and serves the replicated metadata. When the old primary's node
// comes back, the first contact with the higher-epoch group steps it down,
// and client-facing RPCs against it redirect with a not-primary error.
//
// It also extends TestSpuriousDeathAbsolvedOnHeartbeat across a failover:
// servers presumed dead by the OLD primary (provisional dirtiness and even
// a latched Lost verdict, all replicated) beat the NEW primary with the
// same incarnation — the absolution must lift everything with the layout
// generation untouched, because the arenas were intact all along.
func TestFailoverPromotesStandbyAndFencesOldPrimary(t *testing.T) {
	h := newReplHarness(t, 5, 2)
	a, b := h.ms[0], h.ms[1]

	cli := h.dial(4, 0)
	srvConn := map[simnet.NodeID]*rpc.Conn{}
	for n := simnet.NodeID(2); n <= 3; n++ {
		c := h.dial(n, 0)
		var e rpc.Encoder
		e.U64(1 << 20)
		e.U32(uint32(10 * n))
		if _, _, err := c.Call(context.Background(), proto.MtRegisterServer, e.Bytes()); err != nil {
			t.Fatalf("register server %v: %v", n, err)
		}
		srvConn[n] = c
	}

	var e rpc.Encoder
	(&proto.AllocRequest{
		Name: "flap", Size: 64 << 10, StripeUnit: 16 << 10,
		StripeWidth: 1, Replicas: 1,
	}).Encode(&e)
	resp, _, err := cli.Call(context.Background(), proto.MtAlloc, e.Bytes())
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	d := rpc.NewDecoder(resp)
	info := proto.DecodeRegionInfo(d)
	if derr := d.Err(); derr != nil {
		t.Fatalf("decode alloc: %v", derr)
	}

	// Starve the fake servers' heartbeats until the primary's sweep latches
	// the region Lost — provisional dirtiness on both copies, replicated to
	// the standby as it happens.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := regionStatusOf(t, cli, "flap")
		if ok && st.Lost && st.Copies[0].Dirty && st.Copies[1].Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost latch never reached; status %+v (found=%v)", st, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary's node. The standby notices the silent stream and
	// takes over at a bumped epoch.
	if err := h.f.SetNodeUp(0, false); err != nil {
		t.Fatalf("kill node 0: %v", err)
	}
	h.waitRole(b, "primary", 1)

	// The replicated metadata survived the failover: same region, same
	// identity, still latched Lost with both copies dirty.
	cliB := h.dial(4, 1)
	st, ok := regionStatusOf(t, cliB, "flap")
	if !ok {
		t.Fatal("region missing on promoted standby")
	}
	if st.Info.ID != info.ID || st.Info.Size != info.Size {
		t.Fatalf("promoted standby serves different region identity: %+v vs %+v", st.Info, info)
	}
	if !st.Lost || !st.Copies[0].Dirty || !st.Copies[1].Dirty {
		t.Fatalf("replicated dirty/lost state missing after promotion: %+v", st)
	}

	// Same-incarnation heartbeats reach the freshly promoted primary: the
	// provisional dirtiness and the Lost latch lift without any repair —
	// the layout generation stays 0.
	for n := simnet.NodeID(2); n <= 3; n++ {
		c := h.dial(n, 1)
		if _, _, err := c.Call(context.Background(), proto.MtHeartbeat, nil); err != nil {
			t.Fatalf("heartbeat %v at new primary: %v", n, err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		st, ok = regionStatusOf(t, cliB, "flap")
		if ok && !st.Lost && !st.Copies[0].Dirty && !st.Copies[1].Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("absolution never reached on new primary; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Info.Generation != 0 {
		t.Errorf("generation %d after absolution, want 0 (no layout change)", st.Info.Generation)
	}

	// The old primary comes back partitioned in time, not space: its first
	// replication contact with the higher-epoch group must step it down.
	if err := h.f.SetNodeUp(0, true); err != nil {
		t.Fatalf("revive node 0: %v", err)
	}
	h.waitRole(a, "standby", 1)

	// And client-facing RPCs against the stale replica are fenced with a
	// redirect hint pointing at the real primary.
	cliA := h.dial(4, 0)
	var ae rpc.Encoder
	(&proto.AllocRequest{Name: "fenced", Size: 16 << 10}).Encode(&ae)
	_, _, err = cliA.Call(context.Background(), proto.MtAlloc, ae.Bytes())
	if err == nil {
		t.Fatal("stale replica accepted an alloc")
	}
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("fencing error is not a remote error: %v", err)
	}
	hint, epoch, ok := proto.IsNotPrimaryMsg(re.Msg)
	if !ok {
		t.Fatalf("fencing error lacks the not-primary marker: %v", re.Msg)
	}
	if hint != 1 {
		t.Errorf("redirect hint %v, want 1", hint)
	}
	if epoch < 1 {
		t.Errorf("fencing epoch %d, want >= 1", epoch)
	}
}

// TestAllocTokenIdempotent: a retried Alloc carrying the same nonzero
// token must return the originally created region instead of "already
// exists" — the contract a client retry relies on when its first attempt
// committed just before a failover.
func TestAllocTokenIdempotent(t *testing.T) {
	h := newHarness(t, 2)
	conn := h.dial(1)
	h.registerServer(conn, 1<<20, 7)

	req := proto.AllocRequest{Name: "idem", Size: 64 << 10, Token: 42}
	first, err := h.alloc(conn, req)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	second, err := h.alloc(conn, req)
	if err != nil {
		t.Fatalf("retried alloc with same token: %v", err)
	}
	if first.ID != second.ID || first.Size != second.Size {
		t.Fatalf("retry returned a different region: %+v vs %+v", first, second)
	}

	// A different token for the same name is a genuine conflict.
	req.Token = 43
	if _, err := h.alloc(conn, req); err == nil {
		t.Fatal("conflicting alloc with a fresh token succeeded")
	}
}

// TestReplicatedAllocVisibleOnStandbyAfterPromotion: registrations and
// allocations stream to the standby as they commit; killing the primary
// immediately after a burst of allocations must lose none of them.
func TestReplicatedAllocVisibleOnStandbyAfterPromotion(t *testing.T) {
	h := newReplHarness(t, 4, 2)
	b := h.ms[1]

	cli := h.dial(3, 0)
	sc := h.dial(2, 0)
	var e rpc.Encoder
	e.U64(4 << 20)
	e.U32(99)
	if _, _, err := sc.Call(context.Background(), proto.MtRegisterServer, e.Bytes()); err != nil {
		t.Fatalf("register server: %v", err)
	}

	names := []string{"a", "b", "c", "d", "e"}
	ids := map[string]proto.RegionID{}
	for _, name := range names {
		var ae rpc.Encoder
		(&proto.AllocRequest{Name: name, Size: 32 << 10}).Encode(&ae)
		resp, _, err := cli.Call(context.Background(), proto.MtAlloc, ae.Bytes())
		if err != nil {
			t.Fatalf("alloc %q: %v", name, err)
		}
		d := rpc.NewDecoder(resp)
		info := proto.DecodeRegionInfo(d)
		if derr := d.Err(); derr != nil {
			t.Fatalf("decode alloc %q: %v", name, derr)
		}
		ids[name] = info.ID
	}

	// The alloc response is the commit acknowledgment: by the time the last
	// one returned, every record is acked by the standby. Kill the primary
	// with no settling delay.
	if err := h.f.SetNodeUp(0, false); err != nil {
		t.Fatalf("kill node 0: %v", err)
	}
	h.waitRole(b, "primary", 1)

	cliB := h.dial(3, 1)
	resp, _, err := cliB.Call(context.Background(), proto.MtListRegions, nil)
	if err != nil {
		t.Fatalf("list regions on promoted standby: %v", err)
	}
	d := rpc.NewDecoder(resp)
	n := d.U32()
	got := map[string]proto.RegionID{}
	for i := uint32(0); i < n; i++ {
		name := d.String()
		id := proto.RegionID(d.U64())
		d.U64() // size
		d.U32() // map count
		got[name] = id
	}
	if derr := d.Err(); derr != nil {
		t.Fatalf("decode list: %v", derr)
	}
	for _, name := range names {
		if got[name] != ids[name] {
			t.Errorf("region %q: id %v on standby, want %v", name, got[name], ids[name])
		}
	}
}
