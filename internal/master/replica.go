package master

import (
	"context"
	"errors"
	"sync"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// errBadRecord means a replicated log record referenced state the follower
// does not have — the streams are out of sync and a snapshot must restart
// them.
var errBadRecord = errors.New("master: bad replication record")

// The master replication group. One primary serves every client-facing RPC
// and streams an ordered metadata log (plus full snapshots on stream open)
// to its standbys over MtReplHello/MtReplAppend; standbys apply the log
// deterministically and answer only MtMasterStatus. A primary lease rides
// the append stream: empty appends are lease-renewal beats, and a standby
// that stops hearing them waits out the lease on *virtual* time before
// assuming the primaryship at a bumped master epoch. Stale primaries are
// fenced by epoch comparison on every replication message and step down
// when they learn of a successor.

// role is a master replica's position in the group.
type role int

const (
	roleStandby role = iota
	rolePrimary
)

func (r role) String() string {
	if r == rolePrimary {
		return "primary"
	}
	return "standby"
}

// repl is the primary-side log engine. Lock order: m.mu before repl.mu —
// appendLocked runs under m.mu so log order equals state-mutation order,
// while streamers and commit waiters take only repl.mu.
type repl struct {
	mu   sync.Mutex
	cond *sync.Cond
	// term counts primaryship transitions on this node (promotions and
	// step-downs both bump it); streamers and waiters from an old term
	// observe the mismatch and exit.
	term uint64
	// baseSeq is the log seq of records[0]; nextSeq is the seq the next
	// record will take. The prefix every attached follower has acked is
	// discarded.
	baseSeq uint64
	records []proto.ReplRecord
	nextSeq uint64
	// followers maps an attached standby to the seq it has acked through.
	// A follower is registered at snapshot time (so records appended after
	// the snapshot are retained for it) and removed on any stream error.
	followers map[simnet.NodeID]uint64
}

func (r *repl) init() {
	r.cond = sync.NewCond(&r.mu)
	r.nextSeq = 1
	r.baseSeq = 1
	r.followers = make(map[simnet.NodeID]uint64)
}

// newTerm invalidates every streamer and commit waiter of the current
// term. Called on promotion and step-down (under m.mu).
func (r *repl) newTerm() uint64 {
	r.mu.Lock()
	r.term++
	t := r.term
	r.followers = make(map[simnet.NodeID]uint64)
	r.records = nil
	r.baseSeq = r.nextSeq
	r.cond.Broadcast()
	r.mu.Unlock()
	return t
}

// minAckLocked returns the lowest acked seq across attached followers.
func (r *repl) minAckLocked() uint64 {
	min := r.nextSeq
	for _, a := range r.followers {
		if a < min {
			min = a
		}
	}
	return min
}

// truncateLocked drops the log prefix every attached follower has acked.
func (r *repl) truncateLocked() {
	min := r.minAckLocked()
	if min > r.baseSeq {
		n := min - r.baseSeq
		r.records = append([]proto.ReplRecord(nil), r.records[n:]...)
		r.baseSeq = min
	}
}

// waitCommitted blocks until every follower attached at call time (or
// attaching later) has acked through target, or until the group has no
// attached followers, or the term ends. target 0 is a no-op. With zero
// standbys attached the group degrades to immediate commit — availability
// over durability, documented in DESIGN.md.
func (r *repl) waitCommitted(target uint64) {
	if target == 0 {
		return
	}
	r.mu.Lock()
	term := r.term
	for r.term == term && len(r.followers) > 0 && r.minAckLocked() < target {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// appendLocked appends records to the replicated log. Caller holds m.mu
// and must be the primary; the returned seq is what waitCommitted takes
// (0 when nothing needs replication — not primary, or no peers
// configured). Callers use the pattern
//
//	var commit uint64
//	defer func() { m.repl.waitCommitted(commit) }()
//	defer m.mu.Unlock()
//	...
//	commit = m.appendLocked(recs...)
//
// so the commit wait runs after m.mu is released (deferred calls run LIFO)
// and a handler never blocks the master lock on a slow follower.
func (m *Master) appendLocked(recs ...proto.ReplRecord) uint64 {
	if m.role != rolePrimary || len(m.peersBesidesSelf()) == 0 || len(recs) == 0 {
		return 0
	}
	r := &m.repl
	r.mu.Lock()
	if len(r.followers) > 0 {
		r.records = append(r.records, recs...)
	} else {
		// No follower attached (and none mid-snapshot): the log has no
		// reader, so advance the base with the seq instead of retaining.
		r.baseSeq = r.nextSeq + uint64(len(recs))
	}
	r.nextSeq += uint64(len(recs))
	seq := r.nextSeq
	r.cond.Broadcast()
	r.mu.Unlock()
	m.ctr.replRecords.Add(int64(len(recs)))
	return seq
}

// commitSeqLocked returns the log position a mutating handler must hand to
// waitCommitted so every record it appended in this critical section is
// replicated before the response is released. Caller holds m.mu. Returns 0
// (a no-op wait) when nothing replicates from this node.
func (m *Master) commitSeqLocked() uint64 {
	if m.role != rolePrimary || len(m.peersBesidesSelf()) == 0 {
		return 0
	}
	m.repl.mu.Lock()
	seq := m.repl.nextSeq
	m.repl.mu.Unlock()
	return seq
}

// peersBesidesSelf returns the configured replica set minus this node.
func (m *Master) peersBesidesSelf() []simnet.NodeID {
	var out []simnet.NodeID
	for _, p := range m.cfg.Peers {
		if p != m.cfg.Node {
			out = append(out, p)
		}
	}
	return out
}

// requirePrimaryLocked fences every client-facing handler: a standby (or a
// stepped-down primary) answers with the not-primary redirect instead of
// serving from possibly-stale state. Caller holds m.mu.
func (m *Master) requirePrimaryLocked() error {
	if m.role == rolePrimary {
		return nil
	}
	hint := m.leader
	if hint == m.cfg.Node {
		hint = -1
	}
	return proto.NotPrimaryError(hint, m.epoch)
}

// setRoleGaugesLocked publishes the replica's role and epoch.
func (m *Master) setRoleGaugesLocked() {
	if m.role == rolePrimary {
		m.ctr.roleGauge.Set(1)
	} else {
		m.ctr.roleGauge.Set(0)
	}
	m.ctr.epochGauge.Set(int64(m.epoch))
}

// vnow reads the fabric's virtual frontier.
func (m *Master) vnow() simnet.VTime {
	return m.dev.Network().Fabric().VNow()
}

// beatInterval is the replication stream's keepalive cadence.
func (m *Master) beatInterval() time.Duration {
	return m.cfg.HeartbeatInterval / 2
}

// startPrimaryLocked launches the streaming machinery for a fresh term.
// Caller holds m.mu with role already rolePrimary.
func (m *Master) startPrimaryLocked() {
	term := m.repl.newTerm()
	epoch := m.epoch
	for _, peer := range m.peersBesidesSelf() {
		m.wg.Add(1)
		go m.streamTo(peer, term, epoch)
	}
}

// termActive reports whether the streamer's term is still the live one.
func (m *Master) termActive(term uint64) bool {
	select {
	case <-m.stop:
		return false
	default:
	}
	m.repl.mu.Lock()
	ok := m.repl.term == term
	m.repl.mu.Unlock()
	return ok
}

// sleepBeat waits one keepalive interval or until shutdown.
func (m *Master) sleepBeat() {
	select {
	case <-m.stop:
	case <-time.After(m.beatInterval()):
	}
}

// streamTo is the per-follower streamer goroutine for one term: it dials
// the standby, opens the stream with a snapshot hello, then pushes log
// records (or empty lease beats) until the term ends or the peer fails.
// It never runs an RPC while holding m.mu, so a dead follower cannot
// stall the master.
func (m *Master) streamTo(peer simnet.NodeID, term, epoch uint64) {
	defer m.wg.Done()
	var conn *rpc.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for m.termActive(term) {
		if conn == nil || conn.Err() != nil {
			if conn != nil {
				conn.Close()
			}
			conn = nil
			ctx, cancel := m.stopCtx(m.cfg.HeartbeatInterval)
			c, err := rpc.Dial(ctx, m.dev, peer, proto.MasterService, nil, m.cfg.RPC)
			cancel()
			if err != nil {
				m.sleepBeat()
				continue
			}
			conn = c
		}
		hello, snapSeq, ok := m.buildHello(peer, term, epoch)
		if !ok {
			return
		}
		ack, err := m.replCall(conn, proto.MtReplHello, hello)
		if err != nil {
			m.detachFollower(peer, term)
			m.sleepBeat()
			continue
		}
		if !ack.OK {
			m.detachFollower(peer, term)
			m.considerStepDown(ack)
			m.sleepBeat()
			continue
		}
		m.streamRecords(conn, peer, term, epoch, snapSeq)
	}
}

// buildHello snapshots the full metadata state under m.mu and registers
// the peer as a follower at the snapshot's seq, so records appended while
// the hello is in flight are retained for it. ok=false means the term
// ended.
func (m *Master) buildHello(peer simnet.NodeID, term, epoch uint64) ([]byte, uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.repl.mu.Lock()
	if m.repl.term != term {
		m.repl.mu.Unlock()
		return nil, 0, false
	}
	seq := m.repl.nextSeq
	m.repl.followers[peer] = seq
	m.repl.mu.Unlock()

	snap := m.snapshotLocked(epoch, seq)
	var e rpc.Encoder
	snap.Encode(&e)
	return e.Bytes(), seq, true
}

// snapshotLocked captures the replicated metadata state. Caller holds
// m.mu. Under-repair marks and per-server heartbeat stats are transient
// and deliberately excluded; plan-time repair allocations are likewise
// invisible (only commits replicate), so a promoted standby replans from
// pre-plan allocator state and reproduces the primary's placement.
func (m *Master) snapshotLocked(epoch, seq uint64) *proto.MasterSnapshot {
	snap := &proto.MasterSnapshot{
		Epoch:   epoch,
		NextSeq: seq,
		NextID:  uint64(m.nextID),
	}
	for _, s := range m.servers {
		snap.Servers = append(snap.Servers, proto.SnapServer{
			Node:     s.node,
			Capacity: s.alloc.Capacity(),
			RKey:     s.rkey,
			Epoch:    s.epoch,
			Alive:    s.alive,
		})
	}
	for _, rs := range m.regionsByName {
		snap.Regions = append(snap.Regions, proto.SnapRegion{
			Info:       *rs.info.Clone(),
			MapCount:   rs.mapCount,
			AllocToken: rs.allocToken,
			Dirty:      append([]bool(nil), rs.dirty...),
			DirtyEpoch: append([]uint64(nil), rs.dirtyEpoch...),
			DeathEpoch: append([]uint64(nil), rs.deathEpoch...),
			Degraded:   append([]bool(nil), rs.degraded...),
			Lost:       rs.lost,
		})
	}
	return snap
}

// streamRecords pushes log records to an attached follower until the term
// ends or the stream breaks. Empty appends double as lease beats.
func (m *Master) streamRecords(conn *rpc.Conn, peer simnet.NodeID, term, epoch, acked uint64) {
	for {
		recs, ok := m.nextBatch(peer, term, acked)
		if !ok {
			return
		}
		app := proto.ReplAppend{Epoch: epoch, Seq: acked, Records: recs}
		var e rpc.Encoder
		app.Encode(&e)
		ack, err := m.replCall(conn, proto.MtReplAppend, e.Bytes())
		if err != nil {
			m.detachFollower(peer, term)
			return
		}
		if !ack.OK {
			m.detachFollower(peer, term)
			if !ack.NeedSnapshot {
				m.considerStepDown(ack)
				m.sleepBeat()
			}
			return
		}
		acked += uint64(len(recs))
		m.ackFollower(peer, term, acked)
	}
}

// nextBatch returns the records beyond acked, blocking until some exist or
// a beat interval passes (then it returns an empty batch — the lease
// beat). ok=false ends the stream (term over, or the peer was detached).
func (m *Master) nextBatch(peer simnet.NodeID, term, acked uint64) ([]proto.ReplRecord, bool) {
	r := &m.repl
	// A time-bounded wait: the waker goroutine broadcasts after a beat so
	// the cond wait cannot outlive the keepalive cadence.
	deadline := time.Now().Add(m.beatInterval())
	wake := time.AfterFunc(m.beatInterval(), func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer wake.Stop()

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.term != term {
			return nil, false
		}
		if _, attached := r.followers[peer]; !attached {
			return nil, false
		}
		if r.nextSeq > acked {
			start := acked - r.baseSeq
			batch := append([]proto.ReplRecord(nil), r.records[start:]...)
			return batch, true
		}
		if time.Now().After(deadline) {
			return nil, true // beat
		}
		r.cond.Wait()
	}
}

// ackFollower advances a follower's acked seq, truncates the shared log
// prefix, and wakes commit waiters.
func (m *Master) ackFollower(peer simnet.NodeID, term, acked uint64) {
	r := &m.repl
	r.mu.Lock()
	if r.term == term {
		if cur, ok := r.followers[peer]; ok && acked > cur {
			r.followers[peer] = acked
			r.truncateLocked()
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// detachFollower drops a follower from the attach set (stream error or
// fencing); its unacked records stop holding the log, and commit waiters
// re-evaluate (a handler blocked on a dead follower unblocks).
func (m *Master) detachFollower(peer simnet.NodeID, term uint64) {
	r := &m.repl
	r.mu.Lock()
	if r.term == term {
		delete(r.followers, peer)
		r.truncateLocked()
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// replCall runs one replication RPC with a bounded context and decodes the
// ack.
func (m *Master) replCall(conn *rpc.Conn, mt uint16, payload []byte) (proto.ReplAck, error) {
	ctx, cancel := m.stopCtx(5 * m.cfg.HeartbeatInterval)
	defer cancel()
	resp, _, err := conn.Call(ctx, mt, payload)
	if err != nil {
		return proto.ReplAck{}, err
	}
	d := rpc.NewDecoder(resp)
	ack := proto.DecodeReplAck(d)
	if derr := d.Err(); derr != nil {
		return proto.ReplAck{}, derr
	}
	return ack, nil
}

// considerStepDown reacts to a fencing rejection from a standby: a higher
// epoch always wins; at an equal epoch the lower node ID wins (both sides
// apply the same rule, so exactly one steps down).
func (m *Master) considerStepDown(ack proto.ReplAck) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != rolePrimary {
		return
	}
	if ack.Epoch > m.epoch || (ack.Epoch == m.epoch && ack.Leader >= 0 && ack.Leader < m.cfg.Node) {
		m.stepDownLocked(ack.Epoch, ack.Leader)
	}
}

// stepDownLocked demotes this replica to standby: the term ends (streamers
// exit, commit waiters unblock and their handlers answer not-primary, so
// clients retry against the successor). Caller holds m.mu.
func (m *Master) stepDownLocked(epoch uint64, leader simnet.NodeID) {
	m.role = roleStandby
	if epoch > m.epoch {
		m.epoch = epoch
	}
	m.leader = leader
	m.lastPrimaryWall = time.Now()
	m.lastPrimaryV = m.vnow()
	m.repl.newTerm()
	m.setRoleGaugesLocked()
}

// handleMasterStatus answers from any role — it is how probes, clients,
// and peers locate the primary.
func (m *Master) handleMasterStatus(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.mu.Lock()
	st := proto.MasterStatus{
		Node:    m.cfg.Node,
		Role:    m.role.String(),
		Epoch:   m.epoch,
		Primary: m.leader,
	}
	m.mu.Unlock()
	var e rpc.Encoder
	st.Encode(&e)
	return &e, nil
}

// handleReplHello is the standby side of a stream open: accept the
// primary's snapshot (resetting all local state to it) iff its epoch wins.
func (m *Master) handleReplHello(_ context.Context, from simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	snap := proto.DecodeMasterSnapshot(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.acceptLeaderLocked(snap.Epoch, from) {
		return replAckEnc(proto.ReplAck{OK: false, Epoch: m.epoch, Leader: m.leader}), nil
	}
	m.applySnapshotLocked(&snap, from)
	return replAckEnc(proto.ReplAck{OK: true, Epoch: m.epoch, Leader: m.leader}), nil
}

// handleReplAppend applies a log batch (or lease beat) from the primary.
func (m *Master) handleReplAppend(_ context.Context, from simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	app := proto.DecodeReplAppend(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if app.Epoch > m.epoch {
		// A newer primary exists but we have not seen its snapshot yet;
		// ask for the stream to restart with a hello.
		return replAckEnc(proto.ReplAck{OK: false, NeedSnapshot: true, Epoch: m.epoch, Leader: m.leader}), nil
	}
	if !m.acceptLeaderLocked(app.Epoch, from) {
		return replAckEnc(proto.ReplAck{OK: false, Epoch: m.epoch, Leader: m.leader}), nil
	}
	if app.Seq != m.applySeq {
		return replAckEnc(proto.ReplAck{OK: false, NeedSnapshot: true, Epoch: m.epoch, Leader: m.leader}), nil
	}
	for i := range app.Records {
		if err := m.applyRecordLocked(&app.Records[i]); err != nil {
			// A failed apply leaves state suspect; a fresh snapshot is the
			// safety valve.
			return replAckEnc(proto.ReplAck{OK: false, NeedSnapshot: true, Epoch: m.epoch, Leader: m.leader}), nil
		}
	}
	m.applySeq += uint64(len(app.Records))
	m.lastPrimaryWall = time.Now()
	m.lastPrimaryV = m.vnow()
	return replAckEnc(proto.ReplAck{OK: true, Epoch: m.epoch, Leader: m.leader}), nil
}

func replAckEnc(a proto.ReplAck) *rpc.Encoder {
	var e rpc.Encoder
	a.Encode(&e)
	return &e
}

// acceptLeaderLocked decides whether a replication message from `from` at
// `epoch` wins over local state: a strictly higher epoch always does (a
// local primary steps down first); an equal epoch only from the already-
// accepted leader. Caller holds m.mu.
func (m *Master) acceptLeaderLocked(epoch uint64, from simnet.NodeID) bool {
	if epoch > m.epoch {
		if m.role == rolePrimary {
			m.ctr.fencedRejects.Inc()
			m.stepDownLocked(epoch, from)
		}
		return true
	}
	if epoch == m.epoch && m.role != rolePrimary && (m.leader == from || m.leader < 0) {
		return true
	}
	m.ctr.fencedRejects.Inc()
	return false
}

// applySnapshotLocked resets all metadata state to the snapshot. Caller
// holds m.mu; acceptance already checked.
func (m *Master) applySnapshotLocked(snap *proto.MasterSnapshot, from simnet.NodeID) {
	m.role = roleStandby
	m.epoch = snap.Epoch
	m.leader = from
	m.applySeq = snap.NextSeq
	m.nextID = proto.RegionID(snap.NextID)
	m.lastPrimaryWall = time.Now()
	m.lastPrimaryV = m.vnow()

	m.servers = make(map[simnet.NodeID]*serverState, len(snap.Servers))
	now := time.Now()
	for _, sv := range snap.Servers {
		m.servers[sv.Node] = &serverState{
			node:     sv.Node,
			rkey:     sv.RKey,
			alloc:    newSpaceAllocator(sv.Capacity),
			alive:    sv.Alive,
			lastBeat: now,
			epoch:    sv.Epoch,
		}
	}
	m.regionsByName = make(map[string]*regionState, len(snap.Regions))
	for i := range snap.Regions {
		sr := &snap.Regions[i]
		info := sr.Info.Clone()
		rs := newRegionState(info)
		rs.mapCount = sr.MapCount
		rs.allocToken = sr.AllocToken
		copyInto(rs.dirty, sr.Dirty)
		copyIntoU64(rs.dirtyEpoch, sr.DirtyEpoch)
		copyIntoU64(rs.deathEpoch, sr.DeathEpoch)
		copyInto(rs.degraded, sr.Degraded)
		rs.lost = sr.Lost
		m.regionsByName[info.Name] = rs
		m.carveRegionLocked(rs)
	}
	m.ctr.regions.Set(int64(len(m.regionsByName)))
	m.updateAliveGauge()
	m.setRoleGaugesLocked()
}

func copyInto(dst, src []bool) {
	for i := range dst {
		if i < len(src) {
			dst[i] = src[i]
		}
	}
}

func copyIntoU64(dst, src []uint64) {
	for i := range dst {
		if i < len(src) {
			dst[i] = src[i]
		}
	}
}

// carveRegionLocked reserves every extent of every copy of rs in the
// rebuilt per-server allocators, reproducing the primary's allocation map
// byte-for-byte. Caller holds m.mu.
func (m *Master) carveRegionLocked(rs *regionState) {
	for j := 0; j < rs.copyCount(); j++ {
		for _, x := range rs.copyExtents(j) {
			if s, ok := m.servers[x.Server]; ok {
				_ = s.alloc.AllocAt(x.Addr, x.Len)
			}
		}
	}
}

// applyRecordLocked applies one replicated log record. Standbys never
// re-derive state (no local sweeps, no repair scheduling) — every
// transition arrives explicitly. Caller holds m.mu.
func (m *Master) applyRecordLocked(rec *proto.ReplRecord) error {
	switch rec.Kind {
	case proto.ReplServer:
		s, ok := m.servers[rec.Node]
		if !ok {
			s = &serverState{node: rec.Node, alloc: newSpaceAllocator(rec.Capacity)}
			m.servers[rec.Node] = s
		}
		if s.rkey != rec.RKey {
			for _, rs := range m.regionsByName {
				patchRKey(rs.info.Extents, rec.Node, rec.RKey)
				for _, rep := range rs.info.Replicas {
					patchRKey(rep, rec.Node, rec.RKey)
				}
			}
		}
		s.rkey = rec.RKey
		s.epoch = rec.ServerEpoch
		s.alive = true
		s.lastBeat = time.Now()
		m.updateAliveGauge()
	case proto.ReplServerDead:
		if s, ok := m.servers[rec.Node]; ok {
			s.alive = false
		}
		m.updateAliveGauge()
	case proto.ReplServerAlive:
		if s, ok := m.servers[rec.Node]; ok {
			s.alive = true
			s.lastBeat = time.Now()
		}
		m.updateAliveGauge()
	case proto.ReplRegion:
		if rec.Info == nil {
			return errBadRecord
		}
		info := rec.Info.Clone()
		rs := newRegionState(info)
		rs.allocToken = rec.Token
		copyInto(rs.degraded, rec.DegradedCopies)
		m.regionsByName[info.Name] = rs
		if proto.RegionID(info.ID)+1 > m.nextID {
			m.nextID = info.ID + 1
		}
		m.carveRegionLocked(rs)
		m.ctr.regions.Set(int64(len(m.regionsByName)))
	case proto.ReplRegionFree:
		rs, ok := m.regionsByName[rec.Name]
		if !ok {
			return errBadRecord
		}
		m.freeExtents(rs.info.Extents)
		for _, rep := range rs.info.Replicas {
			m.freeExtents(rep)
		}
		delete(m.regionsByName, rec.Name)
		m.ctr.regions.Set(int64(len(m.regionsByName)))
	case proto.ReplMapCount:
		rs, ok := m.regionsByName[rec.Name]
		if !ok {
			return errBadRecord
		}
		rs.mapCount = rec.Count
	case proto.ReplDirty:
		rs, ok := m.regionsByName[rec.Name]
		if !ok || rec.Copy >= rs.copyCount() {
			return errBadRecord
		}
		wasDirty := rs.dirty[rec.Copy]
		rs.markDirty(rec.Copy)
		if rec.Provisional && !wasDirty {
			rs.deathEpoch[rec.Copy] = rs.dirtyEpoch[rec.Copy]
		}
	case proto.ReplClean:
		rs, ok := m.regionsByName[rec.Name]
		if !ok || rec.Copy >= rs.copyCount() {
			return errBadRecord
		}
		rs.dirty[rec.Copy] = false
		rs.deathEpoch[rec.Copy] = 0
	case proto.ReplLost:
		rs, ok := m.regionsByName[rec.Name]
		if !ok {
			return errBadRecord
		}
		rs.lost = rec.Lost
	case proto.ReplCommit:
		rs, ok := m.regionsByName[rec.Name]
		if !ok || rec.Copy >= rs.copyCount() {
			return errBadRecord
		}
		if len(rec.Extents) > 0 {
			m.freeExtents(rs.copyExtents(rec.Copy))
			rs.setCopyExtents(rec.Copy, append([]proto.Extent(nil), rec.Extents...))
			rs.info.Generation = rec.Generation
			for _, x := range rec.Extents {
				if s, have := m.servers[x.Server]; have {
					_ = s.alloc.AllocAt(x.Addr, x.Len)
				}
			}
		}
		if !rec.StillDirty {
			rs.dirty[rec.Copy] = false
			rs.deathEpoch[rec.Copy] = 0
		}
		rs.degraded[rec.Copy] = rec.Degraded
		rs.lost = false
	default:
		return errBadRecord
	}
	return nil
}

// electionLoop runs on every replica with peers configured. A standby
// that stops hearing replication traffic for HeartbeatMisses intervals
// starts a candidacy: it defers to any reachable earlier peer, waits out
// the primary lease on virtual time (advancing the virtual clock by
// pinging the cluster's memory servers — which doubles as a reachability
// check), and then assumes the primaryship at a bumped epoch.
func (m *Master) electionLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		if m.role != roleStandby {
			m.mu.Unlock()
			continue
		}
		silentFor := time.Since(m.lastPrimaryWall)
		leaseStartV := m.lastPrimaryV
		epoch := m.epoch
		m.mu.Unlock()
		if silentFor < time.Duration(m.cfg.HeartbeatMisses)*m.cfg.HeartbeatInterval {
			continue
		}
		if m.deferToEarlierPeer() {
			continue
		}
		if !m.waitOutLease(leaseStartV, epoch) {
			continue
		}
		m.promote(epoch)
	}
}

// deferToEarlierPeer probes every configured peer ordered before this node
// and yields the candidacy when one answers: the earliest live replica
// wins, so two standbys cannot promote concurrently.
func (m *Master) deferToEarlierPeer() bool {
	m.mu.Lock()
	deadLeader := m.leader
	m.mu.Unlock()
	for _, p := range m.cfg.Peers {
		if p == m.cfg.Node {
			return false
		}
		if p == deadLeader {
			// The silent primary itself does not earn deference — that it
			// stopped streaming is the whole reason we are here. If it is
			// actually alive but partitioned from us, epoch fencing sorts
			// the collision out after the heal.
			continue
		}
		if _, err := m.probeStatus(p); err == nil {
			return true
		}
	}
	return false
}

// probeStatus asks one peer for its MtMasterStatus over a throwaway
// connection.
func (m *Master) probeStatus(peer simnet.NodeID) (proto.MasterStatus, error) {
	ctx, cancel := m.stopCtx(m.cfg.HeartbeatInterval)
	defer cancel()
	conn, err := rpc.Dial(ctx, m.dev, peer, proto.MasterService, nil, m.cfg.RPC)
	if err != nil {
		return proto.MasterStatus{}, err
	}
	defer conn.Close()
	payload, _, err := conn.Call(ctx, proto.MtMasterStatus, nil)
	if err != nil {
		return proto.MasterStatus{}, err
	}
	d := rpc.NewDecoder(payload)
	st := proto.DecodeMasterStatus(d)
	return st, d.Err()
}

// waitOutLease blocks the candidacy until the old primary's lease has
// expired on *virtual* time. Virtual time only advances through modeled
// transfers, so the candidate generates them: MtPing round trips to the
// cluster's memory servers, which double as confirmation the candidate
// can actually reach the data plane it is about to coordinate. Returns
// false when the candidacy aborted (a primary resurfaced, or shutdown).
// A negative LeaseTerm skips the wait (unit-test harnesses whose fake
// servers speak no MtPing); zero registered servers means no client can
// hold a layout lease either, so promotion is immediate.
func (m *Master) waitOutLease(leaseStartV simnet.VTime, epoch uint64) bool {
	if m.cfg.LeaseTerm < 0 {
		return true
	}
	target := leaseStartV.Add(m.cfg.LeaseTerm)
	for {
		select {
		case <-m.stop:
			return false
		default:
		}
		m.mu.Lock()
		aborted := m.role != roleStandby || m.epoch != epoch || m.lastPrimaryV != leaseStartV
		var alive []simnet.NodeID
		for _, s := range m.servers {
			if s.alive {
				alive = append(alive, s.node)
			}
		}
		m.mu.Unlock()
		if aborted {
			return false
		}
		if m.vnow() >= target {
			return true
		}
		if len(alive) == 0 {
			return true
		}
		advanced := false
		for _, node := range alive {
			if m.pingServer(node) == nil {
				advanced = true
			}
			if m.vnow() >= target {
				return true
			}
		}
		if !advanced {
			// Every ping failed: we may be the partitioned one. Do not
			// promote blind; retry after a beat.
			m.sleepBeat()
			continue
		}
		// The data plane answered, so this candidate is not the isolated
		// party — now it simply sits out the remainder of the lease. The
		// wait is pure time: lift the virtual frontier to the expiry in one
		// step, exactly as a transfer of equal duration would, so every
		// layout lease the dead primary could have granted is expired by
		// the time we take over.
		m.dev.Network().Fabric().WaitUntil(target)
	}
}

// pingServer issues one MtPing round trip on the memory server's control
// endpoint (the same cached connections the repair plane uses).
func (m *Master) pingServer(node simnet.NodeID) error {
	conn, err := m.ctrlConn(node)
	if err != nil {
		return err
	}
	ctx, cancel := m.stopCtx(m.cfg.HeartbeatInterval)
	defer cancel()
	if _, _, err := conn.Call(ctx, proto.MtPing, nil); err != nil {
		m.dropCtrlConn(node, conn)
		return err
	}
	return nil
}

// promote assumes the primaryship at a bumped epoch. The replicated
// server liveness is preserved (a server the old primary declared dead
// stays dead, so provisional dirtiness and its absolution survive the
// failover), but alive servers get a fresh heartbeat grace so the monitor
// does not sweep them before they re-home to us.
func (m *Master) promote(oldEpoch uint64) {
	startV := m.vnow()
	m.mu.Lock()
	if m.role != roleStandby || m.epoch != oldEpoch {
		m.mu.Unlock()
		return
	}
	m.epoch++
	m.role = rolePrimary
	m.leader = m.cfg.Node
	now := time.Now()
	for _, s := range m.servers {
		if s.alive {
			s.lastBeat = now
		}
	}
	m.rescheduleStalledLocked()
	m.ctr.failovers.Inc()
	m.setRoleGaugesLocked()
	m.startPrimaryLocked()
	m.mu.Unlock()

	// The failover is rare and always significant: pin its span into the
	// flight recorder so post-mortems see exactly when the takeover ran.
	tracer := m.tel.Tracer()
	span := telemetry.Span{
		Trace:  tracer.ProvisionalTrace(),
		ID:     tracer.NewSpan(),
		Name:   "master.failover",
		StartV: startV,
		EndV:   m.vnow(),
	}
	tracer.Record(span)
	tracer.Pin([]telemetry.Span{span})
}
