// Package master implements RStore's coordinator.
//
// The master owns all control-plane state: the registry of memory servers
// and their donated arenas, the hierarchical region namespace, the striped
// extent allocation for every region, and liveness tracking via
// heartbeats. It never touches the data path — after a client maps a
// region, reads and writes go straight to the memory servers' NICs. This
// is the paper's separation philosophy applied to the distributed setting.
package master

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rstore/internal/health"
	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Master-level errors, surfaced to clients through RPC remote errors with
// these exact prefixes (matched by string on the client side of the wire).
var (
	ErrRegionExists   = errors.New("master: region already exists")
	ErrRegionNotFound = errors.New("master: region not found")
	ErrRegionMapped   = errors.New("master: region still mapped")
	ErrNoServers      = errors.New("master: no alive memory servers")
	ErrInsufficient   = errors.New("master: insufficient cluster memory")
)

// Config tunes the master.
type Config struct {
	// Node is the fabric node the master runs on.
	Node simnet.NodeID
	// HeartbeatInterval is how often servers are expected to beat and how
	// often liveness is evaluated. Default 100ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many missed intervals mark a server dead.
	// Default 3.
	HeartbeatMisses int
	// DefaultStripeUnit is used when an allocation does not specify one.
	// Default 1 MiB.
	DefaultStripeUnit uint64
	// RepairConcurrency is how many repair tasks run at once. Default 2.
	RepairConcurrency int
	// RepairChunk is the per-read transfer size of repair pulls. Default
	// 256 KiB.
	RepairChunk uint64
	// RepairRateBytesPerSec caps each repair pull's bandwidth on virtual
	// time. Default 1 GiB/s.
	RepairRateBytesPerSec uint64
	// RepairRetryDelay is how long a failed repair task waits before
	// retrying. Default 5x HeartbeatInterval.
	RepairRetryDelay time.Duration
	// RepairPullHook, when set, runs immediately before each repair pull
	// RPC with the source extent about to be read. It is a fault-injection
	// point: chaos tests use it to kill the repair source mid-transfer at a
	// deterministic moment. Nil in production.
	RepairPullHook func(src proto.Extent)
	// Peers is the full master replication group (this node included), in
	// election-priority order: on primary silence the earliest live peer
	// wins the candidacy. Empty means an unreplicated single master — no
	// log streaming, no elections, no fencing overhead.
	Peers []simnet.NodeID
	// LeaseTerm bounds how long clients may serve from a cached region
	// layout, on virtual time; a promoted standby waits this long past the
	// old primary's last observed activity before taking writes, so no
	// lease issued by the old primary can outlive a conflicting new layout.
	// 0 means the 250ms default; negative disables leases entirely (both
	// the client expiry and the candidate's wait).
	LeaseTerm time.Duration
	// HealthRules is the rule set the health engine evaluates every
	// monitor tick (primary only). Nil means health.DefaultRules().
	HealthRules []health.Rule
	// RPC tunes the control connection buffering.
	RPC rpc.Options
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.DefaultStripeUnit == 0 {
		c.DefaultStripeUnit = 1 << 20
	}
	if c.RepairConcurrency <= 0 {
		c.RepairConcurrency = 2
	}
	if c.RepairChunk == 0 {
		c.RepairChunk = 256 << 10
	}
	if c.RepairRateBytesPerSec == 0 {
		c.RepairRateBytesPerSec = 1 << 30
	}
	if c.RepairRetryDelay <= 0 {
		c.RepairRetryDelay = 5 * c.HeartbeatInterval
	}
	if c.LeaseTerm == 0 {
		c.LeaseTerm = 250 * time.Millisecond
	}
	return c
}

// serverState is the master's view of one memory server.
type serverState struct {
	node     simnet.NodeID
	rkey     uint32
	alloc    *spaceAllocator
	alive    bool
	lastBeat time.Time
	// epoch counts incarnations: it is bumped every time the server
	// re-registers after having been marked dead.
	epoch uint64
	// stats is the latest telemetry snapshot the server piggybacked on a
	// heartbeat, kept marshaled and forwarded verbatim by MtStats.
	stats []byte
	// windows is the latest windowed telemetry the server piggybacked,
	// decoded on receipt; hasWindows marks that at least one arrived. A
	// dead server's windows freeze at their last beat (the staleness model
	// the health rules are written against).
	windows    telemetry.WindowSnapshot
	hasWindows bool
}

// regionState tracks a region, its map refcount, and the repair plane's
// per-copy bookkeeping. Copy index 0 is the primary, 1.. the replicas.
type regionState struct {
	info     *proto.RegionInfo
	mapCount int
	// dirty marks copies that missed writes or lost contents; a dirty copy
	// must not serve as a repair source.
	dirty []bool
	// dirtyEpoch counts dirty transitions per copy. Repair snapshots it at
	// start and only clears dirty at completion if unchanged, so a write
	// that degrades mid-repair re-queues instead of being lost.
	dirtyEpoch []uint64
	// deathEpoch, when nonzero, records the dirtyEpoch value at which a
	// heartbeat-loss sweep dirtied the copy and nothing else had: the
	// dirtiness is provisional (the server may be starved, not dead), and
	// is absolved if the same incarnation heartbeats again before any
	// other cause bumps the epoch. Confirmed content loss (a dead server
	// re-registering with an empty arena) never sets it.
	deathEpoch []uint64
	// underRepair marks copies with a repair task in flight.
	underRepair []bool
	// degraded marks copies whose placement shares a node with another
	// copy (the anti-affinity fallback); repair re-homes them when capacity
	// returns.
	degraded []bool
	// lost means no clean copy on live servers remains.
	lost bool
	// allocToken is the idempotency token the allocating client stamped on
	// MtAlloc. A post-failover retry of the same allocation presents the
	// same token and gets the existing region back instead of
	// ErrRegionExists.
	allocToken uint64
}

func newRegionState(info *proto.RegionInfo) *regionState {
	n := 1 + len(info.Replicas)
	return &regionState{
		info:        info,
		dirty:       make([]bool, n),
		dirtyEpoch:  make([]uint64, n),
		deathEpoch:  make([]uint64, n),
		underRepair: make([]bool, n),
		degraded:    make([]bool, n),
	}
}

// copyExtents returns copy i's extent slice (aliasing the RegionInfo).
func (rs *regionState) copyExtents(i int) []proto.Extent {
	if i == 0 {
		return rs.info.Extents
	}
	return rs.info.Replicas[i-1]
}

func (rs *regionState) copyCount() int { return 1 + len(rs.info.Replicas) }

// setCopyExtents swaps copy i's extents in the metadata.
func (rs *regionState) setCopyExtents(i int, xs []proto.Extent) {
	if i == 0 {
		rs.info.Extents = xs
	} else {
		rs.info.Replicas[i-1] = xs
	}
}

// markDirty flags copy i and bumps its dirty epoch. The absolution record
// resets: whoever marks dirty for a provisional cause re-records it after.
// Caller holds m.mu.
func (rs *regionState) markDirty(i int) {
	rs.dirty[i] = true
	rs.dirtyEpoch[i]++
	rs.deathEpoch[i] = 0
}

// Master is the RStore coordinator.
type Master struct {
	cfg Config
	dev *rdma.Device
	pd  *rdma.PD
	srv *rpc.Server
	tel *telemetry.Registry
	ctr masterCounters

	mu            sync.Mutex
	servers       map[simnet.NodeID]*serverState
	regionsByName map[string]*regionState
	nextID        proto.RegionID

	// Replication-group state (all guarded by mu). epoch is the master
	// epoch — bumped once per failover, it fences stale primaries. leader
	// is the node this replica believes currently leads (-1 unknown).
	// lastPrimary{Wall,V} track the last evidence of a live primary, on
	// the wall clock (election trigger) and virtual time (lease wait);
	// applySeq is the follower's position in the replicated log.
	role            role
	epoch           uint64
	leader          simnet.NodeID
	lastPrimaryWall time.Time
	lastPrimaryV    simnet.VTime
	applySeq        uint64
	repl            repl

	// engine is the health rule engine, evaluated after every monitor tick
	// while this replica is primary (see health.go).
	engine *health.Engine

	repair repairQueue
	// ctrlConns are the repair plane's connections to the memory servers'
	// control endpoints, guarded separately so pulls never hold m.mu.
	ctrlMu    sync.Mutex
	ctrlConns map[simnet.NodeID]*rpc.Conn

	stop chan struct{}
	wg   sync.WaitGroup
}

// masterCounters are the control-plane telemetry handles.
type masterCounters struct {
	allocs          *telemetry.Counter
	allocFails      *telemetry.Counter
	frees           *telemetry.Counter
	maps            *telemetry.Counter
	remaps          *telemetry.Counter
	heartbeats      *telemetry.Counter
	deadTransitions *telemetry.Counter
	revives         *telemetry.Counter
	statsRequests   *telemetry.Counter
	traceFetches    *telemetry.Counter
	regions         *telemetry.Gauge
	serversAlive    *telemetry.Gauge

	failovers     *telemetry.Counter
	fencedRejects *telemetry.Counter
	replRecords   *telemetry.Counter
	roleGauge     *telemetry.Gauge
	epochGauge    *telemetry.Gauge

	repairsStarted    *telemetry.Counter
	repairsDone       *telemetry.Counter
	repairsFailed     *telemetry.Counter
	repairBytes       *telemetry.Counter
	rehomes           *telemetry.Counter
	placementDegraded *telemetry.Counter
	degradedReports   *telemetry.Counter
	regionsLost       *telemetry.Counter
	repairQueueDepth  *telemetry.Gauge
	repairDuration    *telemetry.Histogram

	healthEvals    *telemetry.Counter
	healthFired    *telemetry.Counter
	healthResolved *telemetry.Counter
	healthRequests *telemetry.Counter
}

// Start creates the master's RPC service on the device and begins serving
// and monitoring heartbeats.
func Start(dev *rdma.Device, cfg Config) (*Master, error) {
	cfg = cfg.withDefaults()
	cfg.Node = dev.Node()
	srv, err := rpc.NewServer(dev, proto.MasterService, nil, cfg.RPC)
	if err != nil {
		return nil, fmt.Errorf("master: %w", err)
	}
	tel := dev.Telemetry()
	m := &Master{
		cfg: cfg,
		dev: dev,
		srv: srv,
		tel: tel,
		ctr: masterCounters{
			allocs:          tel.Counter("master.allocs"),
			allocFails:      tel.Counter("master.alloc_fails"),
			frees:           tel.Counter("master.frees"),
			maps:            tel.Counter("master.maps"),
			remaps:          tel.Counter("master.remaps"),
			heartbeats:      tel.Counter("master.heartbeats"),
			deadTransitions: tel.Counter("master.dead_transitions"),
			revives:         tel.Counter("master.revives"),
			statsRequests:   tel.Counter("master.stats_requests"),
			traceFetches:    tel.Counter("master.trace_fetches"),
			regions:         tel.Gauge("master.regions"),
			serversAlive:    tel.Gauge("master.servers_alive"),

			failovers:     tel.Counter("master.failovers"),
			fencedRejects: tel.Counter("master.fenced_rejects"),
			replRecords:   tel.Counter("master.repl_records"),
			roleGauge:     tel.Gauge("master.role"),
			epochGauge:    tel.Gauge("master.epoch"),

			repairsStarted:    tel.Counter("master.repairs_started"),
			repairsDone:       tel.Counter("master.repairs_done"),
			repairsFailed:     tel.Counter("master.repairs_failed"),
			repairBytes:       tel.Counter("master.repair_bytes"),
			rehomes:           tel.Counter("master.rehomes"),
			placementDegraded: tel.Counter("master.placement_degraded"),
			degradedReports:   tel.Counter("master.degraded_reports"),
			regionsLost:       tel.Counter("master.regions_lost"),
			repairQueueDepth:  tel.Gauge("master.repair_queue_depth"),
			repairDuration:    tel.Histogram("master.repair_duration"),

			healthEvals:    tel.Counter("master.health_evals"),
			healthFired:    tel.Counter("master.health_alerts_fired"),
			healthResolved: tel.Counter("master.health_alerts_resolved"),
			healthRequests: tel.Counter("master.health_requests"),
		},
		servers:       make(map[simnet.NodeID]*serverState),
		regionsByName: make(map[string]*regionState),
		nextID:        1,
		ctrlConns:     make(map[simnet.NodeID]*rpc.Conn),
		stop:          make(chan struct{}),
	}
	m.pd = dev.AllocPD()
	srv.Handle(proto.MtRegisterServer, m.handleRegisterServer)
	srv.Handle(proto.MtHeartbeat, m.handleHeartbeat)
	srv.Handle(proto.MtAlloc, m.handleAlloc)
	srv.Handle(proto.MtMap, m.handleMap)
	srv.Handle(proto.MtUnmap, m.handleUnmap)
	srv.Handle(proto.MtFree, m.handleFree)
	srv.Handle(proto.MtClusterInfo, m.handleClusterInfo)
	srv.Handle(proto.MtListRegions, m.handleListRegions)
	srv.Handle(proto.MtRemap, m.handleRemap)
	srv.Handle(proto.MtStats, m.handleStats)
	srv.Handle(proto.MtRegionStatus, m.handleRegionStatus)
	srv.Handle(proto.MtReportDegraded, m.handleReportDegraded)
	srv.Handle(proto.MtTraceFetch, m.handleTraceFetch)
	srv.Handle(proto.MtMasterStatus, m.handleMasterStatus)
	srv.Handle(proto.MtReplHello, m.handleReplHello)
	srv.Handle(proto.MtReplAppend, m.handleReplAppend)
	srv.Handle(proto.MtHealth, m.handleHealth)
	rules := cfg.HealthRules
	if rules == nil {
		rules = health.DefaultRules()
	}
	m.engine = health.NewEngine(rules)
	m.repair.init()
	m.repl.init()

	// The group boots with a known leader: the first configured peer. An
	// unreplicated master (no peers) is its own permanent primary and all
	// of the replication machinery stays dormant.
	m.leader = cfg.Node
	m.role = rolePrimary
	if len(cfg.Peers) > 0 && cfg.Peers[0] != cfg.Node {
		m.role = roleStandby
		m.leader = cfg.Peers[0]
	}
	m.lastPrimaryWall = time.Now()
	m.lastPrimaryV = m.vnow()
	m.setRoleGaugesLocked()
	srv.Serve()

	m.wg.Add(1)
	go m.monitor()
	for i := 0; i < cfg.RepairConcurrency; i++ {
		m.wg.Add(1)
		go m.repairWorker()
	}
	if len(cfg.Peers) > 0 {
		if m.role == rolePrimary {
			m.mu.Lock()
			m.startPrimaryLocked()
			m.mu.Unlock()
		}
		m.wg.Add(1)
		go m.electionLoop()
	}
	return m, nil
}

// Status returns the replica's current role name, master epoch, and the
// node it believes leads the group.
func (m *Master) Status() (role string, epoch uint64, leader simnet.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.role.String(), m.epoch, m.leader
}

// Node returns the fabric node the master serves on.
func (m *Master) Node() simnet.NodeID { return m.cfg.Node }

// Telemetry returns the master node's metric registry.
func (m *Master) Telemetry() *telemetry.Registry { return m.tel }

// Close stops serving and monitoring.
func (m *Master) Close() {
	select {
	case <-m.stop:
		return
	default:
	}
	close(m.stop)
	m.wg.Wait()
	m.closeCtrlConns()
	m.srv.Close()
}

// monitor marks servers dead when heartbeats stop arriving.
func (m *Master) monitor() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			deadline := now.Add(-time.Duration(m.cfg.HeartbeatMisses) * m.cfg.HeartbeatInterval)
			// Snapshot the master's own windowed telemetry before taking
			// m.mu: the registry locks are leaves and must stay that way.
			ownWin := m.tel.WindowSnapshot()
			m.mu.Lock()
			// Only the primary renders liveness verdicts: a standby's view
			// of heartbeat recency is secondhand (servers beat at the
			// primary), so it would sweep everything spuriously.
			if m.role != rolePrimary {
				m.mu.Unlock()
				continue
			}
			var died []simnet.NodeID
			for _, s := range m.servers {
				if s.alive && s.lastBeat.Before(deadline) {
					s.alive = false
					m.ctr.deadTransitions.Inc()
					died = append(died, s.node)
				}
			}
			if len(died) > 0 {
				for _, n := range died {
					m.appendLocked(proto.ReplRecord{Kind: proto.ReplServerDead, Node: n})
				}
				m.scheduleRepairsLocked(died, true)
			}
			m.updateAliveGauge()
			in := m.healthInputLocked(now, ownWin)
			m.mu.Unlock()
			m.evalHealth(in)
		}
	}
}

// AliveServers returns the nodes currently considered alive.
func (m *Master) AliveServers() []simnet.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []simnet.NodeID
	for id, s := range m.servers {
		if s.alive {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServerAlive reports the master's current liveness verdict for a node.
func (m *Master) ServerAlive(node simnet.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.servers[node]
	return ok && s.alive
}

// RegionCount returns how many regions exist.
func (m *Master) RegionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regionsByName)
}

func (m *Master) handleRegisterServer(_ context.Context, from simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	capacity := req.U64()
	rkey := req.U32()
	if err := req.Err(); err != nil {
		return nil, err
	}
	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	s, ok := m.servers[from]
	revived := false
	if !ok {
		s = &serverState{node: from, alloc: newSpaceAllocator(capacity)}
		m.servers[from] = s
	} else if !s.alive {
		// A dead server coming back is a new incarnation: its arena may
		// have lost all prior contents, so advertise the generation change.
		s.epoch++
		m.ctr.revives.Inc()
		revived = true
	}
	if s.rkey != rkey {
		// The arena was re-registered under a new key (server bounce). The
		// master owns the allocator, so extent addresses stay valid in the
		// fresh same-capacity arena — but every region pointing at this
		// server must be rewritten to the new key or one-sided access would
		// be refused.
		for _, rs := range m.regionsByName {
			patchRKey(rs.info.Extents, from, rkey)
			for _, rep := range rs.info.Replicas {
				patchRKey(rep, from, rkey)
			}
		}
	}
	s.rkey = rkey
	s.alive = true
	s.lastBeat = time.Now()
	m.appendLocked(proto.ReplRecord{
		Kind:        proto.ReplServer,
		Node:        from,
		Capacity:    capacity,
		RKey:        rkey,
		ServerEpoch: s.epoch,
	})
	if revived {
		// The revived arena is empty: every copy with an extent there lost
		// its bytes, so mark them dirty and repair in place. The loss is
		// confirmed (a re-registration is a new incarnation), never absolved.
		m.scheduleRepairsLocked([]simnet.NodeID{from}, false)
	}
	// Fresh capacity may let the repair plane re-home copies stuck on
	// degraded placement, and retry repairs that failed for space.
	m.rescheduleStalledLocked()
	m.updateAliveGauge()
	commit = m.commitSeqLocked()
	return &rpc.Encoder{}, nil
}

// updateAliveGauge recomputes the alive-server gauge. Caller holds m.mu.
func (m *Master) updateAliveGauge() {
	var alive int64
	for _, s := range m.servers {
		if s.alive {
			alive++
		}
	}
	m.ctr.serversAlive.Set(alive)
}

// patchRKey rewrites the rkey of every extent on node.
func patchRKey(xs []proto.Extent, node simnet.NodeID, rkey uint32) {
	for i := range xs {
		if xs[i].Server == node {
			xs[i].RKey = rkey
		}
	}
}

func (m *Master) handleHeartbeat(_ context.Context, from simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	// Heartbeats optionally piggyback the server's telemetry snapshot and,
	// after that, its windowed telemetry; an empty payload (older senders,
	// tests driving the wire directly) is a plain liveness beat.
	var stats, win []byte
	if req.Remaining() > 0 {
		stats = append([]byte(nil), req.Bytes32()...)
		if err := req.Err(); err != nil {
			return nil, err
		}
	}
	if req.Remaining() > 0 {
		win = append([]byte(nil), req.Bytes32()...)
		if err := req.Err(); err != nil {
			return nil, err
		}
	}
	m.ctr.heartbeats.Inc()
	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	s, ok := m.servers[from]
	if !ok {
		return nil, fmt.Errorf("master: heartbeat from unregistered server %v", from)
	}
	s.lastBeat = time.Now()
	wasDead := !s.alive
	s.alive = true
	if stats != nil {
		s.stats = stats
	}
	if win != nil {
		if err := s.windows.UnmarshalBinary(win); err == nil {
			s.hasWindows = true
		}
	}
	if wasDead {
		// The same incarnation beat again without re-registering: the
		// death verdict was heartbeat starvation and the arena is intact.
		// Lift the provisional dirtiness the sweep applied, and re-queue
		// any repairs that stalled for lack of capacity or a clean source.
		m.ctr.revives.Inc()
		m.appendLocked(proto.ReplRecord{Kind: proto.ReplServerAlive, Node: from})
		m.absolveDeathDirtyLocked(from)
		m.rescheduleStalledLocked()
		commit = m.commitSeqLocked()
	}
	m.updateAliveGauge()
	return &rpc.Encoder{}, nil
}

// pickServers returns up to width alive servers ordered by free space
// (descending), excluding any in the exclude set.
func (m *Master) pickServers(width int, exclude map[simnet.NodeID]bool) []*serverState {
	var alive []*serverState
	for _, s := range m.servers {
		if s.alive && !exclude[s.node] {
			alive = append(alive, s)
		}
	}
	sort.Slice(alive, func(i, j int) bool {
		fi, fj := alive[i].alloc.FreeBytes(), alive[j].alloc.FreeBytes()
		if fi != fj {
			return fi > fj
		}
		return alive[i].node < alive[j].node
	})
	if width < len(alive) {
		alive = alive[:width]
	}
	return alive
}

// allocateCopy places one copy of the region over the chosen servers,
// returning the extents or rolling back on failure.
func allocateCopy(servers []*serverState, size, stripe uint64) ([]proto.Extent, error) {
	sizes, err := proto.ExtentSizes(size, stripe, len(servers))
	if err != nil {
		return nil, err
	}
	extents := make([]proto.Extent, 0, len(servers))
	for k, s := range servers {
		off, err := s.alloc.Alloc(sizes[k])
		if err != nil {
			// Roll back what we grabbed so far.
			for j := 0; j < k; j++ {
				_ = servers[j].alloc.Free(extents[j].Addr, extents[j].Len)
			}
			return nil, fmt.Errorf("%w: server %v: %v", ErrInsufficient, s.node, err)
		}
		extents = append(extents, proto.Extent{
			Server: s.node,
			RKey:   s.rkey,
			Addr:   off,
			Len:    sizes[k],
		})
	}
	return extents, nil
}

func (m *Master) freeExtents(extents []proto.Extent) {
	for _, x := range extents {
		if s, ok := m.servers[x.Server]; ok {
			_ = s.alloc.Free(x.Addr, x.Len)
		}
	}
}

func (m *Master) handleAlloc(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	a := proto.DecodeAllocRequest(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	if a.Name == "" {
		return nil, errors.New("master: empty region name")
	}
	if a.StripeUnit == 0 {
		a.StripeUnit = m.cfg.DefaultStripeUnit
	}

	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	if rs, ok := m.regionsByName[a.Name]; ok {
		if a.Token != 0 && rs.allocToken == a.Token {
			// The same allocation, retried — the client's first attempt
			// committed but its response was lost (e.g. to a failover).
			// Idempotence: hand back the region it already owns.
			var e rpc.Encoder
			proto.EncodeRegionInfo(&e, rs.info)
			return &e, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrRegionExists, a.Name)
	}

	width := a.StripeWidth
	primaries := m.pickServers(widthOrAll(width, len(m.servers)), nil)
	if len(primaries) == 0 {
		m.ctr.allocFails.Inc()
		return nil, ErrNoServers
	}
	extents, err := allocateCopy(primaries, a.Size, a.StripeUnit)
	if err != nil {
		m.ctr.allocFails.Inc()
		return nil, err
	}

	info := &proto.RegionInfo{
		ID:         m.nextID,
		Name:       a.Name,
		Size:       a.Size,
		StripeUnit: a.StripeUnit,
		Extents:    extents,
	}
	m.nextID++

	// Replicas go on servers disjoint from the primary copy when the
	// cluster is big enough; otherwise placement falls back to any alive
	// server with space.
	used := make(map[simnet.NodeID]bool, len(primaries))
	for _, s := range primaries {
		used[s.node] = true
	}
	degradedReplicas := make([]bool, a.Replicas)
	for r := 0; r < a.Replicas; r++ {
		repServers := m.pickServers(len(primaries), used)
		if len(repServers) < len(primaries) {
			// Not enough disjoint servers: fall back to the unrestricted
			// set. The copy still exists but shares nodes with another copy,
			// so it adds no failure domain — record that, surface it in
			// telemetry, and let the repair plane re-home it when capacity
			// returns instead of silently pretending full durability.
			repServers = m.pickServers(len(primaries), nil)
			degradedReplicas[r] = true
		}
		if len(repServers) == 0 {
			m.freeExtents(info.Extents)
			for _, rep := range info.Replicas {
				m.freeExtents(rep)
			}
			m.ctr.allocFails.Inc()
			return nil, fmt.Errorf("%w: replica %d", ErrNoServers, r)
		}
		repExtents, err := allocateCopy(repServers, a.Size, a.StripeUnit)
		if err != nil {
			m.freeExtents(info.Extents)
			for _, rep := range info.Replicas {
				m.freeExtents(rep)
			}
			m.ctr.allocFails.Inc()
			return nil, err
		}
		for _, s := range repServers {
			used[s.node] = true
		}
		info.Replicas = append(info.Replicas, repExtents)
	}

	rs := newRegionState(info)
	rs.allocToken = a.Token
	for r, deg := range degradedReplicas {
		if deg {
			rs.degraded[1+r] = true
			m.ctr.placementDegraded.Inc()
		}
	}
	m.regionsByName[a.Name] = rs
	m.ctr.allocs.Inc()
	m.ctr.regions.Set(int64(len(m.regionsByName)))
	m.appendLocked(proto.ReplRecord{
		Kind:           proto.ReplRegion,
		Region:         info.ID,
		Name:           info.Name,
		Info:           info.Clone(),
		Token:          a.Token,
		DegradedCopies: append([]bool(nil), rs.degraded...),
	})
	commit = m.commitSeqLocked()
	var e rpc.Encoder
	proto.EncodeRegionInfo(&e, info)
	return &e, nil
}

func widthOrAll(width, all int) int {
	if width <= 0 || width > all {
		return all
	}
	return width
}

func (m *Master) handleMap(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	name := req.String()
	if err := req.Err(); err != nil {
		return nil, err
	}
	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	rs, ok := m.regionsByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrRegionNotFound, name)
	}
	rs.mapCount++
	m.ctr.maps.Inc()
	m.appendLocked(proto.ReplRecord{Kind: proto.ReplMapCount, Name: name, Count: rs.mapCount})
	commit = m.commitSeqLocked()
	var e rpc.Encoder
	proto.EncodeRegionInfo(&e, rs.info)
	e.U64(m.leaseNanosLocked())
	return &e, nil
}

// leaseNanosLocked returns the layout lease term stamped on Map/Remap
// responses, in nanoseconds of virtual time (0 = no lease discipline, the
// layout never self-expires). Caller holds m.mu.
func (m *Master) leaseNanosLocked() uint64 {
	if m.cfg.LeaseTerm < 0 || len(m.cfg.Peers) == 0 {
		return 0
	}
	return uint64(m.cfg.LeaseTerm)
}

// handleRemap returns a region's metadata without touching its map count:
// the idempotent refresh a recovering client repeats safely.
func (m *Master) handleRemap(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	name := req.String()
	if err := req.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	rs, ok := m.regionsByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrRegionNotFound, name)
	}
	m.ctr.remaps.Inc()
	var e rpc.Encoder
	proto.EncodeRegionInfo(&e, rs.info)
	e.U64(m.leaseNanosLocked())
	return &e, nil
}

func (m *Master) handleUnmap(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	name := req.String()
	if err := req.Err(); err != nil {
		return nil, err
	}
	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	rs, ok := m.regionsByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrRegionNotFound, name)
	}
	if rs.mapCount > 0 {
		rs.mapCount--
		m.appendLocked(proto.ReplRecord{Kind: proto.ReplMapCount, Name: name, Count: rs.mapCount})
		commit = m.commitSeqLocked()
	}
	return &rpc.Encoder{}, nil
}

func (m *Master) handleFree(_ context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	name := req.String()
	if err := req.Err(); err != nil {
		return nil, err
	}
	var commit uint64
	defer func() { m.repl.waitCommitted(commit) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	rs, ok := m.regionsByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrRegionNotFound, name)
	}
	if rs.mapCount > 0 {
		return nil, fmt.Errorf("%w: %q has %d mappings", ErrRegionMapped, name, rs.mapCount)
	}
	m.freeExtents(rs.info.Extents)
	for _, rep := range rs.info.Replicas {
		m.freeExtents(rep)
	}
	delete(m.regionsByName, name)
	m.ctr.frees.Inc()
	m.ctr.regions.Set(int64(len(m.regionsByName)))
	m.appendLocked(proto.ReplRecord{Kind: proto.ReplRegionFree, Name: name})
	commit = m.commitSeqLocked()
	return &rpc.Encoder{}, nil
}

func (m *Master) handleClusterInfo(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	nodes := make([]simnet.NodeID, 0, len(m.servers))
	for id := range m.servers {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var e rpc.Encoder
	e.U32(uint32(len(nodes)))
	for _, id := range nodes {
		s := m.servers[id]
		info := proto.ServerInfo{
			Node:     s.node,
			Capacity: s.alloc.Capacity(),
			Used:     s.alloc.Used(),
			Alive:    s.alive,
			Epoch:    s.epoch,
		}
		info.Encode(&e)
	}
	return &e, nil
}

// handleStats returns the cluster-wide telemetry view: the master's own
// live snapshot first, then the latest snapshot each registered memory
// server piggybacked on a heartbeat (forwarded marshaled, never decoded
// on the control path).
func (m *Master) handleStats(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.ctr.statsRequests.Inc()
	own, err := m.tel.Snapshot().MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("master: marshal stats: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	nodes := make([]simnet.NodeID, 0, len(m.servers))
	for id := range m.servers {
		if m.servers[id].stats != nil {
			nodes = append(nodes, id)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var e rpc.Encoder
	e.U32(uint32(1 + len(nodes)))
	e.I64(int64(m.cfg.Node))
	e.String("master")
	e.Bytes32(own)
	for _, id := range nodes {
		e.I64(int64(id))
		e.String("memserver")
		e.Bytes32(m.servers[id].stats)
	}
	return &e, nil
}

func (m *Master) handleListRegions(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.requirePrimaryLocked(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.regionsByName))
	for n := range m.regionsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	var e rpc.Encoder
	e.U32(uint32(len(names)))
	for _, n := range names {
		rs := m.regionsByName[n]
		e.String(n)
		e.U64(uint64(rs.info.ID))
		e.U64(rs.info.Size)
		e.U32(uint32(rs.mapCount))
	}
	return &e, nil
}
