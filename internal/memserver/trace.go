package memserver

import (
	"context"

	"rstore/internal/proto"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// handleTracePull services one MtTracePull: it returns every span this
// node's telemetry ring (and flight recorder) holds for the requested
// trace. Because co-located roles share the node's device — and therefore
// its registry — this also surfaces spans recorded by a client or master
// running on the same machine.
func (s *Server) handleTracePull(ctx context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	r := proto.DecodeTraceFetchRequest(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	spans, complete := s.dev.Telemetry().Tracer().SpansFor(r.Trace)
	resp := proto.TraceFetchResponse{Spans: spans, Complete: complete}
	var e rpc.Encoder
	if err := resp.Encode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}
