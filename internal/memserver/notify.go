package memserver

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

// Notification wire format, exchanged as small SENDs on the notify QP:
//
//	kind     uint8  (1=subscribe, 2=notify, 3=unsubscribe)
//	regionID uint64
//	token    uint32
//
// A client subscribes once per region of interest; any client writing the
// region follows up with a notify carrying an application token, and the
// region's home server fans the token out to all subscribers. This gives
// RStore's memory-like API its producer/consumer signaling without server
// involvement on the data itself.
const (
	notifyMsgSize = 13

	// NotifyKindSubscribe registers the sending QP for a region.
	NotifyKindSubscribe = 1
	// NotifyKindNotify fans out the token to the region's subscribers.
	NotifyKindNotify = 2
	// NotifyKindUnsubscribe removes the sending QP's registration.
	NotifyKindUnsubscribe = 3
	// NotifyKindInvalidate tells subscribers the region's layout changed
	// (repair swapped extents); the token carries the low 32 bits of the
	// new generation. Sent by the master's repair plane, fanned out to
	// every subscriber including the sender's other peers.
	NotifyKindInvalidate = 4
)

// EncodeNotifyMsg writes the wire form into buf (at least notifyMsgSize).
func EncodeNotifyMsg(buf []byte, kind uint8, region proto.RegionID, token uint32) int {
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:], uint64(region))
	binary.LittleEndian.PutUint32(buf[9:], token)
	return notifyMsgSize
}

// DecodeNotifyMsg parses the wire form.
func DecodeNotifyMsg(buf []byte) (kind uint8, region proto.RegionID, token uint32, err error) {
	if len(buf) < notifyMsgSize {
		return 0, 0, 0, fmt.Errorf("memserver: short notify message: %d bytes", len(buf))
	}
	return buf[0], proto.RegionID(binary.LittleEndian.Uint64(buf[1:])), binary.LittleEndian.Uint32(buf[9:]), nil
}

// NotifyMsgSize is the wire size of one notification frame.
const NotifyMsgSize = notifyMsgSize

// notifySession is one client's notification QP on the server side.
type notifySession struct {
	qp      *rdma.QP
	recvMR  *rdma.MemoryRegion
	sendMR  *rdma.MemoryRegion
	sendIdx int
	slots   int
}

const notifySlots = 64

func (s *Server) acceptNotify(ctx context.Context) {
	defer s.wg.Done()
	for {
		qp, err := s.notifyLis.Accept(ctx)
		if err != nil {
			return
		}
		ns, err := s.newNotifySession(qp)
		if err != nil {
			qp.Close()
			continue
		}
		s.wg.Add(1)
		go s.notifyLoop(ctx, ns)
	}
}

func (s *Server) newNotifySession(qp *rdma.QP) (*notifySession, error) {
	recvMR, err := s.pd.RegisterMemory(make([]byte, notifySlots*notifyMsgSize), rdma.AccessLocalWrite)
	if err != nil {
		return nil, fmt.Errorf("notify session: %w", err)
	}
	sendMR, err := s.pd.RegisterMemory(make([]byte, notifySlots*notifyMsgSize), 0)
	if err != nil {
		return nil, fmt.Errorf("notify session: %w", err)
	}
	ns := &notifySession{qp: qp, recvMR: recvMR, sendMR: sendMR, slots: notifySlots}
	for i := 0; i < notifySlots; i++ {
		if err := qp.PostRecv(rdma.RecvWR{
			WRID:  uint64(i),
			Local: rdma.SGE{MR: recvMR, Offset: uint64(i * notifyMsgSize), Len: notifyMsgSize},
		}); err != nil {
			return nil, fmt.Errorf("notify session: %w", err)
		}
	}
	return ns, nil
}

// notifyLoop services one client's subscribe/notify traffic.
func (s *Server) notifyLoop(ctx context.Context, ns *notifySession) {
	defer s.wg.Done()
	defer s.dropSession(ns)
	for {
		// Recycle send completions (fan-out sends from other sessions'
		// loops land on this QP's send CQ too; they are fire-and-forget).
		_ = ns.qp.SendCQ().Poll(notifySlots)
		wc, err := ns.qp.RecvCQ().Next(ctx)
		if err != nil {
			return
		}
		if wc.Status != rdma.StatusSuccess {
			return
		}
		slot := int(wc.WRID)
		off := slot * notifyMsgSize
		kind, region, token, derr := DecodeNotifyMsg(ns.recvMR.Bytes()[off : off+notifyMsgSize])
		if rerr := ns.qp.PostRecv(rdma.RecvWR{
			WRID:  wc.WRID,
			Local: rdma.SGE{MR: ns.recvMR, Offset: uint64(off), Len: notifyMsgSize},
		}); rerr != nil {
			return
		}
		if derr != nil {
			continue
		}
		// Chain virtual time: fan-out sends depart after the inbound frame
		// arrived plus a small hub processing cost, so end-to-end notify
		// latency is modeled faithfully.
		departV := wc.DoneV.Add(time.Microsecond)
		switch kind {
		case NotifyKindSubscribe:
			s.subscribe(region, ns)
			// Ack so the subscriber knows fan-out now includes it.
			s.sendTo(ns, NotifyKindSubscribe, region, token, departV)
		case NotifyKindUnsubscribe:
			s.unsubscribe(region, ns)
		case NotifyKindNotify:
			s.fanOut(region, token, ns, departV)
		case NotifyKindInvalidate:
			s.fanOutKind(NotifyKindInvalidate, region, token, ns, departV)
		}
	}
}

func (s *Server) subscribe(region proto.RegionID, ns *notifySession) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.watchers[region] {
		if w == ns {
			return
		}
	}
	s.watchers[region] = append(s.watchers[region], ns)
}

func (s *Server) unsubscribe(region proto.RegionID, ns *notifySession) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.watchers[region]
	for i, w := range ws {
		if w == ns {
			s.watchers[region] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

func (s *Server) dropSession(ns *notifySession) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for region, ws := range s.watchers {
		for i, w := range ws {
			if w == ns {
				s.watchers[region] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
}

// fanOut delivers the token to every subscriber of the region except the
// notifier itself, departing at virtual time departV.
func (s *Server) fanOut(region proto.RegionID, token uint32, from *notifySession, departV simnet.VTime) {
	s.fanOutKind(NotifyKindNotify, region, token, from, departV)
}

// fanOutKind is fanOut for an arbitrary frame kind.
func (s *Server) fanOutKind(kind uint8, region proto.RegionID, token uint32, from *notifySession, departV simnet.VTime) {
	s.mu.Lock()
	targets := make([]*notifySession, 0, len(s.watchers[region]))
	for _, w := range s.watchers[region] {
		if w != from {
			targets = append(targets, w)
		}
	}
	s.mu.Unlock()
	for _, w := range targets {
		s.sendTo(w, kind, region, token, departV)
	}
}

// sendTo delivers one frame to a session at the given virtual departure
// time. Best effort: a dead subscriber's QP errors and its loop cleans up.
func (s *Server) sendTo(w *notifySession, kind uint8, region proto.RegionID, token uint32, departV simnet.VTime) {
	s.mu.Lock()
	slot := w.sendIdx % w.slots
	w.sendIdx++
	s.mu.Unlock()
	off := slot * notifyMsgSize
	EncodeNotifyMsg(w.sendMR.Bytes()[off:off+notifyMsgSize], kind, region, token)
	_ = w.qp.PostSend(rdma.SendWR{
		WRID:   uint64(slot),
		Op:     rdma.OpSend,
		Local:  rdma.SGE{MR: w.sendMR, Offset: uint64(off), Len: notifyMsgSize},
		StartV: departV,
	})
}
