package memserver

import (
	"testing"
	"testing/quick"

	"rstore/internal/proto"
)

func TestNotifyMsgRoundTrip(t *testing.T) {
	buf := make([]byte, NotifyMsgSize)
	n := EncodeNotifyMsg(buf, NotifyKindNotify, 42, 0xdeadbeef)
	if n != NotifyMsgSize {
		t.Fatalf("encoded %d bytes, want %d", n, NotifyMsgSize)
	}
	kind, region, token, err := DecodeNotifyMsg(buf)
	if err != nil {
		t.Fatalf("DecodeNotifyMsg: %v", err)
	}
	if kind != NotifyKindNotify || region != 42 || token != 0xdeadbeef {
		t.Errorf("decoded (%d, %d, %#x)", kind, region, token)
	}
}

func TestNotifyMsgTooShort(t *testing.T) {
	if _, _, _, err := DecodeNotifyMsg(make([]byte, NotifyMsgSize-1)); err == nil {
		t.Error("short message must fail")
	}
}

func TestNotifyMsgProperty(t *testing.T) {
	fn := func(kind uint8, region uint64, token uint32) bool {
		buf := make([]byte, NotifyMsgSize)
		EncodeNotifyMsg(buf, kind, proto.RegionID(region), token)
		k, r, tok, err := DecodeNotifyMsg(buf)
		return err == nil && k == kind && r == proto.RegionID(region) && tok == token
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
