// Package memserver implements RStore's memory servers: the nodes that
// donate DRAM to the distributed store.
//
// A memory server's life is deliberately boring — that is the point of the
// paper's design. At startup it registers one large arena with its NIC and
// announces itself (capacity + rkey) to the master; afterwards the server
// CPU only sends heartbeats and services region-notification fan-out. All
// data access happens through one-sided RDMA directly against the arena:
// no goroutine in this package ever touches a byte of client data.
package memserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Config tunes a memory server.
type Config struct {
	// Capacity is the arena size donated to the store.
	Capacity uint64
	// Master is the node the master runs on.
	Master simnet.NodeID
	// HeartbeatInterval is how often to beat. Default 100ms (should match
	// the master's interval).
	HeartbeatInterval time.Duration
	// RPC tunes the control connection.
	RPC rpc.Options
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	return c
}

// Server is a running memory server.
type Server struct {
	cfg   Config
	dev   *rdma.Device
	pd    *rdma.PD
	arena *rdma.MemoryRegion

	beats        *telemetry.Counter
	reconnects   *telemetry.Counter
	repairPulls  *telemetry.Counter
	repairBytes  *telemetry.Counter
	repairErrors *telemetry.Counter

	dataLis   *rdma.Listener
	notifyLis *rdma.Listener
	ctrlSrv   *rpc.Server
	masterCon *rpc.Conn

	mu       sync.Mutex
	dataQPs  []*rdma.QP
	watchers map[proto.RegionID][]*notifySession

	cancel context.CancelFunc
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Start boots a memory server on the device: registers the arena, opens
// the data and notification services, registers with the master, and
// starts heartbeating.
func Start(ctx context.Context, dev *rdma.Device, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity == 0 {
		return nil, errors.New("memserver: zero capacity")
	}
	pd := dev.AllocPD()
	arena, err := pd.RegisterMemory(make([]byte, cfg.Capacity),
		rdma.AccessLocalWrite|rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return nil, fmt.Errorf("memserver: register arena: %w", err)
	}
	dataLis, err := dev.Listen(proto.MemDataService, pd, rdma.ConnOpts{SendDepth: 1024, RecvDepth: 1024})
	if err != nil {
		return nil, fmt.Errorf("memserver: %w", err)
	}
	notifyLis, err := dev.Listen(proto.MemNotifyService, pd, rdma.ConnOpts{SendDepth: 256, RecvDepth: 256})
	if err != nil {
		dataLis.Close()
		return nil, fmt.Errorf("memserver: %w", err)
	}
	ctrlSrv, err := rpc.NewServer(dev, proto.MemCtrlService, pd, cfg.RPC)
	if err != nil {
		dataLis.Close()
		notifyLis.Close()
		return nil, fmt.Errorf("memserver: %w", err)
	}
	conn, err := rpc.Dial(ctx, dev, cfg.Master, proto.MasterService, pd, cfg.RPC)
	if err != nil {
		dataLis.Close()
		notifyLis.Close()
		ctrlSrv.Close()
		return nil, fmt.Errorf("memserver: dial master: %w", err)
	}

	tel := dev.Telemetry()
	tel.Gauge("memserver.arena_capacity").Set(int64(cfg.Capacity))
	s := &Server{
		cfg:          cfg,
		dev:          dev,
		pd:           pd,
		arena:        arena,
		beats:        tel.Counter("memserver.heartbeats"),
		reconnects:   tel.Counter("memserver.reconnects"),
		repairPulls:  tel.Counter("memserver.repair_pulls"),
		repairBytes:  tel.Counter("memserver.repair_pull_bytes"),
		repairErrors: tel.Counter("memserver.repair_pull_errors"),
		dataLis:      dataLis,
		notifyLis:    notifyLis,
		ctrlSrv:      ctrlSrv,
		masterCon:    conn,
		watchers:     make(map[proto.RegionID][]*notifySession),
		stop:         make(chan struct{}),
	}
	ctrlSrv.Handle(proto.MtRepairPull, s.handleRepairPull)
	ctrlSrv.Handle(proto.MtTracePull, s.handleTracePull)
	ctrlSrv.Serve()

	// Announce capacity and the arena rkey to the master.
	var e rpc.Encoder
	e.U64(cfg.Capacity)
	e.U32(arena.RKey())
	if _, _, err := conn.Call(ctx, proto.MtRegisterServer, e.Bytes()); err != nil {
		s.teardown()
		return nil, fmt.Errorf("memserver: register with master: %w", err)
	}

	loopCtx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(3)
	go s.acceptData(loopCtx)
	go s.acceptNotify(loopCtx)
	go s.heartbeat(loopCtx)
	return s, nil
}

// Node returns the server's fabric node.
func (s *Server) Node() simnet.NodeID { return s.dev.Node() }

// Telemetry returns the server node's metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.dev.Telemetry() }

// Arena exposes the donated memory region (tests verify one-sided writes
// land in it).
func (s *Server) Arena() *rdma.MemoryRegion { return s.arena }

// Close stops the server.
func (s *Server) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
	s.teardown()
}

func (s *Server) teardown() {
	s.mu.Lock()
	qps := s.dataQPs
	s.dataQPs = nil
	var sessions []*notifySession
	for _, ws := range s.watchers {
		sessions = append(sessions, ws...)
	}
	s.watchers = make(map[proto.RegionID][]*notifySession)
	conn := s.masterCon
	s.mu.Unlock()
	for _, qp := range qps {
		qp.Close()
	}
	for _, ns := range sessions {
		ns.qp.Close()
	}
	conn.Close()
	s.dataLis.Close()
	s.notifyLis.Close()
	s.ctrlSrv.Close()
}

// acceptData parks accepted one-sided QPs. Nothing ever polls them: the
// client's READ/WRITE/ATOMIC traffic is served entirely by the (simulated)
// NIC against the arena.
func (s *Server) acceptData(ctx context.Context) {
	defer s.wg.Done()
	for {
		qp, err := s.dataLis.Accept(ctx)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.dataQPs = append(s.dataQPs, qp)
		s.mu.Unlock()
	}
}

func (s *Server) heartbeat(ctx context.Context) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.mu.Lock()
			conn := s.masterCon
			s.mu.Unlock()
			s.beats.Inc()
			beatCtx, cancel := context.WithTimeout(ctx, 4*s.cfg.HeartbeatInterval)
			_, _, err := conn.Call(beatCtx, proto.MtHeartbeat, s.beatPayload())
			cancel()
			if err != nil {
				// A failed beat (partition, our link flapping) kills the
				// control QP permanently; re-dial and re-announce so the
				// master revives us once connectivity returns.
				s.reconnect(ctx)
			}
		}
	}
}

// beatPayload marshals the node's telemetry snapshot for heartbeat
// piggybacking — the stats plane's transport. A marshal failure degrades
// to a plain liveness beat.
func (s *Server) beatPayload() []byte {
	blob, err := s.dev.Telemetry().Snapshot().MarshalBinary()
	if err != nil {
		return nil
	}
	var e rpc.Encoder
	e.Bytes32(blob)
	return e.Bytes()
}

// reconnect re-establishes the master control connection and re-registers
// the arena. Failures are ignored; the next heartbeat tick retries. Every
// step is bounded by a deadline so a half-partitioned master cannot stall
// the heartbeat loop past a few beat intervals.
func (s *Server) reconnect(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, 4*s.cfg.HeartbeatInterval)
	defer cancel()
	s.reconnects.Inc()
	conn, err := rpc.Dial(ctx, s.dev, s.cfg.Master, proto.MasterService, s.pd, s.cfg.RPC)
	if err != nil {
		return
	}
	var e rpc.Encoder
	e.U64(s.cfg.Capacity)
	e.U32(s.arena.RKey())
	if _, _, err := conn.Call(ctx, proto.MtRegisterServer, e.Bytes()); err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	old := s.masterCon
	s.masterCon = conn
	s.mu.Unlock()
	old.Close()
}
