// Package memserver implements RStore's memory servers: the nodes that
// donate DRAM to the distributed store.
//
// A memory server's life is deliberately boring — that is the point of the
// paper's design. At startup it registers one large arena with its NIC and
// announces itself (capacity + rkey) to the master; afterwards the server
// CPU only sends heartbeats and services region-notification fan-out. All
// data access happens through one-sided RDMA directly against the arena:
// no goroutine in this package ever touches a byte of client data.
package memserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Config tunes a memory server.
type Config struct {
	// Capacity is the arena size donated to the store.
	Capacity uint64
	// Master is the node the master runs on.
	Master simnet.NodeID
	// Masters, when set, is the full master replication group. The server
	// registers with (and beats at) whichever replica currently answers as
	// primary, following not-primary redirects after a failover. Empty
	// means the single Master above.
	Masters []simnet.NodeID
	// HeartbeatInterval is how often to beat. Default 100ms (should match
	// the master's interval).
	HeartbeatInterval time.Duration
	// RPC tunes the control connection.
	RPC rpc.Options
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	return c
}

// masters returns the configured master group (the single Master when no
// group was given).
func (c Config) masters() []simnet.NodeID {
	if len(c.Masters) > 0 {
		return c.Masters
	}
	return []simnet.NodeID{c.Master}
}

// Server is a running memory server.
type Server struct {
	cfg   Config
	dev   *rdma.Device
	pd    *rdma.PD
	arena *rdma.MemoryRegion

	beats        *telemetry.Counter
	reconnects   *telemetry.Counter
	repairPulls  *telemetry.Counter
	repairBytes  *telemetry.Counter
	repairErrors *telemetry.Counter

	dataLis   *rdma.Listener
	notifyLis *rdma.Listener
	ctrlSrv   *rpc.Server
	masterCon *rpc.Conn

	// needAnnounce (owned by the heartbeat goroutine) is armed when the
	// whole master group went unreachable: the fault may have been this
	// machine's own link, and a severed machine must assume the master
	// wrote it off — the next contact re-registers as a new incarnation
	// instead of presenting itself as a survivor.
	needAnnounce bool

	mu       sync.Mutex
	dataQPs  []*rdma.QP
	watchers map[proto.RegionID][]*notifySession

	cancel context.CancelFunc
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Start boots a memory server on the device: registers the arena, opens
// the data and notification services, registers with the master, and
// starts heartbeating.
func Start(ctx context.Context, dev *rdma.Device, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity == 0 {
		return nil, errors.New("memserver: zero capacity")
	}
	pd := dev.AllocPD()
	arena, err := pd.RegisterMemory(make([]byte, cfg.Capacity),
		rdma.AccessLocalWrite|rdma.AccessRemoteRead|rdma.AccessRemoteWrite|rdma.AccessRemoteAtomic)
	if err != nil {
		return nil, fmt.Errorf("memserver: register arena: %w", err)
	}
	dataLis, err := dev.Listen(proto.MemDataService, pd, rdma.ConnOpts{SendDepth: 1024, RecvDepth: 1024})
	if err != nil {
		return nil, fmt.Errorf("memserver: %w", err)
	}
	notifyLis, err := dev.Listen(proto.MemNotifyService, pd, rdma.ConnOpts{SendDepth: 256, RecvDepth: 256})
	if err != nil {
		dataLis.Close()
		return nil, fmt.Errorf("memserver: %w", err)
	}
	ctrlSrv, err := rpc.NewServer(dev, proto.MemCtrlService, pd, cfg.RPC)
	if err != nil {
		dataLis.Close()
		notifyLis.Close()
		return nil, fmt.Errorf("memserver: %w", err)
	}
	conn, err := dialAndRegister(ctx, dev, pd, cfg, arena.RKey())
	if err != nil {
		dataLis.Close()
		notifyLis.Close()
		ctrlSrv.Close()
		return nil, fmt.Errorf("memserver: register with master: %w", err)
	}

	tel := dev.Telemetry()
	tel.Gauge("memserver.arena_capacity").Set(int64(cfg.Capacity))
	s := &Server{
		cfg:          cfg,
		dev:          dev,
		pd:           pd,
		arena:        arena,
		beats:        tel.Counter("memserver.heartbeats"),
		reconnects:   tel.Counter("memserver.reconnects"),
		repairPulls:  tel.Counter("memserver.repair_pulls"),
		repairBytes:  tel.Counter("memserver.repair_pull_bytes"),
		repairErrors: tel.Counter("memserver.repair_pull_errors"),
		dataLis:      dataLis,
		notifyLis:    notifyLis,
		ctrlSrv:      ctrlSrv,
		masterCon:    conn,
		watchers:     make(map[proto.RegionID][]*notifySession),
		stop:         make(chan struct{}),
	}
	ctrlSrv.Handle(proto.MtRepairPull, s.handleRepairPull)
	ctrlSrv.Handle(proto.MtTracePull, s.handleTracePull)
	ctrlSrv.Handle(proto.MtPing, s.handlePing)
	ctrlSrv.Serve()

	loopCtx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(3)
	go s.acceptData(loopCtx)
	go s.acceptNotify(loopCtx)
	go s.heartbeat(loopCtx)
	return s, nil
}

// Node returns the server's fabric node.
func (s *Server) Node() simnet.NodeID { return s.dev.Node() }

// Telemetry returns the server node's metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.dev.Telemetry() }

// Arena exposes the donated memory region (tests verify one-sided writes
// land in it).
func (s *Server) Arena() *rdma.MemoryRegion { return s.arena }

// Close stops the server.
func (s *Server) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
	s.teardown()
}

func (s *Server) teardown() {
	s.mu.Lock()
	qps := s.dataQPs
	s.dataQPs = nil
	var sessions []*notifySession
	for _, ws := range s.watchers {
		sessions = append(sessions, ws...)
	}
	s.watchers = make(map[proto.RegionID][]*notifySession)
	conn := s.masterCon
	s.mu.Unlock()
	for _, qp := range qps {
		qp.Close()
	}
	for _, ns := range sessions {
		ns.qp.Close()
	}
	conn.Close()
	s.dataLis.Close()
	s.notifyLis.Close()
	s.ctrlSrv.Close()
}

// acceptData parks accepted one-sided QPs. Nothing ever polls them: the
// client's READ/WRITE/ATOMIC traffic is served entirely by the (simulated)
// NIC against the arena.
func (s *Server) acceptData(ctx context.Context) {
	defer s.wg.Done()
	for {
		qp, err := s.dataLis.Accept(ctx)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.dataQPs = append(s.dataQPs, qp)
		s.mu.Unlock()
	}
}

func (s *Server) heartbeat(ctx context.Context) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.mu.Lock()
			conn := s.masterCon
			s.mu.Unlock()
			s.beats.Inc()
			beatCtx, cancel := context.WithTimeout(ctx, 4*s.cfg.HeartbeatInterval)
			_, _, err := conn.Call(beatCtx, proto.MtHeartbeat, s.beatPayload())
			cancel()
			if err != nil {
				// A failed beat (partition, our link flapping) kills the
				// control QP permanently; re-dial and re-announce so the
				// master revives us once connectivity returns.
				s.reconnect(ctx)
			}
		}
	}
}

// beatPayload marshals the node's telemetry snapshot, followed by its
// windowed telemetry, for heartbeat piggybacking — the stats plane's
// transport and the health engine's input feed. A marshal failure
// degrades to a plain liveness beat (or to stats without windows).
func (s *Server) beatPayload() []byte {
	tel := s.dev.Telemetry()
	blob, err := tel.Snapshot().MarshalBinary()
	if err != nil {
		return nil
	}
	var e rpc.Encoder
	e.Bytes32(blob)
	// Snapshotting also ticks the window sampler, so each beat seals the
	// buckets virtual time has completed since the last one.
	if win, err := tel.WindowSnapshot().MarshalBinary(); err == nil {
		e.Bytes32(win)
	}
	return e.Bytes()
}

// reconnect re-establishes the master control connection, re-homing to
// whichever replica currently answers as primary. Failures are ignored;
// the next heartbeat tick retries. Every step is bounded by a deadline so
// a half-partitioned master cannot stall the heartbeat loop past a few
// beat intervals.
func (s *Server) reconnect(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, 4*s.cfg.HeartbeatInterval)
	defer cancel()
	s.reconnects.Inc()
	conn, reached, err := s.rehome(ctx)
	if err != nil {
		if !reached {
			s.needAnnounce = true
		}
		return
	}
	s.needAnnounce = false
	s.mu.Lock()
	old := s.masterCon
	s.masterCon = conn
	s.mu.Unlock()
	old.Close()
}

// rehome locates the master group's current primary and re-establishes
// the control connection. As long as some replica stayed reachable, the
// fault was on the master's side, the arena is demonstrably intact, and
// the server presents itself with a plain heartbeat: the same incarnation
// re-homing — at a freshly promoted primary this lifts any provisional
// death verdict the failover sweep applied, with no epoch bump and no
// repair. It falls back to a full registration when the primary does not
// know the server (a standby promoted before the registration replicated)
// or when needAnnounce marks this incarnation as suspect. The second
// return reports whether any replica answered at all.
func (s *Server) rehome(ctx context.Context) (*rpc.Conn, bool, error) {
	var lastErr error
	reached := false
	tried := make(map[simnet.NodeID]bool)
	candidates := append([]simnet.NodeID(nil), s.cfg.masters()...)
	for i := 0; i < len(candidates); i++ {
		node := candidates[i]
		if tried[node] {
			continue
		}
		tried[node] = true
		conn, err := rpc.Dial(ctx, s.dev, node, proto.MasterService, s.pd, s.cfg.RPC)
		if err != nil {
			lastErr = err
			continue
		}
		reached = true
		register := s.needAnnounce
		if !register {
			_, _, err = conn.Call(ctx, proto.MtHeartbeat, s.beatPayload())
			if err == nil {
				return conn, true, nil
			}
			lastErr = err
			var re *rpc.RemoteError
			if !errors.As(err, &re) {
				conn.Close()
				continue
			}
			if p, _, ok := proto.IsNotPrimaryMsg(re.Msg); ok {
				conn.Close()
				if p >= 0 {
					candidates = append(candidates, p)
				}
				continue
			}
			// The primary answered but refused the beat — it does not know
			// this server. Announce in full on the same connection.
			register = true
		}
		if register {
			var e rpc.Encoder
			e.U64(s.cfg.Capacity)
			e.U32(s.arena.RKey())
			if _, _, err := conn.Call(ctx, proto.MtRegisterServer, e.Bytes()); err != nil {
				conn.Close()
				lastErr = err
				var re *rpc.RemoteError
				if errors.As(err, &re) {
					if p, _, ok := proto.IsNotPrimaryMsg(re.Msg); ok && p >= 0 {
						candidates = append(candidates, p)
					}
				}
				continue
			}
			return conn, true, nil
		}
	}
	if lastErr == nil {
		lastErr = errors.New("memserver: no masters configured")
	}
	return nil, reached, lastErr
}

// dialAndRegister locates the master group's current primary, announces
// the arena (capacity + rkey), and returns the control connection. It
// tries each configured replica in order, chasing not-primary redirect
// hints it has not already tried.
func dialAndRegister(ctx context.Context, dev *rdma.Device, pd *rdma.PD, cfg Config, rkey uint32) (*rpc.Conn, error) {
	var lastErr error
	tried := make(map[simnet.NodeID]bool)
	candidates := append([]simnet.NodeID(nil), cfg.masters()...)
	for i := 0; i < len(candidates); i++ {
		node := candidates[i]
		if tried[node] {
			continue
		}
		tried[node] = true
		conn, err := rpc.Dial(ctx, dev, node, proto.MasterService, pd, cfg.RPC)
		if err != nil {
			lastErr = err
			continue
		}
		var e rpc.Encoder
		e.U64(cfg.Capacity)
		e.U32(rkey)
		_, _, err = conn.Call(ctx, proto.MtRegisterServer, e.Bytes())
		if err == nil {
			return conn, nil
		}
		conn.Close()
		lastErr = err
		var re *rpc.RemoteError
		if errors.As(err, &re) {
			if p, _, ok := proto.IsNotPrimaryMsg(re.Msg); ok && p >= 0 {
				// Chase the redirect even if it points outside the
				// configured list (it never should, but the hint is
				// authoritative).
				candidates = append(candidates, p)
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("memserver: no masters configured")
	}
	return nil, lastErr
}

// handlePing answers the master candidacy probe: a no-op round trip whose
// only job is to prove reachability and move the virtual clock.
func (s *Server) handlePing(_ context.Context, _ simnet.NodeID, _ *rpc.Decoder) (*rpc.Encoder, error) {
	return &rpc.Encoder{}, nil
}
