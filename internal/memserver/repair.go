package memserver

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/proto"
	"rstore/internal/rdma"
	"rstore/internal/rpc"
	"rstore/internal/simnet"
)

// Repair pull: the server-to-server leg of the master's repair plane. The
// master picks a surviving source extent and a destination window in this
// server's arena; this server pulls the bytes with chunked one-sided reads
// through the same verbs layer clients use, so the source server's CPU
// stays out of it entirely — only the destination spends cycles, and only
// to post work requests.

const defaultRepairChunk = 256 << 10

// handleRepairPull services one MtRepairPull. The response always carries
// the number of bytes now in place, so a failure mid-transfer (source
// killed, partition) is resumable: the master retries from Copied,
// possibly against a different surviving copy.
func (s *Server) handleRepairPull(ctx context.Context, _ simnet.NodeID, req *rpc.Decoder) (*rpc.Encoder, error) {
	r := proto.DecodeRepairPullRequest(req)
	if err := req.Err(); err != nil {
		return nil, err
	}
	s.repairPulls.Inc()
	if r.DestAddr+r.Len < r.DestAddr || r.DestAddr+r.Len > s.cfg.Capacity {
		return nil, fmt.Errorf("memserver: repair dest [%d,%d) outside arena", r.DestAddr, r.DestAddr+r.Len)
	}
	if r.StartOff > r.Len {
		return nil, fmt.Errorf("memserver: repair resume %d beyond length %d", r.StartOff, r.Len)
	}
	chunk := uint64(r.ChunkSize)
	if chunk == 0 {
		chunk = defaultRepairChunk
	}

	copied, pullErr := s.pullExtent(ctx, r, chunk)
	resp := proto.RepairPullResponse{Copied: copied, OK: pullErr == nil}
	if pullErr != nil {
		s.repairErrors.Inc()
		resp.ErrMsg = pullErr.Error()
	}
	var e rpc.Encoder
	resp.Encode(&e)
	return &e, nil
}

// pullExtent copies [StartOff, Len) of the source extent into the arena at
// DestAddr with chunked one-sided reads over a fresh QP, returning how far
// it got. Throttling is virtual-time pacing: each chunk's departure is
// spaced by chunk/rate on the modeled timeline, so repair bandwidth is
// capped without spending any wall-clock time.
func (s *Server) pullExtent(ctx context.Context, r proto.RepairPullRequest, chunk uint64) (uint64, error) {
	copied := r.StartOff
	if copied == r.Len {
		return copied, nil
	}
	qp, err := s.dev.Dial(ctx, r.Source.Server, proto.MemDataService, s.pd, rdma.ConnOpts{SendDepth: 8, RecvDepth: 8})
	if err != nil {
		return copied, fmt.Errorf("dial source %v: %w", r.Source.Server, err)
	}
	defer qp.Close()
	cq := qp.SendCQ()

	// pace is the virtual departure time of the next chunk under the rate
	// cap; zero means "as soon as the NIC is free".
	var pace simnet.VTime
	for copied < r.Len {
		n := chunk
		if rest := r.Len - copied; n > rest {
			n = rest
		}
		wr := rdma.SendWR{
			Op:         rdma.OpRead,
			Local:      rdma.SGE{MR: s.arena, Offset: r.DestAddr + copied, Len: int(n)},
			RemoteKey:  r.Source.RKey,
			RemoteAddr: r.Source.Addr + copied,
			StartV:     pace,
		}
		if err := qp.PostSend(wr); err != nil {
			return copied, fmt.Errorf("post chunk at %d: %w", copied, err)
		}
		wc, err := cq.Next(ctx)
		if err != nil {
			return copied, fmt.Errorf("chunk at %d: %w", copied, err)
		}
		if wc.Status != rdma.StatusSuccess {
			if wc.Err != nil {
				return copied, fmt.Errorf("chunk at %d: %v: %w", copied, wc.Status, wc.Err)
			}
			return copied, fmt.Errorf("chunk at %d: %v", copied, wc.Status)
		}
		copied += n
		s.repairBytes.Add(int64(n))
		if r.RateBytesPerSec > 0 {
			gap := time.Duration(float64(n) / float64(r.RateBytesPerSec) * float64(time.Second))
			if pace == 0 {
				pace = wc.DoneV
			}
			pace = pace.Add(gap)
		}
	}
	return copied, nil
}
