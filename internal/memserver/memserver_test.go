package memserver_test

import (
	"context"
	"testing"
	"time"

	"rstore/internal/master"
	"rstore/internal/memserver"
	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

// TestHeartbeatSurvivesMasterPartition is the regression test for the
// unbounded reconnect path: a partition between server and master kills the
// control QP; the heartbeat loop must re-dial with a bounded deadline (not
// stall), and once the partition heals the server re-registers so the
// master revives it.
func TestHeartbeatSurvivesMasterPartition(t *testing.T) {
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	ctx := context.Background()
	const beat = 10 * time.Millisecond

	md, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	m, err := master.Start(md, master.Config{HeartbeatInterval: beat})
	if err != nil {
		t.Fatalf("master.Start: %v", err)
	}
	defer m.Close()

	sd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := memserver.Start(ctx, sd, memserver.Config{
		Capacity:          1 << 20,
		Master:            0,
		HeartbeatInterval: beat,
	})
	if err != nil {
		t.Fatalf("memserver.Start: %v", err)
	}
	defer srv.Close()

	if !m.ServerAlive(1) {
		t.Fatal("server not alive after registration")
	}

	f.SetPartition(0, 1, true)
	waitFor(t, "master marks server dead", 5*time.Second, func() bool {
		return !m.ServerAlive(1)
	})

	f.SetPartition(0, 1, false)
	waitFor(t, "server re-registers after heal", 5*time.Second, func() bool {
		return m.ServerAlive(1)
	})
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
