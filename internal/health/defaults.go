package health

import "fmt"

// recentWindows is how many newest windows the default rate rules look
// at. With the default 1ms virtual-time bucket this is the last ~8ms of
// modeled work — long enough to smooth a single unlucky window, short
// enough that a spike fires within one heartbeat round.
const recentWindows = 8

// Default rule thresholds.
const (
	// abortRateLimit is the windowed abort fraction above which the txn
	// abort-spike rule fires; minAbortSample is the attempt floor below
	// which the ratio is not trusted.
	abortRateLimit = 0.5
	minAbortSample = 16
	// retraversalRateLimit is the windowed retraversal-per-lookup
	// fraction above which the index-storm rule fires (retraversals are
	// the ordered index's cache-miss full-path walks; a storm means the
	// client caches are thrashing). minLookupSample is the lookup floor.
	retraversalRateLimit = 0.25
	minLookupSample      = 32
	// backlogEvals is how many consecutive non-draining evaluations the
	// repair backlog tolerates before the trend rule fires.
	backlogEvals = 3
)

// DefaultRules is the standard cluster rule set, built fresh per engine
// (the trend rule carries private state).
//
// Detection latency: the master evaluates after every monitor tick, and a
// server is declared dead after Config.HeartbeatMisses missed beats, so a
// killed server fires server-silent within HeartbeatMisses+2 heartbeat
// intervals — the K the chaos tests assert.
func DefaultRules() []Rule {
	return []Rule{
		serverSilent(),
		NotDraining("repair-backlog", SevWarn,
			GaugeWindow("master.repair_queue_depth"), backlogEvals,
			func(v float64) string {
				return fmt.Sprintf("repair queue depth %.0f is not draining", v)
			}),
		Threshold("txn-abort-spike", SevWarn,
			Ratio(
				WindowDelta("txn.aborts", recentWindows),
				Sum(WindowDelta("txn.aborts", recentWindows), WindowDelta("txn.commits", recentWindows)),
				minAbortSample),
			abortRateLimit,
			func(v float64) string {
				return fmt.Sprintf("txn abort rate %.0f%% over recent windows", v*100)
			}),
		Threshold("master-failover", SevInfo,
			WindowDelta("master.failovers", recentWindows), 0,
			func(v float64) string {
				return fmt.Sprintf("%.0f master failover(s) in recent windows", v)
			}),
		Threshold("index-retraversal-storm", SevWarn,
			Ratio(
				WindowDelta("index.retraversals", recentWindows),
				WindowDelta("index.lookups", recentWindows),
				minLookupSample),
			retraversalRateLimit,
			func(v float64) string {
				return fmt.Sprintf("index retraversal rate %.0f%% of lookups", v*100)
			}),
	}
}

// serverSilent fires per server that the master has declared dead while
// region copies still reference it, and resolves when the server either
// revives or repair re-homes the last copy off it (RF restored). It is an
// absence rule: a dead server's telemetry freezes rather than reporting
// zeros, so silence is judged from the liveness verdict, not from metrics.
func serverSilent() Rule {
	return Absence("server-silent", SevCrit, func(in Input) []Finding {
		var out []Finding
		for _, s := range in.Cluster.Servers {
			if s.Alive || !s.HoldsData {
				continue
			}
			out = append(out, Finding{
				Target: nodeTarget(s.Node),
				Msg: fmt.Sprintf("server %d silent for %v and still referenced by region copies",
					s.Node, s.SilentFor),
			})
		}
		return out
	})
}
