package health

import (
	"strings"
	"testing"
	"time"

	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// winSnap builds a one-window snapshot from counter deltas and gauges.
func winSnap(counters map[string]int64, gauges map[string]int64) telemetry.WindowSnapshot {
	s := telemetry.WindowSnapshot{
		WidthNS:    int64(time.Millisecond),
		Counters:   map[string]telemetry.WindowSeries{},
		Gauges:     map[string]telemetry.WindowSeries{},
		Histograms: map[string]telemetry.WindowHistogram{},
	}
	for name, v := range counters {
		s.Counters[name] = telemetry.WindowSeries{End: 1, Vals: []int64{v}}
	}
	for name, v := range gauges {
		s.Gauges[name] = telemetry.WindowSeries{End: 1, Vals: []int64{v}}
	}
	return s
}

func TestThresholdFireAndResolve(t *testing.T) {
	e := NewEngine([]Rule{
		Threshold("abort-spike", SevWarn,
			Ratio(WindowDelta("aborts", 0), WindowDelta("attempts", 0), 10),
			0.5, func(v float64) string { return "spike" }),
	})

	// No windowed data at all: the probe is not ok, nothing fires.
	fired, resolved := e.Eval(Input{Now: 1})
	if fired != 0 || resolved != 0 {
		t.Fatalf("empty eval = %d fired %d resolved, want 0,0", fired, resolved)
	}

	// Under the sample floor: still quiet even though the ratio is high.
	fired, _ = e.Eval(Input{Now: 2, Windows: winSnap(map[string]int64{"aborts": 4, "attempts": 5}, nil)})
	if fired != 0 {
		t.Fatal("fired below the denominator floor")
	}

	fired, _ = e.Eval(Input{Now: 3, Windows: winSnap(map[string]int64{"aborts": 30, "attempts": 40}, nil)})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring || alerts[0].FiredV != 3 {
		t.Fatalf("alerts = %+v, want one firing at V=3", alerts)
	}

	// Still firing: no duplicate transition.
	fired, resolved = e.Eval(Input{Now: 4, Windows: winSnap(map[string]int64{"aborts": 30, "attempts": 40}, nil)})
	if fired != 0 || resolved != 0 {
		t.Fatalf("steady eval = %d fired %d resolved, want 0,0", fired, resolved)
	}

	_, resolved = e.Eval(Input{Now: 5, Windows: winSnap(map[string]int64{"aborts": 1, "attempts": 40}, nil)})
	if resolved != 1 {
		t.Fatalf("resolved = %d, want 1", resolved)
	}
	a := e.Alerts()[0]
	if a.State != StateResolved || a.FiredV != 3 || a.ResolvedV != 5 {
		t.Fatalf("alert = %+v, want resolved with FiredV=3 ResolvedV=5", a)
	}
	evs := e.Events()
	if len(evs) != 2 || !evs[0].Firing || evs[1].Firing {
		t.Fatalf("events = %+v, want fire then resolve", evs)
	}
}

func TestNotDrainingStreak(t *testing.T) {
	e := NewEngine([]Rule{
		NotDraining("backlog", SevWarn, GaugeWindow("depth"), 3,
			func(v float64) string { return "stuck" }),
	})
	at := func(now simnet.VTime, depth int64) (int, int) {
		return e.Eval(Input{Now: now, Windows: winSnap(nil, map[string]int64{"depth": depth})})
	}
	// Rising backlog: needs 3 consecutive non-draining observations after
	// the first to fire.
	for i, depth := range []int64{5, 5, 6} {
		if fired, _ := at(simnet.VTime(i+1), depth); fired != 0 {
			t.Fatalf("fired on observation %d", i)
		}
	}
	if fired, _ := at(4, 7); fired != 1 {
		t.Fatal("did not fire after 3 non-draining evaluations")
	}
	// A decrease means it is draining: resolves and resets the streak.
	if _, resolved := at(5, 3); resolved != 1 {
		t.Fatal("did not resolve on drain")
	}
	if fired, _ := at(6, 4); fired != 0 {
		t.Fatal("refired without a fresh streak")
	}
}

func TestServerSilentRule(t *testing.T) {
	e := NewEngine([]Rule{serverSilent()})
	dead := ClusterView{Servers: []ServerHealth{
		{Node: 2, Alive: true, HoldsData: true},
		{Node: 3, Alive: false, HoldsData: true, SilentFor: 60 * time.Millisecond},
	}}
	fired, _ := e.Eval(Input{Now: 10, Cluster: dead})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	a := e.Alerts()[0]
	if a.Target != "node-3" || a.Severity != SevCrit || !strings.Contains(a.Msg, "server 3") {
		t.Fatalf("alert = %+v, want crit for node-3", a)
	}

	// Repair re-homed everything off node 3 (still dead): resolves.
	repaired := ClusterView{Servers: []ServerHealth{
		{Node: 2, Alive: true, HoldsData: true},
		{Node: 3, Alive: false, HoldsData: false, SilentFor: 200 * time.Millisecond},
	}}
	_, resolved := e.Eval(Input{Now: 20, Cluster: repaired})
	if resolved != 1 {
		t.Fatalf("resolved = %d, want 1", resolved)
	}
}

func TestDefaultRulesFireOnSyntheticInputs(t *testing.T) {
	e := NewEngine(DefaultRules())
	in := Input{
		Now: 7,
		Cluster: ClusterView{Servers: []ServerHealth{
			{Node: 4, Alive: false, HoldsData: true, SilentFor: 80 * time.Millisecond},
		}},
		Windows: winSnap(map[string]int64{
			"txn.aborts":         40,
			"txn.commits":        10,
			"master.failovers":   1,
			"index.retraversals": 50,
			"index.lookups":      100,
		}, nil),
	}
	fired, _ := e.Eval(in)
	if fired != 4 {
		t.Fatalf("fired = %d, want 4 (server-silent, abort-spike, failover, index-storm)", fired)
	}
	names := map[string]bool{}
	for _, a := range e.Alerts() {
		names[a.Rule] = true
	}
	for _, want := range []string{"server-silent", "txn-abort-spike", "master-failover", "index-retraversal-storm"} {
		if !names[want] {
			t.Fatalf("missing alert %q in %v", want, names)
		}
	}
	// Healthy input resolves everything.
	healthy := Input{Now: 8, Windows: winSnap(map[string]int64{
		"txn.aborts": 0, "txn.commits": 100, "master.failovers": 0,
		"index.retraversals": 1, "index.lookups": 100,
	}, nil)}
	if _, resolved := e.Eval(healthy); resolved != 4 {
		t.Fatalf("resolved = %d, want 4", resolved)
	}
}

func TestEventRingBounded(t *testing.T) {
	e := NewEngine([]Rule{
		Threshold("flappy", SevInfo, GaugeWindow("v"), 0,
			func(v float64) string { return "on" }),
	})
	// Flap the alert far past the ring capacity.
	for i := 0; i < 2*eventRingCap; i++ {
		v := int64(i%2 + 0) // 0,1,0,1,... fires on odd, resolves on even
		e.Eval(Input{Now: simnet.VTime(i + 1), Windows: winSnap(nil, map[string]int64{"v": v})})
	}
	evs := e.Events()
	if len(evs) != eventRingCap {
		t.Fatalf("ring length = %d, want %d", len(evs), eventRingCap)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].V <= evs[i-1].V {
			t.Fatalf("ring out of order at %d: %v after %v", i, evs[i].V, evs[i-1].V)
		}
	}
}

func TestResolvedAlertsPruned(t *testing.T) {
	e := NewEngine([]Rule{serverSilent()})
	// Fire and resolve many distinct targets.
	for i := 0; i < 2*maxResolvedAlerts; i++ {
		node := simnet.NodeID(i)
		e.Eval(Input{Now: simnet.VTime(2*i + 1), Cluster: ClusterView{Servers: []ServerHealth{
			{Node: node, Alive: false, HoldsData: true},
		}}})
		e.Eval(Input{Now: simnet.VTime(2*i + 2), Cluster: ClusterView{Servers: []ServerHealth{
			{Node: node, Alive: true, HoldsData: true},
		}}})
	}
	alerts := e.Alerts()
	if len(alerts) != maxResolvedAlerts {
		t.Fatalf("alert table = %d entries, want pruned to %d", len(alerts), maxResolvedAlerts)
	}
}

func TestDumpRendersAlertsAndEvents(t *testing.T) {
	e := NewEngine([]Rule{serverSilent()})
	e.Eval(Input{Now: 5, Cluster: ClusterView{Servers: []ServerHealth{
		{Node: 1, Alive: false, HoldsData: true, SilentFor: 40 * time.Millisecond},
	}}})
	var b strings.Builder
	e.Dump(&b)
	out := b.String()
	for _, want := range []string{"server-silent", "node-1", "firing", "crit", "events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
