package health

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"rstore/internal/simnet"
)

// AlertState is where an alert is in its lifecycle.
type AlertState uint8

const (
	StateFiring AlertState = iota
	StateResolved
)

// String renders the state for dumps and the CLI.
func (s AlertState) String() string {
	if s == StateFiring {
		return "firing"
	}
	return "resolved"
}

// Alert is one (rule, target) instance's current lifecycle state.
type Alert struct {
	Rule     string
	Target   string
	Kind     string
	Severity Severity
	State    AlertState
	// Msg is the most recent finding's message (the last one before
	// resolution, for resolved alerts).
	Msg string
	// FiredV and ResolvedV are the virtual instants of the transitions;
	// ResolvedV is zero while firing.
	FiredV    simnet.VTime
	ResolvedV simnet.VTime
}

// Event is one alert transition, kept in a bounded ring for postmortems.
type Event struct {
	V        simnet.VTime
	Rule     string
	Target   string
	Severity Severity
	// Firing is true for a fire transition, false for a resolution.
	Firing bool
	Msg    string
}

const (
	// eventRingCap bounds the engine's transition history.
	eventRingCap = 256
	// maxResolvedAlerts bounds how many resolved alerts linger in the
	// alert table (the event ring keeps the longer history).
	maxResolvedAlerts = 64
)

// Engine evaluates a fixed rule set and tracks alert lifecycles. Safe for
// concurrent use; evaluations are serialized.
type Engine struct {
	mu     sync.Mutex
	rules  []Rule
	alerts map[alertKey]*Alert
	events []Event // ring: events[evHead] is the oldest once full
	evHead int
	evals  int64
}

type alertKey struct{ rule, target string }

// NewEngine creates an engine over the given rules (which it owns: rules
// with trend state must not be reused elsewhere).
func NewEngine(rules []Rule) *Engine {
	return &Engine{rules: rules, alerts: make(map[alertKey]*Alert)}
}

// Eval runs every rule against in and applies alert transitions, stamping
// them with in.Now. It returns how many alerts fired and resolved.
func (e *Engine) Eval(in Input) (fired, resolved int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	for _, r := range e.rules {
		findings := r.Eval(in)
		present := make(map[string]bool, len(findings))
		for _, f := range findings {
			present[f.Target] = true
			key := alertKey{r.Name, f.Target}
			a := e.alerts[key]
			if a != nil && a.State == StateFiring {
				a.Msg = f.Msg // still firing: refresh the description
				continue
			}
			e.alerts[key] = &Alert{
				Rule:     r.Name,
				Target:   f.Target,
				Kind:     r.Kind,
				Severity: r.Severity,
				State:    StateFiring,
				Msg:      f.Msg,
				FiredV:   in.Now,
			}
			e.pushEventLocked(Event{V: in.Now, Rule: r.Name, Target: f.Target, Severity: r.Severity, Firing: true, Msg: f.Msg})
			fired++
		}
		for key, a := range e.alerts {
			if key.rule != r.Name || a.State != StateFiring || present[a.Target] {
				continue
			}
			a.State = StateResolved
			a.ResolvedV = in.Now
			e.pushEventLocked(Event{V: in.Now, Rule: a.Rule, Target: a.Target, Severity: a.Severity, Firing: false, Msg: a.Msg})
			resolved++
		}
	}
	e.pruneResolvedLocked()
	return fired, resolved
}

func (e *Engine) pushEventLocked(ev Event) {
	if len(e.events) < eventRingCap {
		e.events = append(e.events, ev)
		return
	}
	e.events[e.evHead] = ev
	e.evHead = (e.evHead + 1) % eventRingCap
}

func (e *Engine) pruneResolvedLocked() {
	var res []*Alert
	for _, a := range e.alerts {
		if a.State == StateResolved {
			res = append(res, a)
		}
	}
	if len(res) <= maxResolvedAlerts {
		return
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ResolvedV < res[j].ResolvedV })
	for _, a := range res[:len(res)-maxResolvedAlerts] {
		delete(e.alerts, alertKey{a.Rule, a.Target})
	}
}

// Evals returns how many evaluations have run.
func (e *Engine) Evals() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// Alerts returns the alert table: firing alerts first (highest severity
// first), then resolved ones newest first.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	out := make([]Alert, 0, len(e.alerts))
	for _, a := range e.alerts {
		out = append(out, *a)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.State != b.State {
			return a.State == StateFiring
		}
		if a.State == StateFiring {
			if a.Severity != b.Severity {
				return a.Severity > b.Severity
			}
			if a.Rule != b.Rule {
				return a.Rule < b.Rule
			}
			return a.Target < b.Target
		}
		if a.ResolvedV != b.ResolvedV {
			return a.ResolvedV > b.ResolvedV
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Target < b.Target
	})
	return out
}

// Events returns the transition ring, oldest first.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, 0, len(e.events))
	out = append(out, e.events[e.evHead:]...)
	out = append(out, e.events[:e.evHead]...)
	return out
}

// Dump writes a human-readable report of the alert table and event ring —
// the health counterpart of the tracer's flight-recorder dump, attached
// to chaos-test artifacts.
func (e *Engine) Dump(w io.Writer) {
	alerts := e.Alerts()
	events := e.Events()
	fmt.Fprintf(w, "health: %d alert(s), %d event(s), %d evaluation(s)\n", len(alerts), len(events), e.Evals())
	for _, a := range alerts {
		line := fmt.Sprintf("  [%s] %s %s", a.Severity, a.State, a.Rule)
		if a.Target != "" {
			line += " " + a.Target
		}
		line += fmt.Sprintf(" fired=%v", time.Duration(a.FiredV))
		if a.State == StateResolved {
			line += fmt.Sprintf(" resolved=%v", time.Duration(a.ResolvedV))
		}
		fmt.Fprintf(w, "%s: %s\n", line, a.Msg)
	}
	if len(events) > 0 {
		fmt.Fprintf(w, "events (oldest first):\n")
		for _, ev := range events {
			verb := "fired"
			if !ev.Firing {
				verb = "resolved"
			}
			target := ev.Rule
			if ev.Target != "" {
				target += " " + ev.Target
			}
			fmt.Fprintf(w, "  %12v [%s] %s %s: %s\n", time.Duration(ev.V), ev.Severity, target, verb, ev.Msg)
		}
	}
}
