// Package health is RStore's cluster health engine: a declarative rule
// set evaluated over windowed telemetry and control-plane state, producing
// alerts with firing→resolved transitions stamped in virtual time and a
// bounded ring of health events.
//
// The engine runs on the primary master, which is the only vantage point
// that already aggregates everything a verdict needs: liveness state from
// heartbeats, repair-plane state from its own bookkeeping, and windowed
// telemetry piggybacked on every heartbeat (see WindowSnapshot in
// internal/telemetry). Rules never read live system state — each
// evaluation receives an immutable Input assembled by the caller, so rules
// are trivially testable and an evaluation can never deadlock against the
// master's locks.
//
// Staleness model: a memory server that stops heartbeating also stops
// refreshing its windowed telemetry, so its counters silently freeze
// rather than report zero. Rules that must react to silence therefore key
// off the control plane's liveness verdict (ServerHealth.Alive, itself
// driven by heartbeat misses) instead of inferring death from a flat
// series — an absence rule, not a threshold rule.
package health

import (
	"fmt"
	"time"

	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Severity orders how loud an alert is.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevCrit
)

// String renders the severity for dumps and the CLI.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	default:
		return "crit"
	}
}

// ServerHealth is the control plane's view of one memory server at
// evaluation time.
type ServerHealth struct {
	Node simnet.NodeID
	// Alive is the master's liveness verdict (false after the configured
	// number of missed heartbeats).
	Alive bool
	// HoldsData reports whether any region copy still references the
	// server. Repair clears it as extents are re-homed, which is what
	// resolves a server-silent alert without the server coming back.
	HoldsData bool
	// SilentFor is the wall-clock time since the last heartbeat (zero
	// while alive).
	SilentFor time.Duration
}

// ClusterView is the control-plane state one evaluation sees.
type ClusterView struct {
	Servers          []ServerHealth
	RepairQueueDepth int64
	// DegradedRegions counts regions currently below their replication
	// factor.
	DegradedRegions int
}

// Input is the complete, immutable fact set for one evaluation.
type Input struct {
	// Now is the virtual instant of the evaluation; alert transitions are
	// stamped with it.
	Now simnet.VTime
	// Cluster is the control plane's current view.
	Cluster ClusterView
	// Windows is the cluster-merged windowed telemetry (the master's own
	// windows merged with every server's heartbeat-piggybacked snapshot).
	Windows telemetry.WindowSnapshot
}

// Finding is one target a rule considers unhealthy right now. A rule
// reporting no findings for a target the engine saw firing resolves that
// target's alert.
type Finding struct {
	// Target distinguishes instances of one rule (e.g. "node-3");
	// cluster-wide rules leave it empty.
	Target string
	Msg    string
}

// Rule is one health predicate. Eval must be a pure function of its
// input except for rule-private trend state (see NotDraining); the engine
// serializes evaluations, and a Rule value must not be shared between
// engines.
type Rule struct {
	Name     string
	Kind     string // "threshold" | "trend" | "absence"
	Severity Severity
	Eval     func(in Input) []Finding
}

// Probe extracts one number from an evaluation input. ok=false means the
// underlying metric has no windowed data yet; rules stay quiet rather
// than fire on a phantom zero.
type Probe func(in Input) (float64, bool)

// WindowDelta probes the named counter's increments over its newest k
// windows (whole ring when k <= 0).
func WindowDelta(name string, k int) Probe {
	return func(in Input) (float64, bool) {
		if _, ok := in.Windows.Counters[name]; !ok {
			return 0, false
		}
		return float64(in.Windows.CounterDelta(name, k)), true
	}
}

// GaugeWindow probes the named gauge's newest windowed value.
func GaugeWindow(name string) Probe {
	return func(in Input) (float64, bool) {
		v, ok := in.Windows.GaugeLast(name)
		return float64(v), ok
	}
}

// Sum adds probes; it reports ok when any input does.
func Sum(ps ...Probe) Probe {
	return func(in Input) (float64, bool) {
		var total float64
		any := false
		for _, p := range ps {
			if v, ok := p(in); ok {
				total += v
				any = true
			}
		}
		return total, any
	}
}

// Ratio probes num/den, reporting ok only when both sides have data and
// the denominator is at least minDen — a floor that keeps tiny samples
// (two ops, one aborted) from looking like a 50% failure rate.
func Ratio(num, den Probe, minDen float64) Probe {
	return func(in Input) (float64, bool) {
		n, okN := num(in)
		d, okD := den(in)
		if !okN || !okD || d < minDen || d == 0 {
			return 0, false
		}
		return n / d, true
	}
}

// Threshold builds a cluster-wide rule that fires while probe > above.
func Threshold(name string, sev Severity, probe Probe, above float64, describe func(v float64) string) Rule {
	return Rule{Name: name, Kind: "threshold", Severity: sev, Eval: func(in Input) []Finding {
		v, ok := probe(in)
		if !ok || v <= above {
			return nil
		}
		return []Finding{{Msg: describe(v)}}
	}}
}

// NotDraining builds a trend (rate-of-change) rule that fires when probe
// has stayed positive without decreasing for evals consecutive
// evaluations — a backlog that exists and is not shrinking. Any decrease
// or an empty backlog resets the streak (and resolves the alert). The
// returned rule carries private trend state: use it in exactly one engine.
func NotDraining(name string, sev Severity, probe Probe, evals int, describe func(v float64) string) Rule {
	var prev float64
	var streak int
	var havePrev bool
	return Rule{Name: name, Kind: "trend", Severity: sev, Eval: func(in Input) []Finding {
		v, ok := probe(in)
		if !ok {
			havePrev, streak = false, 0
			return nil
		}
		if v <= 0 {
			prev, havePrev, streak = v, true, 0
			return nil
		}
		if havePrev && v >= prev {
			streak++
		} else {
			streak = 0
		}
		prev, havePrev = v, true
		if streak < evals {
			return nil
		}
		return []Finding{{Msg: describe(v)}}
	}}
}

// Absence builds a rule from a raw finding function — the shape for
// staleness rules, which react to state that stopped arriving (a silent
// server) rather than to a value that crossed a line.
func Absence(name string, sev Severity, eval func(in Input) []Finding) Rule {
	return Rule{Name: name, Kind: "absence", Severity: sev, Eval: eval}
}

// nodeTarget names a per-server alert target.
func nodeTarget(n simnet.NodeID) string { return fmt.Sprintf("node-%d", n) }
