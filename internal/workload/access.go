package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// AccessPattern generates a stream of operation offsets within a region —
// the access-side counterpart of the data generators, used by the
// benchmark harness to drive stores with sequential, uniform random, or
// skewed (Zipfian) traffic.
type AccessPattern interface {
	// Next returns the next offset; offsets are aligned to the pattern's
	// operation size and lie in [0, regionSize-opSize].
	Next() uint64
}

// NewSequential returns a pattern that scans the region in op-size steps,
// wrapping at the end.
func NewSequential(regionSize uint64, opSize int) (AccessPattern, error) {
	if err := checkGeometry(regionSize, opSize); err != nil {
		return nil, err
	}
	return &sequential{slots: regionSize / uint64(opSize), op: uint64(opSize)}, nil
}

type sequential struct {
	slots uint64
	op    uint64
	next  uint64
}

func (s *sequential) Next() uint64 {
	off := (s.next % s.slots) * s.op
	s.next++
	return off
}

// NewUniform returns a pattern choosing op-aligned offsets uniformly.
func NewUniform(regionSize uint64, opSize int, seed int64) (AccessPattern, error) {
	if err := checkGeometry(regionSize, opSize); err != nil {
		return nil, err
	}
	return &uniform{
		slots: regionSize / uint64(opSize),
		op:    uint64(opSize),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

type uniform struct {
	slots uint64
	op    uint64
	rng   *rand.Rand
}

func (u *uniform) Next() uint64 {
	return uint64(u.rng.Int63n(int64(u.slots))) * u.op
}

// NewZipfian returns a pattern with Zipf-distributed slot popularity
// (exponent theta > 1), the standard skewed-workload stand-in (hot keys).
// Slot ranks are scattered over the region so hot slots do not cluster on
// one server.
func NewZipfian(regionSize uint64, opSize int, theta float64, seed int64) (AccessPattern, error) {
	if err := checkGeometry(regionSize, opSize); err != nil {
		return nil, err
	}
	if theta <= 1 {
		return nil, fmt.Errorf("workload: zipf theta %v must be > 1", theta)
	}
	slots := regionSize / uint64(opSize)
	rng := rand.New(rand.NewSource(seed))
	return &zipfian{
		zipf: rand.NewZipf(rng, theta, 1, slots-1),
		// Golden-ratio scatter maps popularity rank to a region slot.
		mult: scatterMultiplier(slots),
		slot: slots,
		op:   uint64(opSize),
	}, nil
}

type zipfian struct {
	zipf *rand.Zipf
	mult uint64
	slot uint64
	op   uint64
}

// scatterMultiplier picks an odd multiplier near slots/phi, coprime with
// slots often enough for good dispersion.
func scatterMultiplier(slots uint64) uint64 {
	m := uint64(float64(slots) / math.Phi)
	if m%2 == 0 {
		m++
	}
	if m == 0 {
		m = 1
	}
	return m
}

func (z *zipfian) Next() uint64 {
	rank := z.zipf.Uint64()
	return ((rank * z.mult) % z.slot) * z.op
}

func checkGeometry(regionSize uint64, opSize int) error {
	if opSize <= 0 || uint64(opSize) > regionSize {
		return fmt.Errorf("workload: op size %d out of range for region %d", opSize, regionSize)
	}
	return nil
}
