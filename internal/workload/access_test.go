package workload

import (
	"testing"
	"testing/quick"
)

func TestSequentialPattern(t *testing.T) {
	p, err := NewSequential(1000, 100)
	if err != nil {
		t.Fatalf("NewSequential: %v", err)
	}
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < 10; i++ {
			if got := p.Next(); got != i*100 {
				t.Fatalf("round %d step %d = %d", round, i, got)
			}
		}
	}
}

func TestUniformPatternBounds(t *testing.T) {
	p, err := NewUniform(4096, 64, 7)
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		off := p.Next()
		if off%64 != 0 || off > 4096-64 {
			t.Fatalf("offset %d invalid", off)
		}
		seen[off] = true
	}
	if len(seen) < 32 {
		t.Errorf("uniform pattern hit only %d distinct slots", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	p, err := NewZipfian(1<<20, 1024, 1.2, 3)
	if err != nil {
		t.Fatalf("NewZipfian: %v", err)
	}
	counts := make(map[uint64]int)
	const n = 20000
	for i := 0; i < n; i++ {
		off := p.Next()
		if off%1024 != 0 || off > 1<<20-1024 {
			t.Fatalf("offset %d invalid", off)
		}
		counts[off]++
	}
	// Skew: the hottest slot should take a sizeable share, far above the
	// uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	slots := (1 << 20) / 1024
	uniformShare := n / slots
	if max < 10*uniformShare {
		t.Errorf("hottest slot %d ops, want >= 10x uniform %d", max, uniformShare)
	}
}

func TestPatternErrors(t *testing.T) {
	if _, err := NewSequential(100, 0); err == nil {
		t.Error("op size 0 must fail")
	}
	if _, err := NewUniform(100, 200, 1); err == nil {
		t.Error("op > region must fail")
	}
	if _, err := NewZipfian(1000, 100, 1.0, 1); err == nil {
		t.Error("theta 1.0 must fail")
	}
}

// Property: every pattern only emits aligned, in-range offsets.
func TestPatternBoundsProperty(t *testing.T) {
	fn := func(sizeRaw uint16, opRaw uint8, seed int64) bool {
		op := int(opRaw)%256 + 1
		size := uint64(sizeRaw) + uint64(op)
		pats := make([]AccessPattern, 0, 3)
		if p, err := NewSequential(size, op); err == nil {
			pats = append(pats, p)
		}
		if p, err := NewUniform(size, op, seed); err == nil {
			pats = append(pats, p)
		}
		if size/uint64(op) >= 2 {
			if p, err := NewZipfian(size, op, 1.5, seed); err == nil {
				pats = append(pats, p)
			}
		}
		for _, p := range pats {
			for i := 0; i < 50; i++ {
				off := p.Next()
				if off%uint64(op) != 0 || off > size-uint64(op) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
