package workload

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestRecordGenDeterministic(t *testing.T) {
	g1 := NewRecordGen(7)
	g2 := NewRecordGen(7)
	a := make([]byte, 10*RecordSize)
	b := make([]byte, 10*RecordSize)
	if err := g1.Fill(a, 0, 10); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if err := g2.Fill(b, 0, 10); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different records")
	}
	g3 := NewRecordGen(8)
	if err := g3.Fill(b, 0, 10); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical records")
	}
}

func TestRecordGenRangeIndependence(t *testing.T) {
	// Generating [0,100) in one shot equals generating [0,50) and [50,100)
	// separately — the property distributed generation relies on.
	g := NewRecordGen(3)
	whole := make([]byte, 100*RecordSize)
	if err := g.Fill(whole, 0, 100); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	lo := make([]byte, 50*RecordSize)
	hi := make([]byte, 50*RecordSize)
	if err := g.Fill(lo, 0, 50); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if err := g.Fill(hi, 50, 50); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if !bytes.Equal(whole[:50*RecordSize], lo) || !bytes.Equal(whole[50*RecordSize:], hi) {
		t.Error("range generation differs from whole generation")
	}
}

func TestRecordFillTooSmall(t *testing.T) {
	g := NewRecordGen(1)
	if err := g.Fill(make([]byte, RecordSize-1), 0, 1); err == nil {
		t.Error("short buffer must error")
	}
}

func TestKeyDistribution(t *testing.T) {
	// Keys should be well spread: over 1000 records, the leading byte
	// should take many distinct values.
	g := NewRecordGen(11)
	buf := make([]byte, 1000*RecordSize)
	if err := g.Fill(buf, 0, 1000); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	seen := make(map[byte]bool)
	for i := 0; i < 1000; i++ {
		seen[buf[i*RecordSize]] = true
	}
	if len(seen) < 100 {
		t.Errorf("leading key byte has only %d distinct values", len(seen))
	}
}

func TestSortedAndCompare(t *testing.T) {
	g := NewRecordGen(5)
	buf := make([]byte, 200*RecordSize)
	if err := g.Fill(buf, 0, 200); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if Sorted(buf) {
		t.Error("random records unexpectedly sorted")
	}
	// Sort by key and re-check.
	recs := make([][]byte, 200)
	for i := range recs {
		recs[i] = buf[i*RecordSize : (i+1)*RecordSize]
	}
	sort.Slice(recs, func(i, j int) bool { return CompareRecords(recs[i], recs[j]) < 0 })
	out := make([]byte, 0, len(buf))
	for _, r := range recs {
		out = append(out, r...)
	}
	if !Sorted(out) {
		t.Error("sorted records not reported sorted")
	}
}

func TestSampleKeys(t *testing.T) {
	g := NewRecordGen(2)
	buf := make([]byte, 100*RecordSize)
	if err := g.Fill(buf, 0, 100); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	keys := SampleKeys(buf, 10, 1)
	if len(keys) != 10 {
		t.Fatalf("got %d keys", len(keys))
	}
	for _, k := range keys {
		if len(k) != KeySize {
			t.Errorf("key size %d", len(k))
		}
	}
	if SampleKeys(nil, 10, 1) != nil {
		t.Error("empty buffer should yield nil")
	}
}

func TestGenUniform(t *testing.T) {
	g, err := GenUniform(100, 1000, 42)
	if err != nil {
		t.Fatalf("GenUniform: %v", err)
	}
	if g.NumVertices != 100 || g.NumEdges() != 1000 {
		t.Fatalf("graph = %d vertices, %d edges", g.NumVertices, g.NumEdges())
	}
	checkCSRInvariants(t, g)
}

func TestGenRMAT(t *testing.T) {
	g, err := GenRMAT(1000, 10000, 42)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	if g.NumVertices != 1024 { // rounded to power of two
		t.Fatalf("vertices = %d, want 1024", g.NumVertices)
	}
	if g.NumEdges() != 10000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	checkCSRInvariants(t, g)

	// Power law: max in-degree far above mean.
	var maxIn uint64
	for v := 0; v < g.NumVertices; v++ {
		d := g.InOffsets[v+1] - g.InOffsets[v]
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(g.NumEdges()) / float64(g.NumVertices)
	if float64(maxIn) < 5*mean {
		t.Errorf("max in-degree %d not skewed vs mean %.1f", maxIn, mean)
	}
}

func checkCSRInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if g.InOffsets[0] != 0 {
		t.Error("InOffsets[0] != 0")
	}
	if g.InOffsets[g.NumVertices] != uint64(len(g.InTargets)) {
		t.Error("InOffsets tail mismatch")
	}
	var outSum uint64
	for _, d := range g.OutDegree {
		outSum += uint64(d)
	}
	if outSum != uint64(g.NumEdges()) {
		t.Errorf("out-degree sum %d != edges %d", outSum, g.NumEdges())
	}
	for v := 0; v < g.NumVertices; v++ {
		if g.InOffsets[v] > g.InOffsets[v+1] {
			t.Fatalf("offsets not monotonic at %d", v)
		}
		for _, u := range g.InNeighbors(uint32(v)) {
			if int(u) >= g.NumVertices {
				t.Fatalf("edge source %d out of range", u)
			}
			if u == uint32(v) {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestGraphErrors(t *testing.T) {
	if _, err := GenUniform(1, 5, 0); err == nil {
		t.Error("n=1 must fail")
	}
	if _, err := GenRMAT(0, 5, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := GenUniform(10, -1, 0); err == nil {
		t.Error("negative edges must fail")
	}
}

func TestPartitionByEdges(t *testing.T) {
	g, err := GenRMAT(512, 5000, 9)
	if err != nil {
		t.Fatalf("GenRMAT: %v", err)
	}
	bounds := g.PartitionByEdges(4)
	if len(bounds) != 5 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[0] != 0 || bounds[4] != uint32(g.NumVertices) {
		t.Errorf("bounds endpoints = %v", bounds)
	}
	for p := 0; p < 4; p++ {
		if bounds[p] > bounds[p+1] {
			t.Errorf("bounds not monotonic: %v", bounds)
		}
	}
	// Every partition's edge load should be within 3x of the mean (power
	// law graphs cannot be balanced perfectly with contiguous ranges).
	mean := float64(g.NumEdges()) / 4
	for p := 0; p < 4; p++ {
		var load uint64
		for v := bounds[p]; v < bounds[p+1]; v++ {
			load += g.InOffsets[v+1] - g.InOffsets[v]
		}
		if float64(load) > 3*mean+1 {
			t.Errorf("partition %d load %d vs mean %.0f", p, load, mean)
		}
	}
}

// Property: uniform graphs always satisfy CSR invariants.
func TestCSRInvariantProperty(t *testing.T) {
	fn := func(nRaw, mRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 2
		m := int(mRaw) * 4
		g, err := GenUniform(n, m, seed)
		if err != nil {
			return false
		}
		if g.InOffsets[g.NumVertices] != uint64(len(g.InTargets)) {
			return false
		}
		var outSum uint64
		for _, d := range g.OutDegree {
			outSum += uint64(d)
		}
		return outSum == uint64(m)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOrderedKeySorts(t *testing.T) {
	prev := OrderedKey(0)
	for i := 1; i < 2000; i += 37 {
		k := OrderedKey(i)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("OrderedKey not ordered: %q >= %q", prev, k)
		}
		if len(k) != len(prev) {
			t.Fatalf("OrderedKey width varies: %q vs %q", prev, k)
		}
		prev = k
	}
}
