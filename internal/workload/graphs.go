package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an immutable directed graph in compressed sparse row form,
// stored by incoming edges (the natural layout for pull-based PageRank).
type Graph struct {
	// NumVertices is the vertex count; vertices are [0, NumVertices).
	NumVertices int
	// InOffsets has NumVertices+1 entries; the in-neighbors of v are
	// InTargets[InOffsets[v]:InOffsets[v+1]].
	InOffsets []uint64
	// InTargets lists source vertices of incoming edges.
	InTargets []uint32
	// OutDegree counts outgoing edges per vertex.
	OutDegree []uint32
	// InWeights, when non-nil, holds one weight per incoming edge,
	// parallel to InTargets (shortest-path algorithms use it).
	InWeights []float32
}

// Weighted returns whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.InWeights != nil }

// WithRandomWeights returns a copy of the graph carrying uniform random
// edge weights in [1, maxW).
func (g *Graph) WithRandomWeights(maxW float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	out := *g
	out.InWeights = make([]float32, len(g.InTargets))
	for i := range out.InWeights {
		out.InWeights[i] = float32(1 + rng.Float64()*(maxW-1))
	}
	return &out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.InTargets) }

// InNeighbors returns the sources of v's incoming edges.
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.InTargets[g.InOffsets[v]:g.InOffsets[v+1]]
}

// BuildCSR converts an explicit edge list (parallel src, dst slices) into
// in-CSR form. Exposed for constructing hand-crafted test graphs.
func BuildCSR(n int, srcs, dsts []uint32) *Graph { return buildCSR(n, srcs, dsts) }

// buildCSR converts an edge list (src, dst pairs) into in-CSR form.
func buildCSR(n int, srcs, dsts []uint32) *Graph {
	g := &Graph{
		NumVertices: n,
		InOffsets:   make([]uint64, n+1),
		InTargets:   make([]uint32, len(srcs)),
		OutDegree:   make([]uint32, n),
	}
	counts := make([]uint64, n)
	for i := range srcs {
		counts[dsts[i]]++
		g.OutDegree[srcs[i]]++
	}
	for v := 0; v < n; v++ {
		g.InOffsets[v+1] = g.InOffsets[v] + counts[v]
	}
	cursor := make([]uint64, n)
	copy(cursor, g.InOffsets[:n])
	for i := range srcs {
		d := dsts[i]
		g.InTargets[cursor[d]] = srcs[i]
		cursor[d]++
	}
	// Sort each adjacency list for cache-friendly, deterministic traversal.
	for v := 0; v < n; v++ {
		adj := g.InTargets[g.InOffsets[v]:g.InOffsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g
}

// GenUniform generates a directed graph with m edges chosen uniformly at
// random (self-loops excluded, duplicates allowed — multigraph semantics,
// as in standard synthetic benchmarks).
func GenUniform(n, m int, seed int64) (*Graph, error) {
	if n <= 1 || m < 0 {
		return nil, fmt.Errorf("workload: bad graph size n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	srcs := make([]uint32, m)
	dsts := make([]uint32, m)
	for i := 0; i < m; i++ {
		s := uint32(rng.Intn(n))
		d := uint32(rng.Intn(n - 1))
		if d >= s {
			d++
		}
		srcs[i], dsts[i] = s, d
	}
	return buildCSR(n, srcs, dsts), nil
}

// GenRMAT generates a power-law graph with the recursive-matrix method
// (Chakrabarti et al.), the standard stand-in for social-network graphs
// like the ones the paper's PageRank evaluation uses. n is rounded up to a
// power of two.
func GenRMAT(n, m int, seed int64) (*Graph, error) {
	if n <= 1 || m < 0 {
		return nil, fmt.Errorf("workload: bad graph size n=%d m=%d", n, m)
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	n = 1 << levels
	const a, b, c = 0.57, 0.19, 0.19 // standard RMAT parameters; d = 0.05
	rng := rand.New(rand.NewSource(seed))
	srcs := make([]uint32, m)
	dsts := make([]uint32, m)
	for i := 0; i < m; i++ {
		var s, d uint32
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				d |= 1 << l
			case r < a+b+c:
				s |= 1 << l
			default:
				s |= 1 << l
				d |= 1 << l
			}
		}
		if s == d {
			d = (d + 1) % uint32(n)
		}
		srcs[i], dsts[i] = s, d
	}
	return buildCSR(n, srcs, dsts), nil
}

// Symmetrized returns a new graph with every edge present in both
// directions (weakly-connected-components and undirected algorithms need
// this).
func (g *Graph) Symmetrized() *Graph {
	var srcs, dsts []uint32
	for v := 0; v < g.NumVertices; v++ {
		for _, u := range g.InNeighbors(uint32(v)) {
			srcs = append(srcs, u, uint32(v))
			dsts = append(dsts, uint32(v), u)
		}
	}
	return buildCSR(g.NumVertices, srcs, dsts)
}

// PartitionByEdges splits vertices into parts contiguous ranges balanced
// by in-edge count. Returns part+1 boundaries: part p owns
// [bounds[p], bounds[p+1]).
func (g *Graph) PartitionByEdges(parts int) []uint32 {
	if parts <= 0 {
		parts = 1
	}
	bounds := make([]uint32, parts+1)
	total := uint64(g.NumEdges())
	target := total / uint64(parts)
	p := 1
	var acc uint64
	for v := 0; v < g.NumVertices && p < parts; v++ {
		acc += g.InOffsets[v+1] - g.InOffsets[v]
		if acc >= target*uint64(p) {
			bounds[p] = uint32(v + 1)
			p++
		}
	}
	for ; p < parts; p++ {
		bounds[p] = uint32(g.NumVertices)
	}
	bounds[parts] = uint32(g.NumVertices)
	return bounds
}
