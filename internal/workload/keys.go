package workload

import "fmt"

// OrderedKey returns a fixed-width decimal key for i whose lexicographic
// order matches numeric order — the key shape ordered-index workloads
// (bench E11, rstore-cli index) load and scan.
func OrderedKey(i int) []byte {
	return []byte(fmt.Sprintf("k%08d", i))
}
