// Package rpc provides the control-plane request/response layer used by
// RStore's master, memory servers, and clients.
//
// Messages ride on two-sided RDMA SEND/RECV over internal/rdma queue pairs.
// This mirrors the paper's design: the control path (naming, allocation,
// mapping) is message-based and deliberately off the data path, which uses
// one-sided verbs exclusively.
//
// Encoding is a compact hand-rolled binary format (package Encoder/Decoder)
// so the whole stack stays on the standard library.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	ErrShortMessage = errors.New("rpc: short message")
	ErrOversize     = errors.New("rpc: value exceeds limit")
)

// Encoder builds a binary payload. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, keeping capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a length-prefixed byte string (max 4 GiB).
func (e *Encoder) Bytes32(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(v string) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Decoder walks a binary payload. Errors are sticky: after the first
// failure every further read returns zero values and Err() reports the
// failure, so call sites can decode a whole struct and check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many bytes have not been consumed.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.err = fmt.Errorf("%w: need %d, have %d", ErrShortMessage, n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a length-prefixed byte string. The returned slice aliases
// the decoder's buffer; copy it if it must outlive the message.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(d.Remaining()) {
		d.err = fmt.Errorf("%w: byte string of %d", ErrShortMessage, n)
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }
