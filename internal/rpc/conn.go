package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Wire header layout (little endian):
//
//	reqID   uint64
//	msgType uint16
//	flags   uint8   (bit 0: response, bit 1: error)
//	_pad    uint8
//	length  uint32  (payload bytes following the header)
//	traceID uint64  (telemetry trace propagation; 0 = untraced)
//	spanID  uint64  (caller's span, the parent of any span the callee
//	                 starts; 0 = none)
const headerSize = 32

const (
	flagResponse = 1 << 0
	flagError    = 1 << 1
)

// RPC-layer errors.
var (
	ErrConnClosed = errors.New("rpc: connection closed")
	ErrTooLarge   = errors.New("rpc: message exceeds buffer size")
)

// RemoteError is a failure reported by the remote handler.
type RemoteError struct {
	MsgType uint16
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error for type %d: %s", e.MsgType, e.Msg)
}

// Options tunes a connection's buffering.
type Options struct {
	// BufSize is the size of each message buffer; it bounds the largest
	// request or response. Default 256 KiB.
	BufSize int
	// Credits is the number of outstanding messages per direction.
	// Default 16.
	Credits int
	// ServerCPU is the modeled per-request handler overhead charged on the
	// control path. Default 1us.
	ServerCPU time.Duration
	// CallTimeout is the wall-clock deadline applied to each Call whose
	// context has none, so a partitioned or dead peer can never hang a
	// caller forever. Default 10s; negative disables.
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.BufSize <= 0 {
		o.BufSize = 256 << 10
	}
	if o.Credits <= 0 {
		o.Credits = 16
	}
	if o.ServerCPU <= 0 {
		o.ServerCPU = time.Microsecond
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 10 * time.Second
	}
	return o
}

// endpoint wraps a QP with registered message buffers and the shared
// send/receive machinery used by both Conn (client) and server sessions.
type endpoint struct {
	qp           *rdma.QP
	opts         Options
	creditStalls *telemetry.Counter

	sendMRs  []*rdma.MemoryRegion
	sendFree chan int // indices into sendMRs

	recvMRs []*rdma.MemoryRegion
}

func newEndpoint(qp *rdma.QP, opts Options) (*endpoint, error) {
	opts = opts.withDefaults()
	ep := &endpoint{
		qp:           qp,
		opts:         opts,
		creditStalls: qp.Device().Telemetry().Counter("rpc.credit_stalls"),
		sendFree:     make(chan int, opts.Credits),
	}
	pd := qp.PD()
	for i := 0; i < opts.Credits; i++ {
		smr, err := pd.RegisterMemory(make([]byte, headerSize+opts.BufSize), 0)
		if err != nil {
			return nil, fmt.Errorf("register send buffer: %w", err)
		}
		ep.sendMRs = append(ep.sendMRs, smr)
		ep.sendFree <- i

		rmr, err := pd.RegisterMemory(make([]byte, headerSize+opts.BufSize), rdma.AccessLocalWrite)
		if err != nil {
			return nil, fmt.Errorf("register recv buffer: %w", err)
		}
		ep.recvMRs = append(ep.recvMRs, rmr)
		if err := qp.PostRecv(rdma.RecvWR{WRID: uint64(i), Local: rdma.SGE{MR: rmr, Len: headerSize + opts.BufSize}}); err != nil {
			return nil, fmt.Errorf("post recv: %w", err)
		}
	}
	return ep, nil
}

// send marshals one message into a free send buffer and posts it. startV
// lets the caller chain virtual time (zero = NIC-free time).
func (ep *endpoint) send(ctx context.Context, reqID uint64, msgType uint16, flags uint8, traceID telemetry.TraceID, spanID telemetry.SpanID, payload []byte, startV simnet.VTime) error {
	if len(payload) > ep.opts.BufSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), ep.opts.BufSize)
	}
	var idx int
	select {
	case idx = <-ep.sendFree:
	default:
		// All credits are in flight: the caller is about to block on the
		// peer's consumption rate. Count it — credit stalls are the RPC
		// layer's back-pressure signal.
		ep.creditStalls.Inc()
		select {
		case idx = <-ep.sendFree:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	mr := ep.sendMRs[idx]
	buf := mr.Bytes()
	binary.LittleEndian.PutUint64(buf[0:], reqID)
	binary.LittleEndian.PutUint16(buf[8:], msgType)
	buf[10] = flags
	buf[11] = 0
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(traceID))
	binary.LittleEndian.PutUint64(buf[24:], uint64(spanID))
	copy(buf[headerSize:], payload)

	if err := ep.qp.PostSend(rdma.SendWR{
		WRID:   uint64(idx),
		Op:     rdma.OpSend,
		Local:  rdma.SGE{MR: mr, Len: headerSize + len(payload)},
		StartV: startV,
	}); err != nil {
		// The WR was never queued, so the buffer is free again. Without
		// this, every post against a dead QP would leak one credit and the
		// connection would wedge after Credits failures.
		ep.sendFree <- idx
		return err
	}
	return nil
}

// recycleSend returns the completed send buffer to the freelist.
func (ep *endpoint) recycleSend(wc rdma.WC) {
	select {
	case ep.sendFree <- int(wc.WRID):
	default:
		// Freelist can never overflow: each index is outstanding at most once.
	}
}

// message is one decoded inbound frame.
type message struct {
	reqID   uint64
	msgType uint16
	flags   uint8
	traceID telemetry.TraceID
	spanID  telemetry.SpanID // sender's span (parent for callee spans)
	payload []byte           // copied out of the recv buffer
	doneV   simnet.VTime
}

// repostAndParse copies out the message from a completed receive and
// reposts the buffer.
func (ep *endpoint) repostAndParse(wc rdma.WC) (message, error) {
	idx := int(wc.WRID)
	if idx < 0 || idx >= len(ep.recvMRs) {
		return message{}, fmt.Errorf("rpc: bogus recv wrid %d", wc.WRID)
	}
	mr := ep.recvMRs[idx]
	buf := mr.Bytes()
	if wc.ByteLen < headerSize {
		return message{}, fmt.Errorf("%w: frame of %d", ErrShortMessage, wc.ByteLen)
	}
	m := message{
		reqID:   binary.LittleEndian.Uint64(buf[0:]),
		msgType: binary.LittleEndian.Uint16(buf[8:]),
		flags:   buf[10],
		traceID: telemetry.TraceID(binary.LittleEndian.Uint64(buf[16:])),
		spanID:  telemetry.SpanID(binary.LittleEndian.Uint64(buf[24:])),
		doneV:   wc.DoneV,
	}
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if headerSize+n > wc.ByteLen {
		return message{}, fmt.Errorf("%w: payload %d beyond frame %d", ErrShortMessage, n, wc.ByteLen)
	}
	m.payload = make([]byte, n)
	copy(m.payload, buf[headerSize:headerSize+n])
	if err := ep.qp.PostRecv(rdma.RecvWR{WRID: wc.WRID, Local: rdma.SGE{MR: mr, Len: headerSize + ep.opts.BufSize}}); err != nil {
		return m, fmt.Errorf("repost recv: %w", err)
	}
	return m, nil
}

// Conn is the client side of an RPC connection.
type Conn struct {
	ep *endpoint

	callsOut     *telemetry.Counter
	callErrors   *telemetry.Counter
	callTimeouts *telemetry.Counter
	callLatency  *telemetry.Histogram
	tracer       *telemetry.Tracer

	mu       sync.Mutex
	nextID   uint64
	inflight map[uint64]chan message
	closed   bool
	closeErr error

	done chan struct{}
	wg   sync.WaitGroup
}

// NewConn wraps an already-connected QP as an RPC client connection and
// starts its receive loop.
func NewConn(qp *rdma.QP, opts Options) (*Conn, error) {
	ep, err := newEndpoint(qp, opts)
	if err != nil {
		return nil, err
	}
	tel := qp.Device().Telemetry()
	c := &Conn{
		ep:           ep,
		callsOut:     tel.Counter("rpc.calls_out"),
		callErrors:   tel.Counter("rpc.call_errors"),
		callTimeouts: tel.Counter("rpc.call_timeouts"),
		callLatency:  tel.Histogram("rpc.call_latency"),
		tracer:       tel.Tracer(),
		nextID:       1,
		inflight:     make(map[uint64]chan message),
		done:         make(chan struct{}),
	}
	c.wg.Add(2)
	go c.recvLoop()
	go c.sendLoop()
	return c, nil
}

// Dial connects to an RPC service and returns the client connection.
func Dial(ctx context.Context, dev *rdma.Device, node simnet.NodeID, service string, pd *rdma.PD, opts Options) (*Conn, error) {
	o := opts.withDefaults()
	qp, err := dev.Dial(ctx, node, service, pd, rdma.ConnOpts{SendDepth: o.Credits * 2, RecvDepth: o.Credits * 2})
	if err != nil {
		return nil, err
	}
	c, err := NewConn(qp, o)
	if err != nil {
		qp.Close()
		return nil, err
	}
	return c, nil
}

// QP exposes the underlying queue pair (for PD sharing and stats).
func (c *Conn) QP() *rdma.QP { return c.ep.qp }

func (c *Conn) recvLoop() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-c.done
		cancel()
	}()
	for {
		wc, err := c.ep.qp.RecvCQ().Next(ctx)
		if err != nil {
			c.failAll(ErrConnClosed)
			return
		}
		if wc.Status != rdma.StatusSuccess {
			c.failAll(fmt.Errorf("%w: recv %v", ErrConnClosed, wc.Status))
			return
		}
		m, err := c.ep.repostAndParse(wc)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.inflight[m.reqID]
		delete(c.inflight, m.reqID)
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// sendLoop drains send completions to recycle buffers. It runs on its own
// goroutine because send failures must be noticed even when no responses
// flow: under a partition the recv loop blocks forever, and without this
// loop the failed SEND's error completion would sit unread, the connection
// would still look healthy, and every call would burn its full timeout.
func (c *Conn) sendLoop() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-c.done
		cancel()
	}()
	for {
		wc, err := c.ep.qp.SendCQ().Next(ctx)
		if err != nil {
			return
		}
		if wc.Status != rdma.StatusSuccess {
			c.failAll(fmt.Errorf("%w: send %v", ErrConnClosed, wc.Status))
			return
		}
		c.ep.recycleSend(wc)
	}
}

func (c *Conn) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr == nil {
		c.closeErr = err
	}
	for id, ch := range c.inflight {
		delete(c.inflight, id)
		close(ch)
	}
}

// Err returns the terminal error of a failed connection, or nil while the
// connection is usable. Callers use it to decide between retrying on the
// same connection and re-dialing.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr != nil {
		return c.closeErr
	}
	if c.closed {
		return ErrConnClosed
	}
	return nil
}

// Call issues a request and waits for the matching response. It returns
// the response payload and the modeled control-path latency of the full
// round trip. A context without a deadline is bounded by the connection's
// CallTimeout, so calls against a partitioned peer fail instead of hanging.
func (c *Conn) Call(ctx context.Context, msgType uint16, req []byte) ([]byte, time.Duration, error) {
	if _, ok := ctx.Deadline(); !ok && c.ep.opts.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.ep.opts.CallTimeout)
		defer cancel()
	}
	c.mu.Lock()
	if c.closed || c.closeErr != nil {
		err := c.closeErr
		c.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, 0, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan message, 1)
	c.inflight[id] = ch
	c.mu.Unlock()

	c.callsOut.Inc()
	trace := telemetry.TraceFrom(ctx)
	var span telemetry.SpanID
	if trace != 0 {
		span = c.tracer.NewSpan()
	}
	startV := c.ep.qp.VNow()
	if err := c.ep.send(ctx, id, msgType, 0, trace, span, req, startV); err != nil {
		c.mu.Lock()
		delete(c.inflight, id)
		c.mu.Unlock()
		if errors.Is(err, rdma.ErrQPState) {
			// The QP is dead (peer gone, partition, retries exhausted). The
			// recv loop may never see a completion to notice this, so mark
			// the connection failed here: Err() turns non-nil and callers
			// know to re-dial rather than retry on a corpse.
			c.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
		}
		c.callErrors.Inc()
		return nil, 0, fmt.Errorf("rpc call type %d: %w", msgType, err)
	}

	select {
	case m, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.closeErr
			c.mu.Unlock()
			if err == nil {
				err = ErrConnClosed
			}
			c.callErrors.Inc()
			return nil, 0, fmt.Errorf("rpc call type %d: %w", msgType, err)
		}
		lat := m.doneV.Sub(startV)
		if lat < 0 {
			lat = 0
		}
		c.callLatency.RecordDuration(lat)
		if trace != 0 {
			c.tracer.Record(telemetry.Span{
				Trace:  trace,
				ID:     span,
				Parent: telemetry.SpanFrom(ctx),
				Name:   fmt.Sprintf("rpc.call.%d", msgType),
				StartV: startV,
				EndV:   m.doneV,
			})
		}
		if m.flags&flagError != 0 {
			c.callErrors.Inc()
			return nil, lat, &RemoteError{MsgType: msgType, Msg: string(m.payload)}
		}
		return m.payload, lat, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.inflight, id)
		c.mu.Unlock()
		c.callTimeouts.Inc()
		return nil, 0, fmt.Errorf("rpc call type %d: %w", msgType, ctx.Err())
	}
}

// Close tears down the connection. In-flight calls fail with ErrConnClosed.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.ep.qp.Close()
	c.wg.Wait()
}
