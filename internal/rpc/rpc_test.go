package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U16(513)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(3.25)
	e.Bool(true)
	e.Bool(false)
	e.String("region/a")
	e.Bytes32([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U16(); got != 513 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool order wrong")
	}
	if got := d.String(); got != "region/a" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // too short
	if !errors.Is(d.Err(), ErrShortMessage) {
		t.Fatalf("Err = %v", d.Err())
	}
	// Subsequent reads return zero values without panicking.
	if d.U32() != 0 || d.String() != "" || d.Bytes32() != nil {
		t.Error("reads after error must return zero values")
	}
}

func TestDecoderTruncatedString(t *testing.T) {
	var e Encoder
	e.U32(100) // claims 100 bytes, provides none
	d := NewDecoder(e.Bytes())
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if !errors.Is(d.Err(), ErrShortMessage) {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestCodecProperty(t *testing.T) {
	fn := func(a uint64, b int64, s string, raw []byte, f float64, ok bool) bool {
		var e Encoder
		e.U64(a)
		e.I64(b)
		e.String(s)
		e.Bytes32(raw)
		e.F64(f)
		e.Bool(ok)
		d := NewDecoder(e.Bytes())
		ga, gb, gs, graw, gf, gok := d.U64(), d.I64(), d.String(), d.Bytes32(), d.F64(), d.Bool()
		if d.Err() != nil {
			return false
		}
		// NaN round-trips bit-exactly but NaN != NaN; compare encodings.
		fOK := gf == f || (f != f && gf != gf)
		return ga == a && gb == b && gs == s && bytes.Equal(graw, raw) && fOK && gok == ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// testService spins up a server on node 0 and a client conn from node 1.
func testService(t *testing.T, register func(*Server)) *Conn {
	t.Helper()
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := NewServer(sd, "test", nil, Options{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	register(srv)
	srv.Serve()
	t.Cleanup(srv.Close)

	cd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := Dial(context.Background(), cd, 0, "test", nil, Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(conn.Close)
	return conn
}

const (
	mtEcho uint16 = iota + 1
	mtAdd
	mtFail
)

func registerTestHandlers(srv *Server) {
	srv.Handle(mtEcho, func(_ context.Context, _ simnet.NodeID, req *Decoder) (*Encoder, error) {
		var e Encoder
		e.Bytes32(req.Bytes32())
		return &e, req.Err()
	})
	srv.Handle(mtAdd, func(_ context.Context, _ simnet.NodeID, req *Decoder) (*Encoder, error) {
		a, b := req.U64(), req.U64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		var e Encoder
		e.U64(a + b)
		return &e, nil
	})
	srv.Handle(mtFail, func(_ context.Context, _ simnet.NodeID, _ *Decoder) (*Encoder, error) {
		return nil, errors.New("boom")
	})
}

func TestCallEcho(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	var e Encoder
	e.Bytes32([]byte("ping"))
	resp, lat, err := conn.Call(context.Background(), mtEcho, e.Bytes())
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	d := NewDecoder(resp)
	if got := d.Bytes32(); !bytes.Equal(got, []byte("ping")) {
		t.Errorf("echo = %q", got)
	}
	if lat <= 0 {
		t.Errorf("latency = %v, want > 0", lat)
	}
	// Control-path RPC should be a handful of microseconds in the model.
	if lat > 100*time.Microsecond {
		t.Errorf("latency = %v, unreasonably high", lat)
	}
}

func TestCallAdd(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	var e Encoder
	e.U64(40)
	e.U64(2)
	resp, _, err := conn.Call(context.Background(), mtAdd, e.Bytes())
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := NewDecoder(resp).U64(); got != 42 {
		t.Errorf("sum = %d", got)
	}
}

func TestCallRemoteError(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	_, _, err := conn.Call(context.Background(), mtFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.MsgType != mtFail {
		t.Errorf("remote error = %+v", re)
	}
}

func TestCallUnknownType(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	_, _, err := conn.Call(context.Background(), 999, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	const workers = 8
	const calls = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var e Encoder
				e.U64(uint64(w * 1000))
				e.U64(uint64(i))
				resp, _, err := conn.Call(context.Background(), mtAdd, e.Bytes())
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				if got := NewDecoder(resp).U64(); got != uint64(w*1000+i) {
					t.Errorf("sum = %d, want %d", got, w*1000+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCallAfterClose(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	conn.Close()
	if _, _, err := conn.Call(context.Background(), mtEcho, nil); !errors.Is(err, ErrConnClosed) {
		t.Errorf("err = %v, want ErrConnClosed", err)
	}
	conn.Close() // idempotent
}

func TestCallContextCancel(t *testing.T) {
	// A handler that blocks forever would hang a call; cancellation must
	// release the caller.
	block := make(chan struct{})
	defer close(block)
	conn := testService(t, func(srv *Server) {
		srv.Handle(mtEcho, func(ctx context.Context, _ simnet.NodeID, _ *Decoder) (*Encoder, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return &Encoder{}, nil
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := conn.Call(ctx, mtEcho, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestOversizeRequest(t *testing.T) {
	conn := testService(t, registerTestHandlers)
	big := make([]byte, 1<<20) // larger than default 256 KiB buffers
	if _, _, err := conn.Call(context.Background(), mtEcho, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestServerSeesCallerNode(t *testing.T) {
	var (
		mu   sync.Mutex
		from simnet.NodeID = -1
	)
	conn := testService(t, func(srv *Server) {
		srv.Handle(mtEcho, func(_ context.Context, f simnet.NodeID, _ *Decoder) (*Encoder, error) {
			mu.Lock()
			from = f
			mu.Unlock()
			return &Encoder{}, nil
		})
	})
	if _, _, err := conn.Call(context.Background(), mtEcho, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if from != 1 {
		t.Errorf("from = %v, want 1", from)
	}
}

func TestManySequentialCalls(t *testing.T) {
	// More calls than credits: buffers must recycle correctly.
	conn := testService(t, registerTestHandlers)
	for i := 0; i < 200; i++ {
		var e Encoder
		e.U64(uint64(i))
		e.U64(1)
		resp, _, err := conn.Call(context.Background(), mtAdd, e.Bytes())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := NewDecoder(resp).U64(); got != uint64(i+1) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
}

func TestTwoClients(t *testing.T) {
	f := simnet.NewFabric(3, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := NewServer(sd, "multi", nil, Options{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerTestHandlers(srv)
	srv.Serve()
	defer srv.Close()

	var wg sync.WaitGroup
	for node := 1; node <= 2; node++ {
		wg.Add(1)
		go func(node simnet.NodeID) {
			defer wg.Done()
			dev, err := n.OpenDevice(node)
			if err != nil {
				t.Errorf("OpenDevice: %v", err)
				return
			}
			conn, err := Dial(context.Background(), dev, 0, "multi", nil, Options{})
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			for i := 0; i < 20; i++ {
				var e Encoder
				e.Bytes32([]byte(fmt.Sprintf("client-%d-%d", node, i)))
				resp, _, err := conn.Call(context.Background(), mtEcho, e.Bytes())
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				want := fmt.Sprintf("client-%d-%d", node, i)
				if got := string(NewDecoder(resp).Bytes32()); got != want {
					t.Errorf("echo = %q, want %q", got, want)
					return
				}
			}
		}(simnet.NodeID(node))
	}
	wg.Wait()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.BufSize != 256<<10 || o.Credits != 16 || o.ServerCPU != time.Microsecond {
		t.Errorf("defaults = %+v", o)
	}
	if o.CallTimeout != 10*time.Second {
		t.Errorf("CallTimeout default = %v, want 10s", o.CallTimeout)
	}
	o = Options{BufSize: 1, Credits: 2, ServerCPU: 3, CallTimeout: 4}.withDefaults()
	if o.BufSize != 1 || o.Credits != 2 || o.ServerCPU != 3 || o.CallTimeout != 4 {
		t.Errorf("overrides = %+v", o)
	}
	// Negative CallTimeout means "disabled" and must survive normalization.
	o = Options{CallTimeout: -1}.withDefaults()
	if o.CallTimeout != -1 {
		t.Errorf("disabled CallTimeout = %v, want -1", o.CallTimeout)
	}
}

// TestPartitionFailsFast is the regression test for two connection-death
// bugs: (1) a send-side QP error was only noticed when a receive completion
// happened to arrive, so a partitioned connection looked healthy and every
// call burned its full timeout; (2) a failed PostSend leaked its send
// credit, wedging the connection after Credits failures.
func TestPartitionFailsFast(t *testing.T) {
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := NewServer(sd, "test", nil, Options{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerTestHandlers(srv)
	srv.Serve()
	defer srv.Close()
	cd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := Dial(context.Background(), cd, 0, "test", nil, Options{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, _, err := conn.Call(context.Background(), mtEcho, []byte{0, 0, 0, 0}); err != nil {
		t.Fatalf("Call before partition: %v", err)
	}
	if conn.Err() != nil {
		t.Fatalf("Err before partition = %v", conn.Err())
	}

	f.SetPartition(0, 1, true)
	start := time.Now()
	if _, _, err := conn.Call(context.Background(), mtEcho, []byte{0, 0, 0, 0}); err == nil {
		t.Fatal("Call under partition succeeded")
	}
	// The modeled RC retransmission gives up in virtual microseconds; the
	// send completion must surface the failure well before the 2s timeout.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("partitioned call took %v; send failure not detected promptly", elapsed)
	}
	if conn.Err() == nil {
		t.Error("Err is nil after send failure; caller cannot know to re-dial")
	}
	// Every subsequent call fails fast — more calls than send credits, so a
	// leaked credit would hang one of them until its timeout.
	for i := 0; i < 40; i++ {
		callStart := time.Now()
		if _, _, err := conn.Call(context.Background(), mtEcho, nil); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("call %d on dead conn = %v, want ErrConnClosed", i, err)
		}
		if time.Since(callStart) > time.Second {
			t.Fatalf("call %d on dead conn blocked; credit leak", i)
		}
	}
}

func TestServerCPUDelaysResponse(t *testing.T) {
	// A larger modeled handler cost must surface as higher call latency.
	f := simnet.NewFabric(2, simnet.DefaultParams())
	n := rdma.NewNetwork(f)
	sd, err := n.OpenDevice(0)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	srv, err := NewServer(sd, "slow", nil, Options{ServerCPU: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	registerTestHandlers(srv)
	srv.Serve()
	defer srv.Close()
	cd, err := n.OpenDevice(1)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	conn, err := Dial(context.Background(), cd, 0, "slow", nil, Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	_, lat, err := conn.Call(context.Background(), mtEcho, []byte{0, 0, 0, 0})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if lat < 200*time.Microsecond {
		t.Errorf("latency %v below modeled handler cost", lat)
	}
}

func TestOversizeResponseReportsError(t *testing.T) {
	// A handler reply bigger than the buffers must come back as a remote
	// error instead of hanging the caller.
	conn := testService(t, func(srv *Server) {
		srv.Handle(mtEcho, func(_ context.Context, _ simnet.NodeID, _ *Decoder) (*Encoder, error) {
			var e Encoder
			e.Bytes32(make([]byte, 512<<10)) // larger than 256 KiB default
			return &e, nil
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _, err := conn.Call(ctx, mtEcho, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError about oversize response", err)
	}
	if !strings.Contains(re.Msg, "exceeds buffer size") {
		t.Errorf("msg = %q", re.Msg)
	}
}
