package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rstore/internal/rdma"
	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Handler serves one request type. The returned payload is sent back to the
// caller; a non-nil error is marshaled as a remote error instead.
type Handler func(ctx context.Context, from simnet.NodeID, req *Decoder) (*Encoder, error)

// Server dispatches inbound RPC requests on a listener to registered
// handlers. One goroutine per accepted connection keeps request ordering
// per peer while allowing peers to proceed independently.
type Server struct {
	lis  *rdma.Listener
	opts Options

	callsIn       *telemetry.Counter
	handlerErrors *telemetry.Counter
	tracer        *telemetry.Tracer

	mu       sync.Mutex
	handlers map[uint16]Handler
	closed   bool

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewServer creates a server on the device for the named service. Register
// handlers before calling Serve.
func NewServer(dev *rdma.Device, service string, pd *rdma.PD, opts Options) (*Server, error) {
	o := opts.withDefaults()
	lis, err := dev.Listen(service, pd, rdma.ConnOpts{SendDepth: o.Credits * 2, RecvDepth: o.Credits * 2})
	if err != nil {
		return nil, err
	}
	tel := dev.Telemetry()
	return &Server{
		lis:           lis,
		opts:          o,
		callsIn:       tel.Counter("rpc.calls_in"),
		handlerErrors: tel.Counter("rpc.handler_errors"),
		tracer:        tel.Tracer(),
		handlers:      make(map[uint16]Handler),
	}, nil
}

// PD returns the protection domain shared by all of the server's QPs; the
// service registers its data regions here.
func (s *Server) PD() *rdma.PD { return s.lis.PD() }

// Handle registers the handler for a message type. It must be called
// before Serve.
func (s *Server) Handle(msgType uint16, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[msgType] = h
}

// Serve starts the accept loop in the background. Use Close to stop.
func (s *Server) Serve() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(1)
	go s.acceptLoop(ctx)
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		qp, err := s.lis.Accept(ctx)
		if err != nil {
			return
		}
		ep, err := newEndpoint(qp, s.opts)
		if err != nil {
			qp.Close()
			continue
		}
		s.wg.Add(1)
		go s.session(ctx, ep)
	}
}

func (s *Server) session(ctx context.Context, ep *endpoint) {
	defer s.wg.Done()
	defer ep.qp.Close()
	for {
		for _, wc := range ep.qp.SendCQ().Poll(16) {
			ep.recycleSend(wc)
		}
		wc, err := ep.qp.RecvCQ().Next(ctx)
		if err != nil {
			return
		}
		if wc.Status != rdma.StatusSuccess {
			return
		}
		m, err := ep.repostAndParse(wc)
		if err != nil {
			return
		}
		s.dispatch(ctx, ep, m)
	}
}

func (s *Server) dispatch(ctx context.Context, ep *endpoint, m message) {
	s.mu.Lock()
	h, ok := s.handlers[m.msgType]
	s.mu.Unlock()

	s.callsIn.Inc()
	// The response is posted at the virtual time the request arrived plus
	// the modeled handler CPU cost, so Call latency reflects a full
	// control-path round trip.
	respV := m.doneV.Add(s.opts.ServerCPU)

	// The handler span is minted before the handler runs so any nested
	// RPCs it issues chain under it via the context.
	var handleSpan telemetry.SpanID
	if m.traceID != 0 {
		handleSpan = s.tracer.NewSpan()
	}

	var (
		payload []byte
		flags   uint8 = flagResponse
		errMsg  string
	)
	if !ok {
		flags |= flagError
		errMsg = fmt.Sprintf("no handler for message type %d", m.msgType)
		payload = []byte(errMsg)
	} else {
		hctx := telemetry.WithSpan(ctx, m.traceID, handleSpan)
		enc, err := h(hctx, ep.qp.RemoteNode(), NewDecoder(m.payload))
		if err != nil {
			flags |= flagError
			errMsg = err.Error()
			payload = []byte(errMsg)
		} else if enc != nil {
			payload = enc.Bytes()
		}
	}
	if flags&flagError != 0 {
		s.handlerErrors.Inc()
	}
	if m.traceID != 0 {
		s.tracer.Record(telemetry.Span{
			Trace:  m.traceID,
			ID:     handleSpan,
			Parent: m.spanID,
			Name:   fmt.Sprintf("rpc.handle.%d", m.msgType),
			StartV: m.doneV,
			EndV:   respV,
			Err:    errMsg,
		})
	}
	if err := ep.send(ctx, m.reqID, m.msgType, flags, m.traceID, m.spanID, payload, respV); err != nil {
		if errors.Is(err, ErrTooLarge) && flags&flagError == 0 {
			// The handler's reply does not fit the connection's buffers;
			// tell the caller rather than leaving it waiting forever.
			msg := []byte(fmt.Sprintf("rpc: response of %d bytes exceeds buffer size %d", len(payload), s.opts.BufSize))
			_ = ep.send(ctx, m.reqID, m.msgType, flagResponse|flagError, m.traceID, m.spanID, msg, respV)
		}
		// Otherwise best effort: if the peer is gone the session loop will
		// observe the closed QP.
	}
}

// Close stops serving and tears down all sessions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
	}
	s.lis.Close()
	s.wg.Wait()
}
