package rdma

import (
	"fmt"
	"sync"

	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Access is the set of permissions granted on a registered memory region.
type Access uint8

// Access flag bits. LocalWrite permits the region to be the destination of
// local receives and READ responses; the Remote* bits gate one-sided access
// by connected peers.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// Has reports whether all bits in want are granted.
func (a Access) Has(want Access) bool { return a&want == want }

// String renders the access bits, e.g. "lw|rr|rw".
func (a Access) String() string {
	s := ""
	add := func(bit Access, name string) {
		if a.Has(bit) {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(AccessLocalWrite, "lw")
	add(AccessRemoteRead, "rr")
	add(AccessRemoteWrite, "rw")
	add(AccessRemoteAtomic, "ra")
	if s == "" {
		s = "none"
	}
	return s
}

// Device is a node's RDMA NIC. It owns the node's registered memory table
// and is the factory for protection domains, completion queues, and
// connections. It also owns the node's telemetry registry: every layer
// running on the node (rpc, client, master, memserver) hangs its metrics
// off the device's registry so one snapshot covers the whole node.
type Device struct {
	net  *Network
	node simnet.NodeID
	tel  *telemetry.Registry
	ctr  devCounters

	mu      sync.Mutex
	closed  bool
	nextKey uint32
	mrs     map[uint32]*MemoryRegion
}

// devCounters are the data path's telemetry handles, resolved once at
// OpenDevice so posting a work request never takes the registry lock.
type devCounters struct {
	ops         *telemetry.Counter // send-side work requests executed
	bytes       *telemetry.Counter // local payload bytes of those requests
	oneSided    *telemetry.Counter // READ/WRITE completions (requester side)
	atomics     *telemetry.Counter // FETCH_ADD/CMP_SWAP completions
	recvOps     *telemetry.Counter // receive completions raised locally
	retransmits *telemetry.Counter // RC retransmissions (dropped transfers)
	errors      *telemetry.Counter // QPs moved to the error state
	servedOps   *telemetry.Counter // one-sided/atomic ops targeting this node
	servedBytes *telemetry.Counter // bytes served from this node's arenas
}

// Node returns the fabric node this device is attached to.
func (d *Device) Node() simnet.NodeID { return d.node }

// Network returns the owning verbs network.
func (d *Device) Network() *Network { return d.net }

// Telemetry returns the node's metric registry.
func (d *Device) Telemetry() *telemetry.Registry { return d.tel }

// Costs returns the device's CPU-overhead model.
func (d *Device) Costs() Costs { return d.net.costs }

// Close marks the device unusable for new registrations and connections.
func (d *Device) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

// AllocPD creates a protection domain on the device.
func (d *Device) AllocPD() *PD {
	return &PD{dev: d}
}

// PD is a protection domain: memory regions and queue pairs grouped so
// that an rkey is only honored on QPs of the same domain.
type PD struct {
	dev *Device
}

// Device returns the owning device.
func (p *PD) Device() *Device { return p.dev }

// MemoryRegion is a registered buffer. The region's rkey names it to remote
// peers; access flags bound what those peers may do.
type MemoryRegion struct {
	pd     *PD
	buf    []byte
	rkey   uint32
	access Access

	mu           sync.Mutex
	deregistered bool
}

// RegisterMemory registers buf into the protection domain with the given
// access and returns the region. The buffer is used in place (zero copy):
// the caller must not free or shrink it while registered.
func (p *PD) RegisterMemory(buf []byte, access Access) (*MemoryRegion, error) {
	d := p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("register memory: %w", ErrDeviceClosed)
	}
	mr := &MemoryRegion{
		pd:     p,
		buf:    buf,
		rkey:   d.nextKey,
		access: access,
	}
	d.nextKey++
	d.mrs[mr.rkey] = mr
	return mr, nil
}

// RKey returns the remote key naming this region to peers.
func (m *MemoryRegion) RKey() uint32 { return m.rkey }

// Len returns the registered length in bytes.
func (m *MemoryRegion) Len() int { return len(m.buf) }

// Access returns the region's access flags.
func (m *MemoryRegion) Access() Access { return m.access }

// Bytes returns the registered buffer. Local code may read and write it
// directly; that is the "memory-like" access the paper's API builds on.
func (m *MemoryRegion) Bytes() []byte { return m.buf }

// Deregister removes the region from the device's rkey table. In-flight
// remote operations that already resolved the region complete; new ones
// fail with ErrBadRKey.
func (m *MemoryRegion) Deregister() {
	m.mu.Lock()
	m.deregistered = true
	m.mu.Unlock()
	d := m.pd.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.mrs, m.rkey)
}

// slice bounds-checks and returns the [off, off+n) window of the region.
func (m *MemoryRegion) slice(off uint64, n int) ([]byte, error) {
	if n < 0 || off > uint64(len(m.buf)) || uint64(n) > uint64(len(m.buf))-off {
		return nil, fmt.Errorf("%w: off=%d len=%d region=%d", ErrBounds, off, n, len(m.buf))
	}
	return m.buf[off : off+uint64(n)], nil
}

// lookupMR resolves an rkey on this device, checking the required access
// and protection-domain identity.
func (d *Device) lookupMR(rkey uint32, pd *PD, need Access) (*MemoryRegion, error) {
	d.mu.Lock()
	mr, ok := d.mrs[rkey]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d on %v", ErrBadRKey, rkey, d.node)
	}
	if pd != nil && mr.pd != pd {
		return nil, fmt.Errorf("%w: rkey %d", ErrPDMismatch, rkey)
	}
	if !mr.access.Has(need) {
		return nil, fmt.Errorf("%w: rkey %d has %v, need %v", ErrBadAccess, rkey, mr.access, need)
	}
	return mr, nil
}

// SGE is a scatter/gather element: a window into a locally registered
// region used as the local side of a work request.
type SGE struct {
	MR     *MemoryRegion
	Offset uint64
	Len    int
}

// buf bounds-checks the element against its region and the QP's domain.
func (s SGE) buf(pd *PD) ([]byte, error) {
	if s.MR == nil {
		return nil, fmt.Errorf("sge: %w: nil memory region", ErrBadAccess)
	}
	if s.MR.pd != pd {
		return nil, fmt.Errorf("sge: %w", ErrPDMismatch)
	}
	return s.MR.slice(s.Offset, s.Len)
}
