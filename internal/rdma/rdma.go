// Package rdma implements a software RDMA verbs layer over a simulated
// fabric (internal/simnet).
//
// The package mirrors the structure of the verbs API the RStore paper
// builds on: devices are opened per node, memory must be registered into
// protection domains before it can be the source or target of IO, reliable
// connected queue pairs carry two-sided SEND/RECV and one-sided
// READ/WRITE/WRITE_WITH_IMM plus FETCH_ADD/CMP_SWAP atomics, and all
// completions are reported through completion queues. Remote access is
// gated by rkeys and per-region access flags, exactly as on hardware.
//
// Data movement is real: one-sided operations copy bytes directly between
// the registered buffers of the two nodes with no involvement of the
// responder's "CPU" (no goroutine on the responder side participates in a
// READ or WRITE). Timing is virtual: each operation consults the fabric's
// cost model and reports modeled post/start/completion times in its work
// completion, which the benchmark harness uses to regenerate the paper's
// latency and bandwidth figures.
//
// Divergence from hardware verbs, documented for reviewers:
//   - Remote addresses are byte offsets within the target memory region
//     rather than raw virtual addresses. This is a pure naming change; all
//     protection and bounds semantics are preserved.
//   - Completion queues apply back-pressure when full instead of
//     overflowing fatally.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rstore/internal/simnet"
	"rstore/internal/telemetry"
)

// Errors reported by the verbs layer.
var (
	ErrDeviceClosed    = errors.New("rdma: device closed")
	ErrBadAccess       = errors.New("rdma: access violation")
	ErrBadRKey         = errors.New("rdma: invalid rkey")
	ErrBounds          = errors.New("rdma: address out of bounds")
	ErrQPState         = errors.New("rdma: queue pair not ready")
	ErrRecvQueueFull   = errors.New("rdma: receive queue full")
	ErrSendQueueFull   = errors.New("rdma: send queue full")
	ErrRecvTooSmall    = errors.New("rdma: receive buffer too small")
	ErrUnaligned       = errors.New("rdma: atomic target not 8-byte aligned")
	ErrPDMismatch      = errors.New("rdma: protection domain mismatch")
	ErrListenerClosed  = errors.New("rdma: listener closed")
	ErrServiceNotFound = errors.New("rdma: no listener for service")
	ErrTimeout         = errors.New("rdma: operation timed out")
)

// Costs models the CPU-side overheads of the verbs implementation. The
// defaults are calibrated in DESIGN.md.
type Costs struct {
	// PostOp is the per-operation cost of posting a work request and
	// consuming its completion (doorbell + CQE).
	PostOp time.Duration
	// PinPerPage is the cost to pin and map one page during memory
	// registration.
	PinPerPage time.Duration
	// RegisterBase is the fixed cost of a registration call.
	RegisterBase time.Duration
	// PageSize is the pinning granularity.
	PageSize int
	// ConnectRTTs is how many fabric round trips a QP handshake takes.
	ConnectRTTs int
	// ConnectCPU is the per-side CPU cost of a QP handshake.
	ConnectCPU time.Duration
	// HeaderBytes is the wire size of a request or acknowledgement header.
	HeaderBytes int
	// RNRTimeout bounds how long a SEND waits for the responder to post a
	// receive before the QP fails.
	RNRTimeout time.Duration
	// RetryCount is how many times the modeled NIC retransmits a transfer
	// lost to transient fault injection (simnet.ErrDropped) before the work
	// request fails and the QP enters the error state — the RC retry
	// counter on hardware.
	RetryCount int
	// RetryBackoff is the modeled delay before each retransmission attempt
	// (the RC timeout). It is charged in virtual time, so lossy runs show
	// honestly inflated latencies.
	RetryBackoff time.Duration
}

// DefaultCosts returns the calibrated overheads.
func DefaultCosts() Costs {
	return Costs{
		PostOp:       250 * time.Nanosecond,
		PinPerPage:   300 * time.Nanosecond,
		RegisterBase: 5 * time.Microsecond,
		PageSize:     4096,
		ConnectRTTs:  3,
		ConnectCPU:   20 * time.Microsecond,
		HeaderBytes:  32,
		RNRTimeout:   5 * time.Second,
		RetryCount:   7,
		RetryBackoff: 64 * time.Microsecond,
	}
}

// RegisterTime returns the modeled duration of registering n bytes.
func (c Costs) RegisterTime(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	pages := (n + c.PageSize - 1) / c.PageSize
	return c.RegisterBase + time.Duration(pages)*c.PinPerPage
}

// ConnectTime returns the modeled duration of a QP handshake between two
// distinct nodes given the fabric parameters.
func (c Costs) ConnectTime(p simnet.Params) time.Duration {
	rtt := 2 * p.PropDelay
	return time.Duration(c.ConnectRTTs)*rtt + 2*c.ConnectCPU
}

// Network is the shared per-cluster home of the verbs layer: it owns the
// fabric handle, the service-listener registry used by the connection
// manager, and the set of open devices.
type Network struct {
	fabric *simnet.Fabric
	costs  Costs

	// copyMu serializes the physical byte movement of every one-sided
	// operation and atomic. On hardware, concurrent RDMA access to
	// overlapping bytes is permitted (with byte-level outcomes); in a Go
	// process the same pattern is a data race, so the simulator linearizes
	// the copies. Only wall-clock execution is affected — modeled virtual
	// time is computed independently.
	copyMu sync.Mutex

	mu        sync.Mutex
	devices   map[simnet.NodeID]*Device
	listeners map[listenKey]*Listener
}

type listenKey struct {
	node    simnet.NodeID
	service string
}

// NewNetwork creates a verbs network over the fabric with default costs.
func NewNetwork(fabric *simnet.Fabric) *Network {
	return NewNetworkWithCosts(fabric, DefaultCosts())
}

// NewNetworkWithCosts creates a verbs network with explicit cost constants.
func NewNetworkWithCosts(fabric *simnet.Fabric, costs Costs) *Network {
	return &Network{
		fabric:    fabric,
		costs:     costs,
		devices:   make(map[simnet.NodeID]*Device),
		listeners: make(map[listenKey]*Listener),
	}
}

// Fabric returns the underlying simulated fabric.
func (n *Network) Fabric() *simnet.Fabric { return n.fabric }

// Costs returns the CPU-overhead model shared by all devices.
func (n *Network) Costs() Costs { return n.costs }

// OpenDevice opens (or returns the already-open) device for a node.
func (n *Network) OpenDevice(node simnet.NodeID) (*Device, error) {
	if int(node) < 0 || int(node) >= n.fabric.Size() {
		return nil, fmt.Errorf("open device: %w: %v", simnet.ErrUnknownNode, node)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if d, ok := n.devices[node]; ok {
		return d, nil
	}
	tel := telemetry.New(node)
	// Windowed series bucket on the fabric-wide virtual clock so every
	// node's windows align cluster-wide.
	tel.SetWindowClock(n.fabric.VNow)
	d := &Device{
		net:  n,
		node: node,
		tel:  tel,
		ctr: devCounters{
			ops:         tel.Counter("rdma.ops"),
			bytes:       tel.Counter("rdma.bytes"),
			oneSided:    tel.Counter("rdma.one_sided"),
			atomics:     tel.Counter("rdma.atomics"),
			recvOps:     tel.Counter("rdma.recv_ops"),
			retransmits: tel.Counter("rdma.retransmits"),
			errors:      tel.Counter("rdma.errors"),
			servedOps:   tel.Counter("rdma.served_ops"),
			servedBytes: tel.Counter("rdma.served_bytes"),
		},
		mrs:     make(map[uint32]*MemoryRegion),
		nextKey: 1,
	}
	n.devices[node] = d
	return d, nil
}

func (n *Network) registerListener(l *Listener) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := listenKey{l.dev.node, l.service}
	if _, ok := n.listeners[key]; ok {
		return fmt.Errorf("listen %q on %v: already registered", l.service, l.dev.node)
	}
	n.listeners[key] = l
	return nil
}

func (n *Network) removeListener(l *Listener) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := listenKey{l.dev.node, l.service}
	if n.listeners[key] == l {
		delete(n.listeners, key)
	}
}

func (n *Network) lookupListener(node simnet.NodeID, service string) (*Listener, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.listeners[listenKey{node, service}]
	return l, ok
}
