package rdma

import (
	"context"
	"fmt"
	"sync"

	"rstore/internal/simnet"
)

// ConnOpts tunes queue sizing for Dial and Listen.
type ConnOpts struct {
	SendDepth int
	RecvDepth int
}

// Listener accepts queue-pair connections for a named service on a device.
// All accepted QPs share the listener's protection domain, so memory the
// service registers in that domain is reachable by every connected client
// (subject to access flags).
type Listener struct {
	dev     *Device
	pd      *PD
	service string
	opts    ConnOpts
	backlog chan *QP

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Listen registers a service endpoint on the device. Incoming Dial calls
// produce server-side QPs retrievable via Accept. A nil pd allocates a
// fresh protection domain.
func (d *Device) Listen(service string, pd *PD, opts ConnOpts) (*Listener, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("listen %q: %w", service, ErrDeviceClosed)
	}
	if pd == nil {
		pd = d.AllocPD()
	}
	l := &Listener{
		dev:     d,
		pd:      pd,
		service: service,
		opts:    opts,
		backlog: make(chan *QP, 64),
		done:    make(chan struct{}),
	}
	if err := d.net.registerListener(l); err != nil {
		return nil, err
	}
	return l, nil
}

// PD returns the protection domain shared by accepted QPs.
func (l *Listener) PD() *PD { return l.pd }

// Service returns the service name.
func (l *Listener) Service() string { return l.service }

// Accept blocks for the next inbound connection.
func (l *Listener) Accept(ctx context.Context) (*QP, error) {
	select {
	case qp := <-l.backlog:
		return qp, nil
	case <-l.done:
		return nil, fmt.Errorf("accept %q: %w", l.service, ErrListenerClosed)
	case <-ctx.Done():
		return nil, fmt.Errorf("accept %q: %w", l.service, ctx.Err())
	}
}

// Close unregisters the service. Already-accepted QPs keep working.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.dev.net.removeListener(l)
}

func (l *Listener) deliver(qp *QP) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return fmt.Errorf("connect %q: %w", l.service, ErrListenerClosed)
	}
	select {
	case l.backlog <- qp:
		return nil
	case <-l.done:
		return fmt.Errorf("connect %q: %w", l.service, ErrListenerClosed)
	default:
		return fmt.Errorf("connect %q: backlog full", l.service)
	}
}

// Dial establishes a reliable connected QP pair between this device and the
// named service on a remote node. The returned QP is ready for use; the
// server side surfaces through the listener's Accept. The modeled control
// cost of the handshake is Costs().ConnectTime(fabric params); callers
// account it on the control path.
func (d *Device) Dial(ctx context.Context, remote simnet.NodeID, service string, pd *PD, opts ConnOpts) (*QP, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("dial %q: %w", service, ErrDeviceClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dial %q: %w", service, err)
	}
	if err := d.net.fabric.Reachable(d.node, remote); err != nil {
		return nil, fmt.Errorf("dial %q on %v: %w", service, remote, err)
	}
	l, ok := d.net.lookupListener(remote, service)
	if !ok {
		return nil, fmt.Errorf("dial %q on %v: %w", service, remote, ErrServiceNotFound)
	}
	if pd == nil {
		pd = d.AllocPD()
	}

	client := newQP(d, pd, service, opts.SendDepth, opts.RecvDepth)
	server := newQP(l.dev, l.pd, service, l.opts.SendDepth, l.opts.RecvDepth)
	client.peer = server
	server.peer = client
	client.start()
	server.start()

	if err := l.deliver(server); err != nil {
		client.Close()
		server.Close()
		return nil, err
	}
	return client, nil
}
